#!/usr/bin/env bash
# Chaos smoke for the campaign service daemon (docs/ROBUSTNESS.md).
#
# Phase 1 - worker SIGKILL chaos: start the daemon with supervision (the
# default), launch 8 concurrent clients (4 distinct requests, each
# submitted twice) with retry enabled, and SIGKILL campaign worker
# processes while they run. The daemon must stay up, every client must
# converge to exit 0, the service CSVs must be byte-identical to each
# other, and their stable columns (1-8; 9-12 are wall-clock timings) must
# match what the offline error_campaign CLI computes.
#
# Phase 2 - poisoned lifecycle: a daemon armed with a journal-write kill
# failpoint crashes EVERY worker (each forked worker inherits the unfired
# failpoint). With --max-crashes 2 the request key must be quarantined as
# poisoned: the submitting client exits 4, a resubmission is refused
# synchronously with the same exit code, the quarantine bundle exists,
# and the daemon itself never dies.
#
# Usage: tools/chaos_smoke.sh BUILD_DIR [WORK_DIR]
set -euo pipefail

BUILD="${1:?usage: chaos_smoke.sh BUILD_DIR [WORK_DIR]}"
WORK="${2:-$(mktemp -d /tmp/hltg_chaos.XXXXXX)}"
SOCK="$WORK/tg.sock"
SERVER=""
CHAOS=""

cleanup() {
  [ -n "$CHAOS" ] && kill "$CHAOS" 2>/dev/null || true
  [ -n "$SERVER" ] && kill -9 "$SERVER" 2>/dev/null || true
}
trap cleanup EXIT

wait_for_socket() {
  for _ in $(seq 100); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  echo "chaos_smoke: daemon never opened $1" >&2
  return 1
}

echo "== offline references =="
"$BUILD/examples/error_campaign" --model ssl --stages WB \
  --csv "$WORK/off_wb.csv" > /dev/null
"$BUILD/examples/error_campaign" --model ssl --stages MEM \
  --csv "$WORK/off_mem.csv" > /dev/null
cut -d, -f1-8 "$WORK/off_wb.csv" > "$WORK/off_wb.norm"
cut -d, -f1-8 "$WORK/off_mem.csv" > "$WORK/off_mem.norm"

echo "== phase 1: SIGKILL random campaign workers under load =="
mkdir -p "$WORK/cache" "$WORK/spool" "$WORK/poison"
# max-crashes is set high: this phase proves crash RECOVERY, so the
# breaker must not quarantine the keys we keep killing.
"$BUILD/examples/tg_server" --socket "$SOCK" \
  --cache-dir "$WORK/cache" --spool-dir "$WORK/spool" \
  --poison-dir "$WORK/poison" --max-crashes 1000 &
SERVER=$!
wait_for_socket "$SOCK"

# Assassin: SIGKILL the newest campaign worker (a direct child of the
# daemon) as soon as one appears, up to 6 kills, then let them run.
(
  kills=0
  while [ "$kills" -lt 6 ] && kill -0 "$SERVER" 2>/dev/null; do
    w="$(pgrep -P "$SERVER" 2>/dev/null | tail -1 || true)"
    if [ -n "$w" ] && kill -9 "$w" 2>/dev/null; then
      kills=$((kills + 1))
    fi
    sleep 0.3
  done
) &
CHAOS=$!

PIDS=""
for i in 0 1 2 3; do
  "$BUILD/examples/tg_client" --socket "$SOCK" --model ssl --stages WB \
    --retries 20 --retry-base-ms 100 --csv "$WORK/svc_wb_$i.csv" \
    2> "$WORK/client_wb_$i.log" &
  PIDS="$PIDS $!"
  "$BUILD/examples/tg_client" --socket "$SOCK" --model ssl --stages MEM \
    --retries 20 --retry-base-ms 100 --csv "$WORK/svc_mem_$i.csv" \
    2> "$WORK/client_mem_$i.log" &
  PIDS="$PIDS $!"
done
FAIL=0
for p in $PIDS; do
  wait "$p" || { FAIL=$?; echo "client $p failed (exit $FAIL)" >&2; }
done
kill "$CHAOS" 2>/dev/null || true
wait "$CHAOS" 2>/dev/null || true
CHAOS=""
[ "$FAIL" -eq 0 ] || { cat "$WORK"/client_*.log >&2; exit 1; }

# The daemon survived every worker SIGKILL.
kill -0 "$SERVER"

# Convergence: every client got the full sweep, byte-identical across
# clients, stable columns identical to the offline engine.
for i in 0 1 2 3; do
  cut -d, -f1-8 "$WORK/svc_wb_$i.csv" | diff - "$WORK/off_wb.norm"
  cut -d, -f1-8 "$WORK/svc_mem_$i.csv" | diff - "$WORK/off_mem.norm"
  cmp "$WORK/svc_wb_$i.csv" "$WORK/svc_wb_0.csv"
  cmp "$WORK/svc_mem_$i.csv" "$WORK/svc_mem_0.csv"
done

"$BUILD/examples/tg_client" --socket "$SOCK" --stats > "$WORK/stats.json"
cat "$WORK/stats.json"
if grep -q '"worker_crashes":0,' "$WORK/stats.json"; then
  echo "chaos_smoke: no worker was ever killed - chaos did not engage" >&2
  exit 1
fi
if ! grep -q '"poisoned":0' "$WORK/stats.json"; then
  echo "chaos_smoke: recovery phase must not poison anything" >&2
  exit 1
fi

kill -TERM "$SERVER"
wait "$SERVER"
SERVER=""

echo "== phase 2: every-crash request is poisoned, daemon survives =="
SOCK2="$WORK/tg2.sock"
mkdir -p "$WORK/spool2" "$WORK/poison2"
HLTG_WORKER_BACKOFF_BASE_MS=10 HLTG_WORKER_BACKOFF_MAX_MS=20 \
  "$BUILD/examples/tg_server" --socket "$SOCK2" \
  --spool-dir "$WORK/spool2" --poison-dir "$WORK/poison2" \
  --max-crashes 2 --failpoints 'journal.write=kill' &
SERVER=$!
wait_for_socket "$SOCK2"

EXIT4=0
"$BUILD/examples/tg_client" --socket "$SOCK2" --model ssl --stages WB \
  2> "$WORK/poison_client.log" || EXIT4=$?
test "$EXIT4" -eq 4 || {
  echo "expected poisoned exit 4, got $EXIT4" >&2
  cat "$WORK/poison_client.log" >&2
  exit 1
}
grep -q "poisoned" "$WORK/poison_client.log"

# Resubmission (even with retries: poisoned is terminal, never retried)
# is refused synchronously with the same exit code.
EXIT4=0
"$BUILD/examples/tg_client" --socket "$SOCK2" --model ssl --stages WB \
  --retries 5 2> "$WORK/poison_again.log" || EXIT4=$?
test "$EXIT4" -eq 4
ls "$WORK/poison2"/poisoned_*.json > /dev/null

# The daemon took 2 worker crashes and a quarantine in stride.
kill -0 "$SERVER"
"$BUILD/examples/tg_client" --socket "$SOCK2" --stats > "$WORK/stats2.json"
grep -q '"rejected_poisoned":1' "$WORK/stats2.json"
kill -TERM "$SERVER"
wait "$SERVER"
SERVER=""

echo "chaos_smoke: OK"
