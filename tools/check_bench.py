#!/usr/bin/env python3
"""Perf guard for the benchmark reports.

Compares the *deterministic* effort counters of a fresh run against the
committed baseline and fails when any regresses by more than the
tolerance. Wall-clock fields are ignored on purpose: CI machines vary,
counters do not - decisions, backtracks, DPTRACE expansions, nogood
literal probes and batch-simulation pass counts are pure functions of the
model and the configuration.

The report kind is auto-detected from the "bench" field:

  tg_solver  (bench_solver  -> BENCH_tg.json)
      per-config search-effort counters vs baseline, detection equality.
  campaign   (bench_campaign -> BENCH_campaign.json)
      lane-engine sweep: per-width dropping-pass counters vs baseline,
      width-invariant detections, and the floor on the controller-pass
      reduction wider lanes must buy (256 lanes >= 3x fewer passes than
      64 - the speedup is algorithmic, so it holds on any machine).

Usage: check_bench.py CURRENT.json BASELINE.json [--tolerance 0.10]
Exit: 0 ok, 1 regression or malformed input.
"""

import argparse
import json
import sys

# Lower is better; a rise beyond tolerance is a hot-path regression.
TG_GUARDED_COUNTERS = ("decisions", "backtracks", "dptrace_expansions",
                       "nogood_comparisons")
TG_CONFIGS = ("engine_off", "no_reuse", "engine_on", "probe_batch",
              "campaign_scope", "warm_start", "campaign_shard")

# Batched probing must buy a real search-effort win: engine_on must spend at
# least this many times more decisions + backtracks than probe_batch on the
# same error set, with identical detection outcomes (the outcome checks
# above make any divergence fatal). The reduction is algorithmic - a pure
# function of model and config - so the floor holds on any machine.
MIN_PROBE_EFFORT_REDUCTION = 1.5

CAMPAIGN_WIDTHS = (64, 256, 512)
CAMPAIGN_GUARDED_COUNTERS = ("batches", "controller_passes", "gate_evals")
# The dropping-pass win of wider lanes is structural: 256 lanes must cut
# controller passes by at least this factor vs the 64-lane sweep.
MIN_PASS_REDUCTION_256 = 3.0


def check_counter(failures, label, cv, bv, tolerance):
    if cv is None or bv is None:
        failures.append(f"{label}: missing counter")
        return
    limit = bv * (1.0 + tolerance)
    if cv > limit:
        failures.append(f"{label}: {cv} exceeds baseline {bv} "
                        f"by more than {tolerance:.0%}")


def check_tg(cur, base, tolerance, failures):
    if cur.get("errors") != base.get("errors"):
        failures.append(
            f"error-set size differs: current {cur.get('errors')} vs "
            f"baseline {base.get('errors')} - run bench_solver with the "
            "same --quick setting as the baseline")
    if not cur.get("outcomes_identical", False):
        failures.append("detection outcomes diverged between configurations")

    for cfg in TG_CONFIGS:
        c, b = cur.get(cfg), base.get(cfg)
        if c is None or b is None:
            failures.append(f"{cfg}: missing from current or baseline report")
            continue
        if c.get("detected") != b.get("detected"):
            failures.append(f"{cfg}: detected {c.get('detected')} != "
                            f"baseline {b.get('detected')}")
        for key in TG_GUARDED_COUNTERS:
            check_counter(failures, f"{cfg}.{key}", c.get(key), b.get(key),
                          tolerance)

    on, probe = cur.get("engine_on"), cur.get("probe_batch")
    reduction = None
    if isinstance(on, dict) and isinstance(probe, dict):
        on_effort = (on.get("decisions") or 0) + (on.get("backtracks") or 0)
        probe_effort = ((probe.get("decisions") or 0) +
                        (probe.get("backtracks") or 0))
        reduction = on_effort / probe_effort if probe_effort else None
        if reduction is None:
            failures.append("probe_batch: zero decisions + backtracks - "
                            "report is malformed")
        elif reduction < MIN_PROBE_EFFORT_REDUCTION:
            failures.append(
                f"probe_batch: effort reduction {reduction:.2f}x below the "
                f"{MIN_PROBE_EFFORT_REDUCTION:.1f}x floor vs engine_on "
                f"({on_effort} -> {probe_effort} decisions + backtracks) - "
                "batched probing is not pruning the search")
    return (f"{len(TG_CONFIGS)} configs x {len(TG_GUARDED_COUNTERS)} "
            f"counters within {tolerance:.0%} of baseline, probe effort "
            f"reduction "
            f"{f'{reduction:.2f}x' if reduction is not None else 'n/a'}")


def check_campaign(cur, base, tolerance, failures):
    if cur.get("errors") != base.get("errors"):
        failures.append(
            f"error-set size differs: current {cur.get('errors')} vs "
            f"baseline {base.get('errors')} - run bench_campaign with the "
            "same --quick setting as the baseline")

    lanes_cur = cur.get("lane_engine")
    lanes_base = base.get("lane_engine")
    if not isinstance(lanes_cur, dict) or not isinstance(lanes_base, dict):
        failures.append("lane_engine: section missing from current or "
                        "baseline report")
        return ""

    detections = set()
    for width in CAMPAIGN_WIDTHS:
        key = f"lanes_{width}"
        c, b = lanes_cur.get(key), lanes_base.get(key)
        if c is None or b is None:
            failures.append(f"lane_engine.{key}: missing from current or "
                            "baseline report")
            continue
        if c.get("detections") != b.get("detections"):
            failures.append(
                f"lane_engine.{key}: detections {c.get('detections')} != "
                f"baseline {b.get('detections')}")
        detections.add(c.get("detections"))
        for counter in CAMPAIGN_GUARDED_COUNTERS:
            check_counter(failures, f"lane_engine.{key}.{counter}",
                          c.get(counter), b.get(counter), tolerance)
    if len(detections) > 1:
        failures.append(
            f"lane_engine: detections vary with lane width: {detections} - "
            "lane width must never change a simulation outcome")

    reduction = lanes_cur.get("pass_reduction_256_vs_64")
    if reduction is None:
        failures.append("lane_engine.pass_reduction_256_vs_64: missing")
    elif reduction < MIN_PASS_REDUCTION_256:
        failures.append(
            f"lane_engine.pass_reduction_256_vs_64: {reduction:.2f} below "
            f"the {MIN_PASS_REDUCTION_256:.1f}x floor - wider lanes are "
            "not buying fewer controller passes")
    return (f"{len(CAMPAIGN_WIDTHS)} lane widths x "
            f"{len(CAMPAIGN_GUARDED_COUNTERS)} counters within "
            f"{tolerance:.0%} of baseline, pass reduction "
            f"{reduction if reduction is not None else 'n/a'}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional increase per counter")
    args = ap.parse_args()

    with open(args.current) as f:
        cur = json.load(f)
    with open(args.baseline) as f:
        base = json.load(f)

    kind = cur.get("bench")
    if kind != base.get("bench"):
        print(f"perf guard FAILED:\n  - report kinds differ: current "
              f"'{kind}' vs baseline '{base.get('bench')}'")
        return 1

    failures = []
    if kind == "campaign":
        summary = check_campaign(cur, base, args.tolerance, failures)
    elif kind == "tg_solver":
        summary = check_tg(cur, base, args.tolerance, failures)
    else:
        print(f"perf guard FAILED:\n  - unknown report kind '{kind}'")
        return 1

    if failures:
        print("perf guard FAILED:")
        for msg in failures:
            print(f"  - {msg}")
        return 1
    print(f"perf guard ok ({kind}): {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
