#!/usr/bin/env python3
"""Perf guard for the solver benchmark (bench_solver -> BENCH_tg.json).

Compares the *deterministic* search-effort counters of a fresh run against
the committed baseline (bench/baselines/BENCH_tg_baseline.json) and fails
when any regresses by more than the tolerance. Wall-clock fields are
ignored on purpose: CI machines vary, counters do not - decisions,
backtracks, DPTRACE expansions and nogood literal probes are pure functions
of the model and the configuration.

Usage: check_bench.py CURRENT.json BASELINE.json [--tolerance 0.10]
Exit: 0 ok, 1 regression or malformed input.
"""

import argparse
import json
import sys

# Lower is better; a rise beyond tolerance is a hot-path regression.
GUARDED_COUNTERS = ("decisions", "backtracks", "dptrace_expansions",
                    "nogood_comparisons")
CONFIGS = ("engine_off", "no_reuse", "engine_on", "campaign_scope",
           "warm_start", "campaign_shard")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional increase per counter")
    args = ap.parse_args()

    with open(args.current) as f:
        cur = json.load(f)
    with open(args.baseline) as f:
        base = json.load(f)

    failures = []
    if cur.get("errors") != base.get("errors"):
        failures.append(
            f"error-set size differs: current {cur.get('errors')} vs "
            f"baseline {base.get('errors')} - run bench_solver with the "
            "same --quick setting as the baseline")
    if not cur.get("outcomes_identical", False):
        failures.append("detection outcomes diverged between configurations")

    for cfg in CONFIGS:
        c, b = cur.get(cfg), base.get(cfg)
        if c is None or b is None:
            failures.append(f"{cfg}: missing from current or baseline report")
            continue
        if c.get("detected") != b.get("detected"):
            failures.append(f"{cfg}: detected {c.get('detected')} != "
                            f"baseline {b.get('detected')}")
        for key in GUARDED_COUNTERS:
            cv, bv = c.get(key), b.get(key)
            if cv is None or bv is None:
                failures.append(f"{cfg}.{key}: missing counter")
                continue
            limit = bv * (1.0 + args.tolerance)
            if cv > limit:
                failures.append(
                    f"{cfg}.{key}: {cv} exceeds baseline {bv} "
                    f"by more than {args.tolerance:.0%}")

    if failures:
        print("perf guard FAILED:")
        for msg in failures:
            print(f"  - {msg}")
        return 1
    print(f"perf guard ok: {len(CONFIGS)} configs x "
          f"{len(GUARDED_COUNTERS)} counters within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
