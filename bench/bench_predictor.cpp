// Ablation: branch-prediction logic (the paper's DLX "has ... branch
// prediction logic"; ours is configurable). Compares the predict-not-taken
// baseline against the 4-entry BTB variant on branchy workloads, and shows
// that prediction-path state is architecturally benign under error
// injection (misprediction recovery masks it).
#include <cstdio>

#include "isa/asm.h"
#include "sim/cosim.h"
#include "util/table.h"

using namespace hltg;

namespace {

TestCase loop_program(unsigned iterations) {
  std::string src = "addi r1, r0, " + std::to_string(iterations) + "\n";
  src +=
      "addi r2, r0, 0\n"
      "addi r2, r2, 1\n"   // pc 8: loop body
      "subi r1, r1, 1\n"
      "bnez r1, -3\n"      // back edge
      "sw 0x40(r0), r2\n";
  const AsmResult r = assemble(src);
  TestCase tc;
  tc.imem = encode_program(r.program);
  return tc;
}

struct RunStats {
  std::uint64_t cycles_to_store = 0;
  std::uint64_t squashes = 0;
  std::uint64_t stalls = 0;
};

RunStats run_until_store(const DlxModel& m, const TestCase& tc,
                         unsigned max_cycles) {
  ProcSim sim(m, tc);
  RunStats rs;
  for (unsigned c = 0; c < max_cycles && sim.writes().empty(); ++c)
    sim.step();
  rs.cycles_to_store = sim.cycle();
  rs.squashes = sim.squashes();
  rs.stalls = sim.stall_cycles();
  return rs;
}

}  // namespace

int main() {
  std::printf("== ablation: microarchitecture design space ==\n\n");
  const DlxModel base = build_dlx();
  const DlxModel bp = build_dlx({.branch_predictor = true});
  const DlxModel nb = build_dlx({.bypassing = false});
  const DlxModel full =
      build_dlx({.branch_predictor = true, .bypassing = false});

  TextTable t({"loop iterations", "machine", "cycles", "squashes", "stalls",
               "cycles/iteration"});
  struct M {
    const char* name;
    const DlxModel* m;
  };
  const M machines[] = {{"bypass + not-taken (default)", &base},
                        {"bypass + BTB", &bp},
                        {"interlock-only + not-taken", &nb},
                        {"interlock-only + BTB", &full}};
  for (unsigned n : {8u, 32u}) {
    const TestCase tc = loop_program(n);
    bool first = true;
    for (const M& mm : machines) {
      const RunStats r = run_until_store(*mm.m, tc, 32 * n + 64);
      t.add_row({first ? std::to_string(n) : "", mm.name,
                 std::to_string(r.cycles_to_store), std::to_string(r.squashes),
                 std::to_string(r.stalls),
                 fmt_double(double(r.cycles_to_store) / n, 2)});
      first = false;
    }
  }
  t.print();

  // Architectural equivalence of both machines on the same workloads.
  bool all_match = true;
  for (unsigned n : {4u, 8u, 16u}) {
    const TestCase tc = loop_program(n);
    const unsigned cycles = 16 * n + 64;
    all_match &= cosim(base, tc, cycles).match;
    all_match &= cosim(bp, tc, cycles).match;
  }
  std::printf("\nspec equivalence of both machines on loop workloads: %s\n",
              all_match ? "OK" : "MISMATCH");
  std::printf(
      "shape check: the BTB removes the two-cycle squash penalty from every\n"
      "correctly predicted back edge (squashes drop from ~N to ~2) while\n"
      "remaining architecturally invisible.\n");
  return all_match ? 0 : 1;
}
