// Ablation of the test generator's own design choices (DESIGN.md §5):
//   - plan-shape deduplication (skip confirm-failed path shapes),
//   - reset-trajectory pre-check (skip plans the reset state already
//     violates),
//   - control-flow divergence macros (branch-path error templates),
//   - observation-route diversity (plans per activation cycle),
// measured on the full Table-1 SSL population.
#include <cstdio>

#include "core/tg.h"
#include "util/table.h"

using namespace hltg;

namespace {

struct Row {
  const char* name;
  TgConfig cfg;
};

}  // namespace

int main() {
  std::printf("== ablation: TG design choices on the Table-1 population ==\n\n");
  const DlxModel m = build_dlx();
  const auto errors = wrap(enumerate_bus_ssl(m.dp));

  std::vector<Row> rows;
  rows.push_back({"full system", {}});
  {
    TgConfig c;
    c.shape_dedup = false;
    rows.push_back({"- shape dedup", c});
  }
  {
    TgConfig c;
    c.reset_precheck = false;
    rows.push_back({"- reset pre-check", c});
  }
  {
    TgConfig c;
    c.control_flow_macros = false;
    rows.push_back({"- control-flow macros", c});
  }
  {
    TgConfig c;
    c.trace.plans_per_activation = 1;
    rows.push_back({"- observation diversity (1 plan/cycle)", c});
  }
  {
    TgConfig c;
    c.retry_window = 0;
    rows.push_back({"- window retry", c});
  }

  TextTable t({"configuration", "detected", "aborted", "avg len",
               "backtracks", "seconds"});
  for (const Row& row : rows) {
    TestGenerator tg(m, row.cfg);
    const CampaignResult res = run_campaign(m.dp, errors, tg.strategy());
    t.add_row({row.name, std::to_string(res.stats.detected),
               std::to_string(res.stats.aborted),
               fmt_double(res.stats.avg_test_length, 1),
               std::to_string(res.stats.backtracks),
               fmt_double(res.stats.cpu_seconds, 2)});
  }
  t.print();
  std::printf(
      "\nreading: each removed mechanism costs detections (macros), wastes\n"
      "search effort (dedup / pre-check), or narrows escape routes around\n"
      "structurally lossy observation points (diversity).\n");
  return 0;
}
