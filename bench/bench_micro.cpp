// E7 - Engineering microbenchmarks (google-benchmark).
//
// Throughput numbers for the substrates the CPU-time comparison rests on:
// the cycle-accurate two-level simulator, 3-valued controller implication
// over the unrolled window, relaxation window capture, and one full TG run.
#include <benchmark/benchmark.h>

#include "baseline/random_tg.h"
#include "core/archstate.h"
#include "core/tg.h"
#include "core/unroll.h"
#include "sim/cosim.h"

using namespace hltg;

namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

TestCase sample_test() {
  Rng rng(7);
  RandomTgConfig cfg;
  cfg.program_length = 32;
  return random_test(rng, cfg);
}

void BM_ProcSimCycles(benchmark::State& state) {
  const TestCase tc = sample_test();
  for (auto _ : state) {
    ProcSim sim(model(), tc);
    sim.run(static_cast<unsigned>(state.range(0)));
    benchmark::DoNotOptimize(sim.reg(1));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProcSimCycles)->Arg(64)->Arg(256);

void BM_SpecSimInstructions(benchmark::State& state) {
  const TestCase tc = sample_test();
  for (auto _ : state) {
    SpecSimulator sim(tc);
    benchmark::DoNotOptimize(sim.run(static_cast<unsigned>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpecSimInstructions)->Arg(256);

void BM_ControllerImply(benchmark::State& state) {
  ControllerWindow win(model().ctrl, static_cast<unsigned>(state.range(0)));
  win.assign(model().cpi[0], 0, L3::T);
  for (auto _ : state) {
    win.imply();
    benchmark::DoNotOptimize(win.value(model().cpi[0], 0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ControllerImply)->Arg(8)->Arg(14)->Arg(24);

void BM_WindowCapture(benchmark::State& state) {
  const TestCase tc = sample_test();
  for (auto _ : state) {
    benchmark::DoNotOptimize(capture_window(model(), tc, 14));
  }
}
BENCHMARK(BM_WindowCapture);

void BM_CosimDetect(benchmark::State& state) {
  const TestCase tc = sample_test();
  const auto ssl = enumerate_bus_ssl(model().dp);
  const ErrorInjection inj = BusSslError{ssl[0].net, 0, false}.injection();
  for (auto _ : state) {
    benchmark::DoNotOptimize(detects(model(), tc, inj));
  }
}
BENCHMARK(BM_CosimDetect);

void BM_FullTgOneError(benchmark::State& state) {
  const NetId site = model().dp.find_net("ex.alu_add");
  DesignError err{BusSslError{site, 0, false}};
  for (auto _ : state) {
    TestGenerator tg(model());
    benchmark::DoNotOptimize(tg.generate(err).status);
  }
}
BENCHMARK(BM_FullTgOneError);

void BM_BuildDlxModel(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_dlx().dp.num_nets());
  }
}
BENCHMARK(BM_BuildDlxModel);

}  // namespace

BENCHMARK_MAIN();
