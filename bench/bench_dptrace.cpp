// DPTRACE microbenchmark (google-benchmark): the best-first plan enumerator
// with and without cross-activation search reuse (DpTraceConfig::reuse,
// docs/PERFORMANCE.md), over representative datapath sites and windows, plus
// the nogood application schemes (watched assignments vs full-store rescan)
// on a CTRLJUST corpus that learns and replays conflict cuts.
#include <benchmark/benchmark.h>

#include "core/ctrljust.h"
#include "core/dptrace.h"
#include "dlx/dlx.h"
#include "solver/solver.h"

using namespace hltg;

namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

GateId ctrl_bit(const char* net_name, unsigned bit = 0) {
  return model().find_ctrl(model().dp.find_net(net_name))->bits[bit];
}

// Sites spanning the pipeline: an EX-stage result bus (short paths), a
// decode-stage operand bus (needs forwarding/stall choices) and the
// store-data shifter bus (memory-path plans).
const char* kSites[] = {"ex.alu_add", "id.rf_a", "mem.sdata_sh"};

void BM_DpTracePlans(benchmark::State& state) {
  DpTraceConfig cfg;
  cfg.window = static_cast<unsigned>(state.range(0));
  cfg.reuse = state.range(1) != 0;
  const DpTrace trace(model(), cfg);
  DpTraceStats stats;
  for (auto _ : state) {
    for (const char* s : kSites) {
      const NetId site = model().dp.find_net(s);
      benchmark::DoNotOptimize(trace.plans(site, {}, nullptr, &stats).size());
    }
  }
  state.counters["expansions_per_iter"] = benchmark::Counter(
      static_cast<double>(stats.expansions),
      benchmark::Counter::kAvgIterations);
  state.counters["reused"] = benchmark::Counter(
      static_cast<double>(stats.searches_reused),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_DpTracePlans)
    ->ArgNames({"window", "reuse"})
    ->Args({14, 0})
    ->Args({14, 1})
    ->Args({20, 0})
    ->Args({20, 1});

// An objective corpus that provokes conflicts (unreachable demands) so the
// nogood store fills up, then replays solvable sets against the learned
// cuts - the regime where application cost dominates.
std::vector<std::vector<CtrlObjective>> nogood_corpus() {
  std::vector<std::vector<CtrlObjective>> corpus;
  corpus.push_back({{ctrl_bit("ctrl.mem_we"), 3, true}});
  corpus.push_back({{ctrl_bit("ctrl.mem_we"), 4, true}});
  corpus.push_back({{ctrl_bit("ctrl.rf_we"), 2, true}});  // unreachable
  corpus.push_back({{ctrl_bit("ctrl.rf_we"), 4, true}});
  corpus.push_back({{ctrl_bit("ctrl.alu_sel", 0), 4, true}});
  corpus.push_back({{ctrl_bit("ctrl.alu_sel", 1), 4, true},
                    {ctrl_bit("ctrl.alu_sel", 0), 4, false}});
  corpus.push_back({{ctrl_bit("ctrl.alu_sel", 0), 4, true},
                    {ctrl_bit("ctrl.alu_sel", 1), 4, true},
                    {ctrl_bit("ctrl.alu_sel", 2), 4, true},
                    {ctrl_bit("ctrl.alu_sel", 3), 4, true}});  // no such op
  corpus.push_back({{ctrl_bit("ctrl.mem_we"), 3, true},
                    {ctrl_bit("ctrl.rf_we"), 4, true}});
  corpus.push_back({{ctrl_bit("ctrl.mem_we"), 3, true},
                    {ctrl_bit("ctrl.rf_we"), 5, true}});
  corpus.push_back({{ctrl_bit("ctrl.fwd_a"), 4, true}});
  return corpus;
}

void BM_NogoodApply(benchmark::State& state) {
  const auto corpus = nogood_corpus();
  SolverConfig cfg;
  cfg.use_cache = false;  // keep every solve live
  cfg.use_nogood_watches = state.range(0) != 0;
  std::uint64_t probes = 0;
  for (auto _ : state) {
    SolverContext ctx(cfg);
    for (const auto& objs : corpus) {
      CtrlJust cj(model().ctrl, 10);
      cj.set_context(&ctx);
      probes += cj.solve(objs).stats.nogood_comparisons;
    }
  }
  state.counters["probes_per_iter"] = benchmark::Counter(
      static_cast<double>(probes), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_NogoodApply)->ArgNames({"watch"})->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
