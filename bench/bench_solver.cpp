// Solver-subsystem benchmark: the Table-1 bus-SSL error set generated with
// the shared deduction subsystem (implication engine + learned nogoods +
// justification cache, docs/SOLVER.md) against the legacy pure-PODEM
// CTRLJUST, emitted as a machine-readable JSON report (BENCH_tg.json) so CI
// can archive the numbers run over run.
//
//   $ ./bench_solver [--quick] [--out BENCH_tg.json]
//
// Per configuration the report carries per-error wall-time p50/p95,
// decision/backtrack/implication totals, and the justification-cache hit
// rate; the headline comparison is the (decisions + backtracks) reduction
// with the engine on. The benchmark also asserts that the two
// configurations detect the *same* errors - the solver is a pure search
// accelerator, never a behaviour change - and exits nonzero on divergence.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/tg.h"
#include "sim/cosim.h"

using namespace hltg;

namespace {

struct RunStats {
  std::vector<double> seconds;  ///< per-error wall time
  std::vector<bool> detected;   ///< per-error outcome
  std::size_t detected_count = 0;
  std::uint64_t decisions = 0;
  std::uint64_t backtracks = 0;
  std::uint64_t implications = 0;
  std::uint64_t learned = 0;
  std::uint64_t nogood_hits = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_lookups = 0;
  double total_seconds = 0;

  double percentile(double p) const {
    if (seconds.empty()) return 0;
    std::vector<double> s = seconds;
    std::sort(s.begin(), s.end());
    const std::size_t i = static_cast<std::size_t>(p * (s.size() - 1) + 0.5);
    return s[std::min(i, s.size() - 1)];
  }
  double cache_hit_rate() const {
    return cache_lookups ? static_cast<double>(cache_hits) / cache_lookups : 0;
  }
};

RunStats run(const DlxModel& m, const std::vector<DesignError>& errors,
             bool engine) {
  TgConfig cfg;
  cfg.solver.enable = engine;
  TestGenerator tg(m, cfg);
  RunStats out;
  for (const DesignError& err : errors) {
    const auto t0 = std::chrono::steady_clock::now();
    const TgResult r = tg.generate(err);
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    out.seconds.push_back(s);
    out.total_seconds += s;
    out.detected.push_back(r.status == TgStatus::kSuccess);
    out.detected_count += r.status == TgStatus::kSuccess;
    out.decisions += r.stats.decisions;
    out.backtracks += r.stats.backtracks + r.stats.plan_retries;
    out.implications += r.stats.implications;
    out.learned += r.stats.learned;
    out.nogood_hits += r.stats.nogood_hits;
    out.cache_hits += r.stats.cache_hits;
    out.cache_lookups += r.stats.cache_lookups;
  }
  return out;
}

void emit(std::FILE* f, const char* name, const RunStats& r) {
  std::fprintf(f,
               "  \"%s\": {\"seconds\": %.4f, \"per_error_p50\": %.6f, "
               "\"per_error_p95\": %.6f, \"detected\": %zu, "
               "\"decisions\": %llu, \"backtracks\": %llu, "
               "\"implications\": %llu, \"learned\": %llu, "
               "\"nogood_hits\": %llu, \"cache_hits\": %llu, "
               "\"cache_lookups\": %llu, \"cache_hit_rate\": %.4f}",
               name, r.total_seconds, r.percentile(0.50), r.percentile(0.95),
               r.detected_count,
               static_cast<unsigned long long>(r.decisions),
               static_cast<unsigned long long>(r.backtracks),
               static_cast<unsigned long long>(r.implications),
               static_cast<unsigned long long>(r.learned),
               static_cast<unsigned long long>(r.nogood_hits),
               static_cast<unsigned long long>(r.cache_hits),
               static_cast<unsigned long long>(r.cache_lookups),
               r.cache_hit_rate());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_tg.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick"))
      quick = true;
    else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
      out_path = argv[++i];
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 1;
    }
  }

  const DlxModel m = build_dlx();
  std::vector<DesignError> errors = wrap(enumerate_bus_ssl(m.dp));
  if (quick && errors.size() > 64) errors.resize(64);
  std::printf("bench_solver: %zu Table-1 SSL errors\n", errors.size());

  const RunStats off = run(m, errors, /*engine=*/false);
  std::printf("engine off: %.2fs, %zu detected, %llu decisions, "
              "%llu backtracks\n",
              off.total_seconds, off.detected_count,
              static_cast<unsigned long long>(off.decisions),
              static_cast<unsigned long long>(off.backtracks));

  const RunStats on = run(m, errors, /*engine=*/true);
  std::printf("engine on : %.2fs, %zu detected, %llu decisions, "
              "%llu backtracks, %llu forced, %llu nogoods (%llu fired), "
              "cache %.0f%% of %llu lookups\n",
              on.total_seconds, on.detected_count,
              static_cast<unsigned long long>(on.decisions),
              static_cast<unsigned long long>(on.backtracks),
              static_cast<unsigned long long>(on.implications),
              static_cast<unsigned long long>(on.learned),
              static_cast<unsigned long long>(on.nogood_hits),
              100.0 * on.cache_hit_rate(),
              static_cast<unsigned long long>(on.cache_lookups));

  const double effort_off = static_cast<double>(off.decisions + off.backtracks);
  const double effort_on = static_cast<double>(on.decisions + on.backtracks);
  const double reduction = effort_on > 0 ? effort_off / effort_on : 0;
  std::printf("search effort (decisions + backtracks): %.0f -> %.0f "
              "(%.2fx reduction)\n",
              effort_off, effort_on, reduction);

  bool outcomes_identical = off.detected == on.detected;
  if (!outcomes_identical)
    std::printf("ERROR: detection outcomes diverged between engine on/off\n");

  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"tg_solver\",\n"
               "  \"quick\": %s,\n"
               "  \"errors\": %zu,\n",
               quick ? "true" : "false", errors.size());
  emit(f, "engine_off", off);
  std::fprintf(f, ",\n");
  emit(f, "engine_on", on);
  std::fprintf(f,
               ",\n"
               "  \"effort_reduction\": %.3f,\n"
               "  \"outcomes_identical\": %s\n"
               "}\n",
               reduction, outcomes_identical ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return outcomes_identical ? 0 : 2;
}
