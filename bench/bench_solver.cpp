// Solver-subsystem benchmark: the Table-1 bus-SSL error set generated under
// four configurations, emitted as a machine-readable JSON report
// (BENCH_tg.json) so CI can archive the numbers run over run and guard the
// hot-path counters against regressions (tools/check_bench.py).
//
//   engine_off     legacy pure-PODEM CTRLJUST, no DPTRACE reuse
//   no_reuse       engine on, but DPTRACE memo / nogood watches / DPRELAX
//                  memo all off - the hot paths before the reuse overhaul
//   engine_on      full defaults (per-error solver scope)
//   probe_batch    engine on plus batched decision probing (--probe on):
//                  lane-parallel lookahead refutes doomed branches before
//                  they cost a decision + backtrack pair (docs/SOLVER.md,
//                  "Batched probing")
//   campaign_scope engine on with campaign-lifetime deduction reuse
//   warm_start     campaign scope warm-started from the deduction snapshot
//                  the campaign_scope pass exported (the persisted-store
//                  path of docs/ROBUSTNESS.md, minus the file I/O)
//   campaign_shard campaign scope split over 4 round-robin shards with a
//                  shared NogoodBoard, interleaved deterministically on one
//                  thread - the per-worker deduction state of a --jobs 4
//                  sharded campaign without scheduler noise
//
//   $ ./bench_solver [--quick] [--out BENCH_tg.json]
//
// Per configuration the report carries per-error wall-time p50/p95, the
// decision/backtrack/implication totals, DPTRACE expansion counts, nogood
// literal-probe counts and the cache hit rates. Headlines: the
// (decisions + backtracks) reduction engine-on vs engine-off, the DPTRACE
// expansion reduction and the nogood-probe reduction reuse-on vs reuse-off.
// The benchmark also asserts that every configuration detects the *same*
// errors - the solver and the reuse layers are pure search accelerators,
// never a behaviour change - and exits nonzero on divergence.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/tg.h"
#include "sim/cosim.h"
#include "solver/nogood_board.h"
#include "solver/store.h"

using namespace hltg;

namespace {

struct RunStats {
  std::vector<double> seconds;  ///< per-error wall time
  std::vector<bool> detected;   ///< per-error outcome
  std::size_t detected_count = 0;
  std::uint64_t decisions = 0;
  std::uint64_t backtracks = 0;
  std::uint64_t implications = 0;
  std::uint64_t learned = 0;
  std::uint64_t nogood_hits = 0;
  std::uint64_t nogood_comparisons = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_lookups = 0;
  std::uint64_t dptrace_expansions = 0;
  std::uint64_t dptrace_searches = 0;
  std::uint64_t dptrace_reused = 0;
  std::uint64_t relax_hits = 0;
  std::uint64_t relax_lookups = 0;
  std::uint64_t relax_cross_site_misses = 0;
  std::uint64_t relax_pair_captures = 0;
  std::uint64_t cpi_dont_cares = 0;
  std::uint64_t dontcare_candidates = 0;
  std::uint64_t probe_batches = 0;
  std::uint64_t probe_lanes = 0;
  std::uint64_t probe_prunes = 0;
  double total_seconds = 0;

  double percentile(double p) const {
    if (seconds.empty()) return 0;
    std::vector<double> s = seconds;
    std::sort(s.begin(), s.end());
    const std::size_t i = static_cast<std::size_t>(p * (s.size() - 1) + 0.5);
    return s[std::min(i, s.size() - 1)];
  }
  double cache_hit_rate() const {
    return cache_lookups ? static_cast<double>(cache_hits) / cache_lookups : 0;
  }
};

void fold(RunStats* out, const TgResult& r, double s) {
  out->seconds.push_back(s);
  out->total_seconds += s;
  out->detected.push_back(r.status == TgStatus::kSuccess);
  out->detected_count += r.status == TgStatus::kSuccess;
  out->decisions += r.stats.decisions;
  out->backtracks += r.stats.backtracks + r.stats.plan_retries;
  out->implications += r.stats.implications;
  out->learned += r.stats.learned;
  out->nogood_hits += r.stats.nogood_hits;
  out->nogood_comparisons += r.stats.nogood_comparisons;
  out->cache_hits += r.stats.cache_hits;
  out->cache_lookups += r.stats.cache_lookups;
  out->dptrace_expansions += r.stats.dptrace_expansions;
  out->dptrace_searches += r.stats.dptrace_searches;
  out->dptrace_reused += r.stats.dptrace_reused;
  out->relax_hits += r.stats.relax_hits;
  out->relax_lookups += r.stats.relax_lookups;
  out->relax_cross_site_misses += r.stats.relax_cross_site_misses;
  out->relax_pair_captures += r.stats.relax_pair_captures;
  out->cpi_dont_cares += r.stats.cpi_dont_cares;
  out->dontcare_candidates += r.stats.dontcare_candidates;
  out->probe_batches += r.stats.probe_batches;
  out->probe_lanes += r.stats.probe_lanes;
  out->probe_prunes += r.stats.probe_prunes;
}

/// One generator over the whole population. `warm` (optional) is imported
/// before the first error; `out_snap` (optional) receives the final
/// deduction snapshot - together they model the persisted-store warm start.
RunStats run(const DlxModel& m, const std::vector<DesignError>& errors,
             const TgConfig& cfg, const DedSnapshot* warm = nullptr,
             DedSnapshot* out_snap = nullptr) {
  TestGenerator tg(m, cfg);
  if (warm) import_context(*warm, &tg.solver_context());
  RunStats out;
  for (const DesignError& err : errors) {
    const auto t0 = std::chrono::steady_clock::now();
    const TgResult r = tg.generate(err);
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    fold(&out, r, s);
  }
  if (out_snap) *out_snap = export_context(tg.solver_context());
  return out;
}

/// `lanes` campaign-scope generators sharing one NogoodBoard, error i on
/// lane i % lanes - a sharded multi-worker campaign interleaved
/// deterministically on one thread. The board sync runs inside generate(),
/// exactly as in the parallel engine.
RunStats run_sharded(const DlxModel& m, const std::vector<DesignError>& errors,
                     TgConfig cfg, unsigned lanes) {
  NogoodBoard board;
  cfg.solver.scope = SolverScope::kCampaign;
  cfg.solver.shared_board = &board;
  std::vector<std::unique_ptr<TestGenerator>> gens;
  for (unsigned i = 0; i < lanes; ++i)
    gens.push_back(std::make_unique<TestGenerator>(m, cfg));
  RunStats out;
  for (std::size_t i = 0; i < errors.size(); ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const TgResult r = gens[i % lanes]->generate(errors[i]);
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    fold(&out, r, s);
  }
  return out;
}

void emit(std::FILE* f, const char* name, const RunStats& r) {
  std::fprintf(
      f,
      "  \"%s\": {\"seconds\": %.4f, \"per_error_p50\": %.6f, "
      "\"per_error_p95\": %.6f, \"detected\": %zu, "
      "\"decisions\": %llu, \"backtracks\": %llu, "
      "\"implications\": %llu, \"learned\": %llu, "
      "\"nogood_hits\": %llu, \"nogood_comparisons\": %llu, "
      "\"cache_hits\": %llu, \"cache_lookups\": %llu, "
      "\"cache_hit_rate\": %.4f, \"dptrace_expansions\": %llu, "
      "\"dptrace_searches\": %llu, \"dptrace_reused\": %llu, "
      "\"relax_hits\": %llu, \"relax_lookups\": %llu, "
      "\"relax_cross_site_misses\": %llu, "
      "\"relax_pair_captures\": %llu, \"cpi_dont_cares\": %llu, "
      "\"dontcare_candidates\": %llu, \"probe_batches\": %llu, "
      "\"probe_lanes\": %llu, \"probe_prunes\": %llu}",
      name, r.total_seconds, r.percentile(0.50), r.percentile(0.95),
      r.detected_count, static_cast<unsigned long long>(r.decisions),
      static_cast<unsigned long long>(r.backtracks),
      static_cast<unsigned long long>(r.implications),
      static_cast<unsigned long long>(r.learned),
      static_cast<unsigned long long>(r.nogood_hits),
      static_cast<unsigned long long>(r.nogood_comparisons),
      static_cast<unsigned long long>(r.cache_hits),
      static_cast<unsigned long long>(r.cache_lookups), r.cache_hit_rate(),
      static_cast<unsigned long long>(r.dptrace_expansions),
      static_cast<unsigned long long>(r.dptrace_searches),
      static_cast<unsigned long long>(r.dptrace_reused),
      static_cast<unsigned long long>(r.relax_hits),
      static_cast<unsigned long long>(r.relax_lookups),
      static_cast<unsigned long long>(r.relax_cross_site_misses),
      static_cast<unsigned long long>(r.relax_pair_captures),
      static_cast<unsigned long long>(r.cpi_dont_cares),
      static_cast<unsigned long long>(r.dontcare_candidates),
      static_cast<unsigned long long>(r.probe_batches),
      static_cast<unsigned long long>(r.probe_lanes),
      static_cast<unsigned long long>(r.probe_prunes));
}

double ratio(std::uint64_t base, std::uint64_t opt) {
  return opt > 0 ? static_cast<double>(base) / static_cast<double>(opt) : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_tg.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick"))
      quick = true;
    else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
      out_path = argv[++i];
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 1;
    }
  }

  const DlxModel m = build_dlx();
  std::vector<DesignError> errors = wrap(enumerate_bus_ssl(m.dp));
  if (quick && errors.size() > 64) errors.resize(64);
  std::printf("bench_solver: %zu Table-1 SSL errors\n", errors.size());

  TgConfig off_cfg;
  off_cfg.solver.enable = false;
  off_cfg.trace.reuse = false;
  const RunStats off = run(m, errors, off_cfg);
  std::printf("engine off    : %.2fs, %zu detected, %llu decisions, "
              "%llu backtracks, %llu expansions\n",
              off.total_seconds, off.detected_count,
              static_cast<unsigned long long>(off.decisions),
              static_cast<unsigned long long>(off.backtracks),
              static_cast<unsigned long long>(off.dptrace_expansions));

  TgConfig noreuse_cfg;
  noreuse_cfg.trace.reuse = false;
  noreuse_cfg.solver.use_nogood_watches = false;
  noreuse_cfg.solver.use_relax_cache = false;
  const RunStats noreuse = run(m, errors, noreuse_cfg);
  std::printf("no reuse      : %.2fs, %zu detected, %llu expansions, "
              "%llu nogood probes\n",
              noreuse.total_seconds, noreuse.detected_count,
              static_cast<unsigned long long>(noreuse.dptrace_expansions),
              static_cast<unsigned long long>(noreuse.nogood_comparisons));

  const RunStats on = run(m, errors, TgConfig{});
  std::printf("engine on     : %.2fs, %zu detected, %llu decisions, "
              "%llu backtracks, %llu forced, %llu nogoods (%llu fired), "
              "cache %.0f%% of %llu lookups, %llu expansions "
              "(%llu/%llu searches reused), %llu nogood probes\n",
              on.total_seconds, on.detected_count,
              static_cast<unsigned long long>(on.decisions),
              static_cast<unsigned long long>(on.backtracks),
              static_cast<unsigned long long>(on.implications),
              static_cast<unsigned long long>(on.learned),
              static_cast<unsigned long long>(on.nogood_hits),
              100.0 * on.cache_hit_rate(),
              static_cast<unsigned long long>(on.cache_lookups),
              static_cast<unsigned long long>(on.dptrace_expansions),
              static_cast<unsigned long long>(on.dptrace_reused),
              static_cast<unsigned long long>(on.dptrace_searches +
                                              on.dptrace_reused),
              static_cast<unsigned long long>(on.nogood_comparisons));

  TgConfig probe_cfg;
  probe_cfg.ctrljust.use_probes = true;
  const RunStats probe = run(m, errors, probe_cfg);
  std::printf("probe batch   : %.2fs, %zu detected, %llu decisions, "
              "%llu backtracks, %llu prunes over %llu lanes "
              "(%llu sweeps)\n",
              probe.total_seconds, probe.detected_count,
              static_cast<unsigned long long>(probe.decisions),
              static_cast<unsigned long long>(probe.backtracks),
              static_cast<unsigned long long>(probe.probe_prunes),
              static_cast<unsigned long long>(probe.probe_lanes),
              static_cast<unsigned long long>(probe.probe_batches));

  TgConfig campaign_cfg;
  campaign_cfg.solver.scope = SolverScope::kCampaign;
  DedSnapshot snapshot;
  const RunStats campaign = run(m, errors, campaign_cfg, nullptr, &snapshot);
  std::printf("campaign scope: %.2fs, %zu detected, cache %.0f%% of %llu "
              "lookups, %llu relax replays of %llu (%llu cross-site "
              "misses)\n",
              campaign.total_seconds, campaign.detected_count,
              100.0 * campaign.cache_hit_rate(),
              static_cast<unsigned long long>(campaign.cache_lookups),
              static_cast<unsigned long long>(campaign.relax_hits),
              static_cast<unsigned long long>(campaign.relax_lookups),
              static_cast<unsigned long long>(
                  campaign.relax_cross_site_misses));

  const RunStats warm = run(m, errors, campaign_cfg, &snapshot);
  std::printf("warm start    : %.2fs, %zu detected, cache %.0f%% of %llu "
              "lookups, %llu relax replays of %llu (%zu deductions "
              "carried in)\n",
              warm.total_seconds, warm.detected_count,
              100.0 * warm.cache_hit_rate(),
              static_cast<unsigned long long>(warm.cache_lookups),
              static_cast<unsigned long long>(warm.relax_hits),
              static_cast<unsigned long long>(warm.relax_lookups),
              snapshot.entries());

  const RunStats shard = run_sharded(m, errors, TgConfig{}, 4);
  std::printf("campaign shard: %.2fs, %zu detected, %llu nogoods learned, "
              "cache %.0f%% of %llu lookups (4 lanes, shared board)\n",
              shard.total_seconds, shard.detected_count,
              static_cast<unsigned long long>(shard.learned),
              100.0 * shard.cache_hit_rate(),
              static_cast<unsigned long long>(shard.cache_lookups));

  const double effort_reduction =
      ratio(off.decisions + off.backtracks, on.decisions + on.backtracks);
  const double expansion_reduction =
      ratio(noreuse.dptrace_expansions, on.dptrace_expansions);
  const double probe_reduction =
      ratio(noreuse.nogood_comparisons, on.nogood_comparisons);
  const double probe_effort_reduction =
      ratio(on.decisions + on.backtracks,
            probe.decisions + probe.backtracks);
  std::printf("search effort (decisions + backtracks): %llu -> %llu "
              "(%.2fx reduction)\n",
              static_cast<unsigned long long>(off.decisions + off.backtracks),
              static_cast<unsigned long long>(on.decisions + on.backtracks),
              effort_reduction);
  std::printf("DPTRACE expansions: %llu -> %llu (%.2fx reduction)\n",
              static_cast<unsigned long long>(noreuse.dptrace_expansions),
              static_cast<unsigned long long>(on.dptrace_expansions),
              expansion_reduction);
  std::printf("nogood literal probes: %llu -> %llu (%.2fx reduction)\n",
              static_cast<unsigned long long>(noreuse.nogood_comparisons),
              static_cast<unsigned long long>(on.nogood_comparisons),
              probe_reduction);
  std::printf("batched probing (decisions + backtracks): %llu -> %llu "
              "(%.2fx reduction)\n",
              static_cast<unsigned long long>(on.decisions + on.backtracks),
              static_cast<unsigned long long>(probe.decisions +
                                              probe.backtracks),
              probe_effort_reduction);

  const bool outcomes_identical = off.detected == on.detected &&
                                  off.detected == noreuse.detected &&
                                  off.detected == probe.detected &&
                                  off.detected == campaign.detected &&
                                  off.detected == warm.detected &&
                                  off.detected == shard.detected;
  if (!outcomes_identical)
    std::printf("ERROR: detection outcomes diverged between configurations\n");

  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"tg_solver\",\n"
               "  \"quick\": %s,\n"
               "  \"errors\": %zu,\n",
               quick ? "true" : "false", errors.size());
  emit(f, "engine_off", off);
  std::fprintf(f, ",\n");
  emit(f, "no_reuse", noreuse);
  std::fprintf(f, ",\n");
  emit(f, "engine_on", on);
  std::fprintf(f, ",\n");
  emit(f, "probe_batch", probe);
  std::fprintf(f, ",\n");
  emit(f, "campaign_scope", campaign);
  std::fprintf(f, ",\n");
  emit(f, "warm_start", warm);
  std::fprintf(f, ",\n");
  emit(f, "campaign_shard", shard);
  std::fprintf(f,
               ",\n"
               "  \"effort_reduction\": %.3f,\n"
               "  \"expansion_reduction\": %.3f,\n"
               "  \"probe_reduction\": %.3f,\n"
               "  \"probe_effort_reduction\": %.3f,\n"
               "  \"outcomes_identical\": %s\n"
               "}\n",
               effort_reduction, expansion_reduction, probe_reduction,
               probe_effort_reduction,
               outcomes_identical ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return outcomes_identical ? 0 : 2;
}
