// E1 / E5 - Reproduction of Table 1 (and the test-shape claims of Sec. VI):
// high-level test generation for all bus SSL errors in the execute, memory
// and write-back stages of the DLX datapath.
//
// Paper reference values (DAC'99, Table 1):
//   errors 298, detected 252 (85%), aborted 46, average length 6.2,
//   backtracks (detected only) 50, CPU 36 min (1999 hardware, no error
//   simulation, no re-use of work).
#include <cstdio>
#include <string>

#include "core/tg.h"
#include "dlx/signal_names.h"
#include "errors/coverage.h"
#include "errors/redundancy.h"
#include "sim/batch_sim.h"
#include "isa/disasm.h"
#include "sim/cosim.h"
#include "util/table.h"

using namespace hltg;

int main(int argc, char** argv) {
  const bool verbose = argc > 1 && std::string(argv[1]) == "-v";
  std::printf("== E1: Table 1 - bus SSL errors in EX/MEM/WB of DLX ==\n\n");

  const DlxModel m = build_dlx();
  std::printf("%s\n", describe_model(m).c_str());

  const auto ssl = enumerate_bus_ssl(m.dp);
  const auto redundant = redundant_subset(m.dp, ssl);
  const auto errors = wrap(ssl);

  TestGenerator tg(m);
  const CampaignResult res =
      run_campaign(m.dp, errors, tg.strategy(), verbose);

  std::printf("%s\n",
              res.stats.table1("Table 1 (this reproduction)").c_str());

  TextTable paper({"Table 1 (paper, DAC'99)", "value"});
  paper.add_kv("No. of errors", "298");
  paper.add_kv("No. of errors detected", "252");
  paper.add_kv("No. of errors aborted", "46");
  paper.add_kv("Average test sequence length", "6.2");
  paper.add_kv("No. of backtracks (detected errors only)", "50");
  paper.add_kv("CPU time [minutes]", "36");
  std::printf("%s\n", paper.to_string().c_str());

  const double det_rate =
      100.0 * res.stats.detected / std::max<std::size_t>(1, res.stats.total);
  std::printf("detection rate: %.1f%% (paper: 84.6%%)\n", det_rate);
  std::printf(
      "provably undetectable (redundant) errors among the aborted: %zu of "
      "%zu aborted\n",
      redundant.size(), res.stats.aborted);

  // E5: test-sequence shape. The paper: "typical sequences consist of a few
  // non-trivial instructions followed by a sequence of NOP instructions."
  std::printf("\n== E5: test sequence length histogram (detected errors) ==\n");
  for (std::size_t len = 0; len < res.stats.length_histogram.size(); ++len) {
    const unsigned n = res.stats.length_histogram[len];
    if (n == 0) continue;
    std::printf("  len %2zu: %4u  %s\n", len, n,
                std::string(std::min<unsigned>(n, 60), '#').c_str());
  }

  // Sec. VI: "no error simulation was used in this preliminary
  // implementation, and ... much re-use of work ... has not yet been
  // exploited. Therefore, we can expect that run times will significantly
  // improve as these issues are addressed." - quantify that improvement
  // with error dropping (fortuitous detection by already-generated tests).
  std::printf("\n== E1b: error dropping (the re-use the paper predicted) ==\n");
  TestGenerator tg2(m);
  const CampaignResult dres =
      run_campaign_with_dropping(m.dp, errors, tg2.budgeted_strategy(),
                                 batch_detector(m), CampaignConfig{});
  TextTable dt({"metric", "no dropping", "with dropping"});
  dt.add_row({"errors detected", std::to_string(res.stats.detected),
              std::to_string(dres.stats.detected)});
  dt.add_row({"generator invocations", std::to_string(res.stats.total),
              std::to_string(dres.stats.total - dres.dropped)});
  dt.add_row({"tests in final set", std::to_string(res.tests_kept),
              std::to_string(dres.tests_kept)});
  dt.add_row({"fortuitously dropped", "0", std::to_string(dres.dropped)});
  dt.add_row({"generator seconds", fmt_double(res.stats.cpu_seconds, 2),
              fmt_double(dres.stats.cpu_seconds, 2)});
  dt.add_row({"error-simulation seconds", "0",
              fmt_double(dres.dropping_seconds, 2)});
  dt.print();

  // What does the generated suite itself exercise?
  std::vector<TestCase> suite;
  for (const CampaignRow& row : res.rows)
    if (row.attempt.generated) suite.push_back(row.attempt.test);
  std::printf("\n== generated-suite coverage ==\n%s\n",
              measure_coverage(m, suite).to_string().c_str());

  // Show a few representative generated tests.
  std::printf("\nsample generated tests:\n");
  int shown = 0;
  for (const CampaignRow& row : res.rows) {
    if (!row.attempt.generated || shown >= 3) continue;
    ++shown;
    std::printf("--- target: %s (len %u)\n",
                row.error.describe(m.dp).c_str(), row.attempt.test_length);
    std::printf("%s", disassemble_program(row.attempt.test.imem).c_str());
    for (unsigned r = 1; r < 32; ++r)
      if (row.attempt.test.rf_init[r])
        std::printf("    r%u = 0x%08x\n", r, row.attempt.test.rf_init[r]);
  }
  return 0;
}
