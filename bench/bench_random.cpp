// E4 - Directed test generation vs pseudo-random program generation.
//
// The paper's introduction positions deterministic high-level TG against
// the industrial practice of (biased) pseudo-random test programs. This
// bench measures bus-SSL coverage of random programs as the budget grows
// and compares against the directed generator's coverage and test lengths.
#include <cstdio>

#include "baseline/random_tg.h"
#include "core/tg.h"
#include "sim/cosim.h"
#include "util/table.h"

using namespace hltg;

int main() {
  std::printf("== E4: directed TG vs pseudo-random programs ==\n\n");
  const DlxModel m = build_dlx();
  const auto ssl = enumerate_bus_ssl(m.dp);
  const auto errors = wrap(ssl);
  std::printf("targets: %zu bus SSL errors (EX/MEM/WB)\n\n", errors.size());

  // Random baseline: coverage as a function of the number of programs.
  TextTable t({"strategy", "budget", "detected", "coverage %",
               "avg detecting-test length"});
  RandomTgConfig base;
  base.program_length = 20;
  for (unsigned budget : {1u, 2u, 4u, 8u, 16u}) {
    RandomTgConfig cfg = base;
    cfg.max_programs_per_error = budget;
    auto strat = random_strategy(m, cfg);
    const CampaignResult res = run_campaign(m.dp, errors, strat);
    t.add_row({"random (len 20)", std::to_string(budget) + " programs",
               std::to_string(res.stats.detected),
               fmt_double(100.0 * res.stats.detected / res.stats.total, 1),
               fmt_double(res.stats.avg_test_length, 1)});
  }

  TestGenerator tg(m);
  const CampaignResult dres = run_campaign(m.dp, errors, tg.strategy());
  t.add_row({"directed (this paper)", "1 targeted search",
             std::to_string(dres.stats.detected),
             fmt_double(100.0 * dres.stats.detected / dres.stats.total, 1),
             fmt_double(dres.stats.avg_test_length, 1)});
  t.print();

  std::printf(
      "\nshape check: a single random program covers only about half the\n"
      "errors; the budget must grow ~16x before random coverage reaches the\n"
      "directed generator's, and every random detecting test is ~6x longer\n"
      "(28 vs ~5 instructions) with no indication of *which* error it\n"
      "targets. The directed generator reaches its coverage with one\n"
      "targeted search per error and paper-style short tests (paper: 6.2).\n");
  return 0;
}
