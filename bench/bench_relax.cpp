// E3 - Discrete relaxation behaviour (Sec. V.B).
//
// The paper argues that because DPTRACE pre-selects paths, the value systems
// handed to DPRELAX are usually underdetermined and relaxation converges
// quickly, while the method remains incomplete. This bench measures
// iteration counts and success rates as the constraint systems grow from
// underdetermined to overdetermined.
#include <cstdio>
#include <vector>

#include "core/dprelax.h"
#include "util/rng.h"
#include "util/table.h"

using namespace hltg;

namespace {

RelaxConstraint eq(const DlxModel& m, const char* net, unsigned cycle,
                   std::uint64_t value, std::uint64_t mask = ~0ull) {
  RelaxConstraint c;
  c.net = m.dp.find_net(net);
  c.cycle = cycle;
  c.value = value;
  c.mask = mask;
  c.why = net;
  return c;
}

}  // namespace

int main() {
  std::printf("== E3: discrete relaxation convergence ==\n\n");
  const DlxModel m = build_dlx();
  Rng rng(2024);

  // Families of constraint systems, increasing determination.
  struct Family {
    const char* name;
    unsigned num_constraints;
  };
  const std::vector<const char*> nets = {"ex.a_byp", "ex.alu_add",
                                         "ex.alu_xor", "ex.op2",
                                         "exmem.result", "memwb.value"};

  TextTable t({"system", "#constraints", "trials", "solved", "avg iterations",
               "max iterations"});
  for (unsigned k = 1; k <= 6; ++k) {
    unsigned solved = 0, iter_sum = 0, iter_max = 0;
    const unsigned trials = 20;
    for (unsigned trial = 0; trial < trials; ++trial) {
      std::vector<RelaxConstraint> cons;
      for (unsigned i = 0; i < k; ++i) {
        // Distinct (net, cycle) pairs; random 16-bit targets keep the
        // system satisfiable with high probability.
        cons.push_back(eq(m, nets[i % nets.size()], 2 + i,
                          rng.word(16)));
      }
      DpRelaxConfig cfg;
      cfg.seed = 77 + trial;
      DpRelax relax(m, 14, cfg);
      RelaxVars vars;
      const DpRelaxResult r = relax.solve(vars, cons, {});
      if (r.status == TgStatus::kSuccess) {
        ++solved;
        iter_sum += r.iterations;
        iter_max = std::max(iter_max, r.iterations);
      }
    }
    // At k = 6 the cycle alignment makes memwb.value@7 equal
    // exmem.result@6 structurally, so the two random targets conflict:
    // the system becomes overdetermined and (correctly) unsolvable.
    t.add_row({k < 6 ? "independent targets" : "overdetermined (conflicting)",
               std::to_string(k), std::to_string(trials),
               std::to_string(solved),
               solved ? fmt_double(double(iter_sum) / solved, 1) : "-",
               std::to_string(iter_max)});
  }

  // Coupled systems: several constraints on the same bus in consecutive
  // cycles plus an arithmetic coupling - harder, still mostly solvable.
  {
    unsigned solved = 0, iter_sum = 0, iter_max = 0;
    const unsigned trials = 20;
    for (unsigned trial = 0; trial < trials; ++trial) {
      const std::uint64_t x = rng.word(16);
      std::vector<RelaxConstraint> cons = {
          eq(m, "ex.a_byp", 2, x),
          eq(m, "ex.a_byp", 3, x + 1),
          eq(m, "ex.alu_add", 4, 2 * x),
          eq(m, "sts.dest_ex_nz", 3, 1, 1),
      };
      DpRelaxConfig cfg;
      cfg.seed = 991 + trial;
      DpRelax relax(m, 14, cfg);
      RelaxVars vars;
      const DpRelaxResult r = relax.solve(vars, cons, {});
      if (r.status == TgStatus::kSuccess) {
        ++solved;
        iter_sum += r.iterations;
        iter_max = std::max(iter_max, r.iterations);
      }
    }
    t.add_row({"coupled (same bus + STS)", "4", std::to_string(trials),
               std::to_string(solved),
               solved ? fmt_double(double(iter_sum) / solved, 1) : "-",
               std::to_string(iter_max)});
  }

  // Infeasible system: relaxation must give up within budget, not hang -
  // the documented incompleteness.
  {
    // The fixed word 0 (all-NOP, rs1 = r0) is in ID at cycle 1.
    std::vector<RelaxConstraint> cons = {eq(m, "id.rf_a", 1, 5)};
    // Force rs1 = r0 by fixing all instruction bits of word 0.
    RelaxVars vars;
    vars.ensure_size(1);
    vars.imem_fixed[0] = 0xFFFFFFFFu;
    DpRelax relax(m, 14);
    const DpRelaxResult r = relax.solve(vars, cons, {});
    t.add_row({"infeasible (R0 must be 5)", "1", "1",
               r.status == TgStatus::kSuccess ? "1 (BUG)" : "0",
               "-", std::to_string(r.iterations)});
  }
  t.print();
  std::printf(
      "\nshape check (paper): underdetermined systems converge in a handful\n"
      "of sweeps; determination raises effort; infeasibility is abandoned\n"
      "within the iteration budget (the method cannot prove insolubility).\n");
  return 0;
}
