// E6 - Extension: other error models of Van Campenhout et al. [28].
//
// Sec. VI: "our test generation algorithm can be used in conjunction with
// other error models proposed in [28]". This bench runs the generator on
// module substitution errors (MSE) and bus order errors (BOE) in the same
// EX/MEM/WB stages.
#include <cstdio>

#include "core/tg.h"
#include "util/table.h"

using namespace hltg;

int main() {
  std::printf("== E6: extension error models (MSE / BOE) ==\n\n");
  const DlxModel m = build_dlx();
  const std::vector<Stage> stages = {Stage::kEX, Stage::kMEM, Stage::kWB};

  TestGenerator tg(m);

  const auto mse = wrap(enumerate_mse(m.dp, stages));
  const CampaignResult rm = run_campaign(m.dp, mse, tg.strategy());
  std::printf("%s\n",
              rm.stats.table1("Module substitution errors (MSE)").c_str());

  const auto boe = wrap(enumerate_boe(m.dp, stages));
  const CampaignResult rb = run_campaign(m.dp, boe, tg.strategy());
  std::printf("%s\n", rb.stats.table1("Bus order errors (BOE)").c_str());

  BseConfig bse_cfg;
  bse_cfg.stages = stages;
  const auto bse = wrap(enumerate_bse(m.dp, bse_cfg));
  const CampaignResult rs = run_campaign(m.dp, bse, tg.strategy());
  std::printf("%s\n", rs.stats.table1("Bus source errors (BSE)").c_str());

  TextTable t({"error model", "errors", "detected", "coverage %"});
  auto row = [&](const char* name, const CampaignStats& s) {
    t.add_row({name, std::to_string(s.total), std::to_string(s.detected),
               fmt_double(100.0 * s.detected / std::max<std::size_t>(1, s.total), 1)});
  };
  row("bus SSL (Table 1 model)", [&] {
    const auto ssl = wrap(enumerate_bus_ssl(m.dp));
    return run_campaign(m.dp, ssl, tg.strategy()).stats;
  }());
  row("MSE", rm.stats);
  row("BOE", rb.stats);
  row("BSE", rs.stats);
  t.print();
  std::printf(
      "\nshape check: the same three-part algorithm covers the [28] models;\n"
      "MSE/BOE activate more easily than single stuck lines (any operand\n"
      "pair with differing results activates them), so coverage is >= SSL's.\n");
  return 0;
}
