// Campaign-engine benchmark: serial vs parallel test generation, scalar vs
// bit-parallel error simulation, and a lane-engine sweep (64 / 256 / 512
// lanes per batch, gatenet/evalw) whose pass counters CI guards, emitted
// as a machine-readable JSON report (BENCH_campaign.json). See
// docs/PERFORMANCE.md for how to read it.
//
//   $ ./bench_campaign [--quick] [--jobs N] [--out file.json]
//
// --quick shrinks the error population (CI smoke); --jobs sets the worker
// count of the parallel engine (default: hardware concurrency, capped at
// 8). The parallel speedup is bounded by the machine's core count - the
// report records hardware_threads so a 1-core container's numbers read as
// what they are. The dropping-pass speedup is algorithmic (one controller
// evaluation for up to 64 injected errors) and shows on any machine.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/tg.h"
#include "errors/parallel_campaign.h"
#include "sim/batch_sim.h"
#include "sim/cosim.h"

using namespace hltg;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

GenFactory tg_factory(const DlxModel& m) {
  return [&m](unsigned) {
    auto tg = std::make_shared<TestGenerator>(m);
    BudgetedGenFn s = tg->budgeted_strategy();
    return [tg, s](const DesignError& e, Budget& b) { return s(e, b); };
  };
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  unsigned jobs = std::min(8u, std::max(1u, std::thread::hardware_concurrency()));
  std::string out_path = "BENCH_campaign.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick"))
      quick = true;
    else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
      jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
      out_path = argv[++i];
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 1;
    }
  }

  const DlxModel m = build_dlx();
  m.ctrl.warm_caches();
  (void)m.dp.topo_order();
  std::vector<DesignError> errors = wrap(enumerate_bus_ssl(m.dp));
  if (quick && errors.size() > 48) errors.resize(48);
  std::printf("bench_campaign: %zu SSL errors, %u jobs, %u hardware threads\n",
              errors.size(), jobs, std::thread::hardware_concurrency());

  // --- serial campaign (one generator, one thread) ----------------------
  double t0 = now_seconds();
  TestGenerator tg(m);
  const CampaignResult serial =
      run_campaign(m.dp, errors, tg.budgeted_strategy(), CampaignConfig{});
  const double serial_s = now_seconds() - t0;
  std::printf("serial   : %.2fs (%.1f errors/s, %zu detected)\n", serial_s,
              errors.size() / serial_s, serial.stats.detected);

  // --- parallel campaign ------------------------------------------------
  ParallelCampaignConfig pcfg;
  pcfg.jobs = jobs;
  t0 = now_seconds();
  const CampaignResult par =
      run_campaign_parallel(m.dp, errors, tg_factory(m), pcfg);
  const double par_s = now_seconds() - t0;
  const double par_speedup = serial_s / par_s;
  std::printf("parallel : %.2fs (%.1f errors/s, %.2fx, %zu detected)\n", par_s,
              errors.size() / par_s, par_speedup, par.stats.detected);
  if (par.stats.detected != serial.stats.detected)
    std::printf("WARNING: parallel detection count diverged\n");

  // --- dropping pass: scalar vs 64-lane batch ---------------------------
  // Sweep the serially generated tests over the whole population, the way
  // the dropping engine does after each kept test.
  std::vector<TestCase> tests;
  for (const CampaignRow& row : serial.rows)
    if (row.attempt.detected()) tests.push_back(row.attempt.test);
  if (quick && tests.size() > 12) tests.resize(12);
  std::vector<const DesignError*> ptrs;
  for (const DesignError& e : errors) ptrs.push_back(&e);

  BatchDetectConfig scalar_cfg;
  scalar_cfg.force_scalar = true;
  t0 = now_seconds();
  std::size_t scalar_hits = 0;
  for (const TestCase& tc : tests)
    for (const bool b : detect_errors(m, tc, ptrs, scalar_cfg)) scalar_hits += b;
  const double scalar_s = now_seconds() - t0;

  t0 = now_seconds();
  std::size_t batch_hits = 0;
  for (const TestCase& tc : tests)
    for (const bool b : detect_errors(m, tc, ptrs)) batch_hits += b;
  const double batch_s = now_seconds() - t0;
  const double drop_speedup = scalar_s / batch_s;
  std::printf(
      "dropping : %zu tests x %zu errors, scalar %.2fs, batch %.2fs "
      "(%.1fx, %zu hits)\n",
      tests.size(), errors.size(), scalar_s, batch_s, drop_speedup,
      batch_hits);
  if (scalar_hits != batch_hits)
    std::printf("WARNING: batch detector diverged from scalar (%zu vs %zu)\n",
                batch_hits, scalar_hits);

  // --- lane-engine sweep: the same dropping pass at forced widths -------
  // Wider lanes pack more injected errors per controller sweep; detections
  // must be width-invariant while the pass counters shrink ~linearly. The
  // sweep always runs the FULL SSL population (even under --quick): a
  // population that fits one 64-lane batch would make every width cost the
  // same and the guard vacuous.
  const std::vector<DesignError> full_errors = wrap(enumerate_bus_ssl(m.dp));
  std::vector<const DesignError*> full_ptrs;
  for (const DesignError& e : full_errors) full_ptrs.push_back(&e);
  struct LaneRun {
    unsigned width;
    BatchSimStats stats;
    double seconds = 0;
    std::size_t detections = 0;
  };
  std::vector<LaneRun> lane_runs;
  for (unsigned width : {64u, 256u, 512u}) {
    LaneRun run;
    run.width = width;
    BatchDetectConfig cfg;
    cfg.max_lanes = width;
    cfg.stats = &run.stats;
    t0 = now_seconds();
    for (const TestCase& tc : tests)
      for (const bool b : detect_errors(m, tc, full_ptrs, cfg))
        run.detections += b;
    run.seconds = now_seconds() - t0;
    std::printf(
        "lanes %3u : %.2fs, %llu batches, %llu controller passes, "
        "%llu gate evals (%s, %zu hits)\n",
        width, run.seconds,
        static_cast<unsigned long long>(run.stats.batches),
        static_cast<unsigned long long>(run.stats.controller_passes),
        static_cast<unsigned long long>(run.stats.gate_evals),
        std::string(to_string(run.stats.backend)).c_str(), run.detections);
    if (!lane_runs.empty() && run.detections != lane_runs[0].detections)
      std::printf("WARNING: %u-lane detections diverged\n", width);
    lane_runs.push_back(run);
  }
  const double pass_reduction_256 =
      static_cast<double>(lane_runs[0].stats.controller_passes) /
      static_cast<double>(lane_runs[1].stats.controller_passes);
  const double pass_reduction_512 =
      static_cast<double>(lane_runs[0].stats.controller_passes) /
      static_cast<double>(lane_runs[2].stats.controller_passes);
  std::printf("lane pass reduction: 256 vs 64 %.2fx, 512 vs 64 %.2fx\n",
              pass_reduction_256, pass_reduction_512);

  // --- full dropping campaign (generator + batched error simulation) ----
  TestGenerator tg2(m);
  t0 = now_seconds();
  const CampaignResult dres = run_campaign_with_dropping(
      m.dp, errors, tg2.budgeted_strategy(), batch_detector(m),
      CampaignConfig{});
  const double drop_campaign_s = now_seconds() - t0;
  std::printf(
      "dropping campaign: %.2fs (%zu generator runs instead of %zu, "
      "%zu dropped, error sim %.2fs)\n",
      drop_campaign_s, dres.stats.total - dres.dropped, dres.stats.total,
      dres.dropped, dres.dropping_seconds);

  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"campaign\",\n"
               "  \"quick\": %s,\n"
               "  \"errors\": %zu,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"serial\": {\"seconds\": %.4f, \"errors_per_sec\": %.2f, "
               "\"detected\": %zu},\n"
               "  \"parallel\": {\"jobs\": %u, \"seconds\": %.4f, "
               "\"errors_per_sec\": %.2f, \"speedup\": %.3f, "
               "\"detected\": %zu},\n"
               "  \"dropping_pass\": {\"tests\": %zu, \"scalar_seconds\": "
               "%.4f, \"batch_seconds\": %.4f, \"speedup\": %.2f, "
               "\"detections\": %zu},\n"
               "  \"dropping_campaign\": {\"seconds\": %.4f, "
               "\"generator_runs\": %zu, \"dropped\": %zu, \"tests_kept\": "
               "%zu, \"error_sim_seconds\": %.4f},\n"
               "  \"lane_engine\": {\n"
               "    \"sweep_errors\": %zu,\n"
               "    \"auto_lanes\": %u,\n"
               "    \"pass_reduction_256_vs_64\": %.3f,\n"
               "    \"pass_reduction_512_vs_64\": %.3f,\n",
               quick ? "true" : "false", errors.size(),
               std::thread::hardware_concurrency(), serial_s,
               errors.size() / serial_s, serial.stats.detected, jobs, par_s,
               errors.size() / par_s, par_speedup, par.stats.detected,
               tests.size(), scalar_s, batch_s, drop_speedup, batch_hits,
               drop_campaign_s, dres.stats.total - dres.dropped, dres.dropped,
               dres.tests_kept, dres.dropping_seconds, full_errors.size(),
               resolve_lanes(), pass_reduction_256, pass_reduction_512);
  for (std::size_t i = 0; i < lane_runs.size(); ++i) {
    const LaneRun& r = lane_runs[i];
    std::fprintf(f,
                 "    \"lanes_%u\": {\"backend\": \"%s\", \"seconds\": %.4f, "
                 "\"batches\": %llu, \"controller_passes\": %llu, "
                 "\"gate_evals\": %llu, \"lanes_evaluated\": %llu, "
                 "\"detections\": %zu}%s\n",
                 r.width, std::string(to_string(r.stats.backend)).c_str(),
                 r.seconds, static_cast<unsigned long long>(r.stats.batches),
                 static_cast<unsigned long long>(r.stats.controller_passes),
                 static_cast<unsigned long long>(r.stats.gate_evals),
                 static_cast<unsigned long long>(r.stats.lanes_evaluated),
                 r.detections, i + 1 < lane_runs.size() ? "," : "");
  }
  std::fprintf(f,
               "  }\n"
               "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
