// E2 - Pipeframe vs timeframe search organization (Sec. IV + Sec. VI text).
//
// Paper claims reproduced here:
//  (a) decision-variable accounting: per pipeframe n1 + p*n3 variables, of
//      which p*n3 need justification, vs n1 + p*n2 (p*n2 needing
//      justification) per timeframe; for the paper's DLX this was 43 vs 96.
//  (b) searching directly in CPI/STS space eliminates unreachable-state
//      conflicts; the timeframe baseline decides CSI values and dead-ends
//      or pays extra search.
#include <cstdio>
#include <vector>

#include "baseline/timeframe.h"
#include "core/ctrljust.h"
#include "dlx/dlx.h"
#include "gatenet/levelize.h"
#include "util/table.h"

using namespace hltg;

namespace {

GateId ctrl_bit(const DlxModel& m, const char* net, unsigned bit = 0) {
  return m.find_ctrl(m.dp.find_net(net))->bits[bit];
}

}  // namespace

int main() {
  std::printf("== E2: pipeframe vs timeframe organization ==\n\n");
  const DlxModel m = build_dlx();
  const GateNetStats st = analyze(m.ctrl);

  TextTable vars({"decision-variable accounting", "timeframe", "pipeframe"});
  vars.add_row({"decision variables / frame (n1 + p*n2 vs n1 + p*n3)",
                std::to_string(st.num_cpi + st.num_dffs),
                std::to_string(st.num_cpi + st.num_tertiary)});
  vars.add_row({"of which need justification (p*n2 vs p*n3)",
                std::to_string(st.timeframe_justify_vars()),
                std::to_string(st.pipeframe_justify_vars())});
  vars.add_row({"paper's DLX (96 vs 43)", "96", "43"});
  vars.print();
  std::printf("\n");

  // Empirical comparison on a suite of justification problems (the CTRL
  // objective patterns TG actually issues).
  struct Problem {
    const char* name;
    std::vector<CtrlObjective> objs;
  };
  std::vector<Problem> problems;
  problems.push_back({"store-commit (mem_we@3)",
                      {{ctrl_bit(m, "ctrl.mem_we"), 3, true}}});
  problems.push_back({"writeback (rf_we@4)",
                      {{ctrl_bit(m, "ctrl.rf_we"), 4, true}}});
  problems.push_back(
      {"alu=SUB in EX@3", {{ctrl_bit(m, "ctrl.alu_sel", 0), 3, true},
                           {ctrl_bit(m, "ctrl.alu_sel", 1), 3, false},
                           {ctrl_bit(m, "ctrl.alu_sel", 2), 3, false},
                           {ctrl_bit(m, "ctrl.alu_sel", 3), 3, false}}});
  problems.push_back({"bypass A from MEM (fwd_a[0]@4)",
                      {{ctrl_bit(m, "ctrl.fwd_a"), 4, true}}});
  problems.push_back({"store@3 + writeback@6",
                      {{ctrl_bit(m, "ctrl.mem_we"), 3, true},
                       {ctrl_bit(m, "ctrl.rf_we"), 6, true}}});
  problems.push_back({"use-imm EX@4 + store@5",
                      {{ctrl_bit(m, "ctrl.use_imm"), 4, true},
                       {ctrl_bit(m, "ctrl.mem_we"), 5, true}}});
  problems.push_back({"load commit (mem_re@4)",
                      {{ctrl_bit(m, "ctrl.mem_re"), 4, true}}});
  problems.push_back({"squash-free slot (idex_clr@3 = 0)",
                      {{ctrl_bit(m, "ctrl.idex_clr"), 3, false},
                       {ctrl_bit(m, "ctrl.mem_we"), 4, true}}});

  TextTable t({"justification problem", "organization", "status", "decisions",
               "backtracks", "CSI bits decided"});
  std::uint64_t pf_dec = 0, pf_bt = 0, tf_dec = 0, tf_bt = 0;
  int pf_ok = 0, tf_ok = 0;
  for (const Problem& p : problems) {
    CtrlJust cj(m.ctrl, 10);
    const CtrlJustResult rp = cj.solve(p.objs);
    pf_dec += rp.stats.decisions;
    pf_bt += rp.stats.backtracks;
    pf_ok += rp.status == TgStatus::kSuccess;
    t.add_row({p.name, "pipeframe", std::string(to_string(rp.status)),
               std::to_string(rp.stats.decisions),
               std::to_string(rp.stats.backtracks), "0 (by construction)"});

    TimeframeJust tf(m.ctrl, 10);
    const TimeframeResult rt = tf.solve(p.objs);
    tf_dec += rt.decisions;
    tf_bt += rt.backtracks;
    tf_ok += rt.status == TgStatus::kSuccess;
    t.add_row({"", "timeframe", std::string(to_string(rt.status)),
               std::to_string(rt.decisions), std::to_string(rt.backtracks),
               std::to_string(rt.state_bits_decided)});
  }
  t.print();
  std::printf(
      "\ntotals: pipeframe solved %d/%zu (dec %llu, bt %llu); timeframe "
      "solved %d/%zu (dec %llu, bt %llu)\n",
      pf_ok, problems.size(), (unsigned long long)pf_dec,
      (unsigned long long)pf_bt, tf_ok, problems.size(),
      (unsigned long long)tf_dec, (unsigned long long)tf_bt);
  std::printf(
      "shape check (paper): pipeframe solves everything it should with few\n"
      "backtracks and zero state-bit decisions; the timeframe organization\n"
      "decides CSI vectors that may be unreachable and dead-ends there.\n");
  return 0;
}
