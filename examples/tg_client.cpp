// Thin client for the campaign service daemon (docs/SERVICE.md).
//
//   $ ./tg_client --socket /tmp/tg.sock [request flags] [--csv out.csv]
//   $ ./tg_client --socket /tmp/tg.sock --cancel ID
//   $ ./tg_client --socket /tmp/tg.sock --stats | --ping | --shutdown
//
// Request flags mirror error_campaign where they overlap: --model
// ssl|mse|boe|bse, --stages EX,MEM,WB, --deadline-ms N,
// --max-backtracks N, --max-decisions N, --fallback [tries], --solver
// on|off, --solver-scope error|campaign, --drop, --jobs N, --lanes N,
// --window N, --retry-window N, --tag S. --subscribe streams per-error
// progress rows to stderr as they complete. The result CSV goes to stdout
// (or --csv FILE); the ack line (request id + cache key) and the summary
// go to stderr. Exit 0 on a completed campaign, 3 if it was cancelled,
// 1 on any protocol or request error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "service/client.h"
#include "service/request.h"
#include "util/minijson.h"

using namespace hltg;

int main(int argc, char** argv) {
  std::string socket_path, csv_path, op;
  std::uint64_t cancel_id = 0;
  RequestSpec spec;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--socket") && i + 1 < argc)
      socket_path = argv[++i];
    else if (!std::strcmp(argv[i], "--csv") && i + 1 < argc)
      csv_path = argv[++i];
    else if (!std::strcmp(argv[i], "--cancel") && i + 1 < argc) {
      op = "cancel";
      cancel_id = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--stats"))
      op = "stats";
    else if (!std::strcmp(argv[i], "--ping"))
      op = "ping";
    else if (!std::strcmp(argv[i], "--shutdown"))
      op = "shutdown";
    else if (!std::strcmp(argv[i], "--model") && i + 1 < argc)
      spec.model = argv[++i];
    else if (!std::strcmp(argv[i], "--stages") && i + 1 < argc)
      spec.stages = argv[++i];
    else if (!std::strcmp(argv[i], "--deadline-ms") && i + 1 < argc)
      spec.deadline_ms = std::atof(argv[++i]);
    else if (!std::strcmp(argv[i], "--max-backtracks") && i + 1 < argc)
      spec.max_backtracks = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (!std::strcmp(argv[i], "--max-decisions") && i + 1 < argc)
      spec.max_decisions = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (!std::strcmp(argv[i], "--fallback")) {
      spec.fallback = true;
      if (i + 1 < argc && argv[i + 1][0] != '-')
        spec.fallback_tries = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--solver") && i + 1 < argc)
      spec.solver = !std::strcmp(argv[++i], "on");
    else if (!std::strcmp(argv[i], "--solver-scope") && i + 1 < argc)
      spec.solver_scope = argv[++i];
    else if (!std::strcmp(argv[i], "--drop"))
      spec.drop = true;
    else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
      spec.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (!std::strcmp(argv[i], "--lanes") && i + 1 < argc)
      spec.lanes = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (!std::strcmp(argv[i], "--window") && i + 1 < argc)
      spec.window = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (!std::strcmp(argv[i], "--retry-window") && i + 1 < argc)
      spec.retry_window = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (!std::strcmp(argv[i], "--tag") && i + 1 < argc)
      spec.tag = argv[++i];
    else if (!std::strcmp(argv[i], "--subscribe"))
      spec.subscribe = true;
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 1;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "usage: tg_client --socket PATH [flags]\n");
    return 1;
  }

  ServiceClient client;
  std::string why;
  if (!client.connect(socket_path, &why)) {
    std::fprintf(stderr, "tg_client: %s\n", why.c_str());
    return 1;
  }

  if (op == "cancel") {
    JsonWriter w;
    if (!client.send_line(w.str("op", "cancel").num("id", cancel_id).take()))
      return 1;
  } else if (!op.empty()) {
    JsonWriter w;
    if (!client.send_line(w.str("op", op).take())) return 1;
  } else {
    if (!client.send_line("{\"op\":\"submit\"," +
                          request_fields_json(spec) + "}"))
      return 1;
  }

  std::string line;
  while (client.read_line(&line)) {
    MiniJson j(line);
    std::string event;
    if (!j.ok() || !j.get_string("event", &event)) {
      std::fprintf(stderr, "tg_client: unparseable event: %s\n", line.c_str());
      return 1;
    }
    if (event == "error") {
      std::string err;
      j.get_string("error", &err);
      std::fprintf(stderr, "tg_client: %s\n", err.c_str());
      return 1;
    }
    if (event == "ack") {
      std::uint64_t id = 0;
      std::string key;
      bool coalesced = false;
      j.get_u64("id", &id);
      j.get_string("key", &key);
      j.get_bool("coalesced", &coalesced);
      std::fprintf(stderr, "request %llu key %s%s\n",
                   static_cast<unsigned long long>(id), key.c_str(),
                   coalesced ? " (coalesced onto an identical in-flight "
                               "request)"
                             : "");
      continue;
    }
    if (event == "progress") {
      std::string row;
      j.get_string("line", &row);
      std::fprintf(stderr, "progress: %s\n", row.c_str());
      continue;
    }
    if (event == "result") {
      bool ok = false, cached = false, cancelled = false;
      std::uint64_t total = 0, attempted = 0, detected = 0;
      std::string csv, table1, err;
      j.get_bool("ok", &ok);
      j.get_bool("cached", &cached);
      j.get_bool("cancelled", &cancelled);
      j.get_u64("total", &total);
      j.get_u64("attempted", &attempted);
      j.get_u64("detected", &detected);
      j.get_string("csv", &csv);
      j.get_string("table1", &table1);
      j.get_string("error", &err);
      if (!ok) {
        std::fprintf(stderr, "tg_client: %s\n",
                     err.empty() ? "request failed" : err.c_str());
        return cancelled ? 3 : 1;
      }
      std::fprintf(stderr, "%s: %llu/%llu detected of %llu errors\n",
                   cached ? "cache hit" : "fresh run",
                   static_cast<unsigned long long>(detected),
                   static_cast<unsigned long long>(attempted),
                   static_cast<unsigned long long>(total));
      if (!table1.empty()) std::fprintf(stderr, "%s\n", table1.c_str());
      if (csv_path.empty()) {
        std::fputs(csv.c_str(), stdout);
      } else {
        std::ofstream out(csv_path);
        out << csv;
        std::fprintf(stderr, "wrote %s\n", csv_path.c_str());
      }
      return 0;
    }
    // pong / stats / shutdown / cancel acks: print and finish.
    std::printf("%s\n", line.c_str());
    return 0;
  }
  std::fprintf(stderr, "tg_client: connection closed without a result\n");
  return 1;
}
