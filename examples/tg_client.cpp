// Thin client for the campaign service daemon (docs/SERVICE.md).
//
//   $ ./tg_client --socket /tmp/tg.sock [request flags] [--csv out.csv]
//   $ ./tg_client --socket /tmp/tg.sock --cancel ID
//   $ ./tg_client --socket /tmp/tg.sock --stats | --ping | --shutdown
//
// Request flags mirror error_campaign where they overlap: --model
// ssl|mse|boe|bse, --stages EX,MEM,WB, --deadline-ms N,
// --max-backtracks N, --max-decisions N, --fallback [tries], --solver
// on|off, --solver-scope error|campaign, --drop, --jobs N, --lanes N,
// --window N, --retry-window N, --tag S. --subscribe streams per-error
// progress rows to stderr as they complete. The result CSV goes to stdout
// (or --csv FILE); the ack line (request id + cache key) and the summary
// go to stderr.
//
// --retries N resubmits on TRANSIENT failures - connection refused,
// daemon hung up mid-stream, read timeout (--timeout-ms), or a server
// event flagged "transient" (queue full, draining, worker crashed while
// draining) - with jittered exponential backoff from --retry-base-ms.
// Resubmission is safe because requests are idempotent under the
// content-addressed result cache: a retry either hits the cache entry the
// first attempt filled or coalesces onto the still-running flight.
// Terminal failures (invalid request, poisoned, cancelled, deadline) are
// never retried.
//
// Exit codes: 0 completed campaign; 1 terminal request/protocol error;
// 3 cancelled; 4 poisoned (quarantined by the daemon's crash breaker);
// and, once retries are exhausted: 5 could not connect, 6 read timeout,
// 7 daemon hung up without a result, 8 socket error.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "service/client.h"
#include "service/request.h"
#include "util/minijson.h"

using namespace hltg;

namespace {

// Exit codes (also documented in docs/SERVICE.md).
constexpr int kExitOk = 0;
constexpr int kExitTerminal = 1;
constexpr int kExitCancelled = 3;
constexpr int kExitPoisoned = 4;
constexpr int kExitConnect = 5;
constexpr int kExitTimeout = 6;
constexpr int kExitEof = 7;
constexpr int kExitSocket = 8;

struct AttemptResult {
  int code = kExitTerminal;
  bool transient = false;  ///< worth resubmitting (identical request)
};

/// One full submit round trip: connect, send, consume events until a
/// result (or a failure). Transient failures are flagged for the retry
/// loop in main().
AttemptResult run_submit_once(const std::string& socket_path,
                              const RequestSpec& spec,
                              const std::string& csv_path, int timeout_ms) {
  AttemptResult r;
  ServiceClient client;
  std::string why;
  if (!client.connect(socket_path, &why)) {
    std::fprintf(stderr, "tg_client: %s\n", why.c_str());
    r.code = kExitConnect;
    r.transient = true;  // daemon may be restarting
    return r;
  }
  if (!client.send_line("{\"op\":\"submit\"," + request_fields_json(spec) +
                        "}")) {
    r.code = kExitSocket;
    r.transient = true;
    return r;
  }

  std::string line;
  for (;;) {
    const ReadStatus rs = client.read_line_status(&line, timeout_ms);
    if (rs != ReadStatus::kOk) {
      if (rs == ReadStatus::kTimeout) {
        std::fprintf(stderr, "tg_client: timed out after %d ms\n",
                     timeout_ms);
        r.code = kExitTimeout;
      } else if (rs == ReadStatus::kEof) {
        std::fprintf(stderr,
                     "tg_client: connection closed without a result\n");
        r.code = kExitEof;
      } else {
        std::fprintf(stderr, "tg_client: socket error\n");
        r.code = kExitSocket;
      }
      r.transient = true;  // the daemon (or its successor) can re-answer
      return r;
    }
    MiniJson j(line);
    std::string event;
    if (!j.ok() || !j.get_string("event", &event)) {
      std::fprintf(stderr, "tg_client: unparseable event: %s\n",
                   line.c_str());
      return r;
    }
    if (event == "error") {
      std::string err;
      bool transient = false;
      j.get_string("error", &err);
      j.get_bool("transient", &transient);
      std::fprintf(stderr, "tg_client: %s\n", err.c_str());
      r.code = kExitTerminal;
      r.transient = transient;
      return r;
    }
    if (event == "ack") {
      std::uint64_t id = 0;
      std::string key;
      bool coalesced = false;
      j.get_u64("id", &id);
      j.get_string("key", &key);
      j.get_bool("coalesced", &coalesced);
      std::fprintf(stderr, "request %llu key %s%s\n",
                   static_cast<unsigned long long>(id), key.c_str(),
                   coalesced ? " (coalesced onto an identical in-flight "
                               "request)"
                             : "");
      continue;
    }
    if (event == "progress") {
      std::string row;
      j.get_string("line", &row);
      std::fprintf(stderr, "progress: %s\n", row.c_str());
      continue;
    }
    if (event == "result") {
      bool ok = false, cached = false, cancelled = false;
      bool poisoned = false, transient = false;
      std::uint64_t total = 0, attempted = 0, detected = 0;
      std::string csv, table1, err;
      j.get_bool("ok", &ok);
      j.get_bool("cached", &cached);
      j.get_bool("cancelled", &cancelled);
      j.get_bool("poisoned", &poisoned);
      j.get_bool("transient", &transient);
      j.get_u64("total", &total);
      j.get_u64("attempted", &attempted);
      j.get_u64("detected", &detected);
      j.get_string("csv", &csv);
      j.get_string("table1", &table1);
      j.get_string("error", &err);
      if (!ok) {
        std::fprintf(stderr, "tg_client: %s\n",
                     err.empty() ? "request failed" : err.c_str());
        if (poisoned)
          r.code = kExitPoisoned;
        else if (cancelled)
          r.code = kExitCancelled;
        else
          r.code = kExitTerminal;
        r.transient = transient && !poisoned && !cancelled;
        return r;
      }
      std::fprintf(stderr, "%s: %llu/%llu detected of %llu errors\n",
                   cached ? "cache hit" : "fresh run",
                   static_cast<unsigned long long>(detected),
                   static_cast<unsigned long long>(attempted),
                   static_cast<unsigned long long>(total));
      if (!table1.empty()) std::fprintf(stderr, "%s\n", table1.c_str());
      if (csv_path.empty()) {
        std::fputs(csv.c_str(), stdout);
      } else {
        std::ofstream out(csv_path);
        out << csv;
        std::fprintf(stderr, "wrote %s\n", csv_path.c_str());
      }
      r.code = kExitOk;
      return r;
    }
    std::fprintf(stderr, "tg_client: unexpected event: %s\n", line.c_str());
    return r;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path, csv_path, op;
  std::uint64_t cancel_id = 0;
  unsigned retries = 0;
  double retry_base_ms = 200;
  int timeout_ms = 0;
  RequestSpec spec;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--socket") && i + 1 < argc)
      socket_path = argv[++i];
    else if (!std::strcmp(argv[i], "--csv") && i + 1 < argc)
      csv_path = argv[++i];
    else if (!std::strcmp(argv[i], "--retries") && i + 1 < argc)
      retries = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (!std::strcmp(argv[i], "--retry-base-ms") && i + 1 < argc)
      retry_base_ms = std::atof(argv[++i]);
    else if (!std::strcmp(argv[i], "--timeout-ms") && i + 1 < argc)
      timeout_ms = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--cancel") && i + 1 < argc) {
      op = "cancel";
      cancel_id = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--stats"))
      op = "stats";
    else if (!std::strcmp(argv[i], "--ping"))
      op = "ping";
    else if (!std::strcmp(argv[i], "--shutdown"))
      op = "shutdown";
    else if (!std::strcmp(argv[i], "--model") && i + 1 < argc)
      spec.model = argv[++i];
    else if (!std::strcmp(argv[i], "--stages") && i + 1 < argc)
      spec.stages = argv[++i];
    else if (!std::strcmp(argv[i], "--deadline-ms") && i + 1 < argc)
      spec.deadline_ms = std::atof(argv[++i]);
    else if (!std::strcmp(argv[i], "--max-backtracks") && i + 1 < argc)
      spec.max_backtracks = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (!std::strcmp(argv[i], "--max-decisions") && i + 1 < argc)
      spec.max_decisions = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (!std::strcmp(argv[i], "--fallback")) {
      spec.fallback = true;
      if (i + 1 < argc && argv[i + 1][0] != '-')
        spec.fallback_tries = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--solver") && i + 1 < argc)
      spec.solver = !std::strcmp(argv[++i], "on");
    else if (!std::strcmp(argv[i], "--solver-scope") && i + 1 < argc)
      spec.solver_scope = argv[++i];
    else if (!std::strcmp(argv[i], "--drop"))
      spec.drop = true;
    else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
      spec.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (!std::strcmp(argv[i], "--lanes") && i + 1 < argc)
      spec.lanes = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (!std::strcmp(argv[i], "--window") && i + 1 < argc)
      spec.window = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (!std::strcmp(argv[i], "--retry-window") && i + 1 < argc)
      spec.retry_window = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (!std::strcmp(argv[i], "--tag") && i + 1 < argc)
      spec.tag = argv[++i];
    else if (!std::strcmp(argv[i], "--subscribe"))
      spec.subscribe = true;
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 1;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "usage: tg_client --socket PATH [flags]\n");
    return 1;
  }

  if (!op.empty()) {
    // Admin ops: one shot, no retry - they are not idempotent requests
    // (a retried shutdown against a restarted daemon would kill it too).
    ServiceClient client;
    std::string why;
    if (!client.connect(socket_path, &why)) {
      std::fprintf(stderr, "tg_client: %s\n", why.c_str());
      return kExitConnect;
    }
    JsonWriter w;
    w.str("op", op);
    if (op == "cancel") w.num("id", cancel_id);
    if (!client.send_line(w.take())) return kExitSocket;
    std::string line;
    const ReadStatus rs = client.read_line_status(&line, timeout_ms);
    if (rs == ReadStatus::kTimeout) return kExitTimeout;
    if (rs == ReadStatus::kEof) return kExitEof;
    if (rs == ReadStatus::kError) return kExitSocket;
    MiniJson j(line);
    std::string event;
    if (j.ok() && j.get_string("event", &event) && event == "error") {
      std::string err;
      j.get_string("error", &err);
      std::fprintf(stderr, "tg_client: %s\n", err.c_str());
      return kExitTerminal;
    }
    std::printf("%s\n", line.c_str());
    return kExitOk;
  }

  // Submit with idempotent resubmission: the request's content-addressed
  // key means a retry can never run the campaign twice by accident.
  AttemptResult r;
  for (unsigned attempt = 1;; ++attempt) {
    r = run_submit_once(socket_path, spec, csv_path, timeout_ms);
    if (!r.transient || attempt > retries) break;
    // Jittered exponential backoff, deterministic per attempt so runs
    // are reproducible: nominal = base * 2^(attempt-1), jitter [0.5,1.5).
    double nominal = retry_base_ms;
    for (unsigned i = 1; i < attempt && nominal < 30000; ++i) nominal *= 2;
    const double jitter =
        0.5 + static_cast<double>((attempt * 2654435761u) % 1000u) / 1000.0;
    const double delay = nominal * jitter;
    std::fprintf(stderr,
                 "tg_client: transient failure, retrying in %.0f ms "
                 "(attempt %u of %u)\n",
                 delay, attempt + 1, retries + 1);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
  }
  return r.code;
}
