// Pipeline visualizer: assemble a DLX program, run it on the two-level
// implementation model, and print the classic pipeline occupancy diagram
// (stalls hold, squashes bubble) plus the architectural outcome.
//
//   $ ./pipeline_viz            # built-in hazard demo
//   $ ./pipeline_viz file.s     # your own program
#include <cstdio>
#include <fstream>
#include <sstream>

#include "isa/asm.h"
#include "sim/cosim.h"
#include "sim/trace.h"
#include "util/word.h"

using namespace hltg;

int main(int argc, char** argv) {
  std::string source;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  } else {
    source =
        "; load-use stall followed by a taken-branch squash\n"
        "lw   r1, 0x20(r0)\n"
        "add  r2, r1, r1\n"   // needs the interlock
        "bnez r2, 2\n"
        "addi r3, r0, 99\n"   // squashed
        "addi r4, r0, 98\n"   // squashed
        "sw   0x40(r0), r2\n"
        "nop\n";
  }

  const AsmResult prog = assemble(source);
  if (!prog.ok()) {
    for (const auto& e : prog.errors) std::fprintf(stderr, "%s\n", e.c_str());
    return 1;
  }
  TestCase tc;
  tc.imem = encode_program(prog.program);
  tc.dmem_init[0x20] = 21;

  const DlxModel m = build_dlx();
  const unsigned cycles = drain_cycles(tc.imem.size());
  std::printf("%s\n", trace_pipeline(m, tc, std::min(cycles, 24u)).c_str());

  ProcSim sim(m, tc);
  sim.run(cycles);
  std::printf("cycles simulated : %llu\n",
              (unsigned long long)sim.cycle());
  std::printf("stall cycles     : %llu\n",
              (unsigned long long)sim.stall_cycles());
  std::printf("squashes         : %llu\n",
              (unsigned long long)sim.squashes());
  std::printf("committed writes :\n");
  for (const MemWrite& w : sim.writes())
    std::printf("  M[%s] = %s (mask %x)\n", to_hex(w.addr, 32).c_str(),
                to_hex(w.data, 32).c_str(), w.bemask);
  std::printf("registers        :");
  for (unsigned r = 1; r < 32; ++r)
    if (sim.reg(r)) std::printf(" r%u=%s", r, to_hex(sim.reg(r), 32).c_str());
  std::printf("\n");

  // Sanity: the implementation must agree with the ISA specification.
  const CosimResult c = cosim(m, tc, cycles);
  std::printf("spec equivalence : %s\n", c.match ? "OK" : c.diff.c_str());
  return c.match ? 0 : 2;
}
