// Error campaign: run the generator over a configurable error population
// and print the Table-1 style summary plus per-error outcomes.
//
//   $ ./error_campaign [--stages EX,MEM,WB] [--model ssl|mse|boe|bse] [-v]
//                      [--csv out.csv] [--save-tests dir]
//                      [--deadline-ms N] [--max-backtracks N]
//                      [--max-decisions N] [--fallback [tries]]
//                      [--journal file.jsonl] [--resume | --resume=strict]
//                      [--jobs N] [--drop] [--lanes N] [--solver on|off]
//                      [--probe on|off] [--probe-order on|off]
//                      [--solver-scope error|campaign] [--store file.ded]
//                      [--failpoints SPEC]
//                      [--verify-witness] [--minimize] [--quarantine-dir D]
//   $ ./error_campaign [--stages ...] [--model ...] --replay test.txt
//                      --replay-error N --expect detected|undetected
//
// Resilience controls (docs/ROBUSTNESS.md): --deadline-ms / --max-* arm a
// per-error budget; --fallback retries budget-exhausted errors with the
// biased-random baseline generator; --journal checkpoints one fsync'd JSONL
// row per error so an interrupted run restarted with --resume reproduces
// the identical summary; Ctrl-C (or SIGTERM) cancels cooperatively (the
// current error finishes and is journaled before the partial summary
// prints).
//
// Self-checking controls (docs/ROBUSTNESS.md "Self-checking and triage"):
// --verify-witness re-validates every detection claim through an
// independent scalar cosimulation; a refuted claim is retried once with the
// opposite --solver setting and, failing that, lands in the claim_mismatch
// bucket (exit status 2). --minimize delta-debugs each mismatching witness;
// --quarantine-dir writes one diagnostic bundle per incident. The --replay
// mode re-runs one saved testcase through the oracle and exits 0 iff the
// verdict matches --expect - it is the repro command each bundle ships.
//
// Performance controls (docs/PERFORMANCE.md): --jobs N runs the generator
// on N worker threads (identical summary for any N); --drop error-simulates
// each generated test against all remaining errors with the bit-parallel
// batch simulator and drops the fortuitously detected ones. The two are
// mutually exclusive (dropping is inherently sequential: each drop pass
// depends on the tests kept so far). --lanes N caps the batch width
// (default: CPUID auto up to 512, or HLTG_LANES); any width yields the
// identical summary - only the pass counters change.
//
// --solver off is the escape hatch back to the legacy CTRLJUST search
// (docs/SOLVER.md): no implication engine, nogood learning or justification
// cache. Detection outcomes are identical either way; only the effort
// counters differ.
//
// --probe on batches CTRLJUST's candidate decisions through the SIMD lane
// engine before each descent and prunes proven-doomed branches
// (docs/SOLVER.md "Batched probing"): witnesses and detection outcomes are
// unchanged for any --lanes width or backend; decisions/backtracks drop.
// Off by default so default rows stay byte-identical across releases.
// --probe-order on additionally re-ranks surviving candidates by
// implied-literal count (implies --probe on; this one MAY change witnesses).
//
// --solver-scope campaign keeps the learned nogoods, justification cache
// and DPRELAX memo alive across the whole error population instead of
// resetting them per error (docs/SOLVER.md has the determinism argument:
// outcomes, witnesses and emitted tests stay identical to error scope;
// effort counters drop - that is the reuse). With --jobs > 1 the parallel
// engine shards errors round-robin per worker (deterministic for any N)
// and the workers exchange learned netlist-level nogoods through a shared
// board between errors.
//
// --store FILE persists the campaign-scope deduction state across process
// lifetimes (docs/ROBUSTNESS.md "Persisted deduction store"): loaded -
// after a design-hash/config-hash validation - before the campaign for a
// warm start, saved atomically after it. Requires --solver-scope campaign.
// --failpoints SPEC (or HLTG_FAILPOINTS in the environment) arms the I/O
// fault-injection harness for crash-recovery testing; see
// src/util/failpoint.h for the grammar.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "baseline/random_tg.h"
#include "core/tg.h"
#include "errors/parallel_campaign.h"
#include "errors/redundancy.h"
#include "errors/report.h"
#include "isa/testcase_io.h"
#include "sim/batch_sim.h"
#include "solver/nogood_board.h"
#include "solver/store.h"
#include "triage/triage.h"
#include "triage/witness_check.h"
#include "util/failpoint.h"
#include "util/table.h"

using namespace hltg;

namespace {

std::vector<Stage> parse_stages(const std::string& s) {
  std::vector<Stage> out;
  if (s.find("IF") != std::string::npos) out.push_back(Stage::kIF);
  if (s.find("ID") != std::string::npos) out.push_back(Stage::kID);
  if (s.find("EX") != std::string::npos) out.push_back(Stage::kEX);
  if (s.find("MEM") != std::string::npos) out.push_back(Stage::kMEM);
  if (s.find("WB") != std::string::npos) out.push_back(Stage::kWB);
  return out;
}

std::string stages_to_string(const std::vector<Stage>& stages) {
  std::string out;
  for (Stage s : stages) {
    if (!out.empty()) out += ',';
    switch (s) {
      case Stage::kIF: out += "IF"; break;
      case Stage::kID: out += "ID"; break;
      case Stage::kEX: out += "EX"; break;
      case Stage::kMEM: out += "MEM"; break;
      case Stage::kWB: out += "WB"; break;
      default: break;  // kGlobal never comes from parse_stages
    }
  }
  return out;
}

CancelToken g_cancel;
extern "C" void on_sigint(int) { g_cancel.request_stop(); }

/// A zero-length store file (e.g. just created by the writability probe)
/// is a cold start, not a load candidate.
bool nonempty_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  std::fseek(f, 0, SEEK_END);
  const long n = std::ftell(f);
  std::fclose(f);
  return n > 0;
}

/// Bundle repro mode: replay one saved testcase through the independent
/// oracle and compare against the expected verdict. Exit 0 iff reproduced.
int run_replay(const DlxModel& m, const std::vector<DesignError>& errors,
               const std::string& test_path, std::size_t error_index,
               bool expect_detected) {
  if (error_index >= errors.size()) {
    std::fprintf(stderr, "--replay-error %zu out of range (population has "
                 "%zu errors; same --model/--stages as the campaign?)\n",
                 error_index, errors.size());
    return 1;
  }
  const TestLoadResult loaded = load_test(test_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", test_path.c_str(),
                 loaded.error.c_str());
    return 1;
  }
  const DesignError& err = errors[error_index];
  const WitnessCheck chk =
      check_witness(m, loaded.test, err, expect_detected);
  std::printf("error %zu: %s\nexpected %s: %s (%s)\n", error_index,
              err.describe(m.dp).c_str(),
              expect_detected ? "detected" : "undetected",
              chk.verdict == WitnessVerdict::kConfirmed ? "REPRODUCED"
                                                        : "NOT reproduced",
              chk.note.c_str());
  return chk.verdict == WitnessVerdict::kConfirmed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Stage> stages = {Stage::kEX, Stage::kMEM, Stage::kWB};
  std::string emodel = "ssl";
  std::string csv_path, save_dir;
  CampaignConfig ccfg;
  bool use_fallback = false;
  unsigned fallback_tries = 64;
  unsigned jobs = 1;
  bool use_drop = false;
  unsigned lanes = 0;  // --drop batch width; 0 = resolve_lanes() auto
  bool use_solver = true;
  bool use_probes = false;  // --probe: batched decision probing
  bool probe_order = false;  // --probe-order: implied-count decision ranking
  SolverScope scope = SolverScope::kError;
  bool verify_witness = false;
  bool minimize = false;
  std::string quarantine_dir;
  std::string store_path, failpoint_spec;
  std::string replay_path, expect;
  std::size_t replay_error = 0;
  bool have_replay_error = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--stages") && i + 1 < argc)
      stages = parse_stages(argv[++i]);
    else if (!std::strcmp(argv[i], "--model") && i + 1 < argc)
      emodel = argv[++i];
    else if (!std::strcmp(argv[i], "--csv") && i + 1 < argc)
      csv_path = argv[++i];
    else if (!std::strcmp(argv[i], "--save-tests") && i + 1 < argc)
      save_dir = argv[++i];
    else if (!std::strcmp(argv[i], "--deadline-ms") && i + 1 < argc)
      ccfg.budget.deadline_seconds = std::atof(argv[++i]) / 1000.0;
    else if (!std::strcmp(argv[i], "--max-backtracks") && i + 1 < argc)
      ccfg.budget.max_backtracks =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (!std::strcmp(argv[i], "--max-decisions") && i + 1 < argc)
      ccfg.budget.max_decisions =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (!std::strcmp(argv[i], "--fallback")) {
      use_fallback = true;
      if (i + 1 < argc && argv[i + 1][0] != '-')
        fallback_tries = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--journal") && i + 1 < argc)
      ccfg.journal_path = argv[++i];
    else if (!std::strcmp(argv[i], "--resume"))
      ccfg.resume = true;
    else if (!std::strcmp(argv[i], "--resume=strict")) {
      ccfg.resume = true;
      ccfg.resume_strict = true;
    }
    else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
      jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (!std::strcmp(argv[i], "--drop"))
      use_drop = true;
    else if (!std::strcmp(argv[i], "--lanes") && i + 1 < argc)
      lanes = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (!std::strcmp(argv[i], "--solver") && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "on")
        use_solver = true;
      else if (v == "off")
        use_solver = false;
      else {
        std::fprintf(stderr, "--solver takes 'on' or 'off', not '%s'\n",
                     v.c_str());
        return 1;
      }
    }
    else if (!std::strcmp(argv[i], "--probe") && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "on")
        use_probes = true;
      else if (v == "off")
        use_probes = false;
      else {
        std::fprintf(stderr, "--probe takes 'on' or 'off', not '%s'\n",
                     v.c_str());
        return 1;
      }
    }
    else if (!std::strcmp(argv[i], "--probe-order") && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "on") {
        use_probes = true;  // ranking needs the probe verdicts
        probe_order = true;
      } else if (v == "off")
        probe_order = false;
      else {
        std::fprintf(stderr, "--probe-order takes 'on' or 'off', not '%s'\n",
                     v.c_str());
        return 1;
      }
    }
    else if (!std::strcmp(argv[i], "--solver-scope") && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "error")
        scope = SolverScope::kError;
      else if (v == "campaign")
        scope = SolverScope::kCampaign;
      else {
        std::fprintf(stderr,
                     "--solver-scope takes 'error' or 'campaign', not '%s'\n",
                     v.c_str());
        return 1;
      }
    }
    else if (!std::strcmp(argv[i], "--store") && i + 1 < argc)
      store_path = argv[++i];
    else if (!std::strcmp(argv[i], "--failpoints") && i + 1 < argc)
      failpoint_spec = argv[++i];
    else if (!std::strcmp(argv[i], "--verify-witness"))
      verify_witness = true;
    else if (!std::strcmp(argv[i], "--minimize"))
      minimize = true;
    else if (!std::strcmp(argv[i], "--quarantine-dir") && i + 1 < argc)
      quarantine_dir = argv[++i];
    else if (!std::strcmp(argv[i], "--replay") && i + 1 < argc)
      replay_path = argv[++i];
    else if (!std::strcmp(argv[i], "--replay-error") && i + 1 < argc) {
      replay_error = static_cast<std::size_t>(std::atoll(argv[++i]));
      have_replay_error = true;
    } else if (!std::strcmp(argv[i], "--expect") && i + 1 < argc)
      expect = argv[++i];
    else if (!std::strcmp(argv[i], "-v"))
      ccfg.verbose = true;
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 1;
    }
  }
  if (stages.empty()) {
    std::fprintf(stderr, "no valid stages\n");
    return 1;
  }
  if (ccfg.resume && ccfg.journal_path.empty()) {
    std::fprintf(stderr, "--resume requires --journal\n");
    return 1;
  }
  if (use_drop && jobs > 1) {
    std::fprintf(stderr, "--drop and --jobs are mutually exclusive\n");
    return 1;
  }
  if (!store_path.empty() && scope != SolverScope::kCampaign) {
    std::fprintf(stderr, "--store requires --solver-scope campaign (a "
                 "per-error-scope context has nothing to persist)\n");
    return 1;
  }
  if (!replay_path.empty() &&
      (!have_replay_error || (expect != "detected" && expect != "undetected"))) {
    std::fprintf(stderr, "--replay requires --replay-error N and "
                 "--expect detected|undetected\n");
    return 1;
  }
  // Minimization and quarantine are refinements of the cross-check.
  if (minimize || !quarantine_dir.empty()) verify_witness = true;

  // Arm the I/O fault-injection harness (zero-cost when unused).
  failpoint::configure_from_env();
  if (!failpoint_spec.empty()) {
    std::string fperr;
    if (!failpoint::configure(failpoint_spec, &fperr)) {
      std::fprintf(stderr, "--failpoints: %s\n", fperr.c_str());
      return 1;
    }
  }

  // Fail fast on unwritable output paths: a campaign that runs for an hour
  // and then cannot journal, persist, or quarantine wasted the hour. The
  // store's prior size is recorded BEFORE the probe (the probe leaves an
  // empty file behind when the path was absent).
  const bool store_existed = !store_path.empty() && nonempty_file(store_path);
  std::string why;
  if (!ccfg.journal_path.empty() &&
      !probe_writable_file(ccfg.journal_path, &why)) {
    std::fprintf(stderr, "--journal %s: %s\n", ccfg.journal_path.c_str(),
                 why.c_str());
    return 1;
  }
  if (!store_path.empty() && !probe_writable_file(store_path, &why)) {
    std::fprintf(stderr, "--store %s: %s\n", store_path.c_str(), why.c_str());
    return 1;
  }
  if (!quarantine_dir.empty() && !probe_writable_dir(quarantine_dir, &why)) {
    std::fprintf(stderr, "--quarantine-dir %s: %s\n", quarantine_dir.c_str(),
                 why.c_str());
    return 1;
  }

  const DlxModel m = build_dlx();
  std::vector<DesignError> errors;
  if (emodel == "ssl") {
    BusSslConfig cfg;
    cfg.stages = stages;
    errors = wrap(enumerate_bus_ssl(m.dp, cfg));
  } else if (emodel == "mse") {
    errors = wrap(enumerate_mse(m.dp, stages));
  } else if (emodel == "boe") {
    errors = wrap(enumerate_boe(m.dp, stages));
  } else if (emodel == "bse") {
    BseConfig cfg;
    cfg.stages = stages;
    errors = wrap(enumerate_bse(m.dp, cfg));
  } else {
    std::fprintf(stderr, "unknown error model '%s'\n", emodel.c_str());
    return 1;
  }
  if (!replay_path.empty())
    return run_replay(m, errors, replay_path, replay_error,
                      expect == "detected");
  std::printf("error model %s, %zu errors\n", emodel.c_str(), errors.size());

  std::signal(SIGINT, on_sigint);
  std::signal(SIGTERM, on_sigint);  // orchestrators kill politely too
  ccfg.cancel = &g_cancel;
  ccfg.budget.cancel = &g_cancel;
  if (use_fallback) {
    RandomTgConfig rcfg;
    rcfg.max_programs_per_error = fallback_tries;
    ccfg.fallback = random_budgeted_strategy(m, rcfg);
    ccfg.fallback_budget = ccfg.budget;  // same deadline/caps per attempt
  }

  TgConfig tgcfg;
  tgcfg.solver.enable = use_solver;
  tgcfg.solver.scope = scope;
  tgcfg.ctrljust.use_probes = use_probes;
  tgcfg.ctrljust.probe_order = probe_order;
  tgcfg.ctrljust.probe_lanes = lanes;  // shared with --drop batch width

  // Provenance stamps: recorded in the journal header and the store meta
  // record, validated on --resume and on store load so deduction state is
  // never replayed against a different design or solver configuration.
  ccfg.design_hash = tg_design_hash(m);
  ccfg.solver_config_hash = tg_config_hash(tgcfg);

  // Cross-worker nogood exchange for the sharded campaign scope: workers
  // publish learned netlist-level cuts between errors and import the
  // others' via epoch-published read-only snapshots.
  NogoodBoard board;
  if (scope == SolverScope::kCampaign && jobs > 1)
    tgcfg.solver.shared_board = &board;

  // Warm start: load the persisted deduction store (validated against the
  // stamps above). A missing or empty file is a cold start; a mismatched
  // or unreadable one is a hard error - silently searching cold after the
  // user asked for a warm start would hide the problem.
  DedSnapshot warm;
  if (!store_path.empty() && store_existed) {
    DedStoreLoad load =
        load_ded_store(store_path, ccfg.design_hash, ccfg.solver_config_hash);
    if (!load.ok) {
      std::fprintf(stderr, "--store %s: %s\n", store_path.c_str(),
                   load.note.c_str());
      return 1;
    }
    warm = std::move(load.snapshot);
    std::printf("store: warm start, %zu deductions from %s%s%s\n",
                warm.entries(), store_path.c_str(),
                load.note.empty() ? "" : " - ",
                load.note.c_str());
  }

  if (verify_witness) {
    TriageOptions topt;
    topt.verify = true;
    topt.minimize = minimize;
    topt.quarantine_dir = quarantine_dir;
    topt.repro_flags =
        "--model " + emodel + " --stages " + stages_to_string(stages);
    topt.cross_config = tgcfg;
    topt.cross_config.solver.enable = !use_solver;  // the other search
    topt.cross_config.solver.shared_board = nullptr;  // oracle stays cold
    ccfg.triage = make_triage(m, topt);
  }

  const bool persist = !store_path.empty();
  DedSnapshot saved;  // merged deduction state persisted after the campaign
  CampaignResult res;
  if (use_drop) {
    TestGenerator tg(m, tgcfg);
    if (!warm.empty()) import_context(warm, &tg.solver_context());
    BatchDetectConfig bcfg;
    bcfg.max_lanes = lanes;  // 0 = resolve_lanes (CPUID auto / HLTG_LANES)
    res = run_campaign_with_dropping(m.dp, errors, tg.budgeted_strategy(),
                                     batch_detector(m, bcfg), ccfg);
    if (persist) saved = export_context(tg.solver_context());
  } else if (jobs > 1) {
    // Workers share the model read-only; materialise its lazy caches before
    // handing out const refs.
    m.ctrl.warm_caches();
    m.dp.topo_order();
    ParallelCampaignConfig pcfg;
    static_cast<CampaignConfig&>(pcfg) = ccfg;
    pcfg.jobs = jobs;
    if (use_fallback) {
      RandomTgConfig rcfg;
      rcfg.max_programs_per_error = fallback_tries;
      pcfg.fallback = nullptr;  // replaced by per-worker instances
      pcfg.fallback_factory = [&m, rcfg](unsigned) {
        return random_budgeted_strategy(m, rcfg);
      };
    }
    // Keep each worker's generator reachable so its deduction state can be
    // exported after the pool joins (merged in worker-id order: the saved
    // store must be reproducible).
    std::mutex gen_mu;
    std::vector<std::shared_ptr<TestGenerator>> worker_gens(jobs);
    res = run_campaign_parallel(
        m.dp, errors,
        [&](unsigned w) {
          auto tg = std::make_shared<TestGenerator>(m, tgcfg);
          if (!warm.empty()) import_context(warm, &tg->solver_context());
          {
            std::lock_guard<std::mutex> lk(gen_mu);
            worker_gens[w] = tg;
          }
          BudgetedGenFn s = tg->budgeted_strategy();
          return [tg, s](const DesignError& e, Budget& b) { return s(e, b); };
        },
        pcfg);
    std::printf("ran on %u worker threads\n", jobs);
    if (persist)
      for (const auto& tg : worker_gens)
        if (tg) saved.merge(export_context(tg->solver_context()));
  } else {
    TestGenerator tg(m, tgcfg);
    if (!warm.empty()) import_context(warm, &tg.solver_context());
    res = run_campaign(m.dp, errors, tg.budgeted_strategy(), ccfg);
    if (persist) saved = export_context(tg.solver_context());
  }
  if (res.resume_refused) {
    std::fprintf(stderr, "journal: %s\n", res.journal_note.c_str());
    return 1;
  }
  if (persist) {
    DedStoreMeta meta;
    meta.design_hash = ccfg.design_hash;
    meta.config_hash = ccfg.solver_config_hash;
    std::string swhy;
    if (save_ded_store(store_path, meta, saved, &swhy))
      std::printf("store: saved %zu deductions to %s\n", saved.entries(),
                  store_path.c_str());
    else
      std::fprintf(stderr, "store: save failed: %s (next run starts cold)\n",
                   swhy.c_str());
  }
  if (use_drop)
    std::printf("dropping: kept %zu tests, dropped %zu errors (%.2f s error "
                "simulation)\n",
                res.tests_kept, res.dropped, res.dropping_seconds);
  if (!res.journal_note.empty())
    std::fprintf(stderr, "journal: %s\n", res.journal_note.c_str());
  if (res.resumed_rows > 0)
    std::printf("resumed %zu journaled errors, ran %zu\n", res.resumed_rows,
                res.stats.attempted - res.resumed_rows);
  else if (ccfg.resume)
    // --resume that replayed nothing means the checkpoint was not actually
    // used - most often a typo'd path. Loud, because the run silently
    // repeated all the work the journal was supposed to save.
    std::fprintf(stderr,
                 "WARNING: --resume replayed no journaled rows (%s); the "
                 "campaign started fresh. Use --resume=strict to make this "
                 "an error.\n",
                 res.journal_note.empty() ? "journal was empty"
                                          : res.journal_note.c_str());
  if (res.interrupted)
    std::printf("interrupted after %zu of %zu errors (journal is "
                "resumable)\n",
                res.stats.attempted, res.stats.total);
  // Verification chatter goes to stderr: the stdout summary of a
  // mismatch-free verified run is byte-identical to an unverified one.
  if (verify_witness) {
    std::fprintf(stderr,
                 "verify: %zu claims confirmed, %zu mismatches, %zu oracle "
                 "errors, %zu recovered, %zu drop claims refuted\n",
                 res.stats.verify_confirmed, res.stats.claim_mismatch,
                 res.stats.oracle_errors, res.stats.verify_recovered,
                 res.stats.drop_mismatches);
    for (const std::string& note : res.incident_notes)
      std::fprintf(stderr, "incident: %s\n", note.c_str());
  }
  std::printf("%s\n", res.stats.table1("campaign summary").c_str());

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    out << campaign_csv(m.dp, res);
    std::printf("wrote %s\n", csv_path.c_str());
  }
  if (!save_dir.empty()) {
    unsigned saved = 0;
    for (std::size_t i = 0; i < res.rows.size(); ++i) {
      const ErrorAttempt& a = res.rows[i].attempt;
      if (!a.detected()) continue;
      save_test(a.test, save_dir + "/test_" + std::to_string(i) + ".txt");
      ++saved;
    }
    std::printf("saved %u tests to %s/\n", saved, save_dir.c_str());
  }

  // Post-mortem on aborted errors: separate provable redundancy from
  // genuine generator give-ups.
  if (emodel == "ssl" && !res.interrupted) {
    const BitConstants bc = analyze_bit_constants(m.dp);
    std::size_t redundant = 0;
    std::printf("aborted errors:\n");
    for (const CampaignRow& row : res.rows) {
      if (row.attempt.detected()) continue;
      const auto& e = std::get<BusSslError>(row.error.e);
      const bool red = is_redundant(bc, e);
      redundant += red;
      const bool quarantined =
          row.attempt.outcome() == AttemptOutcome::kClaimMismatch;
      std::printf("  %-44s %s\n", row.error.describe(m.dp).c_str(),
                  quarantined
                      ? "quarantined: claim mismatch"
                      : red ? "provably undetectable"
                            : row.attempt.abort == AbortReason::kNone
                                  ? "generator gave up"
                                  : ("aborted: " +
                                     std::string(to_string(row.attempt.abort)))
                                        .c_str());
    }
    std::printf("%zu of %zu aborted errors are provably undetectable\n",
                redundant, res.stats.aborted);
  }
  if (res.interrupted) return 130;
  // A claim mismatch means the campaign's own bookkeeping disagreed with
  // the independent oracle: fail loudly so CI surfaces the quarantine.
  if (res.stats.claim_mismatch > 0) return 2;
  return 0;
}
