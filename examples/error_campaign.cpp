// Error campaign: run the generator over a configurable error population
// and print the Table-1 style summary plus per-error outcomes.
//
//   $ ./error_campaign [--stages EX,MEM,WB] [--model ssl|mse|boe|bse] [-v]
//                      [--csv out.csv] [--save-tests dir]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/tg.h"
#include "errors/redundancy.h"
#include "errors/report.h"
#include "isa/testcase_io.h"
#include "util/table.h"

using namespace hltg;

namespace {

std::vector<Stage> parse_stages(const std::string& s) {
  std::vector<Stage> out;
  if (s.find("IF") != std::string::npos) out.push_back(Stage::kIF);
  if (s.find("ID") != std::string::npos) out.push_back(Stage::kID);
  if (s.find("EX") != std::string::npos) out.push_back(Stage::kEX);
  if (s.find("MEM") != std::string::npos) out.push_back(Stage::kMEM);
  if (s.find("WB") != std::string::npos) out.push_back(Stage::kWB);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Stage> stages = {Stage::kEX, Stage::kMEM, Stage::kWB};
  std::string emodel = "ssl";
  std::string csv_path, save_dir;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--stages") && i + 1 < argc)
      stages = parse_stages(argv[++i]);
    else if (!std::strcmp(argv[i], "--model") && i + 1 < argc)
      emodel = argv[++i];
    else if (!std::strcmp(argv[i], "--csv") && i + 1 < argc)
      csv_path = argv[++i];
    else if (!std::strcmp(argv[i], "--save-tests") && i + 1 < argc)
      save_dir = argv[++i];
    else if (!std::strcmp(argv[i], "-v"))
      verbose = true;
  }
  if (stages.empty()) {
    std::fprintf(stderr, "no valid stages\n");
    return 1;
  }

  const DlxModel m = build_dlx();
  std::vector<DesignError> errors;
  if (emodel == "ssl") {
    BusSslConfig cfg;
    cfg.stages = stages;
    errors = wrap(enumerate_bus_ssl(m.dp, cfg));
  } else if (emodel == "mse") {
    errors = wrap(enumerate_mse(m.dp, stages));
  } else if (emodel == "boe") {
    errors = wrap(enumerate_boe(m.dp, stages));
  } else if (emodel == "bse") {
    BseConfig cfg;
    cfg.stages = stages;
    errors = wrap(enumerate_bse(m.dp, cfg));
  } else {
    std::fprintf(stderr, "unknown error model '%s'\n", emodel.c_str());
    return 1;
  }
  std::printf("error model %s, %zu errors\n", emodel.c_str(), errors.size());

  TestGenerator tg(m);
  const CampaignResult res = run_campaign(m.dp, errors, tg.strategy(), verbose);
  std::printf("%s\n", res.stats.table1("campaign summary").c_str());

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    out << campaign_csv(m.dp, res);
    std::printf("wrote %s\n", csv_path.c_str());
  }
  if (!save_dir.empty()) {
    unsigned saved = 0;
    for (std::size_t i = 0; i < res.rows.size(); ++i) {
      const ErrorAttempt& a = res.rows[i].attempt;
      if (!a.generated || !a.sim_confirmed) continue;
      save_test(a.test, save_dir + "/test_" + std::to_string(i) + ".txt");
      ++saved;
    }
    std::printf("saved %u tests to %s/\n", saved, save_dir.c_str());
  }

  // Post-mortem on aborted errors: separate provable redundancy from
  // genuine generator give-ups.
  if (emodel == "ssl") {
    const BitConstants bc = analyze_bit_constants(m.dp);
    std::size_t redundant = 0;
    std::printf("aborted errors:\n");
    for (const CampaignRow& row : res.rows) {
      if (row.attempt.generated && row.attempt.sim_confirmed) continue;
      const auto& e = std::get<BusSslError>(row.error.e);
      const bool red = is_redundant(bc, e);
      redundant += red;
      std::printf("  %-44s %s\n", row.error.describe(m.dp).c_str(),
                  red ? "provably undetectable" : "generator gave up");
    }
    std::printf("%zu of %zu aborted errors are provably undetectable\n",
                redundant, res.stats.aborted);
  }
  return 0;
}
