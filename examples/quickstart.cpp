// Quickstart: build the DLX model, inject one design error, generate a
// verification test for it, and confirm detection by dual simulation.
//
//   $ ./quickstart [net-name] [bit] [0|1]
//
// defaults to the ALU adder output, bit 0, stuck-at-0.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/tg.h"
#include "isa/disasm.h"
#include "sim/cosim.h"
#include "sim/diff_debug.h"

using namespace hltg;

int main(int argc, char** argv) {
  // 1. Build the two-level implementation model (word-level datapath +
  //    gate-level controller, Sec. III of the paper).
  const DlxModel m = build_dlx();

  // 2. Pick a design error: one line of one datapath bus stuck at a value.
  const std::string net_name = argc > 1 ? argv[1] : "ex.alu_add";
  const unsigned bit = argc > 2 ? std::atoi(argv[2]) : 0;
  const bool stuck = argc > 3 && std::atoi(argv[3]) != 0;
  const NetId net = m.dp.find_net(net_name);
  if (net == kNoNet) {
    std::fprintf(stderr, "no such datapath net: %s\n", net_name.c_str());
    return 1;
  }
  const DesignError err{BusSslError{net, bit, stuck}};
  std::printf("target error: %s\n\n", err.describe(m.dp).c_str());

  // 3. Run the three-part test generator (DPTRACE / CTRLJUST / DPRELAX).
  TestGenerator tg(m);
  const TgResult r = tg.generate(err);
  if (r.status != TgStatus::kSuccess) {
    std::printf("aborted: %s\n", r.note.c_str());
    return 2;
  }
  std::printf("generated test (%u instructions to observation, "
              "%llu decisions, %llu backtracks):\n",
              r.test_length, (unsigned long long)r.stats.decisions,
              (unsigned long long)r.stats.backtracks);
  std::printf("%s", disassemble_program(r.test.imem).c_str());
  for (unsigned reg = 1; reg < 32; ++reg)
    if (r.test.rf_init[reg])
      std::printf("  r%-2u = 0x%08x\n", reg, r.test.rf_init[reg]);
  for (auto [addr, val] : r.test.dmem_init)
    std::printf("  M[0x%x] = 0x%08x\n", addr, val);

  // 4. Confirm: simulate the ISA specification and the erroneous
  //    implementation; a trace mismatch means the error is detected.
  const CosimResult c =
      cosim(m, r.test, drain_cycles(r.test.imem.size()), err.injection());
  std::printf("\nspec-vs-erroneous-implementation mismatch:\n%s\n",
              c.diff.c_str());

  // 5. Localize the divergence for debugging.
  const DivergenceReport rep =
      diff_runs(m, r.test, drain_cycles(r.test.imem.size()), err.injection());
  std::printf("%s\n", rep.to_string(m.dp).c_str());
  std::printf(c.match ? "NOT DETECTED (unexpected)\n" : "DETECTED\n");
  return c.match ? 3 : 0;
}
