// Model export: write the two-level DLX model as structural Verilog, and a
// VCD waveform of a sample run (optionally with an injected error) for
// inspection in standard EDA tooling.
//
//   $ ./model_export [outdir] [--predictor] [--no-bypass]
//
// Writes outdir/dlx.v and outdir/run.vcd (default outdir: ".").
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "dlx/export_verilog.h"
#include "dlx/signal_names.h"
#include "isa/asm.h"
#include "netlist/dot.h"
#include "sim/vcd.h"

using namespace hltg;

int main(int argc, char** argv) {
  std::string outdir = ".";
  DlxConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--predictor"))
      cfg.branch_predictor = true;
    else if (!std::strcmp(argv[i], "--no-bypass"))
      cfg.bypassing = false;
    else
      outdir = argv[i];
  }

  const DlxModel m = build_dlx(cfg);
  std::printf("%s\n", describe_model(m).c_str());

  const std::string vpath = outdir + "/dlx.v";
  {
    std::ofstream out(vpath);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", vpath.c_str());
      return 1;
    }
    out << export_top_verilog(m);
  }
  std::printf("wrote %s\n", vpath.c_str());

  const std::string dpath = outdir + "/dlx.dot";
  {
    std::ofstream out(dpath);
    out << export_datapath_dot(m.dp);
  }
  std::printf("wrote %s (render with graphviz)\n", dpath.c_str());

  // A short hazard-rich run for the waveform.
  const AsmResult prog = assemble(
      "      addi r1, r0, 3\n"
      "loop: add  r2, r2, r1\n"
      "      subi r1, r1, 1\n"
      "      bnez r1, loop\n"
      "      sw   0x40(r0), r2\n");
  TestCase tc;
  tc.imem = encode_program(prog.program);
  const std::string vcd = dump_vcd(m, tc, 32);
  const std::string wpath = outdir + "/run.vcd";
  {
    std::ofstream out(wpath);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", wpath.c_str());
      return 1;
    }
    out << vcd;
  }
  std::printf("wrote %s (%zu bytes; open with GTKWave)\n", wpath.c_str(),
              vcd.size());
  return 0;
}
