// Campaign service daemon (docs/SERVICE.md): serve test-generation
// campaigns to many concurrent clients over a unix-domain socket, with a
// content-addressed result cache so identical requests are answered
// without running anything.
//
//   $ ./tg_server --socket /tmp/tg.sock [--cache-dir DIR]
//                 [--spool-dir DIR] [--executors N] [--jobs-cap N]
//                 [--queue N] [--cache-entries N] [--failpoints SPEC]
//                 [--cache-max-bytes N] [--max-crashes N]
//                 [--request-deadline-ms N] [--term-grace-ms N]
//                 [--poison-dir DIR] [--spool-keep N] [--no-supervise]
//
// --cache-dir persists every completed result (atomic tmp+fsync+rename
// per entry; corrupt entries are quarantined, never served);
// --cache-max-bytes bounds the directory with LRU eviction. --spool-dir
// enables per-request progress streaming (clients submit with
// "subscribe":true); --spool-keep bounds the retained journals.
// SIGTERM/SIGINT drain gracefully: admissions stop, every admitted
// campaign completes and is delivered, then the daemon exits 0. A
// client's {"op":"shutdown"} does the same.
//
// Campaigns run in forked, supervised worker processes (docs/SERVICE.md
// "Supervision"): a worker crash becomes a structured error and a retry
// with jittered backoff (HLTG_WORKER_BACKOFF_BASE_MS /
// HLTG_WORKER_BACKOFF_MAX_MS override the envelope); --max-crashes worker
// deaths quarantine the request key as POISONED (--poison-dir makes the
// quarantine durable); --request-deadline-ms bounds each request's wall
// clock, escalating SIGTERM -> SIGKILL after --term-grace-ms.
// --no-supervise reverts to in-process execution (debugging only: a
// campaign crash then kills the daemon).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "service/server.h"
#include "util/failpoint.h"

using namespace hltg;

namespace {

volatile std::sig_atomic_t g_term = 0;
extern "C" void on_term(int) { g_term = 1; }

}  // namespace

int main(int argc, char** argv) {
  ServiceConfig scfg;
  scfg.supervise = true;  // the daemon always isolates campaigns by default
  ServerConfig srvcfg;
  std::string failpoint_spec;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--socket") && i + 1 < argc)
      srvcfg.socket_path = argv[++i];
    else if (!std::strcmp(argv[i], "--cache-dir") && i + 1 < argc)
      scfg.cache_dir = argv[++i];
    else if (!std::strcmp(argv[i], "--spool-dir") && i + 1 < argc)
      scfg.spool_dir = argv[++i];
    else if (!std::strcmp(argv[i], "--executors") && i + 1 < argc)
      scfg.executors = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (!std::strcmp(argv[i], "--jobs-cap") && i + 1 < argc)
      scfg.jobs_cap = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (!std::strcmp(argv[i], "--queue") && i + 1 < argc)
      scfg.queue_capacity = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (!std::strcmp(argv[i], "--cache-entries") && i + 1 < argc)
      scfg.cache_memory_entries =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (!std::strcmp(argv[i], "--cache-max-bytes") && i + 1 < argc)
      scfg.cache_max_bytes = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (!std::strcmp(argv[i], "--max-crashes") && i + 1 < argc)
      scfg.supervisor.max_crashes =
          static_cast<unsigned>(std::atoi(argv[++i]));
    else if (!std::strcmp(argv[i], "--request-deadline-ms") && i + 1 < argc)
      scfg.supervisor.deadline_seconds = std::atof(argv[++i]) / 1000.0;
    else if (!std::strcmp(argv[i], "--term-grace-ms") && i + 1 < argc)
      scfg.supervisor.term_grace_seconds = std::atof(argv[++i]) / 1000.0;
    else if (!std::strcmp(argv[i], "--poison-dir") && i + 1 < argc)
      scfg.poison_dir = argv[++i];
    else if (!std::strcmp(argv[i], "--spool-keep") && i + 1 < argc)
      scfg.spool_keep = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (!std::strcmp(argv[i], "--no-supervise"))
      scfg.supervise = false;
    else if (!std::strcmp(argv[i], "--failpoints") && i + 1 < argc)
      failpoint_spec = argv[++i];
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 1;
    }
  }
  if (srvcfg.socket_path.empty()) {
    std::fprintf(stderr, "usage: tg_server --socket PATH [--cache-dir DIR] "
                 "[--spool-dir DIR] [--executors N] [--jobs-cap N] "
                 "[--queue N] [--cache-entries N] [--cache-max-bytes N] "
                 "[--max-crashes N] [--request-deadline-ms N] "
                 "[--term-grace-ms N] [--poison-dir DIR] [--spool-keep N] "
                 "[--no-supervise]\n");
    return 1;
  }
  // Backoff envelope overrides (ms): operators tune restart pacing
  // without a redeploy; the flags stay small.
  if (const char* e = std::getenv("HLTG_WORKER_BACKOFF_BASE_MS"))
    scfg.supervisor.backoff_base_ms = std::atof(e);
  if (const char* e = std::getenv("HLTG_WORKER_BACKOFF_MAX_MS"))
    scfg.supervisor.backoff_max_ms = std::atof(e);

  failpoint::configure_from_env();
  if (!failpoint_spec.empty()) {
    std::string fperr;
    if (!failpoint::configure(failpoint_spec, &fperr)) {
      std::fprintf(stderr, "--failpoints: %s\n", fperr.c_str());
      return 1;
    }
  }

  // Fail fast on unwritable directories (same policy as error_campaign's
  // --journal/--store probes): a daemon that accepts traffic for an hour
  // and then cannot persist a single result wasted everyone's hour.
  std::string why;
  if (!scfg.cache_dir.empty() && !probe_writable_dir(scfg.cache_dir, &why)) {
    std::fprintf(stderr, "--cache-dir %s: %s\n", scfg.cache_dir.c_str(),
                 why.c_str());
    return 1;
  }
  if (!scfg.spool_dir.empty() && !probe_writable_dir(scfg.spool_dir, &why)) {
    std::fprintf(stderr, "--spool-dir %s: %s\n", scfg.spool_dir.c_str(),
                 why.c_str());
    return 1;
  }
  if (!scfg.poison_dir.empty() &&
      !probe_writable_dir(scfg.poison_dir, &why)) {
    std::fprintf(stderr, "--poison-dir %s: %s\n", scfg.poison_dir.c_str(),
                 why.c_str());
    return 1;
  }

  const DlxModel m = build_dlx();
  CampaignService service(m, scfg);
  ServiceServer server(service, srvcfg);
  if (!server.start(&why)) {
    std::fprintf(stderr, "tg_server: %s\n", why.c_str());
    return 1;
  }
  std::signal(SIGTERM, on_term);
  std::signal(SIGINT, on_term);
  std::signal(SIGPIPE, SIG_IGN);

  std::printf("tg_server: serving on %s (executors %u, queue %zu%s%s)\n",
              srvcfg.socket_path.c_str(), scfg.executors,
              scfg.queue_capacity,
              scfg.cache_dir.empty() ? "" : ", cache ",
              scfg.cache_dir.c_str());
  std::fflush(stdout);

  // Serve until SIGTERM/SIGINT or a client's shutdown op, then drain:
  // admitted work completes and every blocked client gets its result
  // before the process exits 0.
  while (!g_term && !server.shutdown_requested()) {
    timespec ts{0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  server.stop();
  std::printf("tg_server: drained, exiting\n");
  return 0;
}
