// Hazard explorer: drive CTRLJUST directly to synthesize instruction
// sequences that excite specific pipeline interactions - stalls, bypasses,
// squashes. This is the Iwashita-style "test case" use of the controller
// search (Sec. II.B), exposed as a library API.
#include <cstdio>

#include "core/ctrljust.h"
#include "core/emit.h"
#include "isa/disasm.h"
#include "sim/trace.h"

using namespace hltg;

namespace {

GateId ctrl_bit(const DlxModel& m, const char* net, unsigned bit = 0) {
  return m.find_ctrl(m.dp.find_net(net))->bits[bit];
}

void explore(const DlxModel& m, const char* what,
             const std::vector<CtrlObjective>& objs) {
  std::printf("=== test case: %s ===\n", what);
  CtrlJust cj(m.ctrl, 12);
  const CtrlJustResult r = cj.solve(objs);
  if (r.status != TgStatus::kSuccess) {
    std::printf("  unjustifiable within the window\n\n");
    return;
  }
  RelaxVars vars;
  const EmitResult er = emit_cpi_assignments(m, cj.window(), r.cpi_assignments, &vars);
  if (!er.ok) {
    std::printf("  emission failed: %s\n\n", er.note.c_str());
    return;
  }
  // The controller search pins opcodes; give the data side simple operands
  // so the hazard conditions (register matches) actually hold: make every
  // pinned instruction use r1 as both source and destination.
  for (std::size_t i = 0; i < vars.imem.size(); ++i) {
    if (vars.imem[i] == 0) continue;
    const std::uint32_t keep = vars.imem_fixed[i];
    std::uint32_t word = vars.imem[i] & keep;
    word |= (1u << 21) & ~keep;  // rs1 = r1
    word |= (1u << 16) & ~keep;  // rs2 / I-type rd = r1
    word |= (1u << 11) & ~keep;  // R-type rd = r1
    vars.imem[i] = word;
  }
  TestCase tc = vars.to_test();
  trim_trailing_nops(&tc.imem);
  tc.rf_init[1] = 0x40;
  std::printf("%s", disassemble_program(tc.imem).c_str());
  std::printf("%s\n", trace_pipeline(m, tc, 12).c_str());
}

}  // namespace

int main() {
  const DlxModel m = build_dlx();

  // A store committing right after the pipeline fills.
  explore(m, "store commits at cycle 3",
          {{ctrl_bit(m, "ctrl.mem_we"), 3, true}});

  // A load-use stall: the interlock fires in cycle 3.
  explore(m, "load-use interlock (stall@3)",
          {{m.ctrl.find("cg.stall"), 3, true}});

  // Operand-A bypass from EX/MEM.
  explore(m, "bypass A from EX/MEM (fwd_a[0]@4)",
          {{ctrl_bit(m, "ctrl.fwd_a"), 4, true}});

  // Operand-A bypass from MEM/WB (distance-2 dependency).
  explore(m, "bypass A from MEM/WB (fwd_a[1]@4)",
          {{ctrl_bit(m, "ctrl.fwd_a", 1), 4, true}});

  // Back-to-back stores in MEM at cycles 4 and 5.
  explore(m, "consecutive stores",
          {{ctrl_bit(m, "ctrl.mem_we"), 4, true},
           {ctrl_bit(m, "ctrl.mem_we"), 5, true}});
  return 0;
}
