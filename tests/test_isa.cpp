#include <gtest/gtest.h>

#include "isa/asm.h"
#include "isa/disasm.h"
#include "isa/encode.h"
#include "isa/isa.h"
#include "util/rng.h"
#include "util/word.h"

namespace hltg {
namespace {

class AllOps : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Isa, AllOps, ::testing::Range(0, kNumInstructions),
                         [](const auto& info) {
                           return std::string(
                               mnemonic(static_cast<Op>(info.param)));
                         });

Instr sample_instr(Op op, Rng& rng) {
  Instr i;
  i.op = op;
  i.rs1 = static_cast<unsigned>(rng.below(32));
  i.rs2 = static_cast<unsigned>(rng.below(32));
  i.rd = static_cast<unsigned>(rng.below(32));
  switch (format_of(op)) {
    case Format::kR:
      i.imm = 0;
      break;
    case Format::kI:
      i.imm = zero_extends_imm(op)
                  ? static_cast<std::int32_t>(rng.word(16))
                  : static_cast<std::int32_t>(sext(rng.word(16), 16));
      break;
    case Format::kJ:
      i.rs1 = i.rs2 = i.rd = 0;
      i.imm = static_cast<std::int32_t>(sext(rng.word(26), 26));
      break;
  }
  if (op == Op::kNop) i = Instr{};
  if (op == Op::kJr || op == Op::kJalr) {
    i.rd = 0;
    i.imm = 0;
  }
  if (op == Op::kJ || op == Op::kJal) i.rs1 = 0;
  if (op == Op::kBeqz || op == Op::kBnez) i.rd = 0;
  if (op == Op::kLhi) i.rs1 = 0;
  if (format_of(op) == Format::kI) i.rs2 = 0;
  return i;
}

TEST_P(AllOps, EncodeDecodeRoundTrip) {
  const Op op = static_cast<Op>(GetParam());
  Rng rng(1234 + GetParam());
  for (int k = 0; k < 50; ++k) {
    const Instr i = sample_instr(op, rng);
    const std::uint32_t w = encode(i);
    const Instr d = decode(w);
    EXPECT_EQ(d.op, i.op) << to_string(i);
    if (reads_rs1(op) || format_of(op) == Format::kR) {
      EXPECT_EQ(d.rs1, i.rs1) << to_string(i);
    }
    if (format_of(op) == Format::kR) {
      EXPECT_EQ(d.rs2, i.rs2);
    }
    if (op != Op::kNop && format_of(op) != Format::kJ && op != Op::kJr &&
        op != Op::kJalr) {
      EXPECT_EQ(d.rd, i.rd) << to_string(i);
    }
    if (format_of(op) != Format::kR && op != Op::kJr && op != Op::kJalr) {
      EXPECT_EQ(d.imm, i.imm) << to_string(i);
    }
  }
}

TEST_P(AllOps, EncodingIsDefined) {
  const Op op = static_cast<Op>(GetParam());
  Rng rng(99 + GetParam());
  const Instr i = sample_instr(op, rng);
  EXPECT_TRUE(is_defined(encode(i))) << to_string(i);
}

TEST_P(AllOps, AsmRoundTrip) {
  const Op op = static_cast<Op>(GetParam());
  Rng rng(5678 + GetParam());
  const Instr i = sample_instr(op, rng);
  const std::string text = to_string(i);
  const AsmResult r = assemble(text);
  ASSERT_TRUE(r.ok()) << text << "\n"
                      << (r.errors.empty() ? "" : r.errors[0]);
  ASSERT_EQ(r.program.size(), 1u);
  EXPECT_EQ(encode(r.program[0]), encode(i)) << text;
}

TEST(Isa, NopIsAllZeros) {
  EXPECT_EQ(encode(Instr{}), 0u);
  EXPECT_EQ(decode(0).op, Op::kNop);
}

TEST(Isa, UndefinedDecodesToNop) {
  // Opcode 0x3F is not assigned.
  const std::uint32_t w = 0x3Fu << 26 | 0x12345;
  EXPECT_EQ(decode(w).op, Op::kNop);
  EXPECT_FALSE(is_defined(w));
  // R-type with unassigned func.
  const std::uint32_t r = 0x3F;  // opcode 0, func 0x3F
  EXPECT_EQ(decode(r).op, Op::kNop);
  EXPECT_FALSE(is_defined(r));
}

TEST(Isa, MnemonicRoundTrip) {
  for (int k = 0; k < kNumInstructions; ++k) {
    const Op op = static_cast<Op>(k);
    EXPECT_EQ(op_from_mnemonic(mnemonic(op)), op);
  }
  EXPECT_EQ(op_from_mnemonic("bogus"), Op::kNumOps);
}

TEST(Isa, ExactlyFortyFourInstructions) { EXPECT_EQ(kNumInstructions, 44); }

TEST(Isa, WritesRegProperties) {
  Instr add;
  add.op = Op::kAdd;
  add.rd = 5;
  unsigned d = 0;
  EXPECT_TRUE(writes_reg(add, &d));
  EXPECT_EQ(d, 5u);
  add.rd = 0;
  EXPECT_FALSE(writes_reg(add, &d));  // R0 hardwired

  Instr jal;
  jal.op = Op::kJal;
  EXPECT_TRUE(writes_reg(jal, &d));
  EXPECT_EQ(d, 31u);

  Instr sw;
  sw.op = Op::kSw;
  sw.rd = 7;
  EXPECT_FALSE(writes_reg(sw, &d));
  EXPECT_TRUE(reads_rd_as_source(Op::kSw));
}

TEST(Isa, ClassPredicatesDisjoint) {
  for (int k = 0; k < kNumInstructions; ++k) {
    const Op op = static_cast<Op>(k);
    int classes = 0;
    classes += is_alu_r(op);
    classes += is_alu_i(op);
    classes += is_load(op);
    classes += is_store(op);
    classes += is_control(op);
    classes += (op == Op::kNop);
    EXPECT_EQ(classes, 1) << mnemonic(op);
  }
}

TEST(Asm, ParsesProgramWithComments) {
  const AsmResult r = assemble(
      "; init\n"
      "addi r1, r0, 42   # forty-two\n"
      "add r2, r1, r1\n"
      "sw 8(r0), r2\n"
      "\n"
      "nop\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.program.size(), 4u);
  EXPECT_EQ(r.program[0].op, Op::kAddi);
  EXPECT_EQ(r.program[0].imm, 42);
  EXPECT_EQ(r.program[2].op, Op::kSw);
  EXPECT_EQ(r.program[2].imm, 8);
  EXPECT_EQ(r.program[2].rd, 2u);
}

TEST(Asm, ReportsErrors) {
  const AsmResult r = assemble("frobnicate r1, r2\naddi r1\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.errors.size(), 2u);
}

TEST(Disasm, MarksUndefined) {
  const std::string s = disassemble(0x3Fu << 26);
  EXPECT_NE(s.find("undefined"), std::string::npos);
}

TEST(Disasm, ProgramListing) {
  const std::string s =
      disassemble_program({encode({Op::kAddi, 0, 0, 1, 5})});
  EXPECT_NE(s.find("addi r1, r0, 5"), std::string::npos);
}

}  // namespace
}  // namespace hltg
