// Tests for the divergence debugger and the suite-coverage metrics.
#include <gtest/gtest.h>

#include "core/tg.h"
#include "errors/coverage.h"
#include "isa/asm.h"
#include "sim/diff_debug.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

TestCase make_tc(const std::string& src) {
  const AsmResult r = assemble(src);
  EXPECT_TRUE(r.ok());
  TestCase tc;
  tc.imem = encode_program(r.program);
  return tc;
}

TEST(DiffDebug, LocatesFirstDivergentCycle) {
  // ALU adder stuck line: the instruction is in EX at cycle 2, so the first
  // divergence is exactly there.
  ErrorInjection inj;
  const NetId site = model().dp.find_net("ex.alu_add");
  inj.stuck.push_back({site, 0, false});
  TestCase tc = make_tc(
      "addi r1, r0, 1\n"   // alu_add = 1 in EX at cycle 2 -> stuck kills bit
      "sw 0x40(r0), r1\n");
  const DivergenceReport rep = diff_runs(model(), tc, 12, inj);
  ASSERT_TRUE(rep.diverged);
  EXPECT_EQ(rep.first_cycle, 2u);
  bool site_listed = false;
  for (const NetDivergence& d : rep.first_diffs)
    if (d.net == site) {
      site_listed = true;
      EXPECT_EQ(d.good & 1, 1u);
      EXPECT_EQ(d.bad & 1, 0u);
    }
  EXPECT_TRUE(site_listed);
}

TEST(DiffDebug, NoDivergenceWhenUnactivated) {
  ErrorInjection inj;
  inj.stuck.push_back({model().dp.find_net("ex.alu_add"), 0, false});
  // alu_add stays even everywhere: r0 + 0 in every default slot.
  TestCase tc = make_tc("nop\nnop\n");
  const DivergenceReport rep = diff_runs(model(), tc, 10, inj);
  EXPECT_FALSE(rep.diverged);
}

TEST(DiffDebug, SpreadGrowsDownstream) {
  ErrorInjection inj;
  inj.stuck.push_back({model().dp.find_net("ex.alu_add"), 0, true});
  TestCase tc = make_tc(
      "add r1, r0, r0\n"   // result 0 vs 1
      "add r2, r1, r1\n"
      "sw 0x40(r0), r2\n");
  const DivergenceReport rep = diff_runs(model(), tc, 10, inj);
  ASSERT_TRUE(rep.diverged);
  // The cone at the first cycle is small; later cycles implicate more nets.
  unsigned max_spread = 0;
  for (unsigned s : rep.spread) max_spread = std::max(max_spread, s);
  EXPECT_GT(max_spread, rep.spread[rep.first_cycle]);
  const std::string text = rep.to_string(model().dp);
  EXPECT_NE(text.find("first divergence at cycle"), std::string::npos);
  EXPECT_NE(text.find("ex.alu_add"), std::string::npos);
}

TEST(Coverage, CountsOpcodesAndHazards) {
  std::vector<TestCase> suite;
  suite.push_back(make_tc("add r1, r2, r3\nsub r4, r1, r2\n"));
  suite.push_back(make_tc(
      "lw r1, 0(r0)\n"
      "add r2, r1, r1\n"     // load-use stall
      "bnez r2, 1\n"
      "addi r3, r0, 9\n"     // squashed when taken
      "sw 0x40(r0), r2\n"));
  const SuiteCoverage cov = measure_coverage(model(), suite);
  EXPECT_EQ(cov.tests, 2u);
  EXPECT_TRUE(cov.opcode_used[static_cast<int>(Op::kAdd)]);
  EXPECT_TRUE(cov.opcode_used[static_cast<int>(Op::kLw)]);
  EXPECT_FALSE(cov.opcode_used[static_cast<int>(Op::kJal)]);
  EXPECT_GT(cov.stalls, 0u);
  EXPECT_GT(cov.bypasses_a, 0u);
  EXPECT_LT(cov.opcode_coverage(), 100.0);
  EXPECT_NE(cov.to_string().find("missing opcodes:"), std::string::npos);
}

TEST(Coverage, GeneratedSuiteShape) {
  // Coverage of a small generated campaign: the directed tests exercise a
  // meaningful slice of the ISA without being told to.
  const auto all = wrap(enumerate_bus_ssl(model().dp));
  std::vector<DesignError> some;
  for (std::size_t i = 0; i < all.size(); i += 12) some.push_back(all[i]);
  TestGenerator tg(model());
  const CampaignResult res = run_campaign(model().dp, some, tg.strategy());
  std::vector<TestCase> suite;
  for (const CampaignRow& row : res.rows)
    if (row.attempt.generated) suite.push_back(row.attempt.test);
  const SuiteCoverage cov = measure_coverage(model(), suite);
  EXPECT_GT(cov.opcodes_covered(), 5u);
  EXPECT_GT(cov.instructions, suite.size());  // more than 1 instr per test
}

}  // namespace
}  // namespace hltg
