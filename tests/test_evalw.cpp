// Width-generic bit-parallel evaluation: lane-for-lane equivalence of the
// evalw kernels (every compiled backend, every word count including
// block+tail shapes) with the 64-lane kernel, the scalar 2-valued path and
// the scalar 3-valued path - on random netlists and the real DLX
// controller - plus width-invariance of the batched error detector and the
// paired DPRELAX window capture.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/archstate.h"
#include "errors/bus_ssl.h"
#include "gatenet/eval3.h"
#include "gatenet/eval64.h"
#include "gatenet/evalw.h"
#include "isa/asm.h"
#include "sim/batch_sim.h"
#include "util/rng.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

/// Every backend this binary can actually run (scalar always; SIMD when
/// compiled in AND the CPU reports it).
std::vector<LaneBackend> available_backends() {
  std::vector<LaneBackend> out = {LaneBackend::kScalar};
  if (backend_available(LaneBackend::kAvx2)) out.push_back(LaneBackend::kAvx2);
  if (backend_available(LaneBackend::kAvx512))
    out.push_back(LaneBackend::kAvx512);
  return out;
}

/// Word counts exercising the exact-block and block+scalar-tail paths of
/// every backend (1; 3 = tail only for AVX2; 5 = one AVX2 block + tail;
/// 8 = one AVX-512 block / two AVX2 blocks).
const unsigned kWordCounts[] = {1, 2, 3, 4, 5, 8};

/// A random acyclic netlist covering every gate kind, with DFF state fed
/// from arbitrary combinational gates.
GateNet random_net(std::uint64_t seed, unsigned nvars, unsigned ngates,
                   unsigned ndffs) {
  Rng rng(seed);
  GateNet gn;
  std::vector<GateId> pool;
  for (unsigned i = 0; i < nvars; ++i) {
    Gate g;
    g.kind = GateKind::kVar;
    g.name = "v" + std::to_string(i);
    pool.push_back(gn.add_gate(g));
  }
  for (unsigned i = 0; i < ndffs; ++i) {
    Gate g;
    g.kind = GateKind::kDff;
    g.name = "q" + std::to_string(i);
    g.reset_value = rng.flip();
    g.fanin = {0};  // patched below once combinational gates exist
    pool.push_back(gn.add_gate(g));
  }
  const GateKind kinds[] = {GateKind::kAnd, GateKind::kOr,   GateKind::kNot,
                            GateKind::kXor, GateKind::kBuf,  GateKind::kConst0,
                            GateKind::kConst1};
  for (unsigned i = 0; i < ngates; ++i) {
    Gate g;
    g.kind = kinds[rng.below(i < 7 ? 7 : sizeof(kinds) / sizeof(kinds[0]))];
    g.name = "g" + std::to_string(i);
    unsigned nf = 0;
    if (g.kind == GateKind::kNot || g.kind == GateKind::kBuf) nf = 1;
    if (g.kind == GateKind::kAnd || g.kind == GateKind::kOr ||
        g.kind == GateKind::kXor)
      nf = 2 + static_cast<unsigned>(rng.below(3));  // up to 4-input gates
    for (unsigned j = 0; j < nf; ++j)
      g.fanin.push_back(pool[rng.below(pool.size())]);
    pool.push_back(gn.add_gate(g));
  }
  // D inputs may come from anywhere - DFF edges are not combinational.
  for (GateId g = 0; g < gn.num_gates(); ++g)
    if (gn.gate(g).kind == GateKind::kDff)
      gn.gate(g).fanin = {pool[rng.below(pool.size())]};
  gn.invalidate();
  return gn;
}

// ------------------------------------------------------------- 2-valued

/// Drives `gn` for several clocked cycles at `words` lane words under
/// backend `b`, checking every gate's every word against eval_cycle64 run
/// independently per word.
void check_2valued(const GateNet& gn, unsigned words, LaneBackend b,
                   std::uint64_t seed) {
  const std::vector<GateId> vars = gn.gates_of_kind(GateKind::kVar);
  Rng rng(seed);

  std::vector<std::uint64_t> vw;
  load_resetw(gn, vw, words);
  ASSERT_EQ(vw.size(), gn.num_gates() * words);
  std::vector<std::vector<std::uint64_t>> v64(words);
  for (auto& v : v64) load_reset64(gn, v);
  for (GateId g = 0; g < gn.num_gates(); ++g)
    for (unsigned w = 0; w < words; ++w)
      ASSERT_EQ(vw[g * words + w], v64[w][g]) << "reset, gate " << g;

  std::vector<std::uint64_t> scratch;
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (GateId g : vars)
      for (unsigned w = 0; w < words; ++w) {
        const std::uint64_t word = rng.next();
        vw[g * words + w] = word;
        v64[w][g] = word;
      }
    eval_cyclew(gn, vw.data(), words, b);
    for (unsigned w = 0; w < words; ++w) eval_cycle64(gn, v64[w]);
    for (GateId g = 0; g < gn.num_gates(); ++g)
      for (unsigned w = 0; w < words; ++w)
        ASSERT_EQ(vw[g * words + w], v64[w][g])
            << "cycle " << cycle << " gate " << gn.gate(g).name << " word "
            << w << " words=" << words << " backend=" << to_string(b);
    // Single-gate entry point agrees with the full sweep.
    for (GateId g = 0; g < gn.num_gates(); ++g) {
      std::vector<std::uint64_t> copy = vw;
      eval_gatew(gn, g, copy.data(), words, b);
      ASSERT_EQ(copy, vw) << "eval_gatew disturbed gate " << g;
    }
    clock_dffsw(gn, vw.data(), words, scratch);
    for (unsigned w = 0; w < words; ++w) {
      std::vector<std::uint64_t> next = v64[w];
      clock_dffs64(gn, v64[w], next);
      v64[w] = std::move(next);
    }
    for (GateId d : gn.dffs())
      for (unsigned w = 0; w < words; ++w)
        ASSERT_EQ(vw[d * words + w], v64[w][d]) << "clock, dff " << d;
  }
}

TEST(Evalw, MatchesEval64OnRandomNets) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    const GateNet gn = random_net(seed, 6, 40, 5);
    for (LaneBackend b : available_backends())
      for (unsigned words : kWordCounts) check_2valued(gn, words, b, seed);
  }
}

TEST(Evalw, MatchesEval64OnDlxController) {
  for (LaneBackend b : available_backends())
    for (unsigned words : {1u, 4u, 8u})
      check_2valued(model().ctrl, words, b, 0x515);
}

TEST(Evalw, LaneForLaneMatchesScalarOnDlx) {
  // Direct scalar cross-check (not via eval64): 256 lanes of the real
  // controller against 256 independent eval_cycle2 runs.
  const GateNet& gn = model().ctrl;
  const unsigned words = 4, lanes = 256;
  const std::vector<GateId> vars = gn.gates_of_kind(GateKind::kVar);
  Rng rng(7);
  std::vector<std::uint64_t> vw;
  load_resetw(gn, vw, words);
  std::vector<std::vector<bool>> v2(lanes);
  for (auto& v : v2) load_reset2(gn, v);
  std::vector<std::uint64_t> scratch;
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (GateId g : vars)
      for (unsigned w = 0; w < words; ++w) {
        const std::uint64_t word = rng.next();
        vw[g * words + w] = word;
        for (unsigned k = 0; k < 64; ++k)
          v2[64 * w + k][g] = (word >> k) & 1;
      }
    eval_cyclew(gn, vw.data(), words);
    for (auto& v : v2) eval_cycle2(gn, v);
    for (GateId g = 0; g < gn.num_gates(); ++g)
      for (unsigned l = 0; l < lanes; ++l)
        ASSERT_EQ((vw[g * words + (l >> 6)] >> (l & 63)) & 1,
                  static_cast<std::uint64_t>(v2[l][g]))
            << "cycle " << cycle << " lane " << l << " gate "
            << gn.gate(g).name;
    clock_dffsw(gn, vw.data(), words, scratch);
    for (auto& v : v2) {
      std::vector<bool> next = v;
      clock_dffs2(gn, v, next);
      v = std::move(next);
    }
  }
}

// ---------------------------------------------------------- 01X bit-pair

L3 lane3(const std::vector<std::uint64_t>& ones,
         const std::vector<std::uint64_t>& zeros, GateId g, unsigned words,
         unsigned lane) {
  const bool o = (ones[g * words + (lane >> 6)] >> (lane & 63)) & 1;
  const bool z = (zeros[g * words + (lane >> 6)] >> (lane & 63)) & 1;
  EXPECT_FALSE(o && z) << "both planes set, gate " << g << " lane " << lane;
  return o ? L3::T : (z ? L3::F : L3::X);
}

void set_lane3(std::vector<std::uint64_t>& ones,
               std::vector<std::uint64_t>& zeros, GateId g, unsigned words,
               unsigned lane, L3 v) {
  const std::uint64_t bit = std::uint64_t{1} << (lane & 63);
  ones[g * words + (lane >> 6)] &= ~bit;
  zeros[g * words + (lane >> 6)] &= ~bit;
  if (v == L3::T) ones[g * words + (lane >> 6)] |= bit;
  if (v == L3::F) zeros[g * words + (lane >> 6)] |= bit;
}

/// Every lane holds an independent random 0/1/X assignment of the kVar
/// gates; X propagation must match the scalar L3 evaluator lane-for-lane,
/// clocked across cycles.
void check_3valued(const GateNet& gn, unsigned words, LaneBackend b,
                   std::uint64_t seed) {
  const unsigned lanes = 64 * words;
  const std::vector<GateId> vars = gn.gates_of_kind(GateKind::kVar);
  Rng rng(seed);

  std::vector<std::uint64_t> ones, zeros;
  load_reset3w(gn, ones, zeros, words);
  std::vector<std::vector<L3>> ref(lanes);
  for (auto& v : ref) load_reset3(gn, v);
  for (GateId g = 0; g < gn.num_gates(); ++g)
    for (unsigned l = 0; l < lanes; ++l)
      ASSERT_EQ(lane3(ones, zeros, g, words, l), ref[l][g])
          << "reset, gate " << g << " lane " << l;

  std::vector<std::uint64_t> scratch;
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (GateId g : vars)
      for (unsigned l = 0; l < lanes; ++l) {
        const std::uint64_t r = rng.below(3);
        const L3 v = r == 0 ? L3::F : (r == 1 ? L3::T : L3::X);
        set_lane3(ones, zeros, g, words, l, v);
        ref[l][g] = v;
      }
    eval_cycle3w(gn, ones.data(), zeros.data(), words, b);
    for (auto& v : ref) eval_cycle3(gn, v);
    for (GateId g = 0; g < gn.num_gates(); ++g)
      for (unsigned l = 0; l < lanes; ++l)
        ASSERT_EQ(lane3(ones, zeros, g, words, l), ref[l][g])
            << "cycle " << cycle << " gate " << gn.gate(g).name << " lane "
            << l << " words=" << words << " backend=" << to_string(b);
    clock_dffs3w(gn, ones.data(), zeros.data(), words, scratch);
    for (auto& v : ref) {
      std::vector<L3> next = v;
      for (GateId d : gn.dffs()) next[d] = v[gn.gate(d).fanin[0]];
      v = std::move(next);
    }
  }
}

TEST(Evalw3, MatchesScalarEval3OnRandomNets) {
  for (std::uint64_t seed : {44u, 55u}) {
    const GateNet gn = random_net(seed, 6, 40, 5);
    for (LaneBackend b : available_backends())
      for (unsigned words : kWordCounts) check_3valued(gn, words, b, seed);
  }
}

TEST(Evalw3, MatchesScalarEval3OnDlxController) {
  for (LaneBackend b : available_backends())
    check_3valued(model().ctrl, 4, b, 0x3A);
}

// --------------------------------------------------- dispatch & resolution

TEST(EvalwDispatch, ScalarAlwaysAvailableAndBackendForIsAvailable) {
  EXPECT_TRUE(backend_available(LaneBackend::kScalar));
  for (unsigned words : {1u, 2u, 4u, 8u}) {
    const LaneBackend b = backend_for(words);
    EXPECT_TRUE(backend_available(b)) << to_string(b);
    // A backend is only picked when its vector covers a full block.
    if (b == LaneBackend::kAvx2) EXPECT_GE(words, 4u);
    if (b == LaneBackend::kAvx512) EXPECT_GE(words, 8u);
  }
  EXPECT_EQ(backend_for(1), LaneBackend::kScalar);
}

TEST(EvalwDispatch, ResolveLanesPrecedenceAndClamp) {
  // Explicit request wins and is clamped to [1, kMaxLanes].
  EXPECT_EQ(resolve_lanes(64), 64u);
  EXPECT_EQ(resolve_lanes(7), 7u);
  EXPECT_EQ(resolve_lanes(100000), kMaxLanes);

  // HLTG_LANES overrides the CPUID auto pick; explicit still wins.
  ::setenv("HLTG_LANES", "128", 1);
  EXPECT_EQ(resolve_lanes(), 128u);
  EXPECT_EQ(resolve_lanes(256), 256u);
  ::setenv("HLTG_LANES", "9999", 1);
  EXPECT_EQ(resolve_lanes(), kMaxLanes);
  ::unsetenv("HLTG_LANES");

  // Auto: some supported width, a multiple of 64.
  const unsigned autow = resolve_lanes();
  EXPECT_GE(autow, 64u);
  EXPECT_LE(autow, kMaxLanes);
  EXPECT_EQ(autow % 64, 0u);
}

// --------------------------------------------- width-invariant detection

TEST(BatchDetectWide, OutcomesIdenticalAcrossLaneWidths) {
  std::vector<DesignError> errs = wrap(enumerate_bus_ssl(model().dp));
  if (errs.size() > 90) errs.resize(90);
  std::vector<const DesignError*> ptrs;
  for (const DesignError& e : errs) ptrs.push_back(&e);

  const AsmResult r = assemble(
      "addi r1, r0, 3\n"
      "addi r2, r0, 5\n"
      "add r3, r1, r2\n"
      "sub r4, r3, r1\n"
      "xor r7, r3, r4\n"
      "sw 0x40(r0), r3\n"
      "sw 0x44(r0), r7\n"
      "lw r8, 0x40(r0)\n"
      "add r9, r8, r4\n"
      "sw 0x48(r0), r9\n");
  ASSERT_TRUE(r.ok());
  TestCase tc;
  tc.imem = encode_program(r.program);

  BatchDetectConfig scalar;
  scalar.force_scalar = true;
  const std::vector<bool> ref = detect_errors(model(), tc, ptrs, scalar);

  for (unsigned width : {64u, 100u, 256u, 512u}) {
    BatchSimStats stats;
    BatchDetectConfig cfg;
    cfg.max_lanes = width;
    cfg.stats = &stats;
    EXPECT_EQ(detect_errors(model(), tc, ptrs, cfg), ref) << width;
    EXPECT_EQ(stats.lane_width, width);
    EXPECT_GT(stats.batches, 0u);
    EXPECT_GT(stats.controller_passes, 0u);
    EXPECT_EQ(stats.lanes_evaluated, errs.size());
  }

  // Wider lanes buy fewer batches: 90 errors = 2 batches at 64 lanes,
  // 1 at 256+.
  BatchSimStats s64, s256;
  BatchDetectConfig c64, c256;
  c64.max_lanes = 64;
  c64.stats = &s64;
  c256.max_lanes = 256;
  c256.stats = &s256;
  detect_errors(model(), tc, ptrs, c64);
  detect_errors(model(), tc, ptrs, c256);
  EXPECT_GT(s64.batches, s256.batches);
  EXPECT_GT(s64.controller_passes, s256.controller_passes);
}

// ------------------------------------------------- paired window capture

TEST(CaptureWindowPair, ExactlyEqualsTwoScalarCaptures) {
  const NetId net = model().dp.find_net("ex.alu_add");
  ASSERT_NE(net, kNoNet);
  const DesignError err{BusSslError{net, 0, false}};

  const AsmResult r = assemble(
      "addi r1, r0, 3\n"
      "add r3, r1, r1\n"
      "sw 0x40(r0), r3\n"
      "add r4, r3, r1\n"
      "sw 0x44(r0), r4\n");
  ASSERT_TRUE(r.ok());
  TestCase tc;
  tc.imem = encode_program(r.program);
  const unsigned cycles = 14;

  const WindowCapture ref_good = capture_window(model(), tc, cycles);
  const WindowCapture ref_err =
      capture_window(model(), tc, cycles, err.injection());

  WindowCapture good, err_cap;
  capture_window_pair(model(), tc, cycles, err.injection(), &good, &err_cap);
  ASSERT_EQ(good.cycles(), ref_good.cycles());
  ASSERT_EQ(err_cap.cycles(), ref_err.cycles());
  EXPECT_EQ(good.nets, ref_good.nets);
  EXPECT_EQ(good.gates, ref_good.gates);
  EXPECT_EQ(err_cap.nets, ref_err.nets);
  EXPECT_EQ(err_cap.gates, ref_err.gates);
  // The pair must genuinely differ somewhere, or the check is vacuous.
  EXPECT_NE(err_cap.nets, good.nets);
}

}  // namespace
}  // namespace hltg
