// Tests of the interlock-only (no-bypass) pipeline variant.
#include <gtest/gtest.h>

#include "baseline/random_tg.h"
#include "gatenet/levelize.h"
#include "isa/asm.h"
#include "netlist/check.h"
#include "sim/cosim.h"

namespace hltg {
namespace {

const DlxModel& nb_model() {
  static const DlxModel m = build_dlx({.bypassing = false});
  return m;
}

const DlxModel& base_model() {
  static const DlxModel m = build_dlx();
  return m;
}

TestCase make_tc(const std::string& src) {
  const AsmResult r = assemble(src);
  EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  TestCase tc;
  tc.imem = encode_program(r.program);
  return tc;
}

TEST(NoBypass, ModelChecksClean) {
  const CheckResult r = check_netlist(nb_model().dp);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_NO_THROW(nb_model().ctrl.topo_order());
}

TEST(NoBypass, FewerTertiarySignals) {
  // Without the bypass network, the forwarding selects disappear from the
  // tertiary set - the instruction-interaction surface shrinks.
  const GateNetStats nb = analyze(nb_model().ctrl);
  const GateNetStats base = analyze(base_model().ctrl);
  EXPECT_LT(nb.num_tertiary, base.num_tertiary);
}

TEST(NoBypass, BackToBackDependencyStallsButStaysCorrect) {
  const TestCase tc = make_tc(
      "addi r1, r0, 3\n"
      "add r2, r1, r1\n"   // producer one ahead: 2-cycle interlock
      "add r3, r2, r2\n"
      "sw 0x40(r0), r3\n");
  const CosimResult r =
      cosim(nb_model(), tc, drain_cycles(tc.imem.size()));
  EXPECT_TRUE(r.match) << r.diff;
  ProcSim sim(nb_model(), tc);
  sim.run(drain_cycles(tc.imem.size()));
  EXPECT_GE(sim.stall_cycles(), 4u);  // two interlocks, two cycles each
}

TEST(NoBypass, BypassedMachineIsStrictlyFaster) {
  const TestCase tc = make_tc(
      "addi r1, r0, 1\n"
      "add r2, r1, r1\n"
      "add r3, r2, r2\n"
      "add r4, r3, r3\n"
      "sw 0x40(r0), r4\n");
  auto cycles_to_store = [&](const DlxModel& m) {
    ProcSim sim(m, tc);
    for (unsigned c = 0; c < 64 && sim.writes().empty(); ++c) sim.step();
    return sim.cycle();
  };
  EXPECT_GT(cycles_to_store(nb_model()), cycles_to_store(base_model()));
}

TEST(NoBypass, BranchAfterProducerInterlocks) {
  const TestCase tc = make_tc(
      "addi r1, r0, 0\n"
      "beqz r1, 2\n"       // depends on r1: interlock, then taken
      "addi r2, r0, 99\n"
      "addi r3, r0, 98\n"
      "sw 0x40(r0), r1\n");
  const CosimResult r = cosim(nb_model(), tc, drain_cycles(tc.imem.size()));
  EXPECT_TRUE(r.match) << r.diff;
}

TEST(NoBypass, LoadConsumerInterlocks) {
  TestCase tc = make_tc(
      "lw r1, 0x20(r0)\n"
      "sw 0x40(r0), r1\n");
  tc.dmem_init[0x20] = 0xABCD;
  const CosimResult r = cosim(nb_model(), tc, drain_cycles(tc.imem.size()));
  EXPECT_TRUE(r.match) << r.diff;
}

class NoBypassRandomCosim : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, NoBypassRandomCosim, ::testing::Range(0, 12));

TEST_P(NoBypassRandomCosim, MatchesSpec) {
  RandomTgConfig cfg;
  cfg.program_length = 36;
  cfg.reg_pool = 3;  // hazard-heavy
  cfg.p_load = 25;
  cfg.p_branch = 8;
  Rng rng(7100 + GetParam());
  const TestCase tc = random_test(rng, cfg);
  const CosimResult r = cosim(nb_model(), tc, drain_cycles(tc.imem.size()));
  EXPECT_TRUE(r.match) << r.diff;
}

TEST(NoBypass, CombinedWithPredictor) {
  // Both configuration axes compose.
  const DlxModel m = build_dlx({.branch_predictor = true, .bypassing = false});
  EXPECT_TRUE(check_netlist(m.dp).ok());
  RandomTgConfig cfg;
  cfg.program_length = 30;
  cfg.reg_pool = 3;
  for (int seed = 0; seed < 6; ++seed) {
    Rng rng(9300 + seed);
    const TestCase tc = random_test(rng, cfg);
    const CosimResult r = cosim(m, tc, drain_cycles(tc.imem.size()));
    EXPECT_TRUE(r.match) << r.diff;
  }
}

}  // namespace
}  // namespace hltg
