// Directed co-simulation tests: the pipelined implementation must match the
// ISA specification on programs that exercise every pipeline mechanism
// (bypassing, load-use stall, squash, write-through).
#include <gtest/gtest.h>

#include "isa/asm.h"
#include "sim/cosim.h"
#include "sim/trace.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

TestCase make_tc(const std::string& src) {
  const AsmResult r = assemble(src);
  EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  TestCase tc;
  tc.imem = encode_program(r.program);
  return tc;
}

void expect_match(const TestCase& tc) {
  const CosimResult r =
      cosim(model(), tc, drain_cycles(tc.imem.size()));
  EXPECT_TRUE(r.match) << r.diff;
}

TEST(ProcSim, StraightLineAlu) {
  expect_match(make_tc(
      "addi r1, r0, 7\n"
      "addi r2, r0, 5\n"
      "add r3, r1, r2\n"
      "sub r4, r3, r1\n"
      "xor r5, r4, r2\n"
      "sw 0x40(r0), r3\n"
      "sw 0x44(r0), r5\n"));
}

TEST(ProcSim, BypassExMemToEx) {
  // Back-to-back dependency: producer in MEM when consumer in EX.
  expect_match(make_tc(
      "addi r1, r0, 3\n"
      "add r2, r1, r1\n"   // needs r1 from EX/MEM
      "add r3, r2, r2\n"   // needs r2 from EX/MEM
      "sw 0x40(r0), r3\n"));
}

TEST(ProcSim, BypassMemWbToEx) {
  // Distance-2 dependency: producer in WB when consumer in EX.
  expect_match(make_tc(
      "addi r1, r0, 3\n"
      "nop\n"
      "add r2, r1, r1\n"
      "sw 0x40(r0), r2\n"));
}

TEST(ProcSim, WriteThroughDistance3) {
  expect_match(make_tc(
      "addi r1, r0, 9\n"
      "nop\n"
      "nop\n"
      "add r2, r1, r1\n"  // reads in ID while producer writes in WB
      "sw 0x40(r0), r2\n"));
}

TEST(ProcSim, LoadUseStall) {
  TestCase tc = make_tc(
      "lw r1, 0x20(r0)\n"
      "add r2, r1, r1\n"  // load-use: must stall one cycle
      "sw 0x40(r0), r2\n");
  tc.dmem_init[0x20] = 21;
  expect_match(tc);
  ProcSim sim(model(), tc);
  sim.run(drain_cycles(tc.imem.size()));
  EXPECT_GE(sim.stall_cycles(), 1u);
  EXPECT_EQ(sim.reg(2), 42u);
}

TEST(ProcSim, LoadUseIntoStoreDatum) {
  TestCase tc = make_tc(
      "lw r1, 0x20(r0)\n"
      "sw 0x40(r0), r1\n");  // store datum depends on the load
  tc.dmem_init[0x20] = 0xDEADBEEF;
  expect_match(tc);
}

TEST(ProcSim, BranchTakenSquashes) {
  TestCase tc = make_tc(
      "addi r1, r0, 1\n"
      "bnez r1, 2\n"
      "addi r2, r0, 99\n"  // squashed
      "addi r3, r0, 98\n"  // squashed
      "addi r4, r0, 4\n");
  expect_match(tc);
  ProcSim sim(model(), tc);
  sim.run(drain_cycles(tc.imem.size()));
  EXPECT_GE(sim.squashes(), 1u);
  EXPECT_EQ(sim.reg(2), 0u);
  EXPECT_EQ(sim.reg(3), 0u);
  EXPECT_EQ(sim.reg(4), 4u);
}

TEST(ProcSim, BranchNotTakenNoPenalty) {
  TestCase tc = make_tc(
      "beqz r1, 2\n"
      "addi r2, r0, 1\n"
      "addi r3, r0, 2\n");
  tc.rf_init[1] = 5;  // branch not taken
  expect_match(tc);
  ProcSim sim(model(), tc);
  sim.run(16);
  EXPECT_EQ(sim.squashes(), 0u);
}

TEST(ProcSim, BranchConditionUsesBypassedValue) {
  // The branch condition in EX must see the freshly computed r1.
  expect_match(make_tc(
      "addi r1, r0, 0\n"
      "beqz r1, 1\n"       // taken: r1 == 0 via bypass
      "addi r2, r0, 99\n"  // squashed
      "addi r3, r0, 3\n"
      "sw 0x40(r0), r3\n"));
}

TEST(ProcSim, JumpAndLinkRoundTrip) {
  expect_match(make_tc(
      "jal 1\n"
      "addi r1, r0, 11\n"
      "addi r2, r0, 22\n"
      "sw 0x40(r0), r31\n"));
}

TEST(ProcSim, JrTargetBypassed) {
  TestCase tc = make_tc(
      "addi r1, r0, 16\n"
      "jr r1\n"            // to pc 16 with bypassed target
      "addi r2, r0, 99\n"  // squashed
      "addi r3, r0, 98\n"  // squashed (pc 12)
      "addi r4, r0, 44\n"  // pc 16: landing point
      "sw 0x40(r0), r4\n");
  expect_match(tc);
}

TEST(ProcSim, ByteHalfMemoryOps) {
  TestCase tc = make_tc(
      "lhi r1, 0x8765\n"
      "ori r1, r1, 0x4321\n"
      "sw 0x100(r0), r1\n"
      "lb r2, 0x103(r0)\n"
      "lbu r3, 0x103(r0)\n"
      "lh r4, 0x102(r0)\n"
      "lhu r5, 0x100(r0)\n"
      "sb 0x110(r0), r1\n"
      "sh 0x116(r0), r1\n"
      "lw r6, 0x110(r0)\n"
      "lw r7, 0x114(r0)\n"
      "sw 0x120(r0), r2\n"
      "sw 0x124(r0), r4\n");
  expect_match(tc);
}

TEST(ProcSim, R0WritesIgnored) {
  TestCase tc = make_tc(
      "addi r0, r0, 55\n"
      "add r1, r0, r0\n"
      "sw 0x40(r0), r1\n");
  expect_match(tc);
  ProcSim sim(model(), tc);
  sim.run(16);
  EXPECT_EQ(sim.reg(0), 0u);
  EXPECT_EQ(sim.reg(1), 0u);
}

TEST(ProcSim, InitialRfAndMemory) {
  TestCase tc = make_tc(
      "lw r3, 0(r1)\n"
      "add r4, r3, r2\n"
      "sw 4(r1), r4\n");
  tc.rf_init[1] = 0x80;
  tc.rf_init[2] = 5;
  tc.dmem_init[0x80] = 100;
  expect_match(tc);
}

TEST(ProcSim, SplitPhaseSteppingMatchesStep) {
  TestCase tc = make_tc("addi r1, r0, 3\nadd r2, r1, r1\nsw 0(r0), r2\n");
  ProcSim a(model(), tc), b(model(), tc);
  for (int i = 0; i < 12; ++i) {
    a.step();
    b.begin_cycle();
    b.end_cycle();
  }
  EXPECT_TRUE(a.arch_trace().diff(b.arch_trace()).empty());
}

TEST(PipelineTrace, ShowsStallAndSquash) {
  TestCase tc = make_tc(
      "lw r1, 0x20(r0)\n"
      "add r2, r1, r1\n"
      "sw 0x40(r0), r2\n");
  const std::string diagram =
      trace_pipeline(model(), tc, 12);
  EXPECT_NE(diagram.find("F"), std::string::npos);
  EXPECT_NE(diagram.find("W"), std::string::npos);
  // The dependent add is held in ID for one extra cycle -> a "DD" run.
  EXPECT_NE(diagram.find("DD"), std::string::npos);
}

}  // namespace
}  // namespace hltg
