// Tests of the unrolled controller window and the CTRLJUST PODEM search.
#include <gtest/gtest.h>

#include "core/ctrljust.h"
#include "core/unroll.h"
#include "dlx/dlx.h"
#include "isa/encode.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

GateId ctrl_bit(const char* net_name, unsigned bit = 0) {
  const NetId n = model().dp.find_net(net_name);
  EXPECT_NE(n, kNoNet) << net_name;
  return model().find_ctrl(n)->bits[bit];
}

TEST(Window, ResetStateImplied) {
  ControllerWindow w(model().ctrl, 6);
  // With nothing assigned, all CPR outputs are 0 at cycle 0 and the derived
  // write enables stay 0 through the pipeline-fill cycles.
  EXPECT_EQ(w.value(ctrl_bit("ctrl.rf_we"), 0), L3::F);
  EXPECT_EQ(w.value(ctrl_bit("ctrl.rf_we"), 3), L3::F);
  EXPECT_EQ(w.value(ctrl_bit("ctrl.mem_we"), 2), L3::F);
  // By cycle 4 a fetched instruction could reach WB: value depends on the
  // unassigned CPIs, hence unknown.
  EXPECT_EQ(w.value(ctrl_bit("ctrl.rf_we"), 4), L3::X);
}

TEST(Window, CpiAssignmentPropagatesDownPipe) {
  ControllerWindow w(model().ctrl, 8);
  // Assign the full opcode/func of ADD at cycle 0.
  const unsigned opc = opcode_of(Op::kAdd), fn = func_of(Op::kAdd);
  for (int i = 0; i < 6; ++i) {
    w.assign(model().cpi[i], 0, l3_from_bool((opc >> i) & 1));
    w.assign(model().cpi[6 + i], 0, l3_from_bool((fn >> i) & 1));
  }
  w.imply();
  // ADD reaches EX at cycle 2 with alu_sel = 0 and use_imm = 0.
  EXPECT_EQ(w.value(ctrl_bit("ctrl.use_imm"), 2), L3::F);
  for (unsigned b = 0; b < kAluSelW; ++b)
    EXPECT_EQ(w.value(ctrl_bit("ctrl.alu_sel", b), 2), L3::F) << b;
  // And writes back at cycle 4.
  EXPECT_EQ(w.value(ctrl_bit("ctrl.rf_we"), 4), L3::T);
  EXPECT_EQ(w.value(ctrl_bit("ctrl.mem_we"), 3), L3::F);
}

TEST(Window, ClearRestoresUnknown) {
  ControllerWindow w(model().ctrl, 4);
  w.assign(model().cpi[0], 0, L3::T);
  w.imply();
  w.clear();
  EXPECT_EQ(w.assignment(model().cpi[0], 0), L3::X);
}

TEST(CtrlJust, JustifiesStoreWriteEnable) {
  CtrlJust cj(model().ctrl, 10);
  // mem_we at cycle 3 <=> a store fetched at cycle 0.
  const CtrlJustResult r = cj.solve({{ctrl_bit("ctrl.mem_we"), 3, true}});
  ASSERT_EQ(r.status, TgStatus::kSuccess);
  EXPECT_FALSE(r.cpi_assignments.empty());
  // Decode the assigned instruction word at cycle 0: it must be a store.
  std::uint32_t word = 0;
  for (auto [g, t, v] : r.cpi_assignments) {
    if (t != 0 || !v) continue;
    for (int i = 0; i < 12; ++i)
      if (model().cpi[i] == g)
        word |= 1u << (i < 6 ? 26 + i : i - 6);
  }
  EXPECT_TRUE(is_store(decode(word).op)) << to_string(decode(word));
}

TEST(CtrlJust, RejectsPrefillObjective) {
  CtrlJust cj(model().ctrl, 10);
  // rf_we at cycle 2 is impossible: WB is only reachable at cycle >= 4.
  const CtrlJustResult r = cj.solve({{ctrl_bit("ctrl.rf_we"), 2, true}});
  EXPECT_EQ(r.status, TgStatus::kFailure);
}

TEST(CtrlJust, JustifiesAluSelect) {
  for (AluSel sel : {AluSel::kSub, AluSel::kXor, AluSel::kSrl}) {
    CtrlJust cj(model().ctrl, 10);
    std::vector<CtrlObjective> objs;
    for (unsigned b = 0; b < kAluSelW; ++b)
      objs.push_back({ctrl_bit("ctrl.alu_sel", b), 4,
                      ((static_cast<unsigned>(sel) >> b) & 1) != 0});
    const CtrlJustResult r = cj.solve(objs);
    EXPECT_EQ(r.status, TgStatus::kSuccess)
        << static_cast<unsigned>(sel);
  }
}

TEST(CtrlJust, UnencodableAluSelectFails) {
  // alu_sel = 15 corresponds to no instruction (one-hot decode).
  CtrlJust cj(model().ctrl, 10);
  std::vector<CtrlObjective> objs;
  for (unsigned b = 0; b < kAluSelW; ++b)
    objs.push_back({ctrl_bit("ctrl.alu_sel", b), 4, true});
  const CtrlJustResult r = cj.solve(objs);
  EXPECT_EQ(r.status, TgStatus::kFailure);
}

TEST(CtrlJust, ConflictingObjectivesFail) {
  // A store (mem_we@3) cannot simultaneously write the register file from
  // the same slot (rf_we@4 with the same fetch cycle). Note rf_we@4 refers
  // to the instruction fetched at 0, which must then be both store and
  // ALU-writeback: impossible.
  CtrlJust cj(model().ctrl, 10);
  const CtrlJustResult r = cj.solve({{ctrl_bit("ctrl.mem_we"), 3, true},
                                     {ctrl_bit("ctrl.rf_we"), 4, true}});
  EXPECT_EQ(r.status, TgStatus::kFailure);
}

TEST(CtrlJust, IndependentSlotsCompose) {
  // Store fetched at 0 (mem_we@3) and writeback fetched at 1 (rf_we@5)
  // coexist in different pipeframes.
  CtrlJust cj(model().ctrl, 10);
  const CtrlJustResult r = cj.solve({{ctrl_bit("ctrl.mem_we"), 3, true},
                                     {ctrl_bit("ctrl.rf_we"), 5, true}});
  EXPECT_EQ(r.status, TgStatus::kSuccess);
}

TEST(CtrlJust, StsDecisionsReported) {
  // Forcing the bypass select requires deciding STS compare variables.
  const NetId fwd_a = model().dp.find_net("ctrl.fwd_a");
  const GateId bit0 = model().find_ctrl(fwd_a)->bits[0];
  CtrlJust cj(model().ctrl, 10);
  const CtrlJustResult r = cj.solve({{bit0, 4, true}});
  ASSERT_EQ(r.status, TgStatus::kSuccess);
  EXPECT_FALSE(r.sts_assignments.empty());
}

TEST(CtrlJust, DecisionVariablesArePipeframeOnly) {
  // Every decision CTRLJUST makes is on a CPI or STS variable - never on a
  // state bit. (This is the Sec.-IV property.)
  CtrlJust cj(model().ctrl, 10);
  const CtrlJustResult r = cj.solve({{ctrl_bit("ctrl.mem_we"), 4, true}});
  ASSERT_EQ(r.status, TgStatus::kSuccess);
  for (auto [g, t, v] : r.cpi_assignments)
    EXPECT_EQ(model().ctrl.gate(g).role, SigRole::kCPI);
  for (auto [g, t, v] : r.sts_assignments)
    EXPECT_EQ(model().ctrl.gate(g).role, SigRole::kSts);
}

TEST(CtrlJust, TraceRecordsDecisions) {
  CtrlJustConfig cfg;
  cfg.record_trace = true;
  cfg.use_engine = false;  // legacy counts every decide as a decision
  CtrlJust cj(model().ctrl, 10, cfg);
  const CtrlJustResult r = cj.solve({{ctrl_bit("ctrl.mem_we"), 3, true}});
  ASSERT_EQ(r.status, TgStatus::kSuccess);
  ASSERT_FALSE(r.trace.empty());
  unsigned decides = 0;
  for (const SearchEvent& e : r.trace)
    decides += e.kind == SearchEvent::kDecide;
  EXPECT_EQ(decides, r.stats.decisions);
  const std::string text = render_trace(model().ctrl, r.trace);
  EXPECT_NE(text.find("decide"), std::string::npos);
  EXPECT_NE(text.find("cpi."), std::string::npos);
}

TEST(CtrlJust, TraceRecordsDecisionsEngine) {
  // With the deduction engine, an engine-forced assignment still appears as
  // a decide event in the trace (it opens a level) but is counted as an
  // implication, not a decision - so decides >= decisions.
  CtrlJustConfig cfg;
  cfg.record_trace = true;
  CtrlJust cj(model().ctrl, 10, cfg);
  const CtrlJustResult r = cj.solve({{ctrl_bit("ctrl.mem_we"), 3, true}});
  ASSERT_EQ(r.status, TgStatus::kSuccess);
  unsigned decides = 0;
  for (const SearchEvent& e : r.trace)
    decides += e.kind == SearchEvent::kDecide;
  EXPECT_GE(decides, r.stats.decisions);
}

TEST(CtrlJust, TraceOffByDefault) {
  CtrlJust cj(model().ctrl, 10);
  const CtrlJustResult r = cj.solve({{ctrl_bit("ctrl.mem_we"), 3, true}});
  EXPECT_TRUE(r.trace.empty());
}

TEST(CtrlJust, BudgetAbortsGracefully) {
  CtrlJustConfig cfg;
  cfg.max_decisions = 1;
  CtrlJust cj(model().ctrl, 10, cfg);
  const CtrlJustResult r = cj.solve({{ctrl_bit("ctrl.mem_we"), 3, true},
                                     {ctrl_bit("ctrl.rf_we"), 5, true}});
  EXPECT_EQ(r.status, TgStatus::kFailure);
}

}  // namespace
}  // namespace hltg
