// DPRELAX plan seeds and memo replay across warm starts.
//
// The derived seed must be a pure function of the plan's identity (site,
// shape, activation cycle, window) and never of trial position - a warm
// start whose imported deductions skip earlier plans must replay the same
// seeds, or the relax memo's byte-identical-replay contract silently
// breaks. The window must be an input: DpRelax::solve is window-dependent
// at the margin (relax_plan_seed doc in core/tg.h), so memo entries may
// never transfer between windows.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/tg.h"
#include "dlx/dlx.h"
#include "errors/bus_ssl.h"
#include "solver/store.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

// ------------------------------------------------------------- the seed

TEST(RelaxPlanSeed, PureFunctionOfPlanIdentity) {
  const std::uint64_t a = relax_plan_seed(1, 42, "alu:x,y", 3, 14);
  // Same inputs, any call order, any number of interleaved calls: same seed.
  (void)relax_plan_seed(9, 7, "other", 0, 20);
  EXPECT_EQ(relax_plan_seed(1, 42, "alu:x,y", 3, 14), a);

  // Every identity component separates seeds.
  EXPECT_NE(relax_plan_seed(2, 42, "alu:x,y", 3, 14), a);  // base seed
  EXPECT_NE(relax_plan_seed(1, 43, "alu:x,y", 3, 14), a);  // site
  EXPECT_NE(relax_plan_seed(1, 42, "alu:x,z", 3, 14), a);  // shape
  EXPECT_NE(relax_plan_seed(1, 42, "alu:x,y", 4, 14), a);  // activation
  EXPECT_NE(relax_plan_seed(1, 42, "alu:x,y", 3, 20), a);  // window
}

TEST(RelaxPlanSeed, WindowsNeverCollideOverPlanSpace) {
  // A base-window seed must never equal the retry-window seed of any plan
  // in a sizable sample: cross-window memo transfer is unsound.
  std::set<std::uint64_t> win14, win20;
  for (NetId site = 0; site < 64; ++site)
    for (unsigned cyc = 0; cyc < 4; ++cyc) {
      const std::string shape = "m" + std::to_string(site % 5);
      win14.insert(relax_plan_seed(0xABCD, site, shape, cyc, 14));
      win20.insert(relax_plan_seed(0xABCD, site, shape, cyc, 20));
    }
  for (std::uint64_t s : win14) EXPECT_EQ(win20.count(s), 0u) << s;
}

// --------------------------------------------------- warm-start replay

TEST(RelaxReplay, WarmStartAnswersRelaxFromTheImportedMemo) {
  // Generate for a slice of errors with a campaign-scope context, export
  // it, then regenerate with the snapshot imported into a fresh generator:
  // the emitted tests must be byte-identical while DPRELAX solves are
  // answered from the memo instead of re-running relaxation sweeps.
  std::vector<DesignError> errors = wrap(enumerate_bus_ssl(model().dp));
  if (errors.size() > 8) errors.resize(8);

  TgConfig cfg;
  cfg.solver.scope = SolverScope::kCampaign;

  struct RunOut {
    std::vector<TestCase> tests;
    std::vector<TgStatus> statuses;
    std::uint64_t relax_hits = 0;
    std::uint64_t relax_iterations = 0;
    std::uint64_t pair_captures = 0;
  };
  auto run = [&](const DedSnapshot* warm, DedSnapshot* out_snap) {
    TestGenerator tg(model(), cfg);
    if (warm) import_context(*warm, &tg.solver_context());
    RunOut out;
    for (const DesignError& e : errors) {
      const TgResult r = tg.generate(e);
      out.tests.push_back(r.test);
      out.statuses.push_back(r.status);
      out.relax_hits += r.stats.relax_hits;
      out.relax_iterations += r.stats.relax_iterations;
      out.pair_captures += r.stats.relax_pair_captures;
    }
    if (out_snap) *out_snap = export_context(tg.solver_context());
    return out;
  };

  DedSnapshot snap;
  const RunOut cold = run(nullptr, &snap);
  ASSERT_FALSE(snap.relax.empty()) << "cold run recorded no relax memos";

  const RunOut warm = run(&snap, nullptr);
  ASSERT_EQ(warm.statuses, cold.statuses);
  for (std::size_t i = 0; i < errors.size(); ++i) {
    EXPECT_EQ(warm.tests[i].imem, cold.tests[i].imem) << i;
    EXPECT_EQ(warm.tests[i].rf_init, cold.tests[i].rf_init) << i;
    EXPECT_EQ(warm.tests[i].dmem_init, cold.tests[i].dmem_init) << i;
  }
  // The warmth is specifically the relax memo.
  EXPECT_GT(warm.relax_hits, cold.relax_hits);
  // Replayed results carry the recorded iteration and pair-capture counts,
  // so the Table-1 stats stay byte-identical across cold and warm runs -
  // the memo accelerates, it never changes what is reported.
  EXPECT_EQ(warm.relax_iterations, cold.relax_iterations);
  EXPECT_EQ(warm.pair_captures, cold.pair_captures);
}

TEST(RelaxReplay, MemoEntriesIndependentOfPriorErrorEffortHistory) {
  // The ROADMAP carry-over this test closes out: the derived relax seed
  // once folded in `plans_tried`, so an error's relaxation sweep (and
  // therefore its recorded memo entries) depended on how much effort
  // earlier errors had burned. Generate one error with a FRESH campaign-
  // scope context, then the same error at the END of a multi-error
  // campaign: the emitted test must be byte-identical, and every memo
  // entry the fresh run recorded must appear in the history run with an
  // identical solution - proof the memo key and its payload are pure
  // functions of the subproblem, never of effort history.
  std::vector<DesignError> errors = wrap(enumerate_bus_ssl(model().dp));
  ASSERT_GE(errors.size(), 6u);
  errors.resize(6);
  const DesignError& last = errors.back();

  TgConfig cfg;
  cfg.solver.scope = SolverScope::kCampaign;

  TestGenerator fresh_tg(model(), cfg);
  const TgResult fresh = fresh_tg.generate(last);
  const DedSnapshot fresh_snap = export_context(fresh_tg.solver_context());
  ASSERT_FALSE(fresh_snap.relax.empty())
      << "single-error run recorded no relax memos";

  TestGenerator hist_tg(model(), cfg);
  TgResult hist;  // the loop ends on `last`: its result after full history
  for (const DesignError& e : errors) hist = hist_tg.generate(e);
  const DedSnapshot hist_snap = export_context(hist_tg.solver_context());

  EXPECT_EQ(hist.status, fresh.status);
  EXPECT_EQ(hist.test.imem, fresh.test.imem);
  EXPECT_EQ(hist.test.rf_init, fresh.test.rf_init);
  EXPECT_EQ(hist.test.dmem_init, fresh.test.dmem_init);

  for (const RelaxCache::Exported& want : fresh_snap.relax) {
    bool found = false;
    for (const RelaxCache::Exported& got : hist_snap.relax) {
      if (!(got.key == want.key)) continue;
      found = true;
      EXPECT_EQ(got.result.status, want.result.status);
      EXPECT_EQ(got.vars.imem, want.vars.imem);
      EXPECT_EQ(got.vars.imem_fixed, want.vars.imem_fixed);
      EXPECT_EQ(got.vars.rf_init, want.vars.rf_init);
      EXPECT_EQ(got.vars.mem_init, want.vars.mem_init);
      break;
    }
    EXPECT_TRUE(found) << "memo key recorded by the fresh run is absent "
                          "after a campaign with prior-error history";
  }
}

TEST(RelaxReplay, SnapshotSurvivesSerializationWithPairCaptures) {
  // DpRelaxResult grew pair_captures (store format v2): a relax memo round-
  // tripped through the byte format must replay identically, counter
  // included - a silent drop here would skew the warm-start Table-1 stats.
  RelaxCache::Exported e;
  e.key.words = {0x1111, 0x2222, 0x3333};
  e.key.site_words = 1;
  e.result.status = TgStatus::kSuccess;
  e.result.iterations = 5;
  e.result.pair_captures = 3;
  e.result.note = "fabricated";
  e.vars.imem = {0xDEADBEEFu, 0x12345678u};
  e.vars.imem_fixed = {0xFFFF0000u, 0x0000FFFFu};
  e.vars.rf_init[7] = 42;
  e.vars.mem_init[0x40] = 99;
  DedSnapshot snap;
  snap.relax.push_back(e);

  const std::string path = "/tmp/hltg_relax_replay_store.bin";
  std::string why;
  ASSERT_TRUE(save_ded_store(path, DedStoreMeta{}, snap, &why)) << why;
  const DedStoreLoad load = load_ded_store(path, 0, 0);
  ASSERT_TRUE(load.ok) << load.note;
  ASSERT_EQ(load.snapshot.relax.size(), 1u);
  const RelaxCache::Exported& got = load.snapshot.relax[0];
  EXPECT_EQ(got.key, e.key);
  EXPECT_EQ(got.result.status, e.result.status);
  EXPECT_EQ(got.result.iterations, e.result.iterations);
  EXPECT_EQ(got.result.pair_captures, e.result.pair_captures);
  EXPECT_EQ(got.vars.imem, e.vars.imem);
  EXPECT_EQ(got.vars.imem_fixed, e.vars.imem_fixed);
  EXPECT_EQ(got.vars.rf_init, e.vars.rf_init);
  EXPECT_EQ(got.vars.mem_init, e.vars.mem_init);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hltg
