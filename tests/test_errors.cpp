#include <gtest/gtest.h>

#include "errors/campaign.h"
#include "errors/inject.h"
#include "isa/asm.h"
#include "sim/cosim.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

TestCase make_tc(const std::string& src) {
  const AsmResult r = assemble(src);
  EXPECT_TRUE(r.ok());
  TestCase tc;
  tc.imem = encode_program(r.program);
  return tc;
}

TEST(BusSsl, EnumerationCoversTargetStages) {
  const auto errs = enumerate_bus_ssl(model().dp);
  EXPECT_GT(errs.size(), 150u);
  for (const auto& e : errs) {
    const Stage s = model().dp.net(e.net).stage;
    EXPECT_TRUE(s == Stage::kEX || s == Stage::kMEM || s == Stage::kWB);
    EXPECT_LT(e.bit, model().dp.net(e.net).width);
  }
}

TEST(BusSsl, SkipsConstantsAndCtrl) {
  const auto errs = enumerate_bus_ssl(model().dp);
  for (const auto& e : errs) {
    const Net& n = model().dp.net(e.net);
    EXPECT_NE(n.role, NetRole::kCtrl) << n.name;
    if (n.driver != kNoMod) {
      EXPECT_NE(model().dp.module(n.driver).kind, ModuleKind::kConst)
          << n.name;
    }
  }
}

TEST(BusSsl, BitsDedupedOnNarrowBuses) {
  BusSslConfig cfg;
  cfg.bits = {0, 31};
  const auto errs = enumerate_bus_ssl(model().dp, cfg);
  // For a 1-bit STS net both requested bits clamp to 0 and must dedupe.
  for (const auto& a : errs)
    for (const auto& b : errs)
      if (&a != &b) {
        EXPECT_FALSE(a.net == b.net && a.bit == b.bit &&
                     a.stuck_value == b.stuck_value);
      }
}

TEST(BusSsl, AluStuckLineIsDetectedByDirectedTest) {
  // Stick bit 0 of the ALU adder output at 0 and run a test computing an
  // odd sum stored to memory: detection is guaranteed.
  const NetId add_out = model().dp.find_net("ex.alu_add");
  ASSERT_NE(add_out, kNoNet);
  BusSslError e{add_out, 0, false};
  TestCase tc = make_tc(
      "addi r1, r0, 2\n"
      "addi r2, r0, 1\n"
      "add r3, r1, r2\n"   // 3: bit 0 set
      "sw 0x40(r0), r3\n");
  EXPECT_TRUE(detects(model(), tc, e.injection()));
}

TEST(BusSsl, StuckAtCorrectValueNotDetected) {
  const NetId add_out = model().dp.find_net("ex.alu_add");
  BusSslError e{add_out, 0, false};
  TestCase tc = make_tc(
      "addi r1, r0, 2\n"
      "add r3, r1, r1\n"   // 4: bit 0 already 0 -> no activation
      "sw 0x40(r0), r3\n");
  EXPECT_FALSE(detects(model(), tc, e.injection()));
}

TEST(Mse, SubForAddDetected) {
  const ModId add_mod = model().dp.find_module("ex.alu_add");
  ASSERT_NE(add_mod, kNoMod);
  ModuleSubstitutionError e{add_mod, ModuleKind::kSub};
  TestCase tc = make_tc(
      "addi r1, r0, 5\n"
      "addi r2, r0, 3\n"
      "add r3, r1, r2\n"  // 8 vs 2
      "sw 0x40(r0), r3\n");
  EXPECT_TRUE(detects(model(), tc, e.injection()));
}

TEST(Mse, CandidatesStayInClass) {
  for (ModuleKind k : substitution_candidates(ModuleKind::kAdd))
    EXPECT_NE(k, ModuleKind::kAdd);
  EXPECT_TRUE(substitution_candidates(ModuleKind::kMux).empty());
  EXPECT_FALSE(substitution_candidates(ModuleKind::kLt).empty());
}

TEST(Boe, SwappedSubOperandsDetected) {
  const ModId sub_mod = model().dp.find_module("ex.alu_sub");
  ASSERT_NE(sub_mod, kNoMod);
  BusOrderError e{sub_mod};
  TestCase tc = make_tc(
      "addi r1, r0, 9\n"
      "addi r2, r0, 4\n"
      "sub r3, r1, r2\n"  // 5 vs -5
      "sw 0x40(r0), r3\n");
  EXPECT_TRUE(detects(model(), tc, e.injection()));
}

TEST(Boe, EnumeratesOnlyOrderSensitive) {
  const auto errs = enumerate_boe(model().dp, {Stage::kEX});
  EXPECT_FALSE(errs.empty());
  for (const auto& e : errs)
    EXPECT_TRUE(is_order_sensitive(model().dp.module(e.module).kind));
}

TEST(DesignError, WrapperDispatch) {
  const auto ssl = enumerate_bus_ssl(model().dp);
  const auto wrapped = wrap(ssl);
  ASSERT_EQ(wrapped.size(), ssl.size());
  EXPECT_EQ(wrapped[0].model_name(), "bus-SSL");
  EXPECT_EQ(wrapped[0].site_net(model().dp), ssl[0].net);
  EXPECT_FALSE(wrapped[0].describe(model().dp).empty());
}

TEST(Campaign, AggregatesStats) {
  // Tiny campaign with a trivial strategy that "detects" every second error.
  std::vector<DesignError> errs =
      wrap(std::vector<BusSslError>{{0, 0, false}, {1, 0, false},
                                    {2, 0, false}, {3, 0, false}});
  int k = 0;
  const CampaignResult r = run_campaign(
      model().dp, errs, [&k](const DesignError&) {
        ErrorAttempt a;
        a.generated = a.sim_confirmed = (k++ % 2 == 0);
        a.test_length = 6;
        a.backtracks = 1;
        return a;
      });
  EXPECT_EQ(r.stats.total, 4u);
  EXPECT_EQ(r.stats.detected, 2u);
  EXPECT_EQ(r.stats.aborted, 2u);
  EXPECT_DOUBLE_EQ(r.stats.avg_test_length, 6.0);
  EXPECT_EQ(r.stats.backtracks, 2u);
  const std::string t = r.stats.table1("Table 1");
  EXPECT_NE(t.find("No. of errors detected"), std::string::npos);
}

}  // namespace
}  // namespace hltg
