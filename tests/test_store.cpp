// Persisted deduction store (solver/store) and cross-worker nogood board
// (solver/nogood_board): round-trips, provenance-gated loads, tolerant
// reading of corrupt/truncated images with quarantine, deterministic
// merging, and warm-start outcome neutrality through the real generator.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "core/tg.h"
#include "errors/bus_ssl.h"
#include "solver/nogood_board.h"
#include "solver/solver.h"
#include "solver/store.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

std::string temp_store(const char* tag) {
  return testing::TempDir() + "hltg_store_" + tag + ".ded";
}

/// A context populated with one of everything persistable.
SolverContext populated_context() {
  SolverContext ctx;
  ctx.nogoods.learn({{3, 1, true}, {7, 2, false}});
  ctx.nogoods.learn({{12, 0, true}});
  JustCacheEntry je;
  je.success = true;
  je.sts_assignments = {{GateId{5}, 1u, true}};
  je.cpi_assignments = {{GateId{9}, 0u, false}, {GateId{2}, 3u, true}};
  ctx.cache.insert({{4, 2, true}, {6, 2, false}}, je);
  RelaxCache::Key rk;
  rk.words = {11, 22, 33, 44};
  rk.site_words = 1;
  DpRelaxResult rr;
  rr.status = TgStatus::kSuccess;
  rr.iterations = 9;
  rr.note = "memo";
  RelaxVars rv;
  rv.imem = {0x20010005u, 0x00221820u};
  rv.imem_fixed = {1};
  rv.rf_init[4] = 0xdeadbeefu;
  rv.mem_init[64] = 7;
  ctx.relax.store(rk, rr, rv);
  return ctx;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ------------------------------------------------------------- round trip

TEST(DedStore, RoundTripsAContext) {
  const SolverContext ctx = populated_context();
  const DedSnapshot snap = export_context(ctx);
  EXPECT_EQ(snap.nogoods.size(), 2u);
  EXPECT_EQ(snap.justs.size(), 1u);
  EXPECT_EQ(snap.relax.size(), 1u);

  const std::string path = temp_store("roundtrip");
  DedStoreMeta meta;
  meta.design_hash = 0x1111;
  meta.config_hash = 0x2222;
  std::string why;
  ASSERT_TRUE(save_ded_store(path, meta, snap, &why)) << why;

  const DedStoreLoad load = load_ded_store(path, 0x1111, 0x2222);
  ASSERT_TRUE(load.ok) << load.note;
  EXPECT_EQ(load.skipped_records, 0u);
  EXPECT_EQ(load.meta.design_hash, 0x1111u);
  EXPECT_EQ(load.snapshot.nogoods, snap.nogoods);
  ASSERT_EQ(load.snapshot.justs.size(), 1u);
  EXPECT_EQ(load.snapshot.justs[0].key, snap.justs[0].key);
  EXPECT_EQ(load.snapshot.justs[0].entry.success, true);
  EXPECT_EQ(load.snapshot.justs[0].entry.cpi_assignments,
            snap.justs[0].entry.cpi_assignments);
  ASSERT_EQ(load.snapshot.relax.size(), 1u);
  EXPECT_EQ(load.snapshot.relax[0].key, snap.relax[0].key);
  EXPECT_EQ(load.snapshot.relax[0].result.iterations, 9u);
  EXPECT_EQ(load.snapshot.relax[0].result.note, "memo");
  EXPECT_EQ(load.snapshot.relax[0].vars.imem, snap.relax[0].vars.imem);
  EXPECT_EQ(load.snapshot.relax[0].vars.rf_init[4], 0xdeadbeefu);

  // And the loaded snapshot replays into a fresh context losslessly.
  SolverContext fresh;
  import_context(load.snapshot, &fresh);
  const DedSnapshot again = export_context(fresh);
  EXPECT_EQ(again.nogoods, snap.nogoods);
  EXPECT_EQ(again.justs.size(), snap.justs.size());
  EXPECT_EQ(again.relax.size(), snap.relax.size());
  std::remove(path.c_str());
}

// -------------------------------------------------------- provenance gate

TEST(DedStore, RefusesMissingFileVersionAndHashMismatches) {
  const std::string path = temp_store("gate");
  std::remove(path.c_str());
  EXPECT_FALSE(load_ded_store(path, 0, 0).ok);

  const DedSnapshot snap = export_context(populated_context());
  DedStoreMeta meta;
  meta.design_hash = 0xAAAA;
  meta.config_hash = 0xBBBB;
  std::string why;
  ASSERT_TRUE(save_ded_store(path, meta, snap, &why)) << why;

  const DedStoreLoad wrong_design = load_ded_store(path, 0xDEAD, 0xBBBB);
  EXPECT_FALSE(wrong_design.ok);
  EXPECT_NE(wrong_design.note.find("design"), std::string::npos);
  EXPECT_TRUE(wrong_design.snapshot.empty());

  const DedStoreLoad wrong_config = load_ded_store(path, 0xAAAA, 0xBEEF);
  EXPECT_FALSE(wrong_config.ok);
  EXPECT_NE(wrong_config.note.find("config"), std::string::npos);

  // Hash 0 on either side means "not validated" - loads fine.
  EXPECT_TRUE(load_ded_store(path, 0, 0).ok);
  EXPECT_TRUE(load_ded_store(path, 0xAAAA, 0).ok);

  meta.version = kDedStoreVersion + 1;
  ASSERT_TRUE(save_ded_store(path, meta, snap, &why)) << why;
  const DedStoreLoad wrong_version = load_ded_store(path, 0xAAAA, 0xBBBB);
  EXPECT_FALSE(wrong_version.ok);
  EXPECT_NE(wrong_version.note.find("version"), std::string::npos);
  std::remove(path.c_str());
}

// ------------------------------------------------------- tolerant reading

TEST(DedStore, CorruptRecordIsSkippedAndQuarantined) {
  const std::string path = temp_store("corrupt");
  const DedSnapshot snap = export_context(populated_context());
  std::string why;
  ASSERT_TRUE(save_ded_store(path, DedStoreMeta{}, snap, &why)) << why;

  // Flip one byte inside the final record's payload: exactly that record's
  // CRC breaks; everything before it must still load.
  std::vector<char> bytes = slurp(path);
  ASSERT_GT(bytes.size(), 40u);
  bytes[bytes.size() - 3] ^= 0x5A;
  spit(path, bytes);

  const DedStoreLoad load = load_ded_store(path, 0, 0);
  ASSERT_TRUE(load.ok) << load.note;
  EXPECT_EQ(load.skipped_records, 1u);
  EXPECT_GT(load.skipped_bytes, 0u);
  // meta + entries, minus the one corrupted entry.
  EXPECT_EQ(load.records, snap.entries());
  EXPECT_NE(load.note.find("skipped"), std::string::npos);
  EXPECT_FALSE(slurp(path + ".quarantine").empty());
  std::remove(path.c_str());
  std::remove((path + ".quarantine").c_str());
}

TEST(DedStore, TruncatedTailIsDroppedNotFatal) {
  const std::string path = temp_store("trunc");
  const DedSnapshot snap = export_context(populated_context());
  std::string why;
  ASSERT_TRUE(save_ded_store(path, DedStoreMeta{}, snap, &why)) << why;

  std::vector<char> bytes = slurp(path);
  bytes.resize(bytes.size() - bytes.size() / 4);  // tear the final record(s)
  spit(path, bytes);

  const DedStoreLoad load = load_ded_store(path, 0, 0);
  ASSERT_TRUE(load.ok) << load.note;
  EXPECT_LT(load.records, 1 + snap.entries());
  std::remove(path.c_str());
  std::remove((path + ".quarantine").c_str());
}

TEST(DedStore, GarbageBeforeMetaRefuses) {
  const std::string path = temp_store("garbage");
  spit(path, std::vector<char>(64, 'x'));
  const DedStoreLoad load = load_ded_store(path, 0, 0);
  EXPECT_FALSE(load.ok);
  EXPECT_TRUE(load.snapshot.empty());
  std::remove(path.c_str());
  std::remove((path + ".quarantine").c_str());
}

// ------------------------------------------------------------------ merge

TEST(DedSnapshotMerge, DeduplicatesAcrossWorkers) {
  const DedSnapshot a = export_context(populated_context());
  DedSnapshot b = a;  // worker 2 learned the same things...
  b.nogoods.push_back({{99, 4, false}});  // ...plus one of its own

  DedSnapshot merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.nogoods.size(), a.nogoods.size() + 1);
  EXPECT_EQ(merged.justs.size(), a.justs.size());
  EXPECT_EQ(merged.relax.size(), a.relax.size());

  // Merge order is deterministic: a then b keeps a's entries first.
  EXPECT_EQ(merged.nogoods.back(), b.nogoods.back());
}

// ----------------------------------------------------------- nogood board

TEST(NogoodBoard, PublishesDedupedCutsWithEpochs) {
  NogoodBoard board;
  EXPECT_EQ(board.epoch(), 0u);
  EXPECT_EQ(board.snapshot(), nullptr);

  board.publish({{{1, 0, true}}, {{2, 1, false}}});
  EXPECT_EQ(board.epoch(), 1u);
  auto snap = board.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->cuts.size(), 2u);

  // Duplicates are dropped; the master list only grows with fresh cuts.
  board.publish({{{1, 0, true}}, {{3, 2, true}}});
  EXPECT_EQ(board.epoch(), 2u);
  EXPECT_EQ(board.snapshot()->cuts.size(), 3u);

  // An all-duplicate publish does not bump the epoch or copy the list.
  board.publish({{{3, 2, true}}});
  EXPECT_EQ(board.epoch(), 2u);
  // Old snapshots stay valid (immutable) after later publishes.
  EXPECT_EQ(snap->cuts.size(), 2u);
}

TEST(NogoodBoard, ContextSyncExchangesCuts) {
  NogoodBoard board;
  SolverConfig cfg;
  cfg.shared_board = &board;
  SolverContext a(cfg), b(cfg);

  a.nogoods.learn({{5, 1, true}, {6, 1, false}});
  a.sync_shared_nogoods();
  EXPECT_EQ(board.snapshot()->cuts.size(), 1u);

  b.sync_shared_nogoods();  // imports a's cut
  EXPECT_EQ(b.nogoods.size(), 1u);

  // b re-publishing what it imported must not duplicate it on the board.
  b.sync_shared_nogoods();
  EXPECT_EQ(board.snapshot()->cuts.size(), 1u);
}

// ------------------------------------------------- warm-start equivalence

TEST(DedStore, WarmStartIsOutcomeNeutralThroughTheGenerator) {
  // Cold campaign-scope pass over a small SSL slice, persisted, then a
  // warm-started pass over the same slice: outcomes, witnesses and tests
  // must be identical; the warm run must actually hit the carried state.
  std::vector<DesignError> errors = wrap(enumerate_bus_ssl(model().dp));
  if (errors.size() > 12) errors.resize(12);

  struct Outcome {
    TgStatus status;
    AbortReason abort;
    unsigned test_length;
    std::vector<std::uint32_t> imem;
    std::array<std::uint32_t, 32> rf_init;
    std::map<std::uint32_t, std::uint32_t> dmem_init;
    bool operator==(const Outcome&) const = default;
  };
  TgConfig cfg;
  cfg.solver.scope = SolverScope::kCampaign;
  auto run = [&](const DedSnapshot* warm, std::uint64_t* reuse,
                 DedSnapshot* out_snap) {
    TestGenerator tg(model(), cfg);
    if (warm) import_context(*warm, &tg.solver_context());
    std::vector<Outcome> out;
    for (const DesignError& e : errors) {
      const TgResult r = tg.generate(e);
      if (reuse) *reuse += r.stats.cache_hits + r.stats.relax_hits;
      out.push_back({r.status, r.stats.abort, r.test_length, r.test.imem,
                     r.test.rf_init, r.test.dmem_init});
    }
    if (out_snap) *out_snap = export_context(tg.solver_context());
    return out;
  };

  DedSnapshot persisted;
  std::uint64_t cold_reuse = 0, warm_reuse = 0;
  const auto cold = run(nullptr, &cold_reuse, &persisted);
  ASSERT_FALSE(persisted.empty());

  // Through the file, not just the in-memory snapshot.
  const std::string path = temp_store("warm");
  std::string why;
  ASSERT_TRUE(save_ded_store(path, DedStoreMeta{}, persisted, &why)) << why;
  DedStoreLoad load = load_ded_store(path, 0, 0);
  ASSERT_TRUE(load.ok) << load.note;

  const auto warm = run(&load.snapshot, &warm_reuse, nullptr);
  EXPECT_EQ(warm, cold);
  EXPECT_GT(warm_reuse, cold_reuse);  // the warmth is real, not vacuous
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hltg
