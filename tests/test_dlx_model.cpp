// Structural tests of the DLX implementation model.
#include <gtest/gtest.h>

#include "dlx/dlx.h"
#include "dlx/signal_names.h"
#include "gatenet/levelize.h"
#include "netlist/check.h"

namespace hltg {
namespace {

class DlxModelTest : public ::testing::Test {
 protected:
  static const DlxModel& model() {
    static const DlxModel m = build_dlx();
    return m;
  }
};

TEST_F(DlxModelTest, BuildsAndChecksClean) {
  const CheckResult r = check_netlist(model().dp);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST_F(DlxModelTest, ControllerIsAcyclic) {
  EXPECT_NO_THROW(model().ctrl.topo_order());
}

TEST_F(DlxModelTest, SignalInventoryShape) {
  const GateNetStats st = analyze(model().ctrl);
  // The paper's DLX: 96 controller state bits, 43 tertiary signals, with
  // n3 << n2. Our model is smaller but must preserve the shape.
  EXPECT_GT(st.num_dffs, 20u);
  EXPECT_GE(st.num_tertiary, 4u);
  EXPECT_LT(st.pipeframe_justify_vars(), st.timeframe_justify_vars());
  EXPECT_EQ(st.num_cpi, 12u);  // opcode + func
  EXPECT_EQ(st.num_sts, 10u);
}

TEST_F(DlxModelTest, DatapathStateBits) {
  // Paper: 512 datapath state bits excluding the register file. Ours:
  // PC + IF/ID(64) + ID/EX(32*4 + 5*3) + EX/MEM(32*2+5) + MEM/WB(32+5).
  const unsigned bits = datapath_state_bits(model().dp);
  EXPECT_GT(bits, 300u);
  EXPECT_LT(bits, 700u);
}

TEST_F(DlxModelTest, AllCtrlNetsBoundWithWidths) {
  const DlxModel& m = model();
  for (NetId n = 0; n < m.dp.num_nets(); ++n) {
    if (m.dp.net(n).role != NetRole::kCtrl) continue;
    const CtrlBind* cb = m.find_ctrl(n);
    ASSERT_NE(cb, nullptr) << m.dp.net(n).name;
    EXPECT_EQ(cb->bits.size(), m.dp.net(n).width) << m.dp.net(n).name;
    for (GateId g : cb->bits)
      EXPECT_EQ(m.ctrl.gate(g).role, SigRole::kCtrl);
  }
}

TEST_F(DlxModelTest, AllStsNetsBound) {
  const DlxModel& m = model();
  unsigned count = 0;
  for (NetId n = 0; n < m.dp.num_nets(); ++n) {
    if (m.dp.net(n).role != NetRole::kSts) continue;
    ++count;
    const StsBind* sb = m.find_sts(n);
    ASSERT_NE(sb, nullptr) << m.dp.net(n).name;
    EXPECT_EQ(m.ctrl.gate(sb->gate).kind, GateKind::kVar);
  }
  EXPECT_EQ(count, 10u);
}

TEST_F(DlxModelTest, StagesPopulated) {
  const DlxModel& m = model();
  int per_stage[kNumStages + 1] = {};
  for (NetId n = 0; n < m.dp.num_nets(); ++n)
    ++per_stage[static_cast<int>(m.dp.net(n).stage)];
  // WB is legitimately tiny (write-back bus, destination, write enable).
  for (int s = 0; s < kNumStages; ++s)
    EXPECT_GE(per_stage[s], 3) << to_string(static_cast<Stage>(s));
  EXPECT_GT(per_stage[static_cast<int>(Stage::kEX)], 20);
  EXPECT_GT(per_stage[static_cast<int>(Stage::kMEM)], 15);
}

TEST_F(DlxModelTest, TertiarySignalsLabeled) {
  const DlxModel& m = model();
  // stall, redirect, and the four bypass selects.
  EXPECT_EQ(m.ctrl.tertiary_gates().size(), 6u);
  // Datapath tertiary buses: redirect target + two forwarded result buses.
  unsigned dto = 0;
  for (NetId n = 0; n < m.dp.num_nets(); ++n)
    if (m.dp.net(n).role == NetRole::kDTO) ++dto;
  EXPECT_EQ(dto, 3u);
}

TEST_F(DlxModelTest, DescribeMentionsKeyFacts) {
  const std::string d = describe_model(model());
  EXPECT_NE(d.find("controller"), std::string::npos);
  EXPECT_NE(d.find("pipeframe vs timeframe"), std::string::npos);
}

TEST(DecodedCtrlTable, SpotChecks) {
  const DecodedCtrl add = decoded_ctrl(Op::kAdd);
  EXPECT_EQ(add.alu_sel, AluSel::kAdd);
  EXPECT_TRUE(add.reads_rs1);
  EXPECT_TRUE(add.reads_rsB);
  EXPECT_TRUE(add.wb_en);
  EXPECT_FALSE(add.use_imm);

  const DecodedCtrl lw = decoded_ctrl(Op::kLw);
  EXPECT_TRUE(lw.is_load);
  EXPECT_TRUE(lw.use_imm);
  EXPECT_EQ(lw.dest_sel, DestSel::kRdI);
  EXPECT_EQ(lw.load_ext, LoadExt::kWord);

  const DecodedCtrl sb = decoded_ctrl(Op::kSb);
  EXPECT_TRUE(sb.is_store);
  EXPECT_TRUE(sb.reads_rsB);
  EXPECT_FALSE(sb.wb_en);
  EXPECT_EQ(sb.mem_size, MemSize::kByte);

  const DecodedCtrl jal = decoded_ctrl(Op::kJal);
  EXPECT_TRUE(jal.is_jump);
  EXPECT_TRUE(jal.wb_en);
  EXPECT_EQ(jal.dest_sel, DestSel::kR31);
  EXPECT_EQ(jal.alu_sel, AluSel::kLink);
  EXPECT_EQ(jal.imm_sel, ImmSel::kSext26);

  const DecodedCtrl bnez = decoded_ctrl(Op::kBnez);
  EXPECT_TRUE(bnez.is_bnez);
  EXPECT_TRUE(bnez.reads_rs1);
  EXPECT_FALSE(bnez.wb_en);

  const DecodedCtrl nop = decoded_ctrl(Op::kNop);
  EXPECT_FALSE(nop.wb_en);
  EXPECT_FALSE(nop.is_load);
  EXPECT_FALSE(nop.is_store);
}

TEST(DecodedCtrlTable, ZeroExtensionMatchesIsa) {
  for (int k = 0; k < kNumInstructions; ++k) {
    const Op op = static_cast<Op>(k);
    if (!is_alu_i(op)) continue;
    const DecodedCtrl c = decoded_ctrl(op);
    EXPECT_EQ(c.imm_sel == ImmSel::kZext16, zero_extends_imm(op))
        << mnemonic(op);
  }
}

}  // namespace
}  // namespace hltg
