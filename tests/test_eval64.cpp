// Bit-parallel evaluation: lane-for-lane equivalence of the 64-lane kernel
// with the scalar 2-valued path, the cached DFF list, and batch-vs-scalar
// parity of the error detector across all four error models.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/tg.h"
#include "errors/boe.h"
#include "errors/bse.h"
#include "errors/bus_ssl.h"
#include "errors/mse.h"
#include "gatenet/eval3.h"
#include "gatenet/eval64.h"
#include "isa/asm.h"
#include "sim/batch_sim.h"
#include "sim/cosim.h"
#include "util/rng.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

TestCase make_tc(const std::string& src) {
  const AsmResult r = assemble(src);
  EXPECT_TRUE(r.ok());
  TestCase tc;
  tc.imem = encode_program(r.program);
  return tc;
}

// ------------------------------------------------------------ the kernel

TEST(Eval64, ResetMatchesScalar) {
  const GateNet& gn = model().ctrl;
  std::vector<std::uint64_t> v64;
  load_reset64(gn, v64);
  std::vector<bool> v2;
  load_reset2(gn, v2);
  ASSERT_EQ(v64.size(), v2.size());
  for (GateId g = 0; g < gn.num_gates(); ++g) {
    // Every lane carries the same reset state.
    EXPECT_EQ(v64[g], v2[g] ? ~std::uint64_t{0} : 0) << gn.gate(g).name;
  }
}

TEST(Eval64, LaneForLaneMatchesScalarOverRandomCycles) {
  // Drive the real DLX controller with independent random inputs per lane
  // for several clocked cycles; every gate of every lane must equal a
  // scalar eval_cycle2 of that lane.
  const GateNet& gn = model().ctrl;
  constexpr unsigned kLanes = 64;
  std::vector<GateId> vars = gn.gates_of_kind(GateKind::kVar);
  ASSERT_FALSE(vars.empty());

  Rng rng(0x515);
  std::vector<std::uint64_t> v64;
  load_reset64(gn, v64);
  std::vector<std::vector<bool>> v2(kLanes);
  for (auto& v : v2) load_reset2(gn, v);

  for (int cycle = 0; cycle < 6; ++cycle) {
    for (GateId g : vars) {
      const std::uint64_t word = rng.next();
      v64[g] = word;
      for (unsigned l = 0; l < kLanes; ++l) v2[l][g] = (word >> l) & 1;
    }
    eval_cycle64(gn, v64);
    for (unsigned l = 0; l < kLanes; ++l) eval_cycle2(gn, v2[l]);
    for (GateId g = 0; g < gn.num_gates(); ++g) {
      const std::uint64_t want = [&] {
        std::uint64_t w = 0;
        for (unsigned l = 0; l < kLanes; ++l)
          if (v2[l][g]) w |= std::uint64_t{1} << l;
        return w;
      }();
      ASSERT_EQ(v64[g], want)
          << "cycle " << cycle << " gate " << gn.gate(g).name;
    }
    std::vector<std::uint64_t> n64 = v64;
    clock_dffs64(gn, v64, n64);
    v64 = std::move(n64);
    for (unsigned l = 0; l < kLanes; ++l) {
      std::vector<bool> nl = v2[l];
      clock_dffs2(gn, v2[l], nl);
      v2[l] = std::move(nl);
    }
  }
}

TEST(GateNetCache, DffListMatchesScanAndIsInvalidated) {
  const GateNet& gn = model().ctrl;
  EXPECT_EQ(gn.dffs(), gn.gates_of_kind(GateKind::kDff));
  // Cached: repeated calls return the same storage.
  EXPECT_EQ(&gn.dffs(), &gn.dffs());

  GateNet small;
  Gate var;
  var.kind = GateKind::kVar;
  const GateId v = small.add_gate(var);
  EXPECT_TRUE(small.dffs().empty());
  Gate dff;
  dff.kind = GateKind::kDff;
  dff.fanin = {v};
  small.add_gate(dff);  // add_gate invalidates the caches
  EXPECT_EQ(small.dffs().size(), 1u);
}

// --------------------------------------------------- batched error detect

void expect_batch_matches_scalar(const std::vector<DesignError>& errs,
                                 const TestCase& tc) {
  std::vector<const DesignError*> ptrs;
  ptrs.reserve(errs.size());
  for (const DesignError& e : errs) ptrs.push_back(&e);

  BatchDetectConfig scalar;
  scalar.force_scalar = true;
  const std::vector<bool> ref = detect_errors(model(), tc, ptrs, scalar);
  const std::vector<bool> got = detect_errors(model(), tc, ptrs);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_EQ(ref[i], got[i]) << errs[i].describe(model().dp);

  // Chunk width must not matter (7 lanes forces many partial batches).
  BatchDetectConfig narrow;
  narrow.max_lanes = 7;
  EXPECT_EQ(detect_errors(model(), tc, ptrs, narrow), ref);
}

std::vector<DesignError> head(std::vector<DesignError> v, std::size_t n) {
  if (v.size() > n) v.resize(n);
  return v;
}

TestCase alu_program() {
  TestCase tc = make_tc(
      "addi r1, r0, 3\n"
      "addi r2, r0, 5\n"
      "add r3, r1, r2\n"
      "sub r4, r3, r1\n"
      "and r5, r3, r2\n"
      "or r6, r1, r2\n"
      "xor r7, r3, r4\n"
      "sw 0x40(r0), r3\n"
      "sw 0x44(r0), r7\n"
      "lw r8, 0x40(r0)\n"
      "add r9, r8, r6\n"
      "sw 0x48(r0), r9\n");
  tc.rf_init[10] = 0xDEADBEEFu;
  return tc;
}

TestCase branch_program() {
  return make_tc(
      "addi r1, r0, 1\n"
      "addi r10, r0, 7\n"
      "beqz r1, skip\n"
      "addi r10, r10, 1\n"
      "skip: bnez r1, taken\n"
      "addi r10, r10, 32\n"
      "taken: add r11, r10, r1\n"
      "sw 0x50(r0), r11\n"
      "sw 0x54(r0), r10\n");
}

TEST(BatchDetect, MatchesScalarOnSslPopulation) {
  // > 64 errors so the sweep spans multiple 64-lane batches.
  const auto errs = head(wrap(enumerate_bus_ssl(model().dp)), 80);
  ASSERT_GT(errs.size(), 64u);
  expect_batch_matches_scalar(errs, alu_program());
  expect_batch_matches_scalar(errs, branch_program());
}

TEST(BatchDetect, MatchesScalarOnMse) {
  const std::vector<Stage> stages = {Stage::kEX, Stage::kMEM, Stage::kWB};
  const auto errs = head(wrap(enumerate_mse(model().dp, stages)), 48);
  ASSERT_FALSE(errs.empty());
  expect_batch_matches_scalar(errs, alu_program());
}

TEST(BatchDetect, MatchesScalarOnBoe) {
  const std::vector<Stage> stages = {Stage::kEX, Stage::kMEM, Stage::kWB};
  const auto errs = head(wrap(enumerate_boe(model().dp, stages)), 48);
  ASSERT_FALSE(errs.empty());
  expect_batch_matches_scalar(errs, alu_program());
}

TEST(BatchDetect, MatchesScalarOnBse) {
  const auto errs = head(wrap(enumerate_bse(model().dp)), 48);
  ASSERT_FALSE(errs.empty());
  expect_batch_matches_scalar(errs, branch_program());
}

TEST(BatchDetect, MatchesScalarOnGeneratedTest) {
  // A directed test from the real generator, swept over a mixed population.
  const NetId net = model().dp.find_net("ex.alu_add");
  ASSERT_NE(net, kNoNet);
  DesignError target{BusSslError{net, 0, false}};
  TestGenerator tg(model());
  const TgResult r = tg.generate(target);
  ASSERT_EQ(r.status, TgStatus::kSuccess) << r.note;

  std::vector<DesignError> errs = head(wrap(enumerate_bus_ssl(model().dp)), 40);
  const auto bse = head(wrap(enumerate_bse(model().dp)), 20);
  errs.insert(errs.end(), bse.begin(), bse.end());
  expect_batch_matches_scalar(errs, r.test);
}

TEST(BatchDrop, DroppingCampaignAgreesWithScalarDetector) {
  // The dropping engine must compact identically whether the oracle is the
  // batched simulator or the serial per-error cosim.
  const auto some = head(wrap(enumerate_bus_ssl(model().dp)), 24);
  const DetectFn scalar = [](const TestCase& tc, const DesignError& e) {
    return detects(model(), tc, e.injection());
  };
  TestGenerator tg1(model());
  const CampaignResult a = run_campaign_with_dropping(
      model().dp, some, tg1.budgeted_strategy(), batch_from_scalar(scalar),
      CampaignConfig{});
  TestGenerator tg2(model());
  const CampaignResult b = run_campaign_with_dropping(
      model().dp, some, tg2.budgeted_strategy(), batch_detector(model()),
      CampaignConfig{});
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.tests_kept, b.tests_kept);
  EXPECT_EQ(a.stats.detected, b.stats.detected);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].error.describe(model().dp),
              b.rows[i].error.describe(model().dp));
    EXPECT_EQ(a.rows[i].attempt.detected(), b.rows[i].attempt.detected());
  }
  EXPECT_GT(a.dropped, 0u);
}

}  // namespace
}  // namespace hltg
