// End-to-end tests of the full test-generation algorithm (TG, Fig. 3).
#include <gtest/gtest.h>

#include "core/emit.h"
#include "core/tg.h"
#include "errors/redundancy.h"
#include "sim/cosim.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

TestGenerator& tg() {
  static TestGenerator t(model());
  return t;
}

DesignError ssl(const char* net, unsigned bit, bool v) {
  const NetId n = model().dp.find_net(net);
  EXPECT_NE(n, kNoNet) << net;
  return DesignError{BusSslError{n, bit, v}};
}

void expect_detects(const DesignError& e, unsigned max_len = 16) {
  const TgResult r = tg().generate(e);
  ASSERT_EQ(r.status, TgStatus::kSuccess) << e.describe(model().dp) << "\n"
                                          << r.note;
  EXPECT_TRUE(detects(model(), r.test, e.injection()))
      << e.describe(model().dp);
  EXPECT_GE(r.test_length, 3u);
  EXPECT_LE(r.test_length, max_len);
}

TEST(Tg, AluAdderStuckLines) {
  expect_detects(ssl("ex.alu_add", 0, false));
  expect_detects(ssl("ex.alu_add", 0, true));
  expect_detects(ssl("ex.alu_add", 31, false));
  expect_detects(ssl("ex.alu_add", 31, true));
}

TEST(Tg, AluLogicUnits) {
  expect_detects(ssl("ex.alu_and", 0, false));
  expect_detects(ssl("ex.alu_or", 0, true));
  expect_detects(ssl("ex.alu_xor", 31, true));
  expect_detects(ssl("ex.alu_sub", 0, false));
}

TEST(Tg, ShifterOutputs) {
  expect_detects(ssl("ex.alu_shl", 0, true));
  expect_detects(ssl("ex.alu_srl", 0, false));
  expect_detects(ssl("ex.alu_sra", 31, false));
}

TEST(Tg, PredicateOutputs) {
  expect_detects(ssl("ex.p_slt", 0, false));
  expect_detects(ssl("ex.p_seq", 0, true));
}

TEST(Tg, MemStageBuses) {
  expect_detects(ssl("exmem.result", 5, false));
  expect_detects(ssl("exmem.sdata", 0, false));
  expect_detects(ssl("mem.result", 0, true));
  expect_detects(ssl("mem.ld_val", 0, false));
}

TEST(Tg, WbStageBuses) {
  expect_detects(ssl("memwb.value", 0, false));
  expect_detects(ssl("memwb.value", 31, true));
  expect_detects(ssl("memwb.dest", 0, false));
}

TEST(Tg, BypassBusesAndComparators) {
  expect_detects(ssl("ex.a_byp", 0, false));
  expect_detects(ssl("ex.b_byp", 0, true));
  expect_detects(ssl("sts.fwda_mem", 0, false));
  expect_detects(ssl("sts.fwda_mem", 0, true));
  expect_detects(ssl("sts.dest_mem_nz", 0, false));
}

TEST(Tg, ControlFlowMacroHandlesBranchPath) {
  // Branch-condition and target errors are only observable through a taken
  // control transfer; TG must fall back to the divergence templates.
  expect_detects(ssl("sts.a_zero", 0, false));
  expect_detects(ssl("sts.a_zero", 0, true));
  expect_detects(ssl("ex.btarget", 31, true));
  expect_detects(ssl("ex.redirect_target", 0, true));
}

TEST(Tg, ModuleSubstitutionError) {
  const ModId add = model().dp.find_module("ex.alu_add");
  DesignError e{ModuleSubstitutionError{add, ModuleKind::kSub}};
  const TgResult r = tg().generate(e);
  ASSERT_EQ(r.status, TgStatus::kSuccess) << r.note;
  EXPECT_TRUE(detects(model(), r.test, e.injection()));
}

TEST(Tg, BusOrderError) {
  const ModId sub = model().dp.find_module("ex.alu_sub");
  DesignError e{BusOrderError{sub}};
  const TgResult r = tg().generate(e);
  ASSERT_EQ(r.status, TgStatus::kSuccess) << r.note;
  EXPECT_TRUE(detects(model(), r.test, e.injection()));
}

TEST(Tg, RedundantErrorAborts) {
  // Bit 31 of a zero-extended 1-bit predicate is constant 0: stuck-at-0 is
  // provably undetectable and TG must abort, not fabricate a test.
  const DesignError e = ssl("ex.slt32", 31, false);
  const BitConstants bc = analyze_bit_constants(model().dp);
  EXPECT_TRUE(is_redundant(bc, std::get<BusSslError>(e.e)));
  const TgResult r = tg().generate(e);
  EXPECT_NE(r.status, TgStatus::kSuccess);
}

TEST(Tg, GeneratedTestsAreShort) {
  // Sec. VI: "typical sequences consist of a few non-trivial instructions
  // followed by a sequence of NOP instructions", average 6.2.
  const TgResult r = tg().generate(ssl("ex.alu_add", 7, false));
  ASSERT_EQ(r.status, TgStatus::kSuccess);
  EXPECT_LE(r.test.imem.size(), 8u);
  EXPECT_LE(r.test_length, 10u);
}

TEST(Tg, StatsPopulated) {
  const TgResult r = tg().generate(ssl("ex.alu_sub", 3, true));
  ASSERT_EQ(r.status, TgStatus::kSuccess);
  EXPECT_GE(r.stats.plans_tried, 1u);
  EXPECT_GE(r.stats.decisions, 1u);
  EXPECT_GE(r.stats.implications, 1u);
  EXPECT_GE(r.stats.relax_iterations, 1u);
}

TEST(Tg, StrategyAdapterConfirms) {
  auto strat = tg().strategy();
  const ErrorAttempt a = strat(ssl("ex.alu_add", 2, false));
  EXPECT_TRUE(a.generated);
  EXPECT_TRUE(a.sim_confirmed);
  EXPECT_GT(a.test_length, 0u);
  EXPECT_GE(a.seconds, 0.0);
}

TEST(Emit, CpiBitMapping) {
  // opcode gates map to word bits 26..31, func gates to 0..5.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(instr_bit_of_cpi(model(), model().cpi[i]), 26 + i);
    EXPECT_EQ(instr_bit_of_cpi(model(), model().cpi[6 + i]), i);
  }
  EXPECT_EQ(instr_bit_of_cpi(model(), model().cpi[0] + 1000), -1);
}

TEST(Emit, StraightLineFetchIndex) {
  ControllerWindow win(model().ctrl, 6);
  RelaxVars vars;
  const EmitResult er = emit_cpi_assignments(model(), win, {}, &vars);
  ASSERT_TRUE(er.ok);
  for (unsigned t = 0; t < 6; ++t) EXPECT_EQ(er.fetch_index[t], t);
}

TEST(Emit, ConflictingBitsRejected) {
  ControllerWindow win(model().ctrl, 6);
  RelaxVars vars;
  const GateId g = model().cpi[0];
  const EmitResult er =
      emit_cpi_assignments(model(), win, {{g, 2, true}, {g, 2, false}}, &vars);
  // Same gate, same cycle, contradictory values: second write must fail.
  EXPECT_FALSE(er.ok);
}

TEST(Emit, TrimTrailingNops) {
  std::vector<std::uint32_t> imem = {5, 0, 0, 0};
  trim_trailing_nops(&imem);
  EXPECT_EQ(imem, (std::vector<std::uint32_t>{5}));
  std::vector<std::uint32_t> all0 = {0, 0};
  trim_trailing_nops(&all0);
  EXPECT_EQ(all0.size(), 1u);
}

}  // namespace
}  // namespace hltg
