// Integration tests: small realistic kernels (loops, memory walks, branchy
// reductions) executed on every microarchitecture variant and checked
// against the ISA specification - the strongest whole-machine property we
// can assert.
#include <gtest/gtest.h>

#include "isa/asm.h"
#include "sim/cosim.h"

namespace hltg {
namespace {

struct Variant {
  const char* name;
  DlxConfig cfg;
};

const std::vector<Variant>& variants() {
  static const std::vector<Variant> v = {
      {"bypass+nt", {}},
      {"bypass+btb", {.branch_predictor = true}},
      {"interlock+nt", {.bypassing = false}},
      {"interlock+btb", {.branch_predictor = true, .bypassing = false}},
  };
  return v;
}

const DlxModel& model_for(std::size_t i) {
  static std::vector<DlxModel> models = [] {
    std::vector<DlxModel> m;
    for (const Variant& v : variants()) m.push_back(build_dlx(v.cfg));
    return m;
  }();
  return models[i];
}

struct Kernel {
  const char* name;
  std::string source;
  TestCase setup;       ///< initial memory / registers
  unsigned cycles;
};

void check_kernel_everywhere(const Kernel& k) {
  const AsmResult r = assemble(k.source);
  ASSERT_TRUE(r.ok()) << k.name << ": "
                      << (r.errors.empty() ? "" : r.errors[0]);
  TestCase tc = k.setup;
  tc.imem = encode_program(r.program);
  const ArchTrace spec = spec_run(tc, k.cycles);
  for (std::size_t i = 0; i < variants().size(); ++i) {
    const ArchTrace impl = impl_run(model_for(i), tc, k.cycles);
    EXPECT_TRUE(spec.diff(impl).empty())
        << k.name << " on " << variants()[i].name << ":\n"
        << spec.diff(impl);
  }
}

TEST(Kernels, FibonacciLoop) {
  Kernel k;
  k.name = "fibonacci";
  k.source =
      "      addi r1, r0, 0\n"   // fib(n-2)
      "      addi r2, r0, 1\n"   // fib(n-1)
      "      addi r3, r0, 10\n"  // n iterations
      "loop: add  r4, r1, r2\n"
      "      add  r1, r0, r2\n"
      "      add  r2, r0, r4\n"
      "      subi r3, r3, 1\n"
      "      bnez r3, loop\n"
      "      sw   0x100(r0), r2\n";
  k.cycles = 160;
  check_kernel_everywhere(k);
  // And the value is right: fib(12) = 144 with this recurrence.
  const AsmResult r = assemble(k.source);
  TestCase tc;
  tc.imem = encode_program(r.program);
  const ArchTrace t = spec_run(tc, k.cycles);
  ASSERT_EQ(t.writes.size(), 1u);
  EXPECT_EQ(t.writes[0].data, 89u);  // fib sequence after 10 steps from 0,1
}

TEST(Kernels, ArraySum) {
  Kernel k;
  k.name = "array-sum";
  k.source =
      "      addi r1, r0, 0x200\n"  // base
      "      addi r2, r0, 8\n"      // count
      "      addi r3, r0, 0\n"      // acc
      "loop: lw   r4, 0(r1)\n"
      "      add  r3, r3, r4\n"
      "      addi r1, r1, 4\n"
      "      subi r2, r2, 1\n"
      "      bnez r2, loop\n"
      "      sw   0x300(r0), r3\n";
  for (unsigned i = 0; i < 8; ++i) k.setup.dmem_init[0x200 + 4 * i] = i + 1;
  k.cycles = 200;
  check_kernel_everywhere(k);
  const AsmResult r = assemble(k.source);
  TestCase tc = k.setup;
  tc.imem = encode_program(r.program);
  const ArchTrace t = spec_run(tc, k.cycles);
  ASSERT_EQ(t.writes.size(), 1u);
  EXPECT_EQ(t.writes[0].data, 36u);  // 1+..+8
}

TEST(Kernels, MemcpyWords) {
  Kernel k;
  k.name = "memcpy";
  k.source =
      "      addi r1, r0, 0x200\n"  // src
      "      addi r2, r0, 0x280\n"  // dst
      "      addi r3, r0, 6\n"      // words
      "loop: lw   r4, 0(r1)\n"
      "      sw   0(r2), r4\n"
      "      addi r1, r1, 4\n"
      "      addi r2, r2, 4\n"
      "      subi r3, r3, 1\n"
      "      bnez r3, loop\n";
  for (unsigned i = 0; i < 6; ++i)
    k.setup.dmem_init[0x200 + 4 * i] = 0xA0B0C000u + i;
  k.cycles = 200;
  check_kernel_everywhere(k);
}

TEST(Kernels, MaxSearchWithBranches) {
  Kernel k;
  k.name = "max-search";
  k.source =
      "      addi r1, r0, 0x200\n"
      "      addi r2, r0, 7\n"      // count
      "      addi r3, r0, 0\n"      // max (values are positive)
      "loop: lw   r4, 0(r1)\n"
      "      sltu r5, r3, r4\n"     // r3 < r4 ?
      "      beqz r5, skip\n"
      "      add  r3, r0, r4\n"
      "skip: addi r1, r1, 4\n"
      "      subi r2, r2, 1\n"
      "      bnez r2, loop\n"
      "      sw   0x300(r0), r3\n";
  const unsigned vals[] = {3, 17, 5, 42, 8, 41, 12};
  for (unsigned i = 0; i < 7; ++i) k.setup.dmem_init[0x200 + 4 * i] = vals[i];
  k.cycles = 300;
  check_kernel_everywhere(k);
  const AsmResult r = assemble(k.source);
  TestCase tc = k.setup;
  tc.imem = encode_program(r.program);
  const ArchTrace t = spec_run(tc, k.cycles);
  ASSERT_EQ(t.writes.size(), 1u);
  EXPECT_EQ(t.writes[0].data, 42u);
}

TEST(Kernels, ByteReverseInPlace) {
  Kernel k;
  k.name = "byte-reverse";
  k.source =
      "      addi r1, r0, 0x200\n"   // left byte ptr
      "      addi r2, r0, 0x207\n"   // right byte ptr
      "loop: lbu  r3, 0(r1)\n"
      "      lbu  r4, 0(r2)\n"
      "      sb   0(r1), r4\n"
      "      sb   0(r2), r3\n"
      "      addi r1, r1, 1\n"
      "      subi r2, r2, 1\n"
      "      sltu r5, r1, r2\n"
      "      bnez r5, loop\n";
  k.setup.dmem_init[0x200] = 0x44332211;
  k.setup.dmem_init[0x204] = 0x88776655;
  k.cycles = 240;
  check_kernel_everywhere(k);
  const AsmResult r = assemble(k.source);
  TestCase tc = k.setup;
  tc.imem = encode_program(r.program);
  SpecSimulator sim(tc);
  sim.run(k.cycles);
  EXPECT_EQ(sim.dmem().read_word(0x200), 0x55667788u);
  EXPECT_EQ(sim.dmem().read_word(0x204), 0x11223344u);
}

TEST(Kernels, SubroutineCallAndReturn) {
  Kernel k;
  k.name = "call-return";
  k.source =
      "      addi r1, r0, 5\n"
      "      jal  double_it\n"
      "      sw   0x300(r0), r1\n"
      "      j    end\n"
      "double_it:\n"
      "      add  r1, r1, r1\n"
      "      jr   r31\n"
      "end:  nop\n";
  k.cycles = 120;
  check_kernel_everywhere(k);
  const AsmResult r = assemble(k.source);
  TestCase tc;
  tc.imem = encode_program(r.program);
  const ArchTrace t = spec_run(tc, k.cycles);
  ASSERT_EQ(t.writes.size(), 1u);
  EXPECT_EQ(t.writes[0].data, 10u);
}

}  // namespace
}  // namespace hltg
