#include <gtest/gtest.h>

#include "util/logic3.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table.h"
#include "util/word.h"

namespace hltg {
namespace {

TEST(Word, MaskBits) {
  EXPECT_EQ(mask_bits(0), 0u);
  EXPECT_EQ(mask_bits(1), 1u);
  EXPECT_EQ(mask_bits(8), 0xFFu);
  EXPECT_EQ(mask_bits(32), 0xFFFFFFFFu);
  EXPECT_EQ(mask_bits(64), ~std::uint64_t{0});
}

TEST(Word, Trunc) {
  EXPECT_EQ(trunc(0x1FF, 8), 0xFFu);
  EXPECT_EQ(trunc(0x100, 8), 0u);
  EXPECT_EQ(trunc(~0ull, 32), 0xFFFFFFFFull);
}

TEST(Word, SextBasics) {
  EXPECT_EQ(sext(0x80, 8), 0xFFFFFFFFFFFFFF80ull);
  EXPECT_EQ(sext(0x7F, 8), 0x7Full);
  EXPECT_EQ(sext(0xFFFF, 16), ~0ull);
  EXPECT_EQ(sext(0x8000, 16), 0xFFFFFFFFFFFF8000ull);
}

TEST(Word, AsSigned) {
  EXPECT_EQ(as_signed(0xFF, 8), -1);
  EXPECT_EQ(as_signed(0x7F, 8), 127);
  EXPECT_EQ(as_signed(0x80000000u, 32), -2147483648LL);
}

TEST(Word, BitOps) {
  EXPECT_EQ(get_bit(0b1010, 1), 1u);
  EXPECT_EQ(get_bit(0b1010, 0), 0u);
  EXPECT_EQ(set_bit(0, 3, 1), 8u);
  EXPECT_EQ(set_bit(0xF, 0, 0), 0xEu);
}

TEST(Word, Fields) {
  EXPECT_EQ(get_field(0xABCD, 4, 8), 0xBCu);
  EXPECT_EQ(set_field(0, 8, 8, 0xAB), 0xAB00u);
  EXPECT_EQ(set_field(0xFFFF, 4, 8, 0), 0xF00Fu);
}

TEST(Word, AddOverflow) {
  EXPECT_TRUE(add_overflows(0x7FFFFFFF, 1, 32));
  EXPECT_FALSE(add_overflows(0x7FFFFFFE, 1, 32));
  EXPECT_TRUE(add_overflows(0x80000000, 0xFFFFFFFF, 32));  // min + -1
  EXPECT_FALSE(add_overflows(5, 7, 32));
}

TEST(Word, SubOverflow) {
  EXPECT_TRUE(sub_overflows(0x80000000, 1, 32));  // min - 1
  EXPECT_FALSE(sub_overflows(5, 3, 32));
  EXPECT_TRUE(sub_overflows(0x7FFFFFFF, 0xFFFFFFFF, 32));  // max - (-1)
}

TEST(Word, ToHex) {
  EXPECT_EQ(to_hex(0xAB, 8), "0xab");
  EXPECT_EQ(to_hex(0x5, 32), "0x00000005");
  EXPECT_EQ(to_hex(0x1, 1), "0x1");
}

TEST(Logic3, Not) {
  EXPECT_EQ(l3_not(L3::T), L3::F);
  EXPECT_EQ(l3_not(L3::F), L3::T);
  EXPECT_EQ(l3_not(L3::X), L3::X);
}

TEST(Logic3, AndTruthTable) {
  EXPECT_EQ(l3_and(L3::F, L3::X), L3::F);
  EXPECT_EQ(l3_and(L3::X, L3::F), L3::F);
  EXPECT_EQ(l3_and(L3::T, L3::T), L3::T);
  EXPECT_EQ(l3_and(L3::T, L3::X), L3::X);
  EXPECT_EQ(l3_and(L3::X, L3::X), L3::X);
}

TEST(Logic3, OrTruthTable) {
  EXPECT_EQ(l3_or(L3::T, L3::X), L3::T);
  EXPECT_EQ(l3_or(L3::X, L3::T), L3::T);
  EXPECT_EQ(l3_or(L3::F, L3::F), L3::F);
  EXPECT_EQ(l3_or(L3::F, L3::X), L3::X);
}

TEST(Logic3, XorTruthTable) {
  EXPECT_EQ(l3_xor(L3::T, L3::F), L3::T);
  EXPECT_EQ(l3_xor(L3::T, L3::T), L3::F);
  EXPECT_EQ(l3_xor(L3::X, L3::T), L3::X);
}

TEST(Logic3, Mux) {
  EXPECT_EQ(l3_mux(L3::F, L3::T, L3::F), L3::T);
  EXPECT_EQ(l3_mux(L3::T, L3::T, L3::F), L3::F);
  EXPECT_EQ(l3_mux(L3::X, L3::T, L3::T), L3::T);  // both agree
  EXPECT_EQ(l3_mux(L3::X, L3::T, L3::F), L3::X);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, WordWidth) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) EXPECT_LE(r.word(5), 31u);
}

TEST(Status, Combine) {
  EXPECT_EQ(combine(TgStatus::kUndetermined, TgStatus::kConflict),
            TgStatus::kConflict);
  EXPECT_EQ(combine(TgStatus::kFailure, TgStatus::kConflict),
            TgStatus::kConflict);
  EXPECT_EQ(combine(TgStatus::kUndetermined, TgStatus::kUndetermined),
            TgStatus::kUndetermined);
  EXPECT_EQ(combine(TgStatus::kFailure, TgStatus::kUndetermined),
            TgStatus::kFailure);
}

TEST(Table, RendersAllRows) {
  TextTable t({"metric", "value"});
  t.add_kv("a", "1");
  t.add_kv("bb", "22");
  const std::string s = t.to_string();
  EXPECT_NE(s.find("metric"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, FmtDouble) {
  EXPECT_EQ(fmt_double(6.25, 1), "6.2");
  EXPECT_EQ(fmt_double(36.0, 2), "36.00");
}

}  // namespace
}  // namespace hltg
