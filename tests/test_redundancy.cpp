// Tests of the constant-bit dataflow and redundant-error identification.
#include <gtest/gtest.h>

#include "errors/redundancy.h"
#include "netlist/builder.h"

namespace hltg {
namespace {

TEST(Redundancy, ZextUpperBitsKnownZero) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a", 8);
  const NetId y = b.zext("y", a, 32);
  b.output("o", y);
  const BitConstants bc = analyze_bit_constants(nl);
  EXPECT_FALSE(bc.is_known(y, 0));
  EXPECT_TRUE(bc.is_known(y, 8));
  EXPECT_TRUE(bc.is_known(y, 31));
  EXPECT_FALSE(bc.known_value(y, 31));
}

TEST(Redundancy, ConstantsFullyKnown) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId k = b.constant("k", 8, 0xA5);
  b.output("o", k);
  const BitConstants bc = analyze_bit_constants(nl);
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_TRUE(bc.is_known(k, i));
    EXPECT_EQ(bc.known_value(k, i), (0xA5u >> i) & 1);
  }
}

TEST(Redundancy, AndWithConstantZeroKnown) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a", 8);
  const NetId k = b.constant("k", 8, 0x0F);
  const NetId y = b.and_w("y", a, k);
  b.output("o", y);
  const BitConstants bc = analyze_bit_constants(nl);
  EXPECT_TRUE(bc.is_known(y, 7));   // masked to 0
  EXPECT_FALSE(bc.known_value(y, 7));
  EXPECT_FALSE(bc.is_known(y, 0));  // follows a
}

TEST(Redundancy, OrWithConstantOneKnown) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a", 8);
  const NetId k = b.constant("k", 8, 0xF0);
  const NetId y = b.or_w("y", a, k);
  b.output("o", y);
  const BitConstants bc = analyze_bit_constants(nl);
  EXPECT_TRUE(bc.is_known(y, 7));
  EXPECT_TRUE(bc.known_value(y, 7));
  EXPECT_FALSE(bc.is_known(y, 0));
}

TEST(Redundancy, ShlByConstantZerosLowBits) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a", 32);
  const NetId k = b.constant("k", 5, 2);
  const NetId y = b.shl("y", a, k);
  b.output("o", y);
  const BitConstants bc = analyze_bit_constants(nl);
  EXPECT_TRUE(bc.is_known(y, 0));
  EXPECT_TRUE(bc.is_known(y, 1));
  EXPECT_FALSE(bc.known_value(y, 0));
  EXPECT_FALSE(bc.is_known(y, 2));
}

TEST(Redundancy, MuxAgreementPropagates)
{
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId s = b.ctrl("s", 1);
  const NetId k1 = b.constant("k1", 4, 0b0101);
  const NetId k2 = b.constant("k2", 4, 0b0111);
  const NetId y = b.mux("y", s, {k1, k2});
  b.output("o", y);
  const BitConstants bc = analyze_bit_constants(nl);
  EXPECT_TRUE(bc.is_known(y, 0));   // both 1
  EXPECT_TRUE(bc.known_value(y, 0));
  EXPECT_TRUE(bc.is_known(y, 3));   // both 0
  EXPECT_FALSE(bc.is_known(y, 1));  // disagree
}

TEST(Redundancy, RegisterConstantWhenFeedMatchesReset) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId k = b.constant("k", 8, 0);
  const NetId q = b.reg("q", k, kNoNet, kNoNet, 0);
  b.output("o", q);
  const BitConstants bc = analyze_bit_constants(nl);
  for (unsigned i = 0; i < 8; ++i) EXPECT_TRUE(bc.is_known(q, i));
}

TEST(Redundancy, RegisterUnknownWhenFeedDisagreesWithReset) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId k = b.constant("k", 8, 0xFF);
  const NetId q = b.reg("q", k, kNoNet, kNoNet, 0);  // reset 0, feed FF
  b.output("o", q);
  const BitConstants bc = analyze_bit_constants(nl);
  EXPECT_FALSE(bc.is_known(q, 0));
}

TEST(Redundancy, DlxPredicateZextBit31Redundant) {
  const DlxModel m = build_dlx();
  const BitConstants bc = analyze_bit_constants(m.dp);
  const NetId slt32 = m.dp.find_net("ex.slt32");
  ASSERT_NE(slt32, kNoNet);
  EXPECT_TRUE(is_redundant(bc, {slt32, 31, false}));
  EXPECT_FALSE(is_redundant(bc, {slt32, 31, true}));
  EXPECT_FALSE(is_redundant(bc, {slt32, 0, false}));
}

TEST(Observability, SliceHidesUpperBits) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a", 32);
  const NetId low = b.slice("low", a, 0, 8);
  b.output("o", low);
  const ObservableBits ob = analyze_observable_bits(nl);
  EXPECT_TRUE(ob.is_observable(a, 0));
  EXPECT_TRUE(ob.is_observable(a, 7));
  EXPECT_FALSE(ob.is_observable(a, 8));
  EXPECT_FALSE(ob.is_observable(a, 31));
}

TEST(Observability, AdderCarrySmearsDownward) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a", 8);
  const NetId c = b.input("c", 8);
  const NetId sum = b.add("sum", a, c);
  const NetId mid = b.slice("mid", sum, 4, 1);  // only bit 4 observed
  b.output("o", mid);
  const ObservableBits ob = analyze_observable_bits(nl);
  // Bits 0..4 of the operands can reach bit 4 through carries; 5..7 cannot.
  EXPECT_TRUE(ob.is_observable(a, 0));
  EXPECT_TRUE(ob.is_observable(a, 4));
  EXPECT_FALSE(ob.is_observable(a, 5));
  EXPECT_FALSE(ob.is_observable(a, 7));
}

TEST(Observability, ComparatorMakesOperandsFullyObservable) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a", 16);
  const NetId c = b.input("c", 16);
  const NetId eq = b.predicate("eq", ModuleKind::kEq, a, c);
  b.output("o", eq);
  const ObservableBits ob = analyze_observable_bits(nl);
  EXPECT_TRUE(ob.is_observable(a, 15));
  EXPECT_TRUE(ob.is_observable(c, 0));
}

TEST(Observability, DeadConeUnobservable) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a", 8);
  const NetId dead = b.not_w("dead", a);
  (void)dead;
  const NetId live = b.not_w("live", a);
  b.output("o", live);
  const ObservableBits ob = analyze_observable_bits(nl);
  EXPECT_EQ(ob.mask[dead], 0u);
  EXPECT_TRUE(ob.is_observable(live, 3));
}

TEST(Observability, DlxLoadShifterUpperBitsUnobservable) {
  // mem.rshift only feeds byte/half slices: its bits [31:16] can never
  // reach an observation point - the proof the Table-1 post-mortem uses.
  const DlxModel m = build_dlx();
  const ObservableBits ob = analyze_observable_bits(m.dp);
  const NetId rshift = m.dp.find_net("mem.rshift");
  ASSERT_NE(rshift, kNoNet);
  EXPECT_TRUE(ob.is_observable(rshift, 0));
  EXPECT_TRUE(ob.is_observable(rshift, 15));
  EXPECT_FALSE(ob.is_observable(rshift, 16));
  EXPECT_FALSE(ob.is_observable(rshift, 31));
}

TEST(Observability, DlxMainBusesFullyObservable) {
  const DlxModel m = build_dlx();
  const ObservableBits ob = analyze_observable_bits(m.dp);
  for (const char* name : {"ex.alu_add", "exmem.result", "memwb.value"}) {
    const NetId n = m.dp.find_net(name);
    EXPECT_EQ(ob.mask[n], 0xFFFFFFFFull) << name;
  }
}

TEST(Redundancy, DlxCampaignSubset) {
  const DlxModel m = build_dlx();
  const auto all = enumerate_bus_ssl(m.dp);
  const auto red = redundant_subset(m.dp, all);
  // A modest but nonzero slice of the enumerated errors is provably
  // undetectable (constant lane bits, zext upper bits).
  EXPECT_GT(red.size(), 3u);
  EXPECT_LT(red.size(), all.size() / 4);
}

}  // namespace
}  // namespace hltg
