// Tests of DPRELAX discrete relaxation: module backsolve rules and
// end-to-end constraint solving on the DLX window.
#include <gtest/gtest.h>

#include "core/dprelax.h"
#include "isa/encode.h"
#include "util/word.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

RelaxConstraint eq(const char* net, unsigned cycle, std::uint64_t value,
                   std::uint64_t mask = ~0ull) {
  RelaxConstraint c;
  c.net = model().dp.find_net(net);
  EXPECT_NE(c.net, kNoNet) << net;
  c.cycle = cycle;
  c.value = value;
  c.mask = mask;
  c.why = net;
  return c;
}

DpRelaxResult run(RelaxVars& vars, std::vector<RelaxConstraint> cons,
                  unsigned window = 12) {
  DpRelax relax(model(), window);
  return relax.solve(vars, cons, {});
}

TEST(DpRelax, SolvesRegisterFileValue) {
  // Make operand A of the instruction in EX at cycle 2 equal 0xDEADBEEF.
  RelaxVars vars;
  auto r = run(vars, {eq("ex.a_byp", 2, 0xDEADBEEF)});
  EXPECT_EQ(r.status, TgStatus::kSuccess);
  // Verify by re-simulation.
  const WindowCapture cap = capture_window(model(), vars.to_test(), 4);
  EXPECT_EQ(cap.net(2, model().dp.find_net("ex.a_byp")), 0xDEADBEEFu);
}

TEST(DpRelax, SolvesAdderOutput) {
  RelaxVars vars;
  auto r = run(vars, {eq("ex.alu_add", 2, 1234)});
  EXPECT_EQ(r.status, TgStatus::kSuccess);
  const WindowCapture cap = capture_window(model(), vars.to_test(), 4);
  EXPECT_EQ(cap.net(2, model().dp.find_net("ex.alu_add")), 1234u);
}

TEST(DpRelax, SolvesSingleBitConstraint) {
  RelaxVars vars;
  auto r = run(vars, {eq("ex.alu_xor", 3, 1, 1)});  // bit 0 only
  EXPECT_EQ(r.status, TgStatus::kSuccess);
  const WindowCapture cap = capture_window(model(), vars.to_test(), 5);
  EXPECT_EQ(cap.net(3, model().dp.find_net("ex.alu_xor")) & 1, 1u);
}

TEST(DpRelax, SolvesStsEquality) {
  // Force the fwdA/MEM comparator true at cycle 3 (rs1 of the EX
  // instruction equals the MEM instruction's destination).
  RelaxVars vars;
  auto r = run(vars, {eq("sts.fwda_mem", 3, 1, 1)});
  EXPECT_EQ(r.status, TgStatus::kSuccess);
}

TEST(DpRelax, SolvesStsDisequality) {
  RelaxVars vars;
  auto r = run(vars, {eq("sts.dest_ex_nz", 3, 1, 1)});
  EXPECT_EQ(r.status, TgStatus::kSuccess);
}

TEST(DpRelax, SolvesConjunctionAcrossCycles) {
  RelaxVars vars;
  auto r = run(vars, {eq("ex.a_byp", 2, 0x55), eq("ex.a_byp", 3, 0xAA),
                      eq("ex.alu_add", 4, 7)});
  EXPECT_EQ(r.status, TgStatus::kSuccess);
  const WindowCapture cap = capture_window(model(), vars.to_test(), 6);
  EXPECT_EQ(cap.net(2, model().dp.find_net("ex.a_byp")), 0x55u);
  EXPECT_EQ(cap.net(3, model().dp.find_net("ex.a_byp")), 0xAAu);
  EXPECT_EQ(cap.net(4, model().dp.find_net("ex.alu_add")), 7u);
}

TEST(DpRelax, RespectsFixedOpcodeBits) {
  // Pin word 0 to a store opcode; a constraint demanding different opcode
  // bits on the same word must fail rather than clobber them.
  RelaxVars vars;
  vars.ensure_size(1);
  vars.imem[0] = 0x2Bu << 26;  // SW
  vars.imem_fixed[0] = 0x3Fu << 26;
  auto r = run(vars, {eq("if.instr", 0, 0, 0x3Fu << 26)});
  EXPECT_NE(r.status, TgStatus::kSuccess);
  EXPECT_EQ(vars.imem[0] >> 26, 0x2Bu);
}

TEST(DpRelax, GoodNotEqualsNudges) {
  RelaxVars vars;
  RelaxConstraint c = eq("ex.a_byp", 2, 0);
  c.kind = RelaxKind::kGoodNotEquals;
  auto r = run(vars, {c});
  EXPECT_EQ(r.status, TgStatus::kSuccess);
  const WindowCapture cap = capture_window(model(), vars.to_test(), 4);
  EXPECT_NE(cap.net(2, model().dp.find_net("ex.a_byp")), 0u);
}

TEST(DpRelax, GoodNetsDifferSeparates) {
  RelaxVars vars;
  RelaxConstraint c = eq("idex.a", 3, 0);
  c.kind = RelaxKind::kGoodNetsDiffer;
  c.net2 = model().dp.find_net("exmem.result");
  auto r = run(vars, {c});
  EXPECT_EQ(r.status, TgStatus::kSuccess);
  const WindowCapture cap = capture_window(model(), vars.to_test(), 5);
  EXPECT_NE(cap.net(3, model().dp.find_net("idex.a")),
            cap.net(3, model().dp.find_net("exmem.result")));
}

TEST(DpRelax, SiteDiffersWithInjection) {
  // Operand-swap error on the subtractor: relaxation must find operands
  // with a != b so good and erroneous outputs differ.
  const ModId sub = model().dp.find_module("ex.alu_sub");
  ASSERT_NE(sub, kNoMod);
  ErrorInjection inj;
  inj.swap_inputs.insert(sub);
  RelaxConstraint c;
  c.kind = RelaxKind::kSiteDiffers;
  c.net = model().dp.find_net("ex.alu_sub");
  c.cycle = 2;
  RelaxVars vars;
  DpRelax relax(model(), 8);
  auto r = relax.solve(vars, {c}, inj);
  EXPECT_EQ(r.status, TgStatus::kSuccess);
}

TEST(DpRelax, ImpossibleConstraintAborts) {
  // R0 read can never be nonzero: ID-stage operand of an instruction whose
  // rs1 field is fixed to 0.
  RelaxVars vars;
  vars.ensure_size(4);
  // Fix ALL bits of word 0 to an instruction reading r0: add r1, r0, r0.
  vars.imem[0] = encode({Op::kAdd, 0, 0, 1, 0});
  vars.imem_fixed[0] = 0xFFFFFFFFu;
  // Demand operand A (from r0) nonzero at the cycle word 0 is in EX, while
  // also pinning the bypass sources away is impractical - use a direct
  // constraint on the RF read output instead.
  auto r = run(vars, {eq("id.rf_a", 1, 5)});
  EXPECT_NE(r.status, TgStatus::kSuccess);
}

TEST(DpRelax, IterationBudgetRespected) {
  DpRelaxConfig cfg;
  cfg.max_iterations = 3;
  DpRelax relax(model(), 10, cfg);
  RelaxVars vars;
  std::vector<RelaxConstraint> cons = {eq("ex.a_byp", 2, 1),
                                       eq("ex.a_byp", 3, 2),
                                       eq("ex.a_byp", 4, 3),
                                       eq("ex.alu_add", 5, 4)};
  auto r = relax.solve(vars, cons, {});
  if (r.status != TgStatus::kSuccess) EXPECT_LE(r.iterations, 3u);
}

// Parameterized sweep: one representative net per module category, each
// solved for a value target at several cycles. Exercises the full set of
// backsolve rules on the real DLX window.
struct SweepCase {
  const char* net;
  std::uint64_t value;
  unsigned cycle;
};

class BacksolveSweep : public ::testing::TestWithParam<SweepCase> {};

INSTANTIATE_TEST_SUITE_P(
    Nets, BacksolveSweep,
    ::testing::Values(
        SweepCase{"ex.alu_add", 0x12345678, 2},   // adder
        SweepCase{"ex.alu_sub", 0x0000FFFF, 3},   // subtractor
        SweepCase{"ex.alu_and", 0x00FF00FF, 2},   // AND word gate
        SweepCase{"ex.alu_or", 0xF0F0F0F0, 3},    // OR word gate
        SweepCase{"ex.alu_xor", 0xAAAAAAAA, 4},   // XOR word gate
        SweepCase{"ex.alu_shl", 0x00000100, 2},   // shifter (value port)
        SweepCase{"ex.op2", 0x00000040, 2},       // operand mux
        SweepCase{"ex.a_byp", 0xCAFEBABE, 3},     // bypass mux output
        SweepCase{"idex.imm", 0xFFFF8000, 2},     // sign-extended immediate
        SweepCase{"idex.a", 0x13572468, 3},       // pipe register
        SweepCase{"exmem.result", 0x00C0FFEE, 4}, // EX/MEM latch
        SweepCase{"memwb.value", 0x0BADF00D, 5},  // MEM/WB latch
        SweepCase{"id.rf_a", 0x11112222, 2},      // register-file read
        SweepCase{"ex.slt32", 1, 3},              // predicate via zext
        SweepCase{"ex.seq32", 1, 2},              // equality predicate
        SweepCase{"mem.bem_b", 0x8, 4}),  // byte-lane decode: the select is
                                          // datapath-computed (addr offset),
                                          // so backsolve must retarget it
    [](const auto& info) {
      std::string n = info.param.net;
      for (char& c : n)
        if (c == '.') c = '_';
      return n + "_c" + std::to_string(info.param.cycle);
    });

TEST_P(BacksolveSweep, SolvesTarget) {
  const SweepCase& sc = GetParam();
  RelaxVars vars;
  const auto r = run(vars, {eq(sc.net, sc.cycle, sc.value)}, 12);
  ASSERT_EQ(r.status, TgStatus::kSuccess) << sc.net << " " << r.note;
  const WindowCapture cap =
      capture_window(model(), vars.to_test(), sc.cycle + 2);
  const NetId n = model().dp.find_net(sc.net);
  const std::uint64_t got = cap.net(sc.cycle, n);
  EXPECT_EQ(got & mask_bits(model().dp.net(n).width),
            sc.value & mask_bits(model().dp.net(n).width))
      << sc.net;
}

TEST(DpRelax, TestCaseRoundTrip) {
  RelaxVars vars;
  vars.ensure_size(2);
  vars.imem[1] = 42;
  vars.rf_init[5] = 7;
  vars.mem_init[0x40] = 9;
  const TestCase tc = vars.to_test();
  EXPECT_EQ(tc.imem[1], 42u);
  EXPECT_EQ(tc.rf_init[5], 7u);
  EXPECT_EQ(tc.dmem_init.at(0x40), 9u);
}

}  // namespace
}  // namespace hltg
