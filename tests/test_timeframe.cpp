// Tests of the conventional timeframe-organization baseline and its
// comparison against the pipeframe search (Sec. IV).
#include <gtest/gtest.h>

#include "baseline/timeframe.h"
#include "core/ctrljust.h"
#include "dlx/dlx.h"
#include "gatenet/levelize.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

GateId ctrl_bit(const char* net_name, unsigned bit = 0) {
  const NetId n = model().dp.find_net(net_name);
  EXPECT_NE(n, kNoNet) << net_name;
  return model().find_ctrl(n)->bits[bit];
}

TEST(Timeframe, SolvesSimpleObjective) {
  TimeframeJust tf(model().ctrl, 10);
  const TimeframeResult r = tf.solve({{ctrl_bit("ctrl.mem_we"), 3, true}});
  EXPECT_EQ(r.status, TgStatus::kSuccess) << r.note;
  EXPECT_GT(r.state_bits_decided, 0u);  // CSI decisions needed justification
}

TEST(Timeframe, EmptyObjectivesTrivial) {
  TimeframeJust tf(model().ctrl, 10);
  EXPECT_EQ(tf.solve({}).status, TgStatus::kSuccess);
}

TEST(Timeframe, RejectsBeyondWindow) {
  TimeframeJust tf(model().ctrl, 4);
  const TimeframeResult r = tf.solve({{ctrl_bit("ctrl.rf_we"), 9, true}});
  EXPECT_EQ(r.status, TgStatus::kFailure);
}

TEST(Timeframe, DetectsUnreachableStateDemand) {
  // rf_we at cycle 2 would require non-reset state in the fill frames.
  TimeframeJust tf(model().ctrl, 10);
  const TimeframeResult r = tf.solve({{ctrl_bit("ctrl.rf_we"), 2, true}});
  EXPECT_EQ(r.status, TgStatus::kFailure);
}

TEST(Timeframe, PipeframeDecidesFewerJustificationVariables) {
  // The structural claim of Sec. IV: in the timeframe organization, the
  // per-frame justification variables are the CSIs (n2 per stage); in the
  // pipeframe organization they are only the tertiary signals (n3), and our
  // CTRLJUST decides none at all (CPI/STS only). Check on live searches.
  const std::vector<CtrlObjective> objs = {
      {ctrl_bit("ctrl.mem_we"), 4, true}, {ctrl_bit("ctrl.rf_we"), 6, true}};

  // The pipeframe organization solves the compound problem...
  CtrlJust cj(model().ctrl, 10);
  const CtrlJustResult rp = cj.solve(objs);
  ASSERT_EQ(rp.status, TgStatus::kSuccess);

  // ... while the timeframe organization either dead-ends on an unreachable
  // decided state (no inter-frame backtracking - the conflict class Sec. IV
  // says cannot arise under the pipeframe organization) or pays for the
  // justification of decided CSI bits.
  TimeframeJust tf(model().ctrl, 10);
  const TimeframeResult rt = tf.solve(objs);
  if (rt.status == TgStatus::kSuccess) EXPECT_GT(rt.state_bits_decided, 0u);

  // The analytic decision-variable counts agree with the paper's claim.
  const GateNetStats st = analyze(model().ctrl);
  EXPECT_LT(st.pipeframe_justify_vars(), st.timeframe_justify_vars());
}

TEST(Timeframe, BudgetGraceful) {
  TimeframeConfig cfg;
  cfg.max_decisions = 1;
  TimeframeJust tf(model().ctrl, 10, cfg);
  const TimeframeResult r = tf.solve({{ctrl_bit("ctrl.mem_we"), 3, true}});
  EXPECT_EQ(r.status, TgStatus::kFailure);
}

}  // namespace
}  // namespace hltg
