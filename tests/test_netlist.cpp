#include <gtest/gtest.h>

#include "netlist/builder.h"
#include "netlist/check.h"
#include "netlist/eval.h"

namespace hltg {
namespace {

TEST(Netlist, BuilderWiresSinksAndDrivers) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a", 8);
  const NetId c = b.input("b", 8);
  const NetId y = b.add("y", a, c);
  EXPECT_EQ(nl.net(y).width, 8u);
  EXPECT_NE(nl.net(y).driver, kNoMod);
  EXPECT_EQ(nl.net(a).sinks.size(), 1u);
  EXPECT_EQ(nl.net(a).role, NetRole::kDPI);
}

TEST(Netlist, MultipleDriversRejected) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a", 8);
  const NetId y = b.not_w("y", a);
  Module m;
  m.name = "dup";
  m.kind = ModuleKind::kNotW;
  m.data_in = {a};
  m.out = y;
  EXPECT_THROW(nl.add_module(std::move(m)), std::logic_error);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a", 4);
  const NetId x = b.not_w("x", a);
  const NetId y = b.not_w("y", x);
  (void)y;
  const auto& order = nl.topo_order();
  // The driver of x must appear before the driver of y.
  std::size_t px = 0, py = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (nl.module(order[i]).out == x) px = i;
    if (nl.module(order[i]).out == y) py = i;
  }
  EXPECT_LT(px, py);
}

TEST(Netlist, RegisterBreaksCycles) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId q = b.predeclare("q", 8);
  const NetId one = b.constant("one", 8, 1);
  const NetId next = b.add("next", q, one);  // counter: q + 1
  b.reg_into(q, "q", next);
  EXPECT_NO_THROW(nl.topo_order());
}

TEST(Check, CleanCircuitPasses) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a", 8);
  const NetId c = b.input("c", 8);
  const NetId s = b.ctrl("s", 1);
  const NetId y = b.mux("y", s, {a, c});
  b.output("o", y);
  EXPECT_TRUE(check_netlist(nl).ok()) << check_netlist(nl).summary();
}

TEST(Check, CatchesUndrivenNet) {
  Netlist nl;
  nl.add_net("floating", 8);
  const CheckResult r = check_netlist(nl);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.summary().find("no driver"), std::string::npos);
}

TEST(Check, CatchesWidthMismatch) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a", 8);
  const NetId c = b.input("c", 4);
  NetId y = nl.add_net("y", 8);
  Module m;
  m.name = "bad_add";
  m.kind = ModuleKind::kAdd;
  m.data_in = {a, c};
  m.out = y;
  nl.add_module(std::move(m));
  EXPECT_FALSE(check_netlist(nl).ok());
}

TEST(Check, CatchesMuxSelectWidth) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a", 8);
  const NetId c = b.input("c", 8);
  const NetId d = b.input("d", 8);
  const NetId s = b.ctrl("s", 1);  // needs 2 bits for 3 inputs
  NetId y = nl.add_net("y", 8);
  Module m;
  m.name = "bad_mux";
  m.kind = ModuleKind::kMux;
  m.data_in = {a, c, d};
  m.ctrl_in = {s};
  m.out = y;
  nl.add_module(std::move(m));
  EXPECT_FALSE(check_netlist(nl).ok());
}

struct EvalFix {
  Netlist nl;
  Module mk(ModuleKind k, unsigned w, unsigned ow) {
    Module m;
    m.kind = k;
    m.data_in = {nl.add_net("a", w), nl.add_net("b", w)};
    m.out = nl.add_net("y", ow);
    return m;
  }
};

TEST(Eval, AddSubWrap) {
  EvalFix f;
  Module m = f.mk(ModuleKind::kAdd, 8, 8);
  EXPECT_EQ(eval_comb(f.nl, m, {200, 100}, {}), 44u);  // mod 256
  m.kind = ModuleKind::kSub;
  EXPECT_EQ(eval_comb(f.nl, m, {5, 10}, {}), 251u);
}

TEST(Eval, Predicates) {
  EvalFix f;
  Module m = f.mk(ModuleKind::kLt, 8, 1);
  EXPECT_EQ(eval_comb(f.nl, m, {0xFF, 1}, {}), 1u);  // -1 < 1 signed
  m.kind = ModuleKind::kLtU;
  EXPECT_EQ(eval_comb(f.nl, m, {0xFF, 1}, {}), 0u);
  m.kind = ModuleKind::kEq;
  EXPECT_EQ(eval_comb(f.nl, m, {7, 7}, {}), 1u);
  m.kind = ModuleKind::kNe;
  EXPECT_EQ(eval_comb(f.nl, m, {7, 7}, {}), 0u);
  m.kind = ModuleKind::kAddOvf;
  EXPECT_EQ(eval_comb(f.nl, m, {0x7F, 1}, {}), 1u);
  m.kind = ModuleKind::kSubOvf;
  EXPECT_EQ(eval_comb(f.nl, m, {0x80, 1}, {}), 1u);
}

TEST(Eval, Shifts) {
  EvalFix f;
  Module m = f.mk(ModuleKind::kShl, 8, 8);
  EXPECT_EQ(eval_comb(f.nl, m, {0x81, 1}, {}), 0x02u);
  m.kind = ModuleKind::kShrL;
  EXPECT_EQ(eval_comb(f.nl, m, {0x81, 1}, {}), 0x40u);
  m.kind = ModuleKind::kShrA;
  EXPECT_EQ(eval_comb(f.nl, m, {0x81, 1}, {}), 0xC0u);
  // Oversized shift amounts.
  m.kind = ModuleKind::kShl;
  EXPECT_EQ(eval_comb(f.nl, m, {0xFF, 9}, {}), 0u);
  m.kind = ModuleKind::kShrA;
  EXPECT_EQ(eval_comb(f.nl, m, {0x80, 20}, {}), 0xFFu);
}

TEST(Eval, MuxSelectsAndClamps) {
  Netlist nl;
  Module m;
  m.kind = ModuleKind::kMux;
  m.data_in = {nl.add_net("a", 8), nl.add_net("b", 8), nl.add_net("c", 8)};
  m.ctrl_in = {nl.add_net("s", 2)};
  m.out = nl.add_net("y", 8);
  EXPECT_EQ(eval_comb(nl, m, {10, 20, 30}, {1}), 20u);
  EXPECT_EQ(eval_comb(nl, m, {10, 20, 30}, {3}), 30u);  // clamped to last
}

TEST(Eval, SliceConcatExt) {
  Netlist nl;
  Module sl;
  sl.kind = ModuleKind::kSlice;
  sl.param = 4;
  sl.data_in = {nl.add_net("a", 16)};
  sl.out = nl.add_net("y", 8);
  EXPECT_EQ(eval_comb(nl, sl, {0xABCD}, {}), 0xBCu);

  Module cc;
  cc.kind = ModuleKind::kConcat;
  cc.data_in = {nl.add_net("lo", 4), nl.add_net("hi", 4)};
  cc.out = nl.add_net("y2", 8);
  EXPECT_EQ(eval_comb(nl, cc, {0xA, 0x5}, {}), 0x5Au);

  Module sx;
  sx.kind = ModuleKind::kSext;
  sx.data_in = {nl.add_net("a2", 4)};
  sx.out = nl.add_net("y3", 8);
  EXPECT_EQ(eval_comb(nl, sx, {0x8}, {}), 0xF8u);
  sx.kind = ModuleKind::kZext;
  EXPECT_EQ(eval_comb(nl, sx, {0x8}, {}), 0x08u);
}

TEST(Eval, WordGates) {
  EvalFix f;
  Module m = f.mk(ModuleKind::kAndW, 8, 8);
  EXPECT_EQ(eval_comb(f.nl, m, {0xF0, 0x3C}, {}), 0x30u);
  m.kind = ModuleKind::kOrW;
  EXPECT_EQ(eval_comb(f.nl, m, {0xF0, 0x3C}, {}), 0xFCu);
  m.kind = ModuleKind::kXorW;
  EXPECT_EQ(eval_comb(f.nl, m, {0xF0, 0x3C}, {}), 0xCCu);
  m.kind = ModuleKind::kNandW;
  EXPECT_EQ(eval_comb(f.nl, m, {0xF0, 0x3C}, {}), 0xCFu);
  m.kind = ModuleKind::kNorW;
  EXPECT_EQ(eval_comb(f.nl, m, {0xF0, 0x3C}, {}), 0x03u);
  m.kind = ModuleKind::kXnorW;
  EXPECT_EQ(eval_comb(f.nl, m, {0xF0, 0x3C}, {}), 0x33u);
}

TEST(ModuleKind, PaperClassification) {
  EXPECT_EQ(module_class(ModuleKind::kAdd), ModuleClass::kAddClass);
  EXPECT_EQ(module_class(ModuleKind::kEq), ModuleClass::kAddClass);
  EXPECT_EQ(module_class(ModuleKind::kAddOvf), ModuleClass::kAddClass);
  EXPECT_EQ(module_class(ModuleKind::kAndW), ModuleClass::kAndClass);
  EXPECT_EQ(module_class(ModuleKind::kShl), ModuleClass::kAndClass);
  EXPECT_EQ(module_class(ModuleKind::kMux), ModuleClass::kMuxClass);
  EXPECT_EQ(module_class(ModuleKind::kReg), ModuleClass::kStruct);
  EXPECT_TRUE(is_predicate(ModuleKind::kSubOvf));
  EXPECT_FALSE(is_predicate(ModuleKind::kAdd));
  EXPECT_TRUE(is_sink(ModuleKind::kMemWrite));
  EXPECT_TRUE(is_stateful(ModuleKind::kRfRead));
}

}  // namespace
}  // namespace hltg
