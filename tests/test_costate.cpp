// Tests of the Fig.-5 controllability / observability propagation tables.
#include <gtest/gtest.h>

#include <array>

#include "netlist/costate.h"

namespace hltg {
namespace {

constexpr std::array<CState, 4> kAllC = {CState::C1, CState::C2, CState::C3,
                                         CState::C4};

TEST(CState, AddClassAnyControlledInputControlsOutput) {
  for (CState other : kAllC) {
    const std::array<CState, 2> in = {CState::C4, other};
    EXPECT_EQ(c_add(in), CState::C4) << to_string(other);
  }
}

TEST(CState, AddClassUnknownDominatesBlocked) {
  const std::array<CState, 2> a = {CState::C1, CState::C2};
  EXPECT_EQ(c_add(a), CState::C1);
  const std::array<CState, 2> b = {CState::C2, CState::C3};
  EXPECT_EQ(c_add(b), CState::C2);
  const std::array<CState, 2> c = {CState::C3, CState::C3};
  EXPECT_EQ(c_add(c), CState::C3);
}

TEST(CState, AndClassNeedsAllInputs) {
  const std::array<CState, 2> all4 = {CState::C4, CState::C4};
  EXPECT_EQ(c_and(all4), CState::C4);
  const std::array<CState, 2> with1 = {CState::C4, CState::C1};
  EXPECT_EQ(c_and(with1), CState::C1);  // could still become controllable
  const std::array<CState, 2> with2 = {CState::C4, CState::C2};
  EXPECT_EQ(c_and(with2), CState::C2);
  const std::array<CState, 2> with3 = {CState::C4, CState::C3};
  EXPECT_EQ(c_and(with3), CState::C3);  // settled and hopeless
  const std::array<CState, 2> open3 = {CState::C1, CState::C3};
  EXPECT_EQ(c_and(open3), CState::C2);  // hopeless input but open decisions
}

TEST(CState, MuxFollowsSelectedInput) {
  const std::array<CState, 2> in = {CState::C3, CState::C4};
  EXPECT_EQ(c_mux(in, true, 0), CState::C3);
  EXPECT_EQ(c_mux(in, true, 1), CState::C4);
}

TEST(CState, MuxUnknownSelect) {
  const std::array<CState, 2> mixed = {CState::C3, CState::C4};
  EXPECT_EQ(c_mux(mixed, false, 0), CState::C1);
  const std::array<CState, 2> blocked = {CState::C3, CState::C2};
  EXPECT_EQ(c_mux(blocked, false, 0), CState::C2);
}

TEST(OState, AddClassNeedsSettledSides) {
  // Matches the Fig.-5 ADD2 O-table: side input must be C3 or C4.
  const std::array<CState, 1> c1 = {CState::C1};
  const std::array<CState, 1> c2 = {CState::C2};
  const std::array<CState, 1> c3 = {CState::C3};
  const std::array<CState, 1> c4 = {CState::C4};
  EXPECT_EQ(o_add(OState::O3, c1), OState::O1);
  EXPECT_EQ(o_add(OState::O3, c2), OState::O1);
  EXPECT_EQ(o_add(OState::O3, c3), OState::O3);
  EXPECT_EQ(o_add(OState::O3, c4), OState::O3);
  for (CState c : kAllC) {
    const std::array<CState, 1> side = {c};
    EXPECT_EQ(o_add(OState::O2, side), OState::O2);
    EXPECT_EQ(o_add(OState::O1, side), OState::O1);
  }
}

TEST(OState, AndClassNeedsControlledSides) {
  // Matches the Fig.-5 AND2 O-table: side C2/C3 kills observability even if
  // the output is observable.
  const std::array<CState, 1> c1 = {CState::C1};
  const std::array<CState, 1> c2 = {CState::C2};
  const std::array<CState, 1> c3 = {CState::C3};
  const std::array<CState, 1> c4 = {CState::C4};
  EXPECT_EQ(o_and(OState::O3, c4), OState::O3);
  EXPECT_EQ(o_and(OState::O3, c1), OState::O1);
  EXPECT_EQ(o_and(OState::O3, c2), OState::O2);
  EXPECT_EQ(o_and(OState::O3, c3), OState::O2);
  EXPECT_EQ(o_and(OState::O1, c2), OState::O2);  // hopeless regardless
  EXPECT_EQ(o_and(OState::O2, c4), OState::O2);
}

TEST(OState, MuxTable) {
  // Matches the Fig.-5 MUX2 O-table.
  EXPECT_EQ(o_mux(OState::O3, true, true), OState::O3);
  EXPECT_EQ(o_mux(OState::O3, true, false), OState::O2);
  EXPECT_EQ(o_mux(OState::O3, false, false), OState::O1);
  EXPECT_EQ(o_mux(OState::O2, true, true), OState::O2);
  EXPECT_EQ(o_mux(OState::O1, true, true), OState::O1);
}

TEST(CState, NaryGeneralization) {
  const std::array<CState, 4> in = {CState::C2, CState::C2, CState::C4,
                                    CState::C2};
  EXPECT_EQ(c_add(in), CState::C4);
  const std::array<CState, 4> in2 = {CState::C4, CState::C4, CState::C4,
                                     CState::C1};
  EXPECT_EQ(c_and(in2), CState::C1);
}

TEST(CState, Settled) {
  EXPECT_TRUE(is_settled(CState::C3));
  EXPECT_TRUE(is_settled(CState::C4));
  EXPECT_FALSE(is_settled(CState::C1));
  EXPECT_FALSE(is_settled(CState::C2));
}

}  // namespace
}  // namespace hltg
