// Tests of the shared deduction subsystem (src/solver/, docs/SOLVER.md):
// implication-engine propagation fixpoints and conflict cuts on hand-built
// cones, the learned-conflict store, objective canonicalization, the
// justification cache, and the engine-vs-legacy equivalence property over
// the CTRLJUST objective corpus.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/ctrljust.h"
#include "core/tg.h"
#include "core/unroll.h"
#include "dlx/dlx.h"
#include "errors/bus_ssl.h"
#include "errors/inject.h"
#include "gatenet/gate_builder.h"
#include "solver/implication.h"
#include "solver/justcache.h"
#include "solver/nogoods.h"
#include "solver/solver.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

GateId ctrl_bit(const char* net_name, unsigned bit = 0) {
  const NetId n = model().dp.find_net(net_name);
  EXPECT_NE(n, kNoNet) << net_name;
  return model().find_ctrl(n)->bits[bit];
}

// ---------------------------------------------------- propagation fixpoints

TEST(Implication, ForwardControllingValue) {
  GateNet gn;
  GateBuilder g(gn);
  const GateId a = g.var("a", SigRole::kCPI);
  const GateId b = g.var("b", SigRole::kCPI);
  const GateId y = g.and_("y", {a, b});
  const GateId z = g.or_("z", {a, b});
  ImplicationEngine eng(gn, 1);
  ASSERT_TRUE(eng.assert_lit(a, 0, false, false));
  ASSERT_TRUE(eng.propagate());
  EXPECT_EQ(eng.value(y, 0), L3::F);  // AND: controlling 0
  EXPECT_EQ(eng.value(z, 0), L3::X);  // OR still open
  ASSERT_TRUE(eng.assert_lit(b, 0, true, false));
  ASSERT_TRUE(eng.propagate());
  EXPECT_EQ(eng.value(z, 0), L3::T);
}

TEST(Implication, BackwardAndDemandsAllFanins) {
  GateNet gn;
  GateBuilder g(gn);
  const GateId a = g.var("a", SigRole::kCPI);
  const GateId b = g.var("b", SigRole::kCPI);
  const GateId c = g.var("c", SigRole::kCPI);
  const GateId y = g.and_("y", {a, b, c});
  ImplicationEngine eng(gn, 1);
  ASSERT_TRUE(eng.assert_lit(y, 0, true, false));
  ASSERT_TRUE(eng.propagate());
  EXPECT_EQ(eng.value(a, 0), L3::T);
  EXPECT_EQ(eng.value(b, 0), L3::T);
  EXPECT_EQ(eng.value(c, 0), L3::T);
}

TEST(Implication, BackwardLastFreeFaninForced) {
  // AND demanded 0 with every other fanin already 1: the one X fanin must
  // carry the controlling 0.
  GateNet gn;
  GateBuilder g(gn);
  const GateId a = g.var("a", SigRole::kCPI);
  const GateId b = g.var("b", SigRole::kCPI);
  const GateId c = g.var("c", SigRole::kCPI);
  const GateId y = g.and_("y", {a, b, c});
  ImplicationEngine eng(gn, 1);
  ASSERT_TRUE(eng.assert_lit(y, 0, false, false));
  ASSERT_TRUE(eng.assert_lit(a, 0, true, false));
  ASSERT_TRUE(eng.assert_lit(b, 0, true, false));
  ASSERT_TRUE(eng.propagate());
  EXPECT_EQ(eng.value(c, 0), L3::F);
}

TEST(Implication, XorBidirectional) {
  GateNet gn;
  GateBuilder g(gn);
  const GateId a = g.var("a", SigRole::kCPI);
  const GateId b = g.var("b", SigRole::kCPI);
  const GateId y = g.xor_("y", a, b);
  ImplicationEngine eng(gn, 1);
  ASSERT_TRUE(eng.assert_lit(y, 0, true, false));
  ASSERT_TRUE(eng.assert_lit(a, 0, false, false));
  ASSERT_TRUE(eng.propagate());
  EXPECT_EQ(eng.value(b, 0), L3::T);
}

TEST(Implication, DffCouplesAdjacentCycles) {
  GateNet gn;
  GateBuilder g(gn);
  const GateId d = g.var("d", SigRole::kCPI);
  const GateId q = g.dff("q", d);
  const GateId d2 = g.var("d2", SigRole::kCPI);
  const GateId q2 = g.dff("q2", d2);
  ImplicationEngine eng(gn, 3);
  // Forward: D at t forces Q at t+1.
  ASSERT_TRUE(eng.assert_lit(d, 1, true, false));
  ASSERT_TRUE(eng.propagate());
  EXPECT_EQ(eng.value(q, 2), L3::T);
  // Backward: a demanded Q at t forces D at t-1.
  ASSERT_TRUE(eng.assert_lit(q2, 2, true, false));
  ASSERT_TRUE(eng.propagate());
  EXPECT_EQ(eng.value(d2, 1), L3::T);
}

TEST(Implication, ResetFixpointAtConstruction) {
  GateNet gn;
  GateBuilder g(gn);
  const GateId d = g.var("d", SigRole::kCPI);
  const GateId q0 = g.dff("q0", d, /*reset_value=*/false);
  const GateId q1 = g.dff("q1", d, /*reset_value=*/true);
  const GateId k1 = g.const1();
  ImplicationEngine eng(gn, 2);
  EXPECT_EQ(eng.value(q0, 0), L3::F);
  EXPECT_EQ(eng.value(q1, 0), L3::T);
  EXPECT_EQ(eng.value(k1, 0), L3::T);
  EXPECT_EQ(eng.value(k1, 1), L3::T);
  EXPECT_EQ(eng.value(q0, 1), L3::X);  // depends on the free d@0
}

TEST(Implication, WatchedWideGate) {
  // A wide OR only wakes when a controlling 1 arrives or when the watched
  // fanins run out; either way the deduction fixpoint is the same as a
  // rescan. Drive all-but-one fanin to 0 with the output demanded 1: the
  // last fanin must be forced.
  GateNet gn;
  GateBuilder g(gn);
  std::vector<GateId> in;
  for (int i = 0; i < 10; ++i)
    in.push_back(g.var("i" + std::to_string(i), SigRole::kCPI));
  const GateId y = g.or_("y", in);
  ImplicationEngine eng(gn, 1);
  ASSERT_TRUE(eng.assert_lit(y, 0, true, false));
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(eng.assert_lit(in[i], 0, false, false));
    ASSERT_TRUE(eng.propagate());
  }
  EXPECT_EQ(eng.value(in[9], 0), L3::T);
  // And the controlling direction: a single 1 forces the output.
  ImplicationEngine eng2(gn, 1);
  ASSERT_TRUE(eng2.assert_lit(in[7], 0, true, false));
  ASSERT_TRUE(eng2.propagate());
  EXPECT_EQ(eng2.value(y, 0), L3::T);
}

TEST(Implication, PopRestoresValues) {
  GateNet gn;
  GateBuilder g(gn);
  const GateId a = g.var("a", SigRole::kCPI);
  const GateId b = g.var("b", SigRole::kCPI);
  const GateId y = g.and_("y", {a, b});
  ImplicationEngine eng(gn, 1);
  ASSERT_TRUE(eng.assert_lit(a, 0, true, false));
  ASSERT_TRUE(eng.propagate());
  eng.push_level();
  ASSERT_TRUE(eng.assert_lit(b, 0, true, true));
  ASSERT_TRUE(eng.propagate());
  EXPECT_EQ(eng.value(y, 0), L3::T);
  eng.pop_to(0);
  EXPECT_EQ(eng.value(b, 0), L3::X);
  EXPECT_EQ(eng.value(y, 0), L3::X);
  EXPECT_EQ(eng.value(a, 0), L3::T);  // level-0 root survives
}

// ----------------------------------------------------------- conflict cuts

TEST(Implication, ConflictCutContainsOnlyRelevantRoots) {
  GateNet gn;
  GateBuilder g(gn);
  const GateId a = g.var("a", SigRole::kCPI);
  const GateId b = g.var("b", SigRole::kCPI);
  const GateId c = g.var("c", SigRole::kCPI);  // irrelevant bystander
  const GateId y = g.and_("y", {a, b});
  (void)g.or_("z", {a, c});
  ImplicationEngine eng(gn, 1);
  ASSERT_TRUE(eng.assert_lit(c, 0, true, false));  // noise root
  ASSERT_TRUE(eng.assert_lit(y, 0, false, false));
  eng.push_level();
  ASSERT_TRUE(eng.assert_lit(a, 0, true, true));
  ASSERT_TRUE(eng.propagate());
  // Backward deduction has already forced b=0 (y=0 with a=1 leaves b as
  // the only controlling fanin), so demanding b=1 clashes at the root.
  eng.push_level();
  EXPECT_FALSE(eng.assert_lit(b, 0, true, true) && eng.propagate());
  ASSERT_TRUE(eng.in_conflict());
  const std::vector<Lit> cut = eng.conflict_cut();
  // The cut is the minimal root set on the contradiction path: a, b and the
  // y=0 demand. The bystander c never appears.
  ASSERT_EQ(cut.size(), 3u);
  for (const Lit& l : cut) EXPECT_NE(l.gate, c);
  EXPECT_TRUE(std::is_sorted(cut.begin(), cut.end()));
  // The cut is a valid nogood: its literals are exactly {a=1, b=1, y=0}.
  const std::vector<Lit> want = {{y, 0, false}, {a, 0, true}, {b, 0, true}};
  std::vector<Lit> sorted_want = want;
  std::sort(sorted_want.begin(), sorted_want.end());
  EXPECT_EQ(cut, sorted_want);
}

TEST(Implication, ClashingRootEntersCut) {
  // Asserting the opposite of an already-forced value must conflict, and
  // the clashing root itself must appear in the cut even though it never
  // entered the implication graph.
  GateNet gn;
  GateBuilder g(gn);
  const GateId a = g.var("a", SigRole::kCPI);
  const GateId y = g.not_("y", a);
  ImplicationEngine eng(gn, 1);
  ASSERT_TRUE(eng.assert_lit(a, 0, true, false));
  ASSERT_TRUE(eng.propagate());  // y = 0
  eng.push_level();
  EXPECT_FALSE(eng.assert_lit(y, 0, true, true) && eng.propagate());
  const std::vector<Lit> cut = eng.conflict_cut();
  EXPECT_FALSE(cut.empty());
  EXPECT_TRUE(std::any_of(cut.begin(), cut.end(),
                          [&](const Lit& l) { return l.gate == y; }));
}

// ------------------------------------------------------------ nogood store

TEST(Nogoods, LearnDedupeAndCap) {
  NogoodStore store(/*capacity=*/2, /*max_lits=*/3);
  EXPECT_TRUE(store.learn({{1, 0, true}, {2, 0, false}}));
  EXPECT_FALSE(store.learn({{1, 0, true}, {2, 0, false}}));  // duplicate
  EXPECT_FALSE(store.learn({}));                             // empty
  EXPECT_FALSE(store.learn(
      {{1, 0, true}, {2, 0, true}, {3, 0, true}, {4, 0, true}}));  // too wide
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.learn({{3, 1, true}}));
  EXPECT_EQ(store.size(), 2u);
  // Touch the first entry so the second is the LRU victim.
  store.touch(0);
  EXPECT_TRUE(store.learn({{4, 2, false}}));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.learned(), 3u);  // monotone across eviction
  bool first_still_there = false;
  for (std::size_t i = 0; i < store.size(); ++i)
    first_still_there |= store.lits(i) ==
                         std::vector<Lit>{{1, 0, true}, {2, 0, false}};
  EXPECT_TRUE(first_still_there);
}

// -------------------------------------------------------- canonicalization

TEST(Canonicalize, SortsAndDedupes) {
  std::vector<Lit> key;
  const std::vector<CtrlObjective> objs = {
      {7, 3, true}, {2, 1, false}, {7, 3, true}, {5, 1, true}};
  ASSERT_EQ(canonicalize_objectives(objs, &key), CanonStatus::kOk);
  const std::vector<Lit> want = {{2, 1, false}, {5, 1, true}, {7, 3, true}};
  EXPECT_EQ(key, want);
}

TEST(Canonicalize, DetectsContradiction) {
  std::vector<Lit> key;
  const std::vector<CtrlObjective> objs = {{7, 3, true}, {7, 3, false}};
  EXPECT_EQ(canonicalize_objectives(objs, &key),
            CanonStatus::kContradiction);
}

// ------------------------------------------------------ justification cache

TEST(JustCache, HitMissAndLru) {
  JustCache cache(/*capacity=*/2);
  const std::vector<Lit> k1 = {{1, 0, true}};
  const std::vector<Lit> k2 = {{2, 0, true}};
  const std::vector<Lit> k3 = {{3, 0, true}};
  EXPECT_EQ(cache.lookup(k1), nullptr);
  JustCacheEntry e;
  e.success = true;
  e.cpi_assignments.emplace_back(9, 0, true);
  cache.insert(k1, e);
  const JustCacheEntry* hit = cache.lookup(k1);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->success);
  ASSERT_EQ(hit->cpi_assignments.size(), 1u);
  cache.insert(k2, JustCacheEntry{});
  (void)cache.lookup(k1);  // bump k1 so k2 is the LRU victim
  cache.insert(k3, JustCacheEntry{});
  EXPECT_NE(cache.lookup(k1), nullptr);
  EXPECT_EQ(cache.lookup(k2), nullptr);  // evicted
  EXPECT_NE(cache.lookup(k3), nullptr);
  EXPECT_EQ(cache.hits(), 4u);
  EXPECT_EQ(cache.misses(), 2u);
}

// --------------------------------------- engine-vs-legacy equivalence

std::vector<std::vector<CtrlObjective>> objective_corpus() {
  std::vector<std::vector<CtrlObjective>> corpus;
  corpus.push_back({{ctrl_bit("ctrl.mem_we"), 3, true}});
  corpus.push_back({{ctrl_bit("ctrl.mem_we"), 4, true}});
  corpus.push_back({{ctrl_bit("ctrl.rf_we"), 2, true}});  // unreachable
  corpus.push_back({{ctrl_bit("ctrl.rf_we"), 4, true}});
  corpus.push_back({{ctrl_bit("ctrl.alu_sel", 0), 4, true}});
  corpus.push_back({{ctrl_bit("ctrl.alu_sel", 1), 4, true},
                    {ctrl_bit("ctrl.alu_sel", 0), 4, false}});
  corpus.push_back({{ctrl_bit("ctrl.alu_sel", 0), 4, true},
                    {ctrl_bit("ctrl.alu_sel", 1), 4, true},
                    {ctrl_bit("ctrl.alu_sel", 2), 4, true},
                    {ctrl_bit("ctrl.alu_sel", 3), 4, true}});  // no such op
  corpus.push_back({{ctrl_bit("ctrl.mem_we"), 3, true},
                    {ctrl_bit("ctrl.rf_we"), 4, true}});
  corpus.push_back({{ctrl_bit("ctrl.mem_we"), 3, true},
                    {ctrl_bit("ctrl.rf_we"), 5, true}});
  corpus.push_back({{ctrl_bit("ctrl.fwd_a"), 4, true}});
  return corpus;
}

bool witness_satisfies(const CtrlJustResult& r,
                       const std::vector<CtrlObjective>& objs,
                       unsigned cycles) {
  ControllerWindow w(model().ctrl, cycles);
  for (auto [g, t, v] : r.cpi_assignments) w.assign(g, t, l3_from_bool(v));
  for (auto [g, t, v] : r.sts_assignments) w.assign(g, t, l3_from_bool(v));
  w.imply();
  for (const CtrlObjective& o : objs)
    if (w.value(o.gate, o.cycle) != l3_from_bool(o.value)) return false;
  return true;
}

TEST(SolverEquivalence, EngineMatchesLegacyOnCorpus) {
  const unsigned kCycles = 10;
  SolverContext ctx;
  std::size_t idx = 0;
  for (const auto& objs : objective_corpus()) {
    SCOPED_TRACE("objective set #" + std::to_string(idx++));
    CtrlJustConfig legacy_cfg;
    legacy_cfg.use_engine = false;
    CtrlJust legacy(model().ctrl, kCycles, legacy_cfg);
    const CtrlJustResult lr = legacy.solve(objs);

    CtrlJust engine(model().ctrl, kCycles);
    engine.set_context(&ctx);
    const CtrlJustResult er = engine.solve(objs);

    EXPECT_EQ(lr.status, er.status);
    if (er.status == TgStatus::kSuccess)
      EXPECT_TRUE(witness_satisfies(er, objs, kCycles));
    if (lr.status == TgStatus::kSuccess)
      EXPECT_TRUE(witness_satisfies(lr, objs, kCycles));
  }
}

TEST(SolverEquivalence, CachedReplayMatchesLiveSolve) {
  // Solving the same objective set twice through one context: the second
  // solve must come from the cache with the identical witness.
  SolverContext ctx;
  const std::vector<CtrlObjective> objs = {{ctrl_bit("ctrl.mem_we"), 3, true}};
  CtrlJust cj(model().ctrl, 10);
  cj.set_context(&ctx);
  const CtrlJustResult first = cj.solve(objs);
  ASSERT_EQ(first.status, TgStatus::kSuccess);
  const CtrlJustResult second = cj.solve(objs);
  EXPECT_EQ(second.status, TgStatus::kSuccess);
  EXPECT_EQ(second.stats.cache_hits, 1u);
  EXPECT_EQ(second.cpi_assignments, first.cpi_assignments);
  EXPECT_EQ(second.sts_assignments, first.sts_assignments);
}

TEST(SolverEquivalence, CacheIsWindowIndependent) {
  // A definitive result transfers to any window that admits the objective
  // set (docs/SOLVER.md): the same key solved at a longer window hits.
  SolverContext ctx;
  const std::vector<CtrlObjective> objs = {{ctrl_bit("ctrl.mem_we"), 3, true}};
  CtrlJust small(model().ctrl, 10);
  small.set_context(&ctx);
  ASSERT_EQ(small.solve(objs).status, TgStatus::kSuccess);
  CtrlJust big(model().ctrl, 14);
  big.set_context(&ctx);
  const CtrlJustResult r = big.solve(objs);
  EXPECT_EQ(r.status, TgStatus::kSuccess);
  EXPECT_EQ(r.stats.cache_hits, 1u);
  EXPECT_TRUE(witness_satisfies(r, objs, 14));
}

// ----------------------------------- TG-level detection-outcome equivalence

TEST(SolverEquivalence, DetectionOutcomesMatchAcrossConfigs) {
  // Engine on (default), engine off (legacy), and engine-on/cache-off must
  // detect exactly the same errors - the solver is a search accelerator,
  // never a behaviour change. A subset of the Table-1 SSL population keeps
  // the test fast; bench_solver checks the full set.
  std::vector<DesignError> errors = wrap(enumerate_bus_ssl(model().dp));
  if (errors.size() > 40) errors.resize(40);

  auto detected = [&](bool engine, bool cache) {
    TgConfig cfg;
    cfg.solver.enable = engine;
    cfg.solver.use_cache = cache;
    TestGenerator tg(model(), cfg);
    std::vector<bool> out;
    for (const DesignError& e : errors)
      out.push_back(tg.generate(e).status == TgStatus::kSuccess);
    return out;
  };

  const std::vector<bool> on = detected(true, true);
  const std::vector<bool> off = detected(false, true);
  const std::vector<bool> nocache = detected(true, false);
  EXPECT_EQ(on, off);
  EXPECT_EQ(on, nocache);
}

// ------------------------------------------- watched vs rescan nogood apply

TEST(SolverEquivalence, WatchedNogoodsMatchRescan) {
  // The watch scheme is a pure application-cost optimization: identical
  // statuses and witnesses over the corpus, strictly fewer literal probes
  // than rescanning the whole store every propagation round. One shared
  // context per run so cuts learned early are applied in later solves
  // (the regime the watches exist for). Cache off to keep every solve live.
  const unsigned kCycles = 10;
  auto run = [&](bool watches) {
    SolverConfig cfg;
    cfg.use_cache = false;
    cfg.use_nogood_watches = watches;
    SolverContext ctx(cfg);
    std::vector<CtrlJustResult> results;
    std::uint64_t comparisons = 0;
    for (const auto& objs : objective_corpus()) {
      CtrlJust cj(model().ctrl, kCycles);
      cj.set_context(&ctx);
      results.push_back(cj.solve(objs));
      comparisons += results.back().stats.nogood_comparisons;
    }
    return std::pair(std::move(results), comparisons);
  };
  const auto [watched, wc] = run(true);
  const auto [rescan, rc] = run(false);
  ASSERT_EQ(watched.size(), rescan.size());
  for (std::size_t i = 0; i < watched.size(); ++i) {
    SCOPED_TRACE("objective set #" + std::to_string(i));
    EXPECT_EQ(watched[i].status, rescan[i].status);
    EXPECT_EQ(watched[i].cpi_assignments, rescan[i].cpi_assignments);
    EXPECT_EQ(watched[i].sts_assignments, rescan[i].sts_assignments);
  }
  EXPECT_GT(rc, 0u);  // the corpus must actually exercise the store
  EXPECT_LT(wc, rc);
}

// --------------------------------------------------------- DPRELAX memo

TEST(RelaxCacheTest, ReplaysDefinitiveResultsAndSkipsAborts) {
  RelaxCache cache(4);
  DpRelaxConfig cfg;
  RelaxVars entry;
  entry.imem = {0x11u, 0x22u};
  entry.imem_fixed = {0xFFu, 0x00u};
  std::vector<RelaxConstraint> cons(1);
  cons[0].net = 7;
  cons[0].cycle = 3;
  cons[0].value = 1;
  cons[0].why = "activation";
  ErrorInjection inj;
  const RelaxCache::Key key = RelaxCache::make_key(cfg, entry, cons, inj);

  DpRelaxResult out;
  RelaxVars vars = entry;
  EXPECT_FALSE(cache.find(key, &out, &vars));

  // A definitive result replays with the *final* vars the solve produced.
  DpRelaxResult solved;
  solved.status = TgStatus::kSuccess;
  solved.iterations = 5;
  RelaxVars final_vars = entry;
  final_vars.imem[1] = 0x33u;
  cache.store(key, solved, final_vars);
  ASSERT_TRUE(cache.find(key, &out, &vars));
  EXPECT_EQ(out.status, TgStatus::kSuccess);
  EXPECT_EQ(out.iterations, 5u);
  EXPECT_EQ(vars.imem, final_vars.imem);

  // Aborted (budget-fired) results are never stored: the retry runs live.
  std::vector<RelaxConstraint> cons2 = cons;
  cons2[0].cycle = 4;
  const RelaxCache::Key key2 = RelaxCache::make_key(cfg, entry, cons2, inj);
  EXPECT_NE(key, key2);  // distinct subproblems, distinct keys
  DpRelaxResult aborted;
  aborted.abort = AbortReason::kDeadline;
  cache.store(key2, aborted, final_vars);
  EXPECT_FALSE(cache.find(key2, &out, &vars));
  EXPECT_EQ(cache.failure_entries(), 0u);
}

TEST(RelaxCacheTest, CountsCrossSiteMissesSeparately) {
  // Two errors at different injection sites can pose the same relaxation
  // core. The memo must still miss (DPRELAX simulates the faulty machine,
  // so the result depends on the site) but the miss is tallied separately:
  // it measures how much of the miss traffic is injection-site dependence
  // rather than genuinely new subproblems.
  RelaxCache cache(4);
  DpRelaxConfig cfg;
  RelaxVars entry;
  entry.imem = {0x11u, 0x22u};
  std::vector<RelaxConstraint> cons(1);
  cons[0].net = 7;
  cons[0].cycle = 3;
  cons[0].value = 1;
  cons[0].why = "activation";

  ErrorInjection site_a;
  site_a.stuck.push_back({NetId{4}, 0, true});
  const RelaxCache::Key ka = RelaxCache::make_key(cfg, entry, cons, site_a);
  DpRelaxResult solved;
  solved.status = TgStatus::kSuccess;
  cache.store(ka, solved, entry);

  // Same core, different site: a miss, counted as cross-site.
  ErrorInjection site_b;
  site_b.stuck.push_back({NetId{9}, 2, false});
  const RelaxCache::Key kb = RelaxCache::make_key(cfg, entry, cons, site_b);
  DpRelaxResult out;
  RelaxVars vars = entry;
  EXPECT_FALSE(cache.find(kb, &out, &vars));
  EXPECT_EQ(cache.cross_site_misses(), 1u);

  // Different core (new constraint cycle): an ordinary miss.
  std::vector<RelaxConstraint> cons2 = cons;
  cons2[0].cycle = 9;
  const RelaxCache::Key kc = RelaxCache::make_key(cfg, entry, cons2, site_a);
  EXPECT_FALSE(cache.find(kc, &out, &vars));
  EXPECT_EQ(cache.cross_site_misses(), 1u);

  // The exact key still replays, and a hit is never a cross-site miss.
  EXPECT_TRUE(cache.find(ka, &out, &vars));
  EXPECT_EQ(cache.cross_site_misses(), 1u);
}

// --------------------------------------------- campaign-scope determinism

TEST(SolverEquivalence, CampaignScopeMatchesErrorScope) {
  // Campaign-lifetime deduction reuse must be outcome-neutral: the same
  // error sequence through one generator with scope kCampaign emits exactly
  // the tests the per-error-reset kError scope emits (the argument is in
  // solver/solver.h). A subset of the SSL population keeps the test fast.
  std::vector<DesignError> errors = wrap(enumerate_bus_ssl(model().dp));
  if (errors.size() > 30) errors.resize(30);

  struct Outcome {
    TgStatus status;
    AbortReason abort;
    unsigned test_length;
    std::vector<std::uint32_t> imem;
    std::array<std::uint32_t, 32> rf_init;
    std::map<std::uint32_t, std::uint32_t> dmem_init;
    bool operator==(const Outcome&) const = default;
  };
  auto run = [&](SolverScope scope, std::uint64_t* reuse) {
    TgConfig cfg;
    cfg.solver.scope = scope;
    TestGenerator tg(model(), cfg);
    std::vector<Outcome> out;
    for (const DesignError& e : errors) {
      const TgResult r = tg.generate(e);
      *reuse += r.stats.cache_hits + r.stats.relax_hits;
      out.push_back({r.status, r.stats.abort, r.test_length, r.test.imem,
                     r.test.rf_init, r.test.dmem_init});
    }
    return out;
  };
  std::uint64_t campaign_reuse = 0, error_reuse = 0;
  const auto campaign = run(SolverScope::kCampaign, &campaign_reuse);
  const auto fresh = run(SolverScope::kError, &error_reuse);
  EXPECT_EQ(campaign, fresh);
  // Carried state must actually fire across errors, not merely not hurt.
  EXPECT_GT(campaign_reuse, error_reuse);
}

}  // namespace
}  // namespace hltg
