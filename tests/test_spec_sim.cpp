#include <gtest/gtest.h>

#include "isa/asm.h"
#include "isa/spec_sim.h"

namespace hltg {
namespace {

TestCase make_tc(const std::string& src) {
  const AsmResult r = assemble(src);
  EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  TestCase tc;
  tc.imem = encode_program(r.program);
  return tc;
}

TEST(SpecSim, AluBasics) {
  TestCase tc = make_tc(
      "addi r1, r0, 7\n"
      "addi r2, r0, 5\n"
      "add r3, r1, r2\n"
      "sub r4, r1, r2\n"
      "and r5, r1, r2\n"
      "or r6, r1, r2\n"
      "xor r7, r1, r2\n");
  const ArchTrace t = spec_run(tc, 16);
  EXPECT_EQ(t.rf_final[3], 12u);
  EXPECT_EQ(t.rf_final[4], 2u);
  EXPECT_EQ(t.rf_final[5], 5u);
  EXPECT_EQ(t.rf_final[6], 7u);
  EXPECT_EQ(t.rf_final[7], 2u);
}

TEST(SpecSim, ShiftsAndCompares) {
  TestCase tc = make_tc(
      "addi r1, r0, -8\n"
      "addi r2, r0, 2\n"
      "sll r3, r1, r2\n"
      "srl r4, r1, r2\n"
      "sra r5, r1, r2\n"
      "slt r6, r1, r2\n"
      "sltu r7, r1, r2\n"
      "seq r8, r1, r1\n"
      "sne r9, r1, r2\n");
  const ArchTrace t = spec_run(tc, 16);
  EXPECT_EQ(t.rf_final[3], 0xFFFFFFE0u);
  EXPECT_EQ(t.rf_final[4], 0x3FFFFFFEu);
  EXPECT_EQ(t.rf_final[5], 0xFFFFFFFEu);
  EXPECT_EQ(t.rf_final[6], 1u);  // -8 < 2 signed
  EXPECT_EQ(t.rf_final[7], 0u);  // huge unsigned
  EXPECT_EQ(t.rf_final[8], 1u);
  EXPECT_EQ(t.rf_final[9], 1u);
}

TEST(SpecSim, ImmediateExtension) {
  TestCase tc = make_tc(
      "addi r1, r0, -1\n"       // sign-extended
      "ori r2, r0, 0xFFFF\n"    // zero-extended
      "lhi r3, 0x1234\n"
      "sltui r4, r0, 0xFFFF\n");
  const ArchTrace t = spec_run(tc, 8);
  EXPECT_EQ(t.rf_final[1], 0xFFFFFFFFu);
  EXPECT_EQ(t.rf_final[2], 0x0000FFFFu);
  EXPECT_EQ(t.rf_final[3], 0x12340000u);
  EXPECT_EQ(t.rf_final[4], 1u);
}

TEST(SpecSim, LoadStoreBytesHalvesWords) {
  TestCase tc = make_tc(
      "lhi r1, 0x8765\n"
      "ori r1, r1, 0x4321\n"   // r1 = 0x87654321
      "sw 0x100(r0), r1\n"
      "lb r2, 0x100(r0)\n"     // 0x21
      "lb r3, 0x103(r0)\n"     // 0x87 -> sign-extended
      "lbu r4, 0x103(r0)\n"
      "lh r5, 0x102(r0)\n"     // 0x8765 sign-extended
      "lhu r6, 0x100(r0)\n"    // 0x4321
      "lw r7, 0x100(r0)\n"
      "sb 0x104(r0), r1\n"
      "sh 0x10a(r0), r1\n"
      "lw r8, 0x104(r0)\n"
      "lw r9, 0x108(r0)\n");
  const ArchTrace t = spec_run(tc, 20);
  EXPECT_EQ(t.rf_final[2], 0x21u);
  EXPECT_EQ(t.rf_final[3], 0xFFFFFF87u);
  EXPECT_EQ(t.rf_final[4], 0x87u);
  EXPECT_EQ(t.rf_final[5], 0xFFFF8765u);
  EXPECT_EQ(t.rf_final[6], 0x4321u);
  EXPECT_EQ(t.rf_final[7], 0x87654321u);
  EXPECT_EQ(t.rf_final[8], 0x21u);            // byte store to empty word
  EXPECT_EQ(t.rf_final[9], 0x43210000u);      // half store to upper half
  ASSERT_EQ(t.writes.size(), 3u);
  EXPECT_EQ(t.writes[0], (MemWrite{0x100, 0x87654321u, 0xF}));
  EXPECT_EQ(t.writes[1], (MemWrite{0x104, 0x21u, 0x1}));
  EXPECT_EQ(t.writes[2], (MemWrite{0x108, 0x43210000u, 0xC}));
}

TEST(SpecSim, BranchesTakenAndNot) {
  TestCase tc = make_tc(
      "addi r1, r0, 1\n"
      "beqz r1, 2\n"       // not taken
      "addi r2, r0, 10\n"  // executed
      "bnez r1, 1\n"       // taken, skips next
      "addi r2, r0, 99\n"  // skipped
      "addi r3, r0, 3\n");
  const ArchTrace t = spec_run(tc, 12);
  EXPECT_EQ(t.rf_final[2], 10u);
  EXPECT_EQ(t.rf_final[3], 3u);
}

TEST(SpecSim, JumpAndLink) {
  TestCase tc = make_tc(
      "jal 1\n"            // to pc=12, r31 = 4... offset in words: nextpc + 1*4
      "addi r1, r0, 99\n"  // skipped
      "addi r2, r0, 5\n"
      "jr r31\n"           // back to 4
      "nop\n");
  // jal at pc 0: r31 = 4, target = 4 + 4 = 8 -> addi r2. jr r31 -> pc 4:
  // addi r1 executes the second time around.
  const ArchTrace t = spec_run(tc, 8);
  EXPECT_EQ(t.rf_final[31], 4u);
  EXPECT_EQ(t.rf_final[2], 5u);
  EXPECT_EQ(t.rf_final[1], 99u);
}

TEST(SpecSim, JalrLinksAndJumps) {
  TestCase tc = make_tc(
      "addi r1, r0, 16\n"
      "jalr r1\n"            // to pc 16, r31 = 8
      "addi r2, r0, 99\n"    // skipped
      "addi r3, r0, 98\n"    // skipped
      "addi r4, r0, 44\n");  // pc 16
  const ArchTrace t = spec_run(tc, 6);
  EXPECT_EQ(t.rf_final[31], 8u);
  EXPECT_EQ(t.rf_final[4], 44u);
  EXPECT_EQ(t.rf_final[2], 0u);
}

TEST(SpecSim, ShiftAmountsMaskedToFiveBits) {
  TestCase tc = make_tc(
      "addi r1, r0, 1\n"
      "addi r2, r0, 33\n"   // 33 & 31 == 1
      "sll r3, r1, r2\n"
      "slli r4, r1, 0\n");
  const ArchTrace t = spec_run(tc, 6);
  EXPECT_EQ(t.rf_final[3], 2u);
  EXPECT_EQ(t.rf_final[4], 1u);
}

TEST(SpecSim, PartialStoresMergeIntoWords) {
  TestCase tc = make_tc(
      "lhi r1, 0x1234\n"
      "ori r1, r1, 0x5678\n"
      "sw 0x100(r0), r1\n"
      "addi r2, r0, 0xAB\n"
      "sb 0x101(r0), r2\n"    // overwrite byte 1
      "lw r3, 0x100(r0)\n");
  const ArchTrace t = spec_run(tc, 8);
  EXPECT_EQ(t.rf_final[3], 0x1234AB78u);
}

TEST(SpecSim, R0StaysZero) {
  TestCase tc = make_tc("addi r0, r0, 55\nadd r1, r0, r0\n");
  const ArchTrace t = spec_run(tc, 4);
  EXPECT_EQ(t.rf_final[0], 0u);
  EXPECT_EQ(t.rf_final[1], 0u);
}

TEST(SpecSim, InitialStateRespected) {
  TestCase tc = make_tc("lw r2, 0(r1)\nadd r3, r1, r2\n");
  tc.rf_init[1] = 0x40;
  tc.dmem_init[0x40] = 1234;
  const ArchTrace t = spec_run(tc, 4);
  EXPECT_EQ(t.rf_final[2], 1234u);
  EXPECT_EQ(t.rf_final[3], 0x40u + 1234u);
}

TEST(SpecSim, RunsOffEndAsNops) {
  TestCase tc = make_tc("addi r1, r0, 1\n");
  SpecSimulator sim(tc);
  sim.run(50);
  EXPECT_EQ(sim.reg(1), 1u);
  EXPECT_EQ(sim.pc(), 200u);
}

TEST(SpecSim, UnalignedWordAccessAligns) {
  TestCase tc;
  tc.dmem_init[0x10] = 0xAABBCCDD;
  SparseMemory m;
  m.load(tc.dmem_init);
  EXPECT_EQ(m.read_word(0x12), 0xAABBCCDDu);  // auto-aligned
}

TEST(ArchTrace, DiffReportsMismatch) {
  ArchTrace a, b;
  a.rf_final[3] = 7;
  EXPECT_FALSE(a.diff(b).empty());
  EXPECT_TRUE(a.diff(a).empty());
  b.rf_final[3] = 7;
  b.writes.push_back({0, 1, 0xF});
  EXPECT_NE(a.diff(b).find("store count"), std::string::npos);
}

}  // namespace
}  // namespace hltg
