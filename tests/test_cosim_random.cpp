// Property test: on random well-formed programs the pipelined
// implementation is architecturally equivalent to the ISA specification.
// This is the linchpin correctness argument for using the implementation
// model as the error-injection vehicle.
#include <gtest/gtest.h>

#include "baseline/random_tg.h"
#include "sim/cosim.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

class RandomCosim : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCosim, ::testing::Range(0, 24));

TEST_P(RandomCosim, ImplementationMatchesSpec) {
  RandomTgConfig cfg;
  cfg.program_length = 30;
  Rng rng(1000 + GetParam());
  const TestCase tc = random_test(rng, cfg);
  const CosimResult r = cosim(model(), tc, drain_cycles(tc.imem.size()));
  EXPECT_TRUE(r.match) << r.diff;
}

class RandomCosimHazardHeavy : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCosimHazardHeavy,
                         ::testing::Range(0, 12));

TEST_P(RandomCosimHazardHeavy, TinyRegisterPoolMaximizesHazards) {
  RandomTgConfig cfg;
  cfg.program_length = 40;
  cfg.reg_pool = 3;  // heavy reuse: every second instruction has a hazard
  cfg.p_load = 25;
  cfg.p_branch = 8;
  Rng rng(9000 + GetParam());
  const TestCase tc = random_test(rng, cfg);
  const CosimResult r = cosim(model(), tc, drain_cycles(tc.imem.size()));
  EXPECT_TRUE(r.match) << r.diff;
}

TEST(RandomCosim, ExercisesStallsAndSquashes) {
  RandomTgConfig cfg;
  cfg.program_length = 60;
  cfg.reg_pool = 3;
  cfg.p_load = 30;
  cfg.p_branch = 10;
  std::uint64_t stalls = 0, squashes = 0;
  for (int s = 0; s < 8; ++s) {
    Rng rng(555 + s);
    const TestCase tc = random_test(rng, cfg);
    ProcSim sim(model(), tc);
    sim.run(drain_cycles(tc.imem.size()));
    stalls += sim.stall_cycles();
    squashes += sim.squashes();
  }
  EXPECT_GT(stalls, 0u);
  EXPECT_GT(squashes, 0u);
}

}  // namespace
}  // namespace hltg
