// Tests of the structural-Verilog exporter and the VCD waveform writer.
#include <gtest/gtest.h>

#include "dlx/export_verilog.h"
#include "isa/asm.h"
#include "netlist/dot.h"
#include "sim/vcd.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

TEST(VerilogExport, IdentSanitizer) {
  EXPECT_EQ(verilog_ident("ex.alu_add"), "ex_alu_add");
  EXPECT_EQ(verilog_ident("cpi.opcode[3]"), "cpi_opcode_3_");
  EXPECT_EQ(verilog_ident("0weird"), "n_0weird");
  EXPECT_EQ(verilog_ident(""), "n_");
}

TEST(VerilogExport, DatapathContainsEveryNet) {
  const std::string v = export_datapath_verilog(model().dp);
  EXPECT_NE(v.find("module dlx_datapath"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  for (NetId n = 0; n < model().dp.num_nets(); ++n)
    EXPECT_NE(v.find(verilog_ident(model().dp.net(n).name)),
              std::string::npos)
        << model().dp.net(n).name;
}

TEST(VerilogExport, DatapathHasStatePorts) {
  const std::string v = export_datapath_verilog(model().dp);
  EXPECT_NE(v.find("wb_rf_write_we"), std::string::npos);
  EXPECT_NE(v.find("mem_dwrite_bemask"), std::string::npos);
  EXPECT_NE(v.find("mem_dread_data"), std::string::npos);
}

TEST(VerilogExport, RegistersBecomeAlwaysBlocks) {
  const std::string v = export_datapath_verilog(model().dp);
  // One always block per datapath register.
  std::size_t count = 0, pos = 0;
  while ((pos = v.find("always @(posedge clk)", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  std::size_t regs = 0;
  for (ModId i = 0; i < model().dp.num_modules(); ++i)
    if (model().dp.module(i).kind == ModuleKind::kReg) ++regs;
  EXPECT_EQ(count, regs);
}

TEST(VerilogExport, ControllerExportsAllGateKinds) {
  const std::string v = export_controller_verilog(model().ctrl);
  EXPECT_NE(v.find("module dlx_controller"), std::string::npos);
  EXPECT_NE(v.find("cpi_opcode_0_"), std::string::npos);  // input
  EXPECT_NE(v.find("ctrl_rf_we_0_"), std::string::npos);  // CTRL output
  EXPECT_NE(v.find("<="), std::string::npos);             // DFFs
}

TEST(VerilogExport, TopTiesHalvesTogether) {
  const std::string v = export_top_verilog(model());
  EXPECT_NE(v.find("module dlx_top"), std::string::npos);
  EXPECT_NE(v.find("module dlx_datapath"), std::string::npos);
  EXPECT_NE(v.find("module dlx_controller"), std::string::npos);
}

TEST(VerilogExport, BalancedModuleEndmodule) {
  const std::string v = export_top_verilog(model());
  std::size_t mods = 0, ends = 0, pos = 0;
  while ((pos = v.find("\nmodule ", pos)) != std::string::npos) {
    ++mods;
    ++pos;
  }
  pos = 0;
  while ((pos = v.find("endmodule", pos)) != std::string::npos) {
    ++ends;
    ++pos;
  }
  EXPECT_EQ(mods, 3u);  // datapath, controller, top
  EXPECT_EQ(mods, ends);
}

TEST(DotExport, ClustersAndTertiaryHighlight) {
  const std::string d = export_datapath_dot(model().dp);
  EXPECT_NE(d.find("digraph dlx_datapath"), std::string::npos);
  for (const char* st : {"\"IF\"", "\"ID\"", "\"EX\"", "\"MEM\"", "\"WB\""})
    EXPECT_NE(d.find(st), std::string::npos) << st;
  EXPECT_NE(d.find("color=red"), std::string::npos);  // tertiary buses
  EXPECT_NE(d.find("ex.alu_add"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(d.begin(), d.end(), '{'),
            std::count(d.begin(), d.end(), '}'));
}

TestCase tiny_test() {
  const AsmResult r = assemble("addi r1, r0, 5\nsw 0x40(r0), r1\n");
  TestCase tc;
  tc.imem = encode_program(r.program);
  return tc;
}

TEST(Vcd, HeaderAndDefinitions) {
  const std::string v = dump_vcd(model(), tiny_test(), 8);
  EXPECT_NE(v.find("$timescale"), std::string::npos);
  EXPECT_NE(v.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(v.find("$var wire 32"), std::string::npos);
  EXPECT_NE(v.find("ctrl_cg_stall"), std::string::npos);
}

TEST(Vcd, TimeMarkersPerCycle) {
  const std::string v = dump_vcd(model(), tiny_test(), 6);
  for (int t = 0; t <= 6; ++t)
    EXPECT_NE(v.find("#" + std::to_string(t) + "\n"), std::string::npos) << t;
}

TEST(Vcd, OnlyChangesAfterFirstSample) {
  VcdWriter w(model());
  const NetId pc = model().dp.find_net("pc");
  w.add_net(pc);
  ProcSim sim(model(), tiny_test());
  for (int c = 0; c < 4; ++c) {
    sim.begin_cycle();
    w.sample(sim);
    sim.end_cycle();
  }
  const std::string v = w.render();
  // PC advances every cycle: 4 samples -> 4 value lines for signal code "!".
  std::size_t count = 0, pos = 0;
  while ((pos = v.find(" !\n", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 4u);
}

TEST(Vcd, UnchangedSignalEmittedOnce) {
  VcdWriter w(model());
  const NetId zero = model().dp.find_net("ex.zero32");
  w.add_net(zero);
  ProcSim sim(model(), tiny_test());
  for (int c = 0; c < 5; ++c) {
    sim.begin_cycle();
    w.sample(sim);
    sim.end_cycle();
  }
  const std::string v = w.render();
  std::size_t count = 0, pos = 0;
  while ((pos = v.find(" !\n", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 1u);  // constant: only the initial dump
}

}  // namespace
}  // namespace hltg
