// Campaign service (src/service): cache-key semantics, the two-tier
// content-addressed result cache (LRU + atomic disk store with
// quarantine-or-skip corruption handling and failpoint-provable
// crash-safety), the service core (single-flight coalescing, bounded
// admission, cancellation, byte-identical cached replies), and the
// unix-socket server end to end with concurrent clients.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iterator>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "errors/report.h"
#include "service/cache.h"
#include "service/client.h"
#include "service/request.h"
#include "service/server.h"
#include "service/service.h"
#include "service/supervisor.h"
#include "util/failpoint.h"
#include "util/minijson.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

std::string temp_dir(const char* tag) {
  const std::string d = testing::TempDir() + "hltg_service_" + tag + "_" +
                        std::to_string(::getpid());
  ::mkdir(d.c_str(), 0755);
  return d;
}

/// Truncating runner: real engine, real config wiring, but only the first
/// few errors of the plan's population - service behaviour without
/// campaign-sized test times.
CampaignRunner truncating_runner(std::size_t n) {
  return [n](const RequestPlan& plan, const CampaignConfig& ccfg) {
    RequestPlan p = plan;
    if (p.errors.size() > n) p.errors.resize(n);
    return run_campaign_plan(model(), p, ccfg);
  };
}

/// Synchronisation wrapper for submit(): collect the outcome and wait.
struct Waiter {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  RequestOutcome outcome;

  DoneFn fn() {
    return [this](const RequestOutcome& o) {
      std::lock_guard<std::mutex> lk(mu);
      outcome = o;
      done = true;
      cv.notify_all();
    };
  }
  const RequestOutcome& wait() {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [this] { return done; });
    return outcome;
  }
};

void wait_until_running(const CampaignService& svc, std::size_t n) {
  while (svc.stats().running < n)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

// ------------------------------------------------------------- cache key

TEST(CacheKey, NonSemanticFieldsShareAKey) {
  RequestSpec a;
  const RequestPlan pa = plan_request(model(), a);
  ASSERT_TRUE(pa.ok()) << pa.error;
  ASSERT_EQ(pa.cache_key.size(), 16u);

  RequestSpec b = a;
  b.jobs = 8;       // determinism contract: any worker count, same bytes
  b.lanes = 64;     // batch width is result-invariant
  b.subscribe = true;
  b.tag = "somebody else";
  const RequestPlan pb = plan_request(model(), b);
  ASSERT_TRUE(pb.ok()) << pb.error;
  EXPECT_EQ(pa.cache_key, pb.cache_key);
}

TEST(CacheKey, EverySemanticFieldChangesTheKey) {
  const std::string base = plan_request(model(), RequestSpec{}).cache_key;
  std::vector<std::pair<const char*, RequestSpec>> variants;
  auto add = [&](const char* what, std::function<void(RequestSpec&)> tweak) {
    RequestSpec s;
    tweak(s);
    variants.emplace_back(what, s);
  };
  add("model", [](RequestSpec& s) { s.model = "mse"; });
  add("stages", [](RequestSpec& s) { s.stages = "EX,MEM"; });
  add("window", [](RequestSpec& s) { s.window = 12; });
  add("retry_window", [](RequestSpec& s) { s.retry_window = 24; });
  add("deadline_ms", [](RequestSpec& s) { s.deadline_ms = 50; });
  add("max_backtracks", [](RequestSpec& s) { s.max_backtracks = 10; });
  add("max_decisions", [](RequestSpec& s) { s.max_decisions = 1000; });
  add("fallback", [](RequestSpec& s) { s.fallback = true; });
  add("solver", [](RequestSpec& s) { s.solver = false; });
  add("solver_scope", [](RequestSpec& s) { s.solver_scope = "campaign"; });
  add("drop", [](RequestSpec& s) { s.drop = true; });
  for (const auto& [what, spec] : variants) {
    const RequestPlan p = plan_request(model(), spec);
    ASSERT_TRUE(p.ok()) << what << ": " << p.error;
    EXPECT_NE(p.cache_key, base) << what << " must change the cache key";
  }
}

TEST(CacheKey, FallbackTriesOnlyMatterWhenFallbackIsOn) {
  RequestSpec off_a, off_b;
  off_b.fallback_tries = 7;  // dead knob while fallback is off
  EXPECT_EQ(plan_request(model(), off_a).cache_key,
            plan_request(model(), off_b).cache_key);

  RequestSpec on_a, on_b;
  on_a.fallback = on_b.fallback = true;
  on_b.fallback_tries = 7;
  EXPECT_NE(plan_request(model(), on_a).cache_key,
            plan_request(model(), on_b).cache_key);
}

TEST(CacheKey, RequestJsonRoundTripsThroughTheWireFormat) {
  RequestSpec s;
  s.model = "mse";
  s.stages = "EX,MEM";
  s.window = 11;
  s.deadline_ms = 12.5;
  s.fallback = true;
  s.solver_scope = "campaign";
  s.jobs = 4;
  s.tag = "with \"quotes\" and\nnewline";
  const MiniJson j("{" + request_fields_json(s) + "}");
  const ParsedRequest parsed = parse_request(j);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.spec.model, s.model);
  EXPECT_EQ(parsed.spec.stages, s.stages);
  EXPECT_EQ(parsed.spec.window, s.window);
  EXPECT_EQ(parsed.spec.deadline_ms, s.deadline_ms);
  EXPECT_EQ(parsed.spec.fallback, s.fallback);
  EXPECT_EQ(parsed.spec.jobs, s.jobs);
  EXPECT_EQ(parsed.spec.tag, s.tag);
  EXPECT_EQ(plan_request(model(), parsed.spec).cache_key,
            plan_request(model(), s).cache_key);
}

TEST(RequestPlan, RejectsNonsense) {
  RequestSpec bad_model;
  bad_model.model = "sse";
  EXPECT_FALSE(plan_request(model(), bad_model).ok());

  RequestSpec bad_stages;
  bad_stages.stages = "NOPE";
  EXPECT_FALSE(plan_request(model(), bad_stages).ok());

  RequestSpec bad_scope;
  bad_scope.solver_scope = "galaxy";
  EXPECT_FALSE(plan_request(model(), bad_scope).ok());

  RequestSpec drop_jobs;
  drop_jobs.drop = true;
  drop_jobs.jobs = 4;
  EXPECT_FALSE(plan_request(model(), drop_jobs).ok());
}

// ---------------------------------------------------------- result cache

TEST(ResultCache, MemoryLruEvictsLeastRecentlyUsed) {
  ResultCache c(ResultCacheConfig{"", 2});
  c.insert("aa", "one");
  c.insert("bb", "two");
  std::string p;
  EXPECT_TRUE(c.lookup("aa", &p));  // aa is now most recent
  c.insert("cc", "three");          // evicts bb
  EXPECT_FALSE(c.lookup("bb", &p));
  EXPECT_TRUE(c.lookup("aa", &p));
  EXPECT_EQ(p, "one");
  EXPECT_TRUE(c.lookup("cc", &p));
  EXPECT_EQ(p, "three");
  const ResultCacheStats s = c.stats();
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.memory_hits, 3u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 3u);
}

TEST(ResultCache, DiskEntriesSurviveRestartAndPromoteIntoMemory) {
  const std::string dir = temp_dir("roundtrip");
  const std::string payload = "model,error\nssl,x\n";
  {
    ResultCache c(ResultCacheConfig{dir, 4});
    std::string why;
    ASSERT_TRUE(c.insert("deadbeef01234567", payload, &why)) << why;
  }
  ResultCache warm(ResultCacheConfig{dir, 4});
  std::string p;
  ASSERT_TRUE(warm.lookup("deadbeef01234567", &p));
  EXPECT_EQ(p, payload);
  EXPECT_EQ(warm.stats().disk_hits, 1u);
  ASSERT_TRUE(warm.lookup("deadbeef01234567", &p));
  EXPECT_EQ(warm.stats().memory_hits, 1u);  // promoted, no second disk read
}

TEST(ResultCache, CorruptDiskEntryIsQuarantinedNotServed) {
  const std::string dir = temp_dir("corrupt");
  const std::string key = "abcdef0123456789";
  {
    ResultCache c(ResultCacheConfig{dir, 4});
    ASSERT_TRUE(c.insert(key, "trustworthy payload"));
  }
  const std::string path = dir + "/" + key + ".res";
  {
    // Flip the last payload byte: magic and length still check, CRC must
    // catch it.
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(bytes.size(), 12u);
    bytes.back() = static_cast<char>(bytes.back() ^ 0x5a);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ResultCache c(ResultCacheConfig{dir, 4});
  std::string p;
  EXPECT_FALSE(c.lookup(key, &p));
  EXPECT_EQ(c.stats().quarantined, 1u);
  EXPECT_FALSE(std::ifstream(path).good());  // set aside, not left behind
  EXPECT_TRUE(std::ifstream(path + ".quarantine").good());

  // The next insertion of the key repairs the entry.
  ASSERT_TRUE(c.insert(key, "fresh payload"));
  ResultCache again(ResultCacheConfig{dir, 4});
  ASSERT_TRUE(again.lookup(key, &p));
  EXPECT_EQ(p, "fresh payload");
}

TEST(ResultCache, TruncatedDiskEntryIsQuarantined) {
  const std::string dir = temp_dir("truncated");
  const std::string key = "00112233445566aa";
  {
    ResultCache c(ResultCacheConfig{dir, 4});
    ASSERT_TRUE(c.insert(key, "a payload long enough to truncate"));
  }
  const std::string path = dir + "/" + key + ".res";
  ::truncate(path.c_str(), 9);  // torn mid-header
  ResultCache c(ResultCacheConfig{dir, 4});
  std::string p;
  EXPECT_FALSE(c.lookup(key, &p));
  EXPECT_EQ(c.stats().quarantined, 1u);
}

TEST(ResultCache, PersistFailureDegradesToMemoryOnly) {
  const std::string dir = temp_dir("degrade");
  ResultCache c(ResultCacheConfig{dir, 4});
  failpoint::configure("cache.write=eio@1");
  std::string why;
  EXPECT_FALSE(c.insert("feedfacefeedface", "payload", &why));
  EXPECT_NE(why.find("feedfacefeedface"), std::string::npos);
  EXPECT_EQ(c.stats().persist_failures, 1u);
  // The memory tier still answers...
  std::string p;
  EXPECT_TRUE(c.lookup("feedfacefeedface", &p));
  EXPECT_EQ(p, "payload");
  // ...but a restarted cache finds nothing on disk (and no torn file).
  ResultCache cold(ResultCacheConfig{dir, 4});
  EXPECT_FALSE(cold.lookup("feedfacefeedface", &p));
  EXPECT_EQ(cold.stats().quarantined, 0u);
}

// ------------------------------------------- cache crash-safety (fork'ed)

/// Run `body` in a fork'ed child and expect the armed failpoint to kill it.
void expect_killed(const std::function<void()>& body) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    body();
    _exit(0);  // survived: the failpoint did not fire
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), failpoint::kKillExitCode);
}

TEST(ResultCacheCrash, KillBeforePublishLeavesTheOldEntryIntact) {
  const std::string key = "0123456789abcdef";
  for (const char* spec : {"cache.write=kill@1", "cache.fsync=kill@1",
                           "cache.rename=kill@1"}) {
    const std::string dir = temp_dir("kill_before");
    {
      ResultCache c(ResultCacheConfig{dir, 4});
      ASSERT_TRUE(c.insert(key, "old complete payload"));
    }
    expect_killed([&] {
      failpoint::configure(spec);
      ResultCache c(ResultCacheConfig{dir, 4});
      c.insert(key, "new payload the crash must not tear");
    });
    // The kill struck before the rename published the new entry: a
    // restarted cache serves the complete old payload, never a torn mix.
    ResultCache c(ResultCacheConfig{dir, 4});
    std::string p;
    ASSERT_TRUE(c.lookup(key, &p)) << spec;
    EXPECT_EQ(p, "old complete payload") << spec;
    EXPECT_EQ(c.stats().quarantined, 0u) << spec;
    std::remove((dir + "/" + key + ".res").c_str());
    std::remove((dir + "/" + key + ".res.tmp").c_str());
  }
}

TEST(ResultCacheCrash, KillAfterPublishLeavesTheNewEntryIntact) {
  const std::string dir = temp_dir("kill_after");
  const std::string key = "fedcba9876543210";
  {
    ResultCache c(ResultCacheConfig{dir, 4});
    ASSERT_TRUE(c.insert(key, "old"));
  }
  expect_killed([&] {
    failpoint::configure("cache.rename=kill-after@1");
    ResultCache c(ResultCacheConfig{dir, 4});
    c.insert(key, "new payload, fully published");
  });
  ResultCache c(ResultCacheConfig{dir, 4});
  std::string p;
  ASSERT_TRUE(c.lookup(key, &p));
  EXPECT_EQ(p, "new payload, fully published");
  EXPECT_EQ(c.stats().quarantined, 0u);
}

// -------------------------------------------------------- service core

TEST(Service, CompletesARequestAndAnswersTheRepeatFromTheCache) {
  ServiceConfig scfg;
  scfg.executors = 1;
  scfg.runner_override = truncating_runner(2);
  CampaignService svc(model(), scfg);

  RequestSpec spec;
  Waiter w1;
  const SubmitResult r1 = svc.submit(spec, w1.fn());
  ASSERT_TRUE(r1.ok) << r1.error;
  EXPECT_FALSE(r1.cached);
  const RequestOutcome first = w1.wait();
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.id, r1.id);
  EXPECT_EQ(first.key, r1.key);
  EXPECT_FALSE(first.csv.empty());
  EXPECT_EQ(first.attempted, 2u);

  // The repeat is answered synchronously with the identical bytes.
  Waiter w2;
  const SubmitResult r2 = svc.submit(spec, w2.fn());
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_TRUE(r2.cached);
  const RequestOutcome second = w2.wait();
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(second.csv, first.csv);
  EXPECT_NE(second.id, first.id);
  // Counters are recovered from the cached payload, not zeroed.
  EXPECT_EQ(second.attempted, first.attempted);
  EXPECT_EQ(second.detected, first.detected);

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.submitted, 2u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.cache.hits, 1u);
  EXPECT_EQ(s.cache.insertions, 1u);
}

TEST(Service, CsvMatchesTheOfflineEngineOnTheStableColumns) {
  ServiceConfig scfg;
  scfg.executors = 1;
  scfg.runner_override = truncating_runner(3);
  CampaignService svc(model(), scfg);

  RequestSpec spec;
  Waiter w;
  ASSERT_TRUE(svc.submit(spec, w.fn()).ok);
  const RequestOutcome got = w.wait();
  ASSERT_TRUE(got.ok) << got.error;

  // Offline reference: same plan, same engine wiring, no service.
  RequestPlan plan = plan_request(model(), spec);
  ASSERT_TRUE(plan.ok());
  plan.errors.resize(3);
  CampaignConfig ccfg;
  ccfg.budget = plan.budget;
  ccfg.design_hash = plan.design_hash;
  ccfg.solver_config_hash = plan.config_hash;
  const std::string offline =
      campaign_csv(model().dp, run_campaign_plan(model(), plan, ccfg));

  // Columns 1-8 are deterministic; 9-12 are wall-clock timings.
  auto stable = [](const std::string& csv) {
    std::istringstream in(csv);
    std::string line, out;
    while (std::getline(in, line)) {
      std::size_t pos = 0;
      for (int commas = 0; commas < 8 && pos != std::string::npos; ++commas)
        pos = line.find(',', pos + 1);
      out += line.substr(0, pos);
      out += '\n';
    }
    return out;
  };
  EXPECT_EQ(stable(got.csv), stable(offline));
}

TEST(Service, CoalescesIdenticalInFlightRequests) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> runs{0};

  ServiceConfig scfg;
  scfg.executors = 1;
  scfg.runner_override = [&](const RequestPlan& plan,
                             const CampaignConfig& ccfg) {
    ++runs;
    {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return release; });
    }
    return truncating_runner(1)(plan, ccfg);
  };
  CampaignService svc(model(), scfg);

  RequestSpec spec;
  Waiter w1, w2;
  const SubmitResult r1 = svc.submit(spec, w1.fn());
  ASSERT_TRUE(r1.ok) << r1.error;
  const SubmitResult r2 = svc.submit(spec, w2.fn());
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_TRUE(r2.coalesced);
  EXPECT_EQ(r1.key, r2.key);
  EXPECT_NE(r1.id, r2.id);

  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
  }
  cv.notify_all();
  const RequestOutcome o1 = w1.wait();
  const RequestOutcome o2 = w2.wait();
  EXPECT_TRUE(o1.ok && o2.ok);
  EXPECT_EQ(o1.csv, o2.csv);
  EXPECT_EQ(o1.id, r1.id);  // each subscriber sees its own id
  EXPECT_EQ(o2.id, r2.id);
  EXPECT_EQ(runs.load(), 1);  // the campaign ran once for both

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.coalesced, 1u);
  EXPECT_EQ(s.completed, 1u);
}

TEST(Service, BoundedQueueRejectsOverload) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;

  ServiceConfig scfg;
  scfg.executors = 1;
  scfg.queue_capacity = 1;
  scfg.runner_override = [&](const RequestPlan& plan,
                             const CampaignConfig& ccfg) {
    {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return release; });
    }
    return truncating_runner(1)(plan, ccfg);
  };
  CampaignService svc(model(), scfg);

  // Three distinct requests: one running, one queued, one over the bound.
  RequestSpec a, b, c;
  a.window = 10;
  b.window = 11;
  c.window = 12;
  Waiter wa, wb;
  ASSERT_TRUE(svc.submit(a, wa.fn()).ok);
  wait_until_running(svc, 1);  // a is on the executor, the queue is empty
  ASSERT_TRUE(svc.submit(b, wb.fn()).ok);
  const SubmitResult rc = svc.submit(c, nullptr);
  EXPECT_FALSE(rc.ok);
  EXPECT_NE(rc.error.find("queue full"), std::string::npos);
  EXPECT_EQ(svc.stats().rejected_overload, 1u);

  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_TRUE(wa.wait().ok);
  EXPECT_TRUE(wb.wait().ok);
}

TEST(Service, CancelStopsAFlightCooperatively) {
  ServiceConfig scfg;
  scfg.executors = 1;
  scfg.runner_override = [](const RequestPlan& plan,
                            const CampaignConfig& ccfg) {
    // Stand-in for the engine's between-errors cancel check.
    while (!ccfg.cancel->stop_requested())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    CampaignResult r;
    r.interrupted = true;
    r.stats.total = plan.errors.size();
    return r;
  };
  CampaignService svc(model(), scfg);

  Waiter w;
  const SubmitResult r = svc.submit(RequestSpec{}, w.fn());
  ASSERT_TRUE(r.ok) << r.error;
  wait_until_running(svc, 1);
  EXPECT_TRUE(svc.cancel(r.id));
  const RequestOutcome o = w.wait();
  EXPECT_FALSE(o.ok);
  EXPECT_TRUE(o.cancelled);
  EXPECT_NE(o.error.find("cancelled"), std::string::npos);
  EXPECT_FALSE(svc.cancel(r.id));  // already completed: unknown id
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.cancelled, 1u);
  EXPECT_EQ(s.completed, 0u);
  // An interrupted sweep is never cached: the repeat runs fresh.
  EXPECT_EQ(s.cache.insertions, 0u);
}

TEST(Service, RejectsInvalidRequestsWithoutAnId) {
  CampaignService svc(model(), ServiceConfig{});
  RequestSpec bad;
  bad.model = "nope";
  const SubmitResult r = svc.submit(bad, nullptr);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(svc.stats().rejected_invalid, 1u);
}

TEST(Probe, DirectoryNestedUnderARegularFileIsRejected) {
  // Works even as root: mkdir under a regular file fails for any uid.
  const std::string file = testing::TempDir() + "hltg_service_plain_file";
  std::ofstream(file) << "x";
  std::string why;
  EXPECT_FALSE(probe_writable_dir(file + "/nested", &why));
  EXPECT_FALSE(why.empty());
  std::remove(file.c_str());
}

// ----------------------------------------------------- socket end to end

struct ClientResult {
  bool ok = false;
  bool cached = false;
  std::string key;
  std::string csv;
  std::string error;
  int progress = 0;
};

/// One full client conversation: connect, submit, collect events until the
/// result.
ClientResult run_client(const std::string& socket_path,
                        const RequestSpec& spec) {
  ClientResult out;
  ServiceClient c;
  std::string why;
  if (!c.connect(socket_path, &why)) {
    out.error = why;
    return out;
  }
  if (!c.send_line("{\"op\":\"submit\"," + request_fields_json(spec) + "}")) {
    out.error = "send failed";
    return out;
  }
  std::string line;
  while (c.read_line(&line)) {
    const MiniJson j(line);
    std::string event;
    if (!j.ok() || !j.get_string("event", &event)) {
      out.error = "unparseable: " + line;
      return out;
    }
    if (event == "error") {
      j.get_string("error", &out.error);
      return out;
    }
    if (event == "progress") {
      ++out.progress;
      continue;
    }
    if (event == "ack") continue;
    if (event == "result") {
      j.get_bool("ok", &out.ok);
      j.get_bool("cached", &out.cached);
      j.get_string("key", &out.key);
      j.get_string("csv", &out.csv);
      if (!out.ok) j.get_string("error", &out.error);
      return out;
    }
    out.error = "unexpected event: " + event;
    return out;
  }
  out.error = "connection closed without a result";
  return out;
}

TEST(ServiceServer, EightConcurrentClientsHalfDuplicatesAllByteIdentical) {
  ServiceConfig scfg;
  scfg.executors = 2;
  scfg.cache_dir = temp_dir("e2e_cache");
  scfg.runner_override = truncating_runner(2);
  CampaignService svc(model(), scfg);
  ServerConfig srvcfg;
  srvcfg.socket_path = testing::TempDir() + "hltg_service_e2e.sock";
  ServiceServer server(svc, srvcfg);
  std::string why;
  ASSERT_TRUE(server.start(&why)) << why;

  // 8 clients, 4 distinct requests, each submitted twice concurrently.
  std::vector<ClientResult> results(8);
  std::vector<std::thread> clients;
  for (int i = 0; i < 8; ++i)
    clients.emplace_back([&, i] {
      RequestSpec spec;
      spec.window = 10 + static_cast<unsigned>(i % 4);
      results[static_cast<std::size_t>(i)] =
          run_client(srvcfg.socket_path, spec);
    });
  for (std::thread& t : clients) t.join();

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(results[static_cast<std::size_t>(i)].ok)
        << "client " << i << ": " << results[static_cast<std::size_t>(i)].error;
    ASSERT_FALSE(results[static_cast<std::size_t>(i)].csv.empty());
  }
  // Duplicates got the identical bytes, whether coalesced or cache-served.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].key,
              results[static_cast<std::size_t>(i + 4)].key);
    EXPECT_EQ(results[static_cast<std::size_t>(i)].csv,
              results[static_cast<std::size_t>(i + 4)].csv);
  }
  // Exactly 4 campaigns ran; every duplicate rode a flight or hit the cache.
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.cache.hits + s.coalesced, 4u);

  // A latecomer is answered from the cache with the same bytes.
  RequestSpec again;
  again.window = 10;
  const ClientResult late = run_client(srvcfg.socket_path, again);
  ASSERT_TRUE(late.ok) << late.error;
  EXPECT_TRUE(late.cached);
  EXPECT_EQ(late.csv, results[0].csv);

  server.stop();
  EXPECT_FALSE(std::ifstream(srvcfg.socket_path).good());  // unlinked
}

TEST(ServiceServer, SubscribedClientStreamsProgressRows) {
  ServiceConfig scfg;
  scfg.executors = 1;
  scfg.spool_dir = temp_dir("e2e_spool");
  scfg.runner_override = truncating_runner(2);
  CampaignService svc(model(), scfg);
  ServerConfig srvcfg;
  srvcfg.socket_path = testing::TempDir() + "hltg_service_progress.sock";
  ServiceServer server(svc, srvcfg);
  std::string why;
  ASSERT_TRUE(server.start(&why)) << why;

  RequestSpec spec;
  spec.subscribe = true;
  const ClientResult r = run_client(srvcfg.socket_path, spec);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GE(r.progress, 2);  // one journal row per attempted error
  server.stop();
}

TEST(ServiceServer, ControlOpsAnswer) {
  CampaignService svc(model(), ServiceConfig{});
  ServerConfig srvcfg;
  srvcfg.socket_path = testing::TempDir() + "hltg_service_ops.sock";
  ServiceServer server(svc, srvcfg);
  std::string why;
  ASSERT_TRUE(server.start(&why)) << why;

  ServiceClient c;
  ASSERT_TRUE(c.connect(srvcfg.socket_path, &why)) << why;
  std::string line;

  ASSERT_TRUE(c.send_line("{\"op\":\"ping\"}"));
  ASSERT_TRUE(c.read_line(&line, 5000));
  EXPECT_EQ(line, "{\"event\":\"pong\"}");

  ASSERT_TRUE(c.send_line("{\"op\":\"stats\"}"));
  ASSERT_TRUE(c.read_line(&line, 5000));
  {
    const MiniJson j(line);
    std::string event;
    std::uint64_t submitted = 99;
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE(j.get_string("event", &event));
    EXPECT_EQ(event, "stats");
    EXPECT_TRUE(j.get_u64("submitted", &submitted));
    EXPECT_EQ(submitted, 0u);
  }

  ASSERT_TRUE(c.send_line("{\"op\":\"cancel\",\"id\":12345}"));
  ASSERT_TRUE(c.read_line(&line, 5000));
  {
    const MiniJson j(line);
    bool ok = true;
    ASSERT_TRUE(j.ok());
    EXPECT_TRUE(j.get_bool("ok", &ok));
    EXPECT_FALSE(ok);  // unknown id
  }

  EXPECT_FALSE(server.shutdown_requested());
  ASSERT_TRUE(c.send_line("{\"op\":\"shutdown\"}"));
  ASSERT_TRUE(c.read_line(&line, 5000));
  EXPECT_EQ(line, "{\"event\":\"shutdown\"}");
  EXPECT_TRUE(server.shutdown_requested());
  server.stop();
}

// ------------------------------------------------------ worker supervision

TEST(Supervisor, WorkerRecordsCrossThePipeCrcFramed) {
  const WorkerExit we = run_worker(
      [](int wfd) {
        if (!write_worker_record(wfd, kWorkerRecSummary, "{\"ok\":true}"))
          return 2;
        if (!write_worker_record(wfd, kWorkerRecCsv, "a,b\n1,2\n")) return 2;
        if (!write_worker_record(wfd, kWorkerRecTable1, "Table 1")) return 2;
        return 0;
      },
      SupervisorConfig{}, {});
  ASSERT_TRUE(we.ran);
  EXPECT_TRUE(we.result_ok) << we.describe();
  EXPECT_EQ(we.summary_json, "{\"ok\":true}");
  EXPECT_EQ(we.csv, "a,b\n1,2\n");
  EXPECT_EQ(we.table1, "Table 1");
}

TEST(Supervisor, NonzeroExitIsACrashEvenWithASummary) {
  const WorkerExit we = run_worker(
      [](int wfd) {
        write_worker_record(wfd, kWorkerRecSummary, "{\"ok\":true}");
        return 7;
      },
      SupervisorConfig{}, {});
  ASSERT_TRUE(we.ran);
  EXPECT_FALSE(we.result_ok);
  EXPECT_EQ(we.exit_code, 7);
  EXPECT_EQ(we.describe(), "exit 7");
}

TEST(Supervisor, SignalDeathIsAStructuredCrashNotSupervisorDeath) {
  const WorkerExit we =
      run_worker([](int) -> int { std::abort(); }, SupervisorConfig{}, {});
  ASSERT_TRUE(we.ran);
  EXPECT_FALSE(we.result_ok);
  EXPECT_EQ(we.term_signal, SIGABRT);
  EXPECT_NE(we.describe().find("signal 6"), std::string::npos);
}

TEST(Supervisor, TornRecordIsDiscardedAndNotAResult) {
  const WorkerExit we = run_worker(
      [](int wfd) {
        // Valid frame start, then death mid-payload: the CRC check must
        // reject the tail and the missing summary makes this a crash.
        const char partial[] = "WREC\x01\x00\x00\x00\xff\x00\x00\x00";
        (void)!::write(wfd, partial, sizeof partial - 1);
        return 0;
      },
      SupervisorConfig{}, {});
  ASSERT_TRUE(we.ran);
  EXPECT_FALSE(we.result_ok);
  EXPECT_TRUE(we.summary_json.empty());
}

TEST(Supervisor, DeadlineEscalatesSigtermToSigkill) {
  SupervisorConfig cfg;
  cfg.deadline_seconds = 0.2;
  cfg.term_grace_seconds = 0.15;
  const WorkerExit we = run_worker(
      [](int) {
        std::signal(SIGTERM, SIG_IGN);  // worst case: ignores the grace
        for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return 0;
      },
      cfg, {});
  ASSERT_TRUE(we.ran);
  EXPECT_TRUE(we.timed_out);
  EXPECT_FALSE(we.result_ok);
  EXPECT_EQ(we.term_signal, SIGKILL);
}

TEST(Supervisor, BackoffIsZeroThenJitteredExponentialCapped) {
  SupervisorConfig cfg;
  cfg.backoff_base_ms = 100;
  cfg.backoff_max_ms = 2000;
  EXPECT_EQ(backoff_delay_ms(cfg, 1, 42), 0);  // first attempt never waits
  const double d2 = backoff_delay_ms(cfg, 2, 42);
  EXPECT_GE(d2, 50.0);
  EXPECT_LT(d2, 150.0);
  const double d3 = backoff_delay_ms(cfg, 3, 42);
  EXPECT_GE(d3, 100.0);
  EXPECT_LT(d3, 300.0);
  const double big = backoff_delay_ms(cfg, 30, 42);
  EXPECT_GE(big, 1000.0);
  EXPECT_LE(big, 3000.0);  // capped nominal, jitter < 1.5
  // Deterministic per (seed, salt, attempt); salted flights decorrelate.
  EXPECT_EQ(backoff_delay_ms(cfg, 2, 42), d2);
  EXPECT_NE(backoff_delay_ms(cfg, 2, 43), d2);
}

TEST(CrashBreaker, PoisonsAtMaxCrashesAndReloadsFromBundles) {
  const std::string dir = temp_dir("breaker");
  const std::string key = "00112233445566aa";
  CrashBreaker b(2, dir);
  EXPECT_FALSE(b.poisoned(key));
  EXPECT_EQ(b.record_crash(key, "signal 6 (Aborted)", "{}"), 1u);
  EXPECT_FALSE(b.poisoned(key));
  EXPECT_EQ(b.record_crash(key, "signal 9 (Killed)", "{}"), 2u);
  std::string why;
  ASSERT_TRUE(b.poisoned(key, &why));
  EXPECT_NE(why.find("poisoned"), std::string::npos);
  EXPECT_EQ(b.poisoned_count(), 1u);

  // The bundle is durable: a fresh breaker (daemon restart) reloads it.
  ASSERT_TRUE(
      std::ifstream(dir + "/poisoned_" + key + ".json").good());
  CrashBreaker b2(2, dir);
  std::string why2;
  ASSERT_TRUE(b2.poisoned(key, &why2));
  EXPECT_NE(why2.find("reloaded"), std::string::npos);
}

// ---------------------------------------------------- supervised service

TEST(ServiceSupervised, WorkerResultMatchesInprocBytes) {
  RequestSpec spec;
  std::string inproc_csv;
  {
    ServiceConfig scfg;
    scfg.executors = 1;
    scfg.runner_override = truncating_runner(2);
    CampaignService svc(model(), scfg);
    Waiter w;
    ASSERT_TRUE(svc.submit(spec, w.fn()).ok);
    const RequestOutcome& o = w.wait();
    ASSERT_TRUE(o.ok) << o.error;
    inproc_csv = o.csv;
  }
  ServiceConfig scfg;
  scfg.executors = 1;
  scfg.supervise = true;
  scfg.runner_override = truncating_runner(2);
  CampaignService svc(model(), scfg);
  Waiter w;
  ASSERT_TRUE(svc.submit(spec, w.fn()).ok);
  const RequestOutcome& o = w.wait();
  ASSERT_TRUE(o.ok) << o.error;
  // The fork boundary must not change results. Columns 1-8 are the
  // deterministic ones; 9-12 are wall-clock timings that differ per run.
  auto stable = [](const std::string& csv) {
    std::istringstream in(csv);
    std::string line, out;
    while (std::getline(in, line)) {
      std::size_t pos = 0;
      for (int commas = 0; commas < 8 && pos != std::string::npos; ++commas)
        pos = line.find(',', pos + 1);
      out += line.substr(0, pos);
      out += '\n';
    }
    return out;
  };
  EXPECT_EQ(stable(o.csv), stable(inproc_csv));
  EXPECT_EQ(o.attempted, 2u);
  EXPECT_FALSE(o.table1.empty());

  // The parent inserted the worker's payload: the repeat is a cache hit
  // answered with the identical bytes the worker piped back.
  Waiter w2;
  const SubmitResult r2 = svc.submit(spec, w2.fn());
  EXPECT_TRUE(r2.cached);
  EXPECT_EQ(w2.wait().csv, o.csv);
}

TEST(ServiceSupervised, CrashedWorkerIsRetriedAndSucceeds) {
  const std::string marker = temp_dir("crash_once") + "/crashed";
  ServiceConfig scfg;
  scfg.executors = 1;
  scfg.supervise = true;
  scfg.supervisor.max_crashes = 3;
  scfg.supervisor.backoff_base_ms = 1;
  scfg.supervisor.backoff_max_ms = 2;
  // First worker attempt crashes (leaving the marker); the re-forked one
  // finds the marker and completes. Disk state is the only channel that
  // survives the worker process boundary.
  scfg.runner_override = [marker](const RequestPlan& plan,
                                  const CampaignConfig& ccfg) {
    if (!std::ifstream(marker).good()) {
      std::ofstream(marker) << "1";
      std::abort();
    }
    return truncating_runner(1)(plan, ccfg);
  };
  CampaignService svc(model(), scfg);
  Waiter w;
  RequestSpec spec;
  ASSERT_TRUE(svc.submit(spec, w.fn()).ok);
  const RequestOutcome& o = w.wait();
  EXPECT_TRUE(o.ok) << o.error;
  EXPECT_FALSE(o.csv.empty());
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.worker_crashes, 1u);
  EXPECT_EQ(s.worker_restarts, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.poisoned, 0u);
}

TEST(ServiceSupervised, RepeatCrashesPoisonTheKeyTerminally) {
  ServiceConfig scfg;
  scfg.executors = 1;
  scfg.supervise = true;
  scfg.supervisor.max_crashes = 2;
  scfg.supervisor.backoff_base_ms = 1;
  scfg.supervisor.backoff_max_ms = 2;
  scfg.poison_dir = temp_dir("poison");
  scfg.runner_override = [](const RequestPlan&,
                            const CampaignConfig&) -> CampaignResult {
    std::abort();
  };
  CampaignService svc(model(), scfg);
  RequestSpec spec;
  Waiter w;
  const SubmitResult r = svc.submit(spec, w.fn());
  ASSERT_TRUE(r.ok);
  const RequestOutcome& o = w.wait();
  EXPECT_FALSE(o.ok);
  EXPECT_TRUE(o.poisoned);
  EXPECT_FALSE(o.transient);  // terminal: clients must not retry this
  EXPECT_NE(o.error.find("poisoned"), std::string::npos);
  {
    const ServiceStats s = svc.stats();
    EXPECT_EQ(s.worker_crashes, 2u);
    EXPECT_EQ(s.worker_restarts, 1u);
    EXPECT_EQ(s.poisoned, 1u);
  }

  // A resubmission of the same key is rejected synchronously - no queue
  // slot, no fork, the done callback fires inline with the terminal error.
  Waiter w2;
  const SubmitResult r2 = svc.submit(spec, w2.fn());
  EXPECT_TRUE(r2.ok);
  EXPECT_TRUE(r2.poisoned);
  const RequestOutcome& o2 = w2.wait();
  EXPECT_TRUE(o2.poisoned);
  EXPECT_EQ(svc.stats().rejected_poisoned, 1u);

  // The quarantine bundle is durable: a restarted service (same poison
  // dir, now with a runner that WOULD succeed) still refuses the key.
  ASSERT_TRUE(
      std::ifstream(scfg.poison_dir + "/poisoned_" + r.key + ".json").good());
  svc.drain();
  ServiceConfig scfg2 = scfg;
  scfg2.runner_override = truncating_runner(1);
  CampaignService svc2(model(), scfg2);
  Waiter w3;
  const SubmitResult r3 = svc2.submit(spec, w3.fn());
  EXPECT_TRUE(r3.poisoned);
  EXPECT_TRUE(w3.wait().poisoned);
}

TEST(ServiceSupervised, DeadlineKillIsTerminalNotRetried) {
  ServiceConfig scfg;
  scfg.executors = 1;
  scfg.supervise = true;
  scfg.supervisor.deadline_seconds = 0.2;
  scfg.supervisor.term_grace_seconds = 0.15;
  scfg.runner_override = [](const RequestPlan&,
                            const CampaignConfig&) -> CampaignResult {
    for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  };
  CampaignService svc(model(), scfg);
  Waiter w;
  ASSERT_TRUE(svc.submit(RequestSpec{}, w.fn()).ok);
  const RequestOutcome& o = w.wait();
  EXPECT_FALSE(o.ok);
  EXPECT_FALSE(o.poisoned);
  EXPECT_NE(o.error.find("deadline"), std::string::npos);
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.deadline_kills, 1u);
  EXPECT_EQ(s.worker_restarts, 0u);  // rerunning would time out identically
}

TEST(ServiceSupervised, CancelCrossesTheProcessBoundary) {
  ServiceConfig scfg;
  scfg.executors = 1;
  scfg.supervise = true;
  // The runner honours the cancel token the worker's SIGTERM handler
  // flips - the cooperative path, no SIGKILL involved.
  scfg.runner_override = [](const RequestPlan& plan,
                            const CampaignConfig& ccfg) {
    CampaignResult res;
    res.stats.total = plan.errors.size();
    while (!ccfg.cancel->stop_requested())
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    res.interrupted = true;
    return res;
  };
  CampaignService svc(model(), scfg);
  Waiter w;
  const SubmitResult r = svc.submit(RequestSpec{}, w.fn());
  ASSERT_TRUE(r.ok);
  wait_until_running(svc, 1);
  ASSERT_TRUE(svc.cancel(r.id));
  const RequestOutcome& o = w.wait();
  EXPECT_TRUE(o.cancelled) << o.error;
  EXPECT_FALSE(o.ok);
  EXPECT_EQ(svc.stats().cancelled, 1u);
  EXPECT_EQ(svc.stats().worker_crashes, 0u);  // a cancel is not a crash
}

TEST(Service, SpoolJournalsAreGarbageCollected) {
  ServiceConfig scfg;
  scfg.executors = 1;
  scfg.spool_dir = temp_dir("spool_gc");
  scfg.spool_keep = 1;
  scfg.runner_override = truncating_runner(1);
  CampaignService svc(model(), scfg);
  std::vector<std::string> journals;
  for (unsigned win : {10u, 11u, 12u}) {
    RequestSpec spec;
    spec.window = win;
    Waiter w;
    const SubmitResult r = svc.submit(spec, w.fn());
    ASSERT_TRUE(r.ok) << r.error;
    journals.push_back(r.journal_path);
    ASSERT_TRUE(w.wait().ok);
  }
  EXPECT_EQ(svc.stats().spool_gc, 2u);  // keep=1: two of three reclaimed
  EXPECT_FALSE(std::ifstream(journals[0]).good());
  EXPECT_FALSE(std::ifstream(journals[1]).good());
  EXPECT_TRUE(std::ifstream(journals[2]).good());
  svc.drain();  // drain reclaims the rest: nobody will tail them again
  EXPECT_FALSE(std::ifstream(journals[2]).good());
}

TEST(Service, DrainingRejectionIsFlaggedTransient) {
  ServiceConfig scfg;
  scfg.executors = 1;
  scfg.runner_override = truncating_runner(1);
  CampaignService svc(model(), scfg);
  svc.drain();
  const SubmitResult r = svc.submit(RequestSpec{}, {});
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.transient);  // a restarted daemon can serve this request
}

// ---------------------------------------------------- bounded disk cache

std::string hexkey(char c) { return std::string(16, c); }

TEST(ResultCacheBound, InsertEvictsLeastRecentlyUsedToFit) {
  const std::string dir = temp_dir("bound_insert");
  const std::string payload(100, 'x');  // 112 bytes per entry with header
  ResultCacheConfig cfg{dir, 8, 250};
  {
    ResultCache c(cfg);
    ASSERT_TRUE(c.insert(hexkey('1'), payload));
    ASSERT_TRUE(c.insert(hexkey('2'), payload));
    EXPECT_EQ(c.stats().disk_bytes, 224u);
    EXPECT_EQ(c.stats().evictions, 0u);
    ASSERT_TRUE(c.insert(hexkey('3'), payload));  // 336 > 250: evict '1'
    EXPECT_EQ(c.stats().evictions, 1u);
    EXPECT_EQ(c.stats().disk_bytes, 224u);
    EXPECT_EQ(c.stats().disk_entries, 2u);
  }
  EXPECT_FALSE(std::ifstream(dir + "/" + hexkey('1') + ".res").good());

  // The restart sees only the survivors, and a disk hit promotes its
  // entry to MRU: after touching '2', overflow evicts '3', not '2'.
  ResultCache c(cfg);
  std::string p;
  EXPECT_FALSE(c.lookup(hexkey('1'), &p));
  ASSERT_TRUE(c.lookup(hexkey('2'), &p));
  EXPECT_EQ(p, payload);
  ASSERT_TRUE(c.insert(hexkey('4'), payload));
  EXPECT_FALSE(std::ifstream(dir + "/" + hexkey('3') + ".res").good());
  ASSERT_TRUE(std::ifstream(dir + "/" + hexkey('2') + ".res").good());
}

TEST(ResultCacheBound, StartupEnforcesATightenedBudget) {
  const std::string dir = temp_dir("bound_startup");
  const std::string payload(100, 'y');
  {
    ResultCache c(ResultCacheConfig{dir, 8, 0});  // unbounded first life
    ASSERT_TRUE(c.insert(hexkey('a'), payload));
    ASSERT_TRUE(c.insert(hexkey('b'), payload));
    ASSERT_TRUE(c.insert(hexkey('c'), payload));
    EXPECT_EQ(c.stats().disk_bytes, 336u);
  }
  // The operator lowers --cache-max-bytes: startup evicts oldest-first
  // (the persisted index order) down to the new budget.
  ResultCache c(ResultCacheConfig{dir, 8, 250});
  EXPECT_EQ(c.stats().disk_entries, 2u);
  EXPECT_LE(c.stats().disk_bytes, 250u);
  std::string p;
  EXPECT_FALSE(c.lookup(hexkey('a'), &p));
  EXPECT_TRUE(c.lookup(hexkey('b'), &p));
  EXPECT_TRUE(c.lookup(hexkey('c'), &p));
}

TEST(ResultCacheBoundCrash, KillMidEvictionLeavesEveryEntryServable) {
  const std::string dir = temp_dir("bound_kill_evict");
  const std::string payload(100, 'z');
  {
    ResultCache c(ResultCacheConfig{dir, 8, 0});
    ASSERT_TRUE(c.insert(hexkey('d'), payload));
    ASSERT_TRUE(c.insert(hexkey('e'), payload));
  }
  expect_killed([&] {
    failpoint::configure("cache.evict=kill@1");
    ResultCache c(ResultCacheConfig{dir, 8, 150});  // startup must evict
  });
  // The kill struck before (or at) the unlink: whatever survived on disk
  // must be complete and servable, and a clean restart converges to the
  // budget - eviction is idempotent.
  ResultCache c(ResultCacheConfig{dir, 8, 150});
  EXPECT_LE(c.stats().disk_bytes, 150u);
  EXPECT_EQ(c.stats().quarantined, 0u);
  std::string p;
  std::size_t served = 0;
  for (const char k : {'d', 'e'})
    if (c.lookup(hexkey(k), &p)) {
      EXPECT_EQ(p, payload);
      ++served;
    }
  EXPECT_EQ(served, 1u);
}

TEST(ResultCacheBoundCrash, KillAtIndexPublishIsReconciledAtRestart) {
  const std::string dir = temp_dir("bound_kill_index");
  const std::string payload(100, 'w');
  expect_killed([&] {
    // Hit 1 of cache.rename publishes the entry; hit 2 is the index
    // sidecar. Killing there leaves a published entry the index missed.
    failpoint::configure("cache.rename=kill@2");
    ResultCache c(ResultCacheConfig{dir, 8, 1000});
    c.insert(hexkey('f'), payload);
  });
  ResultCache c(ResultCacheConfig{dir, 8, 1000});
  std::string p;
  ASSERT_TRUE(c.lookup(hexkey('f'), &p));  // adopted despite the stale index
  EXPECT_EQ(p, payload);
  EXPECT_EQ(c.stats().disk_entries, 1u);
  EXPECT_EQ(c.stats().disk_bytes, 112u);
}

// --------------------------------------------- server/client robustness

TEST(ServiceServer, RefusesToStartOverALiveDaemon) {
  CampaignService svc(model(), ServiceConfig{});
  ServerConfig srvcfg;
  srvcfg.socket_path = testing::TempDir() + "hltg_service_live.sock";
  ServiceServer server(svc, srvcfg);
  std::string why;
  ASSERT_TRUE(server.start(&why)) << why;

  // A second daemon on the same path must probe, get a pong, and refuse -
  // unlinking a live daemon's socket would orphan it silently.
  ServiceServer usurper(svc, srvcfg);
  std::string why2;
  EXPECT_FALSE(usurper.start(&why2));
  EXPECT_NE(why2.find("refusing"), std::string::npos) << why2;

  // The incumbent is unharmed.
  ServiceClient c;
  ASSERT_TRUE(c.connect(srvcfg.socket_path, &why)) << why;
  ASSERT_TRUE(c.send_line("{\"op\":\"ping\"}"));
  std::string line;
  ASSERT_TRUE(c.read_line(&line, 5000));
  EXPECT_EQ(line, "{\"event\":\"pong\"}");
  c.close();
  server.stop();

  // A STALE socket file (bound once, no listener behind it) is replaced:
  // the probe's connect fails, so startup proceeds.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, srvcfg.socket_path.c_str(),
               sizeof addr.sun_path - 1);
  ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
            0);
  ::close(fd);  // leaves the file, kills the listener: a crashed daemon
  ServiceServer revived(svc, srvcfg);
  ASSERT_TRUE(revived.start(&why)) << why;
  revived.stop();
}

TEST(ServiceClient, ReadStatusDistinguishesOkTimeoutEof) {
  CampaignService svc(model(), ServiceConfig{});
  ServerConfig srvcfg;
  srvcfg.socket_path = testing::TempDir() + "hltg_service_rs.sock";
  ServiceServer server(svc, srvcfg);
  std::string why;
  ASSERT_TRUE(server.start(&why)) << why;

  ServiceClient c;
  ASSERT_TRUE(c.connect(srvcfg.socket_path, &why)) << why;
  ASSERT_TRUE(c.send_line("{\"op\":\"ping\"}"));
  std::string line;
  EXPECT_EQ(c.read_line_status(&line, 5000), ReadStatus::kOk);
  EXPECT_EQ(line, "{\"event\":\"pong\"}");
  // Nothing further is coming: a bounded read times out (and the daemon
  // being merely quiet must NOT read as EOF - retry logic hangs on the
  // difference).
  EXPECT_EQ(c.read_line_status(&line, 80), ReadStatus::kTimeout);
  // The daemon goes away: now it IS EOF.
  server.stop();
  EXPECT_EQ(c.read_line_status(&line, 5000), ReadStatus::kEof);
}

TEST(ServiceServer, HalfClosedSubscriberDropsWithoutStallingTheFlight) {
  std::atomic<bool> release{false};
  ServiceConfig scfg;
  scfg.executors = 1;
  scfg.spool_dir = temp_dir("halfclose_spool");
  scfg.runner_override = [&release](const RequestPlan& plan,
                                    const CampaignConfig& ccfg) {
    while (!release.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return truncating_runner(2)(plan, ccfg);
  };
  CampaignService svc(model(), scfg);
  ServerConfig srvcfg;
  srvcfg.socket_path = testing::TempDir() + "hltg_service_halfclose.sock";
  ServiceServer server(svc, srvcfg);
  std::string why;
  ASSERT_TRUE(server.start(&why)) << why;

  // Subscribe, read the ack, then hang up while the flight is still
  // running - the progress rows the engine writes afterwards hit a dead
  // socket (MSG_NOSIGNAL path).
  {
    ServiceClient c;
    ASSERT_TRUE(c.connect(srvcfg.socket_path, &why)) << why;
    RequestSpec spec;
    spec.subscribe = true;
    ASSERT_TRUE(
        c.send_line("{\"op\":\"submit\"," + request_fields_json(spec) + "}"));
    std::string line;
    ASSERT_TRUE(c.read_line(&line, 5000));
    EXPECT_NE(line.find("\"event\":\"ack\""), std::string::npos);
    c.close();
  }
  release.store(true);
  // The executor must complete the flight despite the dead subscriber.
  for (int i = 0; i < 500 && svc.stats().completed < 1; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(svc.stats().completed, 1u);

  // And the service is fully healthy: a new client gets the cached bytes.
  const ClientResult again = run_client(srvcfg.socket_path, RequestSpec{});
  EXPECT_TRUE(again.ok) << again.error;
  EXPECT_FALSE(again.csv.empty());
  server.stop();  // must not hang on the leaked subscription
}

}  // namespace
}  // namespace hltg
