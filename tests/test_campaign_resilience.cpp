// Resilience paths of the campaign engine (docs/ROBUSTNESS.md): per-error
// budgets firing mid-search, exception capture, graceful degradation to the
// baseline generator, the checkpoint journal, and interrupt + resume
// round-trip equality.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "baseline/random_tg.h"
#include "core/tg.h"
#include "errors/journal.h"
#include "isa/asm.h"
#include "isa/testcase_io.h"
#include "sim/cosim.h"
#include "util/budget.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

DesignError ssl(const char* net, unsigned bit, bool v) {
  const NetId n = model().dp.find_net(net);
  EXPECT_NE(n, kNoNet) << net;
  return DesignError{BusSslError{n, bit, v}};
}

std::vector<DesignError> small_population() {
  return {ssl("ex.alu_add", 0, false), ssl("ex.alu_add", 1, true),
          ssl("ex.alu_add", 2, false), ssl("ex.alu_add", 3, true),
          ssl("ex.alu_add", 4, false), ssl("ex.alu_add", 5, true)};
}

/// Deterministic scripted generator: detects even-indexed errors, gives up
/// on odd ones, with fixed effort numbers so two runs produce identical
/// stats (including cpu_seconds).
BudgetedGenFn scripted_gen(int* calls = nullptr) {
  auto k = std::make_shared<std::size_t>(0);
  return [k, calls](const DesignError&, Budget&) {
    if (calls) ++*calls;
    const std::size_t i = (*k)++;
    ErrorAttempt a;
    a.generated = a.sim_confirmed = (i % 2 == 0);
    a.test_length = 4 + static_cast<unsigned>(i % 3);
    a.backtracks = i;
    a.decisions = 2 * i + 1;
    a.seconds = 0.001 * static_cast<double>(i + 1);
    if (a.detected()) {
      a.test.imem = {0x20220007u + static_cast<std::uint32_t>(i)};
      a.test.rf_init[2] = 42 + static_cast<std::uint32_t>(i);
      a.test.dmem_init[8] = 7;
    } else {
      a.note = "scripted give-up";
    }
    return a;
  };
}

std::string temp_journal(const char* tag) {
  return testing::TempDir() + "hltg_journal_" + tag + ".jsonl";
}

// ---------------------------------------------------------------- budgets

TEST(Budget, ExpiredDeadlineFires) {
  Budget b;
  b.set_deadline(Budget::Clock::now());
  EXPECT_EQ(b.exhausted(), AbortReason::kDeadline);
}

TEST(Budget, CapsAndCancellation) {
  Budget b;
  b.set_max_backtracks(10);
  b.set_max_decisions(100);
  EXPECT_EQ(b.exhausted(), AbortReason::kNone);
  b.charge_backtracks(11);
  EXPECT_EQ(b.exhausted(), AbortReason::kBacktracks);

  Budget c;
  CancelToken tok;
  c.set_cancel(&tok);
  EXPECT_EQ(c.exhausted(), AbortReason::kNone);
  tok.request_stop();
  EXPECT_EQ(c.exhausted(), AbortReason::kCancelled);
}

TEST(Budget, DeadlineFiresMidCtrljust) {
  // An already-expired deadline must stop the branch-and-bound immediately
  // (no hang, no crash) with the structured reason, for any objective set.
  const GateNet& gn = model().ctrl;
  CtrlJust cj(gn, 14);
  std::vector<CtrlObjective> objs;
  for (GateId g = 0; g < gn.num_gates() && objs.size() < 4; ++g)
    if (gn.gate(g).role == SigRole::kCtrl) objs.push_back({g, 6, true});
  ASSERT_FALSE(objs.empty());
  Budget b;
  b.set_deadline(Budget::Clock::now());
  const CtrlJustResult r = cj.solve(objs, &b);
  EXPECT_EQ(r.status, TgStatus::kFailure);
  EXPECT_EQ(r.abort, AbortReason::kDeadline);
}

TEST(Budget, TgAttemptAbortsOnExpiredDeadline) {
  TestGenerator tg(model());
  Budget b;
  b.set_deadline(Budget::Clock::now());
  const TgResult r = tg.generate(ssl("ex.alu_add", 0, false), &b);
  EXPECT_EQ(r.status, TgStatus::kFailure);
  EXPECT_EQ(r.stats.abort, AbortReason::kDeadline);
  EXPECT_NE(r.note.find("deadline"), std::string::npos);
}

TEST(Budget, TgBacktrackCapSpansWholeAttempt) {
  // A budget-wide backtrack cap of 0 aborts as soon as any plan's search
  // backtracks; the attempt reports it as a structured abort.
  TestGenerator tg(model());
  Budget b;
  b.set_max_backtracks(0);
  b.set_max_decisions(3);  // and decisions, whichever trips first
  const TgResult r = tg.generate(ssl("ex.alu_add", 7, true), &b);
  if (r.status != TgStatus::kSuccess) {
    EXPECT_NE(r.stats.abort, AbortReason::kNone);
  } else {
    // Found a test within three decisions and zero backtracks: legitimate.
    EXPECT_LE(r.stats.decisions, 4u);
  }
}

TEST(Budget, OneMillisecondCampaignCompletesWithAborts) {
  // The acceptance scenario: a 1 ms per-error deadline must produce
  // budget-aborts (never a hang or crash) while the campaign completes and
  // reports the abort breakdown. A fast machine may legitimately solve an
  // error inside 1 ms, so detections are allowed; what is not allowed is an
  // undetected error without a structured reason... which for a pure
  // deadline budget is exactly kDeadline.
  TestGenerator tg(model());
  CampaignConfig cfg;
  cfg.budget.deadline_seconds = 0.001;
  const auto errors = small_population();
  const CampaignResult res =
      run_campaign(model().dp, errors, tg.budgeted_strategy(), cfg);
  EXPECT_EQ(res.stats.total, errors.size());
  EXPECT_EQ(res.stats.attempted, errors.size());
  EXPECT_EQ(res.stats.detected + res.stats.aborted, errors.size());
  for (const CampaignRow& row : res.rows) {
    if (!row.attempt.detected()) {
      EXPECT_EQ(row.attempt.abort, AbortReason::kDeadline)
          << row.error.describe(model().dp);
    }
  }
  EXPECT_EQ(res.stats.aborted_deadline, res.stats.aborted);
}

// ----------------------------------------------------------- fault hooks

TEST(FaultPlan, ThrowIsCapturedPerError) {
  CampaignFaultPlan faults;
  faults[1].kind = CampaignFault::Kind::kThrow;
  CampaignConfig cfg;
  cfg.faults = &faults;
  const auto errors = small_population();
  const CampaignResult res =
      run_campaign(model().dp, errors, scripted_gen(), cfg);
  EXPECT_EQ(res.stats.attempted, errors.size());  // campaign survived
  EXPECT_EQ(res.rows[1].attempt.abort, AbortReason::kException);
  EXPECT_NE(res.rows[1].attempt.note.find("fault-injected"),
            std::string::npos);
  EXPECT_EQ(res.stats.aborted_exception, 1u);
  // Neighbours are unaffected (the scripted generator is call-counted, so
  // after the skipped call on error 1 the even/odd script shifts by one).
  EXPECT_TRUE(res.rows[0].attempt.detected());
  EXPECT_TRUE(res.rows[3].attempt.detected());
  EXPECT_FALSE(res.rows[2].attempt.detected());
}

TEST(FaultPlan, BudgetExhaustAndFallbackTagging) {
  CampaignFaultPlan faults;
  faults[0].kind = CampaignFault::Kind::kBudgetExhaust;
  faults[0].abort = AbortReason::kDeadline;
  // Error 2: primary exhausts, fallback (forced) succeeds.
  faults[2].kind = CampaignFault::Kind::kBudgetExhaust;
  faults[2].abort = AbortReason::kBacktracks;
  faults[2].force_fallback = true;
  faults[2].fallback_attempt.generated = true;
  faults[2].fallback_attempt.sim_confirmed = true;
  faults[2].fallback_attempt.test_length = 9;
  faults[2].fallback_attempt.seconds = 0.002;

  CampaignConfig cfg;
  cfg.faults = &faults;
  const auto errors = small_population();
  const CampaignResult res =
      run_campaign(model().dp, errors, scripted_gen(), cfg);

  // Error 0: budget-aborted, no fallback configured for it -> aborted.
  EXPECT_FALSE(res.rows[0].attempt.detected());
  EXPECT_EQ(res.rows[0].attempt.abort, AbortReason::kDeadline);
  EXPECT_EQ(res.stats.aborted_deadline, 1u);
  // Error 2: detected via fallback, tagged as such in rows and stats.
  EXPECT_TRUE(res.rows[2].attempt.detected());
  EXPECT_TRUE(res.rows[2].attempt.via_fallback);
  EXPECT_EQ(res.rows[2].attempt.outcome(), AttemptOutcome::kDetectedFallback);
  EXPECT_EQ(res.stats.detected_fallback, 1u);
  EXPECT_EQ(res.stats.detected_deterministic, res.stats.detected - 1);
  // The split shows up in the Table-1 rendering.
  const std::string t = res.stats.table1("resilience");
  EXPECT_NE(t.find("fallback"), std::string::npos);
}

TEST(FaultPlan, RealFallbackGeneratorRescuesBudgetAbort) {
  // Force the primary to "exhaust" on every error and let the real
  // biased-random baseline rescue what it can under its own budget.
  CampaignFaultPlan faults;
  const auto errors = small_population();
  for (std::size_t i = 0; i < errors.size(); ++i) {
    faults[i].kind = CampaignFault::Kind::kBudgetExhaust;
    faults[i].abort = AbortReason::kBacktracks;
  }
  CampaignConfig cfg;
  cfg.faults = &faults;
  RandomTgConfig rcfg;
  rcfg.max_programs_per_error = 16;
  cfg.fallback = random_budgeted_strategy(model(), rcfg);
  const CampaignResult res =
      run_campaign(model().dp, errors, scripted_gen(), cfg);
  // ALU adder SSLs are easy prey for random programs: expect rescues, all
  // tagged as fallback detections.
  EXPECT_GT(res.stats.detected_fallback, 0u);
  EXPECT_EQ(res.stats.detected, res.stats.detected_fallback);
  for (const CampaignRow& row : res.rows)
    if (row.attempt.detected()) {
      EXPECT_TRUE(row.attempt.via_fallback);
      EXPECT_TRUE(detects(model(), row.attempt.test,
                          row.error.injection()));
    }
}

TEST(FaultPlan, CancelTokenReachesFallbackBudget) {
  // The cancel token is usually wired only into the primary BudgetSpec;
  // the fallback runs under its own recipe, which must inherit the token -
  // a Ctrl-C during a fallback sweep has to abort promptly.
  CancelToken tok;
  CampaignConfig cfg;
  cfg.budget.cancel = &tok;  // note: NOT set on cfg.fallback_budget
  BudgetedGenFn primary = [&tok](const DesignError&, Budget&) {
    tok.request_stop();     // stop lands mid-attempt, before the fallback
    return ErrorAttempt{};  // plain give-up (abort kNone): fallback is tried
  };
  AbortReason seen_by_fallback = AbortReason::kNone;
  cfg.fallback = [&seen_by_fallback](const DesignError&, Budget& b) {
    seen_by_fallback = b.exhausted();
    ErrorAttempt a;
    a.abort = seen_by_fallback;
    return a;
  };
  const std::vector<DesignError> one = {ssl("ex.alu_add", 0, false)};
  run_campaign(model().dp, one, primary, cfg);
  EXPECT_EQ(seen_by_fallback, AbortReason::kCancelled);

  // And through the real biased-random fallback: a huge program budget
  // must be cut off immediately with the structured reason in the note.
  tok.reset();
  RandomTgConfig rcfg;
  rcfg.max_programs_per_error = 1000000;
  cfg.fallback = random_budgeted_strategy(model(), rcfg);
  const CampaignResult res = run_campaign(model().dp, one, primary, cfg);
  EXPECT_FALSE(res.rows[0].attempt.detected());
  EXPECT_NE(res.rows[0].attempt.note.find("budget: cancelled"),
            std::string::npos);
}

// -------------------------------------------------------------- journal

TEST(Journal, RowRoundTripsAttempt) {
  ErrorAttempt a;
  a.generated = a.sim_confirmed = true;
  a.test_length = 7;
  a.backtracks = 3;
  a.decisions = 19;
  a.seconds = 0.12345678901234567;
  a.abort = AbortReason::kNone;
  a.via_fallback = true;
  a.note = "weird \"note\"\nwith\tescapes";
  a.test.imem = {0x20220007u, 0xAC410100u};
  a.test.rf_init[2] = 0xDEADBEEFu;
  a.test.dmem_init[16] = 0x12345678u;

  const std::string line = journal_row_line(42, a);
  const std::string path = temp_journal("roundtrip");
  {
    std::ofstream out(path);
    out << journal_header_line(50, 0xABCDEF) << "\n" << line << "\n";
  }
  const JournalReplay jr = load_journal(path);
  ASSERT_TRUE(jr.header_ok);
  EXPECT_EQ(jr.total, 50u);
  EXPECT_EQ(jr.fingerprint, 0xABCDEFull);
  ASSERT_EQ(jr.rows.count(42), 1u);
  const ErrorAttempt& b = jr.rows.at(42);
  EXPECT_EQ(b.generated, a.generated);
  EXPECT_EQ(b.sim_confirmed, a.sim_confirmed);
  EXPECT_EQ(b.test_length, a.test_length);
  EXPECT_EQ(b.backtracks, a.backtracks);
  EXPECT_EQ(b.decisions, a.decisions);
  EXPECT_EQ(b.seconds, a.seconds);  // exact: %.17g round-trip
  EXPECT_EQ(b.via_fallback, a.via_fallback);
  EXPECT_EQ(b.note, a.note);
  EXPECT_EQ(b.test.imem, a.test.imem);
  EXPECT_EQ(b.test.rf_init[2], a.test.rf_init[2]);
  EXPECT_EQ(b.test.dmem_init.at(16), a.test.dmem_init.at(16));
  std::remove(path.c_str());
}

TEST(Journal, TornTrailingRowIsDropped) {
  const std::string path = temp_journal("torn");
  ErrorAttempt a;
  a.generated = a.sim_confirmed = true;
  a.test_length = 3;
  {
    std::ofstream out(path);
    out << journal_header_line(4, 1) << "\n"
        << journal_row_line(0, a) << "\n"
        << journal_row_line(1, a).substr(0, 25);  // crash mid-write
  }
  const JournalReplay jr = load_journal(path);
  EXPECT_TRUE(jr.header_ok);
  EXPECT_EQ(jr.rows.size(), 1u);
  EXPECT_EQ(jr.rows.count(0), 1u);
  EXPECT_NE(jr.note.find("torn"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Journal, FsyncBatchCrashCutReplaysSyncedPrefix) {
  // With batched fsync (journal_fsync_interval > 1) a crash can lose the
  // rows of the current batch and tear the row being written. Simulate the
  // worst cut - the file truncated mid-row inside a batch - and check the
  // resumed campaign replays exactly the intact prefix and reproduces the
  // reference stats.
  const auto errors = small_population();

  // Generator that is a pure function of the error index, so replay and
  // re-attempt agree no matter where the journal was cut.
  auto pure_gen = [&errors](int* calls = nullptr) {
    const DesignError* base = errors.data();
    return [base, calls](const DesignError& e, Budget&) {
      if (calls) ++*calls;
      const std::size_t i = static_cast<std::size_t>(&e - base);
      ErrorAttempt a;
      a.generated = a.sim_confirmed = (i % 2 == 0);
      a.test_length = 4 + static_cast<unsigned>(i % 3);
      a.backtracks = i;
      a.decisions = 2 * i + 1;
      a.implications = 10 * i;
      a.seconds = 0.25 * static_cast<double>(i + 1);
      if (a.detected()) a.test.imem = {0x20220007u + static_cast<unsigned>(i)};
      return a;
    };
  };

  const CampaignResult full =
      run_campaign(model().dp, errors, pure_gen(), CampaignConfig{});

  const std::string path = temp_journal("fsync_batch");
  std::remove(path.c_str());
  {
    CampaignConfig cfg;
    cfg.journal_path = path;
    cfg.journal_fsync_interval = 4;  // rows 0..3 in batch 1, 4..5 in batch 2
    const CampaignResult r = run_campaign(model().dp, errors, pure_gen(), cfg);
    EXPECT_EQ(r.stats.attempted, errors.size());
  }

  // Crash cut: keep the header and three full rows, then half of row 3.
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 1u + errors.size());
  {
    std::ofstream out(path, std::ios::trunc);
    for (std::size_t i = 0; i < 4; ++i) out << lines[i] << "\n";
    out << lines[4].substr(0, lines[4].size() / 2);  // torn mid-batch row
  }

  int calls = 0;
  CampaignConfig cfg;
  cfg.journal_path = path;
  cfg.journal_fsync_interval = 4;
  cfg.resume = true;
  const CampaignResult resumed =
      run_campaign(model().dp, errors, pure_gen(&calls), cfg);
  EXPECT_EQ(resumed.resumed_rows, 3u);  // rows 0..2 intact, row 3 torn
  EXPECT_EQ(calls, 3);                  // 3, 4, 5 re-attempted
  EXPECT_EQ(resumed.stats.table1("Table 1"), full.stats.table1("Table 1"));
  ASSERT_EQ(resumed.rows.size(), full.rows.size());
  for (std::size_t i = 0; i < full.rows.size(); ++i)
    EXPECT_EQ(resumed.rows[i].attempt.test.imem,
              full.rows[i].attempt.test.imem)
        << "row " << i;
  std::remove(path.c_str());
}

TEST(Journal, SolverCountersRoundTrip) {
  ErrorAttempt a;
  a.generated = a.sim_confirmed = true;
  a.implications = 12345;
  a.learned = 17;
  a.nogood_hits = 9;
  a.cache_hits = 4;
  const std::string path = temp_journal("solver_fields");
  {
    std::ofstream out(path);
    out << journal_header_line(1, 7) << "\n" << journal_row_line(0, a) << "\n";
  }
  const JournalReplay jr = load_journal(path);
  ASSERT_EQ(jr.rows.count(0), 1u);
  EXPECT_EQ(jr.rows.at(0).implications, 12345u);
  EXPECT_EQ(jr.rows.at(0).learned, 17u);
  EXPECT_EQ(jr.rows.at(0).nogood_hits, 9u);
  EXPECT_EQ(jr.rows.at(0).cache_hits, 4u);
  std::remove(path.c_str());

  // Pre-solver journals (no solver fields) stay replayable with zeros.
  const std::string old_path = temp_journal("old_format");
  {
    std::ofstream out(old_path);
    out << journal_header_line(1, 7) << "\n"
        << "{\"index\":0,\"generated\":true,\"sim_confirmed\":true,"
           "\"test_length\":2,\"backtracks\":1,\"decisions\":3,"
           "\"seconds\":0.5,\"abort\":\"none\",\"via_fallback\":false,"
           "\"note\":\"\"}\n";
  }
  const JournalReplay old_jr = load_journal(old_path);
  ASSERT_EQ(old_jr.rows.count(0), 1u);
  EXPECT_EQ(old_jr.rows.at(0).implications, 0u);
  EXPECT_EQ(old_jr.rows.at(0).cache_hits, 0u);
  EXPECT_EQ(old_jr.rows.at(0).decisions, 3u);
  std::remove(old_path.c_str());
}

TEST(Journal, MismatchedJournalIsNotReplayed) {
  const auto errors = small_population();
  const std::string path = temp_journal("mismatch");
  {
    std::ofstream out(path);
    out << journal_header_line(errors.size(), /*wrong fingerprint*/ 123)
        << "\n";
    ErrorAttempt a;
    a.generated = a.sim_confirmed = true;
    out << journal_row_line(0, a) << "\n";
  }
  CampaignConfig cfg;
  cfg.journal_path = path;
  cfg.resume = true;
  int calls = 0;
  const CampaignResult res =
      run_campaign(model().dp, errors, scripted_gen(&calls), cfg);
  EXPECT_EQ(res.resumed_rows, 0u);  // foreign journal ignored
  EXPECT_EQ(calls, static_cast<int>(errors.size()));
  EXPECT_NE(res.journal_note.find("different campaign"), std::string::npos);
  std::remove(path.c_str());
}

// --------------------------------------------------------- strict resume

TEST(Resume, MissingJournalIsFlaggedByLoader) {
  const JournalReplay jr = load_journal(temp_journal("never_written"));
  EXPECT_FALSE(jr.header_ok);
  EXPECT_TRUE(jr.file_missing);
  EXPECT_NE(jr.note.find("not found"), std::string::npos);
}

TEST(Resume, StrictRefusesMissingJournal) {
  // Default --resume degrades a missing journal to a fresh start (only a
  // journal_note records it); strict resume must refuse outright, because
  // the checkpoint the operator asked to replay does not exist.
  const auto errors = small_population();
  CampaignConfig cfg;
  cfg.journal_path = temp_journal("strict_missing");
  std::remove(cfg.journal_path.c_str());
  cfg.resume = true;
  cfg.resume_strict = true;
  int calls = 0;
  const CampaignResult res =
      run_campaign(model().dp, errors, scripted_gen(&calls), cfg);
  EXPECT_TRUE(res.resume_refused);
  EXPECT_EQ(calls, 0);  // nothing ran
  EXPECT_TRUE(res.rows.empty());
  EXPECT_NE(res.journal_note.find("strict"), std::string::npos);
  EXPECT_NE(res.journal_note.find("not found"), std::string::npos);
  // The refusal must not create (or truncate) the journal path.
  std::ifstream probe(cfg.journal_path);
  EXPECT_FALSE(probe.good());
}

TEST(Resume, StrictRefusesForeignJournal) {
  const auto errors = small_population();
  const std::string path = temp_journal("strict_foreign");
  {
    std::ofstream out(path);
    out << journal_header_line(errors.size(), /*wrong fingerprint*/ 123)
        << "\n";
  }
  CampaignConfig cfg;
  cfg.journal_path = path;
  cfg.resume = true;
  cfg.resume_strict = true;
  int calls = 0;
  const CampaignResult res =
      run_campaign(model().dp, errors, scripted_gen(&calls), cfg);
  EXPECT_TRUE(res.resume_refused);
  EXPECT_EQ(calls, 0);
  EXPECT_NE(res.journal_note.find("different campaign"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Resume, StrictReplaysAMatchingJournalNormally) {
  // Strict must not get in the way of the path it exists to protect: a
  // genuine checkpoint replays exactly as with plain --resume.
  const auto errors = small_population();
  const std::string path = temp_journal("strict_ok");
  std::remove(path.c_str());
  CampaignConfig cfg;
  cfg.journal_path = path;
  run_campaign(model().dp, errors, scripted_gen(), cfg);

  cfg.resume = true;
  cfg.resume_strict = true;
  int calls = 0;
  const CampaignResult res =
      run_campaign(model().dp, errors, scripted_gen(&calls), cfg);
  EXPECT_FALSE(res.resume_refused);
  EXPECT_EQ(res.resumed_rows, errors.size());
  EXPECT_EQ(calls, 0);  // fully replayed, nothing re-run
  std::remove(path.c_str());
}

// ---------------------------------------------------- interrupt + resume

TEST(Resume, InterruptedCampaignReproducesIdenticalStats) {
  const auto errors = small_population();

  // Reference: uninterrupted, journal-free run with the scripted generator.
  const CampaignResult full =
      run_campaign(model().dp, errors, scripted_gen(), CampaignConfig{});

  // Run 1: cancel after three errors (the cancellation is requested by the
  // generator itself so the cut point is deterministic).
  const std::string path = temp_journal("resume");
  std::remove(path.c_str());
  CancelToken cancel;
  int first_calls = 0;
  {
    BudgetedGenFn inner = scripted_gen(&first_calls);
    BudgetedGenFn cancelling = [&](const DesignError& e, Budget& b) {
      ErrorAttempt a = inner(e, b);
      if (first_calls == 3) cancel.request_stop();
      return a;
    };
    CampaignConfig cfg;
    cfg.journal_path = path;
    cfg.cancel = &cancel;
    const CampaignResult part =
        run_campaign(model().dp, errors, cancelling, cfg);
    EXPECT_TRUE(part.interrupted);
    EXPECT_EQ(part.stats.attempted, 3u);
    EXPECT_EQ(first_calls, 3);
  }

  // Run 2: resume. The scripted generator restarts its index at 0, but the
  // first three errors must come from the journal, so attempts 3..5 get
  // scripted indices 3..5 via the offset shim below.
  int second_calls = 0;
  {
    BudgetedGenFn inner = scripted_gen();
    // Discard the first three scripted outcomes to realign the script with
    // the error index (a real generator is a pure function of the error;
    // the shim only exists because the script is call-counted).
    Budget dummy;
    for (int i = 0; i < 3; ++i) inner(errors[0], dummy);
    BudgetedGenFn counted = [&](const DesignError& e, Budget& b) {
      ++second_calls;
      return inner(e, b);
    };
    CampaignConfig cfg;
    cfg.journal_path = path;
    cfg.resume = true;
    const CampaignResult resumed =
        run_campaign(model().dp, errors, counted, cfg);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.resumed_rows, 3u);
    EXPECT_EQ(second_calls, 3);  // only the unjournaled errors ran

    // Byte-identical Table-1 stats (includes the CPU-time row: the
    // journaled seconds replay exactly, and the scripted seconds are
    // deterministic).
    EXPECT_EQ(resumed.stats.table1("Table 1"), full.stats.table1("Table 1"));
    EXPECT_EQ(resumed.stats.detected, full.stats.detected);
    EXPECT_EQ(resumed.stats.aborted, full.stats.aborted);
    EXPECT_EQ(resumed.stats.backtracks, full.stats.backtracks);
    EXPECT_EQ(resumed.stats.decisions, full.stats.decisions);
    EXPECT_DOUBLE_EQ(resumed.stats.cpu_seconds, full.stats.cpu_seconds);
    EXPECT_EQ(resumed.stats.length_histogram, full.stats.length_histogram);
    // Replayed rows carry their tests (row-level parity, not just stats).
    ASSERT_EQ(resumed.rows.size(), full.rows.size());
    for (std::size_t i = 0; i < full.rows.size(); ++i)
      EXPECT_EQ(resumed.rows[i].attempt.test.imem,
                full.rows[i].attempt.test.imem)
          << "row " << i;
  }
  std::remove(path.c_str());
}

TEST(Resume, CancelBeforeFirstErrorAttemptsNothing) {
  CancelToken cancel;
  cancel.request_stop();
  CampaignConfig cfg;
  cfg.cancel = &cancel;
  int calls = 0;
  const CampaignResult res = run_campaign(model().dp, small_population(),
                                          scripted_gen(&calls), cfg);
  EXPECT_TRUE(res.interrupted);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(res.stats.attempted, 0u);
}

// ------------------------------------------- malformed untrusted inputs

TEST(Robustness, MalformedAssemblyIsRecoverable) {
  // Out-of-range immediates, bad registers, junk mnemonics: errors with
  // line numbers, never a crash or a silently truncated program.
  const AsmResult r = assemble(
      "addi r1, r1, 999999\n"     // line 1: imm out of I-range
      "add r40, r1, r2\n"         // line 2: bad register
      "frobnicate r1\n"           // line 3: unknown mnemonic
      "addi r2, r2, 0x\n"         // line 4: bare 0x
      "j 99999999\n"              // line 5: imm out of J-range
      "addi r3, r3, 5\n");        // line 6: fine
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.errors.size(), 5u);
  EXPECT_NE(r.errors[0].find("line 1"), std::string::npos);
  EXPECT_NE(r.errors[0].find("out of range"), std::string::npos);
  EXPECT_NE(r.errors[4].find("line 5"), std::string::npos);
  ASSERT_EQ(r.program.size(), 1u);  // only the good line assembled
  EXPECT_EQ(r.program[0].op, Op::kAddi);
}

TEST(Robustness, BranchToOutOfRangeLabelIsAnError) {
  std::string src = "beqz r1, far\n";
  for (int i = 0; i < 40000; ++i) src += "nop\n";
  src += "far: nop\n";
  const AsmResult r = assemble(src);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].find("out of branch range"), std::string::npos);
}

TEST(Robustness, MalformedTestcaseFilesAreRecoverable) {
  EXPECT_FALSE(parse_test("instr zzzz\n").ok());
  EXPECT_FALSE(parse_test("instr 123456789\n").ok());    // > 8 hex digits
  EXPECT_FALSE(parse_test("instr 00000000 junk\n").ok());
  EXPECT_FALSE(parse_test("reg 0 00000001\n").ok());     // r0 is hardwired
  EXPECT_FALSE(parse_test("mem 100 zz\n").ok());
  const TestLoadResult bad = parse_test("reg 5 xyz\n");
  EXPECT_NE(bad.error.find("line 1"), std::string::npos);
  // And the happy path still round-trips.
  EXPECT_TRUE(parse_test("instr 0x00000000\nreg 5 1f\nmem 100 2\n").ok());
}

}  // namespace
}  // namespace hltg
