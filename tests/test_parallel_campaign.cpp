// Parallel campaign engine (errors/parallel_campaign): jobs-independent
// byte-identical results, fault tolerance inside workers, resume from
// out-of-order parallel journals, and the CampaignConfig-honoring dropping
// engine (budget / cancel / journal).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/tg.h"
#include "errors/bus_ssl.h"
#include "errors/journal.h"
#include "errors/parallel_campaign.h"
#include "sim/batch_sim.h"
#include "sim/cosim.h"
#include "solver/nogood_board.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

DesignError ssl(const char* net, unsigned bit, bool v) {
  const NetId n = model().dp.find_net(net);
  EXPECT_NE(n, kNoNet) << net;
  return DesignError{BusSslError{n, bit, v}};
}

std::vector<DesignError> small_population(std::size_t n = 12) {
  std::vector<DesignError> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(ssl("ex.alu_add", static_cast<unsigned>(i % 32), i % 2));
  return out;
}

std::string temp_journal(const char* tag) {
  return testing::TempDir() + "hltg_pjournal_" + tag + ".jsonl";
}

/// Scripted generator that is a *pure function of the error* (unlike the
/// call-counted script in test_campaign_resilience), so its outcome cannot
/// depend on which worker runs it or in what order.
BudgetedGenFn pure_gen(int* calls = nullptr) {
  auto hash = [](const DesignError& e) {
    return std::hash<std::string>{}(e.describe(model().dp));
  };
  return [hash, calls](const DesignError& e, Budget&) {
    if (calls) ++*calls;  // only read after the pool joins
    const std::size_t h = hash(e);
    ErrorAttempt a;
    a.generated = a.sim_confirmed = (h % 3) != 0;
    a.test_length = 3 + static_cast<unsigned>(h % 5);
    a.backtracks = h % 7;
    a.decisions = h % 11;
    a.seconds = 0.0001 * static_cast<double>(h % 13);
    if (a.detected()) {
      a.test.imem = {0x20220000u | static_cast<std::uint32_t>(h & 0xFF)};
      a.test.rf_init[3] = static_cast<std::uint32_t>(h);
    } else {
      a.note = "scripted give-up";
    }
    return a;
  };
}

/// Canonical byte rendering of a result's rows; `zero_seconds` strips the
/// wall-clock fields (seconds + per-phase ns), the only nondeterministic
/// fields a real generator produces.
std::string render_rows(const CampaignResult& r, bool zero_seconds = false) {
  std::string s;
  for (std::size_t i = 0; i < r.rows.size(); ++i) {
    ErrorAttempt a = r.rows[i].attempt;
    if (zero_seconds) {
      a.seconds = 0;
      a.dptrace_ns = a.ctrljust_ns = a.dprelax_ns = 0;
    }
    s += journal_row_line(i, a) + "\n";
  }
  return s;
}

CampaignResult run_jobs(const std::vector<DesignError>& errors, unsigned jobs,
                        const ParallelCampaignConfig& base = {},
                        int* calls = nullptr) {
  ParallelCampaignConfig cfg = base;
  cfg.jobs = jobs;
  return run_campaign_parallel(
      model().dp, errors,
      [calls](unsigned) { return pure_gen(calls); }, cfg);
}

// ------------------------------------------------------------ determinism

TEST(ParallelCampaign, ByteIdenticalAcrossJobs) {
  const auto errors = small_population(17);
  const CampaignResult r1 = run_jobs(errors, 1);
  const CampaignResult r2 = run_jobs(errors, 2);
  const CampaignResult r8 = run_jobs(errors, 8);

  EXPECT_EQ(render_rows(r1), render_rows(r2));
  EXPECT_EQ(render_rows(r1), render_rows(r8));
  EXPECT_EQ(r1.stats.table1("t"), r2.stats.table1("t"));
  EXPECT_EQ(r1.stats.table1("t"), r8.stats.table1("t"));
  EXPECT_EQ(r1.stats.length_histogram, r8.stats.length_histogram);
  EXPECT_DOUBLE_EQ(r1.stats.cpu_seconds, r8.stats.cpu_seconds);

  // And identical to the serial engine on the same generator.
  const CampaignResult serial =
      run_campaign(model().dp, errors, pure_gen(), CampaignConfig{});
  EXPECT_EQ(render_rows(serial), render_rows(r8));
  EXPECT_EQ(serial.stats.table1("t"), r8.stats.table1("t"));
}

TEST(ParallelCampaign, FaultThrowInOneWorkerIsIsolatedAndDeterministic) {
  const auto errors = small_population(10);
  CampaignFaultPlan faults;
  faults[4].kind = CampaignFault::Kind::kThrow;
  ParallelCampaignConfig base;
  base.faults = &faults;

  const CampaignResult r1 = run_jobs(errors, 1, base);
  const CampaignResult r2 = run_jobs(errors, 2, base);
  const CampaignResult r8 = run_jobs(errors, 8, base);
  EXPECT_EQ(render_rows(r1), render_rows(r2));
  EXPECT_EQ(render_rows(r1), render_rows(r8));
  EXPECT_EQ(r8.rows[4].attempt.abort, AbortReason::kException);
  EXPECT_EQ(r8.stats.aborted_exception, 1u);
  EXPECT_EQ(r8.stats.attempted, errors.size());  // the pool survived
}

TEST(ParallelCampaign, RealGeneratorIsJobsIndependent) {
  // Real TG over a small slice of the Table-1 SSL population, one
  // TestGenerator per worker. Everything except wall-clock seconds must be
  // byte-identical across jobs counts.
  model().ctrl.warm_caches();
  (void)model().dp.topo_order();
  const auto all = wrap(enumerate_bus_ssl(model().dp));
  const std::vector<DesignError> errors(all.begin(), all.begin() + 12);

  const GenFactory factory = [](unsigned) {
    auto tg = std::make_shared<TestGenerator>(model());
    BudgetedGenFn s = tg->budgeted_strategy();
    return [tg, s](const DesignError& e, Budget& b) { return s(e, b); };
  };
  ParallelCampaignConfig cfg1;
  cfg1.jobs = 1;
  ParallelCampaignConfig cfg4;
  cfg4.jobs = 4;
  const CampaignResult a =
      run_campaign_parallel(model().dp, errors, factory, cfg1);
  const CampaignResult b =
      run_campaign_parallel(model().dp, errors, factory, cfg4);
  EXPECT_EQ(render_rows(a, /*zero_seconds=*/true),
            render_rows(b, /*zero_seconds=*/true));
  EXPECT_EQ(a.stats.detected, b.stats.detected);
  EXPECT_EQ(a.stats.backtracks, b.stats.backtracks);
  EXPECT_EQ(a.stats.decisions, b.stats.decisions);
  for (const CampaignRow& row : b.rows) {
    if (row.attempt.detected()) {
      EXPECT_TRUE(detects(model(), row.attempt.test, row.error.injection()));
    }
  }
}

TEST(ParallelCampaign, ShardedCampaignScopeMatchesErrorScopeForAnyJobs) {
  // The tentpole claim of the sharded engine: campaign-lifetime deduction
  // reuse (per-worker SolverContext + cross-worker NogoodBoard) stays
  // outcome-neutral for ANY --jobs, because each worker's error sequence
  // is the deterministic round-robin shard and every piece of shared state
  // is outcome-neutral (solver/solver.h). Only effort counters may differ,
  // so the comparison is on the outcome tuple, not the journal rows.
  model().ctrl.warm_caches();
  (void)model().dp.topo_order();
  const auto all = wrap(enumerate_bus_ssl(model().dp));
  const std::vector<DesignError> errors(all.begin(), all.begin() + 12);

  struct Outcome {
    bool detected;
    AbortReason abort;
    unsigned test_length;
    std::vector<std::uint32_t> imem;
    std::array<std::uint32_t, 32> rf_init;
    std::map<std::uint32_t, std::uint32_t> dmem_init;
    bool operator==(const Outcome&) const = default;
  };
  auto outcomes = [](const CampaignResult& r) {
    std::vector<Outcome> out;
    for (const CampaignRow& row : r.rows)
      out.push_back({row.attempt.detected(), row.attempt.abort,
                     row.attempt.test_length, row.attempt.test.imem,
                     row.attempt.test.rf_init, row.attempt.test.dmem_init});
    return out;
  };
  auto run = [&](SolverScope scope, unsigned jobs, NogoodBoard* board) {
    TgConfig tcfg;
    tcfg.solver.scope = scope;
    tcfg.solver.shared_board = board;
    ParallelCampaignConfig cfg;
    cfg.jobs = jobs;
    return run_campaign_parallel(
        model().dp, errors,
        [&](unsigned) {
          auto tg = std::make_shared<TestGenerator>(model(), tcfg);
          BudgetedGenFn s = tg->budgeted_strategy();
          return [tg, s](const DesignError& e, Budget& b) { return s(e, b); };
        },
        cfg);
  };

  const auto reference = outcomes(run(SolverScope::kError, 1, nullptr));
  for (unsigned jobs : {1u, 2u, 8u}) {
    NogoodBoard board;
    const CampaignResult r = run(SolverScope::kCampaign, jobs, &board);
    EXPECT_EQ(outcomes(r), reference) << "jobs=" << jobs;
    if (jobs > 1) EXPECT_GT(board.epoch(), 0u) << "board never used";
  }
}

TEST(ParallelCampaign, ResumeRefusedOnConflictingProvenanceStamps) {
  const auto errors = small_population(10);
  const std::string path = temp_journal("stamped");
  std::remove(path.c_str());

  ParallelCampaignConfig cfg;
  cfg.journal_path = path;
  cfg.design_hash = 0xAA;
  cfg.solver_config_hash = 0xBB;
  const CampaignResult ran = run_jobs(errors, 2, cfg);
  EXPECT_EQ(ran.stats.attempted, errors.size());

  // Same stamps: resumes normally.
  {
    ParallelCampaignConfig rcfg = cfg;
    rcfg.resume = true;
    int calls = 0;
    const CampaignResult ok = run_jobs(errors, 2, rcfg, &calls);
    EXPECT_FALSE(ok.resume_refused);
    EXPECT_EQ(calls, 0);
    EXPECT_EQ(ok.resumed_rows, errors.size());
  }
  // Conflicting design stamp: refused outright, nothing attempted.
  {
    ParallelCampaignConfig rcfg = cfg;
    rcfg.resume = true;
    rcfg.design_hash = 0xDEAD;
    int calls = 0;
    const CampaignResult refused = run_jobs(errors, 2, rcfg, &calls);
    EXPECT_TRUE(refused.resume_refused);
    EXPECT_TRUE(refused.interrupted);
    EXPECT_EQ(calls, 0);
    EXPECT_TRUE(refused.rows.empty());
    EXPECT_NE(refused.journal_note.find("different design"),
              std::string::npos);
  }
  // Unstamped resumer (legacy caller): fingerprint match still replays.
  {
    ParallelCampaignConfig rcfg;
    rcfg.journal_path = path;
    rcfg.resume = true;
    int calls = 0;
    const CampaignResult legacy = run_jobs(errors, 2, rcfg, &calls);
    EXPECT_FALSE(legacy.resume_refused);
    EXPECT_EQ(calls, 0);
    EXPECT_EQ(legacy.resumed_rows, errors.size());
  }
  std::remove(path.c_str());
}

TEST(ParallelCampaign, WorkerFactoryFailureDegradesToRemainingWorkers) {
  const auto errors = small_population(8);
  ParallelCampaignConfig cfg;
  cfg.jobs = 3;
  const CampaignResult res = run_campaign_parallel(
      model().dp, errors,
      [](unsigned w) -> BudgetedGenFn {
        if (w == 1) throw std::runtime_error("no generator for you");
        return pure_gen();
      },
      cfg);
  // Workers 0 and 2 drained the whole queue; the failure is reported.
  EXPECT_EQ(res.stats.attempted, errors.size());
  EXPECT_FALSE(res.interrupted);
  EXPECT_NE(res.journal_note.find("worker 1 unavailable"), std::string::npos);
  EXPECT_EQ(render_rows(res), render_rows(run_jobs(errors, 1)));
}

// ----------------------------------------------------- journal and resume

TEST(ParallelCampaign, JournalFromParallelRunIsCompleteAndReplayable) {
  const auto errors = small_population(14);
  const std::string path = temp_journal("complete");
  std::remove(path.c_str());
  ParallelCampaignConfig cfg;
  cfg.journal_path = path;
  const CampaignResult ran = run_jobs(errors, 8, cfg);
  EXPECT_EQ(ran.stats.attempted, errors.size());

  const JournalReplay jr = load_journal(path);
  EXPECT_TRUE(jr.header_ok);
  EXPECT_EQ(jr.rows.size(), errors.size());  // every row landed, any order

  // Resume replays everything: zero generator calls, identical result.
  int calls = 0;
  ParallelCampaignConfig rcfg;
  rcfg.journal_path = path;
  rcfg.resume = true;
  const CampaignResult resumed = run_jobs(errors, 4, rcfg, &calls);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(resumed.resumed_rows, errors.size());
  EXPECT_EQ(render_rows(resumed), render_rows(ran));
  EXPECT_EQ(resumed.stats.table1("t"), ran.stats.table1("t"));
  std::remove(path.c_str());
}

TEST(ParallelCampaign, ResumesFromOutOfOrderJournal) {
  // Hand-build a journal whose rows landed in scrambled index order (as a
  // parallel run produces) covering only part of the population.
  const auto errors = small_population(9);
  const std::string path = temp_journal("scrambled");
  BudgetedGenFn gen = pure_gen();
  Budget dummy;
  {
    std::ofstream out(path);
    out << journal_header_line(errors.size(),
                               campaign_fingerprint(model().dp, errors))
        << "\n";
    for (std::size_t i : {std::size_t{6}, std::size_t{0}, std::size_t{3}})
      out << journal_row_line(i, gen(errors[i], dummy)) << "\n";
  }

  int calls = 0;
  ParallelCampaignConfig cfg;
  cfg.journal_path = path;
  cfg.resume = true;
  const CampaignResult resumed = run_jobs(errors, 4, cfg, &calls);
  EXPECT_EQ(resumed.resumed_rows, 3u);
  EXPECT_EQ(calls, static_cast<int>(errors.size()) - 3);

  // Identical to an uninterrupted journal-free run.
  const CampaignResult full = run_jobs(errors, 2);
  EXPECT_EQ(render_rows(resumed), render_rows(full));
  EXPECT_EQ(resumed.stats.table1("t"), full.stats.table1("t"));
  std::remove(path.c_str());
}

TEST(ParallelCampaign, PreRequestedCancelAttemptsNothing) {
  CancelToken cancel;
  cancel.request_stop();
  ParallelCampaignConfig cfg;
  cfg.jobs = 4;
  cfg.cancel = &cancel;
  int calls = 0;
  const CampaignResult res =
      run_jobs(small_population(6), 4, cfg, &calls);
  EXPECT_TRUE(res.interrupted);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(res.stats.attempted, 0u);
}

// ------------------------------------- dropping honors the CampaignConfig

/// Deterministic scripted detection: whether `tc` "detects" an error is a
/// pure function of (test word, error description) - enough to exercise the
/// dropping bookkeeping without real simulation.
BatchDetectFn scripted_detect() {
  return [](const TestCase& tc, const std::vector<const DesignError*>& errs) {
    std::vector<bool> out(errs.size(), false);
    const std::uint32_t w = tc.imem.empty() ? 0 : tc.imem[0];
    for (std::size_t i = 0; i < errs.size(); ++i) {
      const std::size_t h =
          std::hash<std::string>{}(errs[i]->describe(model().dp));
      out[i] = ((h ^ w) % 3) == 0;
    }
    return out;
  };
}

TEST(DroppingConfig, JournalResumeReproducesDropsWithoutGeneratorRuns) {
  const auto errors = small_population(12);
  const std::string path = temp_journal("drop");
  std::remove(path.c_str());

  CampaignConfig cfg;
  cfg.journal_path = path;
  const CampaignResult first = run_campaign_with_dropping(
      model().dp, errors, pure_gen(), scripted_detect(), cfg);
  ASSERT_GT(first.dropped, 0u);
  // Only generator attempts are journaled - dropped errors have no row.
  EXPECT_EQ(load_journal(path).rows.size(), first.rows.size());

  int calls = 0;
  CampaignConfig rcfg;
  rcfg.journal_path = path;
  rcfg.resume = true;
  const CampaignResult resumed = run_campaign_with_dropping(
      model().dp, errors, pure_gen(&calls), scripted_detect(), rcfg);
  EXPECT_EQ(calls, 0);  // drops re-derived, no generator re-run
  EXPECT_EQ(resumed.dropped, first.dropped);
  EXPECT_EQ(resumed.tests_kept, first.tests_kept);
  EXPECT_EQ(render_rows(resumed), render_rows(first));
  EXPECT_EQ(resumed.stats.table1("t"), first.stats.table1("t"));
  std::remove(path.c_str());
}

TEST(DroppingConfig, BudgetFaultsAreHonored) {
  const auto errors = small_population(6);
  CampaignFaultPlan faults;
  faults[0].kind = CampaignFault::Kind::kBudgetExhaust;
  faults[0].abort = AbortReason::kDeadline;
  CampaignConfig cfg;
  cfg.faults = &faults;
  const CampaignResult res = run_campaign_with_dropping(
      model().dp, errors, pure_gen(), scripted_detect(), cfg);
  EXPECT_FALSE(res.rows[0].attempt.detected());
  EXPECT_EQ(res.rows[0].attempt.abort, AbortReason::kDeadline);
  EXPECT_EQ(res.stats.aborted_deadline, 1u);
}

TEST(DroppingConfig, CancellationStopsTheSweep) {
  const auto errors = small_population(10);
  CancelToken cancel;
  int calls = 0;
  BudgetedGenFn inner = pure_gen();
  const BudgetedGenFn cancelling = [&](const DesignError& e, Budget& b) {
    ErrorAttempt a = inner(e, b);
    if (++calls == 3) cancel.request_stop();
    return a;
  };
  CampaignConfig cfg;
  cfg.cancel = &cancel;
  const CampaignResult res = run_campaign_with_dropping(
      model().dp, errors, cancelling, scripted_detect(), cfg);
  EXPECT_TRUE(res.interrupted);
  EXPECT_EQ(calls, 3);
  EXPECT_LT(res.stats.attempted, errors.size());
}

}  // namespace
}  // namespace hltg
