// Tests of the branch-predictor (BTB) model variant: architectural
// equivalence with the ISA specification, misprediction recovery, and the
// performance effect of correct predictions.
#include <gtest/gtest.h>

#include "baseline/random_tg.h"
#include "core/tg.h"
#include "gatenet/levelize.h"
#include "isa/asm.h"
#include "netlist/check.h"
#include "sim/cosim.h"

namespace hltg {
namespace {

const DlxModel& bp_model() {
  static const DlxModel m = build_dlx({.branch_predictor = true});
  return m;
}

const DlxModel& base_model() {
  static const DlxModel m = build_dlx();
  return m;
}

TestCase make_tc(const std::string& src) {
  const AsmResult r = assemble(src);
  EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  TestCase tc;
  tc.imem = encode_program(r.program);
  return tc;
}

TEST(Predictor, ModelChecksClean) {
  const CheckResult r = check_netlist(bp_model().dp);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_NO_THROW(bp_model().ctrl.topo_order());
}

TEST(Predictor, AddsStateAndTertiarySignals) {
  const GateNetStats base = analyze(base_model().ctrl);
  const GateNetStats bp = analyze(bp_model().ctrl);
  EXPECT_GT(bp.num_dffs, base.num_dffs);          // prediction CPRs
  EXPECT_GT(bp.num_tertiary, base.num_tertiary);  // pred_taken crossings
  EXPECT_EQ(bp.num_sts, base.num_sts + 2);        // btb_hit, ptarget_eq
}

TEST(Predictor, StraightLineUnaffected) {
  const TestCase tc = make_tc(
      "addi r1, r0, 7\nadd r2, r1, r1\nsw 0x40(r0), r2\n");
  const CosimResult r = cosim(bp_model(), tc, drain_cycles(tc.imem.size()));
  EXPECT_TRUE(r.match) << r.diff;
}

TEST(Predictor, TakenBranchStillCorrect) {
  const TestCase tc = make_tc(
      "addi r1, r0, 1\n"
      "bnez r1, 2\n"
      "addi r2, r0, 99\n"   // squashed
      "addi r3, r0, 98\n"   // squashed
      "sw 0x40(r0), r1\n");
  const CosimResult r = cosim(bp_model(), tc, drain_cycles(tc.imem.size()));
  EXPECT_TRUE(r.match) << r.diff;
}

TEST(Predictor, LoopRePredictionSavesSquashes) {
  // A backward loop executes its branch repeatedly; after the first taken
  // branch trains the BTB, later iterations are predicted and cost no
  // squash. The predictor machine must squash strictly less.
  const TestCase tc = make_tc(
      "addi r1, r0, 6\n"
      "addi r2, r0, 0\n"
      "addi r2, r2, 1\n"    // pc 8: loop body
      "subi r1, r1, 1\n"
      "bnez r1, -3\n"       // back to pc 8
      "sw 0x40(r0), r2\n");
  const unsigned cycles = 64;
  ProcSim base(base_model(), tc);
  base.run(cycles);
  ProcSim bp(bp_model(), tc);
  bp.run(cycles);
  // Same architecture...
  EXPECT_TRUE(base.arch_trace().diff(bp.arch_trace()).empty());
  // ... fewer control-flow squashes.
  EXPECT_LT(bp.squashes(), base.squashes());
  EXPECT_GT(bp.squashes(), 0u);  // the final not-taken exit mispredicts
}

TEST(Predictor, SpecEquivalenceOnLoopProgram) {
  const TestCase tc = make_tc(
      "addi r1, r0, 4\n"
      "addi r3, r0, 0\n"
      "add r3, r3, r1\n"
      "subi r1, r1, 1\n"
      "bnez r1, -3\n"
      "sw 0x80(r0), r3\n");
  // Spec executes the same dynamic instruction stream: compare final state
  // after both machines have quiesced.
  const unsigned cycles = 96;
  const ArchTrace spec = spec_run(tc, cycles);
  const ArchTrace impl = impl_run(bp_model(), tc, cycles);
  EXPECT_TRUE(spec.diff(impl).empty()) << spec.diff(impl);
}

class PredictorRandomCosim : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, PredictorRandomCosim,
                         ::testing::Range(0, 16));

TEST_P(PredictorRandomCosim, MatchesSpec) {
  RandomTgConfig cfg;
  cfg.program_length = 36;
  cfg.reg_pool = 4;
  cfg.p_branch = 10;  // forward branches train and exercise the BTB
  Rng rng(4200 + GetParam());
  const TestCase tc = random_test(rng, cfg);
  const CosimResult r = cosim(bp_model(), tc, drain_cycles(tc.imem.size()));
  EXPECT_TRUE(r.match) << r.diff;
}

TEST(Predictor, BtbAliasOnNonBranchRecovers) {
  // Train entry for pc 8 (a branch), then execute a non-branch instruction
  // that aliases into the same BTB set on a later pass: the false
  // prediction must be detected in EX and invalidated, with no
  // architectural damage.
  const TestCase tc = make_tc(
      "j 1\n"            // pc 0: trains BTB entry 0 with target 8
      "nop\n"
      "addi r1, r0, 1\n" // pc 8
      "jr r31\n"         // pc 12: r31 = 0 -> jumps back to pc 0!
      "nop\n");
  // pc 0 re-executed: BTB predicts taken to 8 - correct again. Then the
  // loop continues; architectural equivalence is the whole assertion.
  const unsigned cycles = 48;
  const ArchTrace spec = spec_run(tc, cycles);
  const ArchTrace impl = impl_run(bp_model(), tc, cycles);
  EXPECT_TRUE(spec.diff(impl).empty()) << spec.diff(impl);
}

TEST(Predictor, TestGenerationStillWorks) {
  // The generic TG machinery runs unchanged on the predictor model.
  const NetId add_out = bp_model().dp.find_net("ex.alu_add");
  DesignError e{BusSslError{add_out, 0, false}};
  TestGenerator tg(bp_model());
  const TgResult r = tg.generate(e);
  ASSERT_EQ(r.status, TgStatus::kSuccess) << r.note;
  EXPECT_TRUE(detects(bp_model(), r.test, e.injection()));
}

TEST(Predictor, CampaignCoverageComparableOutsidePredictionPath) {
  // Spot-check a slice of the SSL campaign on the predictor model. Errors
  // inside the prediction machinery (BTB arrays, prediction plumbing) are
  // excluded: a corrupted prediction only causes a misprediction, which the
  // EX check *recovers from* with no architectural effect - they are
  // undetectable by spec-vs-implementation comparison by design.
  const auto raw = enumerate_bus_ssl(bp_model().dp);
  std::vector<BusSslError> filtered;
  for (const BusSslError& e : raw) {
    const std::string& nm = bp_model().dp.net(e.net).name;
    if (nm.rfind("btb.", 0) == 0 || nm == "idex.pc" || nm == "idex.ptarget" ||
        nm == "sts.ptarget_eq" || nm == "sts.btb_hit")
      continue;
    filtered.push_back(e);
  }
  std::vector<DesignError> some;
  const auto all = wrap(filtered);
  for (std::size_t i = 0; i < all.size(); i += 9) some.push_back(all[i]);
  TestGenerator tg(bp_model());
  const CampaignResult res = run_campaign(bp_model().dp, some, tg.strategy());
  // Slightly below the base model's rate: the extra prediction logic gives
  // CTRLJUST more ways to wander into redirect-implying assignments.
  EXPECT_GT(res.stats.detected * 10, res.stats.total * 7);  // > 70%
}

TEST(Predictor, PredictionPathErrorsAreArchitecturallyBenign) {
  // Direct demonstration: corrupt a BTB target line and run a branchy
  // program - the machine mispredicts, recovers, and matches the spec.
  const NetId tgt0 = bp_model().dp.find_net("btb.target0");
  ASSERT_NE(tgt0, kNoNet);
  const ErrorInjection inj = BusSslError{tgt0, 5, true}.injection();
  const TestCase tc = make_tc(
      "addi r1, r0, 3\n"
      "addi r2, r2, 1\n"    // pc 4: loop body
      "subi r1, r1, 1\n"
      "bnez r1, -3\n"       // trains BTB, then hits the corrupted target
      "sw 0x40(r0), r2\n");
  const unsigned cycles = 64;
  const ArchTrace spec = spec_run(tc, cycles);
  const ArchTrace impl = impl_run(bp_model(), tc, cycles, inj);
  EXPECT_TRUE(spec.diff(impl).empty()) << spec.diff(impl);
}

}  // namespace
}  // namespace hltg
