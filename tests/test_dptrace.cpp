// Tests of DPTRACE path selection over the space-time datapath graph.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/dptrace.h"
#include "errors/bus_ssl.h"
#include "errors/inject.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

const DpTrace& tracer() {
  static const DpTrace t(model());
  return t;
}

std::vector<RelaxConstraint> act_bit0(NetId site) {
  RelaxConstraint a;
  a.net = site;
  a.mask = 1;
  a.value = 1;
  a.why = "activation";
  return {a};
}

TEST(DpTrace, AluResultIsObservable) {
  const NetId n = model().dp.find_net("ex.alu_add");
  EXPECT_TRUE(tracer().statically_observable(n));
  EXPECT_TRUE(tracer().observable_without_redirect(n));
}

TEST(DpTrace, BranchTargetOnlyObservableViaRedirect) {
  for (const char* name : {"ex.btarget", "ex.imm_x4", "ex.redirect_target"}) {
    const NetId n = model().dp.find_net(name);
    ASSERT_NE(n, kNoNet) << name;
    EXPECT_TRUE(tracer().statically_observable(n)) << name;
    EXPECT_FALSE(tracer().observable_without_redirect(n)) << name;
  }
}

TEST(DpTrace, PlansStartAtStageFillCycle) {
  const NetId n = model().dp.find_net("ex.alu_sub");
  const auto plans = tracer().plans(n, act_bit0(n));
  ASSERT_FALSE(plans.empty());
  for (const PathPlan& p : plans) EXPECT_GE(p.activate_cycle, 2u);
  EXPECT_EQ(plans.front().activate_cycle, 2u);
}

TEST(DpTrace, PlanCarriesAluSelectObjectives) {
  const NetId n = model().dp.find_net("ex.alu_sub");
  const auto plans = tracer().plans(n, act_bit0(n));
  ASSERT_FALSE(plans.empty());
  // Some plan must pin alu_sel to SUB (0001) at the activation cycle.
  const CtrlBind* alu = model().find_ctrl(model().dp.find_net("ctrl.alu_sel"));
  bool found = false;
  for (const PathPlan& p : plans) {
    int hits = 0;
    for (const CtrlObjective& o : p.ctrl_objectives) {
      for (unsigned b = 0; b < alu->bits.size(); ++b)
        if (o.gate == alu->bits[b] && o.cycle == p.activate_cycle &&
            o.value == (b == 0))
          ++hits;
    }
    if (hits == static_cast<int>(alu->bits.size())) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(DpTrace, PlansEndAtObservationSinks) {
  const NetId n = model().dp.find_net("ex.alu_xor");
  const auto plans = tracer().plans(n, act_bit0(n));
  ASSERT_FALSE(plans.empty());
  for (const PathPlan& p : plans) {
    const ModuleKind k = model().dp.module(p.observe_module).kind;
    EXPECT_TRUE(k == ModuleKind::kMemWrite || k == ModuleKind::kRfWrite ||
                k == ModuleKind::kOutput);
    EXPECT_GE(p.observe_cycle, p.activate_cycle);
  }
}

TEST(DpTrace, ActivationConstraintAttached) {
  const NetId n = model().dp.find_net("ex.alu_or");
  const auto plans = tracer().plans(n, act_bit0(n));
  ASSERT_FALSE(plans.empty());
  for (const PathPlan& p : plans) {
    const auto it = std::find_if(
        p.relax_constraints.begin(), p.relax_constraints.end(),
        [&](const RelaxConstraint& c) {
          return c.why == "activation" && c.net == n &&
                 c.cycle == p.activate_cycle;
        });
    EXPECT_NE(it, p.relax_constraints.end());
  }
}

TEST(DpTrace, MemoryPortObservationForcesWordStore) {
  const NetId n = model().dp.find_net("ex.alu_add");
  const auto plans = tracer().plans(n, act_bit0(n));
  const CtrlBind* size = model().find_ctrl(model().dp.find_net("ctrl.size_sel"));
  bool saw_store_plan = false;
  for (const PathPlan& p : plans) {
    if (model().dp.module(p.observe_module).kind != ModuleKind::kMemWrite)
      continue;
    saw_store_plan = true;
    // size_sel must be pinned to kWord (bit0=0, bit1=1) at the store cycle.
    int hits = 0;
    for (const CtrlObjective& o : p.ctrl_objectives) {
      if (o.cycle != p.observe_cycle) continue;
      if (o.gate == size->bits[0] && !o.value) ++hits;
      if (o.gate == size->bits[1] && o.value) ++hits;
    }
    EXPECT_EQ(hits, 2);
  }
  EXPECT_TRUE(saw_store_plan);
}

TEST(DpTrace, RegisterFileObservationForbidsR0) {
  const NetId n = model().dp.find_net("mem.result");
  const auto plans = tracer().plans(n, act_bit0(n));
  bool saw_rf_plan = false;
  for (const PathPlan& p : plans) {
    if (model().dp.module(p.observe_module).kind != ModuleKind::kRfWrite)
      continue;
    saw_rf_plan = true;
    const auto it = std::find_if(
        p.relax_constraints.begin(), p.relax_constraints.end(),
        [](const RelaxConstraint& c) { return c.why == "dest-not-r0"; });
    EXPECT_NE(it, p.relax_constraints.end());
  }
  EXPECT_TRUE(saw_rf_plan);
}

TEST(DpTrace, StsComparatorGetsBypassConsumptionPath) {
  for (const char* name :
       {"sts.fwda_mem", "sts.fwdb_wb", "sts.dest_mem_nz"}) {
    const NetId n = model().dp.find_net(name);
    ASSERT_NE(n, kNoNet) << name;
    EXPECT_TRUE(tracer().observable_without_redirect(n)) << name;
  }
}

TEST(DpTrace, BranchConditionHasNoDataPath) {
  // a_zero is only consumed by the branch decision: no redirect-free path.
  const NetId n = model().dp.find_net("sts.a_zero");
  EXPECT_FALSE(tracer().observable_without_redirect(n));
}

TEST(DpTrace, SpecifierPipeRegObservableThroughComparators) {
  const NetId n = model().dp.find_net("idex.rsb");
  EXPECT_TRUE(tracer().statically_observable(n));
  const auto plans = tracer().plans(n, act_bit0(n));
  EXPECT_FALSE(plans.empty());
}

TEST(DpTrace, PlanCyclesFitWindow) {
  DpTraceConfig cfg;
  cfg.window = 8;
  const DpTrace tr(model(), cfg);
  const NetId n = model().dp.find_net("memwb.value");
  const auto plans = tr.plans(n, act_bit0(n));
  for (const PathPlan& p : plans) {
    EXPECT_LT(p.observe_cycle, 8u);
    for (const PathHop& h : p.hops) EXPECT_LT(h.cycle, 8u);
  }
}

// ------------------------------------------- shared-prefix reuse equivalence

bool same_objective(const CtrlObjective& a, const CtrlObjective& b) {
  return a.gate == b.gate && a.cycle == b.cycle && a.value == b.value;
}

bool same_constraint(const RelaxConstraint& a, const RelaxConstraint& b) {
  return a.kind == b.kind && a.net == b.net && a.cycle == b.cycle &&
         a.mask == b.mask && a.value == b.value && a.net2 == b.net2 &&
         a.why == b.why;
}

::testing::AssertionResult same_plans(const std::vector<PathPlan>& a,
                                      const std::vector<PathPlan>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "plan count " << a.size() << " vs " << b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const PathPlan& p = a[i];
    const PathPlan& q = b[i];
    if (p.activate_cycle != q.activate_cycle ||
        p.observe_cycle != q.observe_cycle ||
        p.observe_module != q.observe_module)
      return ::testing::AssertionFailure() << "plan " << i << " header";
    if (p.hops.size() != q.hops.size() ||
        p.ctrl_objectives.size() != q.ctrl_objectives.size() ||
        p.relax_constraints.size() != q.relax_constraints.size())
      return ::testing::AssertionFailure() << "plan " << i << " sizes";
    for (std::size_t j = 0; j < p.hops.size(); ++j)
      if (p.hops[j].net != q.hops[j].net || p.hops[j].cycle != q.hops[j].cycle)
        return ::testing::AssertionFailure() << "plan " << i << " hop " << j;
    for (std::size_t j = 0; j < p.ctrl_objectives.size(); ++j)
      if (!same_objective(p.ctrl_objectives[j], q.ctrl_objectives[j]))
        return ::testing::AssertionFailure()
               << "plan " << i << " objective " << j;
    for (std::size_t j = 0; j < p.relax_constraints.size(); ++j)
      if (!same_constraint(p.relax_constraints[j], q.relax_constraints[j]))
        return ::testing::AssertionFailure()
               << "plan " << i << " constraint " << j;
  }
  return ::testing::AssertionSuccess();
}

TEST(DpTraceReuse, PlansIdenticalToLegacyAcrossTable1Sites) {
  // The memoized enumerator must reproduce the per-cycle enumerator's plans
  // exactly - order AND contents - for every Table-1 SSL error site, at the
  // base and the retry window. This is the equivalence the tentpole reuse
  // optimization is gated on.
  std::set<NetId> sites;
  for (const DesignError& e : wrap(enumerate_bus_ssl(model().dp)))
    sites.insert(e.site_net(model().dp));
  ASSERT_FALSE(sites.empty());
  for (unsigned window : {14u, 20u}) {
    DpTraceConfig legacy_cfg;
    legacy_cfg.window = window;
    legacy_cfg.reuse = false;
    DpTraceConfig reuse_cfg = legacy_cfg;
    reuse_cfg.reuse = true;
    const DpTrace legacy(model(), legacy_cfg);
    const DpTrace reusing(model(), reuse_cfg);
    for (NetId site : sites) {
      SCOPED_TRACE("site " + std::to_string(site) + " window " +
                   std::to_string(window));
      EXPECT_TRUE(same_plans(reusing.plans(site, act_bit0(site)),
                             legacy.plans(site, act_bit0(site))));
    }
  }
}

TEST(DpTraceReuse, ReuseSkipsSearchesAndCutsExpansions) {
  std::set<NetId> sites;
  for (const DesignError& e : wrap(enumerate_bus_ssl(model().dp)))
    sites.insert(e.site_net(model().dp));
  DpTraceConfig legacy_cfg;
  legacy_cfg.reuse = false;
  const DpTrace legacy(model(), legacy_cfg);
  DpTraceStats on{}, off{};
  for (NetId site : sites) {
    tracer().plans(site, act_bit0(site), nullptr, &on);
    legacy.plans(site, act_bit0(site), nullptr, &off);
  }
  EXPECT_GT(on.searches_reused, 0u);
  EXPECT_EQ(on.searches_run + on.searches_reused,
            off.searches_run);  // same activation cycles visited
  EXPECT_LT(on.expansions, off.expansions);
}

TEST(DpTrace, HopsAreConnectedInTime) {
  const NetId n = model().dp.find_net("ex.alu_and");
  const auto plans = tracer().plans(n, act_bit0(n));
  ASSERT_FALSE(plans.empty());
  for (const PathPlan& p : plans) {
    for (std::size_t i = 1; i < p.hops.size(); ++i) {
      const unsigned dt = p.hops[i].cycle - p.hops[i - 1].cycle;
      EXPECT_LE(dt, 1u);  // combinational or one pipe register
    }
  }
}

}  // namespace
}  // namespace hltg
