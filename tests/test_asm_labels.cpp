// Tests of the assembler's label support and label-resolved control flow.
#include <gtest/gtest.h>

#include "isa/asm.h"
#include "isa/spec_sim.h"
#include "sim/cosim.h"

namespace hltg {
namespace {

TEST(AsmLabels, ForwardLabelResolves) {
  const AsmResult r = assemble(
      "beqz r0, skip\n"
      "addi r1, r0, 99\n"
      "skip: addi r2, r0, 5\n");
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  ASSERT_EQ(r.program.size(), 3u);
  EXPECT_EQ(r.program[0].imm, 1);  // one word forward of the delay slot
}

TEST(AsmLabels, BackwardLabelResolves) {
  const AsmResult r = assemble(
      "loop: subi r1, r1, 1\n"
      "bnez r1, loop\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.program[1].imm, -2);
}

TEST(AsmLabels, LabelOnOwnLine) {
  const AsmResult r = assemble(
      "j end\n"
      "nop\n"
      "end:\n"
      "addi r1, r0, 1\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.program[0].imm, 1);  // lands on the addi (index 2)
}

TEST(AsmLabels, UndefinedLabelReported) {
  const AsmResult r = assemble("beqz r0, nowhere\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].find("undefined label"), std::string::npos);
}

TEST(AsmLabels, DuplicateLabelReported) {
  const AsmResult r = assemble("a: nop\na: nop\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].find("duplicate label"), std::string::npos);
}

TEST(AsmLabels, LoopProgramExecutesCorrectly) {
  const AsmResult r = assemble(
      "      addi r1, r0, 5\n"
      "      addi r2, r0, 0\n"
      "loop: add  r2, r2, r1\n"
      "      subi r1, r1, 1\n"
      "      bnez r1, loop\n"
      "      sw 0x40(r0), r2\n");
  ASSERT_TRUE(r.ok());
  TestCase tc;
  tc.imem = encode_program(r.program);
  const ArchTrace t = spec_run(tc, 64);
  EXPECT_EQ(t.rf_final[2], 15u);  // 5+4+3+2+1
  ASSERT_EQ(t.writes.size(), 1u);
  EXPECT_EQ(t.writes[0].data, 15u);
}

TEST(AsmLabels, LoopMatchesPipelinedImplementation) {
  const AsmResult r = assemble(
      "      addi r1, r0, 4\n"
      "loop: subi r1, r1, 1\n"
      "      bnez r1, loop\n"
      "      sw 0x40(r0), r1\n");
  ASSERT_TRUE(r.ok());
  TestCase tc;
  tc.imem = encode_program(r.program);
  static const DlxModel m = build_dlx();
  const unsigned cycles = 64;
  const ArchTrace spec = spec_run(tc, cycles);
  const ArchTrace impl = impl_run(m, tc, cycles);
  EXPECT_TRUE(spec.diff(impl).empty()) << spec.diff(impl);
}

TEST(AsmLabels, NumericOffsetsStillWork) {
  const AsmResult r = assemble("beqz r1, -3\nj 2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.program[0].imm, -3);
  EXPECT_EQ(r.program[1].imm, 2);
}

TEST(AsmLabels, MalformedOperandAfterLabelUse) {
  // A bad line containing a label reference must not leave a dangling
  // fixup on the next instruction.
  const AsmResult r = assemble(
      "beqz r1, target junk_tail\n"
      "j target\n"
      "target: nop\n");
  ASSERT_FALSE(r.ok());              // first line is malformed
  ASSERT_EQ(r.program.size(), 2u);   // j + nop assembled
  EXPECT_EQ(r.program[0].imm, 0);    // j lands on the nop right after
}

}  // namespace
}  // namespace hltg
