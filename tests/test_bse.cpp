// Tests of the bus source error model and campaign error-dropping.
#include <gtest/gtest.h>

#include "core/tg.h"
#include "errors/bse.h"
#include "isa/asm.h"
#include "sim/cosim.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

TestCase make_tc(const std::string& src) {
  const AsmResult r = assemble(src);
  EXPECT_TRUE(r.ok());
  TestCase tc;
  tc.imem = encode_program(r.program);
  return tc;
}

TEST(Bse, EnumerationShape) {
  const auto errs = enumerate_bse(model().dp);
  EXPECT_GT(errs.size(), 30u);
  for (const auto& e : errs) {
    const Module& m = model().dp.module(e.module);
    ASSERT_LT(e.input, m.data_in.size());
    EXPECT_EQ(model().dp.net(m.data_in[e.input]).width,
              model().dp.net(e.wrong_source).width)
        << e.describe(model().dp);
    EXPECT_NE(m.data_in[e.input], e.wrong_source);
  }
}

TEST(Bse, RewiredAdderDetectedByDirectedTest) {
  // Rewire the ALU adder's second operand to operand A: add computes a + a.
  const ModId add = model().dp.find_module("ex.alu_add");
  const NetId a_byp = model().dp.find_net("ex.a_byp");
  BusSourceError e{add, 1, a_byp};
  TestCase tc = make_tc(
      "addi r1, r0, 3\n"
      "addi r2, r0, 5\n"
      "add r3, r1, r2\n"  // 8 good, 6 erroneous (3+3)
      "sw 0x40(r0), r3\n");
  EXPECT_TRUE(detects(model(), tc, e.injection()));
}

TEST(Bse, NotDetectedWhenSourcesAgree) {
  // The rewiring is permanent, so *every* cycle must have op2 == operand A
  // for it to stay invisible: use a same-source add (a == b) with no
  // immediate instructions (whose op2 = imm would differ from A).
  const ModId add = model().dp.find_module("ex.alu_add");
  const NetId a_byp = model().dp.find_net("ex.a_byp");
  BusSourceError e{add, 1, a_byp};
  TestCase tc = make_tc("add r3, r1, r1\nsw 0x40(r0), r3\n");
  tc.rf_init[1] = 4;
  // The store's address adder uses op2 = imm(0x40) vs A = r0: rewired it
  // computes 0+0. That *is* visible - so restrict further: store datum via
  // the same-register idiom and a zero offset from a register holding the
  // address... simplest invisibility: no store at all, compare final RF.
  tc.imem = make_tc("add r3, r1, r1\n").imem;
  EXPECT_FALSE(detects(model(), tc, e.injection()));
}

TEST(Bse, GeneratorCoversRewiredOperand) {
  const ModId add = model().dp.find_module("ex.alu_add");
  const NetId a_byp = model().dp.find_net("ex.a_byp");
  DesignError e{BusSourceError{add, 1, a_byp}};
  TestGenerator tg(model());
  const TgResult r = tg.generate(e);
  ASSERT_EQ(r.status, TgStatus::kSuccess) << r.note;
  EXPECT_TRUE(detects(model(), r.test, e.injection()));
}

TEST(Bse, GeneratorCoversRewiredMuxInput) {
  // Bypass mux input 1 (EX/MEM source) rewired to the stale operand: only
  // detectable when the bypass actually fires.
  const ModId byp = model().dp.find_module("ex.a_byp");
  const Module& mux = model().dp.module(byp);
  DesignError e{BusSourceError{byp, 1, mux.data_in[0]}};
  TestGenerator tg(model());
  const TgResult r = tg.generate(e);
  ASSERT_EQ(r.status, TgStatus::kSuccess) << r.note;
  EXPECT_TRUE(detects(model(), r.test, e.injection()));
}

TEST(Bse, WrapperRoundTrip) {
  const auto errs = wrap(enumerate_bse(model().dp));
  ASSERT_FALSE(errs.empty());
  EXPECT_EQ(errs[0].model_name(), "BSE");
  EXPECT_NE(errs[0].site_net(model().dp), kNoNet);
  EXPECT_FALSE(errs[0].describe(model().dp).empty());
}

TEST(CampaignDropping, CompactsTestSet) {
  // Small slice of the SSL population with real generation + dropping.
  const auto all = wrap(enumerate_bus_ssl(model().dp));
  std::vector<DesignError> some(all.begin(), all.begin() + 24);
  TestGenerator tg(model());
  const CampaignResult plain = run_campaign(model().dp, some, tg.strategy());
  TestGenerator tg2(model());
  const CampaignResult dropped = run_campaign_with_dropping(
      model().dp, some, tg2.strategy(),
      [&](const TestCase& tc, const DesignError& e) {
        return detects(model(), tc, e.injection());
      });
  EXPECT_GE(dropped.stats.detected, plain.stats.detected);
  EXPECT_LT(dropped.tests_kept, plain.tests_kept);
  EXPECT_GT(dropped.dropped, 0u);
  EXPECT_EQ(dropped.stats.detected,
            dropped.tests_kept + dropped.dropped);
}

TEST(CampaignDropping, EveryKeptTestStillConfirmed) {
  const auto all = wrap(enumerate_bus_ssl(model().dp));
  std::vector<DesignError> some(all.begin(), all.begin() + 12);
  TestGenerator tg(model());
  const CampaignResult res = run_campaign_with_dropping(
      model().dp, some, tg.strategy(),
      [&](const TestCase& tc, const DesignError& e) {
        return detects(model(), tc, e.injection());
      });
  for (const CampaignRow& row : res.rows)
    if (row.attempt.generated)
      EXPECT_TRUE(detects(model(), row.attempt.test,
                          row.error.injection()));
}

}  // namespace
}  // namespace hltg
