// I/O fault-injection harness (util/failpoint) and the crash-recovery
// claims it exists to prove: spec parsing and one-shot semantics, injected
// write/fsync failures degrading the journal without corrupting the
// campaign, and fork-based kill-at-syscall tests asserting that every
// injected crash ends in a clean warm- or cold-start - never a wrong
// answer. (docs/ROBUSTNESS.md "Fault injection".)
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/tg.h"
#include "errors/bus_ssl.h"
#include "errors/journal.h"
#include "solver/store.h"
#include "util/failpoint.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

DesignError ssl_err(unsigned bit, bool v) {
  const NetId n = model().dp.find_net("ex.alu_add");
  EXPECT_NE(n, kNoNet);
  return DesignError{BusSslError{n, bit, v}};
}

std::vector<DesignError> small_population(std::size_t n = 8) {
  std::vector<DesignError> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(ssl_err(static_cast<unsigned>(i % 32), i % 2));
  return out;
}

/// Scripted generator, a pure function of the error (as in
/// test_parallel_campaign): crash-recovery comparisons need reruns to be
/// byte-identical.
BudgetedGenFn pure_gen() {
  auto hash = [](const DesignError& e) {
    return std::hash<std::string>{}(e.describe(model().dp));
  };
  return [hash](const DesignError& e, Budget&) {
    const std::size_t h = hash(e);
    ErrorAttempt a;
    a.generated = a.sim_confirmed = (h % 3) != 0;
    a.test_length = 3 + static_cast<unsigned>(h % 5);
    a.backtracks = h % 7;
    a.decisions = h % 11;
    if (a.detected()) {
      a.test.imem = {0x20220000u | static_cast<std::uint32_t>(h & 0xFF)};
      a.test.rf_init[3] = static_cast<std::uint32_t>(h);
    } else {
      a.note = "scripted give-up";
    }
    return a;
  };
}

std::string render_rows(const CampaignResult& r) {
  std::string s;
  for (std::size_t i = 0; i < r.rows.size(); ++i)
    s += journal_row_line(i, r.rows[i].attempt) + "\n";
  return s;
}

std::string temp_path(const char* tag) {
  return testing::TempDir() + "hltg_failpoint_" + tag;
}

/// RAII disarm: a test that configures failpoints must not leak them into
/// the next test.
struct FailpointGuard {
  ~FailpointGuard() { failpoint::clear(); }
};

// ------------------------------------------------------------ spec parsing

TEST(FailpointSpec, ParsesGoodSpecsRejectsBadOnes) {
  FailpointGuard guard;
  std::string err;
  EXPECT_TRUE(failpoint::configure("journal.write=short", &err)) << err;
  EXPECT_TRUE(failpoint::configure("a=enospc;b=eio@3;c=kill-after", &err))
      << err;
  EXPECT_TRUE(failpoint::enabled());

  EXPECT_FALSE(failpoint::configure("nonsense", &err));
  EXPECT_FALSE(err.empty());
  EXPECT_TRUE(failpoint::enabled());  // bad spec leaves previous config armed

  EXPECT_FALSE(failpoint::configure("x=explode", &err));
  EXPECT_FALSE(failpoint::configure("x=kill@0", &err));
  EXPECT_FALSE(failpoint::configure("x=kill@junk", &err));

  EXPECT_TRUE(failpoint::configure("", &err));  // empty == clear
  EXPECT_FALSE(failpoint::enabled());
}

TEST(FailpointSpec, FiresAtTheNthHitThenDisarms) {
  FailpointGuard guard;
  ASSERT_TRUE(failpoint::configure("s=eio@2"));
  int err = 0;
  EXPECT_EQ(failpoint::hit("s", &err), failpoint::Action::kNone);
  EXPECT_EQ(failpoint::hit("other", &err), failpoint::Action::kNone);
  EXPECT_EQ(failpoint::hit("s", &err), failpoint::Action::kError);
  EXPECT_EQ(err, EIO);
  // One-shot: fired points disarm, and with no points left the fast path
  // goes back to disabled.
  EXPECT_EQ(failpoint::hit("s", &err), failpoint::Action::kNone);
  EXPECT_FALSE(failpoint::enabled());
}

TEST(FailpointSpec, ShortWriteTearsAndSetsErrno) {
  FailpointGuard guard;
  const std::string path = temp_path("short.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_TRUE(failpoint::configure("w=short"));
  const char buf[10] = "123456789";
  errno = 0;
  const std::size_t wrote = failpoint::checked_fwrite(buf, 10, f, "w");
  EXPECT_EQ(wrote, 5u);  // torn: half the payload reached the stream
  EXPECT_EQ(errno, ENOSPC);
  // Disarmed: the retry goes through untouched.
  EXPECT_EQ(failpoint::checked_fwrite(buf, 10, f, "w"), 10u);
  std::fclose(f);
  std::remove(path.c_str());
}

// ------------------------------------- injected failures degrade cleanly

TEST(FailpointJournal, WriteFailureDisablesJournalingNotTheCampaign) {
  FailpointGuard guard;
  const auto errors = small_population();
  const std::string path = temp_path("enospc.jsonl");
  std::remove(path.c_str());

  CampaignConfig cfg;
  cfg.journal_path = path;
  ASSERT_TRUE(failpoint::configure("journal.write=enospc@3"));
  const CampaignResult res =
      run_campaign(model().dp, errors, pure_gen(), cfg);

  // The campaign itself is unharmed - every error attempted, stats intact.
  EXPECT_EQ(res.stats.attempted, errors.size());
  EXPECT_FALSE(res.interrupted);
  EXPECT_NE(res.journal_note.find("journaling disabled"), std::string::npos);

  // The journal holds the healthy prefix only, and that prefix replays.
  const JournalReplay jr = load_journal(path);
  EXPECT_LT(jr.rows.size(), errors.size());
  std::remove(path.c_str());
}

TEST(FailpointJournal, TornFinalRowIsDroppedAndResumeMatches) {
  const auto errors = small_population();
  const std::string path = temp_path("torn.jsonl");
  std::remove(path.c_str());

  CampaignConfig cfg;
  cfg.journal_path = path;
  const CampaignResult full =
      run_campaign(model().dp, errors, pure_gen(), cfg);
  EXPECT_EQ(full.stats.attempted, errors.size());

  // Tear the final row mid-line, as a crash between write and flush would.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 20u);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 15));
  out.close();

  CampaignConfig rcfg;
  rcfg.journal_path = path;
  rcfg.resume = true;
  const CampaignResult resumed =
      run_campaign(model().dp, errors, pure_gen(), rcfg);
  EXPECT_LT(resumed.resumed_rows, errors.size());  // torn row was dropped
  EXPECT_EQ(render_rows(resumed), render_rows(full));
  EXPECT_EQ(resumed.stats.table1("t"), full.stats.table1("t"));
  std::remove(path.c_str());
}

// --------------------------------------------- kill-at-syscall (fork'ed)

/// Run `body` in a fork'ed child and expect it to die with the failpoint
/// kill exit code. The child must not return normally; if it survives the
/// injection it exits 0 and the expectation fails loudly.
void expect_killed(const std::function<void()>& body) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    body();
    _exit(0);  // survived: the failpoint did not fire
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), failpoint::kKillExitCode);
}

TEST(FailpointCrash, KillDuringJournalWriteResumesByteIdentical) {
  const auto errors = small_population();
  const std::string path = temp_path("kill_write.jsonl");
  std::remove(path.c_str());

  expect_killed([&] {
    failpoint::configure("journal.write=kill@5");
    CampaignConfig cfg;
    cfg.journal_path = path;
    cfg.journal_fsync_interval = 1;  // every surviving row is durable
    run_campaign(model().dp, errors, pure_gen(), cfg);
  });

  // The survivor prefix (possibly ending in a torn row, which the loader
  // drops) plus a resumed run reproduces the uninterrupted campaign
  // byte-for-byte.
  const JournalReplay jr = load_journal(path);
  EXPECT_TRUE(jr.header_ok);
  EXPECT_GT(jr.rows.size(), 0u);
  EXPECT_LT(jr.rows.size(), errors.size());

  CampaignConfig rcfg;
  rcfg.journal_path = path;
  rcfg.resume = true;
  const CampaignResult resumed =
      run_campaign(model().dp, errors, pure_gen(), rcfg);
  const CampaignResult reference =
      run_campaign(model().dp, errors, pure_gen(), CampaignConfig{});
  EXPECT_EQ(resumed.resumed_rows, jr.rows.size());
  EXPECT_EQ(render_rows(resumed), render_rows(reference));
  EXPECT_EQ(resumed.stats.table1("t"), reference.stats.table1("t"));
  std::remove(path.c_str());
}

TEST(FailpointCrash, KillDuringJournalFsyncResumesByteIdentical) {
  const auto errors = small_population();
  const std::string path = temp_path("kill_fsync.jsonl");
  std::remove(path.c_str());

  expect_killed([&] {
    failpoint::configure("journal.fsync=kill@3");
    CampaignConfig cfg;
    cfg.journal_path = path;
    cfg.journal_fsync_interval = 1;
    run_campaign(model().dp, errors, pure_gen(), cfg);
  });

  CampaignConfig rcfg;
  rcfg.journal_path = path;
  rcfg.resume = true;
  const CampaignResult resumed =
      run_campaign(model().dp, errors, pure_gen(), rcfg);
  const CampaignResult reference =
      run_campaign(model().dp, errors, pure_gen(), CampaignConfig{});
  EXPECT_GT(resumed.resumed_rows, 0u);
  EXPECT_EQ(render_rows(resumed), render_rows(reference));
  std::remove(path.c_str());
}

/// Store image for the crash tests: real deduction state, small but
/// nonempty.
DedSnapshot sample_snapshot(std::uint32_t salt) {
  SolverContext ctx;
  ctx.nogoods.learn({{GateId{salt}, 1, true}});
  ctx.nogoods.learn({{GateId{salt + 1}, 2, false}});
  return export_context(ctx);
}

TEST(FailpointCrash, KillDuringStoreSaveLeavesOldStoreIntact) {
  const std::string path = temp_path("kill_store.ded");
  std::remove(path.c_str());
  std::string why;
  const DedSnapshot old_snap = sample_snapshot(10);
  ASSERT_TRUE(save_ded_store(path, DedStoreMeta{}, old_snap, &why)) << why;

  // Die at three different syscalls of the save; after each, the
  // previously committed store must load unchanged (atomic replace).
  for (const char* spec :
       {"store.write=kill@2", "store.fsync=kill", "store.rename=kill"}) {
    expect_killed([&] {
      failpoint::configure(spec);
      std::string w;
      save_ded_store(path, DedStoreMeta{}, sample_snapshot(99), &w);
    });
    const DedStoreLoad load = load_ded_store(path, 0, 0);
    ASSERT_TRUE(load.ok) << spec << ": " << load.note;
    EXPECT_EQ(load.snapshot.nogoods, old_snap.nogoods) << spec;
  }

  // And a healthy save afterwards replaces it (the crash left no state
  // that blocks recovery).
  const DedSnapshot new_snap = sample_snapshot(99);
  ASSERT_TRUE(save_ded_store(path, DedStoreMeta{}, new_snap, &why)) << why;
  const DedStoreLoad load = load_ded_store(path, 0, 0);
  ASSERT_TRUE(load.ok) << load.note;
  EXPECT_EQ(load.snapshot.nogoods, new_snap.nogoods);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(FailpointCrash, KillAfterRenameIsAlreadyCommitted) {
  // kill-after on the rename: the new store IS the store (the crash
  // happened after the commit point).
  const std::string path = temp_path("kill_after.ded");
  std::remove(path.c_str());
  std::string why;
  ASSERT_TRUE(save_ded_store(path, DedStoreMeta{}, sample_snapshot(1), &why))
      << why;

  const DedSnapshot next = sample_snapshot(50);
  expect_killed([&] {
    failpoint::configure("store.rename=kill-after");
    std::string w;
    save_ded_store(path, DedStoreMeta{}, sample_snapshot(50), &w);
  });
  const DedStoreLoad load = load_ded_store(path, 0, 0);
  ASSERT_TRUE(load.ok) << load.note;
  EXPECT_EQ(load.snapshot.nogoods, next.nogoods);
  std::remove(path.c_str());
}

// -------------------------------------------------- writability probes

TEST(Probes, FileAndDirProbesDiagnoseUnwritablePaths) {
  std::string why;
  EXPECT_FALSE(probe_writable_file("/nonexistent-dir/x.jsonl", &why));
  EXPECT_FALSE(why.empty());

  const std::string good = temp_path("probe.bin");
  std::remove(good.c_str());
  EXPECT_TRUE(probe_writable_file(good, &why)) << why;
  // The probe leaves the (empty) file in place by contract.
  std::FILE* f = std::fopen(good.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  if (f) std::fclose(f);
  std::remove(good.c_str());

  EXPECT_TRUE(probe_writable_dir(testing::TempDir(), &why)) << why;
  // A missing directory is created, mirroring the quarantine writer.
  const std::string fresh = temp_path("probe_dir/nested");
  EXPECT_TRUE(probe_writable_dir(fresh, &why)) << why;
  // A path whose parent is a regular file can never become a directory
  // (works for root too, unlike a permission-based negative case).
  const std::string blocker = temp_path("probe_blocker");
  { std::ofstream(blocker) << "x"; }
  EXPECT_FALSE(probe_writable_dir(blocker + "/sub", &why));
  EXPECT_FALSE(probe_writable_dir(blocker, &why));  // exists, not a dir
  std::remove(blocker.c_str());
}

}  // namespace
}  // namespace hltg
