// Self-checking triage layer (docs/ROBUSTNESS.md "Self-checking and
// triage"): ddmin witness minimization, independent-oracle cross-checks,
// claim-mismatch quarantine bundles (deterministic across --jobs),
// cross-config recovery, journal replay of triaged rows, and batch-drop
// claim refutation.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "baseline/random_tg.h"
#include "errors/journal.h"
#include "errors/parallel_campaign.h"
#include "isa/testcase_io.h"
#include "triage/bundle.h"
#include "triage/ddmin.h"
#include "triage/triage.h"
#include "triage/witness_check.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

DesignError ssl(const char* net, unsigned bit, bool v) {
  const NetId n = model().dp.find_net(net);
  EXPECT_NE(n, kNoNet) << net;
  return DesignError{BusSslError{n, bit, v}};
}

std::vector<DesignError> alu_population(std::size_t n = 3) {
  std::vector<DesignError> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(ssl("ex.alu_add", static_cast<unsigned>(i), false));
  return out;
}

/// Pure give-up generator: deterministic, zero effort, never detects.
BudgetedGenFn giveup_gen(int* calls = nullptr) {
  return [calls](const DesignError&, Budget&) {
    if (calls) ++*calls;
    ErrorAttempt a;
    a.note = "scripted give-up";
    return a;
  };
}

/// A "witness" that provably detects nothing: NOPs only, so the ALU adder
/// never produces a nonzero result and no architectural trace can diverge.
ErrorAttempt bogus_attempt() {
  ErrorAttempt a;
  a.generated = a.sim_confirmed = true;  // the lie under test
  a.test.imem.assign(6, 0x00000000u);
  a.test.rf_init[5] = 7;       // data ddmin should strip these too
  a.test.dmem_init[0x100] = 3;
  a.test_length = 6;
  return a;
}

std::string temp_path(const char* tag) {
  return testing::TempDir() + "hltg_triage_" + tag;
}

// ------------------------------------------------------------------ ddmin

TestCase words(std::initializer_list<std::uint32_t> ws) {
  TestCase tc;
  tc.imem = ws;
  return tc;
}

TEST(Ddmin, ShrinksToTheOneRelevantInstruction) {
  TestCase tc = words({1, 2, 3, 4, 0xAABBCCDD, 5, 6, 7, 8, 9, 10, 11});
  const TestPredicate has_marker = [](const TestCase& c) {
    for (std::uint32_t w : c.imem)
      if (w == 0xAABBCCDD) return true;
    return false;
  };
  Budget b;
  const DdminResult r = ddmin_test(tc, has_marker, b);
  EXPECT_TRUE(r.stats.property_held);
  EXPECT_EQ(r.stats.abort, AbortReason::kNone);
  EXPECT_EQ(r.stats.orig_instrs, 12u);
  EXPECT_EQ(r.test.imem, std::vector<std::uint32_t>{0xAABBCCDD});
  EXPECT_EQ(r.stats.min_instrs, 1u);
  EXPECT_GT(r.stats.probes, 1u);
  EXPECT_NE(r.stats.summary().find("12 -> 1"), std::string::npos);
}

TEST(Ddmin, IsIdempotent) {
  TestCase tc = words({9, 9, 0xAABBCCDD, 9});
  const TestPredicate has_marker = [](const TestCase& c) {
    for (std::uint32_t w : c.imem)
      if (w == 0xAABBCCDD) return true;
    return false;
  };
  Budget b1;
  const DdminResult once = ddmin_test(tc, has_marker, b1);
  Budget b2;
  const DdminResult twice = ddmin_test(once.test, has_marker, b2);
  EXPECT_EQ(twice.test.imem, once.test.imem);
  EXPECT_EQ(twice.stats.orig_instrs, twice.stats.min_instrs);
  EXPECT_EQ(twice.stats.data_removed, 0u);
}

TEST(Ddmin, FailingPropertyReturnsInputUnchanged) {
  const TestCase tc = words({1, 2, 3});
  Budget b;
  const DdminResult r =
      ddmin_test(tc, [](const TestCase&) { return false; }, b);
  EXPECT_FALSE(r.stats.property_held);
  EXPECT_EQ(r.test.imem, tc.imem);
  EXPECT_EQ(r.stats.probes, 1u);
}

TEST(Ddmin, BudgetCutsThePassKeepingBestSoFar) {
  TestCase tc = words({1, 2, 3, 4, 5, 6, 7, 8});
  const TestPredicate always = [](const TestCase&) { return true; };
  Budget b;
  b.set_max_decisions(2);  // fires after a couple of probes
  const DdminResult r = ddmin_test(tc, always, b);
  EXPECT_EQ(r.stats.abort, AbortReason::kDecisions);
  EXPECT_LE(r.stats.probes, 4u);
  EXPECT_LE(r.test.imem.size(), tc.imem.size());
  EXPECT_NE(r.stats.summary().find("budget"), std::string::npos);
}

TEST(Ddmin, StripsIrrelevantDataWords) {
  TestCase tc = words({0xAABBCCDD});
  tc.rf_init[3] = 11;
  tc.rf_init[7] = 22;
  tc.dmem_init[0x40] = 1;
  tc.dmem_init[0x44] = 2;
  const TestPredicate imem_only = [](const TestCase& c) {
    return !c.imem.empty() && c.imem[0] == 0xAABBCCDD;
  };
  Budget b;
  const DdminResult r = ddmin_test(tc, imem_only, b);
  EXPECT_EQ(r.stats.data_removed, 4u);
  EXPECT_EQ(r.test.rf_init[3], 0u);
  EXPECT_EQ(r.test.rf_init[7], 0u);
  EXPECT_TRUE(r.test.dmem_init.empty());
}

// ---------------------------------------------------------- witness_check

TEST(WitnessCheckTest, ClassifiesClaimsAgainstTheOracle) {
  const DesignError err = ssl("ex.alu_add", 0, false);
  const TestCase nops = bogus_attempt().test;
  // A NOP program cannot detect the stuck bit: claiming "undetected" is
  // confirmed, claiming "detected" is a mismatch.
  EXPECT_EQ(check_witness(model(), nops, err, false).verdict,
            WitnessVerdict::kConfirmed);
  const WitnessCheck bad = check_witness(model(), nops, err, true);
  EXPECT_EQ(bad.verdict, WitnessVerdict::kClaimMismatch);
  EXPECT_NE(bad.note.find("no divergence"), std::string::npos);
}

// ------------------------------------------------- quarantine (serial)

void expect_complete_bundle(const std::filesystem::path& dir,
                            const DesignError& err) {
  for (const char* f : {"witness.txt", "minimized.txt", "divergence.txt",
                        "trace.vcd", "stats.json", "repro.txt"})
    EXPECT_TRUE(std::filesystem::exists(dir / f)) << (dir / f);

  // The shipped witness reproduces the mismatch: the oracle finds no
  // divergence, exactly what the repro command's --expect undetected asks.
  const TestLoadResult witness = load_test((dir / "witness.txt").string());
  ASSERT_TRUE(witness.ok());
  EXPECT_EQ(check_witness(model(), witness.test, err, false).verdict,
            WitnessVerdict::kConfirmed);
  const TestLoadResult min = load_test((dir / "minimized.txt").string());
  ASSERT_TRUE(min.ok());
  EXPECT_LT(min.test.imem.size(), witness.test.imem.size());
  EXPECT_EQ(check_witness(model(), min.test, err, false).verdict,
            WitnessVerdict::kConfirmed);

  std::ifstream repro(dir / "repro.txt");
  std::string repro_text((std::istreambuf_iterator<char>(repro)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(repro_text.find("--replay-error 1"), std::string::npos);
  EXPECT_NE(repro_text.find("--expect undetected"), std::string::npos);

  std::ifstream stats(dir / "stats.json");
  std::string stats_text((std::istreambuf_iterator<char>(stats)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(stats_text.find("\"verify\":\"claim_mismatch\""),
            std::string::npos);
}

CampaignConfig quarantine_config(const std::string& qdir,
                                 const CampaignFaultPlan* faults) {
  TriageOptions topt;
  topt.verify = true;
  topt.minimize = true;
  topt.quarantine_dir = qdir;
  topt.repro_flags = "--model ssl --stages EX";
  topt.cross_retry = false;  // deterministic quarantine, no rescue attempt
  CampaignConfig cfg;
  cfg.triage = make_triage(model(), topt);
  cfg.faults = faults;
  return cfg;
}

TEST(Quarantine, BogusWitnessYieldsOneCompleteBundle) {
  const auto errors = alu_population();
  CampaignFaultPlan faults;
  faults[1].kind = CampaignFault::Kind::kForceAttempt;
  faults[1].attempt = bogus_attempt();

  const std::string qdir = temp_path("quar_serial");
  std::filesystem::remove_all(qdir);
  const CampaignConfig cfg = quarantine_config(qdir, &faults);
  const CampaignResult res =
      run_campaign(model().dp, errors, giveup_gen(), cfg);

  EXPECT_EQ(res.stats.claim_mismatch, 1u);
  EXPECT_EQ(res.stats.detected, 0u);
  EXPECT_EQ(res.stats.aborted, 2u);  // the give-ups; mismatch is disjoint
  EXPECT_EQ(res.incidents, 1u);
  ASSERT_EQ(res.incident_notes.size(), 1u);
  EXPECT_NE(res.incident_notes[0].find("quarantined"), std::string::npos);
  EXPECT_EQ(res.rows[1].attempt.outcome(), AttemptOutcome::kClaimMismatch);
  EXPECT_FALSE(res.rows[1].attempt.detected());
  EXPECT_NE(res.stats.table1("t").find("claim mismatches"),
            std::string::npos);

  const std::filesystem::path dir =
      std::filesystem::path(qdir) / bundle_dir_name(0, 1);
  ASSERT_TRUE(std::filesystem::is_directory(dir));
  expect_complete_bundle(dir, errors[1]);
  // Exactly one bundle in the quarantine.
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(qdir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  std::filesystem::remove_all(qdir);
}

TEST(Quarantine, BundleAndStatsIdenticalUnderJobs4) {
  const auto errors = alu_population();
  CampaignFaultPlan faults;
  faults[1].kind = CampaignFault::Kind::kForceAttempt;
  faults[1].attempt = bogus_attempt();

  const std::string qdir1 = temp_path("quar_j1");
  const std::string qdir4 = temp_path("quar_j4");
  std::filesystem::remove_all(qdir1);
  std::filesystem::remove_all(qdir4);

  const CampaignConfig base1 = quarantine_config(qdir1, &faults);
  const CampaignResult serial =
      run_campaign(model().dp, errors, giveup_gen(), base1);

  ParallelCampaignConfig pcfg;
  static_cast<CampaignConfig&>(pcfg) = quarantine_config(qdir4, &faults);
  pcfg.jobs = 4;
  const CampaignResult par =
      run_campaign_parallel(model().dp, errors, shared_gen(giveup_gen()),
                            pcfg);

  EXPECT_EQ(par.stats.claim_mismatch, serial.stats.claim_mismatch);
  EXPECT_EQ(par.incidents, serial.incidents);
  EXPECT_EQ(par.stats.table1("t"), serial.stats.table1("t"));
  // Same deterministic incident numbering: same bundle directory name.
  const std::string name = bundle_dir_name(0, 1);
  EXPECT_TRUE(std::filesystem::is_directory(
      std::filesystem::path(qdir1) / name));
  ASSERT_TRUE(std::filesystem::is_directory(
      std::filesystem::path(qdir4) / name));
  expect_complete_bundle(std::filesystem::path(qdir4) / name, errors[1]);
  std::filesystem::remove_all(qdir1);
  std::filesystem::remove_all(qdir4);
}

// ------------------------------------------------- recovery and oracle

TEST(Triage, CrossConfigRetryRecoversTheRow) {
  const std::vector<DesignError> errors = {ssl("ex.alu_add", 0, false)};
  CampaignFaultPlan faults;
  faults[0].kind = CampaignFault::Kind::kForceAttempt;
  faults[0].attempt = bogus_attempt();

  CampaignConfig cfg;
  cfg.faults = &faults;
  cfg.triage.verify = true;
  cfg.triage.oracle = scalar_oracle(model());
  RandomTgConfig rcfg;
  rcfg.max_programs_per_error = 128;
  cfg.triage.cross_gen = random_budgeted_strategy(model(), rcfg);
  int bundles = 0;
  cfg.triage.bundle = [&bundles](std::size_t, std::size_t,
                                 const DesignError&, const ErrorAttempt&) {
    ++bundles;
    return std::string("counted");
  };

  const CampaignResult res =
      run_campaign(model().dp, errors, giveup_gen(), cfg);
  ASSERT_EQ(res.rows.size(), 1u);
  const ErrorAttempt& a = res.rows[0].attempt;
  EXPECT_TRUE(a.detected());
  EXPECT_TRUE(a.recovered);
  EXPECT_EQ(a.verify, WitnessVerdict::kConfirmed);
  EXPECT_EQ(res.stats.verify_recovered, 1u);
  EXPECT_EQ(res.stats.claim_mismatch, 0u);
  // The mismatch still raised an incident: the bogus witness is evidence
  // even when a retry vindicates the row.
  EXPECT_EQ(res.incidents, 1u);
  EXPECT_EQ(bundles, 1);
  EXPECT_FALSE(a.incident_test.imem.empty());  // bogus witness preserved
  EXPECT_NE(a.note.find("claim mismatch"), std::string::npos);
}

TEST(Triage, OracleFailureKeepsClaimStanding) {
  const std::vector<DesignError> errors = {ssl("ex.alu_add", 0, false)};
  CampaignFaultPlan faults;
  faults[0].kind = CampaignFault::Kind::kForceAttempt;
  faults[0].attempt = bogus_attempt();

  CampaignConfig cfg;
  cfg.faults = &faults;
  cfg.triage.verify = true;
  cfg.triage.oracle = [](const TestCase&, const DesignError&) -> bool {
    throw std::runtime_error("oracle broke");
  };
  const CampaignResult res =
      run_campaign(model().dp, errors, giveup_gen(), cfg);
  const ErrorAttempt& a = res.rows[0].attempt;
  EXPECT_EQ(a.verify, WitnessVerdict::kOracleError);
  EXPECT_TRUE(a.detected());  // claim stands; oracle_error is advisory
  EXPECT_EQ(res.stats.oracle_errors, 1u);
  EXPECT_EQ(res.incidents, 1u);  // but still flagged for a human
}

// ----------------------------------------------------- journal round-trip

TEST(TriageJournal, RowRoundTripsVerifyFields) {
  ErrorAttempt a = bogus_attempt();
  a.verify = WitnessVerdict::kClaimMismatch;
  a.incident_test = a.test;
  a.incident_min = words({0xAABBCCDDu});
  a.minimized = true;
  a.note = "claim mismatch: test note";

  const std::string path = temp_path("journal_roundtrip.jsonl");
  {
    std::ofstream out(path);
    out << journal_header_line(2, 9) << "\n" << journal_row_line(0, a) << "\n";
  }
  const JournalReplay jr = load_journal(path);
  ASSERT_EQ(jr.rows.count(0), 1u);
  const ErrorAttempt& b = jr.rows.at(0);
  EXPECT_EQ(b.verify, WitnessVerdict::kClaimMismatch);
  EXPECT_TRUE(b.minimized);
  EXPECT_EQ(b.incident_test.imem, a.incident_test.imem);
  EXPECT_EQ(b.incident_min.imem, a.incident_min.imem);
  EXPECT_EQ(b.outcome(), AttemptOutcome::kClaimMismatch);
  std::remove(path.c_str());

  // Rows journaled before the triage fields existed still replay, with the
  // verdict defaulting to unchecked.
  const std::string old_path = temp_path("journal_old.jsonl");
  {
    std::ofstream out(old_path);
    out << journal_header_line(1, 7) << "\n"
        << "{\"index\":0,\"generated\":true,\"sim_confirmed\":true,"
           "\"test_length\":2,\"backtracks\":1,\"decisions\":3,"
           "\"seconds\":0.5,\"abort\":\"none\",\"via_fallback\":false,"
           "\"note\":\"\"}\n";
  }
  const JournalReplay old_jr = load_journal(old_path);
  ASSERT_EQ(old_jr.rows.count(0), 1u);
  EXPECT_EQ(old_jr.rows.at(0).verify, WitnessVerdict::kUnchecked);
  EXPECT_FALSE(old_jr.rows.at(0).recovered);
  EXPECT_TRUE(old_jr.rows.at(0).detected());
  std::remove(old_path.c_str());
}

TEST(TriageJournal, ResumeReplaysQuarantineWithoutRebundling) {
  const auto errors = alu_population();
  CampaignFaultPlan faults;
  faults[1].kind = CampaignFault::Kind::kForceAttempt;
  faults[1].attempt = bogus_attempt();

  const std::string path = temp_path("journal_resume.jsonl");
  std::remove(path.c_str());
  int bundles = 0;
  auto make_cfg = [&]() {
    CampaignConfig cfg;
    cfg.faults = &faults;
    cfg.journal_path = path;
    cfg.triage.verify = true;
    cfg.triage.oracle = scalar_oracle(model());
    cfg.triage.bundle = [&bundles](std::size_t, std::size_t,
                                   const DesignError&, const ErrorAttempt&) {
      ++bundles;
      return std::string("counted");
    };
    return cfg;
  };

  const CampaignResult first =
      run_campaign(model().dp, errors, giveup_gen(), make_cfg());
  EXPECT_EQ(first.stats.claim_mismatch, 1u);
  EXPECT_EQ(first.incidents, 1u);
  EXPECT_EQ(bundles, 1);

  int calls = 0;
  CampaignConfig cfg = make_cfg();
  cfg.resume = true;
  const CampaignResult resumed =
      run_campaign(model().dp, errors, giveup_gen(&calls), cfg);
  EXPECT_EQ(calls, 0);  // everything replayed
  EXPECT_EQ(resumed.resumed_rows, errors.size());
  EXPECT_EQ(resumed.stats.claim_mismatch, 1u);  // verdict survived the disk
  EXPECT_EQ(resumed.rows[1].attempt.outcome(),
            AttemptOutcome::kClaimMismatch);
  EXPECT_EQ(resumed.incidents, 0u);  // replayed rows never re-bundle
  EXPECT_EQ(bundles, 1);
  EXPECT_EQ(resumed.stats.table1("t"), first.stats.table1("t"));
  std::remove(path.c_str());
}

// ------------------------------------------------------- batch-drop check

TEST(TriageDrop, RefutedDropClaimsKeepTheirErrors) {
  const auto errors = alu_population();
  // Generator: only error 0 produces a (fake) detecting test.
  const DesignError* base = errors.data();
  BudgetedGenFn gen = [base](const DesignError& e, Budget&) {
    ErrorAttempt a;
    if (&e - base == 0) {
      a.generated = a.sim_confirmed = true;
      a.test.imem = {0x20220007u};
      a.test_length = 1;
    }
    return a;
  };
  // Batch detector: claims the test fortuitously detects everything.
  BatchDetectFn lying_batch =
      [](const TestCase&, const std::vector<const DesignError*>& errs) {
        return std::vector<bool>(errs.size(), true);
      };
  // Scalar oracle: agrees only with error 0's own claim.
  CampaignConfig cfg;
  cfg.triage.verify = true;
  cfg.triage.oracle = [base](const TestCase&, const DesignError& err) {
    return &err == base;
  };

  const CampaignResult res = run_campaign_with_dropping(
      model().dp, errors, gen, lying_batch, cfg);
  EXPECT_EQ(res.stats.drop_mismatches, 2u);
  EXPECT_EQ(res.dropped, 0u);  // refuted claims drop nothing
  EXPECT_EQ(res.incidents, 2u);
  EXPECT_EQ(res.stats.detected, 1u);  // error 0's own confirmed claim
  EXPECT_EQ(res.stats.aborted, 2u);   // 1 and 2 ran their own attempts
  EXPECT_EQ(res.rows.size(), errors.size());
  EXPECT_NE(res.stats.table1("t").find("batch-drop claims refuted"),
            std::string::npos);
}

}  // namespace
}  // namespace hltg
