#include <gtest/gtest.h>

#include "gatenet/eval3.h"
#include "gatenet/gate_builder.h"
#include "gatenet/levelize.h"

namespace hltg {
namespace {

TEST(GateNet, EvalBasicGates) {
  GateNet gn;
  GateBuilder g(gn);
  const GateId a = g.var("a", SigRole::kCPI);
  const GateId b = g.var("b", SigRole::kCPI);
  const GateId y_and = g.and_("y_and", {a, b});
  const GateId y_or = g.or_("y_or", {a, b});
  const GateId y_xor = g.xor_("y_xor", a, b);
  const GateId y_not = g.not_("y_not", a);
  std::vector<bool> v(gn.num_gates(), false);
  for (int av = 0; av < 2; ++av)
    for (int bv = 0; bv < 2; ++bv) {
      v[a] = av;
      v[b] = bv;
      eval_cycle2(gn, v);
      EXPECT_EQ(v[y_and], av && bv);
      EXPECT_EQ(v[y_or], av || bv);
      EXPECT_EQ(v[y_xor], av != bv);
      EXPECT_EQ(v[y_not], !av);
    }
}

TEST(GateNet, ThreeValuedEval) {
  GateNet gn;
  GateBuilder g(gn);
  const GateId a = g.var("a", SigRole::kCPI);
  const GateId b = g.var("b", SigRole::kCPI);
  const GateId y = g.and_("y", {a, b});
  const GateId z = g.or_("z", {a, b});
  std::vector<L3> v(gn.num_gates(), L3::X);
  v[a] = L3::F;
  eval_cycle3(gn, v);
  EXPECT_EQ(v[y], L3::F);  // controlling value
  EXPECT_EQ(v[z], L3::X);
  v[a] = L3::T;
  eval_cycle3(gn, v);
  EXPECT_EQ(v[y], L3::X);
  EXPECT_EQ(v[z], L3::T);
}

TEST(GateNet, MuxFromPrimitives) {
  GateNet gn;
  GateBuilder g(gn);
  const GateId s = g.var("s", SigRole::kCPI);
  const GateId a = g.var("a", SigRole::kCPI);
  const GateId b = g.var("b", SigRole::kCPI);
  const GateId y = g.mux("y", s, a, b);
  std::vector<bool> v(gn.num_gates(), false);
  v[a] = true;
  v[b] = false;
  v[s] = false;
  eval_cycle2(gn, v);
  EXPECT_TRUE(v[y]);
  v[s] = true;
  eval_cycle2(gn, v);
  EXPECT_FALSE(v[y]);
}

TEST(GateNet, DffClocking) {
  GateNet gn;
  GateBuilder g(gn);
  const GateId d = g.var("d", SigRole::kCPI);
  const GateId q = g.dff("q", d, /*reset=*/true);
  std::vector<bool> v;
  load_reset2(gn, v);
  EXPECT_TRUE(v[q]);
  v[d] = false;
  eval_cycle2(gn, v);
  std::vector<bool> n = v;
  clock_dffs2(gn, v, n);
  EXPECT_FALSE(n[q]);
}

TEST(GateNet, DffEnClrSemantics) {
  GateNet gn;
  GateBuilder g(gn);
  const GateId d = g.var("d", SigRole::kCPI);
  const GateId en = g.var("en", SigRole::kCPI);
  const GateId clr = g.var("clr", SigRole::kCPI);
  const GateId q = g.dff_en_clr("q", d, en, clr);
  auto tick = [&](std::vector<bool>& v) {
    eval_cycle2(gn, v);
    std::vector<bool> n = v;
    clock_dffs2(gn, v, n);
    v = std::move(n);
  };
  std::vector<bool> v;
  load_reset2(gn, v);
  // Enabled load.
  v[d] = true;
  v[en] = true;
  v[clr] = false;
  tick(v);
  EXPECT_TRUE(v[q]);
  // Hold when disabled.
  v[d] = false;
  v[en] = false;
  tick(v);
  EXPECT_TRUE(v[q]);
  // Clear dominates.
  v[en] = true;
  v[d] = true;
  v[clr] = true;
  tick(v);
  EXPECT_FALSE(v[q]);
}

TEST(GateNet, EqConstDecode) {
  GateNet gn;
  GateBuilder g(gn);
  const GateVec bits = g.var_vec("op", 6, SigRole::kCPI);
  const GateId hit = g.eq_const("dec", bits, 0x23);
  std::vector<bool> v(gn.num_gates(), false);
  for (unsigned code = 0; code < 64; ++code) {
    for (unsigned i = 0; i < 6; ++i) v[bits[i]] = (code >> i) & 1;
    eval_cycle2(gn, v);
    EXPECT_EQ(v[hit], code == 0x23) << code;
  }
}

TEST(GateNet, TopoRejectsCycle) {
  GateNet gn;
  GateBuilder g(gn);
  const GateId a = g.var("a", SigRole::kCPI);
  Gate loop1;
  loop1.kind = GateKind::kAnd;
  loop1.fanin = {a, a};
  const GateId l1 = gn.add_gate(std::move(loop1));
  gn.gate(l1).fanin[1] = l1;  // self-loop
  gn.invalidate();
  EXPECT_THROW(gn.topo_order(), std::logic_error);
}

TEST(GateNet, AnalyzeCounts) {
  GateNet gn;
  GateBuilder g(gn);
  g.set_stage(Stage::kID);
  const GateId a = g.var("a", SigRole::kCPI);
  const GateId s = g.var("s", SigRole::kSts);
  const GateId y = g.and_("y", {a, s});
  const GateId q = g.dff("q", y);
  g.mark_ctrl("c", q);
  g.mark_tertiary(y);
  const GateNetStats st = analyze(gn);
  EXPECT_EQ(st.num_cpi, 1u);
  EXPECT_EQ(st.num_sts, 1u);
  EXPECT_EQ(st.num_dffs, 1u);
  EXPECT_EQ(st.num_ctrl, 1u);
  EXPECT_EQ(st.num_tertiary, 1u);
  EXPECT_EQ(st.timeframe_justify_vars(), 1u);
  EXPECT_EQ(st.pipeframe_justify_vars(), 1u);
}

TEST(GateNet, LevelsIncrease) {
  GateNet gn;
  GateBuilder g(gn);
  const GateId a = g.var("a", SigRole::kCPI);
  const GateId n1 = g.not_("n1", a);
  const GateId n2 = g.not_("n2", n1);
  const GateId n3 = g.not_("n3", n2);
  const auto lv = levels(gn);
  EXPECT_EQ(lv[a], 0u);
  EXPECT_LT(lv[n1], lv[n2]);
  EXPECT_LT(lv[n2], lv[n3]);
}

}  // namespace
}  // namespace hltg
