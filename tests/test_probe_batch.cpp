// Batched decision probing (solver/probe_batch, docs/SOLVER.md "Batched
// probing"): lane packing of block+tail probe-set shapes, serial-vs-batched
// byte equivalence across lane widths, cross-cycle doom detection through
// the cone DFF carry, and the CTRLJUST / TG / campaign-level equivalence
// corpus - probe-assisted search must change effort counters only, never a
// detection outcome, and must not depend on --jobs or --lanes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/ctrljust.h"
#include "core/tg.h"
#include "core/unroll.h"
#include "dlx/dlx.h"
#include "errors/bus_ssl.h"
#include "errors/inject.h"
#include "errors/journal.h"
#include "errors/parallel_campaign.h"
#include "gatenet/gate_builder.h"
#include "solver/probe_batch.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

GateId ctrl_bit(const char* net_name, unsigned bit = 0) {
  const NetId n = model().dp.find_net(net_name);
  EXPECT_NE(n, kNoNet) << net_name;
  return model().find_ctrl(n)->bits[bit];
}

ProbeBatch::BaseFn all_x() {
  return [](GateId, unsigned) { return L3::X; };
}

// ------------------------------------------------------------ lane packing

// A small combinational net where one candidate polarity is provably
// doomed: objective AND(a, b) = 1 dies the moment a = 0 is probed.
struct TinyNet {
  GateNet gn;
  GateId a, b, y;
  std::vector<GateId> extra;
  TinyNet(std::size_t n_extra = 0) {
    GateBuilder g(gn);
    a = g.var("a", SigRole::kCPI);
    b = g.var("b", SigRole::kCPI);
    for (std::size_t i = 0; i < n_extra; ++i)
      extra.push_back(g.var("x" + std::to_string(i), SigRole::kCPI));
    y = g.and_("y", {a, b});
  }
};

TEST(ProbeBatchPacking, TailOnlySweep) {
  TinyNet net(3);
  ProbeBatchConfig cfg;
  cfg.lanes = 64;
  ProbeBatch pb(net.gn, 1, cfg);
  std::vector<ProbeCand> cands = {{net.a, 0}, {net.b, 0}};
  for (GateId x : net.extra) cands.push_back({x, 0});
  std::vector<ProbeOutcome> out;
  pb.run(all_x(), {{net.y, 0, true}}, cands, &out);
  // 5 candidates = 10 polarity lanes: one partial 64-lane sweep.
  EXPECT_EQ(pb.stats().batches, 1u);
  EXPECT_EQ(pb.stats().lanes, 10u);
  EXPECT_TRUE(out[0].doomed[0]);   // a=0 forces y=0, objective wants 1
  EXPECT_FALSE(out[0].doomed[1]);  // a=1 leaves y open
  EXPECT_TRUE(out[1].doomed[0]);
  for (std::size_t i = 2; i < out.size(); ++i) {
    EXPECT_FALSE(out[i].doomed[0]) << i;  // extras never reach y
    EXPECT_FALSE(out[i].doomed[1]) << i;
  }
}

TEST(ProbeBatchPacking, BlockPlusTailSweeps) {
  TinyNet net(38);  // 40 candidates = 80 lanes = 64-block + 16-tail
  ProbeBatchConfig cfg;
  cfg.lanes = 64;
  ProbeBatch pb(net.gn, 1, cfg);
  std::vector<ProbeCand> cands = {{net.a, 0}, {net.b, 0}};
  for (GateId x : net.extra) cands.push_back({x, 0});
  std::vector<ProbeOutcome> out;
  pb.run(all_x(), {{net.y, 0, true}}, cands, &out);
  EXPECT_EQ(pb.stats().batches, 2u);
  EXPECT_EQ(pb.stats().lanes, 80u);
  EXPECT_TRUE(out[0].doomed[0]);
  EXPECT_TRUE(out[1].doomed[0]);
}

TEST(ProbeBatchPacking, SerialReferenceOneLanePerSweep) {
  TinyNet net(3);
  ProbeBatchConfig serial;
  serial.serial = true;
  ProbeBatch pb(net.gn, 1, serial);
  std::vector<ProbeCand> cands = {{net.a, 0}, {net.b, 0}};
  for (GateId x : net.extra) cands.push_back({x, 0});
  std::vector<ProbeOutcome> out;
  pb.run(all_x(), {{net.y, 0, true}}, cands, &out);
  EXPECT_EQ(pb.stats().batches, 10u);  // one sweep per polarity lane
  EXPECT_EQ(pb.stats().lanes, 10u);
  EXPECT_TRUE(out[0].doomed[0]);
  EXPECT_FALSE(out[0].doomed[1]);
}

TEST(ProbeBatchPacking, OutcomesIdenticalAcrossWidthsAndSerial) {
  // Per-lane verdicts must not depend on how lanes are grouped into
  // sweeps: every width and the serial reference produce the same bytes.
  TinyNet net(70);  // 72 cands = 144 lanes: tails at every width
  std::vector<ProbeCand> cands = {{net.a, 0}, {net.b, 0}};
  for (GateId x : net.extra) cands.push_back({x, 0});
  const std::vector<CtrlObjective> objs = {{net.y, 0, true}};

  auto verdicts = [&](unsigned lanes, bool serial) {
    ProbeBatchConfig cfg;
    cfg.lanes = lanes;
    cfg.serial = serial;
    cfg.count_implied = true;
    ProbeBatch pb(net.gn, 1, cfg);
    std::vector<ProbeOutcome> out;
    pb.run(all_x(), objs, cands, &out);
    std::string sig;
    for (const ProbeOutcome& o : out) {
      sig += o.doomed[0] ? 'D' : '.';
      sig += o.doomed[1] ? 'D' : '.';
      sig += std::to_string(o.implied[0]) + "," + std::to_string(o.implied[1]);
      sig += ';';
    }
    return sig;
  };

  const std::string ref = verdicts(64, false);
  EXPECT_EQ(ref, verdicts(128, false));
  EXPECT_EQ(ref, verdicts(256, false));
  EXPECT_EQ(ref, verdicts(512, false));
  EXPECT_EQ(ref, verdicts(64, true));
}

// ----------------------------------------------- cross-cycle cone DFF carry

TEST(ProbeBatchCone, DffCarryDetectsNextCycleDoom) {
  // v feeds a DFF observed one cycle later: probing v=0 at cycle 0 must
  // doom the objective d=1 at cycle 1 through the lane carry, not the
  // (lane-uniform) base re-broadcast.
  GateNet gn;
  GateBuilder g(gn);
  const GateId v = g.var("v", SigRole::kCPI);
  const GateId d = g.dff("d", v);
  ProbeBatch pb(gn, 2, {});
  std::vector<ProbeOutcome> out;
  pb.run(all_x(), {{d, 1, true}}, {{v, 0}}, &out);
  EXPECT_TRUE(out[0].doomed[0]);
  EXPECT_FALSE(out[0].doomed[1]);
}

TEST(ProbeBatchCone, AnchoredSweepAppliesBranchToEveryLane) {
  // Dilemma-rule ingredient: beneath anchor a=0, candidate b conflicts in
  // BOTH polarities against objective y=1 (y is already dead), while
  // beneath a=1 only b=0 is doomed.
  TinyNet net;
  ProbeBatch pb(net.gn, 1, {});
  const std::vector<CtrlObjective> objs = {{net.y, 0, true}};
  std::vector<ProbeOutcome> under0, under1;
  pb.run(all_x(), objs, ProbeAnchor{net.a, 0, false}, {{net.b, 0}}, &under0);
  pb.run(all_x(), objs, ProbeAnchor{net.a, 0, true}, {{net.b, 0}}, &under1);
  EXPECT_TRUE(under0[0].doomed[0]);
  EXPECT_TRUE(under0[0].doomed[1]);  // y=0 either way: anchor a=0 refuted
  EXPECT_TRUE(under1[0].doomed[0]);
  EXPECT_FALSE(under1[0].doomed[1]);
}

// ------------------------------------------------ CTRLJUST solve equivalence

std::vector<std::vector<CtrlObjective>> objective_corpus() {
  std::vector<std::vector<CtrlObjective>> corpus;
  corpus.push_back({{ctrl_bit("ctrl.mem_we"), 3, true}});
  corpus.push_back({{ctrl_bit("ctrl.rf_we"), 2, true}});  // unreachable
  corpus.push_back({{ctrl_bit("ctrl.rf_we"), 4, true}});
  corpus.push_back({{ctrl_bit("ctrl.alu_sel", 1), 4, true},
                    {ctrl_bit("ctrl.alu_sel", 0), 4, false}});
  corpus.push_back({{ctrl_bit("ctrl.alu_sel", 0), 4, true},
                    {ctrl_bit("ctrl.alu_sel", 1), 4, true},
                    {ctrl_bit("ctrl.alu_sel", 2), 4, true},
                    {ctrl_bit("ctrl.alu_sel", 3), 4, true}});  // no such op
  corpus.push_back({{ctrl_bit("ctrl.mem_we"), 3, true},
                    {ctrl_bit("ctrl.rf_we"), 5, true}});
  corpus.push_back({{ctrl_bit("ctrl.fwd_a"), 4, true}});
  return corpus;
}

bool witness_satisfies(const CtrlJustResult& r,
                       const std::vector<CtrlObjective>& objs,
                       unsigned cycles) {
  ControllerWindow w(model().ctrl, cycles);
  for (auto [g, t, v] : r.cpi_assignments) w.assign(g, t, l3_from_bool(v));
  for (auto [g, t, v] : r.sts_assignments) w.assign(g, t, l3_from_bool(v));
  w.imply();
  for (const CtrlObjective& o : objs)
    if (w.value(o.gate, o.cycle) != l3_from_bool(o.value)) return false;
  return true;
}

CtrlJustResult solve_probed(const std::vector<CtrlObjective>& objs,
                            unsigned lanes, bool serial) {
  CtrlJustConfig cfg;
  cfg.use_probes = true;
  cfg.probe_lanes = lanes;
  cfg.probe_serial = serial;
  cfg.record_trace = true;
  CtrlJust cj(model().ctrl, 10, cfg);
  return cj.solve(objs);
}

TEST(ProbeEquivalence, BatchedMatchesSerialAcrossWidthsOnCorpus) {
  // The equivalence corpus of the tentpole: batched probing must produce
  // byte-identical decisions, witnesses, and effort counters for every
  // lane width and for the serial reference path. Only the sweep count
  // (probe_batches) may differ - narrower lanes need more sweeps.
  std::size_t idx = 0;
  for (const auto& objs : objective_corpus()) {
    SCOPED_TRACE("objective set #" + std::to_string(idx++));
    const CtrlJustResult ref = solve_probed(objs, 64, false);
    for (unsigned lanes : {256u, 512u}) {
      const CtrlJustResult r = solve_probed(objs, lanes, false);
      EXPECT_EQ(ref.status, r.status);
      EXPECT_EQ(ref.cpi_assignments, r.cpi_assignments);
      EXPECT_EQ(ref.sts_assignments, r.sts_assignments);
      EXPECT_EQ(ref.stats.decisions, r.stats.decisions);
      EXPECT_EQ(ref.stats.backtracks, r.stats.backtracks);
      EXPECT_EQ(ref.stats.probe_prunes, r.stats.probe_prunes);
      EXPECT_EQ(ref.stats.probe_lanes, r.stats.probe_lanes);
      EXPECT_EQ(ref.trace.size(), r.trace.size());
    }
    const CtrlJustResult sr = solve_probed(objs, 0, true);
    EXPECT_EQ(ref.status, sr.status);
    EXPECT_EQ(ref.cpi_assignments, sr.cpi_assignments);
    EXPECT_EQ(ref.sts_assignments, sr.sts_assignments);
    EXPECT_EQ(ref.stats.decisions, sr.stats.decisions);
    EXPECT_EQ(ref.stats.backtracks, sr.stats.backtracks);
    EXPECT_EQ(ref.stats.probe_prunes, sr.stats.probe_prunes);
    EXPECT_EQ(ref.stats.probe_lanes, sr.stats.probe_lanes);
    // The serial hatch issues one sweep per polarity lane.
    EXPECT_EQ(sr.stats.probe_batches, sr.stats.probe_lanes);
    EXPECT_LE(ref.stats.probe_batches, sr.stats.probe_batches);
  }
}

TEST(ProbeEquivalence, ProbedSolveMatchesUnprobedStatus) {
  // Probing is an effort optimization: solve status identical, witnesses
  // still satisfy the objectives, decisions + backtracks never higher.
  std::size_t idx = 0;
  for (const auto& objs : objective_corpus()) {
    SCOPED_TRACE("objective set #" + std::to_string(idx++));
    CtrlJust plain(model().ctrl, 10);
    const CtrlJustResult pr = plain.solve(objs);
    const CtrlJustResult br = solve_probed(objs, 0, false);
    EXPECT_EQ(pr.status, br.status);
    if (br.status == TgStatus::kSuccess)
      EXPECT_TRUE(witness_satisfies(br, objs, 10));
    EXPECT_LE(br.stats.decisions + br.stats.backtracks,
              pr.stats.decisions + pr.stats.backtracks);
  }
}

TEST(ProbeEquivalence, ProbeOrderKeepsStatusMayReorderDecisions) {
  // --probe-order on may change the decision order (and thus the witness)
  // but never whether a solve succeeds.
  for (const auto& objs : objective_corpus()) {
    CtrlJustConfig cfg;
    cfg.use_probes = true;
    cfg.probe_order = true;
    CtrlJust cj(model().ctrl, 10, cfg);
    const CtrlJustResult r = cj.solve(objs);
    CtrlJust plain(model().ctrl, 10);
    EXPECT_EQ(plain.solve(objs).status, r.status);
    if (r.status == TgStatus::kSuccess)
      EXPECT_TRUE(witness_satisfies(r, objs, 10));
  }
}

// ------------------------------------------------ TG / campaign equivalence

TEST(ProbeEquivalence, TgDetectionOutcomesMatchEngineOn) {
  // Probe-assisted TG must detect exactly the errors the engine-on default
  // detects, at strictly lower decisions + backtracks. A subset of the
  // Table-1 SSL population keeps the test fast; bench_solver + the CI
  // guard (tools/check_bench.py) hold the full set to the >= 1.5x floor.
  std::vector<DesignError> errors;
  for (const BusSslError& e : enumerate_bus_ssl(model().dp)) {
    errors.push_back(DesignError{e});
    if (errors.size() == 40) break;
  }

  auto run = [&](bool probes) {
    TgConfig cfg;
    cfg.ctrljust.use_probes = probes;
    TestGenerator tg(model(), cfg);
    std::vector<bool> det;
    std::uint64_t effort = 0;
    for (const DesignError& e : errors) {
      const TgResult r = tg.generate(e);
      det.push_back(r.status == TgStatus::kSuccess);
      effort += r.stats.decisions + r.stats.backtracks;
    }
    return std::make_pair(det, effort);
  };

  const auto [det_off, effort_off] = run(false);
  const auto [det_on, effort_on] = run(true);
  EXPECT_EQ(det_off, det_on);
  EXPECT_LT(effort_on, effort_off);
}

TEST(ProbeEquivalence, CampaignRowsIdenticalAcrossJobs) {
  // Probe-on campaign rows must not depend on --jobs: same per-error
  // counters, outcomes, and witnesses on 1, 2, and 8 workers.
  std::vector<DesignError> errors;
  for (const BusSslError& e : enumerate_bus_ssl(model().dp)) {
    errors.push_back(DesignError{e});
    if (errors.size() == 16) break;
  }

  auto run_jobs = [&](unsigned jobs) {
    ParallelCampaignConfig cfg;
    cfg.jobs = jobs;
    return run_campaign_parallel(
        model().dp, errors,
        [&](unsigned) {
          TgConfig tcfg;
          tcfg.ctrljust.use_probes = true;
          auto tg = std::make_shared<TestGenerator>(model(), tcfg);
          BudgetedGenFn s = tg->budgeted_strategy();
          return [tg, s](const DesignError& e, Budget& b) { return s(e, b); };
        },
        cfg);
  };

  auto render = [](const CampaignResult& r) {
    std::string s;
    for (std::size_t i = 0; i < r.rows.size(); ++i) {
      ErrorAttempt a = r.rows[i].attempt;
      a.seconds = 0;  // wall clock is the only nondeterministic field
      a.dptrace_ns = a.ctrljust_ns = a.dprelax_ns = a.probe_ns = 0;
      s += journal_row_line(i, a) + "\n";
    }
    return s;
  };

  const CampaignResult r1 = run_jobs(1);
  const CampaignResult r2 = run_jobs(2);
  const CampaignResult r8 = run_jobs(8);
  EXPECT_EQ(render(r1), render(r2));
  EXPECT_EQ(render(r1), render(r8));
}

// --------------------------------------------------- journal compatibility

TEST(ProbeJournal, RowsWithoutProbeFieldsStayByteIdenticalAndReplay) {
  // Probe counters are emitted only when nonzero, so probe-off journals
  // keep the pre-probe byte format; loading a row without probe keys (any
  // old journal) yields zero counters.
  ErrorAttempt off;
  off.generated = off.sim_confirmed = true;
  off.test_length = 4;
  off.decisions = 7;
  const std::string off_line = journal_row_line(0, off);
  EXPECT_EQ(off_line.find("probe"), std::string::npos);

  ErrorAttempt on = off;
  on.probe_batches = 3;
  on.probe_lanes = 96;
  on.probe_prunes = 2;
  on.probe_ns = 1234;
  const std::string on_line = journal_row_line(1, on);
  EXPECT_NE(on_line.find("probe_lanes"), std::string::npos);

  const std::string path = testing::TempDir() + "hltg_probe_journal.jsonl";
  {
    std::ofstream f(path, std::ios::trunc);
    f << journal_header_line(2, 42) << "\n" << off_line << "\n" << on_line
      << "\n";
  }
  const JournalReplay rep = load_journal(path);
  ASSERT_TRUE(rep.header_ok);
  ASSERT_EQ(rep.rows.size(), 2u);
  EXPECT_EQ(rep.rows.at(0).probe_batches, 0u);
  EXPECT_EQ(rep.rows.at(0).probe_lanes, 0u);
  EXPECT_EQ(rep.rows.at(0).probe_prunes, 0u);
  EXPECT_EQ(rep.rows.at(0).probe_ns, 0u);
  EXPECT_EQ(rep.rows.at(1).probe_batches, 3u);
  EXPECT_EQ(rep.rows.at(1).probe_lanes, 96u);
  EXPECT_EQ(rep.rows.at(1).probe_prunes, 2u);
  EXPECT_EQ(rep.rows.at(1).probe_ns, 1234u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hltg
