// Tests of TestCase serialization / replay and the campaign report writers.
#include <gtest/gtest.h>

#include "core/tg.h"
#include "errors/report.h"
#include "isa/asm.h"
#include "isa/testcase_io.h"
#include "sim/cosim.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

TestCase sample() {
  const AsmResult r = assemble("addi r1, r0, 7\nsw 0x40(r0), r1\n");
  TestCase tc;
  tc.imem = encode_program(r.program);
  tc.rf_init[5] = 0xDEADBEEF;
  tc.dmem_init[0x80] = 0x12345678;
  return tc;
}

TEST(TestIo, RoundTrip) {
  const TestCase tc = sample();
  const std::string text = serialize_test(tc);
  const TestLoadResult r = parse_test(text);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.test.imem, tc.imem);
  EXPECT_EQ(r.test.rf_init, tc.rf_init);
  EXPECT_EQ(r.test.dmem_init, tc.dmem_init);
}

TEST(TestIo, SerializationIsReadable) {
  const std::string text = serialize_test(sample());
  EXPECT_NE(text.find("addi r1, r0, 7"), std::string::npos);  // disassembly
  EXPECT_NE(text.find("reg 5 deadbeef"), std::string::npos);
  EXPECT_NE(text.find("mem 00000080 12345678"), std::string::npos);
}

TEST(TestIo, ParserRejectsGarbage) {
  EXPECT_FALSE(parse_test("bogus 123\n").ok());
  EXPECT_FALSE(parse_test("reg 99 0\n").ok());
  EXPECT_FALSE(parse_test("instr\n").ok());
}

TEST(TestIo, CommentsAndBlanksIgnored) {
  const TestLoadResult r =
      parse_test("# header\n\ninstr 00000000 # trailing\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.test.imem.size(), 1u);
}

TEST(TestIo, FileRoundTrip) {
  const TestCase tc = sample();
  const std::string path = ::testing::TempDir() + "hltg_test_case.txt";
  ASSERT_TRUE(save_test(tc, path));
  const TestLoadResult r = load_test(path);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.test.imem, tc.imem);
}

TEST(TestIo, ReplayedTestStillDetects) {
  // Generate a test, serialize, reload, and confirm it still detects.
  const NetId site = model().dp.find_net("ex.alu_xor");
  DesignError e{BusSslError{site, 0, false}};
  TestGenerator tg(model());
  const TgResult g = tg.generate(e);
  ASSERT_EQ(g.status, TgStatus::kSuccess);
  const TestLoadResult r = parse_test(serialize_test(g.test));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(detects(model(), r.test, e.injection()));
}

TEST(Report, CsvShape) {
  const auto errs = wrap(std::vector<BusSslError>{
      {model().dp.find_net("ex.alu_add"), 0, false}});
  TestGenerator tg(model());
  const CampaignResult res = run_campaign(model().dp, errs, tg.strategy());
  const std::string csv = campaign_csv(model().dp, res);
  EXPECT_NE(csv.find("model,error,outcome"), std::string::npos);
  EXPECT_NE(csv.find("bus-SSL"), std::string::npos);
  EXPECT_NE(csv.find("detected"), std::string::npos);
  // Exactly header + one row.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(Report, CsvEscapesCommas) {
  // describe() strings contain no commas today, but the writer must be
  // robust anyway - check the escaping helper through a synthetic attempt.
  CampaignResult res;
  CampaignRow row{wrap(std::vector<BusSslError>{
                           {model().dp.find_net("ex.alu_add"), 0, false}})[0],
                  {}};
  res.rows.push_back(row);
  const std::string csv = campaign_csv(model().dp, res);
  EXPECT_NE(csv.find("aborted"), std::string::npos);
}

TEST(Report, MarkdownShape) {
  const auto errs = wrap(std::vector<BusSslError>{
      {model().dp.find_net("ex.alu_add"), 0, false},
      {model().dp.find_net("ex.slt32"), 31, false}});
  TestGenerator tg(model());
  const CampaignResult res = run_campaign(model().dp, errs, tg.strategy());
  const std::string md = campaign_markdown(model().dp, res, "Spot check");
  EXPECT_NE(md.find("# Spot check"), std::string::npos);
  EXPECT_NE(md.find("| detected | 1 |"), std::string::npos);
  EXPECT_NE(md.find("| aborted | 1 |"), std::string::npos);
}

}  // namespace
}  // namespace hltg
