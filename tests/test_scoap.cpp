#include <gtest/gtest.h>

#include "netlist/builder.h"
#include "netlist/scoap.h"

namespace hltg {
namespace {

TEST(Scoap, InputsCheapConstantsUncontrollable) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a", 8);
  const NetId k = b.constant("k", 8, 5);
  const NetId y = b.add("y", a, k);
  b.output("o", y);
  const ScoapCosts sc = compute_scoap(nl);
  EXPECT_EQ(sc.cc[a], 1u);
  EXPECT_EQ(sc.cc[k], kInfCost);
  // ADD class: controllable through the cheap input despite the constant.
  EXPECT_LT(sc.cc[y], kInfCost);
  EXPECT_EQ(sc.co[y], 0u);
  EXPECT_LT(sc.co[a], kInfCost);
}

TEST(Scoap, AndClassSumsInputCosts) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a", 8);
  const NetId c = b.input("c", 8);
  const NetId y_and = b.and_w("y_and", a, c);
  const NetId y_add = b.add("y_add", a, c);
  b.output("o1", y_and);
  b.output("o2", y_add);
  const ScoapCosts sc = compute_scoap(nl);
  EXPECT_GT(sc.cc[y_and], sc.cc[y_add]);  // sum vs min
}

TEST(Scoap, DepthIncreasesCost) {
  Netlist nl;
  NetlistBuilder b(nl);
  NetId x = b.input("x", 8);
  const NetId first = x;
  for (int i = 0; i < 5; ++i) x = b.not_w("n" + std::to_string(i), x);
  b.output("o", x);
  const ScoapCosts sc = compute_scoap(nl);
  EXPECT_GT(sc.cc[x], sc.cc[first]);
  EXPECT_GT(sc.co[first], sc.co[x]);
}

TEST(Scoap, RegisterAddsTimeFrameCost) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a", 8);
  const NetId q = b.reg("q", a);
  b.output("o", q);
  const ScoapCosts sc = compute_scoap(nl);
  EXPECT_GT(sc.cc[q], sc.cc[a]);
}

TEST(Scoap, UnobservableNetIsInf) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId a = b.input("a", 8);
  const NetId dead = b.not_w("dead", a);
  (void)dead;
  const NetId live = b.not_w("live", a);
  b.output("o", live);
  const ScoapCosts sc = compute_scoap(nl);
  EXPECT_EQ(sc.co[dead], kInfCost);
  EXPECT_LT(sc.co[live], kInfCost);
}

TEST(Scoap, MemWriteObservesItsInputs) {
  Netlist nl;
  NetlistBuilder b(nl);
  const NetId addr = b.input("addr", 32);
  const NetId data = b.input("data", 32);
  const NetId bem = b.input("bem", 4);
  const NetId we = b.ctrl("we", 1);
  b.mem_write("dmem", addr, data, bem, we);
  const ScoapCosts sc = compute_scoap(nl);
  EXPECT_LE(sc.co[data], 1u);
  EXPECT_LE(sc.co[addr], 1u);
}

TEST(Scoap, CostAddSaturates) {
  EXPECT_EQ(cost_add(kInfCost, kInfCost), kInfCost);
  EXPECT_EQ(cost_add(kInfCost - 1, 5), kInfCost);
  EXPECT_EQ(cost_add(2, 3), 5u);
}

}  // namespace
}  // namespace hltg
