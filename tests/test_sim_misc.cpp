// Tests for simulator internals, tracing, the random baseline and misc
// reporting helpers not covered by the subsystem suites.
#include <gtest/gtest.h>

#include "baseline/random_tg.h"
#include "dlx/signal_names.h"
#include "isa/asm.h"
#include "isa/encode.h"
#include "sim/cosim.h"
#include "sim/trace.h"
#include "util/log.h"

namespace hltg {
namespace {

const DlxModel& model() {
  static const DlxModel m = build_dlx();
  return m;
}

TestCase make_tc(const std::string& src) {
  const AsmResult r = assemble(src);
  EXPECT_TRUE(r.ok());
  TestCase tc;
  tc.imem = encode_program(r.program);
  return tc;
}

TEST(ProcSimMisc, CombinedInjectionKinds) {
  // A stuck line, a module substitution and an operand swap together.
  ErrorInjection inj;
  inj.stuck.push_back({model().dp.find_net("ex.alu_add"), 0, true});
  inj.substitute[model().dp.find_module("ex.alu_xor")] = ModuleKind::kAndW;
  inj.swap_inputs.insert(model().dp.find_module("ex.alu_sub"));
  TestCase tc = make_tc(
      "addi r1, r0, 6\n"
      "addi r2, r0, 2\n"
      "sub r3, r1, r2\n"
      "xor r4, r1, r2\n"
      "sw 0x40(r0), r3\n"
      "sw 0x44(r0), r4\n");
  EXPECT_TRUE(detects(model(), tc, inj));
}

TEST(ProcSimMisc, StuckOnCtrlNetChangesBehaviour) {
  // Stuck write-enable: the store never commits.
  ErrorInjection inj;
  inj.stuck.push_back({model().dp.find_net("ctrl.mem_we"), 0, false});
  TestCase tc = make_tc("addi r1, r0, 1\nsw 0x40(r0), r1\n");
  ProcSim sim(model(), tc, inj);
  sim.run(16);
  EXPECT_TRUE(sim.writes().empty());
  EXPECT_TRUE(detects(model(), tc, inj));
}

TEST(ProcSimMisc, CommittedCounterCountsWritebacks) {
  TestCase tc = make_tc("addi r1, r0, 1\naddi r2, r0, 2\nadd r3, r1, r2\n");
  ProcSim sim(model(), tc);
  sim.run(16);
  EXPECT_EQ(sim.instructions_committed(), 3u);
}

TEST(ProcSimMisc, CycleCounterAdvances) {
  TestCase tc = make_tc("nop\n");
  ProcSim sim(model(), tc);
  sim.run(5);
  EXPECT_EQ(sim.cycle(), 5u);
}

TEST(ProcSimMisc, DrainCyclesScalesWithProgram) {
  EXPECT_GT(drain_cycles(10), drain_cycles(1));
  EXPECT_GE(drain_cycles(0), 8u);
}

TEST(TraceMisc, RenderListsInstructionsAndStages) {
  TestCase tc = make_tc("addi r1, r0, 1\nadd r2, r1, r1\n");
  const std::string d = trace_pipeline(model(), tc, 8);
  EXPECT_NE(d.find("addi r1, r0, 1"), std::string::npos);
  EXPECT_NE(d.find("add r2, r1, r1"), std::string::npos);
  EXPECT_NE(d.find("FDXMW"), std::string::npos);
  EXPECT_NE(d.find("cycle:"), std::string::npos);
}

TEST(TraceMisc, SquashedInstructionLosesStages) {
  TestCase tc = make_tc(
      "addi r1, r0, 1\n"
      "bnez r1, 1\n"
      "addi r2, r0, 99\n"  // squashed: never reaches X
      "addi r3, r0, 3\n");
  const std::string d = trace_pipeline(model(), tc, 12);
  // Row i2 exists but shows only F/D before dying.
  const std::size_t row = d.find("i2");
  ASSERT_NE(row, std::string::npos);
  const std::string line = d.substr(row, d.find('\n', row) - row);
  EXPECT_EQ(line.find('X'), std::string::npos) << line;
}

TEST(RandomTg, DeterministicGivenSeed) {
  RandomTgConfig cfg;
  Rng a(42), b(42);
  const TestCase ta = random_test(a, cfg);
  const TestCase tb = random_test(b, cfg);
  EXPECT_EQ(ta.imem, tb.imem);
  EXPECT_EQ(ta.rf_init, tb.rf_init);
}

TEST(RandomTg, ProgramsAreDefinedInstructions) {
  RandomTgConfig cfg;
  Rng rng(77);
  const TestCase tc = random_test(rng, cfg);
  for (std::uint32_t w : tc.imem) EXPECT_TRUE(is_defined(w));
}

TEST(RandomTg, EndsWithExposingStores) {
  RandomTgConfig cfg;
  Rng rng(5);
  const TestCase tc = random_test(rng, cfg);
  unsigned stores = 0;
  for (std::size_t i = tc.imem.size() - cfg.reg_pool; i < tc.imem.size(); ++i)
    stores += is_store(decode(tc.imem[i]).op);
  EXPECT_EQ(stores, cfg.reg_pool);
}

TEST(SignalNames, StateBitCount) {
  // PC(32) + IF/ID(64) + ID/EX(143) + EX/MEM(69) + MEM/WB(37) = 345.
  EXPECT_EQ(datapath_state_bits(model().dp), 345u);
}

TEST(SignalNames, DescribeIsStable) {
  const std::string d = describe_model(model());
  EXPECT_NE(d.find("datapath:"), std::string::npos);
  EXPECT_NE(d.find("345 state bits"), std::string::npos);
  EXPECT_NE(d.find("CTRL bindings (18)"), std::string::npos);
  EXPECT_NE(d.find("STS bindings (10)"), std::string::npos);
  EXPECT_GT(d.size(), 500u);
}

TEST(LogMisc, LevelGate) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log_info("suppressed");  // must not crash; not capturable here
  set_log_level(old);
}

TEST(CosimMisc, GoldenImplementationMatchesSelf) {
  TestCase tc = make_tc("addi r1, r0, 3\nsw 0(r0), r1\n");
  const ArchTrace a = impl_run(model(), tc, 20);
  const ArchTrace b = impl_run(model(), tc, 20);
  EXPECT_EQ(a, b);
}

TEST(CosimMisc, UndefinedOpcodesBehaveAsNopsInBothMachines) {
  TestCase tc;
  tc.imem = {0x3Fu << 26, encode({Op::kAddi, 0, 0, 1, 7}), 0x00000007u,
             encode({Op::kSw, 0, 0, 1, 0x40})};
  const CosimResult r = cosim(model(), tc, 24);
  EXPECT_TRUE(r.match) << r.diff;
}

}  // namespace
}  // namespace hltg
