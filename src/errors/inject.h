// Unified handle over the three error models.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "errors/boe.h"
#include "errors/bse.h"
#include "errors/bus_ssl.h"
#include "errors/mse.h"

namespace hltg {

struct DesignError {
  std::variant<BusSslError, ModuleSubstitutionError, BusOrderError,
               BusSourceError>
      e;

  ErrorInjection injection() const;
  std::string describe(const Netlist& nl) const;
  std::string model_name() const;  ///< "bus-SSL" / "MSE" / "BOE" / "BSE"

  /// The error site: the net whose (good, erroneous) value pair the test
  /// generator must make differ. For SSL this is the stuck bus; for MSE/BOE
  /// it is the module's output net.
  NetId site_net(const Netlist& nl) const;
};

std::vector<DesignError> wrap(const std::vector<BusSslError>& v);
std::vector<DesignError> wrap(const std::vector<ModuleSubstitutionError>& v);
std::vector<DesignError> wrap(const std::vector<BusOrderError>& v);
std::vector<DesignError> wrap(const std::vector<BusSourceError>& v);

}  // namespace hltg
