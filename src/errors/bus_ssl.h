// Bus single-stuck-line (bus SSL) design-error model.
//
// Sec. VI: "We targeted our test generation system at all bus single stuck
// line (bus SSL) errors [Bhattacharya & Hayes] in the execute, memory and
// write-back stages of the datapath ... it defines a number of error
// instances linear in the size of the circuit."
//
// An error instance is one line (bit) of one bus (net) permanently stuck at
// 0 or 1. Enumeration is per bus; which bits of each bus are instantiated is
// configurable (default: lowest and highest line, both polarities), keeping
// the count linear in the number of buses.
#pragma once

#include <string>
#include <vector>

#include "dlx/dlx.h"
#include "sim/proc_sim.h"

namespace hltg {

struct BusSslError {
  NetId net = kNoNet;
  unsigned bit = 0;
  bool stuck_value = false;

  ErrorInjection injection() const {
    ErrorInjection inj;
    inj.stuck.push_back({net, bit, stuck_value});
    return inj;
  }
  std::string describe(const Netlist& nl) const;
};

struct BusSslConfig {
  std::vector<Stage> stages = {Stage::kEX, Stage::kMEM, Stage::kWB};
  /// Bit positions per bus; entries >= width are clamped to width-1 and
  /// deduplicated, so {0, 31} yields one line for a 1-bit bus.
  std::vector<unsigned> bits = {0, 31};
  bool stuck_at_0 = true;
  bool stuck_at_1 = true;
  /// Skip CTRL-role nets (they belong to the controller interface, not the
  /// datapath proper) and constant-driven nets (undetectable by design).
  bool skip_ctrl = true;
  bool skip_const = true;
};

/// Enumerate bus SSL error instances over the datapath.
std::vector<BusSslError> enumerate_bus_ssl(const Netlist& nl,
                                           const BusSslConfig& cfg = {});

}  // namespace hltg
