// Verification-coverage metrics over a test set (Sec. I context: coverage
// metrics are how test suites are judged; here they describe the *generated*
// suite itself): which of the 44 instructions a test set exercises, and
// which pipeline interactions (stalls, squashes, bypasses) it provokes.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "dlx/dlx.h"
#include "isa/spec_sim.h"

namespace hltg {

struct SuiteCoverage {
  std::array<bool, kNumInstructions> opcode_used{};
  std::uint64_t stalls = 0;
  std::uint64_t squashes = 0;
  std::uint64_t bypasses_a = 0;  ///< cycles with an A-operand bypass active
  std::uint64_t bypasses_b = 0;
  std::size_t tests = 0;
  std::size_t instructions = 0;

  unsigned opcodes_covered() const;
  double opcode_coverage() const {
    return 100.0 * opcodes_covered() / kNumInstructions;
  }
  std::string to_string() const;
};

/// Simulate every test and accumulate coverage.
SuiteCoverage measure_coverage(const DlxModel& m,
                               const std::vector<TestCase>& tests);

}  // namespace hltg
