#include "errors/inject.h"

namespace hltg {

ErrorInjection DesignError::injection() const {
  return std::visit([](const auto& x) { return x.injection(); }, e);
}

std::string DesignError::describe(const Netlist& nl) const {
  return std::visit([&](const auto& x) { return x.describe(nl); }, e);
}

std::string DesignError::model_name() const {
  if (std::holds_alternative<BusSslError>(e)) return "bus-SSL";
  if (std::holds_alternative<ModuleSubstitutionError>(e)) return "MSE";
  if (std::holds_alternative<BusOrderError>(e)) return "BOE";
  return "BSE";
}

NetId DesignError::site_net(const Netlist& nl) const {
  if (const auto* s = std::get_if<BusSslError>(&e)) return s->net;
  if (const auto* m = std::get_if<ModuleSubstitutionError>(&e))
    return nl.module(m->module).out;
  if (const auto* o = std::get_if<BusOrderError>(&e))
    return nl.module(o->module).out;
  return nl.module(std::get<BusSourceError>(e).module).out;
}

std::vector<DesignError> wrap(const std::vector<BusSslError>& v) {
  std::vector<DesignError> out;
  out.reserve(v.size());
  for (const auto& x : v) out.push_back({x});
  return out;
}
std::vector<DesignError> wrap(const std::vector<ModuleSubstitutionError>& v) {
  std::vector<DesignError> out;
  out.reserve(v.size());
  for (const auto& x : v) out.push_back({x});
  return out;
}
std::vector<DesignError> wrap(const std::vector<BusOrderError>& v) {
  std::vector<DesignError> out;
  out.reserve(v.size());
  for (const auto& x : v) out.push_back({x});
  return out;
}
std::vector<DesignError> wrap(const std::vector<BusSourceError>& v) {
  std::vector<DesignError> out;
  out.reserve(v.size());
  for (const auto& x : v) out.push_back({x});
  return out;
}

}  // namespace hltg
