#include "errors/mse.h"

#include <algorithm>

namespace hltg {

std::string ModuleSubstitutionError::describe(const Netlist& nl) const {
  const Module& m = nl.module(module);
  return m.name + ": " + std::string(to_string(m.kind)) + " -> " +
         std::string(to_string(wrong_kind)) + " (" +
         std::string(to_string(m.stage)) + ")";
}

std::vector<ModuleKind> substitution_candidates(ModuleKind k) {
  // Groups of mutually substitutable kinds: two data inputs, output width
  // equal to input width (word ops) or 1 (predicates).
  static const std::vector<std::vector<ModuleKind>> groups = {
      {ModuleKind::kAdd, ModuleKind::kSub, ModuleKind::kAndW, ModuleKind::kOrW,
       ModuleKind::kXorW},
      {ModuleKind::kEq, ModuleKind::kNe, ModuleKind::kLt, ModuleKind::kLtU,
       ModuleKind::kLe, ModuleKind::kLeU},
      {ModuleKind::kShl, ModuleKind::kShrL, ModuleKind::kShrA},
  };
  for (const auto& grp : groups) {
    if (std::find(grp.begin(), grp.end(), k) == grp.end()) continue;
    std::vector<ModuleKind> out;
    for (ModuleKind g : grp)
      if (g != k) out.push_back(g);
    return out;
  }
  return {};
}

std::vector<ModuleSubstitutionError> enumerate_mse(
    const Netlist& nl, const std::vector<Stage>& stages) {
  std::vector<ModuleSubstitutionError> out;
  for (ModId i = 0; i < nl.num_modules(); ++i) {
    const Module& m = nl.module(i);
    if (std::find(stages.begin(), stages.end(), m.stage) == stages.end())
      continue;
    for (ModuleKind k : substitution_candidates(m.kind))
      out.push_back({i, k});
  }
  return out;
}

}  // namespace hltg
