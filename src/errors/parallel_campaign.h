// Parallel campaign engine: a fixed-size worker pool runs the resilient
// per-error pipeline (errors/campaign.h: budgets, fallback, fault hooks,
// exception capture) over the error population concurrently.
//
// Determinism contract: for a deterministic generator, CampaignResult.rows
// and .stats are identical for any --jobs value. Workers only *compute*
// attempts; all aggregation (stats tallies, row order, verbose output)
// happens on the calling thread in error-index order after the pool joins.
// Work distribution is deterministic round-robin sharding: worker w runs
// the pending errors at positions p with p % jobs == w, in ascending
// order. Each worker's error sequence - and therefore any per-worker
// carried deduction state (campaign-scope SolverContext) - is a pure
// function of (campaign, jobs), reproducible run over run. Each attempt
// remains a pure function of (error, per-error budget, per-worker
// generator); generators are constructed per worker from a factory.
// If a worker's factory throws, its shard is not lost: once every factory
// outcome is known, surviving workers adopt orphaned shards whole (each
// adopted by exactly one survivor). Outcomes stay identical on that path;
// only reuse-effort counters can vary with adoption order.
//
// Journal contract: rows are appended under a mutex as workers finish, so
// they may land *out of index order*. That is within the JSONL journal
// contract - resume keys rows by their "index" field, not file position -
// and tests/test_parallel_campaign verifies resume from such a journal.
//
// Cancellation: a stop request (e.g. SIGINT via CancelToken) stops workers
// from taking new errors; in-flight attempts finish (their budgets also see
// the token if cfg.budget.cancel is wired) and are journaled before the
// pool drains.
#pragma once

#include <functional>

#include "errors/campaign.h"

namespace hltg {

/// Builds one worker's private generator. Called once per worker thread
/// (worker ids 0..jobs-1) before the worker takes any error, from that
/// worker's thread. The returned generator must be deterministic per error
/// for the jobs-independence guarantee; it need not be thread-safe, only
/// thread-compatible (no shared mutable state with other workers').
using GenFactory = std::function<BudgetedGenFn(unsigned worker)>;

struct ParallelCampaignConfig : CampaignConfig {
  /// Worker threads. 0 or 1 runs the pool with a single worker (results are
  /// identical either way; use run_campaign for the no-thread path).
  unsigned jobs = 1;
  /// Per-worker fallback generators (same contract as GenFactory). When
  /// set, overrides the shared CampaignConfig::fallback, which with the
  /// pool would have to be thread-safe.
  GenFactory fallback_factory;
};

/// Adapt a single shared generator known to be thread-safe (e.g. a pure
/// function of the error) to the factory interface.
GenFactory shared_gen(BudgetedGenFn gen);

/// Run the campaign on `cfg.jobs` workers. Aggregated result is
/// index-ordered and (for deterministic generators) byte-identical to
/// run_campaign's. Honors the full CampaignConfig including journal resume.
CampaignResult run_campaign_parallel(const Netlist& nl,
                                     const std::vector<DesignError>& errors,
                                     const GenFactory& make_gen,
                                     const ParallelCampaignConfig& cfg);

}  // namespace hltg
