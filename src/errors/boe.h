// Bus order errors (BOE) - extension error model from [28]: a module's two
// data-input buses are connected in the wrong order. Only meaningful for
// non-commutative modules.
#pragma once

#include <string>
#include <vector>

#include "dlx/dlx.h"
#include "sim/proc_sim.h"

namespace hltg {

struct BusOrderError {
  ModId module = kNoMod;

  ErrorInjection injection() const {
    ErrorInjection inj;
    inj.swap_inputs.insert(module);
    return inj;
  }
  std::string describe(const Netlist& nl) const;
};

/// True if swapping the module's first two data inputs can change behaviour.
bool is_order_sensitive(ModuleKind k);

std::vector<BusOrderError> enumerate_boe(const Netlist& nl,
                                         const std::vector<Stage>& stages);

}  // namespace hltg
