#include "errors/redundancy.h"

#include "util/word.h"

namespace hltg {

namespace {

struct KV {
  std::uint64_t known = 0;
  std::uint64_t value = 0;
};

KV eval_kv(const Netlist& nl, const Module& m, const std::vector<KV>& in) {
  const unsigned ow = m.out != kNoNet ? nl.net(m.out).width : 1;
  const std::uint64_t full = mask_bits(ow);
  KV r;
  auto a = [&] { return in[0]; };
  auto b = [&] { return in[1]; };
  switch (m.kind) {
    case ModuleKind::kConst:
      r.known = full;
      r.value = trunc(m.param, ow);
      break;
    case ModuleKind::kZext: {
      const unsigned wi = nl.net(m.data_in[0]).width;
      r.known = (a().known & mask_bits(wi)) | (full & ~mask_bits(wi));
      r.value = a().value & mask_bits(wi);
      break;
    }
    case ModuleKind::kSext: {
      const unsigned wi = nl.net(m.data_in[0]).width;
      r.known = a().known & mask_bits(wi);
      r.value = a().value & mask_bits(wi);
      // Upper bits known only if the sign bit is known.
      if ((a().known >> (wi - 1)) & 1) {
        r.known |= full & ~mask_bits(wi);
        if ((a().value >> (wi - 1)) & 1) r.value |= full & ~mask_bits(wi);
      }
      break;
    }
    case ModuleKind::kSlice: {
      const unsigned lo = static_cast<unsigned>(m.param);
      r.known = (a().known >> lo) & full;
      r.value = (a().value >> lo) & full;
      break;
    }
    case ModuleKind::kConcat: {
      unsigned lo = 0;
      for (unsigned i = 0; i < m.data_in.size(); ++i) {
        const unsigned wi = nl.net(m.data_in[i]).width;
        r.known |= (in[i].known & mask_bits(wi)) << lo;
        r.value |= (in[i].value & mask_bits(wi)) << lo;
        lo += wi;
      }
      break;
    }
    case ModuleKind::kAndW:
      r.known = (a().known & ~a().value) | (b().known & ~b().value) |
                (a().known & b().known);
      r.value = a().value & b().value;
      r.known &= full;
      break;
    case ModuleKind::kOrW:
      r.known = (a().known & a().value) | (b().known & b().value) |
                (a().known & b().known);
      r.value = (a().value | b().value) & r.known;
      r.known &= full;
      break;
    case ModuleKind::kNotW:
      r.known = a().known & full;
      r.value = ~a().value & r.known;
      break;
    case ModuleKind::kXorW:
      r.known = a().known & b().known & full;
      r.value = (a().value ^ b().value) & r.known;
      break;
    case ModuleKind::kShl: {
      // Fully known constant amount: shift the known masks.
      if ((b().known & mask_bits(nl.net(m.data_in[1]).width)) ==
          mask_bits(nl.net(m.data_in[1]).width)) {
        const unsigned sh = static_cast<unsigned>(b().value & 63);
        if (sh >= ow) {
          r.known = full;
          r.value = 0;
        } else {
          r.known = ((a().known << sh) | mask_bits(sh)) & full;
          r.value = (a().value << sh) & r.known;
        }
      }
      break;
    }
    case ModuleKind::kMux: {
      // Bit known when all selectable inputs agree on a known bit.
      r.known = full;
      r.value = in[0].value;
      for (const KV& kv : in) {
        r.known &= kv.known & ~(r.value ^ kv.value);
      }
      r.value &= r.known;
      break;
    }
    case ModuleKind::kReg: {
      // A register line is constant iff its feed is provably constant and
      // equal to the reset value (so the constancy survives every cycle),
      // and - when the register is clearable - that constant is zero.
      const bool has_clr = m.tag & 2;
      const std::uint64_t reset = trunc(m.param, ow);
      r.known = in[0].known & ~(in[0].value ^ reset) & full;
      if (has_clr) r.known &= ~in[0].value & ~reset;
      r.value = reset & r.known;
      break;
    }
    default:
      break;  // unknown
  }
  r.value &= r.known;
  return r;
}

}  // namespace

BitConstants analyze_bit_constants(const Netlist& nl) {
  std::vector<KV> kv(nl.num_nets());
  // Fixpoint: start everything unknown; only constants introduce knowledge,
  // so iteration monotonically grows `known` along data paths and registers
  // stabilize quickly.
  for (int sweep = 0; sweep < 8; ++sweep) {
    bool changed = false;
    for (ModId mi = 0; mi < nl.num_modules(); ++mi) {
      const Module& m = nl.module(mi);
      if (m.out == kNoNet) continue;
      std::vector<KV> in;
      in.reserve(m.data_in.size());
      for (NetId n : m.data_in) in.push_back(kv[n]);
      const KV r = eval_kv(nl, m, in);
      if (r.known != kv[m.out].known || r.value != kv[m.out].value) {
        kv[m.out] = r;
        changed = true;
      }
    }
    if (!changed) break;
  }
  BitConstants bc;
  bc.known.resize(nl.num_nets());
  bc.value.resize(nl.num_nets());
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    bc.known[n] = kv[n].known;
    bc.value[n] = kv[n].value;
  }
  return bc;
}

ObservableBits analyze_observable_bits(const Netlist& nl) {
  ObservableBits ob;
  ob.mask.assign(nl.num_nets(), 0);

  // Smear a mask downward: if output bit i is observable through a carry
  // chain, every input bit <= i can influence it.
  auto smear_down = [](std::uint64_t m) {
    m |= m >> 1;
    m |= m >> 2;
    m |= m >> 4;
    m |= m >> 8;
    m |= m >> 16;
    m |= m >> 32;
    return m;
  };

  // Seeds: all inputs of the observation sinks, and status signals (they
  // steer the controller, whose misbehaviour is architecturally visible).
  for (ModId mi = 0; mi < nl.num_modules(); ++mi) {
    const Module& m = nl.module(mi);
    if (m.kind == ModuleKind::kOutput || m.kind == ModuleKind::kRfWrite ||
        m.kind == ModuleKind::kMemWrite) {
      for (NetId n : m.data_in) ob.mask[n] = mask_bits(nl.net(n).width);
    }
  }
  for (NetId n = 0; n < nl.num_nets(); ++n)
    if (nl.net(n).role == NetRole::kSts)
      ob.mask[n] = mask_bits(nl.net(n).width);

  // Backward fixpoint: propagate output observability to inputs.
  for (int sweep = 0; sweep < 16; ++sweep) {
    bool changed = false;
    auto grow = [&](NetId n, std::uint64_t add) {
      add &= mask_bits(nl.net(n).width);
      if ((ob.mask[n] | add) != ob.mask[n]) {
        ob.mask[n] |= add;
        changed = true;
      }
    };
    for (ModId mi = 0; mi < nl.num_modules(); ++mi) {
      const Module& m = nl.module(mi);
      if (m.out == kNoNet) continue;
      const std::uint64_t out = ob.mask[m.out];
      if (!out) continue;
      switch (m.kind) {
        case ModuleKind::kAdd:
        case ModuleKind::kSub:
          // A carry lets input bit i reach any output bit >= i.
          for (NetId n : m.data_in) grow(n, smear_down(out));
          break;
        case ModuleKind::kAndW:
        case ModuleKind::kNandW:
        case ModuleKind::kOrW:
        case ModuleKind::kNorW:
        case ModuleKind::kXorW:
        case ModuleKind::kXnorW:
        case ModuleKind::kNotW:
        case ModuleKind::kReg:
          for (NetId n : m.data_in) grow(n, out);
          break;
        case ModuleKind::kMux:
          for (NetId n : m.data_in) grow(n, out);
          grow(m.ctrl_in[0], mask_bits(nl.net(m.ctrl_in[0]).width));
          break;
        case ModuleKind::kShl:
        case ModuleKind::kShrL:
        case ModuleKind::kShrA: {
          // With a constant amount the mapping is exact; with a variable
          // amount any value bit can land on any observable output bit.
          const ModId ad = nl.net(m.data_in[1]).driver;
          if (ad != kNoMod && nl.module(ad).kind == ModuleKind::kConst) {
            const unsigned sh =
                static_cast<unsigned>(nl.module(ad).param & 63);
            if (m.kind == ModuleKind::kShl)
              grow(m.data_in[0], out >> sh);
            else
              grow(m.data_in[0], out << sh);
            if (m.kind == ModuleKind::kShrA) {
              const unsigned wi = nl.net(m.data_in[0]).width;
              if (out) grow(m.data_in[0], std::uint64_t{1} << (wi - 1));
            }
          } else {
            grow(m.data_in[0], mask_bits(nl.net(m.data_in[0]).width));
          }
          grow(m.data_in[1], mask_bits(nl.net(m.data_in[1]).width));
          break;
        }
        case ModuleKind::kSlice: {
          const unsigned lo = static_cast<unsigned>(m.param);
          grow(m.data_in[0], out << lo);
          break;
        }
        case ModuleKind::kConcat: {
          unsigned lo = 0;
          for (NetId n : m.data_in) {
            const unsigned wi = nl.net(n).width;
            grow(n, out >> lo);
            lo += wi;
          }
          break;
        }
        case ModuleKind::kZext:
        case ModuleKind::kSext: {
          grow(m.data_in[0], out);
          if (m.kind == ModuleKind::kSext) {
            // The replicated sign bit is observable if any upper bit is.
            const unsigned wi = nl.net(m.data_in[0]).width;
            if (out >> wi) grow(m.data_in[0], std::uint64_t{1} << (wi - 1));
          }
          break;
        }
        case ModuleKind::kEq:
        case ModuleKind::kNe:
        case ModuleKind::kLt:
        case ModuleKind::kLe:
        case ModuleKind::kLtU:
        case ModuleKind::kLeU:
        case ModuleKind::kAddOvf:
        case ModuleKind::kSubOvf:
          // Any operand bit can flip a comparison.
          for (NetId n : m.data_in)
            grow(n, mask_bits(nl.net(n).width));
          break;
        case ModuleKind::kRfRead:
        case ModuleKind::kMemRead:
          // Address bits select the returned value.
          for (NetId n : m.data_in)
            grow(n, mask_bits(nl.net(n).width));
          break;
        default:
          break;
      }
    }
    if (!changed) break;
  }
  return ob;
}

bool is_redundant(const BitConstants& bc, const BusSslError& e) {
  return bc.is_known(e.net, e.bit) &&
         bc.known_value(e.net, e.bit) == e.stuck_value;
}

bool is_redundant(const BitConstants& bc, const ObservableBits& ob,
                  const BusSslError& e) {
  return is_redundant(bc, e) || !ob.is_observable(e.net, e.bit);
}

std::vector<BusSslError> redundant_subset(const Netlist& nl,
                                          const std::vector<BusSslError>& v) {
  const BitConstants bc = analyze_bit_constants(nl);
  const ObservableBits ob = analyze_observable_bits(nl);
  std::vector<BusSslError> out;
  for (const BusSslError& e : v)
    if (is_redundant(bc, ob, e)) out.push_back(e);
  return out;
}

}  // namespace hltg
