#include "errors/coverage.h"

#include <sstream>

#include "isa/encode.h"
#include "sim/cosim.h"

namespace hltg {

unsigned SuiteCoverage::opcodes_covered() const {
  unsigned n = 0;
  for (bool b : opcode_used) n += b;
  return n;
}

std::string SuiteCoverage::to_string() const {
  std::ostringstream os;
  os << tests << " tests, " << instructions << " instructions; opcode "
     << "coverage " << opcodes_covered() << "/" << kNumInstructions;
  os << "; stalls " << stalls << ", squashes " << squashes << ", bypasses A/B "
     << bypasses_a << "/" << bypasses_b << "\nmissing opcodes:";
  bool any = false;
  for (int k = 0; k < kNumInstructions; ++k)
    if (!opcode_used[k]) {
      os << " " << mnemonic(static_cast<Op>(k));
      any = true;
    }
  if (!any) os << " (none)";
  return os.str();
}

SuiteCoverage measure_coverage(const DlxModel& m,
                               const std::vector<TestCase>& tests) {
  SuiteCoverage cov;
  cov.tests = tests.size();
  const GateId fwda0 = m.ctrl.find("cg.fwda_mem");
  const GateId fwda1 = m.ctrl.find("cg.fwda_wb");
  const GateId fwdb0 = m.ctrl.find("cg.fwdb_mem");
  const GateId fwdb1 = m.ctrl.find("cg.fwdb_wb");
  for (const TestCase& tc : tests) {
    for (std::uint32_t w : tc.imem) {
      cov.opcode_used[static_cast<int>(decode(w).op)] = true;
      ++cov.instructions;
    }
    ProcSim sim(m, tc);
    const unsigned cycles = drain_cycles(tc.imem.size());
    for (unsigned c = 0; c < cycles; ++c) {
      sim.begin_cycle();
      if (fwda0 != kNoGate &&
          (sim.gate_value(fwda0) || (fwda1 != kNoGate && sim.gate_value(fwda1))))
        ++cov.bypasses_a;
      if (fwdb0 != kNoGate &&
          (sim.gate_value(fwdb0) || (fwdb1 != kNoGate && sim.gate_value(fwdb1))))
        ++cov.bypasses_b;
      sim.end_cycle();
    }
    cov.stalls += sim.stall_cycles();
    cov.squashes += sim.squashes();
  }
  return cov;
}

}  // namespace hltg
