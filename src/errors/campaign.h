// Error campaign driver: runs a test-generation strategy over a list of
// design errors, confirms each generated test by dual simulation, and
// aggregates the statistics that Table 1 of the paper reports.
//
// Resilience (docs/ROBUSTNESS.md): each error attempt runs under a
// per-error Budget (wall-clock deadline, decision/backtrack caps,
// cooperative cancellation); attempts that exhaust their budget can fall
// back to a secondary (e.g. biased-random) generator under its own budget;
// every completed attempt is journaled to an append-only JSONL file so an
// interrupted campaign can be resumed without repeating finished errors;
// and a generator that throws aborts only its own error, not the campaign.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "errors/inject.h"
#include "isa/spec_sim.h"
#include "util/budget.h"

namespace hltg {

/// How one error attempt concluded (the Table-1 outcome taxonomy).
enum class AttemptOutcome : std::uint8_t {
  kDetectedDeterministic,  ///< the primary generator produced a confirmed test
  kDetectedFallback,       ///< the degradation generator produced one
  kAborted,                ///< no confirmed test (budget, give-up, exception)
  kClaimMismatch,          ///< detection claim failed the independent oracle
};

constexpr std::string_view to_string(AttemptOutcome o) {
  switch (o) {
    case AttemptOutcome::kDetectedDeterministic: return "detected_deterministic";
    case AttemptOutcome::kDetectedFallback: return "detected_fallback";
    case AttemptOutcome::kAborted: return "aborted";
    case AttemptOutcome::kClaimMismatch: return "claim_mismatch";
  }
  return "?";
}

/// Verdict of the self-checking cross-check (docs/ROBUSTNESS.md): after any
/// detection claim, the witness is re-validated through an independent
/// oracle; a disagreement means one of the detectors is wrong and the row
/// must not silently enter the Table-1 statistics.
enum class WitnessVerdict : std::uint8_t {
  kUnchecked,      ///< verification disabled, or the row claims no detection
  kConfirmed,      ///< independent oracle reproduced the divergence
  kClaimMismatch,  ///< oracle found NO divergence: the claim is bogus
  kOracleError,    ///< the oracle itself failed (threw); claim left standing
};

constexpr std::string_view to_string(WitnessVerdict v) {
  switch (v) {
    case WitnessVerdict::kUnchecked: return "unchecked";
    case WitnessVerdict::kConfirmed: return "confirmed";
    case WitnessVerdict::kClaimMismatch: return "claim_mismatch";
    case WitnessVerdict::kOracleError: return "oracle_error";
  }
  return "?";
}

/// Parse the strings to_string(WitnessVerdict) produces (journal round-trip).
constexpr WitnessVerdict witness_verdict_from(std::string_view s) {
  if (s == "confirmed") return WitnessVerdict::kConfirmed;
  if (s == "claim_mismatch") return WitnessVerdict::kClaimMismatch;
  if (s == "oracle_error") return WitnessVerdict::kOracleError;
  return WitnessVerdict::kUnchecked;
}

/// Result of attempting one error.
struct ErrorAttempt {
  bool generated = false;       ///< a test was produced
  bool sim_confirmed = false;   ///< dual simulation shows a mismatch
  unsigned test_length = 0;     ///< instructions (excluding drain NOPs)
  std::uint64_t backtracks = 0;
  std::uint64_t decisions = 0;
  // Solver-layer effort (src/solver/): forced values, learned nogoods,
  // nogood firings and justification-cache hits of the attempt.
  std::uint64_t implications = 0;
  std::uint64_t learned = 0;
  std::uint64_t nogood_hits = 0;
  std::uint64_t cache_hits = 0;
  // Per-phase wall time of the attempt (monotonic clock; zero for
  // strategies that predate the instrumentation or for replayed rows from
  // an old journal).
  std::uint64_t dptrace_ns = 0;
  std::uint64_t ctrljust_ns = 0;
  std::uint64_t dprelax_ns = 0;
  // Batched decision probing (solver/probe_batch; zero with probing off,
  // for uninstrumented strategies and for rows replayed from old journals).
  std::uint64_t probe_ns = 0;
  std::uint64_t probe_batches = 0;
  std::uint64_t probe_lanes = 0;
  std::uint64_t probe_prunes = 0;
  double seconds = 0.0;
  TestCase test;
  std::string note;
  AbortReason abort = AbortReason::kNone;  ///< why the attempt was cut short
  bool via_fallback = false;  ///< produced by the degradation generator

  // Self-checking triage (src/triage/, docs/ROBUSTNESS.md). `verify` is the
  // final cross-check verdict for the row; a kClaimMismatch verdict demotes
  // the detection claim out of the Table-1 detected bucket. When a mismatch
  // occurred, the offending witness (and, with minimization on, its
  // delta-debugged shrink) is preserved for the quarantine bundle even if a
  // cross-config retry later vindicated the row (`recovered`).
  WitnessVerdict verify = WitnessVerdict::kUnchecked;
  bool recovered = false;  ///< cross-config retry re-detected and confirmed
  bool minimized = false;  ///< incident_min holds a ddmin-shrunk witness
  TestCase incident_test;  ///< the witness that failed the cross-check
  TestCase incident_min;   ///< its minimized form (valid iff `minimized`)

  bool detected() const {
    return generated && sim_confirmed &&
           verify != WitnessVerdict::kClaimMismatch;
  }
  /// A claim mismatch or oracle failure happened on this row (even if a
  /// retry recovered it): the row owns a quarantine incident.
  bool incident() const {
    return verify == WitnessVerdict::kClaimMismatch ||
           verify == WitnessVerdict::kOracleError || recovered;
  }
  AttemptOutcome outcome() const {
    if (verify == WitnessVerdict::kClaimMismatch)
      return AttemptOutcome::kClaimMismatch;
    if (!detected()) return AttemptOutcome::kAborted;
    return via_fallback ? AttemptOutcome::kDetectedFallback
                        : AttemptOutcome::kDetectedDeterministic;
  }
};

/// Strategy callback: produce a test for one error (or report failure).
using TestGenFn = std::function<ErrorAttempt(const DesignError&)>;

/// Budget-aware strategy: the campaign arms one fresh Budget per error
/// (deadline relative to the attempt's start) and passes it in; the
/// strategy polls it and reports the structured abort reason.
using BudgetedGenFn = std::function<ErrorAttempt(const DesignError&, Budget&)>;

/// Adapt a budget-unaware legacy strategy.
BudgetedGenFn ignore_budget(TestGenFn gen);

struct CampaignRow {
  DesignError error;
  ErrorAttempt attempt;
};

struct CampaignStats {
  std::size_t total = 0;
  std::size_t attempted = 0;  ///< < total when the campaign was cancelled
  std::size_t detected = 0;   ///< generated AND confirmed by simulation
  std::size_t aborted = 0;
  /// Outcome split: detected = detected_deterministic + detected_fallback.
  std::size_t detected_deterministic = 0;
  std::size_t detected_fallback = 0;
  /// Abort-reason breakdown (sums to <= aborted; plain generator give-ups
  /// carry AbortReason::kNone and appear only in `aborted`).
  std::size_t aborted_deadline = 0;
  std::size_t aborted_backtracks = 0;
  std::size_t aborted_decisions = 0;
  std::size_t aborted_cancelled = 0;
  std::size_t aborted_exception = 0;
  /// Self-checking (quarantine) bucket: rows whose detection claim the
  /// independent oracle refuted and no cross-config retry could vindicate.
  /// Disjoint from `detected` and `aborted`.
  std::size_t claim_mismatch = 0;
  /// Cross-check tallies (not rendered in table1 unless nonzero, so a
  /// mismatch-free verified campaign prints byte-identically to an
  /// unverified one).
  std::size_t verify_confirmed = 0;  ///< claims the oracle reproduced
  std::size_t verify_recovered = 0;  ///< mismatches vindicated by retry
  std::size_t oracle_errors = 0;     ///< oracle itself failed on the row
  std::size_t drop_mismatches = 0;   ///< batch-drop claims the oracle refuted
  double avg_test_length = 0.0;       ///< over detected errors
  std::uint64_t backtracks = 0;       ///< over detected errors (Table 1)
  std::uint64_t decisions = 0;
  /// Solver-layer tallies over all attempted errors (zero with the legacy
  /// back end or --solver=off).
  std::uint64_t implications = 0;
  std::uint64_t learned = 0;
  std::uint64_t nogood_hits = 0;
  std::uint64_t cache_hits = 0;
  /// Per-phase wall-time attribution over all attempted errors (zero for
  /// uninstrumented strategies; see ErrorAttempt).
  std::uint64_t dptrace_ns = 0;
  std::uint64_t ctrljust_ns = 0;
  std::uint64_t dprelax_ns = 0;
  /// Batched-probe tallies over all attempted errors (zero with probing
  /// off - the default - so pre-probe reports are unchanged).
  std::uint64_t probe_ns = 0;
  std::uint64_t probe_batches = 0;
  std::uint64_t probe_lanes = 0;
  std::uint64_t probe_prunes = 0;
  double cpu_seconds = 0.0;
  std::vector<unsigned> length_histogram;  ///< index = length

  std::string table1(const std::string& title) const;  ///< Table-1 format

  /// Fold one attempt into the tallies (shared by the serial, parallel and
  /// dropping engines so the three can never diverge). `length_sum`
  /// accumulates detected test lengths for the avg_test_length finish-up.
  void add_attempt(const ErrorAttempt& a, std::uint64_t* length_sum);
};

struct CampaignResult {
  std::vector<CampaignRow> rows;
  CampaignStats stats;
  bool interrupted = false;      ///< cancellation stopped the sweep early
  /// --resume named a journal stamped with a DIFFERENT design or solver
  /// configuration: nothing ran (rows empty), journal_note explains.
  bool resume_refused = false;
  std::size_t resumed_rows = 0;  ///< rows replayed from the journal
  std::size_t dropped = 0;       ///< errors detected fortuitously
  std::size_t tests_kept = 0;    ///< distinct tests in the compacted set
  double dropping_seconds = 0;   ///< wall time spent error-simulating drops
  std::string journal_note;      ///< journal open/replay diagnostics
  /// Triage incidents raised by *fresh* rows this run (replayed rows were
  /// bundled by the original run). Incident numbers are assigned in
  /// error-index order, so they are deterministic for any --jobs value.
  std::size_t incidents = 0;
  std::vector<std::string> incident_notes;  ///< bundle paths / diagnostics
};

/// Fault-injection hook: deterministically forces per-error outcomes so the
/// recovery paths (exception capture, budget exhaustion, graceful
/// degradation) are directly testable without contriving real search
/// behaviour. Keyed by error index in the campaign's error list.
struct CampaignFault {
  enum class Kind {
    kThrow,          ///< the generator throws; campaign must survive
    kBudgetExhaust,  ///< primary attempt aborts with `abort` as the reason
    kForceAttempt,   ///< primary attempt is exactly `attempt`
  };
  Kind kind = Kind::kBudgetExhaust;
  AbortReason abort = AbortReason::kBacktracks;  ///< for kBudgetExhaust
  ErrorAttempt attempt;                          ///< for kForceAttempt
  /// When the primary attempt fails and a fallback generator is configured,
  /// force the fallback attempt to be `fallback_attempt` instead of calling
  /// the generator (models "fallback-succeed" deterministically).
  bool force_fallback = false;
  ErrorAttempt fallback_attempt;
};
using CampaignFaultPlan = std::map<std::size_t, CampaignFault>;

/// Detection oracle: does `test` detect `err`? Used for error dropping and
/// as the independent witness cross-check of the triage layer.
using DetectFn = std::function<bool(const TestCase&, const DesignError&)>;

/// Witness minimizer (src/triage/ddmin): shrink `test` while the oracle
/// verdict stays `expect_detected`; `note` receives a human summary of the
/// reduction. Must be thread-compatible (called from campaign workers).
using TriageMinimizeFn = std::function<TestCase(
    const TestCase&, const DesignError&, bool expect_detected,
    std::string* note)>;

/// Quarantine bundle writer (src/triage/bundle): emit one diagnostic
/// directory for incident number `incident` (index-ordered, deterministic
/// across --jobs). Returns a human note (bundle path or error). Called from
/// the aggregation thread only.
using TriageBundleFn = std::function<std::string(
    std::size_t incident, std::size_t error_index, const DesignError& err,
    const ErrorAttempt& attempt)>;

/// Self-checking configuration (docs/ROBUSTNESS.md "Self-checking and
/// triage"). With `verify` on, every detection claim - generator- or
/// fallback-produced, and every batch-drop claim - is re-validated through
/// `oracle`; a refuted claim is retried once through `cross_gen` (e.g. the
/// legacy --solver off search) and, failing that, lands in the
/// claim_mismatch bucket and is bundled for quarantine.
struct TriageConfig {
  bool verify = false;    ///< cross-check detection claims via `oracle`
  bool minimize = false;  ///< ddmin mismatching witnesses via `minimizer`
  DetectFn oracle;        ///< independent scalar oracle; a throw =>
                          ///< WitnessVerdict::kOracleError
  BudgetedGenFn cross_gen;     ///< one cross-config retry on claim mismatch
  TriageMinimizeFn minimizer;  ///< witness shrinker (used when `minimize`)
  TriageBundleFn bundle;       ///< quarantine writer (empty disables)
};

struct CampaignConfig {
  bool verbose = false;
  /// Armed per error for the primary (deterministic) generator.
  BudgetSpec budget;
  /// Graceful degradation: tried when the primary attempt fails for any
  /// reason other than cancellation. Empty function disables.
  BudgetedGenFn fallback;
  BudgetSpec fallback_budget;  ///< armed per fallback attempt
  /// Append-only JSONL journal ("" disables). One row per error.
  std::string journal_path;
  /// fsync the journal every N appended rows (and always on close). 1 is
  /// the old fsync-per-row behaviour; 0 defers durability entirely to
  /// close. A crash loses at most the current batch; resume replays the
  /// synced prefix correctly either way.
  unsigned journal_fsync_interval = 32;
  /// Replay journaled rows (skipping their generator runs) before
  /// attempting the rest. Requires journal_path.
  bool resume = false;
  /// Strict resume: refuse (CampaignResult::resume_refused) when the
  /// journal cannot actually be replayed - missing file, unreadable
  /// header, or a different campaign's journal - instead of silently
  /// starting fresh. Only meaningful with `resume`.
  bool resume_strict = false;
  /// Provenance stamps recorded in the journal header and checked on
  /// resume: a journal whose stamps conflict with these is REFUSED
  /// (CampaignResult::resume_refused) instead of replayed, because rows
  /// from a different design or solver configuration would silently
  /// corrupt the Table-1 statistics. Zero means "unstamped" (legacy
  /// callers, unit tests): no stamp is written and none is enforced.
  /// Campaign drivers pass tg_design_hash() / tg_config_hash().
  std::uint64_t design_hash = 0;
  std::uint64_t solver_config_hash = 0;
  /// Checked between errors: a stop request ends the sweep cleanly after
  /// the current error (its row is journaled first).
  const CancelToken* cancel = nullptr;
  const CampaignFaultPlan* faults = nullptr;  ///< test hook
  /// Self-checking: oracle cross-check, cross-config retry, witness
  /// minimization, quarantine bundling.
  TriageConfig triage;
};

/// One error through the resilient pipeline: fault hook, primary generator
/// under its budget, exception capture, graceful degradation. Shared by the
/// serial loop, the dropping loop, and the parallel worker pool
/// (errors/parallel_campaign); thread-safe as long as `gen`, the fallback,
/// and the fault plan are (the campaign engines guarantee one generator
/// instance per worker).
ErrorAttempt attempt_one_error(const DesignError& err, std::size_t index,
                               const BudgetedGenFn& gen,
                               const CampaignConfig& cfg);

/// Record (and, when a writer is configured, emit) one quarantine incident.
/// Shared by the three campaign engines, which call it in error-index order
/// from the aggregation thread - incident numbering is therefore
/// deterministic for any --jobs value. Replayed (resumed) rows are never
/// re-bundled; only fresh attempts reach this.
void record_incident(CampaignResult* res, const CampaignConfig& cfg,
                     std::size_t index, const DesignError& err,
                     const ErrorAttempt& a);

CampaignResult run_campaign(const Netlist& nl,
                            const std::vector<DesignError>& errors,
                            const BudgetedGenFn& gen,
                            const CampaignConfig& cfg);

/// Legacy entry point: unbudgeted, unjournaled.
CampaignResult run_campaign(const Netlist& nl,
                            const std::vector<DesignError>& errors,
                            const TestGenFn& gen, bool verbose = false);

/// Batched detection oracle: out[i] iff `test` detects errors[i]. The
/// bit-parallel implementation (sim/batch_sim: one controller evaluation
/// for up to 64 injected errors) answers a whole remaining-error sweep in
/// one call; `batch_from_scalar` adapts a per-error DetectFn.
using BatchDetectFn = std::function<std::vector<bool>(
    const TestCase&, const std::vector<const DesignError*>&)>;

/// Adapt a scalar detection oracle to the batched interface (serial
/// reference path; the benchmark measures the batch kernel against it).
BatchDetectFn batch_from_scalar(DetectFn detect);

/// Campaign with error dropping (the re-use the paper's Sec. VI says its
/// prototype did not yet exploit): after each generated test, all remaining
/// errors are error-simulated against it in one batched detector call and
/// fortuitously detected ones are dropped without their own generator run.
/// The resulting compacted test set covers the same errors with far fewer
/// tests and generator calls.
///
/// Honors the full CampaignConfig: per-error budgets, graceful degradation,
/// cooperative cancellation, and the checkpoint journal. Only generator
/// attempts are journaled; on resume the dropping passes are re-derived by
/// re-simulating each replayed test (cheap on the batched path), so the
/// resumed campaign reproduces the original drop set deterministically.
CampaignResult run_campaign_with_dropping(
    const Netlist& nl, const std::vector<DesignError>& errors,
    const BudgetedGenFn& gen, const BatchDetectFn& detect,
    const CampaignConfig& cfg);

/// Legacy entry point: unbudgeted, unjournaled, scalar detection.
CampaignResult run_campaign_with_dropping(
    const Netlist& nl, const std::vector<DesignError>& errors,
    const TestGenFn& gen, const DetectFn& detect, bool verbose = false);

}  // namespace hltg
