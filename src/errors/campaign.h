// Error campaign driver: runs a test-generation strategy over a list of
// design errors, confirms each generated test by dual simulation, and
// aggregates the statistics that Table 1 of the paper reports.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "errors/inject.h"
#include "isa/spec_sim.h"

namespace hltg {

/// Result of attempting one error.
struct ErrorAttempt {
  bool generated = false;       ///< a test was produced
  bool sim_confirmed = false;   ///< dual simulation shows a mismatch
  unsigned test_length = 0;     ///< instructions (excluding drain NOPs)
  std::uint64_t backtracks = 0;
  std::uint64_t decisions = 0;
  double seconds = 0.0;
  TestCase test;
  std::string note;
};

/// Strategy callback: produce a test for one error (or report failure).
using TestGenFn = std::function<ErrorAttempt(const DesignError&)>;

struct CampaignRow {
  DesignError error;
  ErrorAttempt attempt;
};

struct CampaignStats {
  std::size_t total = 0;
  std::size_t detected = 0;   ///< generated AND confirmed by simulation
  std::size_t aborted = 0;
  double avg_test_length = 0.0;       ///< over detected errors
  std::uint64_t backtracks = 0;       ///< over detected errors (Table 1)
  std::uint64_t decisions = 0;
  double cpu_seconds = 0.0;
  std::vector<unsigned> length_histogram;  ///< index = length

  std::string table1(const std::string& title) const;  ///< Table-1 format
};

struct CampaignResult {
  std::vector<CampaignRow> rows;
  CampaignStats stats;
  std::size_t dropped = 0;      ///< errors detected fortuitously
  std::size_t tests_kept = 0;   ///< distinct tests in the compacted set
};

CampaignResult run_campaign(const Netlist& nl,
                            const std::vector<DesignError>& errors,
                            const TestGenFn& gen, bool verbose = false);

/// Detection oracle used for error dropping: does `test` detect `err`?
using DetectFn = std::function<bool(const TestCase&, const DesignError&)>;

/// Campaign with error dropping (the re-use the paper's Sec. VI says its
/// prototype did not yet exploit): after each generated test, all remaining
/// errors are error-simulated against it and fortuitously detected ones are
/// dropped without their own generator run. The resulting compacted test
/// set covers the same errors with far fewer tests and generator calls.
CampaignResult run_campaign_with_dropping(
    const Netlist& nl, const std::vector<DesignError>& errors,
    const TestGenFn& gen, const DetectFn& detect, bool verbose = false);

}  // namespace hltg
