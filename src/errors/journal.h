// Campaign checkpoint journal: an append-only JSONL file, one record per
// completed error attempt, fsync'd every N rows (and on close). An
// interrupted campaign restarted with resume enabled replays the journaled
// rows (skipping their generator runs) and reproduces the identical
// CampaignStats an uninterrupted run would have produced; a crash loses at
// most the rows of the current fsync batch, and the loader drops any torn
// trailing row.
//
// Format:
//   line 1  header  {"kind":"hltg-campaign","version":1,"total":N,
//                    "fingerprint":"<hex64>"}
//                   plus, when the campaign stamps them (nonzero),
//                   "design":"<hex64>","solver":"<hex64>" - the
//                   tg_design_hash / tg_config_hash of the run. A resume
//                   whose stamps conflict with the journal's is REFUSED
//                   (JournalSession::refused): replaying rows searched
//                   against a different design or solver configuration
//                   would silently corrupt the campaign statistics.
//   line 2+ rows    {"index":I,"generated":b,"sim_confirmed":b,
//                    "test_length":N,"backtracks":N,"decisions":N,
//                    "seconds":F,"abort":"<reason>","via_fallback":b,
//                    "note":"...","test":"<testcase_io text>"}
// Self-checking campaigns append optional triage fields per row (omitted
// when at their defaults, so unverified journals keep the old layout):
// "verify":"confirmed|claim_mismatch|oracle_error", "recovered":b,
// "bad_witness":"<testcase_io text>", "minimized":"<testcase_io text>".
// The fingerprint hashes the error population (model + description per
// error), so a journal is only replayed against the same campaign. A torn
// final row (crash mid-write) is detected and dropped on load.
#pragma once

#include <cstdio>
#include <map>
#include <string>

#include "errors/campaign.h"

namespace hltg {

/// FNV-1a over the error population; guards resume against a different
/// campaign's journal.
std::uint64_t campaign_fingerprint(const Netlist& nl,
                                   const std::vector<DesignError>& errors);

/// `design_hash` / `solver_hash` are emitted only when nonzero, keeping
/// unstamped headers byte-identical to the pre-stamp format.
std::string journal_header_line(std::size_t total, std::uint64_t fingerprint,
                                std::uint64_t design_hash = 0,
                                std::uint64_t solver_hash = 0);
std::string journal_row_line(std::size_t index, const ErrorAttempt& a);

struct JournalReplay {
  bool header_ok = false;
  std::size_t total = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t design_hash = 0;  ///< 0: header predates the stamps
  std::uint64_t solver_hash = 0;
  std::map<std::size_t, ErrorAttempt> rows;
  std::string note;  ///< diagnostics (missing file, torn rows dropped, ...)
  /// The journal file could not be opened, or existed but carried no data
  /// (the CLI's writability probe pre-creates an empty file). Strict
  /// resume turns this into a refusal instead of a silent fresh start.
  bool file_missing = false;
};

/// Load and decode a journal; malformed trailing rows are dropped with a
/// note, never an abort.
JournalReplay load_journal(const std::string& path);

/// Append-only writer. Every append is flushed to the OS; fsync runs every
/// `fsync_interval` rows and on close/sync(), so journaling stops
/// dominating short campaigns while a crash still loses at most the
/// current batch. Interval 1 restores fsync-per-row; 0 defers durability
/// entirely to close()/sync().
class CampaignJournal {
 public:
  CampaignJournal() = default;
  ~CampaignJournal() { close(); }
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  bool open(const std::string& path, bool append, std::string* error);
  bool append_line(const std::string& line);
  bool is_open() const { return f_ != nullptr; }
  /// Force the pending batch to disk (close does this too; exposed for
  /// cancellation paths that keep the journal open).
  void sync();
  void close();

  void set_fsync_interval(unsigned n) { fsync_interval_ = n; }
  unsigned fsync_interval() const { return fsync_interval_; }

  /// Diagnostic from a write/fsync failure that disabled the journal
  /// mid-campaign (I/O errors degrade to an unjournaled campaign; the
  /// append goes through the failpoint hooks "journal.write" /
  /// "journal.fsync"). Empty while healthy.
  const std::string& error() const { return error_; }

 private:
  /// An append or fsync failed: stop journaling. The file is closed
  /// WITHOUT another sync attempt, so whatever prefix reached the OS
  /// stays; the loader's torn-row handling covers any partial final row.
  void disable(const std::string& why);

  std::FILE* f_ = nullptr;
  unsigned fsync_interval_ = 32;
  unsigned rows_since_sync_ = 0;
  std::string error_;
};

/// One campaign's journal lifecycle, shared by the serial, dropping and
/// parallel engines: load the replay map when resuming (fingerprint-checked
/// against this campaign's error population), then (re)open the writer -
/// appending to a matching journal, starting fresh (with a new header)
/// otherwise. A bad path degrades to an unjournaled campaign; the
/// diagnostics land in `note`. Non-copyable (owns the open file).
struct JournalSession {
  CampaignJournal writer;
  std::map<std::size_t, ErrorAttempt> replay;
  std::string note;
  /// The resume target carries provenance stamps that CONFLICT with this
  /// campaign's (different design or solver configuration). The writer is
  /// not opened; the campaign engines return without attempting anything.
  /// A plain fingerprint mismatch (different error population) keeps the
  /// old degrade-to-fresh behavior - only stamped conflicts refuse, unless
  /// `strict` is set, in which case ANY resume that cannot replay the
  /// journal (missing file, unreadable header, foreign campaign) refuses
  /// too instead of silently starting fresh.
  bool refused = false;
  std::size_t resumed() const { return replay.size(); }

  void open(const Netlist& nl, const std::vector<DesignError>& errors,
            const std::string& path, bool resume, unsigned fsync_interval = 32,
            std::uint64_t design_hash = 0, std::uint64_t solver_hash = 0,
            bool strict = false);
};

}  // namespace hltg
