// Campaign report writers: CSV (machine-readable) and Markdown summaries of
// per-error outcomes, for downstream triage tooling.
#pragma once

#include <string>

#include "errors/campaign.h"

namespace hltg {

/// One row per error: model, description, outcome, test length, backtracks,
/// decisions, seconds.
std::string campaign_csv(const Netlist& nl, const CampaignResult& res);

/// Markdown: the Table-1 block plus a per-error outcome table.
std::string campaign_markdown(const Netlist& nl, const CampaignResult& res,
                              const std::string& title);

}  // namespace hltg
