// Module substitution errors (MSE) - extension error model from [28].
//
// The implementation uses a module of the wrong kind (e.g. a subtractor
// where the specification demands an adder). We substitute within a module's
// class so port shapes stay legal.
#pragma once

#include <string>
#include <vector>

#include "dlx/dlx.h"
#include "sim/proc_sim.h"

namespace hltg {

struct ModuleSubstitutionError {
  ModId module = kNoMod;
  ModuleKind wrong_kind = ModuleKind::kAdd;

  ErrorInjection injection() const {
    ErrorInjection inj;
    inj.substitute[module] = wrong_kind;
    return inj;
  }
  std::string describe(const Netlist& nl) const;
};

/// Legal substitutions for a kind (same arity / output width discipline).
std::vector<ModuleKind> substitution_candidates(ModuleKind k);

/// Enumerate one substitution per candidate kind for every eligible module
/// in the given stages.
std::vector<ModuleSubstitutionError> enumerate_mse(
    const Netlist& nl, const std::vector<Stage>& stages);

}  // namespace hltg
