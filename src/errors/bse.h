// Bus source errors (BSE) - extension error model from [28]: a module input
// is connected to the wrong source bus (a classic wiring / netlist editing
// mistake). The wrong source must have the same width; enumeration pairs
// each data input with a few same-width buses from the same pipeline stage
// to keep the instance count linear.
#pragma once

#include <string>
#include <vector>

#include "dlx/dlx.h"
#include "sim/proc_sim.h"

namespace hltg {

struct BusSourceError {
  ModId module = kNoMod;
  unsigned input = 0;      ///< data-input slot
  NetId wrong_source = kNoNet;

  ErrorInjection injection() const {
    ErrorInjection inj;
    inj.rewire[{module, input}] = wrong_source;
    return inj;
  }
  std::string describe(const Netlist& nl) const;
};

struct BseConfig {
  std::vector<Stage> stages = {Stage::kEX, Stage::kMEM, Stage::kWB};
  unsigned wrong_sources_per_input = 1;
};

std::vector<BusSourceError> enumerate_bse(const Netlist& nl,
                                          const BseConfig& cfg = {});

}  // namespace hltg
