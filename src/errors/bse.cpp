#include "errors/bse.h"

#include <algorithm>

namespace hltg {

std::string BusSourceError::describe(const Netlist& nl) const {
  const Module& m = nl.module(module);
  return m.name + ".in" + std::to_string(input) + ": '" +
         nl.net(m.data_in[input]).name + "' replaced by '" +
         nl.net(wrong_source).name + "' (" +
         std::string(to_string(m.stage)) + ")";
}

std::vector<BusSourceError> enumerate_bse(const Netlist& nl,
                                          const BseConfig& cfg) {
  // Candidate wrong sources per (stage, width): non-constant, non-CTRL
  // buses of that stage.
  std::vector<BusSourceError> out;
  auto candidates = [&](Stage st, unsigned width, NetId exclude) {
    std::vector<NetId> c;
    for (NetId n = 0; n < nl.num_nets(); ++n) {
      const Net& net = nl.net(n);
      if (net.stage != st || net.width != width || n == exclude) continue;
      if (net.role == NetRole::kCtrl) continue;
      if (net.driver != kNoMod &&
          nl.module(net.driver).kind == ModuleKind::kConst)
        continue;
      c.push_back(n);
    }
    return c;
  };
  for (ModId mi = 0; mi < nl.num_modules(); ++mi) {
    const Module& m = nl.module(mi);
    if (std::find(cfg.stages.begin(), cfg.stages.end(), m.stage) ==
        cfg.stages.end())
      continue;
    if (is_stateful(m.kind) || m.kind == ModuleKind::kOutput) continue;
    for (unsigned i = 0; i < m.data_in.size(); ++i) {
      const NetId real = m.data_in[i];
      const auto cands =
          candidates(m.stage, nl.net(real).width, real);
      for (unsigned k = 0; k < cfg.wrong_sources_per_input && k < cands.size();
           ++k)
        out.push_back({mi, i, cands[k]});
    }
  }
  return out;
}

}  // namespace hltg
