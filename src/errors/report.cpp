#include "errors/report.h"

#include <sstream>

namespace hltg {

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string campaign_csv(const Netlist& nl, const CampaignResult& res) {
  // The probe columns appear only when some attempt actually probed
  // (--probe on), so default campaigns keep the exact pre-probe schema -
  // the same conditional-emission contract as the journal rows.
  bool probed = false;
  for (const CampaignRow& row : res.rows)
    probed = probed || row.attempt.probe_ns != 0 ||
             row.attempt.probe_batches != 0 || row.attempt.probe_lanes != 0 ||
             row.attempt.probe_prunes != 0;
  std::ostringstream os;
  os << "model,error,outcome,abort,verify,test_length,backtracks,decisions,"
        "seconds,dptrace_ns,ctrljust_ns,dprelax_ns";
  if (probed) os << ",probe_ns,probe_batches,probe_lanes,probe_prunes";
  os << '\n';
  for (const CampaignRow& row : res.rows) {
    const ErrorAttempt& a = row.attempt;
    os << row.error.model_name() << ','
       << csv_escape(row.error.describe(nl)) << ','
       << to_string(a.outcome()) << ',' << to_string(a.abort) << ','
       << to_string(a.verify) << ',' << a.test_length << ',' << a.backtracks
       << ',' << a.decisions << ',' << a.seconds << ',' << a.dptrace_ns << ','
       << a.ctrljust_ns << ',' << a.dprelax_ns;
    if (probed)
      os << ',' << a.probe_ns << ',' << a.probe_batches << ',' << a.probe_lanes
         << ',' << a.probe_prunes;
    os << '\n';
  }
  return os.str();
}

std::string campaign_markdown(const Netlist& nl, const CampaignResult& res,
                              const std::string& title) {
  std::ostringstream os;
  os << "# " << title << "\n\n";
  os << "| metric | value |\n|---|---|\n";
  os << "| errors | " << res.stats.total << " |\n";
  os << "| detected | " << res.stats.detected << " |\n";
  os << "| aborted | " << res.stats.aborted << " |\n";
  if (res.stats.claim_mismatch > 0)
    os << "| claim mismatches (quarantined) | " << res.stats.claim_mismatch
       << " |\n";
  os << "| avg test length | " << res.stats.avg_test_length << " |\n";
  os << "| backtracks (detected) | " << res.stats.backtracks << " |\n";
  os << "| CPU seconds | " << res.stats.cpu_seconds << " |\n\n";
  os << "| error | outcome | len | backtracks |\n|---|---|---|---|\n";
  for (const CampaignRow& row : res.rows) {
    const ErrorAttempt& a = row.attempt;
    os << "| " << row.error.describe(nl) << " | " << to_string(a.outcome())
       << " | " << a.test_length << " | " << a.backtracks << " |\n";
  }
  return os.str();
}

}  // namespace hltg
