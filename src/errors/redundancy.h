// Redundant (provably undetectable) bus-SSL error identification.
//
// A stuck-at-v error on a line that can only ever carry v is undetectable -
// the classic redundancy notion of ATPG carried over to design errors. We
// prove lines constant with a conservative forward constant-bit dataflow
// over the datapath (zero-extension upper bits, constant operands through
// word gates, registers whose feed always matches their reset value, ...).
// The Table-1 bench reports these separately from genuine aborts, answering
// the paper's open question about its 46 aborted errors for our model.
#pragma once

#include <cstdint>
#include <vector>

#include "errors/bus_ssl.h"
#include "netlist/netlist.h"

namespace hltg {

struct BitConstants {
  /// known[n] bit b set => that line's value is provably constant.
  std::vector<std::uint64_t> known;
  /// value[n] gives the constant value on known bits.
  std::vector<std::uint64_t> value;

  bool is_known(NetId n, unsigned bit) const {
    return (known[n] >> bit) & 1;
  }
  bool known_value(NetId n, unsigned bit) const {
    return (value[n] >> bit) & 1;
  }
};

/// Conservative constant-bit analysis (fixpoint over the sequential
/// netlist; CTRL nets and state reads are unknown).
BitConstants analyze_bit_constants(const Netlist& nl);

/// Per-net observable-bit masks: bit b of net n is set iff a change on that
/// line could possibly reach an observation point (DPO, memory port,
/// register-file port, or a status signal feeding the controller). This is
/// the bit-level counterpart of the O-state pre-pass: an optimistic
/// *backward* dataflow, so a clear bit is a *proof* of unobservability
/// (e.g. the upper bits of the load-extraction shifter, which only ever
/// feed byte/halfword slices).
struct ObservableBits {
  std::vector<std::uint64_t> mask;
  bool is_observable(NetId n, unsigned bit) const {
    return (mask[n] >> bit) & 1;
  }
};

ObservableBits analyze_observable_bits(const Netlist& nl);

/// True iff the error is provably undetectable: the line is constant at the
/// stuck value, or no value change on the line can reach an observation
/// point.
bool is_redundant(const BitConstants& bc, const BusSslError& e);
bool is_redundant(const BitConstants& bc, const ObservableBits& ob,
                  const BusSslError& e);

/// Partition an error list: returns the redundant subset (both proofs).
std::vector<BusSslError> redundant_subset(const Netlist& nl,
                                          const std::vector<BusSslError>& v);

}  // namespace hltg
