#include "errors/journal.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "isa/testcase_io.h"
#include "util/failpoint.h"
#include "util/minijson.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace hltg {

namespace {

std::string fmt_seconds(double s) {
  // 17 significant digits round-trip any double exactly, which the
  // resume-equality guarantee depends on.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", s);
  return buf;
}

}  // namespace

std::uint64_t campaign_fingerprint(const Netlist& nl,
                                   const std::vector<DesignError>& errors) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ull;
    }
    h ^= 0xFF;
    h *= 0x100000001b3ull;
  };
  mix(std::to_string(errors.size()));
  for (const DesignError& e : errors) {
    mix(e.model_name());
    mix(e.describe(nl));
  }
  return h;
}

std::string journal_header_line(std::size_t total, std::uint64_t fingerprint,
                                std::uint64_t design_hash,
                                std::uint64_t solver_hash) {
  char fp[32];
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(fingerprint));
  std::ostringstream os;
  os << "{\"kind\":\"hltg-campaign\",\"version\":1,\"total\":" << total
     << ",\"fingerprint\":\"" << fp << "\"";
  // Provenance stamps are emitted only when the campaign supplies them, so
  // unstamped headers keep the pre-stamp byte layout.
  if (design_hash) {
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(design_hash));
    os << ",\"design\":\"" << fp << "\"";
  }
  if (solver_hash) {
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(solver_hash));
    os << ",\"solver\":\"" << fp << "\"";
  }
  os << "}";
  return os.str();
}

std::string journal_row_line(std::size_t index, const ErrorAttempt& a) {
  std::ostringstream os;
  os << "{\"index\":" << index
     << ",\"generated\":" << (a.generated ? "true" : "false")
     << ",\"sim_confirmed\":" << (a.sim_confirmed ? "true" : "false")
     << ",\"test_length\":" << a.test_length
     << ",\"backtracks\":" << a.backtracks << ",\"decisions\":" << a.decisions
     << ",\"implications\":" << a.implications << ",\"learned\":" << a.learned
     << ",\"nogood_hits\":" << a.nogood_hits
     << ",\"cache_hits\":" << a.cache_hits;
  // Phase timings are emitted only when present, so journals from
  // uninstrumented strategies keep their old byte layout.
  if (a.dptrace_ns || a.ctrljust_ns || a.dprelax_ns)
    os << ",\"dptrace_ns\":" << a.dptrace_ns
       << ",\"ctrljust_ns\":" << a.ctrljust_ns
       << ",\"dprelax_ns\":" << a.dprelax_ns;
  // Probe fields follow the same discipline: absent unless probing ran, so
  // default-config journals are byte-identical to pre-probe releases and
  // old journals replay with zero defaults.
  if (a.probe_batches || a.probe_lanes || a.probe_prunes || a.probe_ns)
    os << ",\"probe_ns\":" << a.probe_ns
       << ",\"probe_batches\":" << a.probe_batches
       << ",\"probe_lanes\":" << a.probe_lanes
       << ",\"probe_prunes\":" << a.probe_prunes;
  os << ",\"seconds\":" << fmt_seconds(a.seconds) << ",\"abort\":\""
     << to_string(a.abort) << "\",\"via_fallback\":"
     << (a.via_fallback ? "true" : "false") << ",\"note\":\""
     << json_escape(a.note) << "\"";
  // Triage fields are emitted only when set, so journals from unverified
  // campaigns keep their pre-triage byte layout (and old journals replay
  // with the kUnchecked default).
  if (a.verify != WitnessVerdict::kUnchecked)
    os << ",\"verify\":\"" << to_string(a.verify) << "\"";
  if (a.recovered) os << ",\"recovered\":true";
  if (a.incident()) {
    os << ",\"bad_witness\":\"" << json_escape(serialize_test(a.incident_test))
       << "\"";
    if (a.minimized)
      os << ",\"minimized\":\"" << json_escape(serialize_test(a.incident_min))
         << "\"";
  }
  if (a.detected())
    os << ",\"test\":\"" << json_escape(serialize_test(a.test)) << "\"";
  os << "}";
  return os.str();
}

JournalReplay load_journal(const std::string& path) {
  JournalReplay out;
  std::ifstream in(path);
  if (!in) {
    out.note = "journal not found: " + path;
    out.file_missing = true;
    return out;
  }
  std::string line;
  std::size_t lineno = 0;
  std::size_t dropped = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    MiniJson j(line);
    if (lineno == 1) {
      std::string kind, fp;
      std::uint64_t total = 0;
      if (!j.ok() || !j.get_string("kind", &kind) ||
          kind != "hltg-campaign" || !j.get_u64("total", &total) ||
          !j.get_string("fingerprint", &fp)) {
        out.note = "journal header unreadable";
        return out;
      }
      out.header_ok = true;
      out.total = static_cast<std::size_t>(total);
      out.fingerprint = std::strtoull(fp.c_str(), nullptr, 16);
      std::string stamp;
      if (j.get_string("design", &stamp))
        out.design_hash = std::strtoull(stamp.c_str(), nullptr, 16);
      if (j.get_string("solver", &stamp))
        out.solver_hash = std::strtoull(stamp.c_str(), nullptr, 16);
      continue;
    }
    std::uint64_t index = 0;
    ErrorAttempt a;
    std::string abort_s, test_s;
    if (!j.ok() || !j.get_u64("index", &index) ||
        !j.get_bool("generated", &a.generated) ||
        !j.get_bool("sim_confirmed", &a.sim_confirmed)) {
      ++dropped;  // torn or foreign row: drop it (and any that follow it)
      break;
    }
    std::uint64_t len = 0;
    j.get_u64("test_length", &len);
    a.test_length = static_cast<unsigned>(len);
    j.get_u64("backtracks", &a.backtracks);
    j.get_u64("decisions", &a.decisions);
    // Solver fields are absent in pre-solver journals; the zero defaults
    // keep those journals replayable.
    j.get_u64("implications", &a.implications);
    j.get_u64("learned", &a.learned);
    j.get_u64("nogood_hits", &a.nogood_hits);
    j.get_u64("cache_hits", &a.cache_hits);
    j.get_u64("dptrace_ns", &a.dptrace_ns);
    j.get_u64("ctrljust_ns", &a.ctrljust_ns);
    j.get_u64("dprelax_ns", &a.dprelax_ns);
    j.get_u64("probe_ns", &a.probe_ns);
    j.get_u64("probe_batches", &a.probe_batches);
    j.get_u64("probe_lanes", &a.probe_lanes);
    j.get_u64("probe_prunes", &a.probe_prunes);
    j.get_double("seconds", &a.seconds);
    if (j.get_string("abort", &abort_s)) a.abort = abort_reason_from(abort_s);
    j.get_bool("via_fallback", &a.via_fallback);
    j.get_string("note", &a.note);
    // Triage fields: absent in pre-triage and unverified journals; the
    // kUnchecked / false defaults keep those replayable.
    std::string verify_s, witness_s;
    if (j.get_string("verify", &verify_s))
      a.verify = witness_verdict_from(verify_s);
    j.get_bool("recovered", &a.recovered);
    if (j.get_string("bad_witness", &witness_s)) {
      TestLoadResult t = parse_test(witness_s);
      if (t.ok()) a.incident_test = std::move(t.test);
    }
    if (j.get_string("minimized", &witness_s)) {
      TestLoadResult t = parse_test(witness_s);
      if (t.ok()) {
        a.incident_min = std::move(t.test);
        a.minimized = true;
      }
    }
    if (j.get_string("test", &test_s)) {
      TestLoadResult t = parse_test(test_s);
      if (t.ok()) a.test = std::move(t.test);
    }
    out.rows[static_cast<std::size_t>(index)] = std::move(a);
  }
  if (!out.header_ok) {
    // The CLI's writability probe creates the journal file before the
    // session opens it, so a checkpoint that was never written shows up
    // here as an existing zero-row file rather than a missing one.
    out.note = "journal " + path + " is empty (no header was ever written)";
    out.file_missing = true;
    return out;
  }
  if (dropped)
    out.note = "dropped a torn trailing journal row (line " +
               std::to_string(lineno) + ")";
  return out;
}

bool CampaignJournal::open(const std::string& path, bool append,
                           std::string* error) {
  close();
  f_ = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (!f_) {
    if (error) *error = "cannot open journal " + path;
    return false;
  }
  rows_since_sync_ = 0;
  return true;
}

bool CampaignJournal::append_line(const std::string& line) {
  if (!f_) return false;
  // One write per row (payload + newline together): an injected short
  // write or crash leaves at most one torn trailing row, which the loader
  // drops.
  const std::string row = line + '\n';
  if (failpoint::checked_fwrite(row.data(), row.size(), f_,
                                "journal.write") != row.size()) {
    disable("journal write failed: " + std::string(std::strerror(errno)));
    return false;
  }
  if (std::fflush(f_) != 0) {
    disable("journal flush failed: " + std::string(std::strerror(errno)));
    return false;
  }
  // Durability in batches: fsync every fsync_interval_ rows (plus on
  // close/sync). A crash mid-batch loses only unsynced rows; the loader
  // drops a torn trailing row, so the synced prefix always replays.
  if (fsync_interval_ > 0 && ++rows_since_sync_ >= fsync_interval_) sync();
  return true;
}

void CampaignJournal::sync() {
  if (!f_) return;
  std::fflush(f_);
#ifndef _WIN32
  if (failpoint::checked_fsync(fileno(f_), "journal.fsync") != 0) {
    disable("journal fsync failed: " + std::string(std::strerror(errno)));
    return;
  }
#endif
  rows_since_sync_ = 0;
}

void CampaignJournal::disable(const std::string& why) {
  if (error_.empty()) error_ = why + " (journaling disabled)";
  if (f_) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

void CampaignJournal::close() {
  if (f_) {
    sync();
    std::fclose(f_);
    f_ = nullptr;
  }
}

void JournalSession::open(const Netlist& nl,
                          const std::vector<DesignError>& errors,
                          const std::string& path, bool resume,
                          unsigned fsync_interval, std::uint64_t design_hash,
                          std::uint64_t solver_hash, bool strict) {
  if (path.empty()) return;
  writer.set_fsync_interval(fsync_interval);
  const std::uint64_t fp = campaign_fingerprint(nl, errors);
  bool append = false;
  if (resume) {
    JournalReplay jr = load_journal(path);
    // Stamped conflicts refuse outright: those rows were produced against
    // a different design or solver configuration, and replaying them would
    // silently corrupt the campaign statistics. Unstamped journals (hash
    // 0, pre-stamp format) cannot be validated and keep the tolerant
    // behavior below.
    if (jr.header_ok && design_hash && jr.design_hash &&
        jr.design_hash != design_hash) {
      refused = true;
      note = "refusing to resume: journal '" + path +
             "' was recorded against a different design (design hash "
             "mismatch); use a fresh --journal path or drop --resume";
      return;
    }
    if (jr.header_ok && solver_hash && jr.solver_hash &&
        jr.solver_hash != solver_hash) {
      refused = true;
      note = "refusing to resume: journal '" + path +
             "' was recorded under a different solver configuration; use a "
             "fresh --journal path or drop --resume";
      return;
    }
    if (jr.header_ok && jr.fingerprint == fp && jr.total == errors.size()) {
      replay = std::move(jr.rows);
      append = true;
      note = jr.note;
    } else if (strict) {
      // Strict resume: anything short of an actually replayable journal is
      // an error, not a silent fresh start. A missing file usually means a
      // typo'd path or a checkpoint that was never written - restarting
      // from scratch would quietly discard the operator's intent.
      refused = true;
      note = "refusing to resume (strict): " +
             (jr.header_ok ? std::string(
                                 "journal '" + path +
                                 "' belongs to a different campaign")
                           : jr.note) +
             "; use --resume to degrade to a fresh start instead";
      return;
    } else if (jr.header_ok) {
      note = "journal belongs to a different campaign; starting fresh";
    } else {
      note = jr.note + "; starting fresh";
    }
  }
  std::string jerr;
  if (!writer.open(path, append, &jerr)) {
    // Journaling is best-effort: a bad path degrades to an unjournaled
    // campaign rather than forfeiting the run.
    if (!note.empty()) note += "; ";
    note += jerr + " (journaling disabled)";
  } else if (!append) {
    writer.append_line(
        journal_header_line(errors.size(), fp, design_hash, solver_hash));
  }
}

}  // namespace hltg
