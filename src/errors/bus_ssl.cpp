#include "errors/bus_ssl.h"

#include <algorithm>

namespace hltg {

std::string BusSslError::describe(const Netlist& nl) const {
  const Net& n = nl.net(net);
  return n.name + "[" + std::to_string(bit) + "] stuck-at-" +
         (stuck_value ? "1" : "0") + " (" + std::string(to_string(n.stage)) +
         ")";
}

std::vector<BusSslError> enumerate_bus_ssl(const Netlist& nl,
                                           const BusSslConfig& cfg) {
  std::vector<BusSslError> out;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const Net& net = nl.net(n);
    if (std::find(cfg.stages.begin(), cfg.stages.end(), net.stage) ==
        cfg.stages.end())
      continue;
    if (cfg.skip_ctrl && net.role == NetRole::kCtrl) continue;
    if (cfg.skip_const && net.driver != kNoMod &&
        nl.module(net.driver).kind == ModuleKind::kConst)
      continue;
    std::vector<unsigned> bits;
    for (unsigned b : cfg.bits) {
      const unsigned clamped = std::min(b, net.width - 1);
      if (std::find(bits.begin(), bits.end(), clamped) == bits.end())
        bits.push_back(clamped);
    }
    for (unsigned b : bits) {
      if (cfg.stuck_at_0) out.push_back({n, b, false});
      if (cfg.stuck_at_1) out.push_back({n, b, true});
    }
  }
  return out;
}

}  // namespace hltg
