#include "errors/parallel_campaign.h"

#include <condition_variable>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "errors/journal.h"
#include "netlist/netlist.h"

namespace hltg {

GenFactory shared_gen(BudgetedGenFn gen) {
  return [gen = std::move(gen)](unsigned) { return gen; };
}

namespace {

const char* outcome_tag(const ErrorAttempt& a) {
  switch (a.outcome()) {
    case AttemptOutcome::kDetectedDeterministic: return "det ";
    case AttemptOutcome::kDetectedFallback: return "fbk ";
    case AttemptOutcome::kAborted: return "abrt";
    case AttemptOutcome::kClaimMismatch: return "mism";
  }
  return "?";
}

enum : unsigned char { kPending = 0, kFresh = 1, kReplayed = 2 };

}  // namespace

CampaignResult run_campaign_parallel(const Netlist& nl,
                                     const std::vector<DesignError>& errors,
                                     const GenFactory& make_gen,
                                     const ParallelCampaignConfig& cfg) {
  const unsigned jobs = cfg.jobs < 1 ? 1 : cfg.jobs;

  CampaignResult res;
  res.stats.total = errors.size();

  JournalSession journal;
  journal.open(nl, errors, cfg.journal_path, cfg.resume,
               cfg.journal_fsync_interval, cfg.design_hash,
               cfg.solver_config_hash, cfg.resume_strict);
  res.journal_note = journal.note;
  if (journal.refused) {
    res.resume_refused = true;
    res.interrupted = true;
    return res;
  }

  std::vector<ErrorAttempt> attempts(errors.size());
  std::vector<unsigned char> state(errors.size(), kPending);
  std::vector<std::size_t> pending;
  pending.reserve(errors.size());
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (const auto it = journal.replay.find(i); it != journal.replay.end()) {
      attempts[i] = it->second;
      state[i] = kReplayed;
    } else {
      pending.push_back(i);
    }
  }

  // Lazy caches (Netlist topo order; the generators' own models) must be
  // materialised before threads share them. The netlist's is ours to warm;
  // callers warm their model (GateNet::warm_caches) before handing out
  // const refs.
  if (!errors.empty()) (void)nl.topo_order();

  // Deterministic sharding: worker w owns the pending positions p with
  // p % jobs == w, walked in ascending order. Unlike work stealing, the
  // error sequence each worker sees is a pure function of (campaign,
  // jobs), which makes per-worker deduction state (campaign-scope
  // SolverContext) reproducible run over run. Aggregation below stays
  // index-ordered, so rows and stats remain jobs-independent as before.
  std::mutex journal_mu;
  std::mutex note_mu;
  // Orphan adoption: when a worker's generator factory fails, its shard
  // must not be lost. Survivors wait until every factory outcome is known,
  // then adopt orphaned shards whole (each by exactly one survivor).
  // Adoption order is racy, but attempts are pure functions of the error,
  // so only reuse counters can vary on this (abnormal) path - never
  // outcomes.
  std::mutex shard_mu;
  std::condition_variable shard_cv;
  unsigned factories_resolved = 0;
  std::vector<unsigned> orphan_shards;

  auto run_shard = [&](unsigned shard, const BudgetedGenFn& gen,
                       const CampaignConfig& wcfg) {
    for (std::size_t p = shard; p < pending.size(); p += jobs) {
      if (cfg.cancel && cfg.cancel->stop_requested()) return;
      const std::size_t i = pending[p];
      ErrorAttempt a = attempt_one_error(errors[i], i, gen, wcfg);
      {
        std::lock_guard<std::mutex> lk(journal_mu);
        if (journal.writer.is_open())
          journal.writer.append_line(journal_row_line(i, a));
      }
      attempts[i] = std::move(a);
      state[i] = kFresh;
    }
  };

  auto worker = [&](unsigned w) {
    CampaignConfig wcfg = cfg;  // slice: per-worker view of the shared knobs
    BudgetedGenFn gen;
    bool available = true;
    try {
      gen = make_gen(w);
      if (cfg.fallback_factory) wcfg.fallback = cfg.fallback_factory(w);
    } catch (const std::exception& e) {
      available = false;
      std::lock_guard<std::mutex> lk(note_mu);
      if (!res.journal_note.empty()) res.journal_note += "; ";
      res.journal_note +=
          "worker " + std::to_string(w) + " unavailable: " + e.what();
    }
    {
      std::lock_guard<std::mutex> lk(shard_mu);
      ++factories_resolved;
      if (!available) orphan_shards.push_back(w);
    }
    shard_cv.notify_all();
    if (!available) return;  // survivors adopt this worker's shard

    run_shard(w, gen, wcfg);

    std::unique_lock<std::mutex> lk(shard_mu);
    shard_cv.wait(lk, [&] { return factories_resolved == jobs; });
    while (!orphan_shards.empty()) {
      const unsigned orphan = orphan_shards.front();
      orphan_shards.erase(orphan_shards.begin());
      lk.unlock();
      run_shard(orphan, gen, wcfg);
      lk.lock();
    }
  };

  if (jobs == 1) {
    worker(0);  // no thread: same engine, zero pool overhead
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned w = 0; w < jobs; ++w) pool.emplace_back(worker, w);
    for (std::thread& t : pool) t.join();
  }

  // Deterministic aggregation: fold attempts in error-index order so stats,
  // row order and verbose output are identical for any jobs value.
  std::uint64_t length_sum = 0;
  std::size_t completed = 0;
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (state[i] == kPending) continue;  // cancelled before being taken
    ++completed;
    if (state[i] == kReplayed) ++res.resumed_rows;
    ErrorAttempt& a = attempts[i];
    // Quarantine bundles are written here, not in the workers: the
    // aggregation loop runs in error-index order, so incident numbering is
    // deterministic for any jobs value. Replayed rows were bundled by the
    // original run.
    if (state[i] == kFresh && a.incident())
      record_incident(&res, cfg, i, errors[i], a);
    res.stats.add_attempt(a, &length_sum);
    if (cfg.verbose)
      std::fprintf(stderr, "  [%s] %s%s\n", outcome_tag(a),
                   errors[i].describe(nl).c_str(),
                   a.note.empty() ? "" : ("  (" + a.note + ")").c_str());
    res.rows.push_back({errors[i], std::move(a)});
  }
  res.interrupted = completed < errors.size();
  if (res.stats.detected > 0)
    res.stats.avg_test_length =
        static_cast<double>(length_sum) / res.stats.detected;
  res.tests_kept = res.stats.detected;
  if (!journal.writer.error().empty()) {
    std::lock_guard<std::mutex> lk(note_mu);
    if (!res.journal_note.empty()) res.journal_note += "; ";
    res.journal_note += journal.writer.error();
  }
  return res;
}

}  // namespace hltg
