#include "errors/campaign.h"

#include <chrono>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <utility>

#include "errors/journal.h"
#include "util/table.h"

namespace hltg {

BudgetedGenFn ignore_budget(TestGenFn gen) {
  return [gen = std::move(gen)](const DesignError& err, Budget&) {
    return gen(err);
  };
}

std::string CampaignStats::table1(const std::string& title) const {
  TextTable t({title, "value"});
  t.add_kv("No. of errors", std::to_string(total));
  t.add_kv("No. of errors detected", std::to_string(detected));
  if (detected_fallback > 0) {
    t.add_kv("  detected by deterministic TG",
             std::to_string(detected_deterministic));
    t.add_kv("  detected by fallback generator",
             std::to_string(detected_fallback));
  }
  t.add_kv("No. of errors aborted", std::to_string(aborted));
  auto abort_row = [&](const char* label, std::size_t n) {
    if (n > 0) t.add_kv(label, std::to_string(n));
  };
  abort_row("  aborted: deadline", aborted_deadline);
  abort_row("  aborted: backtrack limit", aborted_backtracks);
  abort_row("  aborted: decision limit", aborted_decisions);
  abort_row("  aborted: cancelled", aborted_cancelled);
  abort_row("  aborted: exception", aborted_exception);
  if (attempted < total)
    t.add_kv("No. of errors not attempted (interrupted)",
             std::to_string(total - attempted));
  t.add_kv("Average test sequence length", fmt_double(avg_test_length, 1));
  t.add_kv("No. of backtracks (detected errors only)",
           std::to_string(backtracks));
  t.add_kv("CPU time [minutes]", fmt_double(cpu_seconds / 60.0, 2));
  return t.to_string();
}

namespace {

void accumulate(CampaignStats* s, const ErrorAttempt& a,
                std::uint64_t* length_sum) {
  ++s->attempted;
  if (a.detected()) {
    ++s->detected;
    if (a.via_fallback)
      ++s->detected_fallback;
    else
      ++s->detected_deterministic;
    *length_sum += a.test_length;
    s->backtracks += a.backtracks;
    s->decisions += a.decisions;
    if (s->length_histogram.size() <= a.test_length)
      s->length_histogram.resize(a.test_length + 1, 0);
    ++s->length_histogram[a.test_length];
  } else {
    ++s->aborted;
    switch (a.abort) {
      case AbortReason::kDeadline: ++s->aborted_deadline; break;
      case AbortReason::kBacktracks: ++s->aborted_backtracks; break;
      case AbortReason::kDecisions: ++s->aborted_decisions; break;
      case AbortReason::kCancelled: ++s->aborted_cancelled; break;
      case AbortReason::kException: ++s->aborted_exception; break;
      case AbortReason::kNone: break;
    }
  }
  s->cpu_seconds += a.seconds;
}

void append_note(std::string* dst, const std::string& more) {
  if (more.empty()) return;
  if (!dst->empty()) *dst += "; ";
  *dst += more;
}

/// One error through the resilient pipeline: fault hook, primary generator
/// under its budget, exception capture, graceful degradation.
ErrorAttempt attempt_one(const DesignError& err, std::size_t index,
                         const BudgetedGenFn& gen, const CampaignConfig& cfg) {
  const CampaignFault* fault = nullptr;
  if (cfg.faults) {
    const auto it = cfg.faults->find(index);
    if (it != cfg.faults->end()) fault = &it->second;
  }

  ErrorAttempt a;
  try {
    if (fault && fault->kind == CampaignFault::Kind::kThrow) {
      throw std::runtime_error("fault-injected generator failure");
    } else if (fault && fault->kind == CampaignFault::Kind::kBudgetExhaust) {
      a.abort = fault->abort;
      a.note = "fault: forced budget exhaustion";
    } else if (fault && fault->kind == CampaignFault::Kind::kForceAttempt) {
      a = fault->attempt;
    } else {
      Budget budget = cfg.budget.arm();
      a = gen(err, budget);
    }
  } catch (const std::exception& e) {
    a = ErrorAttempt{};
    a.abort = AbortReason::kException;
    a.note = std::string("generator threw: ") + e.what();
  } catch (...) {
    a = ErrorAttempt{};
    a.abort = AbortReason::kException;
    a.note = "generator threw a non-std exception";
  }

  const bool degradable =
      !a.detected() && a.abort != AbortReason::kCancelled &&
      (cfg.fallback || (fault && fault->force_fallback));
  if (!degradable) return a;

  ErrorAttempt fb;
  try {
    if (fault && fault->force_fallback) {
      fb = fault->fallback_attempt;
    } else {
      Budget budget = cfg.fallback_budget.arm();
      fb = cfg.fallback(err, budget);
    }
  } catch (const std::exception& e) {
    fb = ErrorAttempt{};
    fb.abort = AbortReason::kException;
    fb.note = std::string("threw: ") + e.what();
  } catch (...) {
    fb = ErrorAttempt{};
    fb.abort = AbortReason::kException;
    fb.note = "threw a non-std exception";
  }
  if (!fb.detected()) {
    // Keep the primary attempt's record (its abort reason explains the
    // Table-1 outcome); charge the fallback's time and note its failure.
    a.seconds += fb.seconds;
    append_note(&a.note,
                "fallback failed" + (fb.note.empty() ? "" : ": " + fb.note));
    return a;
  }
  fb.via_fallback = true;
  // Carry the primary attempt's effort so Table-1 cost stays honest.
  fb.seconds += a.seconds;
  fb.backtracks += a.backtracks;
  fb.decisions += a.decisions;
  std::string note = a.note;
  append_note(&note, fb.note.empty() ? "detected by fallback" : fb.note);
  fb.note = std::move(note);
  return fb;
}

const char* outcome_tag(const ErrorAttempt& a) {
  switch (a.outcome()) {
    case AttemptOutcome::kDetectedDeterministic: return "det ";
    case AttemptOutcome::kDetectedFallback: return "fbk ";
    case AttemptOutcome::kAborted: return "abrt";
  }
  return "?";
}

}  // namespace

CampaignResult run_campaign(const Netlist& nl,
                            const std::vector<DesignError>& errors,
                            const BudgetedGenFn& gen,
                            const CampaignConfig& cfg) {
  CampaignResult res;
  res.stats.total = errors.size();
  std::uint64_t length_sum = 0;

  // Journal: load a replay map when resuming, then (re)open for writing.
  const std::uint64_t fp =
      cfg.journal_path.empty() ? 0 : campaign_fingerprint(nl, errors);
  std::map<std::size_t, ErrorAttempt> replay;
  bool append = false;
  if (!cfg.journal_path.empty() && cfg.resume) {
    JournalReplay jr = load_journal(cfg.journal_path);
    if (jr.header_ok && jr.fingerprint == fp && jr.total == errors.size()) {
      replay = std::move(jr.rows);
      append = true;
      res.journal_note = jr.note;
    } else if (jr.header_ok) {
      res.journal_note =
          "journal belongs to a different campaign; starting fresh";
    } else {
      res.journal_note = jr.note + "; starting fresh";
    }
  }
  CampaignJournal journal;
  if (!cfg.journal_path.empty()) {
    std::string jerr;
    if (!journal.open(cfg.journal_path, append, &jerr)) {
      // Journaling is best-effort: a bad path degrades to an unjournaled
      // campaign rather than forfeiting the run.
      append_note(&res.journal_note, jerr + " (journaling disabled)");
    } else if (!append) {
      journal.append_line(journal_header_line(errors.size(), fp));
    }
  }

  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (cfg.cancel && cfg.cancel->stop_requested()) {
      res.interrupted = true;
      break;
    }
    const DesignError& err = errors[i];
    ErrorAttempt a;
    if (const auto it = replay.find(i); it != replay.end()) {
      a = it->second;
      ++res.resumed_rows;
    } else {
      a = attempt_one(err, i, gen, cfg);
      if (journal.is_open()) journal.append_line(journal_row_line(i, a));
    }
    accumulate(&res.stats, a, &length_sum);
    if (cfg.verbose)
      std::fprintf(stderr, "  [%s] %s%s\n", outcome_tag(a),
                   err.describe(nl).c_str(),
                   a.note.empty() ? "" : ("  (" + a.note + ")").c_str());
    res.rows.push_back({err, std::move(a)});
  }
  if (res.stats.detected > 0)
    res.stats.avg_test_length =
        static_cast<double>(length_sum) / res.stats.detected;
  res.tests_kept = res.stats.detected;
  return res;
}

CampaignResult run_campaign(const Netlist& nl,
                            const std::vector<DesignError>& errors,
                            const TestGenFn& gen, bool verbose) {
  CampaignConfig cfg;
  cfg.verbose = verbose;
  return run_campaign(nl, errors, ignore_budget(gen), cfg);
}

CampaignResult run_campaign_with_dropping(
    const Netlist& nl, const std::vector<DesignError>& errors,
    const TestGenFn& gen, const DetectFn& detect, bool verbose) {
  CampaignResult res;
  res.stats.total = errors.size();
  std::uint64_t length_sum = 0;
  std::vector<bool> done(errors.size(), false);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (done[i]) continue;
    CampaignRow row{errors[i], gen(errors[i])};
    const ErrorAttempt& a = row.attempt;
    ++res.stats.attempted;
    if (a.detected()) {
      ++res.stats.detected;
      ++res.stats.detected_deterministic;
      ++res.tests_kept;
      length_sum += a.test_length;
      res.stats.backtracks += a.backtracks;
      res.stats.decisions += a.decisions;
      done[i] = true;
      // Error-simulate the new test against every remaining error.
      for (std::size_t j = i + 1; j < errors.size(); ++j) {
        if (done[j]) continue;
        if (detect(a.test, errors[j])) {
          done[j] = true;
          ++res.stats.detected;
          ++res.stats.detected_deterministic;
          ++res.dropped;
          if (verbose)
            std::fprintf(stderr, "  [drop] %s (covered by test for %s)\n",
                         errors[j].describe(nl).c_str(),
                         errors[i].describe(nl).c_str());
        }
      }
    } else {
      ++res.stats.aborted;
    }
    if (verbose)
      std::fprintf(stderr, "  [%s] %s\n", outcome_tag(a),
                   errors[i].describe(nl).c_str());
    res.rows.push_back(std::move(row));
  }
  res.stats.cpu_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (res.tests_kept > 0)
    res.stats.avg_test_length =
        static_cast<double>(length_sum) / res.tests_kept;
  return res;
}

}  // namespace hltg
