#include "errors/campaign.h"

#include <chrono>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <utility>

#include "errors/journal.h"
#include "util/table.h"

namespace hltg {

BudgetedGenFn ignore_budget(TestGenFn gen) {
  return [gen = std::move(gen)](const DesignError& err, Budget&) {
    return gen(err);
  };
}

std::string CampaignStats::table1(const std::string& title) const {
  TextTable t({title, "value"});
  t.add_kv("No. of errors", std::to_string(total));
  t.add_kv("No. of errors detected", std::to_string(detected));
  if (detected_fallback > 0) {
    t.add_kv("  detected by deterministic TG",
             std::to_string(detected_deterministic));
    t.add_kv("  detected by fallback generator",
             std::to_string(detected_fallback));
  }
  t.add_kv("No. of errors aborted", std::to_string(aborted));
  auto abort_row = [&](const char* label, std::size_t n) {
    if (n > 0) t.add_kv(label, std::to_string(n));
  };
  abort_row("  aborted: deadline", aborted_deadline);
  abort_row("  aborted: backtrack limit", aborted_backtracks);
  abort_row("  aborted: decision limit", aborted_decisions);
  abort_row("  aborted: cancelled", aborted_cancelled);
  abort_row("  aborted: exception", aborted_exception);
  // Self-checking buckets render only when an incident actually occurred:
  // a mismatch-free verified campaign prints byte-identically to an
  // unverified one.
  abort_row("No. of claim mismatches (quarantined)", claim_mismatch);
  abort_row("No. of oracle errors", oracle_errors);
  abort_row("No. of mismatches recovered cross-config", verify_recovered);
  abort_row("No. of batch-drop claims refuted", drop_mismatches);
  if (attempted < total)
    t.add_kv("No. of errors not attempted (interrupted)",
             std::to_string(total - attempted));
  t.add_kv("Average test sequence length", fmt_double(avg_test_length, 1));
  t.add_kv("No. of backtracks (detected errors only)",
           std::to_string(backtracks));
  if (learned > 0 || cache_hits > 0 || nogood_hits > 0) {
    t.add_kv("Solver: nogoods learned", std::to_string(learned));
    t.add_kv("Solver: nogood prunes/forcings", std::to_string(nogood_hits));
    t.add_kv("Solver: justification cache hits", std::to_string(cache_hits));
  }
  // Phase attribution renders only for instrumented strategies, so the
  // summary of older journals / custom generators is unchanged.
  if (dptrace_ns > 0 || ctrljust_ns > 0 || dprelax_ns > 0) {
    t.add_kv("Phase time: DPTRACE [ms]", fmt_double(dptrace_ns / 1e6, 1));
    t.add_kv("Phase time: CTRLJUST [ms]", fmt_double(ctrljust_ns / 1e6, 1));
    t.add_kv("Phase time: DPRELAX [ms]", fmt_double(dprelax_ns / 1e6, 1));
  }
  // Probe tallies render only when probing ran (default-off keeps the
  // summary byte-identical to pre-probe releases).
  if (probe_batches > 0 || probe_lanes > 0 || probe_prunes > 0) {
    t.add_kv("Probe: batched window sweeps", std::to_string(probe_batches));
    t.add_kv("Probe: candidate lanes", std::to_string(probe_lanes));
    t.add_kv("Probe: branch points pruned", std::to_string(probe_prunes));
    t.add_kv("Phase time: PROBE [ms]", fmt_double(probe_ns / 1e6, 1));
  }
  t.add_kv("CPU time [minutes]", fmt_double(cpu_seconds / 60.0, 2));
  return t.to_string();
}

void CampaignStats::add_attempt(const ErrorAttempt& a,
                                std::uint64_t* length_sum) {
  ++attempted;
  if (a.verify == WitnessVerdict::kConfirmed) ++verify_confirmed;
  if (a.verify == WitnessVerdict::kOracleError) ++oracle_errors;
  if (a.recovered) ++verify_recovered;
  if (a.outcome() == AttemptOutcome::kClaimMismatch) {
    ++claim_mismatch;
    implications += a.implications;
    learned += a.learned;
    nogood_hits += a.nogood_hits;
    cache_hits += a.cache_hits;
    dptrace_ns += a.dptrace_ns;
    ctrljust_ns += a.ctrljust_ns;
    dprelax_ns += a.dprelax_ns;
    probe_ns += a.probe_ns;
    probe_batches += a.probe_batches;
    probe_lanes += a.probe_lanes;
    probe_prunes += a.probe_prunes;
    cpu_seconds += a.seconds;
    return;
  }
  if (a.detected()) {
    ++detected;
    if (a.via_fallback)
      ++detected_fallback;
    else
      ++detected_deterministic;
    *length_sum += a.test_length;
    backtracks += a.backtracks;
    decisions += a.decisions;
    if (length_histogram.size() <= a.test_length)
      length_histogram.resize(a.test_length + 1, 0);
    ++length_histogram[a.test_length];
  } else {
    ++aborted;
    switch (a.abort) {
      case AbortReason::kDeadline: ++aborted_deadline; break;
      case AbortReason::kBacktracks: ++aborted_backtracks; break;
      case AbortReason::kDecisions: ++aborted_decisions; break;
      case AbortReason::kCancelled: ++aborted_cancelled; break;
      case AbortReason::kException: ++aborted_exception; break;
      case AbortReason::kNone: break;
    }
  }
  implications += a.implications;
  learned += a.learned;
  nogood_hits += a.nogood_hits;
  cache_hits += a.cache_hits;
  dptrace_ns += a.dptrace_ns;
  ctrljust_ns += a.ctrljust_ns;
  dprelax_ns += a.dprelax_ns;
  probe_ns += a.probe_ns;
  probe_batches += a.probe_batches;
  probe_lanes += a.probe_lanes;
  probe_prunes += a.probe_prunes;
  cpu_seconds += a.seconds;
}

namespace {

void append_note(std::string* dst, const std::string& more) {
  if (more.empty()) return;
  if (!dst->empty()) *dst += "; ";
  *dst += more;
}

const char* outcome_tag(const ErrorAttempt& a) {
  switch (a.outcome()) {
    case AttemptOutcome::kDetectedDeterministic: return "det ";
    case AttemptOutcome::kDetectedFallback: return "fbk ";
    case AttemptOutcome::kAborted: return "abrt";
    case AttemptOutcome::kClaimMismatch: return "mism";
  }
  return "?";
}

/// Self-checking cross-check (docs/ROBUSTNESS.md): re-validate a detection
/// claim through the independent oracle, minimize a refuted witness, and
/// retry once cross-config before the row is demoted to claim_mismatch.
void apply_triage(const DesignError& err, ErrorAttempt* a,
                  const CampaignConfig& cfg) {
  const TriageConfig& tri = cfg.triage;
  if (!tri.verify || !tri.oracle || !a->detected()) return;

  bool oracle_agrees = false;
  try {
    oracle_agrees = tri.oracle(a->test, err);
  } catch (const std::exception& e) {
    a->verify = WitnessVerdict::kOracleError;
    append_note(&a->note, std::string("oracle threw: ") + e.what());
    return;
  } catch (...) {
    a->verify = WitnessVerdict::kOracleError;
    append_note(&a->note, "oracle threw a non-std exception");
    return;
  }
  if (oracle_agrees) {
    a->verify = WitnessVerdict::kConfirmed;
    return;
  }

  // Claim mismatch: the witness is preserved for the quarantine bundle.
  a->verify = WitnessVerdict::kClaimMismatch;
  a->incident_test = a->test;
  append_note(&a->note,
              "claim mismatch: independent oracle found no divergence");
  if (tri.minimize && tri.minimizer) {
    std::string mnote;
    a->incident_min =
        tri.minimizer(a->incident_test, err, /*expect_detected=*/false,
                      &mnote);
    a->minimized = true;
    append_note(&a->note, mnote);
  }

  // Retry once with the cross-config generator; only an oracle-confirmed
  // re-detection vindicates the row.
  if (!tri.cross_gen) return;
  ErrorAttempt re;
  try {
    Budget budget = cfg.budget.arm();
    re = tri.cross_gen(err, budget);
  } catch (...) {
    append_note(&a->note, "cross-config retry threw");
    return;
  }
  bool re_ok = false;
  if (re.generated && re.sim_confirmed) {
    try {
      re_ok = tri.oracle(re.test, err);
    } catch (...) {
      re_ok = false;
    }
  }
  if (!re_ok) {
    a->seconds += re.seconds;
    append_note(&a->note, "cross-config retry did not confirm");
    return;
  }
  // Vindicated: adopt the cross-config witness but keep the incident
  // payload (bogus witness + minimized form) and charge both efforts.
  re.verify = WitnessVerdict::kConfirmed;
  re.recovered = true;
  re.minimized = a->minimized;
  re.incident_test = std::move(a->incident_test);
  re.incident_min = std::move(a->incident_min);
  re.seconds += a->seconds;
  re.backtracks += a->backtracks;
  re.decisions += a->decisions;
  re.implications += a->implications;
  re.learned += a->learned;
  re.nogood_hits += a->nogood_hits;
  re.cache_hits += a->cache_hits;
  std::string note = a->note;
  append_note(&note, re.note.empty() ? "recovered by cross-config retry"
                                     : re.note);
  re.note = std::move(note);
  *a = std::move(re);
}

}  // namespace

ErrorAttempt attempt_one_error(const DesignError& err, std::size_t index,
                               const BudgetedGenFn& gen,
                               const CampaignConfig& cfg) {
  const CampaignFault* fault = nullptr;
  if (cfg.faults) {
    const auto it = cfg.faults->find(index);
    if (it != cfg.faults->end()) fault = &it->second;
  }

  ErrorAttempt a;
  try {
    if (fault && fault->kind == CampaignFault::Kind::kThrow) {
      throw std::runtime_error("fault-injected generator failure");
    } else if (fault && fault->kind == CampaignFault::Kind::kBudgetExhaust) {
      a.abort = fault->abort;
      a.note = "fault: forced budget exhaustion";
    } else if (fault && fault->kind == CampaignFault::Kind::kForceAttempt) {
      a = fault->attempt;
    } else {
      Budget budget = cfg.budget.arm();
      a = gen(err, budget);
    }
  } catch (const std::exception& e) {
    a = ErrorAttempt{};
    a.abort = AbortReason::kException;
    a.note = std::string("generator threw: ") + e.what();
  } catch (...) {
    a = ErrorAttempt{};
    a.abort = AbortReason::kException;
    a.note = "generator threw a non-std exception";
  }

  const bool degradable =
      !a.detected() && a.abort != AbortReason::kCancelled &&
      (cfg.fallback || (fault && fault->force_fallback));
  if (!degradable) {
    apply_triage(err, &a, cfg);
    return a;
  }

  ErrorAttempt fb;
  try {
    if (fault && fault->force_fallback) {
      fb = fault->fallback_attempt;
    } else {
      // The fallback runs under its own budget recipe, but cancellation
      // must reach it even when the caller only wired the token into the
      // primary budget: a Ctrl-C during a fallback sweep aborts promptly.
      BudgetSpec fspec = cfg.fallback_budget;
      if (!fspec.cancel) fspec.cancel = cfg.budget.cancel;
      Budget budget = fspec.arm();
      fb = cfg.fallback(err, budget);
    }
  } catch (const std::exception& e) {
    fb = ErrorAttempt{};
    fb.abort = AbortReason::kException;
    fb.note = std::string("threw: ") + e.what();
  } catch (...) {
    fb = ErrorAttempt{};
    fb.abort = AbortReason::kException;
    fb.note = "threw a non-std exception";
  }
  if (!fb.detected()) {
    // Keep the primary attempt's record (its abort reason explains the
    // Table-1 outcome); charge the fallback's time and note its failure.
    a.seconds += fb.seconds;
    append_note(&a.note,
                "fallback failed" + (fb.note.empty() ? "" : ": " + fb.note));
    apply_triage(err, &a, cfg);
    return a;
  }
  fb.via_fallback = true;
  // Carry the primary attempt's effort so Table-1 cost stays honest.
  fb.seconds += a.seconds;
  fb.backtracks += a.backtracks;
  fb.decisions += a.decisions;
  fb.implications += a.implications;
  fb.learned += a.learned;
  fb.nogood_hits += a.nogood_hits;
  fb.cache_hits += a.cache_hits;
  std::string note = a.note;
  append_note(&note, fb.note.empty() ? "detected by fallback" : fb.note);
  fb.note = std::move(note);
  apply_triage(err, &fb, cfg);
  return fb;
}

void record_incident(CampaignResult* res, const CampaignConfig& cfg,
                     std::size_t index, const DesignError& err,
                     const ErrorAttempt& a) {
  if (cfg.triage.bundle) {
    const std::string note = cfg.triage.bundle(res->incidents, index, err, a);
    if (!note.empty()) res->incident_notes.push_back(note);
  }
  ++res->incidents;
}

CampaignResult run_campaign(const Netlist& nl,
                            const std::vector<DesignError>& errors,
                            const BudgetedGenFn& gen,
                            const CampaignConfig& cfg) {
  CampaignResult res;
  res.stats.total = errors.size();
  std::uint64_t length_sum = 0;

  JournalSession journal;
  journal.open(nl, errors, cfg.journal_path, cfg.resume,
               cfg.journal_fsync_interval, cfg.design_hash,
               cfg.solver_config_hash, cfg.resume_strict);
  res.journal_note = journal.note;
  if (journal.refused) {
    res.resume_refused = true;
    res.interrupted = true;
    return res;
  }

  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (cfg.cancel && cfg.cancel->stop_requested()) {
      res.interrupted = true;
      break;
    }
    const DesignError& err = errors[i];
    ErrorAttempt a;
    if (const auto it = journal.replay.find(i); it != journal.replay.end()) {
      a = it->second;
      ++res.resumed_rows;
    } else {
      a = attempt_one_error(err, i, gen, cfg);
      if (journal.writer.is_open())
        journal.writer.append_line(journal_row_line(i, a));
      if (a.incident()) record_incident(&res, cfg, i, err, a);
    }
    res.stats.add_attempt(a, &length_sum);
    if (cfg.verbose) {
      std::fprintf(stderr, "  [%s] %s%s", outcome_tag(a),
                   err.describe(nl).c_str(),
                   a.note.empty() ? "" : ("  (" + a.note + ")").c_str());
      if (a.dptrace_ns || a.ctrljust_ns || a.dprelax_ns)
        std::fprintf(stderr, "  [trace %.2fms just %.2fms relax %.2fms]",
                     a.dptrace_ns / 1e6, a.ctrljust_ns / 1e6,
                     a.dprelax_ns / 1e6);
      if (a.probe_batches || a.probe_prunes)
        std::fprintf(stderr, "  [probe %.2fms prunes %llu]", a.probe_ns / 1e6,
                     static_cast<unsigned long long>(a.probe_prunes));
      std::fprintf(stderr, "\n");
    }
    res.rows.push_back({err, std::move(a)});
  }
  if (res.stats.detected > 0)
    res.stats.avg_test_length =
        static_cast<double>(length_sum) / res.stats.detected;
  res.tests_kept = res.stats.detected;
  if (!journal.writer.error().empty()) {
    if (!res.journal_note.empty()) res.journal_note += "; ";
    res.journal_note += journal.writer.error();
  }
  return res;
}

CampaignResult run_campaign(const Netlist& nl,
                            const std::vector<DesignError>& errors,
                            const TestGenFn& gen, bool verbose) {
  CampaignConfig cfg;
  cfg.verbose = verbose;
  return run_campaign(nl, errors, ignore_budget(gen), cfg);
}

BatchDetectFn batch_from_scalar(DetectFn detect) {
  return [detect = std::move(detect)](
             const TestCase& tc, const std::vector<const DesignError*>& errs) {
    std::vector<bool> out(errs.size(), false);
    for (std::size_t i = 0; i < errs.size(); ++i)
      out[i] = detect(tc, *errs[i]);
    return out;
  };
}

CampaignResult run_campaign_with_dropping(
    const Netlist& nl, const std::vector<DesignError>& errors,
    const BudgetedGenFn& gen, const BatchDetectFn& detect,
    const CampaignConfig& cfg) {
  CampaignResult res;
  res.stats.total = errors.size();
  std::uint64_t length_sum = 0;
  std::vector<char> done(errors.size(), 0);

  JournalSession journal;
  journal.open(nl, errors, cfg.journal_path, cfg.resume,
               cfg.journal_fsync_interval, cfg.design_hash,
               cfg.solver_config_hash, cfg.resume_strict);
  res.journal_note = journal.note;
  if (journal.refused) {
    res.resume_refused = true;
    res.interrupted = true;
    return res;
  }

  // One batched detector call sweeps the new test over every remaining
  // error (dropped and journaled errors are already excluded).
  auto drop_pass = [&](std::size_t i, const TestCase& test) {
    std::vector<const DesignError*> rem;
    std::vector<std::size_t> idx;
    for (std::size_t j = i + 1; j < errors.size(); ++j)
      if (!done[j]) {
        rem.push_back(&errors[j]);
        idx.push_back(j);
      }
    if (rem.empty()) return;
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<bool> det = detect(test, rem);
    res.dropping_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    for (std::size_t k = 0; k < rem.size(); ++k) {
      if (k >= det.size() || !det[k]) continue;
      // Self-check: a batch-drop claim is re-validated with one scalar
      // oracle run. A refuted claim is quarantined and the error stays in
      // the population for its own generator attempt; an oracle failure
      // leaves the claim standing but still raises an incident.
      if (cfg.triage.verify && cfg.triage.oracle) {
        ErrorAttempt claim;
        claim.generated = claim.sim_confirmed = true;
        claim.incident_test = test;
        claim.note = "batch-drop claim for test of error " +
                     std::to_string(i) + " cross-checked by scalar oracle";
        bool ok = false;
        bool oracle_failed = false;
        try {
          ok = cfg.triage.oracle(test, errors[idx[k]]);
        } catch (...) {
          oracle_failed = true;
        }
        if (oracle_failed) {
          claim.verify = WitnessVerdict::kOracleError;
          append_note(&claim.note, "oracle threw; claim left standing");
          record_incident(&res, cfg, idx[k], errors[idx[k]], claim);
        } else if (!ok) {
          ++res.stats.drop_mismatches;
          claim.verify = WitnessVerdict::kClaimMismatch;
          append_note(&claim.note, "oracle found no divergence; not dropped");
          if (cfg.triage.minimize && cfg.triage.minimizer) {
            std::string mnote;
            claim.incident_min = cfg.triage.minimizer(
                test, errors[idx[k]], /*expect_detected=*/false, &mnote);
            claim.minimized = true;
            append_note(&claim.note, mnote);
          }
          record_incident(&res, cfg, idx[k], errors[idx[k]], claim);
          if (cfg.verbose)
            std::fprintf(stderr, "  [mism] drop claim refuted for %s\n",
                         errors[idx[k]].describe(nl).c_str());
          continue;  // the error keeps its own generator attempt
        }
      }
      done[idx[k]] = 1;
      ++res.stats.detected;
      ++res.stats.detected_deterministic;
      ++res.dropped;
      if (cfg.verbose)
        std::fprintf(stderr, "  [drop] %s (covered by test for %s)\n",
                     errors[idx[k]].describe(nl).c_str(),
                     errors[i].describe(nl).c_str());
    }
  };

  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (cfg.cancel && cfg.cancel->stop_requested()) {
      res.interrupted = true;
      break;
    }
    if (done[i]) continue;  // fortuitously detected by an earlier test
    ErrorAttempt a;
    if (const auto it = journal.replay.find(i); it != journal.replay.end()) {
      // Replayed generator attempt: the dropping pass below re-derives the
      // drops its test caused, so a resumed campaign reproduces the
      // original compaction without re-running any generator.
      a = it->second;
      ++res.resumed_rows;
    } else {
      a = attempt_one_error(errors[i], i, gen, cfg);
      if (journal.writer.is_open())
        journal.writer.append_line(journal_row_line(i, a));
      if (a.incident()) record_incident(&res, cfg, i, errors[i], a);
    }
    res.stats.add_attempt(a, &length_sum);
    if (a.detected()) {
      done[i] = 1;
      ++res.tests_kept;
      drop_pass(i, a.test);
    }
    if (cfg.verbose)
      std::fprintf(stderr, "  [%s] %s%s\n", outcome_tag(a),
                   errors[i].describe(nl).c_str(),
                   a.note.empty() ? "" : ("  (" + a.note + ")").c_str());
    res.rows.push_back({errors[i], std::move(a)});
  }
  if (res.tests_kept > 0)
    res.stats.avg_test_length =
        static_cast<double>(length_sum) / res.tests_kept;
  if (!journal.writer.error().empty()) {
    if (!res.journal_note.empty()) res.journal_note += "; ";
    res.journal_note += journal.writer.error();
  }
  return res;
}

CampaignResult run_campaign_with_dropping(
    const Netlist& nl, const std::vector<DesignError>& errors,
    const TestGenFn& gen, const DetectFn& detect, bool verbose) {
  CampaignConfig cfg;
  cfg.verbose = verbose;
  return run_campaign_with_dropping(nl, errors, ignore_budget(gen),
                                    batch_from_scalar(detect), cfg);
}

}  // namespace hltg
