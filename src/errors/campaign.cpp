#include "errors/campaign.h"

#include <chrono>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <utility>

#include "errors/journal.h"
#include "util/table.h"

namespace hltg {

BudgetedGenFn ignore_budget(TestGenFn gen) {
  return [gen = std::move(gen)](const DesignError& err, Budget&) {
    return gen(err);
  };
}

std::string CampaignStats::table1(const std::string& title) const {
  TextTable t({title, "value"});
  t.add_kv("No. of errors", std::to_string(total));
  t.add_kv("No. of errors detected", std::to_string(detected));
  if (detected_fallback > 0) {
    t.add_kv("  detected by deterministic TG",
             std::to_string(detected_deterministic));
    t.add_kv("  detected by fallback generator",
             std::to_string(detected_fallback));
  }
  t.add_kv("No. of errors aborted", std::to_string(aborted));
  auto abort_row = [&](const char* label, std::size_t n) {
    if (n > 0) t.add_kv(label, std::to_string(n));
  };
  abort_row("  aborted: deadline", aborted_deadline);
  abort_row("  aborted: backtrack limit", aborted_backtracks);
  abort_row("  aborted: decision limit", aborted_decisions);
  abort_row("  aborted: cancelled", aborted_cancelled);
  abort_row("  aborted: exception", aborted_exception);
  if (attempted < total)
    t.add_kv("No. of errors not attempted (interrupted)",
             std::to_string(total - attempted));
  t.add_kv("Average test sequence length", fmt_double(avg_test_length, 1));
  t.add_kv("No. of backtracks (detected errors only)",
           std::to_string(backtracks));
  if (learned > 0 || cache_hits > 0 || nogood_hits > 0) {
    t.add_kv("Solver: nogoods learned", std::to_string(learned));
    t.add_kv("Solver: nogood prunes/forcings", std::to_string(nogood_hits));
    t.add_kv("Solver: justification cache hits", std::to_string(cache_hits));
  }
  t.add_kv("CPU time [minutes]", fmt_double(cpu_seconds / 60.0, 2));
  return t.to_string();
}

void CampaignStats::add_attempt(const ErrorAttempt& a,
                                std::uint64_t* length_sum) {
  ++attempted;
  if (a.detected()) {
    ++detected;
    if (a.via_fallback)
      ++detected_fallback;
    else
      ++detected_deterministic;
    *length_sum += a.test_length;
    backtracks += a.backtracks;
    decisions += a.decisions;
    if (length_histogram.size() <= a.test_length)
      length_histogram.resize(a.test_length + 1, 0);
    ++length_histogram[a.test_length];
  } else {
    ++aborted;
    switch (a.abort) {
      case AbortReason::kDeadline: ++aborted_deadline; break;
      case AbortReason::kBacktracks: ++aborted_backtracks; break;
      case AbortReason::kDecisions: ++aborted_decisions; break;
      case AbortReason::kCancelled: ++aborted_cancelled; break;
      case AbortReason::kException: ++aborted_exception; break;
      case AbortReason::kNone: break;
    }
  }
  implications += a.implications;
  learned += a.learned;
  nogood_hits += a.nogood_hits;
  cache_hits += a.cache_hits;
  cpu_seconds += a.seconds;
}

namespace {

void append_note(std::string* dst, const std::string& more) {
  if (more.empty()) return;
  if (!dst->empty()) *dst += "; ";
  *dst += more;
}

const char* outcome_tag(const ErrorAttempt& a) {
  switch (a.outcome()) {
    case AttemptOutcome::kDetectedDeterministic: return "det ";
    case AttemptOutcome::kDetectedFallback: return "fbk ";
    case AttemptOutcome::kAborted: return "abrt";
  }
  return "?";
}

}  // namespace

ErrorAttempt attempt_one_error(const DesignError& err, std::size_t index,
                               const BudgetedGenFn& gen,
                               const CampaignConfig& cfg) {
  const CampaignFault* fault = nullptr;
  if (cfg.faults) {
    const auto it = cfg.faults->find(index);
    if (it != cfg.faults->end()) fault = &it->second;
  }

  ErrorAttempt a;
  try {
    if (fault && fault->kind == CampaignFault::Kind::kThrow) {
      throw std::runtime_error("fault-injected generator failure");
    } else if (fault && fault->kind == CampaignFault::Kind::kBudgetExhaust) {
      a.abort = fault->abort;
      a.note = "fault: forced budget exhaustion";
    } else if (fault && fault->kind == CampaignFault::Kind::kForceAttempt) {
      a = fault->attempt;
    } else {
      Budget budget = cfg.budget.arm();
      a = gen(err, budget);
    }
  } catch (const std::exception& e) {
    a = ErrorAttempt{};
    a.abort = AbortReason::kException;
    a.note = std::string("generator threw: ") + e.what();
  } catch (...) {
    a = ErrorAttempt{};
    a.abort = AbortReason::kException;
    a.note = "generator threw a non-std exception";
  }

  const bool degradable =
      !a.detected() && a.abort != AbortReason::kCancelled &&
      (cfg.fallback || (fault && fault->force_fallback));
  if (!degradable) return a;

  ErrorAttempt fb;
  try {
    if (fault && fault->force_fallback) {
      fb = fault->fallback_attempt;
    } else {
      Budget budget = cfg.fallback_budget.arm();
      fb = cfg.fallback(err, budget);
    }
  } catch (const std::exception& e) {
    fb = ErrorAttempt{};
    fb.abort = AbortReason::kException;
    fb.note = std::string("threw: ") + e.what();
  } catch (...) {
    fb = ErrorAttempt{};
    fb.abort = AbortReason::kException;
    fb.note = "threw a non-std exception";
  }
  if (!fb.detected()) {
    // Keep the primary attempt's record (its abort reason explains the
    // Table-1 outcome); charge the fallback's time and note its failure.
    a.seconds += fb.seconds;
    append_note(&a.note,
                "fallback failed" + (fb.note.empty() ? "" : ": " + fb.note));
    return a;
  }
  fb.via_fallback = true;
  // Carry the primary attempt's effort so Table-1 cost stays honest.
  fb.seconds += a.seconds;
  fb.backtracks += a.backtracks;
  fb.decisions += a.decisions;
  fb.implications += a.implications;
  fb.learned += a.learned;
  fb.nogood_hits += a.nogood_hits;
  fb.cache_hits += a.cache_hits;
  std::string note = a.note;
  append_note(&note, fb.note.empty() ? "detected by fallback" : fb.note);
  fb.note = std::move(note);
  return fb;
}

CampaignResult run_campaign(const Netlist& nl,
                            const std::vector<DesignError>& errors,
                            const BudgetedGenFn& gen,
                            const CampaignConfig& cfg) {
  CampaignResult res;
  res.stats.total = errors.size();
  std::uint64_t length_sum = 0;

  JournalSession journal;
  journal.open(nl, errors, cfg.journal_path, cfg.resume,
               cfg.journal_fsync_interval);
  res.journal_note = journal.note;

  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (cfg.cancel && cfg.cancel->stop_requested()) {
      res.interrupted = true;
      break;
    }
    const DesignError& err = errors[i];
    ErrorAttempt a;
    if (const auto it = journal.replay.find(i); it != journal.replay.end()) {
      a = it->second;
      ++res.resumed_rows;
    } else {
      a = attempt_one_error(err, i, gen, cfg);
      if (journal.writer.is_open())
        journal.writer.append_line(journal_row_line(i, a));
    }
    res.stats.add_attempt(a, &length_sum);
    if (cfg.verbose)
      std::fprintf(stderr, "  [%s] %s%s\n", outcome_tag(a),
                   err.describe(nl).c_str(),
                   a.note.empty() ? "" : ("  (" + a.note + ")").c_str());
    res.rows.push_back({err, std::move(a)});
  }
  if (res.stats.detected > 0)
    res.stats.avg_test_length =
        static_cast<double>(length_sum) / res.stats.detected;
  res.tests_kept = res.stats.detected;
  return res;
}

CampaignResult run_campaign(const Netlist& nl,
                            const std::vector<DesignError>& errors,
                            const TestGenFn& gen, bool verbose) {
  CampaignConfig cfg;
  cfg.verbose = verbose;
  return run_campaign(nl, errors, ignore_budget(gen), cfg);
}

BatchDetectFn batch_from_scalar(DetectFn detect) {
  return [detect = std::move(detect)](
             const TestCase& tc, const std::vector<const DesignError*>& errs) {
    std::vector<bool> out(errs.size(), false);
    for (std::size_t i = 0; i < errs.size(); ++i)
      out[i] = detect(tc, *errs[i]);
    return out;
  };
}

CampaignResult run_campaign_with_dropping(
    const Netlist& nl, const std::vector<DesignError>& errors,
    const BudgetedGenFn& gen, const BatchDetectFn& detect,
    const CampaignConfig& cfg) {
  CampaignResult res;
  res.stats.total = errors.size();
  std::uint64_t length_sum = 0;
  std::vector<char> done(errors.size(), 0);

  JournalSession journal;
  journal.open(nl, errors, cfg.journal_path, cfg.resume,
               cfg.journal_fsync_interval);
  res.journal_note = journal.note;

  // One batched detector call sweeps the new test over every remaining
  // error (dropped and journaled errors are already excluded).
  auto drop_pass = [&](std::size_t i, const TestCase& test) {
    std::vector<const DesignError*> rem;
    std::vector<std::size_t> idx;
    for (std::size_t j = i + 1; j < errors.size(); ++j)
      if (!done[j]) {
        rem.push_back(&errors[j]);
        idx.push_back(j);
      }
    if (rem.empty()) return;
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<bool> det = detect(test, rem);
    res.dropping_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    for (std::size_t k = 0; k < rem.size(); ++k) {
      if (k >= det.size() || !det[k]) continue;
      done[idx[k]] = 1;
      ++res.stats.detected;
      ++res.stats.detected_deterministic;
      ++res.dropped;
      if (cfg.verbose)
        std::fprintf(stderr, "  [drop] %s (covered by test for %s)\n",
                     errors[idx[k]].describe(nl).c_str(),
                     errors[i].describe(nl).c_str());
    }
  };

  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (cfg.cancel && cfg.cancel->stop_requested()) {
      res.interrupted = true;
      break;
    }
    if (done[i]) continue;  // fortuitously detected by an earlier test
    ErrorAttempt a;
    if (const auto it = journal.replay.find(i); it != journal.replay.end()) {
      // Replayed generator attempt: the dropping pass below re-derives the
      // drops its test caused, so a resumed campaign reproduces the
      // original compaction without re-running any generator.
      a = it->second;
      ++res.resumed_rows;
    } else {
      a = attempt_one_error(errors[i], i, gen, cfg);
      if (journal.writer.is_open())
        journal.writer.append_line(journal_row_line(i, a));
    }
    res.stats.add_attempt(a, &length_sum);
    if (a.detected()) {
      done[i] = 1;
      ++res.tests_kept;
      drop_pass(i, a.test);
    }
    if (cfg.verbose)
      std::fprintf(stderr, "  [%s] %s%s\n", outcome_tag(a),
                   errors[i].describe(nl).c_str(),
                   a.note.empty() ? "" : ("  (" + a.note + ")").c_str());
    res.rows.push_back({errors[i], std::move(a)});
  }
  if (res.tests_kept > 0)
    res.stats.avg_test_length =
        static_cast<double>(length_sum) / res.tests_kept;
  return res;
}

CampaignResult run_campaign_with_dropping(
    const Netlist& nl, const std::vector<DesignError>& errors,
    const TestGenFn& gen, const DetectFn& detect, bool verbose) {
  CampaignConfig cfg;
  cfg.verbose = verbose;
  return run_campaign_with_dropping(nl, errors, ignore_budget(gen),
                                    batch_from_scalar(detect), cfg);
}

}  // namespace hltg
