#include "errors/campaign.h"

#include <chrono>
#include <cstdio>

#include "util/table.h"

namespace hltg {

std::string CampaignStats::table1(const std::string& title) const {
  TextTable t({title, "value"});
  t.add_kv("No. of errors", std::to_string(total));
  t.add_kv("No. of errors detected", std::to_string(detected));
  t.add_kv("No. of errors aborted", std::to_string(aborted));
  t.add_kv("Average test sequence length", fmt_double(avg_test_length, 1));
  t.add_kv("No. of backtracks (detected errors only)",
           std::to_string(backtracks));
  t.add_kv("CPU time [minutes]", fmt_double(cpu_seconds / 60.0, 2));
  return t.to_string();
}

CampaignResult run_campaign(const Netlist& nl,
                            const std::vector<DesignError>& errors,
                            const TestGenFn& gen, bool verbose) {
  CampaignResult res;
  res.stats.total = errors.size();
  std::uint64_t length_sum = 0;
  for (const DesignError& err : errors) {
    CampaignRow row{err, gen(err)};
    const ErrorAttempt& a = row.attempt;
    if (a.generated && a.sim_confirmed) {
      ++res.stats.detected;
      length_sum += a.test_length;
      res.stats.backtracks += a.backtracks;
      res.stats.decisions += a.decisions;
      if (res.stats.length_histogram.size() <= a.test_length)
        res.stats.length_histogram.resize(a.test_length + 1, 0);
      ++res.stats.length_histogram[a.test_length];
    } else {
      ++res.stats.aborted;
    }
    res.stats.cpu_seconds += a.seconds;
    if (verbose)
      std::fprintf(stderr, "  [%s] %s%s\n",
                   a.generated && a.sim_confirmed ? "det " : "abrt",
                   err.describe(nl).c_str(),
                   a.note.empty() ? "" : ("  (" + a.note + ")").c_str());
    res.rows.push_back(std::move(row));
  }
  if (res.stats.detected > 0)
    res.stats.avg_test_length =
        static_cast<double>(length_sum) / res.stats.detected;
  res.tests_kept = res.stats.detected;
  return res;
}

CampaignResult run_campaign_with_dropping(
    const Netlist& nl, const std::vector<DesignError>& errors,
    const TestGenFn& gen, const DetectFn& detect, bool verbose) {
  CampaignResult res;
  res.stats.total = errors.size();
  std::uint64_t length_sum = 0;
  std::vector<bool> done(errors.size(), false);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (done[i]) continue;
    CampaignRow row{errors[i], gen(errors[i])};
    const ErrorAttempt& a = row.attempt;
    if (a.generated && a.sim_confirmed) {
      ++res.stats.detected;
      ++res.tests_kept;
      length_sum += a.test_length;
      res.stats.backtracks += a.backtracks;
      res.stats.decisions += a.decisions;
      done[i] = true;
      // Error-simulate the new test against every remaining error.
      for (std::size_t j = i + 1; j < errors.size(); ++j) {
        if (done[j]) continue;
        if (detect(a.test, errors[j])) {
          done[j] = true;
          ++res.stats.detected;
          ++res.dropped;
          if (verbose)
            std::fprintf(stderr, "  [drop] %s (covered by test for %s)\n",
                         errors[j].describe(nl).c_str(),
                         errors[i].describe(nl).c_str());
        }
      }
    } else {
      ++res.stats.aborted;
    }
    if (verbose)
      std::fprintf(stderr, "  [%s] %s\n",
                   a.generated && a.sim_confirmed ? "det " : "abrt",
                   errors[i].describe(nl).c_str());
    res.rows.push_back(std::move(row));
  }
  res.stats.cpu_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (res.tests_kept > 0)
    res.stats.avg_test_length =
        static_cast<double>(length_sum) / res.tests_kept;
  return res;
}

}  // namespace hltg
