#include "errors/boe.h"

#include <algorithm>

namespace hltg {

std::string BusOrderError::describe(const Netlist& nl) const {
  const Module& m = nl.module(module);
  return m.name + ": operands swapped (" + std::string(to_string(m.stage)) +
         ")";
}

bool is_order_sensitive(ModuleKind k) {
  switch (k) {
    case ModuleKind::kSub:
    case ModuleKind::kLt:
    case ModuleKind::kLe:
    case ModuleKind::kLtU:
    case ModuleKind::kLeU:
    case ModuleKind::kShl:
    case ModuleKind::kShrL:
    case ModuleKind::kShrA:
    case ModuleKind::kSubOvf:
      return true;
    default:
      return false;
  }
}

std::vector<BusOrderError> enumerate_boe(const Netlist& nl,
                                         const std::vector<Stage>& stages) {
  std::vector<BusOrderError> out;
  for (ModId i = 0; i < nl.num_modules(); ++i) {
    const Module& m = nl.module(i);
    if (std::find(stages.begin(), stages.end(), m.stage) == stages.end())
      continue;
    if (m.data_in.size() != 2 || !is_order_sensitive(m.kind)) continue;
    // Swapping is only shape-legal when both inputs have the same width.
    if (nl.net(m.data_in[0]).width != nl.net(m.data_in[1]).width) continue;
    out.push_back({i});
  }
  return out;
}

}  // namespace hltg
