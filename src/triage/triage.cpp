#include "triage/triage.h"

#include <utility>

#include "sim/cosim.h"
#include "triage/ddmin.h"
#include "triage/witness_check.h"

namespace hltg {

TriageConfig make_triage(const DlxModel& m, const TriageOptions& opt) {
  TriageConfig tri;
  tri.verify = opt.verify;
  tri.minimize = opt.minimize;
  if (!opt.verify) return tri;

  tri.oracle = scalar_oracle(m);

  if (opt.minimize) {
    const BudgetSpec spec = opt.minimize_budget;
    tri.minimizer = [&m, spec](const TestCase& tc, const DesignError& err,
                               bool expect_detected, std::string* note) {
      const ErrorInjection inj = err.injection();
      TestPredicate property = [&m, inj, expect_detected](const TestCase& c) {
        return detects(m, c, inj) == expect_detected;
      };
      Budget budget = spec.arm();
      DdminResult r = ddmin_test(tc, property, budget);
      if (note) *note = r.stats.summary();
      return std::move(r.test);
    };
  }

  if (opt.cross_retry) {
    const TgConfig cfg = opt.cross_config;
    tri.cross_gen = [&m, cfg](const DesignError& err, Budget& b) {
      // A fresh generator per call: campaign workers may retry
      // concurrently, and per-error solver state must not leak between
      // rows (same isolation rule as the per-worker generator instances).
      TestGenerator tg(m, cfg);
      return tg.budgeted_strategy()(err, b);
    };
  }

  if (!opt.quarantine_dir.empty()) {
    BundleOptions bopt;
    bopt.dir = opt.quarantine_dir;
    bopt.repro_flags = opt.repro_flags;
    tri.bundle = make_bundle_writer(m, std::move(bopt));
  }
  return tri;
}

}  // namespace hltg
