// Quarantine bundles: one self-contained diagnostic directory per triage
// incident, written in error-index order by the campaign's aggregation
// thread (deterministic numbering for any --jobs value):
//
//   <dir>/incident_0000_err12/
//     witness.txt     the testcase that failed the cross-check (testcase_io)
//     minimized.txt   its ddmin shrink (only with --minimize)
//     divergence.txt  oracle verdict + first-divergence report (diff_debug)
//     trace.vcd       implementation waveform of the witness under injection
//     stats.json      flat JSON: error identity, verdict, effort counters
//     repro.txt       the error_campaign --replay command reproducing the
//                     mismatch from the shipped files
//
// The bundle must stand alone: a verification engineer picks up the
// directory days later, runs the repro line, and sees the same verdict.
#pragma once

#include <string>

#include "dlx/dlx.h"
#include "errors/campaign.h"

namespace hltg {

struct BundleOptions {
  std::string dir;  ///< quarantine root; created on first incident
  /// Campaign-identifying flags reproduced verbatim in repro.txt (e.g.
  /// "--model ssl --stages EX,MEM,WB"), so --replay re-enumerates the same
  /// error population and --replay-error N lands on the same error.
  std::string repro_flags;
};

/// Deterministic bundle directory name for one incident.
std::string bundle_dir_name(std::size_t incident, std::size_t error_index);

/// Build the campaign's TriageBundleFn. Returns the written bundle path as
/// the incident note, or an error diagnostic (the campaign records either;
/// a failed bundle write never aborts the sweep).
TriageBundleFn make_bundle_writer(const DlxModel& m, BundleOptions opt);

}  // namespace hltg
