// Witness minimization by delta debugging (Zeller's ddmin) over a
// TestCase: shrink the instruction sequence, then the initial register-file
// and data-memory words, while a caller-supplied property keeps holding.
//
// The property is the incident's oracle-relevant invariant - for a
// confirmed detecting witness "the oracle still detects", for a
// quarantined claim-mismatch witness "the oracle still finds no
// divergence" - so the minimized testcase reproduces the incident with the
// printed repro command. Minimization is idempotent: running ddmin on an
// already-minimal case performs only failing probes and returns it
// unchanged.
//
// Every candidate probe charges one decision against the supplied Budget
// (src/util/budget.h), so a deadline, decision cap, or cancellation bounds
// the pass; the best reduction found so far is returned with the abort
// reason recorded.
#pragma once

#include <functional>
#include <string>

#include "isa/spec_sim.h"
#include "util/budget.h"

namespace hltg {

/// Does the (shrunk) candidate still exhibit the property under test?
using TestPredicate = std::function<bool(const TestCase&)>;

struct DdminStats {
  std::uint64_t probes = 0;      ///< property evaluations
  unsigned orig_instrs = 0;      ///< imem words before minimization
  unsigned min_instrs = 0;       ///< imem words after
  unsigned data_removed = 0;     ///< rf entries zeroed + dmem words dropped
  AbortReason abort = AbortReason::kNone;  ///< budget cut the pass short
  bool property_held = true;     ///< property held on the input at all

  std::string summary() const;  ///< e.g. "ddmin: 28 -> 3 instrs, 41 probes"
};

struct DdminResult {
  TestCase test;
  DdminStats stats;
};

/// Minimize `orig` under `property`. Precondition: property(orig) should
/// hold; if it does not, `orig` is returned unchanged with
/// stats.property_held = false (a minimizer must never *invent* a witness).
DdminResult ddmin_test(const TestCase& orig, const TestPredicate& property,
                       Budget& budget);

}  // namespace hltg
