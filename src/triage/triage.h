// Campaign wiring for the self-checking triage layer: build the
// TriageConfig the campaign engines consume from the concrete model-level
// pieces - the independent scalar oracle (witness_check), the ddmin witness
// minimizer, the cross-config retry generator (the --solver escape hatch in
// the opposite position), and the quarantine bundle writer.
//
// src/errors cannot depend on src/sim or src/core (layering), so the
// campaign sees only std::functions; this module, which may see everything,
// is where they are bound to the DLX model.
#pragma once

#include "core/tg.h"
#include "dlx/dlx.h"
#include "errors/campaign.h"
#include "triage/bundle.h"

namespace hltg {

struct TriageOptions {
  bool verify = false;    ///< cross-check every detection claim
  bool minimize = false;  ///< ddmin mismatching witnesses
  /// Quarantine root ("" disables bundle writing; incidents are still
  /// counted and noted).
  std::string quarantine_dir;
  /// Campaign-identifying flags for the bundles' repro.txt (see
  /// BundleOptions::repro_flags).
  std::string repro_flags;
  /// Bounds one ddmin pass; every candidate probe is one decision. The
  /// default caps probes so a pathological predicate cannot stall the
  /// campaign.
  BudgetSpec minimize_budget{/*deadline_seconds=*/10.0,
                             /*max_decisions=*/2048};
  /// Generator config for the one cross-config retry on claim mismatch;
  /// the caller passes the campaign's config with `solver.enable` flipped.
  /// `cross_retry = false` disables the retry entirely.
  bool cross_retry = true;
  TgConfig cross_config;
};

/// Bind the triage layer to a model. The returned config's callbacks are
/// thread-compatible: oracle and minimizer run scalar simulations against
/// the shared read-only model, and the cross-config retry constructs its
/// own TestGenerator per call (campaign workers never share one).
TriageConfig make_triage(const DlxModel& m, const TriageOptions& opt);

}  // namespace hltg
