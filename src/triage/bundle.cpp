#include "triage/bundle.h"

#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "isa/testcase_io.h"
#include "sim/cosim.h"
#include "sim/diff_debug.h"
#include "sim/vcd.h"

namespace hltg {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool write_file(const std::filesystem::path& p, const std::string& text) {
  std::ofstream out(p);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

std::string divergence_text(const DlxModel& m, const TestCase& tc,
                            const DesignError& err) {
  const unsigned cycles = drain_cycles(tc.imem.size());
  std::ostringstream os;
  const CosimResult cr = cosim(m, tc, cycles, err.injection());
  os << "oracle (spec vs injected implementation, " << cycles
     << " cycles): " << (cr.match ? "no divergence" : "DIVERGED") << "\n";
  if (!cr.diff.empty()) os << cr.diff << "\n";
  // Internal error-cone view: even when no divergence reaches the
  // architectural trace, the injected run may depart from the good run
  // inside the pipe - exactly the situation of a refuted detection claim.
  os << "\ngood vs injected implementation (internal nets):\n"
     << diff_runs(m, tc, cycles, err.injection()).to_string(m.dp);
  return os.str();
}

std::string stats_json(const DlxModel& m, std::size_t incident,
                       std::size_t error_index, const DesignError& err,
                       const ErrorAttempt& a) {
  std::ostringstream os;
  os << "{\"incident\":" << incident << ",\"error_index\":" << error_index
     << ",\"error_model\":\"" << json_escape(err.model_name())
     << "\",\"error\":\"" << json_escape(err.describe(m.dp))
     << "\",\"verify\":\"" << to_string(a.verify)
     << "\",\"recovered\":" << (a.recovered ? "true" : "false")
     << ",\"minimized\":" << (a.minimized ? "true" : "false")
     << ",\"witness_instrs\":" << a.incident_test.imem.size();
  if (a.minimized)
    os << ",\"minimized_instrs\":" << a.incident_min.imem.size();
  os << ",\"backtracks\":" << a.backtracks << ",\"decisions\":" << a.decisions
     << ",\"seconds\":" << a.seconds << ",\"note\":\"" << json_escape(a.note)
     << "\"}\n";
  return os.str();
}

std::string repro_text(const BundleOptions& opt, const std::string& dir_name,
                       std::size_t error_index, const ErrorAttempt& a) {
  // A standing claim (oracle_error) replays as detected; a refuted or
  // retry-recovered claim replays its bogus witness as undetected.
  const bool expect_detected = a.verify == WitnessVerdict::kOracleError;
  std::ostringstream os;
  os << "# Reproduce this incident's oracle verdict (exit 0 = reproduced):\n"
     << "./error_campaign " << opt.repro_flags << " --replay " << dir_name
     << "/witness.txt --replay-error " << error_index << " --expect "
     << (expect_detected ? "detected" : "undetected") << "\n";
  if (a.minimized)
    os << "# Same verdict from the minimized witness:\n"
       << "./error_campaign " << opt.repro_flags << " --replay " << dir_name
       << "/minimized.txt --replay-error " << error_index << " --expect "
       << (expect_detected ? "detected" : "undetected") << "\n";
  return os.str();
}

}  // namespace

std::string bundle_dir_name(std::size_t incident, std::size_t error_index) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "incident_%04zu_err%zu", incident,
                error_index);
  return buf;
}

TriageBundleFn make_bundle_writer(const DlxModel& m, BundleOptions opt) {
  return [&m, opt](std::size_t incident, std::size_t error_index,
                   const DesignError& err, const ErrorAttempt& a) {
    const std::string name = bundle_dir_name(incident, error_index);
    const std::filesystem::path dir =
        std::filesystem::path(opt.dir) / name;
    try {
      std::filesystem::create_directories(dir);
      bool ok = write_file(dir / "witness.txt",
                           serialize_test(a.incident_test));
      if (a.minimized)
        ok = write_file(dir / "minimized.txt",
                        serialize_test(a.incident_min)) && ok;
      ok = write_file(dir / "divergence.txt",
                      divergence_text(m, a.incident_test, err)) && ok;
      ok = write_file(
               dir / "trace.vcd",
               dump_vcd(m, a.incident_test,
                        drain_cycles(a.incident_test.imem.size()),
                        err.injection())) && ok;
      ok = write_file(dir / "stats.json",
                      stats_json(m, incident, error_index, err, a)) && ok;
      ok = write_file(dir / "repro.txt",
                      repro_text(opt, name, error_index, a)) && ok;
      if (!ok) return "bundle write failed under " + dir.string();
      return "quarantined: " + dir.string();
    } catch (const std::exception& e) {
      return "bundle write failed for " + dir.string() + ": " + e.what();
    }
  };
}

}  // namespace hltg
