#include "triage/witness_check.h"

#include <exception>

#include "sim/cosim.h"

namespace hltg {

DetectFn scalar_oracle(const DlxModel& m) {
  return [&m](const TestCase& tc, const DesignError& err) {
    return detects(m, tc, err.injection());
  };
}

WitnessCheck check_witness(const DlxModel& m, const TestCase& tc,
                           const DesignError& err, bool claimed_detected) {
  WitnessCheck out;
  bool oracle_detected = false;
  try {
    oracle_detected = detects(m, tc, err.injection());
  } catch (const std::exception& e) {
    out.verdict = WitnessVerdict::kOracleError;
    out.note = std::string("oracle threw: ") + e.what();
    return out;
  } catch (...) {
    out.verdict = WitnessVerdict::kOracleError;
    out.note = "oracle threw a non-std exception";
    return out;
  }
  if (oracle_detected == claimed_detected) {
    out.verdict = WitnessVerdict::kConfirmed;
    out.note = oracle_detected ? "oracle reproduced the divergence"
                               : "oracle agrees: no divergence";
  } else {
    out.verdict = WitnessVerdict::kClaimMismatch;
    out.note = claimed_detected
                   ? "claimed detected, but oracle found no divergence"
                   : "claimed undetected, but oracle found a divergence";
  }
  return out;
}

}  // namespace hltg
