// Independent witness cross-check: the self-checking campaign's second
// opinion on every detection claim. The campaign's generator path confirms
// tests through its own dual-simulation call; this module re-runs the
// claim through a freshly-constructed scalar cosimulation (sim/cosim) so a
// bookkeeping bug anywhere in the generator/batch pipeline - a stale
// injection, a test/error index swap, a batch-simulator lane mix-up -
// surfaces as a classified divergence instead of silently inflating the
// Table-1 detection count.
#pragma once

#include <string>

#include "dlx/dlx.h"
#include "errors/campaign.h"

namespace hltg {

/// The independent scalar oracle as a campaign DetectFn: one cosim run of
/// spec vs injected implementation over drain_cycles(|test|). Thread-safe
/// (the model is shared read-only; all simulation state is per-call).
DetectFn scalar_oracle(const DlxModel& m);

struct WitnessCheck {
  WitnessVerdict verdict = WitnessVerdict::kUnchecked;
  std::string note;  ///< human-readable classification detail
};

/// Classify one claim: `claimed_detected` is what the campaign recorded,
/// the oracle's verdict decides. Agreement => kConfirmed, disagreement =>
/// kClaimMismatch, an oracle throw => kOracleError. Used by the campaign
/// wiring, the --replay repro mode, and the triage tests.
WitnessCheck check_witness(const DlxModel& m, const TestCase& tc,
                           const DesignError& err, bool claimed_detected);

}  // namespace hltg
