#include "triage/ddmin.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

namespace hltg {

std::string DdminStats::summary() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "ddmin: %u -> %u instrs, -%u data words, %llu probes",
                orig_instrs, min_instrs, data_removed,
                static_cast<unsigned long long>(probes));
  std::string s = buf;
  if (!property_held) s += " (property did not hold; input returned)";
  if (abort != AbortReason::kNone)
    s += " (budget: " + std::string(to_string(abort)) + ")";
  return s;
}

namespace {

/// One probe: charge the budget, then evaluate the property. A fired
/// budget ends the pass without evaluating (the candidate is treated as
/// failing, so the best-so-far reduction survives).
class Prober {
 public:
  Prober(const TestPredicate& property, Budget& budget, DdminStats* stats)
      : property_(property), budget_(budget), stats_(stats) {}

  bool exhausted() {
    if (stats_->abort != AbortReason::kNone) return true;
    const AbortReason why = budget_.exhausted();
    if (why != AbortReason::kNone) stats_->abort = why;
    return stats_->abort != AbortReason::kNone;
  }

  bool holds(const TestCase& tc) {
    if (exhausted()) return false;
    budget_.charge_decisions(1);
    ++stats_->probes;
    return property_(tc);
  }

 private:
  const TestPredicate& property_;
  Budget& budget_;
  DdminStats* stats_;
};

TestCase with_imem(const TestCase& base, std::vector<std::uint32_t> imem) {
  TestCase tc = base;
  tc.imem = std::move(imem);
  return tc;
}

/// Classic ddmin over the instruction vector: alternate trying each chunk
/// alone ("reduce to subset") and each chunk's complement ("reduce to
/// complement") at doubling granularity until single-instruction removal
/// fails everywhere.
void ddmin_imem(TestCase* tc, Prober* probe) {
  std::vector<std::uint32_t> cur = tc->imem;
  std::size_t n = 2;
  while (cur.size() >= 1 && !probe->exhausted()) {
    n = std::min(n, cur.size());
    const std::size_t chunk = (cur.size() + n - 1) / n;
    bool reduced = false;
    for (std::size_t b = 0; b < cur.size() && !reduced; b += chunk) {
      const std::size_t e = std::min(b + chunk, cur.size());
      // Subset: does the chunk alone still exhibit the property?
      std::vector<std::uint32_t> subset(cur.begin() + b, cur.begin() + e);
      if (subset.size() < cur.size() &&
          probe->holds(with_imem(*tc, subset))) {
        cur = std::move(subset);
        n = 2;
        reduced = true;
        break;
      }
      // Complement: does removing the chunk keep the property?
      std::vector<std::uint32_t> rest(cur.begin(), cur.begin() + b);
      rest.insert(rest.end(), cur.begin() + e, cur.end());
      if (rest.size() < cur.size() && probe->holds(with_imem(*tc, rest))) {
        cur = std::move(rest);
        n = n > 2 ? n - 1 : 2;
        reduced = true;
        break;
      }
    }
    if (reduced) continue;
    if (n >= cur.size()) break;  // single-element granularity exhausted
    n = std::min(2 * n, cur.size());
  }
  tc->imem = std::move(cur);
}

/// Data shrink: zero initial registers and drop initial memory words that
/// the property does not need. One pass each (idempotent: a kept entry
/// failed its removal probe and will fail it again).
unsigned shrink_data(TestCase* tc, Prober* probe) {
  unsigned removed = 0;
  for (unsigned r = 1; r < 32 && !probe->exhausted(); ++r) {
    if (tc->rf_init[r] == 0) continue;
    TestCase cand = *tc;
    cand.rf_init[r] = 0;
    if (probe->holds(cand)) {
      tc->rf_init[r] = 0;
      ++removed;
    }
  }
  std::vector<std::uint32_t> addrs;
  addrs.reserve(tc->dmem_init.size());
  for (const auto& [a, v] : tc->dmem_init) addrs.push_back(a);
  for (std::uint32_t a : addrs) {
    if (probe->exhausted()) break;
    TestCase cand = *tc;
    cand.dmem_init.erase(a);
    if (probe->holds(cand)) {
      tc->dmem_init.erase(a);
      ++removed;
    }
  }
  return removed;
}

}  // namespace

DdminResult ddmin_test(const TestCase& orig, const TestPredicate& property,
                       Budget& budget) {
  DdminResult res;
  res.test = orig;
  res.stats.orig_instrs = static_cast<unsigned>(orig.imem.size());
  res.stats.min_instrs = res.stats.orig_instrs;
  Prober probe(property, budget, &res.stats);
  if (!probe.holds(orig)) {
    res.stats.property_held = false;
    // A budget firing on the very first probe is indistinguishable from a
    // failing property; the abort reason disambiguates for the caller.
    res.stats.property_held = res.stats.abort != AbortReason::kNone
                                  ? res.stats.property_held
                                  : false;
    return res;
  }
  ddmin_imem(&res.test, &probe);
  res.stats.min_instrs = static_cast<unsigned>(res.test.imem.size());
  res.stats.data_removed = shrink_data(&res.test, &probe);
  return res;
}

}  // namespace hltg
