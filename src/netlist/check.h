// Structural validation of a datapath netlist.
//
// The model builder is programmatic, so a lint pass stands in for the
// elaboration checks a Verilog front-end would perform. All rule violations
// are collected (not fail-fast) so tests can assert on specific messages.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace hltg {

struct CheckResult {
  std::vector<std::string> errors;
  bool ok() const { return errors.empty(); }
  std::string summary() const;
};

/// Checks: every non-CTRL/DPI net has exactly one driver; widths are
/// consistent per module kind; mux select width matches fan-in; ctrl inputs
/// of datapath modules are CTRL-role nets; sink/state modules are well
/// formed; the combinational part is acyclic.
CheckResult check_netlist(const Netlist& nl);

}  // namespace hltg
