#include "netlist/eval.h"

#include <cassert>
#include <stdexcept>

#include "util/word.h"

namespace hltg {

bool is_comb_evaluable(ModuleKind k) {
  switch (k) {
    case ModuleKind::kReg:
    case ModuleKind::kInput:
    case ModuleKind::kOutput:
    case ModuleKind::kRfRead:
    case ModuleKind::kRfWrite:
    case ModuleKind::kMemRead:
    case ModuleKind::kMemWrite:
      return false;
    default:
      return true;
  }
}

std::uint64_t eval_comb(const Netlist& nl, const Module& m,
                        const std::vector<std::uint64_t>& in,
                        const std::vector<std::uint64_t>& ctrl) {
  const unsigned ow = m.out != kNoNet ? nl.net(m.out).width : 1;
  auto iw = [&](unsigned i) { return nl.net(m.data_in[i]).width; };
  switch (m.kind) {
    case ModuleKind::kAdd:
      return trunc(in[0] + in[1], ow);
    case ModuleKind::kSub:
      return trunc(in[0] - in[1], ow);
    case ModuleKind::kXorW:
      return trunc(in[0] ^ in[1], ow);
    case ModuleKind::kXnorW:
      return trunc(~(in[0] ^ in[1]), ow);
    case ModuleKind::kEq:
      return in[0] == in[1];
    case ModuleKind::kNe:
      return in[0] != in[1];
    case ModuleKind::kLt:
      return as_signed(in[0], iw(0)) < as_signed(in[1], iw(1));
    case ModuleKind::kLe:
      return as_signed(in[0], iw(0)) <= as_signed(in[1], iw(1));
    case ModuleKind::kLtU:
      return in[0] < in[1];
    case ModuleKind::kLeU:
      return in[0] <= in[1];
    case ModuleKind::kAddOvf:
      return add_overflows(in[0], in[1], iw(0));
    case ModuleKind::kSubOvf:
      return sub_overflows(in[0], in[1], iw(0));
    case ModuleKind::kAndW:
      return trunc(in[0] & in[1], ow);
    case ModuleKind::kNandW:
      return trunc(~(in[0] & in[1]), ow);
    case ModuleKind::kOrW:
      return trunc(in[0] | in[1], ow);
    case ModuleKind::kNorW:
      return trunc(~(in[0] | in[1]), ow);
    case ModuleKind::kNotW:
      return trunc(~in[0], ow);
    case ModuleKind::kShl: {
      const std::uint64_t sh = in[1] & 63;
      return sh >= ow ? 0 : trunc(in[0] << sh, ow);
    }
    case ModuleKind::kShrL: {
      const std::uint64_t sh = in[1] & 63;
      return sh >= iw(0) ? 0 : trunc(in[0] >> sh, ow);
    }
    case ModuleKind::kShrA: {
      const std::uint64_t sh0 = in[1] & 63;
      const unsigned w = iw(0);
      const std::uint64_t sh = sh0 >= w ? w - 1 : sh0;
      return trunc(static_cast<std::uint64_t>(
                       as_signed(in[0], w) >> static_cast<int>(sh)),
                   ow);
    }
    case ModuleKind::kMux: {
      const std::uint64_t sel = ctrl[0];
      const std::size_t idx =
          sel < m.data_in.size() ? static_cast<std::size_t>(sel)
                                 : m.data_in.size() - 1;
      return trunc(in[idx], ow);
    }
    case ModuleKind::kConst:
      return trunc(m.param, ow);
    case ModuleKind::kSlice:
      return get_field(in[0], static_cast<unsigned>(m.param), ow);
    case ModuleKind::kConcat: {
      std::uint64_t v = 0;
      unsigned lo = 0;
      for (unsigned i = 0; i < m.data_in.size(); ++i) {
        v |= trunc(in[i], iw(i)) << lo;
        lo += iw(i);
      }
      return trunc(v, ow);
    }
    case ModuleKind::kZext:
      return trunc(in[0], iw(0));
    case ModuleKind::kSext:
      return trunc(sext(in[0], iw(0)), ow);
    default:
      throw std::logic_error("eval_comb: non-combinational module");
  }
}

}  // namespace hltg
