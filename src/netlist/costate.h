// C-state / O-state lattice and propagation tables (Fig. 5 of the paper).
//
// Path selection (DPTRACE) attributes every module port with a symbolic
// controllability state and observability state:
//
//   C1: unknown whether the port can be controlled
//   C2: not controlled under the current partial assignment, but open
//       decisions remain in the port's transitive fan-in
//   C3: definitively not controllable - no open decisions left
//   C4: controlled (can deliver an arbitrary required value)
//
//   O1: unknown whether the port can be observed
//   O2: not observable
//   O3: observable
//
// The tables below generalize Fig. 5's two-input tables to n inputs, derived
// from the module-class semantics stated in Sec. V.A:
//  - ADD class: one controllable input justifies the output; an input is
//    observable when the output is observable and all side inputs are
//    settled (C3 or C4).
//  - AND class: all inputs must be controlled to justify the output; a side
//    input must be *controlled* (C4) for an input to be observable.
//  - MUX class: the select decides which data input is justified/observed.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace hltg {

enum class CState : std::uint8_t { C1 = 0, C2, C3, C4 };
enum class OState : std::uint8_t { O1 = 0, O2, O3 };

std::string_view to_string(CState c);
std::string_view to_string(OState o);

/// Settled = no pending decision can change the port's value availability.
constexpr bool is_settled(CState c) { return c == CState::C3 || c == CState::C4; }

// --- forward C propagation (inputs -> output) ---------------------------

/// ADD class: C4 if any input C4; else C1 if any input C1; else C2 if any
/// input C2; else C3.
CState c_add(std::span<const CState> in);

/// AND class: C4 if all inputs C4; C1 if remaining inputs are C1/C4 mix;
/// C3 if every input is settled (and not all C4); else C2.
CState c_and(std::span<const CState> in);

/// MUX class. `sel_known` is true when the select control variable is
/// assigned; `sel_index` is the selected data input in that case.
CState c_mux(std::span<const CState> in, bool sel_known, std::size_t sel_index);

// --- backward O propagation (output -> a chosen input) ------------------

/// ADD class: observe input i given O(y) and the side inputs' C-states.
OState o_add(OState oy, std::span<const CState> side_in);

/// AND class: observe input i; all side inputs must be C4.
OState o_and(OState oy, std::span<const CState> side_in);

/// MUX class: observe data input i.
OState o_mux(OState oy, bool sel_known, bool selects_this_input);

}  // namespace hltg
