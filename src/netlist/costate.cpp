#include "netlist/costate.h"

namespace hltg {

std::string_view to_string(CState c) {
  switch (c) {
    case CState::C1: return "C1";
    case CState::C2: return "C2";
    case CState::C3: return "C3";
    case CState::C4: return "C4";
  }
  return "?";
}

std::string_view to_string(OState o) {
  switch (o) {
    case OState::O1: return "O1";
    case OState::O2: return "O2";
    case OState::O3: return "O3";
  }
  return "?";
}

CState c_add(std::span<const CState> in) {
  bool any_c1 = false, any_c2 = false;
  for (CState c : in) {
    if (c == CState::C4) return CState::C4;
    any_c1 |= (c == CState::C1);
    any_c2 |= (c == CState::C2);
  }
  if (any_c1) return CState::C1;
  if (any_c2) return CState::C2;
  return CState::C3;
}

CState c_and(std::span<const CState> in) {
  bool all_c4 = true, all_settled = true, any_blocked = false;
  for (CState c : in) {
    all_c4 &= (c == CState::C4);
    all_settled &= is_settled(c);
    any_blocked |= (c == CState::C2 || c == CState::C3);
  }
  if (all_c4) return CState::C4;
  if (all_settled) return CState::C3;  // some settled input is not C4
  if (any_blocked) return CState::C2;
  return CState::C1;  // mix of C1 and C4: could still become controllable
}

CState c_mux(std::span<const CState> in, bool sel_known,
             std::size_t sel_index) {
  if (sel_known) return in[sel_index];
  // Select still undecided: unknown, unless every choice is already hopeless
  // (then "not controllable but open decisions remain": C2 - the pending
  // select decision cannot help).
  bool all_blocked = true;
  for (CState c : in) all_blocked &= (c == CState::C2 || c == CState::C3);
  return all_blocked ? CState::C2 : CState::C1;
}

OState o_add(OState oy, std::span<const CState> side_in) {
  if (oy == OState::O2) return OState::O2;
  bool sides_settled = true;
  for (CState c : side_in) sides_settled &= is_settled(c);
  if (oy == OState::O3 && sides_settled) return OState::O3;
  return OState::O1;
}

OState o_and(OState oy, std::span<const CState> side_in) {
  if (oy == OState::O2) return OState::O2;
  bool all_c4 = true, any_blocked = false;
  for (CState c : side_in) {
    all_c4 &= (c == CState::C4);
    any_blocked |= (c == CState::C2 || c == CState::C3);
  }
  if (any_blocked) return OState::O2;  // side input can never be de-masked
  if (oy == OState::O3 && all_c4) return OState::O3;
  return OState::O1;
}

OState o_mux(OState oy, bool sel_known, bool selects_this_input) {
  if (oy == OState::O2) return OState::O2;
  if (!sel_known) return OState::O1;
  if (!selects_this_input) return OState::O2;
  return oy;  // O3 -> O3, O1 -> O1
}

}  // namespace hltg
