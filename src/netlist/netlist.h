// Word-level datapath netlist IR (Sec. III of the paper).
//
// The datapath is a directed graph of high-level modules connected by
// multi-bit nets (buses). Every net carries a pipeline-stage label and a
// signal-role label; the roles implement the paper's primary / secondary /
// tertiary classification plus the CTRL / STS interface to the controller:
//
//   kDPI / kDPO : data primary input / output (environment interface)
//   kDSI / kDSO : data secondary (pipe-register) interface
//   kDTI / kDTO : data tertiary (cross-stage, e.g. bypass) interface
//   kCtrl       : control signal arriving from the controller
//   kSts        : status signal produced for the controller
//   kInternal   : everything else
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/module_kind.h"

namespace hltg {

using NetId = std::uint32_t;
using ModId = std::uint32_t;
constexpr NetId kNoNet = static_cast<NetId>(-1);
constexpr ModId kNoMod = static_cast<ModId>(-1);

enum class Stage : std::uint8_t { kIF = 0, kID, kEX, kMEM, kWB, kGlobal };
constexpr int kNumStages = 5;
std::string_view to_string(Stage s);

enum class NetRole : std::uint8_t {
  kInternal = 0,
  kDPI,
  kDPO,
  kDSI,
  kDSO,
  kDTI,
  kDTO,
  kCtrl,
  kSts,
};
std::string_view to_string(NetRole r);

struct Net {
  std::string name;
  unsigned width = 0;
  Stage stage = Stage::kGlobal;
  NetRole role = NetRole::kInternal;
  ModId driver = kNoMod;  ///< unique driving module (kNoMod for DPI/CTRL)
  /// (module, port-slot) pairs reading this net; slot indexes the module's
  /// combined input list (data inputs first, then ctrl inputs).
  std::vector<std::pair<ModId, unsigned>> sinks;
};

struct Module {
  std::string name;
  ModuleKind kind = ModuleKind::kConst;
  Stage stage = Stage::kGlobal;
  std::vector<NetId> data_in;  ///< data inputs, in port order
  std::vector<NetId> ctrl_in;  ///< control inputs (mux select, reg en/clr, we)
  NetId out = kNoNet;          ///< kNoNet for sink modules
  std::uint64_t param = 0;     ///< kConst value / kSlice low bit
  /// Opaque integer tag the model builder may attach (e.g. RF port number).
  std::uint64_t tag = 0;

  unsigned num_inputs() const {
    return static_cast<unsigned>(data_in.size() + ctrl_in.size());
  }
  /// Net at combined input slot i (data inputs first).
  NetId input(unsigned i) const {
    return i < data_in.size() ? data_in[i]
                              : ctrl_in[i - data_in.size()];
  }
  bool slot_is_ctrl(unsigned i) const { return i >= data_in.size(); }
};

class Netlist {
 public:
  NetId add_net(std::string name, unsigned width,
                Stage stage = Stage::kGlobal,
                NetRole role = NetRole::kInternal);
  ModId add_module(Module m);

  Net& net(NetId id) { return nets_[id]; }
  const Net& net(NetId id) const { return nets_[id]; }
  Module& module(ModId id) { return mods_[id]; }
  const Module& module(ModId id) const { return mods_[id]; }

  std::size_t num_nets() const { return nets_.size(); }
  std::size_t num_modules() const { return mods_.size(); }

  /// All nets with a given role.
  std::vector<NetId> nets_with_role(NetRole r) const;
  /// All module ids of a given kind.
  std::vector<ModId> modules_of_kind(ModuleKind k) const;

  /// Topological order of modules over combinational edges (register outputs
  /// and state-read outputs are sources). Computed lazily; invalidated by
  /// structural edits.
  const std::vector<ModId>& topo_order() const;

  /// Find a net by name; kNoNet if absent. Linear scan - for tests/tools.
  NetId find_net(const std::string& name) const;
  ModId find_module(const std::string& name) const;

  void invalidate_topo() { topo_.clear(); }

 private:
  std::vector<Net> nets_;
  std::vector<Module> mods_;
  mutable std::vector<ModId> topo_;
};

}  // namespace hltg
