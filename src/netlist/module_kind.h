// Module vocabulary of the word-level datapath IR.
//
// Sec. V.A of the paper classifies datapath modules into three categories
// that determine how controllability and observability propagate:
//
//  - ADD class:  output justifiable through any single input; if the output
//                is observable every input is observable (adder, subtractor,
//                X(N)OR word gates, and the predicate modules =, !=, <, <=,
//                >, >=, ADDOVF, SUBOVF).
//  - AND class:  all inputs must be controlled to justify the output; a side
//                input must be controlled to observe an input ((N)AND, (N)OR
//                word gates, shifters).
//  - MUX class:  control inputs select which data input is justified /
//                observed (multiplexers, tristate buffers).
//
// Complex modules (ALUs) are built as compositions of these primitives.
// A fourth, structural category covers registers, constants, bit-field
// plumbing and the architectural-state ports (register file / data memory),
// which the path-selection and relaxation engines treat specially.
#pragma once

#include <string_view>

namespace hltg {

enum class ModuleKind {
  // --- ADD class ------------------------------------------------------
  kAdd,     ///< y = a + b (mod 2^w)
  kSub,     ///< y = a - b (mod 2^w)
  kXorW,    ///< y = a ^ b
  kXnorW,   ///< y = ~(a ^ b)
  kEq,      ///< y = (a == b), 1-bit
  kNe,      ///< y = (a != b), 1-bit
  kLt,      ///< y = (a < b), signed, 1-bit
  kLe,      ///< y = (a <= b), signed, 1-bit
  kLtU,     ///< y = (a < b), unsigned, 1-bit
  kLeU,     ///< y = (a <= b), unsigned, 1-bit
  kAddOvf,  ///< y = signed-add overflow flag, 1-bit
  kSubOvf,  ///< y = signed-sub overflow flag, 1-bit
  // --- AND class ------------------------------------------------------
  kAndW,    ///< y = a & b
  kNandW,   ///< y = ~(a & b)
  kOrW,     ///< y = a | b
  kNorW,    ///< y = ~(a | b)
  kNotW,    ///< y = ~a  (degenerate AND-class: single input, invertible)
  kShl,     ///< y = a << b[log2(w)-1:0]
  kShrL,    ///< y = a >> b, logical
  kShrA,    ///< y = a >> b, arithmetic
  // --- MUX class ------------------------------------------------------
  kMux,     ///< y = inputs[sel]; one ctrl input of width ceil(log2 n)
  // --- structural -----------------------------------------------------
  kReg,     ///< data pipe register; ctrl inputs: enable (stall), clear (squash)
  kConst,   ///< y = param
  kSlice,   ///< y = a[param +: width(y)]
  kConcat,  ///< y = {a_{n-1}, ..., a_1, a_0}; a_0 is least significant
  kZext,    ///< y = zero-extend(a)
  kSext,    ///< y = sign-extend(a)
  kInput,   ///< DPI source (no inputs)
  kOutput,  ///< DPO sink (one input, no output)
  // --- architectural state ports ---------------------------------------
  kRfRead,   ///< y = RF[a]; a is the 5-bit specifier
  kRfWrite,  ///< RF[a] <- b when ctrl we=1 (sink)
  kMemRead,  ///< y = M[a & ~3] (aligned word); ctrl re
  kMemWrite, ///< M[a & ~3] <- b under 4-bit byte mask m when ctrl we=1 (sink)
};

enum class ModuleClass { kAddClass, kAndClass, kMuxClass, kStruct };

/// Paper classification of a module kind (Sec. V.A).
ModuleClass module_class(ModuleKind k);

/// True for the 1-bit predicate modules (placed in the ADD class).
bool is_predicate(ModuleKind k);

/// True for sink modules without an output net.
bool is_sink(ModuleKind k);

/// True for modules holding or accessing sequential state.
bool is_stateful(ModuleKind k);

std::string_view to_string(ModuleKind k);
std::string_view to_string(ModuleClass c);

}  // namespace hltg
