#include "netlist/check.h"

#include <sstream>

namespace hltg {

std::string CheckResult::summary() const {
  std::ostringstream os;
  os << errors.size() << " error(s)";
  for (const auto& e : errors) os << "\n  - " << e;
  return os.str();
}

namespace {
void expect(CheckResult& r, bool cond, const std::string& msg) {
  if (!cond) r.errors.push_back(msg);
}
}  // namespace

CheckResult check_netlist(const Netlist& nl) {
  CheckResult r;
  // Driver discipline.
  for (NetId i = 0; i < nl.num_nets(); ++i) {
    const Net& n = nl.net(i);
    const bool externally_driven =
        n.role == NetRole::kCtrl;  // controller supplies CTRL nets
    if (externally_driven) {
      expect(r, n.driver == kNoMod,
             "CTRL net '" + n.name + "' must not have a datapath driver");
    } else {
      expect(r, n.driver != kNoMod, "net '" + n.name + "' has no driver");
    }
    expect(r, n.width >= 1 && n.width <= 64,
           "net '" + n.name + "' has bad width");
  }
  // Per-module shape rules.
  for (ModId i = 0; i < nl.num_modules(); ++i) {
    const Module& m = nl.module(i);
    auto dw = [&](unsigned k) { return nl.net(m.data_in[k]).width; };
    auto ow = [&] { return nl.net(m.out).width; };
    switch (m.kind) {
      case ModuleKind::kAdd:
      case ModuleKind::kSub:
      case ModuleKind::kXorW:
      case ModuleKind::kXnorW:
      case ModuleKind::kAndW:
      case ModuleKind::kNandW:
      case ModuleKind::kOrW:
      case ModuleKind::kNorW:
        expect(r, m.data_in.size() == 2, m.name + ": needs 2 data inputs");
        if (m.data_in.size() == 2 && m.out != kNoNet)
          expect(r, dw(0) == dw(1) && dw(0) == ow(),
                 m.name + ": width mismatch");
        break;
      case ModuleKind::kEq:
      case ModuleKind::kNe:
      case ModuleKind::kLt:
      case ModuleKind::kLe:
      case ModuleKind::kLtU:
      case ModuleKind::kLeU:
      case ModuleKind::kAddOvf:
      case ModuleKind::kSubOvf:
        expect(r, m.data_in.size() == 2 && m.out != kNoNet && ow() == 1,
               m.name + ": predicate must be 2-in, 1-bit out");
        if (m.data_in.size() == 2)
          expect(r, dw(0) == dw(1), m.name + ": operand width mismatch");
        break;
      case ModuleKind::kNotW:
      case ModuleKind::kZext:
      case ModuleKind::kSext:
      case ModuleKind::kSlice:
        expect(r, m.data_in.size() == 1, m.name + ": needs 1 data input");
        break;
      case ModuleKind::kShl:
      case ModuleKind::kShrL:
      case ModuleKind::kShrA:
        expect(r, m.data_in.size() == 2, m.name + ": needs value + amount");
        break;
      case ModuleKind::kMux: {
        expect(r, m.data_in.size() >= 2, m.name + ": mux fan-in < 2");
        expect(r, m.ctrl_in.size() == 1, m.name + ": mux needs one select");
        if (m.ctrl_in.size() == 1) {
          unsigned need = 0;
          std::size_t c = 1;
          while (c < m.data_in.size()) {
            c <<= 1;
            ++need;
          }
          if (need == 0) need = 1;
          expect(r, nl.net(m.ctrl_in[0]).width == need,
                 m.name + ": select width mismatch");
        }
        break;
      }
      case ModuleKind::kReg:
        expect(r, m.data_in.size() == 1 && m.out != kNoNet,
               m.name + ": register shape");
        if (m.data_in.size() == 1 && m.out != kNoNet)
          expect(r, dw(0) == ow(), m.name + ": register width mismatch");
        break;
      case ModuleKind::kConst:
      case ModuleKind::kInput:
        expect(r, m.data_in.empty() && m.out != kNoNet,
               m.name + ": source shape");
        break;
      case ModuleKind::kOutput:
        expect(r, m.data_in.size() == 1 && m.out == kNoNet,
               m.name + ": sink shape");
        break;
      case ModuleKind::kConcat:
        expect(r, !m.data_in.empty(), m.name + ": empty concat");
        break;
      case ModuleKind::kRfRead:
        expect(r, m.data_in.size() == 1 && nl.net(m.data_in[0]).width == 5,
               m.name + ": rf read needs 5-bit specifier");
        break;
      case ModuleKind::kRfWrite:
        expect(r,
               m.data_in.size() == 2 && m.ctrl_in.size() == 1 &&
                   nl.net(m.data_in[0]).width == 5,
               m.name + ": rf write shape");
        break;
      case ModuleKind::kMemRead:
        expect(r, m.data_in.size() == 1 && m.ctrl_in.size() == 1,
               m.name + ": mem read shape");
        break;
      case ModuleKind::kMemWrite:
        expect(r, m.data_in.size() == 3 && m.ctrl_in.size() == 1,
               m.name + ": mem write shape");
        break;
    }
    // Ctrl inputs must come from the controller, except mux selects, which
    // may also be datapath-computed (data-dependent selection, e.g. the
    // byte-lane decode driven by the address offset).
    for (NetId c : m.ctrl_in) {
      const bool ok = nl.net(c).role == NetRole::kCtrl ||
                      (m.kind == ModuleKind::kMux && nl.net(c).driver != kNoMod);
      expect(r, ok,
             m.name + ": ctrl input '" + nl.net(c).name + "' not CTRL role");
    }
  }
  // Acyclicity (throws on cycle).
  try {
    (void)nl.topo_order();
  } catch (const std::exception& e) {
    r.errors.emplace_back(e.what());
  }
  return r;
}

}  // namespace hltg
