// Static controllability / observability cost measures.
//
// Sec. V.A: "We have adapted gate-level controllability and observability
// measures [Abramovici] for our problem." These per-net integer costs guide
// DPTRACE's backtrace ordering (cheapest justification / propagation path
// first). They are heuristic only - correctness never depends on them.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace hltg {

/// Saturating cost; kInfCost means "no static way found".
using Cost = std::uint32_t;
constexpr Cost kInfCost = 0x3fffffff;

Cost cost_add(Cost a, Cost b);

struct ScoapCosts {
  std::vector<Cost> cc;  ///< per-net controllability cost
  std::vector<Cost> co;  ///< per-net observability cost
};

/// Compute costs over the static (one-copy) netlist. Registers count as one
/// extra time step; state reads (RF/memory) are cheap sources. CTRL nets get
/// cc = 1 (the controller justifies them; CTRLJUST has its own search).
ScoapCosts compute_scoap(const Netlist& nl);

}  // namespace hltg
