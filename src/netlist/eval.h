// Combinational evaluation of word-level datapath modules.
//
// Both the cycle-accurate implementation simulator (src/sim) and the
// discrete-relaxation value solver (src/core/dprelax) evaluate modules with
// this single definition of module semantics, so the two can never diverge.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace hltg {

/// Evaluate a combinational module. `in` holds values for the *data* inputs
/// in port order, `ctrl` for the ctrl inputs in port order; each already
/// truncated to its net width. Returns the output value truncated to
/// `out_width`. Must not be called for kReg/kInput or sink/state modules.
std::uint64_t eval_comb(const Netlist& nl, const Module& m,
                        const std::vector<std::uint64_t>& in,
                        const std::vector<std::uint64_t>& ctrl);

/// True if `eval_comb` handles this kind.
bool is_comb_evaluable(ModuleKind k);

}  // namespace hltg
