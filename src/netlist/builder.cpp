#include "netlist/builder.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace hltg {

namespace {
unsigned sel_width_for(std::size_t n) {
  unsigned w = 0;
  std::size_t c = 1;
  while (c < n) {
    c <<= 1;
    ++w;
  }
  return w == 0 ? 1 : w;
}
}  // namespace

NetId NetlistBuilder::out_net(const std::string& name, unsigned width) {
  return nl_.add_net(name, width, stage_);
}

NetId NetlistBuilder::input(const std::string& name, unsigned width) {
  NetId n = nl_.add_net(name, width, stage_, NetRole::kDPI);
  Module m;
  m.name = name + ".src";
  m.kind = ModuleKind::kInput;
  m.stage = stage_;
  m.out = n;
  nl_.add_module(std::move(m));
  return n;
}

NetId NetlistBuilder::ctrl(const std::string& name, unsigned width) {
  // CTRL nets have no datapath driver; the controller supplies their value.
  return nl_.add_net(name, width, stage_, NetRole::kCtrl);
}

NetId NetlistBuilder::constant(const std::string& name, unsigned width,
                               std::uint64_t v) {
  NetId n = out_net(name, width);
  Module m;
  m.name = name + ".const";
  m.kind = ModuleKind::kConst;
  m.stage = stage_;
  m.out = n;
  m.param = v;
  nl_.add_module(std::move(m));
  return n;
}

NetId NetlistBuilder::binary(const std::string& name, ModuleKind k, NetId a,
                             NetId b, unsigned out_width) {
  NetId y = out_net(name, out_width);
  Module m;
  m.name = name;
  m.kind = k;
  m.stage = stage_;
  m.data_in = {a, b};
  m.out = y;
  nl_.add_module(std::move(m));
  return y;
}

NetId NetlistBuilder::add(const std::string& name, NetId a, NetId b) {
  assert(nl_.net(a).width == nl_.net(b).width);
  return binary(name, ModuleKind::kAdd, a, b, nl_.net(a).width);
}
NetId NetlistBuilder::sub(const std::string& name, NetId a, NetId b) {
  assert(nl_.net(a).width == nl_.net(b).width);
  return binary(name, ModuleKind::kSub, a, b, nl_.net(a).width);
}
NetId NetlistBuilder::xor_w(const std::string& name, NetId a, NetId b) {
  return binary(name, ModuleKind::kXorW, a, b, nl_.net(a).width);
}
NetId NetlistBuilder::xnor_w(const std::string& name, NetId a, NetId b) {
  return binary(name, ModuleKind::kXnorW, a, b, nl_.net(a).width);
}
NetId NetlistBuilder::predicate(const std::string& name, ModuleKind k, NetId a,
                                NetId b) {
  assert(is_predicate(k));
  return binary(name, k, a, b, 1);
}
NetId NetlistBuilder::and_w(const std::string& name, NetId a, NetId b) {
  return binary(name, ModuleKind::kAndW, a, b, nl_.net(a).width);
}
NetId NetlistBuilder::or_w(const std::string& name, NetId a, NetId b) {
  return binary(name, ModuleKind::kOrW, a, b, nl_.net(a).width);
}
NetId NetlistBuilder::nand_w(const std::string& name, NetId a, NetId b) {
  return binary(name, ModuleKind::kNandW, a, b, nl_.net(a).width);
}
NetId NetlistBuilder::nor_w(const std::string& name, NetId a, NetId b) {
  return binary(name, ModuleKind::kNorW, a, b, nl_.net(a).width);
}
NetId NetlistBuilder::not_w(const std::string& name, NetId a) {
  NetId y = out_net(name, nl_.net(a).width);
  Module m;
  m.name = name;
  m.kind = ModuleKind::kNotW;
  m.stage = stage_;
  m.data_in = {a};
  m.out = y;
  nl_.add_module(std::move(m));
  return y;
}
NetId NetlistBuilder::shl(const std::string& name, NetId a, NetId amount) {
  return binary(name, ModuleKind::kShl, a, amount, nl_.net(a).width);
}
NetId NetlistBuilder::shr_l(const std::string& name, NetId a, NetId amount) {
  return binary(name, ModuleKind::kShrL, a, amount, nl_.net(a).width);
}
NetId NetlistBuilder::shr_a(const std::string& name, NetId a, NetId amount) {
  return binary(name, ModuleKind::kShrA, a, amount, nl_.net(a).width);
}

NetId NetlistBuilder::mux(const std::string& name, NetId sel,
                          std::vector<NetId> inputs) {
  if (inputs.empty()) throw std::logic_error("mux with no inputs");
  const unsigned w = nl_.net(inputs[0]).width;
  for (NetId in : inputs)
    if (nl_.net(in).width != w)
      throw std::logic_error("mux '" + name + "': input width mismatch");
  if (nl_.net(sel).width != sel_width_for(inputs.size()))
    throw std::logic_error("mux '" + name + "': select width mismatch");
  NetId y = out_net(name, w);
  Module m;
  m.name = name;
  m.kind = ModuleKind::kMux;
  m.stage = stage_;
  m.data_in = std::move(inputs);
  m.ctrl_in = {sel};
  m.out = y;
  nl_.add_module(std::move(m));
  return y;
}

NetId NetlistBuilder::slice(const std::string& name, NetId a, unsigned lo,
                            unsigned width) {
  assert(lo + width <= nl_.net(a).width);
  NetId y = out_net(name, width);
  Module m;
  m.name = name;
  m.kind = ModuleKind::kSlice;
  m.stage = stage_;
  m.data_in = {a};
  m.out = y;
  m.param = lo;
  nl_.add_module(std::move(m));
  return y;
}

NetId NetlistBuilder::concat(const std::string& name,
                             std::vector<NetId> parts) {
  unsigned w = 0;
  for (NetId p : parts) w += nl_.net(p).width;
  NetId y = out_net(name, w);
  Module m;
  m.name = name;
  m.kind = ModuleKind::kConcat;
  m.stage = stage_;
  m.data_in = std::move(parts);
  m.out = y;
  nl_.add_module(std::move(m));
  return y;
}

NetId NetlistBuilder::zext(const std::string& name, NetId a, unsigned width) {
  assert(width >= nl_.net(a).width);
  NetId y = out_net(name, width);
  Module m;
  m.name = name;
  m.kind = ModuleKind::kZext;
  m.stage = stage_;
  m.data_in = {a};
  m.out = y;
  nl_.add_module(std::move(m));
  return y;
}

NetId NetlistBuilder::sext(const std::string& name, NetId a, unsigned width) {
  assert(width >= nl_.net(a).width);
  NetId y = out_net(name, width);
  Module m;
  m.name = name;
  m.kind = ModuleKind::kSext;
  m.stage = stage_;
  m.data_in = {a};
  m.out = y;
  nl_.add_module(std::move(m));
  return y;
}

NetId NetlistBuilder::reg(const std::string& name, NetId d, NetId enable,
                          NetId clear, std::uint64_t reset_value) {
  NetId q = nl_.add_net(name, nl_.net(d).width, stage_, NetRole::kDSO);
  // The register's D-side net keeps its existing role; mark it secondary
  // input if it was unlabeled internal wiring.
  if (nl_.net(d).role == NetRole::kInternal) nl_.net(d).role = NetRole::kDSI;
  Module m;
  m.name = name + ".reg";
  m.kind = ModuleKind::kReg;
  m.stage = stage_;
  m.data_in = {d};
  if (enable != kNoNet) m.ctrl_in.push_back(enable);
  if (clear != kNoNet) m.ctrl_in.push_back(clear);
  m.out = q;
  m.param = reset_value;
  // tag encodes which optional controls are present: bit0 enable, bit1 clear.
  m.tag = (enable != kNoNet ? 1u : 0u) | (clear != kNoNet ? 2u : 0u);
  nl_.add_module(std::move(m));
  return q;
}

NetId NetlistBuilder::predeclare(const std::string& name, unsigned width,
                                 NetRole role) {
  return nl_.add_net(name, width, stage_, role);
}

void NetlistBuilder::reg_into(NetId q, const std::string& name, NetId d,
                              NetId enable, NetId clear,
                              std::uint64_t reset_value) {
  assert(nl_.net(q).width == nl_.net(d).width);
  if (nl_.net(d).role == NetRole::kInternal) nl_.net(d).role = NetRole::kDSI;
  Module m;
  m.name = name + ".reg";
  m.kind = ModuleKind::kReg;
  m.stage = nl_.net(q).stage;
  m.data_in = {d};
  if (enable != kNoNet) m.ctrl_in.push_back(enable);
  if (clear != kNoNet) m.ctrl_in.push_back(clear);
  m.out = q;
  m.param = reset_value;
  m.tag = (enable != kNoNet ? 1u : 0u) | (clear != kNoNet ? 2u : 0u);
  nl_.add_module(std::move(m));
}

void NetlistBuilder::output(const std::string& name, NetId a) {
  nl_.net(a).role = NetRole::kDPO;
  Module m;
  m.name = name + ".sink";
  m.kind = ModuleKind::kOutput;
  m.stage = stage_;
  m.data_in = {a};
  nl_.add_module(std::move(m));
}

NetId NetlistBuilder::rf_read(const std::string& name, NetId addr,
                              unsigned tag) {
  NetId y = out_net(name, 32);
  Module m;
  m.name = name;
  m.kind = ModuleKind::kRfRead;
  m.stage = stage_;
  m.data_in = {addr};
  m.out = y;
  m.tag = tag;
  nl_.add_module(std::move(m));
  return y;
}

void NetlistBuilder::rf_write(const std::string& name, NetId addr, NetId data,
                              NetId we) {
  Module m;
  m.name = name;
  m.kind = ModuleKind::kRfWrite;
  m.stage = stage_;
  m.data_in = {addr, data};
  m.ctrl_in = {we};
  nl_.add_module(std::move(m));
}

NetId NetlistBuilder::mem_read(const std::string& name, NetId addr, NetId re) {
  NetId y = out_net(name, 32);
  Module m;
  m.name = name;
  m.kind = ModuleKind::kMemRead;
  m.stage = stage_;
  m.data_in = {addr};
  m.ctrl_in = {re};
  m.out = y;
  nl_.add_module(std::move(m));
  return y;
}

void NetlistBuilder::mem_write(const std::string& name, NetId addr, NetId data,
                               NetId bemask, NetId we) {
  Module m;
  m.name = name;
  m.kind = ModuleKind::kMemWrite;
  m.stage = stage_;
  m.data_in = {addr, data, bemask};
  m.ctrl_in = {we};
  nl_.add_module(std::move(m));
}

void NetlistBuilder::mark_status(NetId n) {
  assert(nl_.net(n).width == 1);
  nl_.net(n).role = NetRole::kSts;
}

void NetlistBuilder::set_role(NetId n, NetRole r) { nl_.net(n).role = r; }

}  // namespace hltg
