#include "netlist/scoap.h"

#include <algorithm>

namespace hltg {

Cost cost_add(Cost a, Cost b) {
  const std::uint64_t s = std::uint64_t{a} + b;
  return s >= kInfCost ? kInfCost : static_cast<Cost>(s);
}

namespace {

/// Controllability cost of module output given input costs.
Cost cc_of_module(const Module& m, const std::vector<Cost>& cc) {
  auto in_cc = [&](NetId n) { return cc[n]; };
  switch (module_class(m.kind)) {
    case ModuleClass::kAddClass: {
      Cost best = kInfCost;
      for (NetId n : m.data_in) best = std::min(best, in_cc(n));
      return cost_add(best, 1);
    }
    case ModuleClass::kAndClass: {
      Cost sum = 1;
      for (NetId n : m.data_in) sum = cost_add(sum, in_cc(n));
      return sum;
    }
    case ModuleClass::kMuxClass: {
      Cost best = kInfCost;
      for (NetId n : m.data_in) best = std::min(best, in_cc(n));
      return cost_add(cost_add(best, in_cc(m.ctrl_in[0])), 1);
    }
    case ModuleClass::kStruct:
      switch (m.kind) {
        case ModuleKind::kInput:
          return 1;
        case ModuleKind::kConst:
          return kInfCost;  // fixed value: cannot control to arbitrary value
        case ModuleKind::kReg:
          // One extra time frame plus any enable/clear control cost.
          {
            Cost c = cost_add(in_cc(m.data_in[0]), 2);
            for (NetId ctl : m.ctrl_in) c = cost_add(c, cc[ctl]);
            return c;
          }
        case ModuleKind::kSlice:
        case ModuleKind::kZext:
        case ModuleKind::kSext:
        case ModuleKind::kNotW:
          return cost_add(in_cc(m.data_in[0]), 1);
        case ModuleKind::kConcat: {
          Cost sum = 1;
          for (NetId n : m.data_in) sum = cost_add(sum, in_cc(n));
          return sum;
        }
        case ModuleKind::kRfRead:
          return cost_add(in_cc(m.data_in[0]), 2);  // specifier + free state
        case ModuleKind::kMemRead:
          return cost_add(cost_add(in_cc(m.data_in[0]), cc[m.ctrl_in[0]]), 3);
        default:
          return kInfCost;
      }
  }
  return kInfCost;
}

}  // namespace

ScoapCosts compute_scoap(const Netlist& nl) {
  ScoapCosts sc;
  sc.cc.assign(nl.num_nets(), kInfCost);
  sc.co.assign(nl.num_nets(), kInfCost);

  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const NetRole r = nl.net(n).role;
    if (r == NetRole::kCtrl || r == NetRole::kDPI) sc.cc[n] = 1;
  }

  // Controllability: iterate to a fixed point (the graph may place register
  // outputs before their drivers in id order; a few sweeps converge since
  // costs only decrease).
  bool changed = true;
  int sweeps = 0;
  while (changed && sweeps++ < 64) {
    changed = false;
    for (ModId mi = 0; mi < nl.num_modules(); ++mi) {
      const Module& m = nl.module(mi);
      if (m.out == kNoNet) continue;
      const Cost c = cc_of_module(m, sc.cc);
      if (c < sc.cc[m.out]) {
        sc.cc[m.out] = c;
        changed = true;
      }
    }
  }

  // Observability: DPO nets cost 0; walk backwards to a fixed point.
  for (NetId n = 0; n < nl.num_nets(); ++n)
    if (nl.net(n).role == NetRole::kDPO) sc.co[n] = 0;
  changed = true;
  sweeps = 0;
  while (changed && sweeps++ < 64) {
    changed = false;
    for (ModId mi = 0; mi < nl.num_modules(); ++mi) {
      const Module& m = nl.module(mi);
      if (m.out == kNoNet) {
        // Sinks: RfWrite/MemWrite data become observable via later reads /
        // memory trace. Treat memory write data as directly observable.
        if (m.kind == ModuleKind::kMemWrite) {
          for (NetId n : m.data_in)
            if (sc.co[n] > 1) {
              sc.co[n] = 1;
              changed = true;
            }
        } else if (m.kind == ModuleKind::kRfWrite) {
          for (NetId n : m.data_in)
            if (sc.co[n] > 4) {
              sc.co[n] = 4;  // needs a consuming instruction + store
              changed = true;
            }
        }
        continue;
      }
      const Cost oy = sc.co[m.out];
      if (oy >= kInfCost) continue;
      // Cost to observe input i: oy + 1 + cost of setting up side inputs.
      for (std::size_t i = 0; i < m.data_in.size(); ++i) {
        Cost c = cost_add(oy, 1);
        switch (module_class(m.kind)) {
          case ModuleClass::kAndClass:
            for (std::size_t j = 0; j < m.data_in.size(); ++j)
              if (j != i) c = cost_add(c, sc.cc[m.data_in[j]]);
            break;
          case ModuleClass::kMuxClass:
            c = cost_add(c, sc.cc[m.ctrl_in[0]]);
            break;
          default:
            break;  // ADD class / structural: no side setup cost
        }
        if (m.kind == ModuleKind::kReg) c = cost_add(c, 1);
        if (c < sc.co[m.data_in[i]]) {
          sc.co[m.data_in[i]] = c;
          changed = true;
        }
      }
    }
  }
  return sc;
}

}  // namespace hltg
