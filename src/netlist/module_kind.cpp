#include "netlist/module_kind.h"

namespace hltg {

ModuleClass module_class(ModuleKind k) {
  switch (k) {
    case ModuleKind::kAdd:
    case ModuleKind::kSub:
    case ModuleKind::kXorW:
    case ModuleKind::kXnorW:
    case ModuleKind::kEq:
    case ModuleKind::kNe:
    case ModuleKind::kLt:
    case ModuleKind::kLe:
    case ModuleKind::kLtU:
    case ModuleKind::kLeU:
    case ModuleKind::kAddOvf:
    case ModuleKind::kSubOvf:
      return ModuleClass::kAddClass;
    case ModuleKind::kAndW:
    case ModuleKind::kNandW:
    case ModuleKind::kOrW:
    case ModuleKind::kNorW:
    case ModuleKind::kNotW:
    case ModuleKind::kShl:
    case ModuleKind::kShrL:
    case ModuleKind::kShrA:
      return ModuleClass::kAndClass;
    case ModuleKind::kMux:
      return ModuleClass::kMuxClass;
    default:
      return ModuleClass::kStruct;
  }
}

bool is_predicate(ModuleKind k) {
  switch (k) {
    case ModuleKind::kEq:
    case ModuleKind::kNe:
    case ModuleKind::kLt:
    case ModuleKind::kLe:
    case ModuleKind::kLtU:
    case ModuleKind::kLeU:
    case ModuleKind::kAddOvf:
    case ModuleKind::kSubOvf:
      return true;
    default:
      return false;
  }
}

bool is_sink(ModuleKind k) {
  return k == ModuleKind::kOutput || k == ModuleKind::kRfWrite ||
         k == ModuleKind::kMemWrite;
}

bool is_stateful(ModuleKind k) {
  return k == ModuleKind::kReg || k == ModuleKind::kRfRead ||
         k == ModuleKind::kRfWrite || k == ModuleKind::kMemRead ||
         k == ModuleKind::kMemWrite;
}

std::string_view to_string(ModuleKind k) {
  switch (k) {
    case ModuleKind::kAdd: return "ADD";
    case ModuleKind::kSub: return "SUB";
    case ModuleKind::kXorW: return "XORW";
    case ModuleKind::kXnorW: return "XNORW";
    case ModuleKind::kEq: return "EQ";
    case ModuleKind::kNe: return "NE";
    case ModuleKind::kLt: return "LT";
    case ModuleKind::kLe: return "LE";
    case ModuleKind::kLtU: return "LTU";
    case ModuleKind::kLeU: return "LEU";
    case ModuleKind::kAddOvf: return "ADDOVF";
    case ModuleKind::kSubOvf: return "SUBOVF";
    case ModuleKind::kAndW: return "ANDW";
    case ModuleKind::kNandW: return "NANDW";
    case ModuleKind::kOrW: return "ORW";
    case ModuleKind::kNorW: return "NORW";
    case ModuleKind::kNotW: return "NOTW";
    case ModuleKind::kShl: return "SHL";
    case ModuleKind::kShrL: return "SHRL";
    case ModuleKind::kShrA: return "SHRA";
    case ModuleKind::kMux: return "MUX";
    case ModuleKind::kReg: return "REG";
    case ModuleKind::kConst: return "CONST";
    case ModuleKind::kSlice: return "SLICE";
    case ModuleKind::kConcat: return "CONCAT";
    case ModuleKind::kZext: return "ZEXT";
    case ModuleKind::kSext: return "SEXT";
    case ModuleKind::kInput: return "INPUT";
    case ModuleKind::kOutput: return "OUTPUT";
    case ModuleKind::kRfRead: return "RFREAD";
    case ModuleKind::kRfWrite: return "RFWRITE";
    case ModuleKind::kMemRead: return "MEMREAD";
    case ModuleKind::kMemWrite: return "MEMWRITE";
  }
  return "?";
}

std::string_view to_string(ModuleClass c) {
  switch (c) {
    case ModuleClass::kAddClass: return "ADD-class";
    case ModuleClass::kAndClass: return "AND-class";
    case ModuleClass::kMuxClass: return "MUX-class";
    case ModuleClass::kStruct: return "structural";
  }
  return "?";
}

}  // namespace hltg
