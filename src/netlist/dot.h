// Graphviz export of the word-level datapath: one cluster per pipeline
// stage, modules as nodes (shaped by class), buses as edges labeled with
// their width. Handy for documentation and model reviews.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace hltg {

std::string export_datapath_dot(const Netlist& nl);

}  // namespace hltg
