// Convenience EDSL for constructing word-level datapath netlists.
//
// The DLX model builder (src/dlx) composes the whole datapath out of these
// calls; tests use them to build small circuits. Every helper creates the
// output net, names it, labels it with the builder's current stage, and
// returns its NetId.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace hltg {

class NetlistBuilder {
 public:
  explicit NetlistBuilder(Netlist& nl) : nl_(nl) {}

  /// Subsequent helpers label nets/modules with this stage.
  void set_stage(Stage s) { stage_ = s; }
  Stage stage() const { return stage_; }

  // --- sources ---------------------------------------------------------
  NetId input(const std::string& name, unsigned width);          ///< DPI
  NetId ctrl(const std::string& name, unsigned width);           ///< CTRL from controller
  NetId constant(const std::string& name, unsigned width, std::uint64_t v);

  // --- ADD class -------------------------------------------------------
  NetId add(const std::string& name, NetId a, NetId b);
  NetId sub(const std::string& name, NetId a, NetId b);
  NetId xor_w(const std::string& name, NetId a, NetId b);
  NetId xnor_w(const std::string& name, NetId a, NetId b);
  NetId predicate(const std::string& name, ModuleKind k, NetId a, NetId b);

  // --- AND class -------------------------------------------------------
  NetId and_w(const std::string& name, NetId a, NetId b);
  NetId or_w(const std::string& name, NetId a, NetId b);
  NetId nand_w(const std::string& name, NetId a, NetId b);
  NetId nor_w(const std::string& name, NetId a, NetId b);
  NetId not_w(const std::string& name, NetId a);
  NetId shl(const std::string& name, NetId a, NetId amount);
  NetId shr_l(const std::string& name, NetId a, NetId amount);
  NetId shr_a(const std::string& name, NetId a, NetId amount);

  // --- MUX class -------------------------------------------------------
  /// n-way mux; sel width must be ceil(log2(n)) (1 for n==2).
  NetId mux(const std::string& name, NetId sel, std::vector<NetId> inputs);

  // --- structural ------------------------------------------------------
  NetId slice(const std::string& name, NetId a, unsigned lo, unsigned width);
  NetId concat(const std::string& name, std::vector<NetId> parts);
  NetId zext(const std::string& name, NetId a, unsigned width);
  NetId sext(const std::string& name, NetId a, unsigned width);
  /// Pipe register with stall (enable, active-high "advance") and squash
  /// (synchronous clear) controls. Pass kNoNet to omit a control.
  NetId reg(const std::string& name, NetId d, NetId enable = kNoNet,
            NetId clear = kNoNet, std::uint64_t reset_value = 0);
  void output(const std::string& name, NetId a);                 ///< DPO sink

  /// Forward references: declare a net now, attach its driving register
  /// later (used for the PC and the bypass buses, whose consumers are built
  /// before their producers).
  NetId predeclare(const std::string& name, unsigned width,
                   NetRole role = NetRole::kDSO);
  void reg_into(NetId q, const std::string& name, NetId d,
                NetId enable = kNoNet, NetId clear = kNoNet,
                std::uint64_t reset_value = 0);

  // --- architectural state ---------------------------------------------
  NetId rf_read(const std::string& name, NetId addr, unsigned tag);
  void rf_write(const std::string& name, NetId addr, NetId data, NetId we);
  NetId mem_read(const std::string& name, NetId addr, NetId re);
  void mem_write(const std::string& name, NetId addr, NetId data, NetId bemask,
                 NetId we);

  /// Mark a net as a status output to the controller (must be 1-bit).
  void mark_status(NetId n);
  /// Relabel a net's role (e.g. tertiary bypass source kDTO / dest kDTI).
  void set_role(NetId n, NetRole r);

  Netlist& netlist() { return nl_; }

 private:
  NetId out_net(const std::string& name, unsigned width);
  NetId binary(const std::string& name, ModuleKind k, NetId a, NetId b,
               unsigned out_width);

  Netlist& nl_;
  Stage stage_ = Stage::kGlobal;
};

}  // namespace hltg
