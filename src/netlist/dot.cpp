#include "netlist/dot.h"

#include <sstream>

namespace hltg {

namespace {

const char* shape_for(ModuleKind k) {
  switch (module_class(k)) {
    case ModuleClass::kAddClass: return "ellipse";
    case ModuleClass::kAndClass: return "hexagon";
    case ModuleClass::kMuxClass: return "trapezium";
    case ModuleClass::kStruct:
      return k == ModuleKind::kReg ? "box" : "plaintext";
  }
  return "ellipse";
}

std::string node_id(ModId m) { return "m" + std::to_string(m); }

}  // namespace

std::string export_datapath_dot(const Netlist& nl) {
  std::ostringstream os;
  os << "digraph dlx_datapath {\n  rankdir=LR;\n  node [fontsize=9];\n";

  for (int s = 0; s <= kNumStages; ++s) {
    const Stage st = static_cast<Stage>(s);
    os << "  subgraph cluster_" << s << " {\n    label=\"" << to_string(st)
       << "\";\n";
    for (ModId m = 0; m < nl.num_modules(); ++m) {
      const Module& mod = nl.module(m);
      if (mod.stage != st) continue;
      os << "    " << node_id(m) << " [label=\"" << mod.name << "\\n"
         << to_string(mod.kind) << "\", shape=" << shape_for(mod.kind)
         << "];\n";
    }
    os << "  }\n";
  }

  // Edges: driver module -> sink module, labeled with the bus name/width.
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const Net& net = nl.net(n);
    if (net.driver == kNoMod) continue;  // DPI/CTRL: no datapath driver
    for (auto [sink, slot] : net.sinks) {
      (void)slot;
      os << "  " << node_id(net.driver) << " -> " << node_id(sink)
         << " [label=\"" << net.name << ":" << net.width << "\"";
      if (net.role == NetRole::kDTO || net.role == NetRole::kDTI)
        os << ", color=red, penwidth=2";  // tertiary buses stand out
      os << "];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace hltg
