#include "netlist/netlist.h"

#include <cassert>
#include <stdexcept>

namespace hltg {

std::string_view to_string(Stage s) {
  switch (s) {
    case Stage::kIF: return "IF";
    case Stage::kID: return "ID";
    case Stage::kEX: return "EX";
    case Stage::kMEM: return "MEM";
    case Stage::kWB: return "WB";
    case Stage::kGlobal: return "G";
  }
  return "?";
}

std::string_view to_string(NetRole r) {
  switch (r) {
    case NetRole::kInternal: return "int";
    case NetRole::kDPI: return "DPI";
    case NetRole::kDPO: return "DPO";
    case NetRole::kDSI: return "DSI";
    case NetRole::kDSO: return "DSO";
    case NetRole::kDTI: return "DTI";
    case NetRole::kDTO: return "DTO";
    case NetRole::kCtrl: return "CTRL";
    case NetRole::kSts: return "STS";
  }
  return "?";
}

NetId Netlist::add_net(std::string name, unsigned width, Stage stage,
                       NetRole role) {
  Net n;
  n.name = std::move(name);
  n.width = width;
  n.stage = stage;
  n.role = role;
  nets_.push_back(std::move(n));
  invalidate_topo();
  return static_cast<NetId>(nets_.size() - 1);
}

ModId Netlist::add_module(Module m) {
  const ModId id = static_cast<ModId>(mods_.size());
  unsigned slot = 0;
  for (NetId in : m.data_in) {
    assert(in != kNoNet);
    nets_[in].sinks.emplace_back(id, slot++);
  }
  for (NetId in : m.ctrl_in) {
    assert(in != kNoNet);
    nets_[in].sinks.emplace_back(id, slot++);
  }
  if (m.out != kNoNet) {
    if (nets_[m.out].driver != kNoMod)
      throw std::logic_error("net '" + nets_[m.out].name +
                             "' has multiple drivers");
    nets_[m.out].driver = id;
  }
  mods_.push_back(std::move(m));
  invalidate_topo();
  return id;
}

std::vector<NetId> Netlist::nets_with_role(NetRole r) const {
  std::vector<NetId> out;
  for (NetId i = 0; i < nets_.size(); ++i)
    if (nets_[i].role == r) out.push_back(i);
  return out;
}

std::vector<ModId> Netlist::modules_of_kind(ModuleKind k) const {
  std::vector<ModId> out;
  for (ModId i = 0; i < mods_.size(); ++i)
    if (mods_[i].kind == k) out.push_back(i);
  return out;
}

const std::vector<ModId>& Netlist::topo_order() const {
  if (!topo_.empty() || mods_.empty()) return topo_;
  // Kahn's algorithm over combinational edges only: an edge runs from the
  // driver of an input net to the module, unless the driver is sequential
  // (register / state read), whose output is a cycle-boundary source.
  std::vector<unsigned> indeg(mods_.size(), 0);
  auto comb_edge_from = [&](NetId in) -> ModId {
    const ModId d = nets_[in].driver;
    if (d == kNoMod) return kNoMod;
    const ModuleKind dk = mods_[d].kind;
    if (dk == ModuleKind::kReg || dk == ModuleKind::kRfRead ||
        dk == ModuleKind::kMemRead)
      return kNoMod;  // sequential boundary
    return d;
  };
  for (ModId m = 0; m < mods_.size(); ++m) {
    for (unsigned i = 0; i < mods_[m].num_inputs(); ++i)
      if (comb_edge_from(mods_[m].input(i)) != kNoMod) ++indeg[m];
  }
  std::vector<ModId> queue;
  for (ModId m = 0; m < mods_.size(); ++m)
    if (indeg[m] == 0) queue.push_back(m);
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const ModId m = queue[qi];
    topo_.push_back(m);
    if (mods_[m].out == kNoNet) continue;
    for (auto [sink, slot] : nets_[mods_[m].out].sinks) {
      (void)slot;
      if (comb_edge_from(mods_[m].out) == kNoMod) continue;
      if (--indeg[sink] == 0) queue.push_back(sink);
    }
  }
  if (topo_.size() != mods_.size())
    throw std::logic_error("combinational cycle in datapath netlist");
  return topo_;
}

NetId Netlist::find_net(const std::string& name) const {
  for (NetId i = 0; i < nets_.size(); ++i)
    if (nets_[i].name == name) return i;
  return kNoNet;
}

ModId Netlist::find_module(const std::string& name) const {
  for (ModId i = 0; i < mods_.size(); ++i)
    if (mods_[i].name == name) return i;
  return kNoMod;
}

}  // namespace hltg
