#include "baseline/timeframe.h"

#include <algorithm>
#include <map>

#include "gatenet/eval3.h"

namespace hltg {

TimeframeJust::TimeframeJust(const GateNet& gn, unsigned cycles,
                             TimeframeConfig cfg)
    : gn_(gn), T_(cycles), cfg_(cfg) {}

bool TimeframeJust::solve_frame(const std::vector<FrameObjective>& objs,
                                bool frame0,
                                std::vector<FrameObjective>* state_out,
                                TimeframeResult* stats) {
  // Free variables: kVar gates, plus kDff outputs when not frame 0.
  std::vector<L3> assign(gn_.num_gates(), L3::X);
  std::vector<L3> vals(gn_.num_gates(), L3::X);
  auto is_free = [&](GateId g) {
    const GateKind k = gn_.gate(g).kind;
    if (k == GateKind::kVar) return true;
    if (k == GateKind::kDff) return !frame0;
    return false;
  };
  auto imply = [&] {
    ++stats->implications;
    for (GateId g = 0; g < gn_.num_gates(); ++g) {
      const Gate& gate = gn_.gate(g);
      if (gate.kind == GateKind::kDff)
        vals[g] = frame0 ? l3_from_bool(gate.reset_value) : assign[g];
      else if (gate.kind == GateKind::kVar)
        vals[g] = assign[g];
    }
    eval_cycle3(gn_, vals);
  };

  struct Decision {
    GateId gate;
    bool value;
    bool flipped;
  };
  std::vector<Decision> stack;

  auto backtrace = [&](GateId g, bool v, Decision* out) -> bool {
    for (int guard = 0; guard < 100000; ++guard) {
      const Gate& gate = gn_.gate(g);
      if (is_free(g)) {
        if (vals[g] != L3::X) return false;
        *out = {g, v, false};
        return true;
      }
      switch (gate.kind) {
        case GateKind::kDff:  // frame0: pinned to reset
          return false;
        case GateKind::kBuf:
          g = gate.fanin[0];
          break;
        case GateKind::kNot:
          g = gate.fanin[0];
          v = !v;
          break;
        case GateKind::kAnd:
        case GateKind::kOr: {
          GateId pick = kNoGate;
          for (GateId in : gate.fanin)
            if (vals[in] == L3::X) {
              pick = in;
              break;
            }
          if (pick == kNoGate) return false;
          g = pick;
          break;
        }
        case GateKind::kXor: {
          const L3 a = vals[gate.fanin[0]], b = vals[gate.fanin[1]];
          if (a == L3::X) {
            if (b != L3::X) v = v != (b == L3::T);
            g = gate.fanin[0];
          } else if (b == L3::X) {
            v = v != (a == L3::T);
            g = gate.fanin[1];
          } else {
            return false;
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;
  };

  std::uint64_t frame_backtracks = 0;
  imply();
  for (;;) {
    if (frame_backtracks > cfg_.max_backtracks_per_frame ||
        stats->decisions > cfg_.max_decisions)
      return false;
    bool violated = false;
    const FrameObjective* open = nullptr;
    for (const FrameObjective& o : objs) {
      const L3 v = vals[o.gate];
      if (v == L3::X) {
        if (!open) open = &o;
      } else if ((v == L3::T) != o.value) {
        violated = true;
        break;
      }
    }
    Decision next{};
    bool have = false;
    if (!violated) {
      if (!open) break;  // all satisfied
      have = backtrace(open->gate, open->value, &next);
      if (!have) violated = true;
    }
    if (violated) {
      ++stats->backtracks;
      ++frame_backtracks;
      bool resumed = false;
      while (!stack.empty()) {
        Decision& d = stack.back();
        assign[d.gate] = L3::X;
        if (!d.flipped) {
          d.flipped = true;
          d.value = !d.value;
          assign[d.gate] = l3_from_bool(d.value);
          resumed = true;
          break;
        }
        stack.pop_back();
      }
      if (!resumed) return false;
      imply();
      continue;
    }
    ++stats->decisions;
    assign[next.gate] = l3_from_bool(next.value);
    stack.push_back(next);
    imply();
  }

  // Export decided state bits as previous-frame obligations.
  for (GateId g = 0; g < gn_.num_gates(); ++g)
    if (gn_.gate(g).kind == GateKind::kDff && assign[g] != L3::X) {
      ++stats->state_bits_decided;
      state_out->push_back({g, assign[g] == L3::T});
    }
  return true;
}

TimeframeResult TimeframeJust::solve(
    const std::vector<CtrlObjective>& objectives) {
  TimeframeResult res;
  // Group objectives by cycle.
  std::map<unsigned, std::vector<FrameObjective>> by_cycle;
  for (const CtrlObjective& o : objectives)
    by_cycle[o.cycle].push_back({o.gate, o.value});
  if (by_cycle.empty()) {
    res.status = TgStatus::kSuccess;
    return res;
  }
  const unsigned top = by_cycle.rbegin()->first;
  if (top >= T_) {
    res.note = "objective beyond window";
    return res;
  }

  // Sweep frames from the latest objective down to the reset frame,
  // justifying decided state vectors one frame earlier each time.
  std::vector<FrameObjective> carried;  // obligations on this frame's CSOs
  for (int t = static_cast<int>(top); t >= 0; --t) {
    std::vector<FrameObjective> objs;
    // Carried state obligations attach to the DFFs' D inputs in frame t-1;
    // while processing frame t they were returned as (dff, value): convert
    // to this frame's D cones.
    for (const FrameObjective& c : carried)
      objs.push_back({gn_.gate(c.gate).fanin[0], c.value});
    if (auto it = by_cycle.find(static_cast<unsigned>(t));
        it != by_cycle.end())
      for (const FrameObjective& o : it->second) objs.push_back(o);

    std::vector<FrameObjective> state;
    if (!solve_frame(objs, t == 0, &state, &res)) {
      res.status = TgStatus::kFailure;
      res.note = "frame " + std::to_string(t) + " unjustifiable";
      return res;
    }
    carried = std::move(state);
  }
  if (!carried.empty()) {
    // Reset-frame justification left state demands: unreachable.
    res.status = TgStatus::kFailure;
    res.note = "state demands at reset";
    return res;
  }
  res.status = TgStatus::kSuccess;
  return res;
}

}  // namespace hltg
