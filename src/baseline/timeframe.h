// Conventional timeframe-organization justification - the Sec.-IV baseline.
//
// In the usual iterative-array organization, each timeframe's decision
// variables are the CPIs *and the CSIs* (controller state bits), and every
// decided CSI must itself be justified in the previous frame. This class
// implements exactly that: a per-frame PODEM whose backtrace stops at DFF
// outputs and turns them into decisions, propagating the decided state
// vector backwards frame by frame until the reset state. Decisions on
// unreachable state values dead-end only when frame 0 is reached - the
// conflict class the pipeframe organization eliminates by construction
// ("conflicts due to invalid (unreachable) states cannot arise as decisions
// are made only on the CPIs").
//
// The bench bench_pipeframe runs this and CTRLJUST (the pipeframe
// organization) on identical objective sets and compares decision counts,
// backtracks, and solve rates.
#pragma once

#include <vector>

#include "core/objectives.h"
#include "gatenet/gatenet.h"
#include "util/status.h"

namespace hltg {

struct TimeframeConfig {
  std::uint64_t max_backtracks_per_frame = 400;
  std::uint64_t max_decisions = 50000;
};

struct TimeframeResult {
  TgStatus status = TgStatus::kFailure;
  std::uint64_t decisions = 0;
  std::uint64_t backtracks = 0;
  std::uint64_t implications = 0;
  std::uint64_t state_bits_decided = 0;  ///< CSI decisions (need justification)
  std::string note;
};

class TimeframeJust {
 public:
  TimeframeJust(const GateNet& gn, unsigned cycles, TimeframeConfig cfg = {});

  TimeframeResult solve(const std::vector<CtrlObjective>& objectives);

 private:
  struct FrameObjective {
    GateId gate;
    bool value;
  };
  /// Single-frame PODEM: satisfy `objs` by deciding CPI/STS vars and DFF
  /// outputs (unless `frame0`, where DFFs are pinned to reset values).
  /// On success appends the decided DFF values to `state_out`.
  bool solve_frame(const std::vector<FrameObjective>& objs, bool frame0,
                   std::vector<FrameObjective>* state_out,
                   TimeframeResult* stats);

  const GateNet& gn_;
  unsigned T_;
  TimeframeConfig cfg_;
};

}  // namespace hltg
