// Pseudo-random test-program generation baseline (Sec. I / II.A context:
// "biased pseudo-random test program generators" are the industrial
// state of practice the directed method is compared against).
//
// Generates valid, forward-branching-only DLX programs with biased operand
// values and register reuse (to excite hazards and bypasses), plus random
// initial register-file and memory state. Error coverage is measured by
// dual simulation.
#pragma once

#include <cstdint>

#include "errors/campaign.h"
#include "isa/spec_sim.h"
#include "util/rng.h"

namespace hltg {

struct RandomTgConfig {
  unsigned program_length = 20;
  unsigned max_programs_per_error = 8;  ///< attempts before declaring abort
  std::uint64_t seed = 1;
  /// Probability weights (out of 100).
  unsigned p_store = 25;     ///< chance an instruction is a store
  unsigned p_load = 15;
  unsigned p_branch = 5;     ///< forward branches only
  unsigned reg_pool = 8;     ///< registers drawn from r1..r<pool> for reuse
};

/// Generate one random test case.
TestCase random_test(Rng& rng, const RandomTgConfig& cfg);

/// Campaign strategy: for each error, try up to max_programs_per_error
/// random programs; first one whose dual simulation mismatches wins.
TestGenFn random_strategy(const DlxModel& m, RandomTgConfig cfg = {});

/// Budget-aware variant (the campaign's graceful-degradation fallback):
/// polls the budget between candidate programs, so a deadline, cap, or
/// cancellation ends the attempt promptly with the abort reason recorded.
BudgetedGenFn random_budgeted_strategy(const DlxModel& m,
                                       RandomTgConfig cfg = {});

}  // namespace hltg
