#include "baseline/random_tg.h"

#include <chrono>

#include "isa/asm.h"
#include "sim/cosim.h"
#include "util/word.h"

namespace hltg {

namespace {

std::uint32_t biased_value(Rng& rng) {
  // Mix of corner values and uniform randoms: corner-ish data exposes
  // arithmetic errors (carries, sign bits) much faster than uniform data.
  switch (rng.below(6)) {
    case 0: return 0;
    case 1: return 1;
    case 2: return 0xFFFFFFFFu;
    case 3: return 0x80000000u;
    case 4: return static_cast<std::uint32_t>(rng.word(8));
    default: return static_cast<std::uint32_t>(rng.word(32));
  }
}

Instr random_instr(Rng& rng, const RandomTgConfig& cfg, unsigned remaining) {
  auto reg = [&] { return 1 + static_cast<unsigned>(rng.below(cfg.reg_pool)); };
  const unsigned roll = static_cast<unsigned>(rng.below(100));
  Instr i;
  if (roll < cfg.p_store) {
    static const Op stores[] = {Op::kSb, Op::kSh, Op::kSw};
    i.op = stores[rng.below(3)];
    i.rs1 = reg();
    i.rd = reg();
    i.imm = static_cast<std::int32_t>(rng.below(16)) * 4;
  } else if (roll < cfg.p_store + cfg.p_load) {
    static const Op loads[] = {Op::kLb, Op::kLbu, Op::kLh, Op::kLhu, Op::kLw};
    i.op = loads[rng.below(5)];
    i.rd = reg();
    i.rs1 = reg();
    i.imm = static_cast<std::int32_t>(rng.below(16)) * 4;
  } else if (roll < cfg.p_store + cfg.p_load + cfg.p_branch && remaining > 2) {
    i.op = rng.flip() ? Op::kBeqz : Op::kBnez;
    i.rs1 = reg();
    i.imm = static_cast<std::int32_t>(rng.below(remaining - 1));  // forward
  } else if (roll < 60u) {
    static const Op rops[] = {Op::kAdd, Op::kSub,  Op::kAnd, Op::kOr,
                              Op::kXor, Op::kSll,  Op::kSrl, Op::kSra,
                              Op::kSlt, Op::kSltu, Op::kSeq, Op::kSne,
                              Op::kAddu, Op::kSubu};
    i.op = rops[rng.below(14)];
    i.rd = reg();
    i.rs1 = reg();
    i.rs2 = reg();
  } else {
    static const Op iops[] = {Op::kAddi, Op::kAddui, Op::kSubi, Op::kSubui,
                              Op::kAndi, Op::kOri,   Op::kXori, Op::kSlli,
                              Op::kSrli, Op::kSrai,  Op::kSlti, Op::kSltui,
                              Op::kSeqi, Op::kSnei,  Op::kLhi};
    i.op = iops[rng.below(15)];
    i.rd = reg();
    i.rs1 = reg();
    i.imm = static_cast<std::int32_t>(sext(rng.word(16), 16));
    if (i.op == Op::kSlli || i.op == Op::kSrli || i.op == Op::kSrai)
      i.imm &= 31;
  }
  return i;
}

}  // namespace

TestCase random_test(Rng& rng, const RandomTgConfig& cfg) {
  TestCase tc;
  for (unsigned r = 1; r < 32; ++r) tc.rf_init[r] = biased_value(rng);
  for (unsigned w = 0; w < 32; ++w) tc.dmem_init[4 * w] = biased_value(rng);
  std::vector<Instr> prog;
  for (unsigned k = 0; k < cfg.program_length; ++k)
    prog.push_back(random_instr(rng, cfg, cfg.program_length - k));
  // Terminate with stores that expose live register state, then drain NOPs.
  for (unsigned r = 1; r <= cfg.reg_pool; ++r) {
    Instr st;
    st.op = Op::kSw;
    st.rs1 = 0;
    st.rd = r;
    st.imm = static_cast<std::int32_t>(0x200 + 4 * r);
    prog.push_back(st);
  }
  tc.imem = encode_program(prog);
  return tc;
}

namespace {

ErrorAttempt random_attempt(const DlxModel& m, const RandomTgConfig& cfg,
                            const DesignError& err, Budget* budget) {
  ErrorAttempt a;
  Rng rng(cfg.seed ^ (static_cast<std::uint64_t>(err.site_net(m.dp)) << 17));
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned k = 0; k < cfg.max_programs_per_error; ++k) {
    if (budget) {
      const AbortReason why = budget->exhausted();
      if (why != AbortReason::kNone) {
        a.abort = why;
        a.note = "budget: " + std::string(to_string(why));
        break;
      }
    }
    const TestCase tc = random_test(rng, cfg);
    if (detects(m, tc, err.injection())) {
      a.generated = true;
      a.sim_confirmed = true;
      a.test = tc;
      a.test_length = static_cast<unsigned>(tc.imem.size());
      break;
    }
    // Each candidate program costs one "decision" against the budget's
    // caps, so max_decisions bounds the fallback's volume of simulation.
    if (budget) budget->charge_decisions(1);
  }
  a.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!a.generated && a.note.empty())
    a.note = "no random program detected the error";
  return a;
}

}  // namespace

TestGenFn random_strategy(const DlxModel& m, RandomTgConfig cfg) {
  return [&m, cfg](const DesignError& err) {
    return random_attempt(m, cfg, err, nullptr);
  };
}

BudgetedGenFn random_budgeted_strategy(const DlxModel& m, RandomTgConfig cfg) {
  return [&m, cfg](const DesignError& err, Budget& budget) {
    return random_attempt(m, cfg, err, &budget);
  };
}

}  // namespace hltg
