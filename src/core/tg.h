// TG: the overall test-generation algorithm (Fig. 3 / Fig. 4).
//
// Per design error:
//   1. DPTRACE derives candidate justification/propagation path plans with
//      their CTRL objectives and value constraints (step 2 of Fig. 3).
//   2. For each plan, CTRLJUST runs its branch-and-bound search over the
//      pipeframe decision variables (CPI / STS per cycle) to justify the
//      CTRL objectives from the reset state.
//   3. DPRELAX selects data values satisfying the plan's constraints plus
//      the STS obligations CTRLJUST incurred.
//   4. The emitted test is confirmed by dual simulation (spec vs erroneous
//      implementation); only confirmed tests count as detections.
// A plan whose CTRLJUST search or relaxation fails sends TG back to the
// next candidate path - the coarse-grained realization of the
// CONFLICT -> backtrack arrows of Fig. 3 (granularity note in DESIGN.md).
#pragma once

#include <memory>

#include "core/ctrljust.h"
#include "core/dprelax.h"
#include "core/dptrace.h"
#include "errors/campaign.h"
#include "solver/solver.h"

namespace hltg {

struct TgConfig {
  unsigned window = 14;
  /// When every plan in the base window fails, retry once with this window
  /// (0 disables). Longer windows admit later activation cycles and longer
  /// propagation chains at higher search cost.
  unsigned retry_window = 20;
  DpTraceConfig trace;
  CtrlJustConfig ctrljust;
  DpRelaxConfig relax;
  /// Shared deduction subsystem (src/solver/): implication engine, learned
  /// nogoods, justification cache. `solver.enable = false` restores the
  /// legacy pure-PODEM CTRLJUST (the error_campaign --solver=off hatch).
  SolverConfig solver;
  bool confirm_by_simulation = true;
  // Ablation toggles for the design choices DESIGN.md calls out.
  bool shape_dedup = true;     ///< skip plans whose shape failed confirmation
  bool reset_precheck = true;  ///< skip plans violated by the reset trajectory
  bool control_flow_macros = true;  ///< divergence templates for branch path

  TgConfig() { trace.window = window; }
};

struct TgStats {
  std::uint64_t plans_tried = 0;
  std::uint64_t plan_retries = 0;   ///< coarse Fig.-3 backtracks (path level)
  std::uint64_t decisions = 0;
  std::uint64_t backtracks = 0;     ///< CTRLJUST search backtracks
  std::uint64_t implications = 0;
  std::uint64_t relax_iterations = 0;
  std::uint64_t learned = 0;        ///< nogoods recorded by conflict analysis
  std::uint64_t nogood_hits = 0;    ///< learned nogoods that pruned or forced
  /// Literal probes spent applying nogoods (rescan or watch scheme).
  std::uint64_t nogood_comparisons = 0;
  std::uint64_t cache_hits = 0;     ///< CTRLJUST solves answered from cache
  std::uint64_t cache_lookups = 0;  ///< cache probes (hits + misses)
  std::uint64_t dptrace_expansions = 0;  ///< best-first nodes expanded
  std::uint64_t dptrace_searches = 0;    ///< per-activation searches run
  std::uint64_t dptrace_reused = 0;      ///< searches answered by the memo
  std::uint64_t relax_hits = 0;     ///< DPRELAX solves replayed from the memo
  std::uint64_t relax_lookups = 0;  ///< DPRELAX memo probes
  /// DPRELAX good+err window captures run as one 2-lane batch simulation
  /// (sim/batch_sim) instead of two full window simulations.
  std::uint64_t relax_pair_captures = 0;
  /// Post-success 01X analysis (gatenet/evalw): candidate CPI bits whose
  /// relaxation to X still forces every CTRL objective of the winning plan.
  /// Pure statistics - the emitted test is unchanged.
  std::uint64_t cpi_dont_cares = 0;
  std::uint64_t dontcare_candidates = 0;
  /// DPRELAX memo misses where a resident entry differed only in the
  /// injection-site suffix of the key - the reuse a site-independent
  /// keying would capture (measured, not exploited; docs/SOLVER.md).
  std::uint64_t relax_cross_site_misses = 0;
  // Batched decision probing (solver/probe_batch; zero unless
  // ctrljust.use_probes is on - the default keeps it off).
  std::uint64_t probe_batches = 0;  ///< masked lane-parallel window sweeps
  std::uint64_t probe_lanes = 0;    ///< candidate-polarity lanes evaluated
  std::uint64_t probe_prunes = 0;   ///< branch points resolved by a probe
  // Per-phase wall time (monotonic clock), for the campaign CSV / --replay.
  std::uint64_t dptrace_ns = 0;
  std::uint64_t ctrljust_ns = 0;  ///< search time, probe time excluded
  std::uint64_t dprelax_ns = 0;
  std::uint64_t probe_ns = 0;  ///< time inside ProbeBatch::run
  /// Set when the attempt unwound because its Budget fired (deadline /
  /// backtracks / decisions / cancelled); kNone for ordinary exhaustion of
  /// the plan list or for success.
  AbortReason abort = AbortReason::kNone;
};

struct TgResult {
  TgStatus status = TgStatus::kFailure;
  TestCase test;
  unsigned test_length = 0;  ///< instructions issued through observation
  TgStats stats;
  std::string note;
};

class TestGenerator {
 public:
  TestGenerator(const DlxModel& m, TgConfig cfg = {});

  /// `budget`, when given, covers the whole attempt (both windows, every
  /// plan, all three engines); when it fires mid-search the attempt unwinds
  /// cleanly with kFailure and stats.abort set.
  TgResult generate(const DesignError& err, Budget* budget = nullptr);

  /// One attempt with a fixed window (generate() adds the window retry).
  TgResult generate_with_window(const DesignError& err, unsigned window,
                                Budget* budget = nullptr);

  /// Adapter for the campaign driver.
  TestGenFn strategy();

  /// Budget-aware adapter: the campaign arms one fresh Budget per error and
  /// passes it in; the attempt records the structured abort reason.
  BudgetedGenFn budgeted_strategy();

  /// Last-resort templates for errors in the control-transfer path (branch
  /// condition / target buses): a taken branch plus marker stores on the
  /// fall-through and target paths. A condition error flips which markers
  /// execute; a target error strands the erroneous machine on a misaligned
  /// or far PC, so the target marker never commits. Tried only after the
  /// path-based plans are exhausted.
  TgResult try_control_flow_macro(const DesignError& err) const;

  const DpTrace& tracer() const { return trace_; }

  /// The per-generator deduction state, exposed for persistence: a warm
  /// start imports a DedSnapshot here before the first generate(), and the
  /// campaign driver exports/merges the contexts afterwards
  /// (src/solver/store.h, docs/ROBUSTNESS.md).
  SolverContext& solver_context() { return solver_ctx_; }
  const SolverContext& solver_context() const { return solver_ctx_; }

 private:
  std::vector<RelaxConstraint> activation_constraints(
      const DesignError& err) const;
  /// Extra CTRL objectives making the error site *used* at the activation
  /// cycle (e.g. a rewired mux input must be selected for a BSE to matter).
  std::vector<CtrlObjective> usage_objectives(const DesignError& err,
                                              unsigned cycle) const;

  const DlxModel& m_;
  TgConfig cfg_;
  DpTrace trace_;
  /// Lazily built tracer for the retry window, kept for the generator's
  /// lifetime so its search memo (dptrace.h) survives across errors the
  /// same way trace_'s does. Plans are pure functions of (site, window),
  /// so the reuse is outcome-neutral for any error order or --jobs split.
  std::unique_ptr<DpTrace> retry_trace_;
  unsigned retry_trace_window_ = 0;  ///< window retry_trace_ was built for
  /// Per-generator deduction state. With solver.scope == kError (default)
  /// it is reset at the start of every generate(): nogoods, cached
  /// justifications and relax memos are shared across the plans and windows
  /// of ONE error, never across errors - campaign rows stay byte-identical
  /// however errors are distributed over --jobs workers. With kCampaign the
  /// context lives for the generator's lifetime (single-worker runs only;
  /// outcome-neutrality argument in solver/solver.h and docs/SOLVER.md).
  SolverContext solver_ctx_;
};

/// Fingerprint of the implementation model TG searches: every gate of the
/// controller network and every net/module of the datapath netlist. Two
/// runs with equal hashes search the same design, so netlist-level
/// deductions (nogoods, cached justifications, relax memos) transfer
/// between them. Gates campaign journals and persisted deduction stores.
std::uint64_t tg_design_hash(const DlxModel& m);

/// Seed DPRELAX uses for a given plan: a pure function of the base seed and
/// the plan's identity (error site, path shape, activation cycle, window).
/// Because trial order is not an input, a plan relaxes identically whether
/// it is trial #1 or #7 of its window - in particular a warm start whose
/// imported deductions skip earlier plans replays the same seeds, which the
/// DPRELAX memo's byte-identical replay depends on. The window IS an input:
/// a solve is window-dependent at the margin (the runaway-PC cap in
/// DpRelax::set_instr_word scales with it), so memo entries must never
/// transfer between windows on a seed collision.
std::uint64_t relax_plan_seed(std::uint64_t base_seed, NetId site,
                              const std::string& plan_shape,
                              unsigned activate_cycle, unsigned window);

/// Fingerprint of the TgConfig knobs that cached deduction results depend
/// on (windows, search caps, relaxation seed, solver toggles). Capacities
/// are deliberately excluded: they change what stays resident, never what
/// a resident entry means.
std::uint64_t tg_config_hash(const TgConfig& cfg);

}  // namespace hltg
