#include "core/ctrljust.h"

#include <sstream>

namespace hltg {

std::string render_trace(const GateNet& gn,
                         const std::vector<SearchEvent>& trace) {
  std::ostringstream os;
  int depth = 0;
  for (const SearchEvent& e : trace) {
    const char* what = e.kind == SearchEvent::kDecide ? "decide"
                       : e.kind == SearchEvent::kFlip ? "flip  "
                                                      : "pop   ";
    if (e.kind == SearchEvent::kPop) --depth;
    os << std::string(std::max(depth, 0) * 2, ' ') << what << " "
       << gn.gate(e.gate).name << "@" << e.cycle << " = " << (e.value ? 1 : 0)
       << "\n";
    if (e.kind == SearchEvent::kDecide) ++depth;
  }
  return os.str();
}

CtrlJust::CtrlJust(const GateNet& gn, unsigned cycles, CtrlJustConfig cfg)
    : gn_(gn), win_(gn, cycles), cfg_(cfg) {}

CtrlJust::ObjState CtrlJust::objective_state(const CtrlObjective& o) const {
  const L3 v = win_.value(o.gate, o.cycle);
  if (v == L3::X) return ObjState::kOpen;
  return (v == L3::T) == o.value ? ObjState::kSatisfied : ObjState::kViolated;
}

bool CtrlJust::backtrace(CtrlObjective o, Decision* out) const {
  GateId g = o.gate;
  unsigned t = o.cycle;
  bool v = o.value;
  for (int guard = 0; guard < 100000; ++guard) {
    const Gate& gate = gn_.gate(g);
    switch (gate.kind) {
      case GateKind::kVar:
        if (win_.value(g, t) != L3::X) return false;  // already determined
        *out = {g, t, v, false};
        return true;
      case GateKind::kDff:
        if (t == 0) return false;  // cannot justify against the reset state
        g = gate.fanin[0];
        --t;
        break;
      case GateKind::kBuf:
        g = gate.fanin[0];
        break;
      case GateKind::kNot:
        g = gate.fanin[0];
        v = !v;
        break;
      case GateKind::kAnd:
      case GateKind::kOr: {
        // For the controlling objective value pick any X input; for the
        // non-controlling value every input must comply - also pick an X
        // input (the others follow in later iterations).
        GateId pick = kNoGate;
        for (GateId in : gate.fanin)
          if (win_.value(in, t) == L3::X) {
            pick = in;
            break;
          }
        if (pick == kNoGate) return false;
        g = pick;
        // AND wants 1 -> inputs 1; AND wants 0 -> drive picked input 0.
        // OR mirrors.
        break;
      }
      case GateKind::kXor: {
        const L3 a = win_.value(gate.fanin[0], t);
        const L3 b = win_.value(gate.fanin[1], t);
        if (a == L3::X && b == L3::X) {
          g = gate.fanin[0];
          // target value for fanin0 is arbitrary; keep v.
        } else if (a == L3::X) {
          v = v != (b == L3::T);
          g = gate.fanin[0];
        } else if (b == L3::X) {
          v = v != (a == L3::T);
          g = gate.fanin[1];
        } else {
          return false;
        }
        break;
      }
      case GateKind::kConst0:
      case GateKind::kConst1:
        return false;
    }
  }
  return false;
}

CtrlJustResult CtrlJust::solve(const std::vector<CtrlObjective>& objectives,
                               Budget* budget) {
  CtrlJustResult res;
  win_.clear();
  std::vector<Decision> stack;

  auto imply = [&] {
    win_.imply();
    ++res.stats.implications;
  };

  imply();
  for (std::uint64_t iter = 0;; ++iter) {
    if (res.stats.backtracks > cfg_.max_backtracks ||
        res.stats.decisions > cfg_.max_decisions) {
      res.status = TgStatus::kFailure;
      res.abort = res.stats.backtracks > cfg_.max_backtracks
                      ? AbortReason::kBacktracks
                      : AbortReason::kDecisions;
      break;
    }
    if (budget) {
      const AbortReason why = budget->exhausted();
      if (why != AbortReason::kNone) {
        res.status = TgStatus::kFailure;
        res.abort = why;
        break;
      }
    }
    // Classify objectives. Prefer backtracing an objective that wants a 1:
    // on the decoder's one-hot OR planes a 1-objective pins a complete
    // instruction term, after which the sibling 0-objectives usually follow
    // by implication; starting from a 0-objective assigns near-arbitrary
    // CPI bits and walks into conflicts.
    bool violated = false;
    const CtrlObjective* open = nullptr;
    for (const CtrlObjective& o : objectives) {
      const ObjState st = objective_state(o);
      if (st == ObjState::kViolated) {
        violated = true;
        break;
      }
      if (st == ObjState::kOpen && (!open || (o.value && !open->value)))
        open = &o;
    }

    Decision next{};
    bool have_next = false;
    if (!violated) {
      if (!open) {
        res.status = TgStatus::kSuccess;
        break;
      }
      have_next = backtrace(*open, &next);
      if (!have_next) violated = true;  // objective unreachable: conflict
    }

    if (violated) {
      // Backtrack: flip the most recent unflipped decision.
      ++res.stats.backtracks;
      if (budget) budget->charge_backtracks(1);
      bool resumed = false;
      while (!stack.empty()) {
        Decision& d = stack.back();
        win_.assign(d.gate, d.cycle, L3::X);
        if (!d.flipped) {
          d.flipped = true;
          d.value = !d.value;
          win_.assign(d.gate, d.cycle, l3_from_bool(d.value));
          if (cfg_.record_trace)
            res.trace.push_back(
                {SearchEvent::kFlip, d.gate, d.cycle, d.value});
          resumed = true;
          break;
        }
        if (cfg_.record_trace)
          res.trace.push_back({SearchEvent::kPop, d.gate, d.cycle, d.value});
        stack.pop_back();
      }
      if (!resumed) {
        res.status = TgStatus::kFailure;
        break;
      }
      imply();
      continue;
    }

    // Take the decision.
    ++res.stats.decisions;
    if (budget) budget->charge_decisions(1);
    win_.assign(next.gate, next.cycle, l3_from_bool(next.value));
    if (cfg_.record_trace)
      res.trace.push_back(
          {SearchEvent::kDecide, next.gate, next.cycle, next.value});
    stack.push_back(next);
    imply();
  }

  if (res.status == TgStatus::kSuccess) {
    for (auto [g, t, v] : win_.assignments()) {
      if (gn_.gate(g).role == SigRole::kSts)
        res.sts_assignments.emplace_back(g, t, v);
      else if (gn_.gate(g).role == SigRole::kCPI)
        res.cpi_assignments.emplace_back(g, t, v);
    }
  }
  return res;
}

}  // namespace hltg
