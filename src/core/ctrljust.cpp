#include "core/ctrljust.h"

#include <algorithm>
#include <sstream>

#include "solver/justcache.h"
#include "solver/nogood_watch.h"

namespace hltg {

std::string render_trace(const GateNet& gn,
                         const std::vector<SearchEvent>& trace) {
  std::ostringstream os;
  int depth = 0;
  for (const SearchEvent& e : trace) {
    const char* what = e.kind == SearchEvent::kDecide ? "decide"
                       : e.kind == SearchEvent::kFlip ? "flip  "
                                                      : "pop   ";
    if (e.kind == SearchEvent::kPop) --depth;
    os << std::string(std::max(depth, 0) * 2, ' ') << what << " "
       << gn.gate(e.gate).name << "@" << e.cycle << " = " << (e.value ? 1 : 0)
       << "\n";
    if (e.kind == SearchEvent::kDecide) ++depth;
  }
  return os.str();
}

CtrlJust::CtrlJust(const GateNet& gn, unsigned cycles, CtrlJustConfig cfg)
    : gn_(gn), cycles_(cycles), win_(gn, cycles), cfg_(cfg) {}

CtrlJust::~CtrlJust() = default;

CtrlJust::ObjState CtrlJust::objective_state(const CtrlObjective& o) const {
  const L3 v = win_.value(o.gate, o.cycle);
  if (v == L3::X) return ObjState::kOpen;
  return (v == L3::T) == o.value ? ObjState::kSatisfied : ObjState::kViolated;
}

bool CtrlJust::backtrace(CtrlObjective o, Decision* out) const {
  GateId g = o.gate;
  unsigned t = o.cycle;
  bool v = o.value;
  for (int guard = 0; guard < 100000; ++guard) {
    const Gate& gate = gn_.gate(g);
    switch (gate.kind) {
      case GateKind::kVar:
        if (win_.value(g, t) != L3::X) return false;  // already determined
        *out = {g, t, v, false};
        return true;
      case GateKind::kDff:
        if (t == 0) return false;  // cannot justify against the reset state
        g = gate.fanin[0];
        --t;
        break;
      case GateKind::kBuf:
        g = gate.fanin[0];
        break;
      case GateKind::kNot:
        g = gate.fanin[0];
        v = !v;
        break;
      case GateKind::kAnd:
      case GateKind::kOr: {
        // For the controlling objective value pick any X input; for the
        // non-controlling value every input must comply - also pick an X
        // input (the others follow in later iterations).
        GateId pick = kNoGate;
        for (GateId in : gate.fanin)
          if (win_.value(in, t) == L3::X) {
            pick = in;
            break;
          }
        if (pick == kNoGate) return false;
        g = pick;
        // AND wants 1 -> inputs 1; AND wants 0 -> drive picked input 0.
        // OR mirrors.
        break;
      }
      case GateKind::kXor: {
        const L3 a = win_.value(gate.fanin[0], t);
        const L3 b = win_.value(gate.fanin[1], t);
        if (a == L3::X && b == L3::X) {
          g = gate.fanin[0];
          // target value for fanin0 is arbitrary; keep v.
        } else if (a == L3::X) {
          v = v != (b == L3::T);
          g = gate.fanin[0];
        } else if (b == L3::X) {
          v = v != (a == L3::T);
          g = gate.fanin[1];
        } else {
          return false;
        }
        break;
      }
      case GateKind::kConst0:
      case GateKind::kConst1:
        return false;
    }
  }
  return false;
}

CtrlJustResult CtrlJust::solve(const std::vector<CtrlObjective>& objectives,
                               Budget* budget) {
  if (!cfg_.use_engine) return solve_legacy(objectives, budget);

  // Canonicalize once: the signature drives the cache, and a contradictory
  // set (both values of one point) fails without any search.
  std::vector<Lit> key;
  const CanonStatus canon = canonicalize_objectives(objectives, &key);
  if (canon == CanonStatus::kContradiction) {
    CtrlJustResult res;
    res.status = TgStatus::kFailure;
    win_.clear();
    win_.imply();
    return res;
  }

  const bool cache_on = ctx_ && ctx_->cfg.use_cache;
  if (cache_on) {
    if (const JustCacheEntry* e = ctx_->cache.lookup(key)) {
      CtrlJustResult res;
      ++res.stats.cache_lookups;
      ++res.stats.cache_hits;
      res.status = e->success ? TgStatus::kSuccess : TgStatus::kFailure;
      res.sts_assignments = e->sts_assignments;
      res.cpi_assignments = e->cpi_assignments;
      // Replay the witness into the window so window() consumers (the
      // emitter's redirect/stall checks) see the same trajectory as after
      // a live solve.
      win_.clear();
      if (e->success) {
        for (auto [g, t, v] : e->cpi_assignments)
          win_.assign(g, t, l3_from_bool(v));
        for (auto [g, t, v] : e->sts_assignments)
          win_.assign(g, t, l3_from_bool(v));
      }
      win_.imply();
      return res;
    }
  }

  CtrlJustResult res = solve_engine(objectives, budget);
  if (cache_on) ++res.stats.cache_lookups;  // the miss that led here
  // Only definitive results are cacheable: a capped or deadline-aborted
  // failure proves nothing about the objective set.
  if (cache_on && res.abort == AbortReason::kNone) {
    JustCacheEntry e;
    e.success = res.status == TgStatus::kSuccess;
    e.sts_assignments = res.sts_assignments;
    e.cpi_assignments = res.cpi_assignments;
    ctx_->cache.insert(key, std::move(e));
  }
  return res;
}

CtrlJustResult CtrlJust::solve_legacy(
    const std::vector<CtrlObjective>& objectives, Budget* budget) {
  CtrlJustResult res;
  win_.clear();
  std::vector<Decision> stack;

  auto imply = [&] {
    win_.imply();
    ++res.stats.implications;
  };

  imply();
  for (std::uint64_t iter = 0;; ++iter) {
    if (res.stats.backtracks > cfg_.max_backtracks ||
        res.stats.decisions > cfg_.max_decisions) {
      res.status = TgStatus::kFailure;
      res.abort = res.stats.backtracks > cfg_.max_backtracks
                      ? AbortReason::kBacktracks
                      : AbortReason::kDecisions;
      break;
    }
    if (budget) {
      const AbortReason why = budget->exhausted();
      if (why != AbortReason::kNone) {
        res.status = TgStatus::kFailure;
        res.abort = why;
        break;
      }
    }
    // Classify objectives. Prefer backtracing an objective that wants a 1:
    // on the decoder's one-hot OR planes a 1-objective pins a complete
    // instruction term, after which the sibling 0-objectives usually follow
    // by implication; starting from a 0-objective assigns near-arbitrary
    // CPI bits and walks into conflicts.
    bool violated = false;
    const CtrlObjective* open = nullptr;
    for (const CtrlObjective& o : objectives) {
      const ObjState st = objective_state(o);
      if (st == ObjState::kViolated) {
        violated = true;
        break;
      }
      if (st == ObjState::kOpen && (!open || (o.value && !open->value)))
        open = &o;
    }

    Decision next{};
    bool have_next = false;
    if (!violated) {
      if (!open) {
        res.status = TgStatus::kSuccess;
        break;
      }
      have_next = backtrace(*open, &next);
      if (!have_next) violated = true;  // objective unreachable: conflict
    }

    if (violated) {
      // Backtrack: flip the most recent unflipped decision.
      ++res.stats.backtracks;
      if (budget) budget->charge_backtracks(1);
      bool resumed = false;
      while (!stack.empty()) {
        Decision& d = stack.back();
        win_.assign(d.gate, d.cycle, L3::X);
        if (!d.flipped) {
          d.flipped = true;
          d.value = !d.value;
          win_.assign(d.gate, d.cycle, l3_from_bool(d.value));
          if (cfg_.record_trace)
            res.trace.push_back(
                {SearchEvent::kFlip, d.gate, d.cycle, d.value});
          resumed = true;
          break;
        }
        if (cfg_.record_trace)
          res.trace.push_back({SearchEvent::kPop, d.gate, d.cycle, d.value});
        stack.pop_back();
      }
      if (!resumed) {
        res.status = TgStatus::kFailure;
        break;
      }
      imply();
      continue;
    }

    // Take the decision.
    ++res.stats.decisions;
    if (budget) budget->charge_decisions(1);
    win_.assign(next.gate, next.cycle, l3_from_bool(next.value));
    if (cfg_.record_trace)
      res.trace.push_back(
          {SearchEvent::kDecide, next.gate, next.cycle, next.value});
    stack.push_back(next);
    imply();
  }

  if (res.status == TgStatus::kSuccess) {
    for (auto [g, t, v] : win_.assignments()) {
      if (gn_.gate(g).role == SigRole::kSts)
        res.sts_assignments.emplace_back(g, t, v);
      else if (gn_.gate(g).role == SigRole::kCPI)
        res.cpi_assignments.emplace_back(g, t, v);
    }
  }
  return res;
}

bool CtrlJust::apply_nogoods(CtrlJustResult& res) {
  if (!ctx_ || !ctx_->cfg.use_nogoods) return true;
  ImplicationEngine& eng = *engine_;
  NogoodStore& store = ctx_->nogoods;
  if (watcher_)
    return watcher_->propagate(store, &res.stats.nogood_hits,
                               &res.stats.nogood_comparisons);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < store.size(); ++i) {
      const std::vector<Lit>& ng = store.lits(i);
      // A literal beyond this window does not exist here; the nogood
      // cannot fire (it stays valid for wider windows).
      bool applicable = true;
      int open = -1;
      std::vector<ImplicationEngine::NodeId> holding;
      for (std::size_t j = 0; j < ng.size() && applicable; ++j) {
        const Lit& l = ng[j];
        if (l.cycle >= cycles_) {
          applicable = false;
          break;
        }
        ++res.stats.nogood_comparisons;
        const L3 v = eng.value(l.gate, l.cycle);
        if (v == L3::X) {
          if (open >= 0) applicable = false;  // two free lits: inert
          open = static_cast<int>(j);
        } else if ((v == L3::T) != l.value) {
          applicable = false;  // a literal already fails: nogood satisfied
        } else {
          holding.push_back(eng.node(l.gate, l.cycle));
        }
      }
      if (!applicable) continue;
      store.touch(i);
      ++res.stats.nogood_hits;
      // All-but-one literals hold: the open one must be negated. With
      // open == -1 every literal holds; forcing any member's negation
      // conflicts immediately, with the right antecedents for the cut
      // walker.
      const Lit target = open >= 0 ? ng[static_cast<std::size_t>(open)] : ng[0];
      if (open < 0)
        holding.erase(std::find(holding.begin(), holding.end(),
                                eng.node(target.gate, target.cycle)));
      if (!eng.imply_from_nogood(target.gate, target.cycle, !target.value,
                                 holding))
        return false;
      if (!eng.propagate()) return false;
      changed = true;
    }
  }
  return true;
}

void CtrlJust::learn_conflict(CtrlJustResult& res) {
  if (!ctx_ || !ctx_->cfg.use_nogoods || !engine_->in_conflict()) return;
  if (ctx_->nogoods.learn(engine_->conflict_cut())) {
    ++res.stats.learned;
    if (watcher_) {
      NogoodStore& store = ctx_->nogoods;
      const std::size_t slot = store.last_index();
      watcher_->add(store.lits(slot), slot, store.id(slot));
    }
  }
}

// Engine-assisted search: the decision sequence is driven by the exact
// legacy view (forward imply of the decisions in win_, legacy backtrace,
// legacy objective classification), so a run that succeeds lands on the
// same success leaf - same witness, same window, same downstream DPRELAX /
// emitter behavior. The engine shadows every decision and contributes what
// the forward view cannot:
//  - backward propagation detects that a subtree is doomed the moment the
//    decision is asserted, instead of several decisions later (the whole
//    doomed subtree collapses into one backtrack);
//  - a variable the engine has already forced is decided at its forced
//    value directly, pre-flipped (the other value is a proven conflict);
//  - learned nogoods from earlier conflicts of this error's plans fire as
//    soon as their literals hold.
// Skipping doomed subtrees never changes the first success leaf of the
// chronological flip-search; it only reaches it in fewer steps.
CtrlJustResult CtrlJust::solve_engine(
    const std::vector<CtrlObjective>& objectives, Budget* budget) {
  CtrlJustResult res;
  if (!engine_) engine_ = std::make_unique<ImplicationEngine>(gn_, cycles_);
  ImplicationEngine& eng = *engine_;
  eng.reset();
  if (ctx_ && ctx_->cfg.use_nogoods && ctx_->cfg.use_nogood_watches) {
    if (!watcher_) watcher_ = std::make_unique<NogoodWatcher>(eng);
    watcher_->rebuild(ctx_->nogoods);
  } else {
    watcher_.reset();
  }
  win_.clear();
  std::vector<Decision> stack;

  auto imply = [&] {
    win_.imply();
    ++res.stats.implications;
  };
  auto shadow = [&](GateId g, unsigned t, bool v, bool decision) {
    const bool ok = eng.assert_lit(g, t, v, decision) && eng.propagate() &&
                    apply_nogoods(res);
    if (!ok) learn_conflict(res);
    return ok;
  };

  bool conflict = false;
  for (const CtrlObjective& o : objectives)
    if (!shadow(o.gate, o.cycle, o.value, false)) {
      conflict = true;
      break;
    }

  imply();
  for (;;) {
    if (res.stats.backtracks > cfg_.max_backtracks ||
        res.stats.decisions > cfg_.max_decisions) {
      res.status = TgStatus::kFailure;
      res.abort = res.stats.backtracks > cfg_.max_backtracks
                      ? AbortReason::kBacktracks
                      : AbortReason::kDecisions;
      break;
    }
    if (budget) {
      const AbortReason why = budget->exhausted();
      if (why != AbortReason::kNone) {
        res.status = TgStatus::kFailure;
        res.abort = why;
        break;
      }
    }

    bool violated = conflict;
    const CtrlObjective* open = nullptr;
    if (!violated) {
      for (const CtrlObjective& o : objectives) {
        const ObjState st = objective_state(o);
        if (st == ObjState::kViolated) {
          violated = true;
          break;
        }
        if (st == ObjState::kOpen && (!open || (o.value && !open->value)))
          open = &o;
      }
    }

    Decision next{};
    bool have_next = false;
    if (!violated) {
      if (!open) {
        res.status = TgStatus::kSuccess;
        break;
      }
      have_next = backtrace(*open, &next);
      if (!have_next) violated = true;  // objective unreachable: conflict
    }

    if (violated) {
      ++res.stats.backtracks;
      if (budget) budget->charge_backtracks(1);
      bool resumed = false;
      while (!stack.empty()) {
        Decision& d = stack.back();
        win_.assign(d.gate, d.cycle, L3::X);
        if (!d.flipped) {
          d.flipped = true;
          d.value = !d.value;
          win_.assign(d.gate, d.cycle, l3_from_bool(d.value));
          if (cfg_.record_trace)
            res.trace.push_back(
                {SearchEvent::kFlip, d.gate, d.cycle, d.value});
          eng.pop_to(static_cast<unsigned>(stack.size()) - 1);
          if (watcher_) watcher_->on_pop(eng.trail().size());
          eng.push_level();
          conflict = !shadow(d.gate, d.cycle, d.value, true);
          resumed = true;
          break;
        }
        if (cfg_.record_trace)
          res.trace.push_back({SearchEvent::kPop, d.gate, d.cycle, d.value});
        eng.pop_to(static_cast<unsigned>(stack.size()) - 1);
        if (watcher_) watcher_->on_pop(eng.trail().size());
        stack.pop_back();
      }
      if (!resumed) {
        res.status = TgStatus::kFailure;
        break;
      }
      imply();
      continue;
    }

    // Engine hint: a variable the engine has forced can only take that
    // value; trying the other one is a proven dead end. Decide the forced
    // value and mark the decision pre-flipped so backtracking pops it.
    // A forced assignment is a propagation, not a branch point, so it
    // counts as an implication rather than a decision.
    const L3 hint = eng.value(next.gate, next.cycle);
    if (hint != L3::X) {
      next.value = hint == L3::T;
      next.flipped = true;
      ++res.stats.implications;
    } else {
      ++res.stats.decisions;
      if (budget) budget->charge_decisions(1);
    }
    win_.assign(next.gate, next.cycle, l3_from_bool(next.value));
    if (cfg_.record_trace)
      res.trace.push_back(
          {SearchEvent::kDecide, next.gate, next.cycle, next.value});
    stack.push_back(next);
    eng.push_level();
    conflict = !shadow(next.gate, next.cycle, next.value, true);
    imply();
  }

  res.stats.implications += eng.propagations();
  if (res.status == TgStatus::kSuccess) {
    for (auto [g, t, v] : win_.assignments()) {
      if (gn_.gate(g).role == SigRole::kSts)
        res.sts_assignments.emplace_back(g, t, v);
      else if (gn_.gate(g).role == SigRole::kCPI)
        res.cpi_assignments.emplace_back(g, t, v);
    }
  }
  return res;
}

}  // namespace hltg
