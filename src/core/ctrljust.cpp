#include "core/ctrljust.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "solver/justcache.h"
#include "solver/nogood_watch.h"

namespace hltg {

std::string render_trace(const GateNet& gn,
                         const std::vector<SearchEvent>& trace) {
  std::ostringstream os;
  int depth = 0;
  for (const SearchEvent& e : trace) {
    const char* what = e.kind == SearchEvent::kDecide ? "decide"
                       : e.kind == SearchEvent::kFlip ? "flip  "
                                                      : "pop   ";
    if (e.kind == SearchEvent::kPop) --depth;
    os << std::string(std::max(depth, 0) * 2, ' ') << what << " "
       << gn.gate(e.gate).name << "@" << e.cycle << " = " << (e.value ? 1 : 0)
       << "\n";
    if (e.kind == SearchEvent::kDecide) ++depth;
  }
  return os.str();
}

CtrlJust::CtrlJust(const GateNet& gn, unsigned cycles, CtrlJustConfig cfg)
    : gn_(gn), cycles_(cycles), win_(gn, cycles), cfg_(cfg) {}

CtrlJust::~CtrlJust() = default;

CtrlJust::ObjState CtrlJust::objective_state(const CtrlObjective& o) const {
  const L3 v = win_.value(o.gate, o.cycle);
  if (v == L3::X) return ObjState::kOpen;
  return (v == L3::T) == o.value ? ObjState::kSatisfied : ObjState::kViolated;
}

bool CtrlJust::backtrace(CtrlObjective o, Decision* out) const {
  GateId g = o.gate;
  unsigned t = o.cycle;
  bool v = o.value;
  for (int guard = 0; guard < 100000; ++guard) {
    const Gate& gate = gn_.gate(g);
    switch (gate.kind) {
      case GateKind::kVar:
        if (win_.value(g, t) != L3::X) return false;  // already determined
        *out = {g, t, v, false};
        return true;
      case GateKind::kDff:
        if (t == 0) return false;  // cannot justify against the reset state
        g = gate.fanin[0];
        --t;
        break;
      case GateKind::kBuf:
        g = gate.fanin[0];
        break;
      case GateKind::kNot:
        g = gate.fanin[0];
        v = !v;
        break;
      case GateKind::kAnd:
      case GateKind::kOr: {
        // For the controlling objective value pick any X input; for the
        // non-controlling value every input must comply - also pick an X
        // input (the others follow in later iterations).
        GateId pick = kNoGate;
        for (GateId in : gate.fanin)
          if (win_.value(in, t) == L3::X) {
            pick = in;
            break;
          }
        if (pick == kNoGate) return false;
        g = pick;
        // AND wants 1 -> inputs 1; AND wants 0 -> drive picked input 0.
        // OR mirrors.
        break;
      }
      case GateKind::kXor: {
        const L3 a = win_.value(gate.fanin[0], t);
        const L3 b = win_.value(gate.fanin[1], t);
        if (a == L3::X && b == L3::X) {
          g = gate.fanin[0];
          // target value for fanin0 is arbitrary; keep v.
        } else if (a == L3::X) {
          v = v != (b == L3::T);
          g = gate.fanin[0];
        } else if (b == L3::X) {
          v = v != (a == L3::T);
          g = gate.fanin[1];
        } else {
          return false;
        }
        break;
      }
      case GateKind::kConst0:
      case GateKind::kConst1:
        return false;
    }
  }
  return false;
}

CtrlJustResult CtrlJust::solve(const std::vector<CtrlObjective>& objectives,
                               Budget* budget) {
  if (!cfg_.use_engine) return solve_legacy(objectives, budget);

  // Canonicalize once: the signature drives the cache, and a contradictory
  // set (both values of one point) fails without any search.
  std::vector<Lit> key;
  const CanonStatus canon = canonicalize_objectives(objectives, &key);
  if (canon == CanonStatus::kContradiction) {
    CtrlJustResult res;
    res.status = TgStatus::kFailure;
    win_.clear();
    win_.imply();
    return res;
  }

  const bool cache_on = ctx_ && ctx_->cfg.use_cache;
  if (cache_on) {
    if (const JustCacheEntry* e = ctx_->cache.lookup(key)) {
      CtrlJustResult res;
      ++res.stats.cache_lookups;
      ++res.stats.cache_hits;
      res.status = e->success ? TgStatus::kSuccess : TgStatus::kFailure;
      res.sts_assignments = e->sts_assignments;
      res.cpi_assignments = e->cpi_assignments;
      // Replay the witness into the window so window() consumers (the
      // emitter's redirect/stall checks) see the same trajectory as after
      // a live solve.
      win_.clear();
      if (e->success) {
        for (auto [g, t, v] : e->cpi_assignments)
          win_.assign(g, t, l3_from_bool(v));
        for (auto [g, t, v] : e->sts_assignments)
          win_.assign(g, t, l3_from_bool(v));
      }
      win_.imply();
      return res;
    }
  }

  CtrlJustResult res = solve_engine(objectives, budget);
  if (cache_on) ++res.stats.cache_lookups;  // the miss that led here
  // Only definitive results are cacheable: a capped or deadline-aborted
  // failure proves nothing about the objective set.
  if (cache_on && res.abort == AbortReason::kNone) {
    JustCacheEntry e;
    e.success = res.status == TgStatus::kSuccess;
    e.sts_assignments = res.sts_assignments;
    e.cpi_assignments = res.cpi_assignments;
    ctx_->cache.insert(key, std::move(e));
  }
  return res;
}

CtrlJustResult CtrlJust::solve_legacy(
    const std::vector<CtrlObjective>& objectives, Budget* budget) {
  CtrlJustResult res;
  win_.clear();
  std::vector<Decision> stack;

  auto imply = [&] {
    win_.imply();
    ++res.stats.implications;
  };

  imply();
  for (std::uint64_t iter = 0;; ++iter) {
    if (res.stats.backtracks > cfg_.max_backtracks ||
        res.stats.decisions > cfg_.max_decisions) {
      res.status = TgStatus::kFailure;
      res.abort = res.stats.backtracks > cfg_.max_backtracks
                      ? AbortReason::kBacktracks
                      : AbortReason::kDecisions;
      break;
    }
    if (budget) {
      const AbortReason why = budget->exhausted();
      if (why != AbortReason::kNone) {
        res.status = TgStatus::kFailure;
        res.abort = why;
        break;
      }
    }
    // Classify objectives. Prefer backtracing an objective that wants a 1:
    // on the decoder's one-hot OR planes a 1-objective pins a complete
    // instruction term, after which the sibling 0-objectives usually follow
    // by implication; starting from a 0-objective assigns near-arbitrary
    // CPI bits and walks into conflicts.
    bool violated = false;
    const CtrlObjective* open = nullptr;
    for (const CtrlObjective& o : objectives) {
      const ObjState st = objective_state(o);
      if (st == ObjState::kViolated) {
        violated = true;
        break;
      }
      if (st == ObjState::kOpen && (!open || (o.value && !open->value)))
        open = &o;
    }

    Decision next{};
    bool have_next = false;
    if (!violated) {
      if (!open) {
        res.status = TgStatus::kSuccess;
        break;
      }
      have_next = backtrace(*open, &next);
      if (!have_next) violated = true;  // objective unreachable: conflict
    }

    if (violated) {
      // Backtrack: flip the most recent unflipped decision.
      ++res.stats.backtracks;
      if (budget) budget->charge_backtracks(1);
      bool resumed = false;
      while (!stack.empty()) {
        Decision& d = stack.back();
        win_.assign(d.gate, d.cycle, L3::X);
        if (!d.flipped) {
          d.flipped = true;
          d.value = !d.value;
          win_.assign(d.gate, d.cycle, l3_from_bool(d.value));
          if (cfg_.record_trace)
            res.trace.push_back(
                {SearchEvent::kFlip, d.gate, d.cycle, d.value});
          resumed = true;
          break;
        }
        if (cfg_.record_trace)
          res.trace.push_back({SearchEvent::kPop, d.gate, d.cycle, d.value});
        stack.pop_back();
      }
      if (!resumed) {
        res.status = TgStatus::kFailure;
        break;
      }
      imply();
      continue;
    }

    // Take the decision.
    ++res.stats.decisions;
    if (budget) budget->charge_decisions(1);
    win_.assign(next.gate, next.cycle, l3_from_bool(next.value));
    if (cfg_.record_trace)
      res.trace.push_back(
          {SearchEvent::kDecide, next.gate, next.cycle, next.value});
    stack.push_back(next);
    imply();
  }

  if (res.status == TgStatus::kSuccess) {
    for (auto [g, t, v] : win_.assignments()) {
      if (gn_.gate(g).role == SigRole::kSts)
        res.sts_assignments.emplace_back(g, t, v);
      else if (gn_.gate(g).role == SigRole::kCPI)
        res.cpi_assignments.emplace_back(g, t, v);
    }
  }
  return res;
}

bool CtrlJust::apply_nogoods(CtrlJustResult& res) {
  if (!ctx_ || !ctx_->cfg.use_nogoods) return true;
  ImplicationEngine& eng = *engine_;
  NogoodStore& store = ctx_->nogoods;
  if (watcher_)
    return watcher_->propagate(store, &res.stats.nogood_hits,
                               &res.stats.nogood_comparisons);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < store.size(); ++i) {
      const std::vector<Lit>& ng = store.lits(i);
      // A literal beyond this window does not exist here; the nogood
      // cannot fire (it stays valid for wider windows).
      bool applicable = true;
      int open = -1;
      std::vector<ImplicationEngine::NodeId> holding;
      for (std::size_t j = 0; j < ng.size() && applicable; ++j) {
        const Lit& l = ng[j];
        if (l.cycle >= cycles_) {
          applicable = false;
          break;
        }
        ++res.stats.nogood_comparisons;
        const L3 v = eng.value(l.gate, l.cycle);
        if (v == L3::X) {
          if (open >= 0) applicable = false;  // two free lits: inert
          open = static_cast<int>(j);
        } else if ((v == L3::T) != l.value) {
          applicable = false;  // a literal already fails: nogood satisfied
        } else {
          holding.push_back(eng.node(l.gate, l.cycle));
        }
      }
      if (!applicable) continue;
      store.touch(i);
      ++res.stats.nogood_hits;
      // All-but-one literals hold: the open one must be negated. With
      // open == -1 every literal holds; forcing any member's negation
      // conflicts immediately, with the right antecedents for the cut
      // walker.
      const Lit target = open >= 0 ? ng[static_cast<std::size_t>(open)] : ng[0];
      if (open < 0)
        holding.erase(std::find(holding.begin(), holding.end(),
                                eng.node(target.gate, target.cycle)));
      if (!eng.imply_from_nogood(target.gate, target.cycle, !target.value,
                                 holding))
        return false;
      if (!eng.propagate()) return false;
      changed = true;
    }
  }
  return true;
}

void CtrlJust::learn_conflict(CtrlJustResult& res) {
  if (!ctx_ || !ctx_->cfg.use_nogoods || !engine_->in_conflict()) return;
  if (ctx_->nogoods.learn(engine_->conflict_cut())) {
    ++res.stats.learned;
    if (watcher_) {
      NogoodStore& store = ctx_->nogoods;
      const std::size_t slot = store.last_index();
      watcher_->add(store.lits(slot), slot, store.id(slot));
    }
  }
}

// Engine-assisted search: the decision sequence is driven by the exact
// legacy view (forward imply of the decisions in win_, legacy backtrace,
// legacy objective classification), so a run that succeeds lands on the
// same success leaf - same witness, same window, same downstream DPRELAX /
// emitter behavior. The engine shadows every decision and contributes what
// the forward view cannot:
//  - backward propagation detects that a subtree is doomed the moment the
//    decision is asserted, instead of several decisions later (the whole
//    doomed subtree collapses into one backtrack);
//  - a variable the engine has already forced is decided at its forced
//    value directly, pre-flipped (the other value is a proven conflict);
//  - learned nogoods from earlier conflicts of this error's plans fire as
//    soon as their literals hold.
// Skipping doomed subtrees never changes the first success leaf of the
// chronological flip-search; it only reaches it in fewer steps.
CtrlJustResult CtrlJust::solve_engine(
    const std::vector<CtrlObjective>& objectives, Budget* budget) {
  CtrlJustResult res;
  if (!engine_) engine_ = std::make_unique<ImplicationEngine>(gn_, cycles_);
  ImplicationEngine& eng = *engine_;
  eng.reset();
  if (ctx_ && ctx_->cfg.use_nogoods && ctx_->cfg.use_nogood_watches) {
    if (!watcher_) watcher_ = std::make_unique<NogoodWatcher>(eng);
    watcher_->rebuild(ctx_->nogoods);
  } else {
    watcher_.reset();
  }
  win_.clear();
  std::vector<Decision> stack;

  auto imply = [&] {
    win_.imply();
    ++res.stats.implications;
  };
  auto shadow = [&](GateId g, unsigned t, bool v, bool decision) {
    const bool ok = eng.assert_lit(g, t, v, decision) && eng.propagate() &&
                    apply_nogoods(res);
    if (!ok) learn_conflict(res);
    return ok;
  };

  bool conflict = false;
  for (const CtrlObjective& o : objectives)
    if (!shadow(o.gate, o.cycle, o.value, false)) {
      conflict = true;
      break;
    }

  imply();
  for (;;) {
    // A probe-vetted search spends backtracks only on subtrees the
    // lane + engine lookahead could not refute, so the same search power
    // fits in a fraction of the blind-flip budget (ctrljust.h,
    // probe_budget_divisor).
    const std::uint64_t bt_cap =
        cfg_.use_probes && cfg_.probe_budget_divisor > 1
            ? std::max<std::uint64_t>(1,
                                      cfg_.max_backtracks /
                                          cfg_.probe_budget_divisor)
            : cfg_.max_backtracks;
    if (res.stats.backtracks > bt_cap ||
        res.stats.decisions > cfg_.max_decisions) {
      res.status = TgStatus::kFailure;
      res.abort = res.stats.backtracks > bt_cap
                      ? AbortReason::kBacktracks
                      : AbortReason::kDecisions;
      break;
    }
    if (budget) {
      const AbortReason why = budget->exhausted();
      if (why != AbortReason::kNone) {
        res.status = TgStatus::kFailure;
        res.abort = why;
        break;
      }
    }

    bool violated = conflict;
    const CtrlObjective* open = nullptr;
    if (!violated) {
      for (const CtrlObjective& o : objectives) {
        const ObjState st = objective_state(o);
        if (st == ObjState::kViolated) {
          violated = true;
          break;
        }
        if (st == ObjState::kOpen && (!open || (o.value && !open->value)))
          open = &o;
      }
    }

    Decision next{};
    bool have_next = false;
    if (!violated) {
      if (!open) {
        res.status = TgStatus::kSuccess;
        break;
      }
      have_next = backtrace(*open, &next);
      if (!have_next) violated = true;  // objective unreachable: conflict
    }

    // Batched probe: at a genuinely free branch point, speculatively push
    // the open objectives' backtrace targets and the remaining free
    // decision variables - both polarities, one lane each - through the
    // lane engine before descending. A candidate doomed both ways proves
    // the node has no success leaf (probe_batch.h), so it collapses into a
    // backtrack right here; a doomed polarity forces the survivor into the
    // implication engine, where the hint path below turns it into a
    // pre-flipped non-decision. Neither changes any detection outcome -
    // only the effort spent reaching it.
    if (cfg_.use_probes && !violated &&
        eng.value(next.gate, next.cycle) == L3::X) {
      const auto probe_t0 = std::chrono::steady_clock::now();
      if (!probe_) {
        ProbeBatchConfig pcfg;
        pcfg.lanes = cfg_.probe_lanes;
        pcfg.serial = cfg_.probe_serial;
        pcfg.count_implied = cfg_.probe_order;
        probe_ = std::make_unique<ProbeBatch>(gn_, cycles_, pcfg);
      }
      probe_cands_.clear();
      probe_alts_.clear();
      probe_cands_.push_back({next.gate, next.cycle});
      probe_alts_.push_back(next);
      for (const CtrlObjective& o : objectives) {
        if (&o == open || objective_state(o) != ObjState::kOpen) continue;
        Decision alt{};
        if (!backtrace(o, &alt)) continue;
        if (eng.value(alt.gate, alt.cycle) != L3::X) continue;
        bool dup = false;
        for (const ProbeCand& c : probe_cands_)
          dup = dup || (c.gate == alt.gate && c.cycle == alt.cycle);
        if (!dup) {
          probe_cands_.push_back({alt.gate, alt.cycle});
          probe_alts_.push_back(alt);
        }
      }
      // Only the backtrace targets above are decision-order candidates;
      // everything appended below is failed-literal material only.
      const std::size_t n_targets = probe_cands_.size();
      // Failed-literal sweep: every still-free decision variable at any
      // cycle that can reach an objective. Lanes are cheap - a doomed
      // polarity anywhere becomes a forced literal, and a doomed-both-ways
      // variable proves the node UNSAT outright.
      unsigned probe_tmax = 0;
      for (const CtrlObjective& o : objectives)
        probe_tmax = std::max(probe_tmax, o.cycle + 1);
      probe_tmax = std::min(probe_tmax, cycles_);
      if (probe_vars_.empty())
        for (GateId g = 0; g < gn_.num_gates(); ++g)
          if (gn_.gate(g).kind == GateKind::kVar &&
              (gn_.gate(g).role == SigRole::kCPI ||
               gn_.gate(g).role == SigRole::kSts))
            probe_vars_.push_back(g);
      for (unsigned t = 0; t < probe_tmax; ++t)
        for (GateId g : probe_vars_) {
          if (win_.value(g, t) != L3::X || eng.value(g, t) != L3::X) continue;
          bool dup = false;
          for (std::size_t i = 0; i < n_targets; ++i)
            dup = dup ||
                  (probe_cands_[i].gate == g && probe_cands_[i].cycle == t);
          if (!dup) {
            probe_cands_.push_back({g, t});
            probe_alts_.push_back({g, t, false, false});
          }
        }
      // Base trajectory: the window's forward implications merged with the
      // engine's facts (backward propagation knows values the forward
      // window view cannot see; both are sound, so the union is).
      const auto base = [this, &eng](GateId g, unsigned t) {
        const L3 v = win_.value(g, t);
        return v != L3::X ? v : eng.value(g, t);
      };
      // Lane probe + engine failed-literal fixpoint. Each round:
      //  1. one masked lane sweep over every still-free candidate - a
      //     candidate doomed both ways collapses the node outright, a
      //     single doomed polarity forces the survivor into the engine
      //     (an implication, not a decision);
      //  2. survivors are vetted through an engine lookahead (assert,
      //     propagate, pop) - backward propagation refutes assignments the
      //     forward cone cannot see, and refuted polarities force or
      //     collapse the same way.
      // Forced literals strengthen the base of the next round, so rounds
      // repeat until one forces nothing. Every forcing or collapse here
      // replaces the decision + conflict + backtrack round trip the serial
      // search spends discovering the same dead end.
      const auto engine_dooms = [&](GateId g, unsigned t, bool v) {
        eng.push_level();
        const bool ok = eng.assert_lit(g, t, v, true) && eng.propagate();
        eng.pop_to(static_cast<unsigned>(stack.size()));
        if (watcher_) watcher_->on_pop(eng.trail().size());
        return !ok;
      };
      std::vector<ProbeCand> round;  // still-free slice of probe_cands_
      std::vector<ProbeCand> pair_round;
      std::vector<ProbeOutcome> pair_out0, pair_out1;
      std::vector<std::uint32_t> scores(cfg_.probe_order ? n_targets : 0, 0);
      // The branch variable the serial search is about to decide. With
      // --probe-order off this is exactly the backtrace pick (today's
      // decision order); with it on, the target with the highest
      // implied-literal score from the first probe round, ties keeping the
      // objective order. Failed-literal extras are never decision
      // candidates - deciding a variable no objective backtraces to would
      // waste the branch.
      const auto choose_branch = [&]() -> Decision {
        if (!cfg_.probe_order) return probe_alts_[0];
        std::size_t pick = 0;
        std::uint32_t best = 0;
        for (std::size_t i = 0; i < n_targets; ++i)
          if (i == 0 || scores[i] > best) {
            best = scores[i];
            pick = i;
          }
        return probe_alts_[pick];
      };
      bool first_round = true;
      bool forced_any = true;
      while (forced_any && !violated) {
        forced_any = false;
        round.clear();
        for (const ProbeCand& c : probe_cands_)
          if (win_.value(c.gate, c.cycle) == L3::X &&
              eng.value(c.gate, c.cycle) == L3::X)
            round.push_back(c);
        if (round.empty()) break;
        const ProbeBatchStats before = probe_->stats();
        probe_->run(base, objectives, round, &probe_outs_);
        res.stats.probe_batches += probe_->stats().batches - before.batches;
        res.stats.probe_lanes += probe_->stats().lanes - before.lanes;
        if (first_round && cfg_.probe_order) {
          // The first round covers every candidate in list order, so the
          // targets' implied-literal scores are at slots [0, n_targets).
          for (std::size_t i = 0; i < n_targets; ++i)
            scores[i] = probe_outs_[i].implied[probe_alts_[i].value ? 1 : 0];
        }
        first_round = false;
        for (std::size_t i = 0; i < round.size() && !violated; ++i) {
          const ProbeOutcome& oc = probe_outs_[i];
          if (oc.doomed[0] && oc.doomed[1]) {
            violated = true;  // no success leaf below this node
            ++res.stats.probe_prunes;
          } else if (oc.doomed[0] || oc.doomed[1]) {
            // Only the surviving polarity can sit below a success leaf;
            // assert it as an engine fact of this node (popped with it).
            if (!shadow(round[i].gate, round[i].cycle, oc.doomed[0], false))
              violated = true;  // survivor refuted too: the node is UNSAT
            ++res.stats.probe_prunes;
            forced_any = true;
          }
        }
        for (std::size_t i = 0; i < round.size() && !violated; ++i) {
          const ProbeCand& c = round[i];
          if (eng.value(c.gate, c.cycle) != L3::X) continue;  // forced above
          const bool d0 = engine_dooms(c.gate, c.cycle, false);
          const bool d1 = engine_dooms(c.gate, c.cycle, true);
          if (d0 && d1) {
            violated = true;  // both polarities refuted: the node is UNSAT
            ++res.stats.probe_prunes;
          } else if (d0 || d1) {
            if (!shadow(c.gate, c.cycle, d0, false)) violated = true;
            ++res.stats.probe_prunes;
            forced_any = true;
          }
        }
        // Pair probing (dilemma rule), once the one-literal fixpoint is
        // dry: anchor every lane on the branch variable the search is
        // about to decide and re-probe the surviving candidates beneath
        // each polarity. Any total assignment extending this node picks
        // some value for every variable, so
        //  - a candidate doomed BOTH ways beneath next := v refutes the
        //    anchor polarity v itself (the conflicts the serial search
        //    only reaches two decisions down), and
        //  - a candidate polarity doomed beneath BOTH anchor values is
        //    refuted outright and forces its survivor.
        if (!violated && !forced_any) {
          const Decision bv = choose_branch();
          if (win_.value(bv.gate, bv.cycle) == L3::X &&
              eng.value(bv.gate, bv.cycle) == L3::X) {
            pair_round.clear();
            for (const ProbeCand& c : round)
              if ((c.gate != bv.gate || c.cycle != bv.cycle) &&
                  win_.value(c.gate, c.cycle) == L3::X &&
                  eng.value(c.gate, c.cycle) == L3::X)
                pair_round.push_back(c);
            if (!pair_round.empty()) {
              const ProbeBatchStats pb = probe_->stats();
              probe_->run(base, objectives, {bv.gate, bv.cycle, false},
                          pair_round, &pair_out0);
              probe_->run(base, objectives, {bv.gate, bv.cycle, true},
                          pair_round, &pair_out1);
              res.stats.probe_batches += probe_->stats().batches - pb.batches;
              res.stats.probe_lanes += probe_->stats().lanes - pb.lanes;
              bool doomA[2] = {false, false};
              for (std::size_t i = 0; i < pair_round.size(); ++i) {
                doomA[0] = doomA[0] || (pair_out0[i].doomed[0] &&
                                        pair_out0[i].doomed[1]);
                doomA[1] = doomA[1] || (pair_out1[i].doomed[0] &&
                                        pair_out1[i].doomed[1]);
              }
              if (doomA[0] && doomA[1]) {
                violated = true;  // both branch polarities refuted
                ++res.stats.probe_prunes;
              } else if (doomA[0] || doomA[1]) {
                if (!shadow(bv.gate, bv.cycle, doomA[0], false))
                  violated = true;
                ++res.stats.probe_prunes;
                forced_any = true;
              }
              for (std::size_t i = 0; i < pair_round.size() && !violated;
                   ++i)
                for (int b = 0; b < 2 && !violated; ++b)
                  if (pair_out0[i].doomed[b] && pair_out1[i].doomed[b] &&
                      eng.value(pair_round[i].gate, pair_round[i].cycle) ==
                          L3::X) {
                    if (!shadow(pair_round[i].gate, pair_round[i].cycle,
                                b == 0, false))
                      violated = true;
                    ++res.stats.probe_prunes;
                    forced_any = true;
                  }
            }
          }
        }
      }
      if (!violated) next = choose_branch();
      res.stats.probe_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - probe_t0)
              .count());
    }

    if (violated) {
      ++res.stats.backtracks;
      if (budget) budget->charge_backtracks(1);
      bool resumed = false;
      while (!stack.empty()) {
        Decision& d = stack.back();
        win_.assign(d.gate, d.cycle, L3::X);
        if (!d.flipped) {
          d.flipped = true;
          d.value = !d.value;
          win_.assign(d.gate, d.cycle, l3_from_bool(d.value));
          if (cfg_.record_trace)
            res.trace.push_back(
                {SearchEvent::kFlip, d.gate, d.cycle, d.value});
          eng.pop_to(static_cast<unsigned>(stack.size()) - 1);
          if (watcher_) watcher_->on_pop(eng.trail().size());
          eng.push_level();
          conflict = !shadow(d.gate, d.cycle, d.value, true);
          resumed = true;
          break;
        }
        if (cfg_.record_trace)
          res.trace.push_back({SearchEvent::kPop, d.gate, d.cycle, d.value});
        eng.pop_to(static_cast<unsigned>(stack.size()) - 1);
        if (watcher_) watcher_->on_pop(eng.trail().size());
        stack.pop_back();
      }
      if (!resumed) {
        res.status = TgStatus::kFailure;
        break;
      }
      imply();
      continue;
    }

    // Engine hint: a variable the engine has forced can only take that
    // value; trying the other one is a proven dead end. Decide the forced
    // value and mark the decision pre-flipped so backtracking pops it.
    // A forced assignment is a propagation, not a branch point, so it
    // counts as an implication rather than a decision.
    const L3 hint = eng.value(next.gate, next.cycle);
    if (hint != L3::X) {
      next.value = hint == L3::T;
      next.flipped = true;
      ++res.stats.implications;
    } else {
      ++res.stats.decisions;
      if (budget) budget->charge_decisions(1);
    }
    win_.assign(next.gate, next.cycle, l3_from_bool(next.value));
    if (cfg_.record_trace)
      res.trace.push_back(
          {SearchEvent::kDecide, next.gate, next.cycle, next.value});
    stack.push_back(next);
    eng.push_level();
    conflict = !shadow(next.gate, next.cycle, next.value, true);
    imply();
  }

  res.stats.implications += eng.propagations();
  if (res.status == TgStatus::kSuccess) {
    for (auto [g, t, v] : win_.assignments()) {
      if (gn_.gate(g).role == SigRole::kSts)
        res.sts_assignments.emplace_back(g, t, v);
      else if (gn_.gate(g).role == SigRole::kCPI)
        res.cpi_assignments.emplace_back(g, t, v);
    }
  }
  return res;
}

}  // namespace hltg
