#include "core/dptrace.h"

#include <algorithm>
#include <functional>

#include "util/word.h"

namespace hltg {

DpTrace::DpTrace(const DlxModel& m, DpTraceConfig cfg)
    : m_(m), cfg_(cfg), scoap_(compute_scoap(m.dp)) {
  build_edges();
  compute_observable();
}

void DpTrace::ctrl_requirement(NetId ctrl_net, std::uint64_t value,
                               std::vector<CtrlObjective>* objs,
                               std::vector<RelaxConstraint>* cons) const {
  const Net& n = m_.dp.net(ctrl_net);
  if (n.role == NetRole::kCtrl) {
    const CtrlBind* cb = m_.find_ctrl(ctrl_net);
    for (unsigned b = 0; b < n.width; ++b)
      objs->push_back({cb->bits[b], 0, ((value >> b) & 1) != 0});
  } else {
    // Data-dependent select (e.g. byte-lane decode): a value requirement.
    RelaxConstraint rc;
    rc.net = ctrl_net;
    rc.mask = mask_bits(n.width);
    rc.value = value;
    rc.why = "select";
    cons->push_back(rc);
  }
}

void DpTrace::build_edges() {
  edges_.assign(m_.dp.num_nets(), {});
  for (ModId mi = 0; mi < m_.dp.num_modules(); ++mi) {
    const Module& mod = m_.dp.module(mi);
    const auto cls = module_class(mod.kind);
    for (unsigned i = 0; i < mod.data_in.size(); ++i) {
      const NetId from = mod.data_in[i];
      Edge e;
      e.to_net = mod.out;
      switch (mod.kind) {
        case ModuleKind::kOutput:
          e.observe = mi;
          e.to_net = kNoNet;
          break;
        case ModuleKind::kMemWrite: {
          // Any corrupted input (addr, data, bemask) is visible on the
          // memory port once a store commits. For the address and data
          // routes, force a word-size store so the byte-enable mask cannot
          // hide the difference (an address difference in the lane bits
          // [1:0] is still invisible - the port is word-aligned - so the
          // address route costs more). A bemask-route difference is visible
          // under any store size.
          ctrl_requirement(mod.ctrl_in[0], 1, &e.objectives_rel,
                           &e.constraints_rel);
          if (i < 2)
            ctrl_requirement(m_.sig.c_size_sel,
                             static_cast<unsigned>(MemSize::kWord),
                             &e.objectives_rel, &e.constraints_rel);
          if (i == 0) e.cost = 6;  // address route: partially lossy
          e.observe = mi;
          e.to_net = kNoNet;
          break;
        }
        case ModuleKind::kRfWrite: {
          // Corrupted write-back value or destination shows in the final
          // register-file state - provided the write is not to R0 (which is
          // hardwired and swallows the difference).
          ctrl_requirement(mod.ctrl_in[0], 1, &e.objectives_rel,
                           &e.constraints_rel);
          RelaxConstraint rc;
          rc.kind = RelaxKind::kGoodNotEquals;
          rc.net = mod.data_in[0];
          rc.mask = 31;
          rc.value = 0;
          rc.why = "dest-not-r0";
          e.constraints_rel.push_back(rc);
          e.observe = mi;
          e.to_net = kNoNet;
          e.cost = cfg_.rfwrite_penalty;
          break;
        }
        case ModuleKind::kReg: {
          e.dt = 1;
          const bool has_en = mod.tag & 1, has_clr = mod.tag & 2;
          unsigned slot = 0;
          if (has_en)
            ctrl_requirement(mod.ctrl_in[slot++], 1, &e.objectives_rel,
                             &e.constraints_rel);
          if (has_clr)
            ctrl_requirement(mod.ctrl_in[slot], 0, &e.objectives_rel,
                             &e.constraints_rel);
          break;
        }
        case ModuleKind::kMux:
          ctrl_requirement(mod.ctrl_in[0], i, &e.objectives_rel,
                           &e.constraints_rel);
          break;
        case ModuleKind::kAndW:
        case ModuleKind::kNandW: {
          for (unsigned j = 0; j < mod.data_in.size(); ++j)
            if (j != i) {
              RelaxConstraint rc;
              rc.net = mod.data_in[j];
              rc.mask = mask_bits(m_.dp.net(mod.data_in[j]).width);
              rc.value = rc.mask;  // all-ones: non-masking for AND
              rc.why = "and-side";
              e.constraints_rel.push_back(rc);
            }
          break;
        }
        case ModuleKind::kOrW:
        case ModuleKind::kNorW: {
          for (unsigned j = 0; j < mod.data_in.size(); ++j)
            if (j != i) {
              RelaxConstraint rc;
              rc.net = mod.data_in[j];
              rc.mask = mask_bits(m_.dp.net(mod.data_in[j]).width);
              rc.value = 0;  // zeros: non-masking for OR
              rc.why = "or-side";
              e.constraints_rel.push_back(rc);
            }
          break;
        }
        case ModuleKind::kShl:
        case ModuleKind::kShrL:
        case ModuleKind::kShrA: {
          if (i == 0) {
            // Propagation through the value port: demand a lossless (zero)
            // shift amount, unless the amount is a constant (then the shift
            // is a fixed slice; differences usually survive and the final
            // dual-simulation confirms).
            const NetId amt = mod.data_in[1];
            const ModId ad = m_.dp.net(amt).driver;
            if (ad == kNoMod ||
                m_.dp.module(ad).kind != ModuleKind::kConst) {
              RelaxConstraint rc;
              rc.net = amt;
              rc.mask = mask_bits(m_.dp.net(amt).width);
              rc.value = 0;  // shift by zero: lossless pass-through
              rc.why = "shift-amount";
              e.constraints_rel.push_back(rc);
            }
          } else {
            // Propagation through the amount port: two different shift
            // amounts produce different outputs whenever the shifted value
            // is nonzero (rare truncation coincidences are caught by the
            // final confirmation).
            RelaxConstraint rc;
            rc.kind = RelaxKind::kGoodNotEquals;
            rc.net = mod.data_in[0];
            rc.mask = mask_bits(m_.dp.net(mod.data_in[0]).width);
            rc.value = 0;
            rc.why = "shift-value-nonzero";
            e.constraints_rel.push_back(rc);
            e.cost = 3;
          }
          break;
        }
        case ModuleKind::kSlice:
          e.cost = cfg_.slice_penalty;  // difference may fall outside
          break;
        case ModuleKind::kAdd:
        case ModuleKind::kSub:
        case ModuleKind::kXorW:
        case ModuleKind::kXnorW:
        case ModuleKind::kNotW:
        case ModuleKind::kConcat:
        case ModuleKind::kZext:
        case ModuleKind::kSext:
          break;  // ADD-class / lossless structural: free propagation
        case ModuleKind::kEq:
        case ModuleKind::kNe: {
          // A difference on one operand of an (in)equality flips the output
          // provided the good operands are equal (then the erroneous side
          // is necessarily unequal). Require the good output accordingly.
          RelaxConstraint rc;
          rc.net = mod.out;
          rc.mask = 1;
          rc.value = mod.kind == ModuleKind::kEq ? 1 : 0;
          rc.why = "pred-equal";
          e.constraints_rel.push_back(rc);
          e.cost = 2;
          break;
        }
        default:
          continue;  // other predicates, state reads: no propagation
      }
      (void)cls;
      edges_[from].push_back(std::move(e));
    }
  }
  // Data-dependent mux selects (byte-lane decode etc.): a select difference
  // propagates when the selectable inputs differ; with distinct-constant
  // inputs (the common case here) that is guaranteed.
  for (ModId mi = 0; mi < m_.dp.num_modules(); ++mi) {
    const Module& mod = m_.dp.module(mi);
    if (mod.kind != ModuleKind::kMux) continue;
    const NetId sel = mod.ctrl_in[0];
    if (m_.dp.net(sel).role == NetRole::kCtrl) continue;  // controller-owned
    Edge e;
    e.to_net = mod.out;
    e.cost = 2;
    RelaxConstraint rc;
    rc.kind = RelaxKind::kGoodNetsDiffer;
    rc.net = mod.data_in[0];
    rc.net2 = mod.data_in[1];
    rc.why = "mux-inputs-differ";
    e.constraints_rel.push_back(rc);
    edges_[sel].push_back(std::move(e));
  }
  add_sts_consumption_edges();
}

void DpTrace::add_sts_consumption_edges() {
  // Bypass-steering STS bits: a difference on the comparator output (or its
  // gating conditions) flips a bypass select, which diverges the EX operand
  // whenever the bypass source and the stale register value differ. These
  // edges let DPTRACE propagate errors on hazard-comparator logic - the
  // "essential instruction interaction" signals the paper's model exposes.
  const GateId reads_rs1 = m_.ctrl.find("cpr.idex_reads_rs1");
  const GateId reads_rsb = m_.ctrl.find("cpr.idex_reads_rsb");
  const GateId mem_wb_en = m_.ctrl.find("cpr.exmem_wb_en");
  const GateId mem_is_load = m_.ctrl.find("cpr.exmem_is_load");
  const GateId wb_wb_en = m_.ctrl.find("cpr.memwb_wb_en");
  const GateId fwda_mem_g = m_.ctrl.find("cg.fwda_mem");
  const GateId fwdb_mem_g = m_.ctrl.find("cg.fwdb_mem");
  const ModId a_byp = m_.dp.find_module("ex.a_byp");
  const ModId b_byp = m_.dp.find_module("ex.b_byp");
  if (a_byp == kNoMod || b_byp == kNoMod) return;
  const Module& am = m_.dp.module(a_byp);
  const Module& bm = m_.dp.module(b_byp);

  auto sts_gate = [&](NetId n) {
    const StsBind* sb = m_.find_sts(n);
    return sb ? sb->gate : kNoGate;
  };
  struct Spec {
    NetId site;             ///< the STS net whose difference we consume
    bool a_side;            ///< bypass operand A or B
    bool from_mem;          ///< EX/MEM source (else MEM/WB)
    NetId extra_sts;        ///< additional STS that must be 1 (or kNoNet)
  };
  const DlxSignals& s = m_.sig;
  const std::vector<Spec> specs = {
      {s.s_fwda_mem, true, true, s.s_dest_mem_nz},
      {s.s_fwdb_mem, false, true, s.s_dest_mem_nz},
      {s.s_fwda_wb, true, false, s.s_dest_wb_nz},
      {s.s_fwdb_wb, false, false, s.s_dest_wb_nz},
      {s.s_dest_mem_nz, true, true, s.s_fwda_mem},
      {s.s_dest_wb_nz, true, false, s.s_fwda_wb},
  };
  for (const Spec& sp : specs) {
    const Module& mux = sp.a_side ? am : bm;
    Edge e;
    e.to_net = mux.out;
    e.cost = 3;
    auto obj = [&](GateId g, bool v) {
      if (g != kNoGate) e.objectives_rel.push_back({g, 0, v});
    };
    obj(sp.a_side ? reads_rs1 : reads_rsb, true);
    obj(sp.from_mem ? mem_wb_en : wb_wb_en, true);
    if (sp.from_mem) obj(mem_is_load, false);
    if (!sp.from_mem)  // WB forward must not be shadowed by a MEM forward
      obj(sp.a_side ? fwda_mem_g : fwdb_mem_g, false);
    obj(sts_gate(sp.extra_sts), true);
    RelaxConstraint rc;
    rc.kind = RelaxKind::kGoodNetsDiffer;
    rc.net = mux.data_in[0];                       // stale operand
    rc.net2 = mux.data_in[sp.from_mem ? 1 : 2];    // bypass source
    rc.why = "bypass-divergence";
    e.constraints_rel.push_back(rc);
    edges_[sp.site].push_back(std::move(e));
  }
}

void DpTrace::compute_observable() {
  // Optimistic backward reachability over the static graph - the O-state
  // pre-pass: a net is potentially observable (O-state can become O3) iff an
  // edge chain reaches an observation sink. Mark redirect-requiring edges
  // first so the second pass can exclude them.
  const CtrlBind* redir = m_.find_ctrl(m_.sig.c_redirect);
  for (auto& edge_list : edges_)
    for (Edge& e : edge_list)
      for (const CtrlObjective& o : e.objectives_rel)
        if (redir && o.gate == redir->bits[0] && o.value)
          e.needs_redirect = true;

  auto sweep = [&](std::vector<bool>& obs, bool allow_redirect) {
    obs.assign(m_.dp.num_nets(), false);
    bool changed = true;
    while (changed) {
      changed = false;
      for (NetId n = 0; n < m_.dp.num_nets(); ++n) {
        if (obs[n]) continue;
        for (const Edge& e : edges_[n]) {
          if (!allow_redirect && e.needs_redirect) continue;
          if (e.observe != kNoMod ||
              (e.to_net != kNoNet && obs[e.to_net])) {
            obs[n] = true;
            changed = true;
            break;
          }
        }
      }
    }
  };
  sweep(observable_, true);
  sweep(observable_no_redirect_, false);
}

unsigned DpTrace::earliest_cycle(NetId n) const {
  switch (m_.dp.net(n).stage) {
    case Stage::kIF: return 0;
    case Stage::kID: return 1;
    case Stage::kEX: return 2;
    case Stage::kMEM: return 3;
    case Stage::kWB: return 4;
    default: return 0;
  }
}

const DpTrace::SearchMemo* DpTrace::find_memo(NetId site,
                                              unsigned depth) const {
  const auto it = search_memo_.find(site);
  if (it == search_memo_.end()) return nullptr;
  for (const SearchMemo& m : it->second) {
    if (m.depth_run == depth) return &m;
    // Bound-inert entry: the expansion never attempted an offset at its
    // limit, so it equals the unbounded search and covers any deeper bound.
    if (m.max_t2 < m.depth_run && m.max_t2 < depth) return &m;
  }
  return nullptr;
}

std::vector<PathPlan> DpTrace::plans(
    NetId site, const std::vector<RelaxConstraint>& activation,
    Budget* budget, DpTraceStats* stats) const {
  std::vector<PathPlan> out;
  if (!observable_[site]) return out;

  // Best-first search over (net, offset) nodes in activation-relative
  // "offset" space (offset = cycle - t_act). Every edge annotation is
  // cycle-relative, so one activation cycle's search depends only on its
  // depth limit D = window - t_act; reconstruction adds t_act back.
  //
  // Search reuse (cfg_.reuse): every recorded expansion lives in the
  // per-site memo for the tracer's lifetime, so reuse fires both *within*
  // one call - the t_act loop runs depth limits window-t_min,
  // window-t_min-1, ... and a bound-inert expansion (max_t2 < D) replays
  // for every later activation cycle - and *across* calls: errors sharing
  // the site (every stuck bit of one bus) and the window retry replay the
  // exact recorded tree instead of re-expanding. A memoized tree - pop
  // order, found list and all - is byte-for-byte what a fresh search would
  // rebuild, shifted by t_act, because the search is a pure function of
  // (site, depth limit). (A naive "filter deeper nodes out of the memo"
  // would NOT be equivalent: dropping nodes changes queue insertion
  // indices, which break ties among equal-cost entries.)
  //
  // The queue/visited containers are hoisted out of the t_act loop and the
  // per-search visited set is a single flat epoch-stamped array, so a
  // re-expansion costs no reallocation either.
  const std::size_t num_nets = m_.dp.num_nets();
  // Min-heap on (cost, node index); ties cannot happen (indices unique), so
  // the pop order equals the former std::priority_queue exactly.
  std::vector<std::pair<unsigned, int>> heap;
  heap.reserve(256);
  std::vector<std::uint32_t> seen_epoch(
      static_cast<std::size_t>(cfg_.window) * num_nets, 0);
  std::vector<std::uint32_t> sink_epoch(m_.dp.num_modules(), 0);
  std::uint32_t epoch = 0;

  // `found` collects several alternative observation routes per activation
  // cycle, preferring *distinct* observation modules (different sinks catch
  // differences the cheapest one may structurally lose).
  auto run_search = [&](SearchMemo& mem, unsigned depth_limit) {
    ++epoch;
    mem.nodes.clear();
    mem.found.clear();
    mem.depth_run = depth_limit;
    mem.max_t2 = 0;
    if (stats) ++stats->searches_run;
    mem.nodes.push_back({site, 0, 0, -1, -1});
    heap.clear();
    heap.emplace_back(0u, 0);
    seen_epoch[site] = epoch;  // offset 0
    while (!heap.empty() && mem.found.size() < cfg_.plans_per_activation) {
      std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
      const auto [cost, ni] = heap.back();
      heap.pop_back();
      if (stats) ++stats->expansions;
      const SearchNode nd = mem.nodes[ni];
      for (std::size_t ei = 0; ei < edges_[nd.net].size(); ++ei) {
        const Edge& e = edges_[nd.net][ei];
        if (e.needs_redirect) continue;  // taken-branch emission unsupported
        const unsigned t2 = nd.offset + e.dt;
        if (t2 > mem.max_t2) mem.max_t2 = t2;
        if (t2 >= depth_limit) continue;
        if (e.observe != kNoMod) {
          if (sink_epoch[e.observe] == epoch)
            continue;  // already have a route to this sink
          sink_epoch[e.observe] = epoch;
          mem.found.emplace_back(ni, static_cast<int>(ei));
          continue;
        }
        if (!observable_[e.to_net]) continue;
        std::uint32_t& mark =
            seen_epoch[static_cast<std::size_t>(t2) * num_nets + e.to_net];
        if (mark == epoch) continue;
        mark = epoch;
        mem.nodes.push_back({e.to_net, t2, cost + e.cost, ni,
                             static_cast<int>(ei)});
        heap.emplace_back(cost + e.cost,
                          static_cast<int>(mem.nodes.size() - 1));
        std::push_heap(heap.begin(), heap.end(), std::greater<>{});
      }
    }
  };

  SearchMemo scratch;  // reuse off: re-expanded every activation cycle
  const unsigned t_min = earliest_cycle(site);
  for (unsigned t_act = t_min;
       t_act + 1 < cfg_.window && out.size() < cfg_.max_plans; ++t_act) {
    // A fired budget stops enumeration; the plans found so far are still
    // valid, so TG can try them (and will hit the same budget right away).
    if (budget && budget->exhausted() != AbortReason::kNone) break;
    const unsigned depth_limit = cfg_.window - t_act;
    const SearchMemo* mem = nullptr;
    if (cfg_.reuse) {
      mem = find_memo(site, depth_limit);
      if (mem) {
        if (stats) ++stats->searches_reused;
      } else {
        std::vector<SearchMemo>& recorded = search_memo_[site];
        recorded.emplace_back();
        run_search(recorded.back(), depth_limit);
        mem = &recorded.back();
      }
    } else {
      run_search(scratch, depth_limit);
      mem = &scratch;
    }
    const std::vector<SearchNode>& nodes = mem->nodes;
    const std::vector<std::pair<int, int>>& found = mem->found;

    // Reconstruct one plan per observation: walk parents, offsetting the
    // cycle-relative objective/constraint annotations by each hop's cycle.
    for (auto [fnode, fedge] : found) {
      if (out.size() >= cfg_.max_plans) break;
      PathPlan plan;
      plan.activate_cycle = t_act;
      plan.observe_module = edges_[nodes[fnode].net][fedge].observe;
      std::vector<std::pair<int, int>> chain;  // (node, edge-used-to-leave)
      int cur = fnode;
      int edge_used = fedge;
      while (cur >= 0) {
        chain.push_back({cur, edge_used});
        edge_used = nodes[cur].via_edge;
        cur = nodes[cur].parent;
      }
      std::reverse(chain.begin(), chain.end());
      for (auto [ni, ei] : chain) {
        const SearchNode& nd = nodes[ni];
        const unsigned cycle = nd.offset + t_act;
        plan.hops.push_back({nd.net, cycle});
        if (ei < 0) continue;
        const Edge& e = edges_[nd.net][ei];
        for (CtrlObjective o : e.objectives_rel) {
          o.cycle = cycle;
          plan.ctrl_objectives.push_back(o);
        }
        for (RelaxConstraint c : e.constraints_rel) {
          c.cycle = cycle;
          plan.relax_constraints.push_back(c);
        }
        if (e.observe != kNoMod) plan.observe_cycle = cycle;
      }
      for (RelaxConstraint act : activation) {
        act.cycle = t_act;
        plan.relax_constraints.push_back(act);
      }
      // Objective hygiene for the downstream justification queue: drop
      // exact repeats (stable order - the search heuristics are order-
      // sensitive, and the cache canonicalizes separately) and discard a
      // plan that demands both values of one (gate, cycle) point - it is
      // unsatisfiable before any search.
      std::vector<CtrlObjective> uniq;
      bool contradictory = false;
      for (const CtrlObjective& o : plan.ctrl_objectives) {
        bool dup = false;
        for (const CtrlObjective& u : uniq)
          if (u.gate == o.gate && u.cycle == o.cycle) {
            if (u.value == o.value)
              dup = true;
            else
              contradictory = true;
            break;
          }
        if (contradictory) break;
        if (!dup) uniq.push_back(o);
      }
      if (contradictory) continue;
      plan.ctrl_objectives = std::move(uniq);
      out.push_back(std::move(plan));
    }
  }
  return out;
}

}  // namespace hltg
