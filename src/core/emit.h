// Test emission: mapping CTRLJUST's cycle-indexed CPI decisions onto the
// program image.
//
// CTRLJUST decides instruction bits per *fetch cycle*; the program is
// indexed by *address*. The two coincide through the PC trajectory, which
// the controller's own implied stall values determine (a stalled cycle
// re-fetches the same address). Redirects are not emitted by the generator
// (plans never require them), so the trajectory is straight-line.
#pragma once

#include <string>
#include <tuple>
#include <vector>

#include "core/dprelax.h"
#include "core/unroll.h"
#include "dlx/dlx.h"

namespace hltg {

/// Instruction-word bit position of a CPI gate (opcode bits 26..31, function
/// bits 0..5); -1 if the gate is not a CPI bit.
int instr_bit_of_cpi(const DlxModel& m, GateId g);

struct EmitResult {
  bool ok = false;
  std::string note;
  /// addr(t): program word index fetched each cycle.
  std::vector<unsigned> fetch_index;
};

/// Apply the CPI assignments to `vars` (setting both value and fixed-bit
/// mask). Fails if a redirect is implied within the window or two cycles pin
/// conflicting bits of the same word.
EmitResult emit_cpi_assignments(
    const DlxModel& m, const ControllerWindow& win,
    const std::vector<std::tuple<GateId, unsigned, bool>>& cpi,
    RelaxVars* vars);

/// Drop trailing all-zero (NOP) words; the fetch unit supplies NOPs past the
/// end of the program anyway.
void trim_trailing_nops(std::vector<std::uint32_t>* imem);

}  // namespace hltg
