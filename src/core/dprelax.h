// DPRELAX: value selection in the datapath by discrete relaxation
// (Sec. V.B, after Lee & Patel).
//
// The free value variables are the paper's DPI set: instruction-word fields
// (register specifiers, immediates - the opcode/function bits are already
// fixed by CTRLJUST's CPI decisions), the initial register file, and the
// initial data memory. Each iteration:
//   1. evaluates the whole window (the implementation simulator is the
//      module-evaluation engine, so semantics can never diverge),
//   2. finds a violated constraint, and
//   3. backsolves it through the captured values - module-by-module inverse
//      rules (add: a = y - b; mux: follow the selected input; register-file
//      read: adjust the feeding write or the initial state; ...) - until a
//      free variable is adjusted.
// The method is incomplete, exactly as the paper notes: it "cannot prove
// that the system has no solutions, and may fail to find a solution even if
// there is one"; failures surface as backtracks/aborts in TG. Because
// DPTRACE selects paths first, the systems handed here are usually
// underdetermined and convergence is fast.
#pragma once

#include <array>
#include <map>
#include <vector>

#include "core/archstate.h"
#include "core/objectives.h"
#include "util/budget.h"
#include "util/rng.h"
#include "util/status.h"

namespace hltg {

/// The free value variables (and the fixed-bit discipline on instruction
/// words imposed by CTRLJUST's CPI assignments).
struct RelaxVars {
  std::vector<std::uint32_t> imem;        ///< program words
  std::vector<std::uint32_t> imem_fixed;  ///< per-word fixed-bit mask
  std::array<std::uint32_t, 32> rf_init{};
  std::map<std::uint32_t, std::uint32_t> mem_init;

  TestCase to_test() const;
  void ensure_size(std::size_t words);
};

struct DpRelaxConfig {
  unsigned max_iterations = 80;
  unsigned max_depth = 64;   ///< backsolve recursion cap
  std::uint64_t seed = 12345;
};

struct DpRelaxResult {
  TgStatus status = TgStatus::kFailure;
  AbortReason abort = AbortReason::kNone;  ///< set when the budget fired
  unsigned iterations = 0;
  unsigned pair_captures = 0;  ///< good+err windows captured as one batch
  std::string note;
};

class DpRelax {
 public:
  DpRelax(const DlxModel& m, unsigned window, DpRelaxConfig cfg = {});

  /// Iterate until every constraint holds in the good machine (and, for
  /// kSiteDiffers constraints, the erroneous machine diverges at the site).
  /// `budget`, when given, is polled once per relaxation sweep.
  DpRelaxResult solve(RelaxVars& vars,
                      const std::vector<RelaxConstraint>& constraints,
                      const ErrorInjection& inj, Budget* budget = nullptr);

 private:
  bool violated(const RelaxConstraint& c, const WindowCapture& good,
                const WindowCapture* err) const;
  /// Returns true if some free variable was adjusted.
  bool backsolve(RelaxVars& vars, const WindowCapture& cap, NetId net,
                 unsigned cycle, std::uint64_t need, unsigned depth);
  bool perturb_site(RelaxVars& vars, const WindowCapture& cap, NetId site,
                    unsigned cycle);
  bool set_instr_word(RelaxVars& vars, const WindowCapture& cap,
                      unsigned cycle, std::uint64_t need);

  const DlxModel& m_;
  unsigned T_;
  DpRelaxConfig cfg_;
  mutable Rng rng_;
  unsigned next_reg_ = 0;  ///< rotating register allocator for retargeting
};

}  // namespace hltg
