// CTRLJUST: justification of CTRL signals in the controller (Sec. V.C).
//
// A PODEM-based branch-and-bound search over the pipeframe decision
// variables - the CPI and STS bits of each cycle of the unrolled window
// (never the CSI state bits; that is the Sec.-IV transformation). Given a
// set of objectives (c_i, v_i) on controller signals, it determines an
// input sequence starting from the controller's reset state that satisfies
// all of them, or proves none exists within the window / budget.
//
// Two search back ends share the front end:
//  - the legacy pure-PODEM loop (full-window forward imply per iteration),
//  - the implication-engine loop (src/solver/): objectives are asserted,
//    propagate() forces values in both directions, and decisions only touch
//    genuinely free CPI/STS variables; conflicts are analyzed into learned
//    nogoods and definitive results land in the justification cache when a
//    SolverContext is attached (see docs/SOLVER.md).
//
// Decisions on STS variables must later be justified by the datapath: they
// are returned so TG can hand them to DPRELAX (Sec. V.C / Fig. 4).
#pragma once

#include <memory>
#include <vector>

#include "core/objectives.h"
#include "core/unroll.h"
#include "solver/implication.h"
#include "solver/probe_batch.h"
#include "solver/solver.h"
#include "util/budget.h"
#include "util/status.h"

namespace hltg {

class NogoodWatcher;

/// One entry of the recorded search trace.
struct SearchEvent {
  enum Kind : std::uint8_t { kDecide, kFlip, kPop } kind;
  GateId gate;
  unsigned cycle;
  bool value;
};

struct CtrlJustStats {
  std::uint64_t decisions = 0;
  std::uint64_t backtracks = 0;
  std::uint64_t implications = 0;
  std::uint64_t learned = 0;      ///< nogoods recorded from conflict cuts
  std::uint64_t nogood_hits = 0;  ///< learned nogoods that pruned or forced
  /// Literal probes spent applying learned nogoods - the cost the watch
  /// scheme attacks (the legacy rescan probes store x lits per round).
  std::uint64_t nogood_comparisons = 0;
  std::uint64_t cache_hits = 0;     ///< solves answered from the cache
  std::uint64_t cache_lookups = 0;  ///< cache probes (hits + misses)
  // Batched decision probing (solver/probe_batch; zero with use_probes off).
  std::uint64_t probe_batches = 0;  ///< masked lane-parallel window sweeps
  std::uint64_t probe_lanes = 0;    ///< candidate-polarity lanes evaluated
  /// Branch points resolved by a probe verdict: doomed-both-ways nodes
  /// collapsed without a decision, plus doomed polarities decided pre-flipped
  /// (each saves at least one decision + backtrack pair).
  std::uint64_t probe_prunes = 0;
  /// Wall time inside ProbeBatch::run - split out so ctrljust_ns keeps
  /// measuring the search itself (TG subtracts this when attributing).
  std::uint64_t probe_ns = 0;
};

struct CtrlJustResult {
  TgStatus status = TgStatus::kFailure;
  /// Why the search unwound when status == kFailure with objectives still
  /// open (per-search caps, or the attempt-wide budget firing).
  AbortReason abort = AbortReason::kNone;
  /// Decisions/implied values on STS variables: (gate, cycle, value). Every
  /// entry becomes a datapath justification obligation for DPRELAX.
  std::vector<std::tuple<GateId, unsigned, bool>> sts_assignments;
  /// Assignments on CPI variables: (gate, cycle, value) - fixed instruction
  /// bits for the emitter.
  std::vector<std::tuple<GateId, unsigned, bool>> cpi_assignments;
  CtrlJustStats stats;
  std::vector<SearchEvent> trace;  ///< populated when record_trace is set
};

/// Human-readable rendering of a recorded search trace.
std::string render_trace(const GateNet& gn,
                         const std::vector<SearchEvent>& trace);

struct CtrlJustConfig {
  std::uint64_t max_backtracks = 64;
  std::uint64_t max_decisions = 5000;
  bool record_trace = false;  ///< keep the decision sequence for debugging
  bool use_engine = true;     ///< implication-engine back end (else legacy)
  /// Batched lookahead probing (solver/probe_batch): before each free
  /// decision, evaluate the open objectives' backtrace targets - both
  /// polarities, one SIMD lane each - and prune proven-doomed branches
  /// without spending a decision + backtrack pair. Witnesses and detection
  /// outcomes are unchanged (monotonicity argument in probe_batch.h); the
  /// effort counters drop. Off by default so default campaign rows stay
  /// byte-identical with earlier releases. Engine back end only.
  bool use_probes = false;
  /// Rank surviving candidates by implied-literal count instead of keeping
  /// the legacy decision order (--probe-order on). This DOES change the
  /// decision order and therefore possibly the witness; gated separately so
  /// use_probes alone preserves today's witnesses exactly.
  bool probe_order = false;
  /// With use_probes on, the per-solve backtrack budget becomes
  /// max_backtracks / probe_budget_divisor (floor 1). The budget exists to
  /// bound blind chronological flipping; the probe layer refutes doomed
  /// branches before they are decided, so each counted backtrack under
  /// probing already stands for a vetted subtree and the same search power
  /// fits in a fraction of the budget. The CI perf guard
  /// (tools/check_bench.py) holds detection outcomes identical to the
  /// unprobed search while enforcing the effort reduction.
  std::uint64_t probe_budget_divisor = 4;
  /// Probe lane width (0 = --lanes / HLTG_LANES / CPUID auto).
  unsigned probe_lanes = 0;
  /// Serial reference probe path: one candidate-polarity per sweep through
  /// the same kernels. Byte-identical outcomes; testing hatch.
  bool probe_serial = false;
};

class CtrlJust {
 public:
  CtrlJust(const GateNet& gn, unsigned cycles, CtrlJustConfig cfg = {});
  ~CtrlJust();

  /// Attach the shared per-generator deduction context (learned nogoods +
  /// justification cache). Optional; the engine runs without one, it just
  /// cannot learn across solves. The context must outlive this object.
  void set_context(SolverContext* ctx) { ctx_ = ctx; }

  /// Solve for the given objectives, starting from an empty assignment.
  /// `budget`, when given, is polled every iteration and charged with the
  /// search's decisions/backtracks; when it fires the search unwinds with
  /// kFailure and the abort reason set.
  CtrlJustResult solve(const std::vector<CtrlObjective>& objectives,
                       Budget* budget = nullptr);

  /// The window (exposed so TG can read the full implied CTRL trajectory
  /// after a successful solve). Valid for both back ends: the engine path
  /// replays its witness into the window on success.
  const ControllerWindow& window() const { return win_; }

 private:
  struct Decision {
    GateId gate;
    unsigned cycle;
    bool value;
    bool flipped = false;
  };

  /// Objective state under current implications.
  enum class ObjState { kSatisfied, kViolated, kOpen };
  ObjState objective_state(const CtrlObjective& o) const;

  /// PODEM backtrace from an open objective to an unassigned free variable.
  /// Returns false if no route exists (treated as a conflict).
  bool backtrace(CtrlObjective o, Decision* out) const;

  CtrlJustResult solve_legacy(const std::vector<CtrlObjective>& objectives,
                              Budget* budget);
  CtrlJustResult solve_engine(const std::vector<CtrlObjective>& objectives,
                              Budget* budget);

  /// Apply learned nogoods to a fixpoint (force negations, detect all-hold
  /// conflicts). False when a nogood fired into a conflict.
  bool apply_nogoods(CtrlJustResult& res);
  /// Record the current conflict's cut in the store, if one is attached.
  void learn_conflict(CtrlJustResult& res);

  const GateNet& gn_;
  unsigned cycles_;
  ControllerWindow win_;
  CtrlJustConfig cfg_;
  SolverContext* ctx_ = nullptr;
  std::unique_ptr<ImplicationEngine> engine_;  ///< lazy; engine back end only
  /// Watch-based nogood applier (lazy; engine back end with a context whose
  /// config enables use_nogood_watches). Rebuilt at the top of every solve.
  std::unique_ptr<NogoodWatcher> watcher_;
  /// Batched decision prober (lazy; engine back end with use_probes). Its
  /// cone cache persists across the solves of this CtrlJust.
  std::unique_ptr<ProbeBatch> probe_;
  // Probe scratch, reused across iterations.
  std::vector<ProbeCand> probe_cands_;
  std::vector<Decision> probe_alts_;  ///< backtrace decision per candidate
  std::vector<ProbeOutcome> probe_outs_;
  std::vector<GateId> probe_vars_;  ///< decision vars (CPI/STS kVar bits)
};

}  // namespace hltg
