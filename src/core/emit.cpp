#include "core/emit.h"

#include "util/word.h"

namespace hltg {

int instr_bit_of_cpi(const DlxModel& m, GateId g) {
  for (std::size_t i = 0; i < m.cpi.size(); ++i)
    if (m.cpi[i] == g)
      return i < 6 ? static_cast<int>(26 + i) : static_cast<int>(i - 6);
  return -1;
}

EmitResult emit_cpi_assignments(
    const DlxModel& m, const ControllerWindow& win,
    const std::vector<std::tuple<GateId, unsigned, bool>>& cpi,
    RelaxVars* vars) {
  EmitResult res;
  const GateId stall = m.ctrl.find("cg.stall");
  const GateId redirect = m.ctrl.find("cg.redirect");

  unsigned pc_words = 0;
  res.fetch_index.reserve(win.cycles());
  for (unsigned t = 0; t < win.cycles(); ++t) {
    if (win.value(redirect, t) == L3::T) {
      res.note = "redirect implied in window: emission unsupported";
      return res;
    }
    res.fetch_index.push_back(pc_words);
    if (win.value(stall, t) != L3::T) ++pc_words;
  }
  vars->ensure_size(pc_words + 1);

  for (auto [g, t, v] : cpi) {
    const int bit = instr_bit_of_cpi(m, g);
    if (bit < 0) {
      res.note = "non-CPI gate in CPI assignment list";
      return res;
    }
    if (t >= res.fetch_index.size()) {
      res.note = "CPI assignment beyond window";
      return res;
    }
    const unsigned idx = res.fetch_index[t];
    const std::uint32_t mask = 1u << bit;
    if ((vars->imem_fixed[idx] & mask) &&
        ((vars->imem[idx] & mask) != 0) != v) {
      res.note = "conflicting CPI bits for word " + std::to_string(idx);
      return res;
    }
    vars->imem_fixed[idx] |= mask;
    if (v)
      vars->imem[idx] |= mask;
    else
      vars->imem[idx] &= ~mask;
  }
  res.ok = true;
  return res;
}

void trim_trailing_nops(std::vector<std::uint32_t>* imem) {
  while (imem->size() > 1 && imem->back() == 0) imem->pop_back();
}

}  // namespace hltg
