// Unrolled three-valued controller model (the iterative-array of Fig. 2,
// organized for the pipeframe search of Sec. IV).
//
// The window holds T copies of the controller's combinational logic. DFFs
// carry values across copies; cycle 0 starts from the reset state, as the
// paper's justification problem demands ("an input sequence ... that starts
// from the controller's reset state"). Free variables are the CPI and STS
// bits of every cycle - precisely the pipeframe decision variables
// (n1 + p*n3 flavored), never the CSI state bits.
#pragma once

#include <tuple>
#include <vector>

#include "dlx/dlx.h"
#include "gatenet/eval3.h"
#include "util/logic3.h"

namespace hltg {

class ControllerWindow {
 public:
  ControllerWindow(const GateNet& gn, unsigned cycles);

  unsigned cycles() const { return T_; }
  const GateNet& net() const { return gn_; }

  /// Assign a free variable (kVar gate) for a cycle; L3::X clears it.
  void assign(GateId g, unsigned cycle, L3 v);
  L3 assignment(GateId g, unsigned cycle) const;
  /// All currently assigned (gate, cycle, value) triples.
  std::vector<std::tuple<GateId, unsigned, bool>> assignments() const;

  /// Recompute implications of all assignments from the reset state.
  /// Returns false if an assignment contradicts itself (cannot happen for
  /// pure var assignments; kept for interface symmetry).
  void imply();

  /// Value of a gate in a cycle after imply().
  L3 value(GateId g, unsigned cycle) const { return vals_[cycle][g]; }

  /// Number of imply() sweeps performed (implication-effort statistic).
  std::uint64_t imply_count() const { return implies_; }

  void clear();

 private:
  const GateNet& gn_;
  unsigned T_;
  std::vector<std::vector<L3>> vals_;    ///< [cycle][gate]
  std::vector<std::vector<L3>> assign_;  ///< [cycle][gate] for kVar gates
  std::uint64_t implies_ = 0;
};

}  // namespace hltg
