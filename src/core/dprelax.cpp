#include "core/dprelax.h"

#include "util/word.h"

namespace hltg {

TestCase RelaxVars::to_test() const {
  TestCase tc;
  tc.imem = imem;
  tc.rf_init = rf_init;
  tc.dmem_init = mem_init;
  return tc;
}

void RelaxVars::ensure_size(std::size_t words) {
  if (imem.size() < words) {
    imem.resize(words, 0);
    imem_fixed.resize(words, 0);
  }
}

DpRelax::DpRelax(const DlxModel& m, unsigned window, DpRelaxConfig cfg)
    : m_(m), T_(window), cfg_(cfg), rng_(cfg.seed) {}

bool DpRelax::violated(const RelaxConstraint& c, const WindowCapture& good,
                       const WindowCapture* err) const {
  if (c.cycle >= good.cycles()) return true;
  const unsigned w = m_.dp.net(c.net).width;
  const std::uint64_t mask = c.mask & mask_bits(w);
  switch (c.kind) {
    case RelaxKind::kGoodEquals:
      return (good.net(c.cycle, c.net) & mask) != (c.value & mask);
    case RelaxKind::kGoodNotEquals:
      return (good.net(c.cycle, c.net) & mask) == (c.value & mask);
    case RelaxKind::kGoodNetsDiffer:
      return good.net(c.cycle, c.net) == good.net(c.cycle, c.net2);
    case RelaxKind::kSiteDiffers:
      return err == nullptr ||
             good.net(c.cycle, c.net) == err->net(c.cycle, c.net);
  }
  return true;
}

bool DpRelax::set_instr_word(RelaxVars& vars, const WindowCapture& cap,
                             unsigned cycle, std::uint64_t need) {
  const std::uint32_t pc =
      static_cast<std::uint32_t>(cap.net(cycle, m_.sig.pc_q));
  if (pc % 4 != 0) return false;
  const std::size_t idx = pc / 4;
  if (idx >= 4 * T_) return false;  // runaway PC: give up
  vars.ensure_size(idx + 1);
  const std::uint32_t fixed = vars.imem_fixed[idx];
  const std::uint32_t want = static_cast<std::uint32_t>(need);
  if ((want & fixed) != (vars.imem[idx] & fixed))
    return false;  // collides with CTRLJUST's CPI decisions
  vars.imem[idx] = (vars.imem[idx] & fixed) | (want & ~fixed);
  return true;
}

bool DpRelax::backsolve(RelaxVars& vars, const WindowCapture& cap, NetId net,
                        unsigned cycle, std::uint64_t need, unsigned depth) {
  if (depth > cfg_.max_depth) return false;
  const Net& n = m_.dp.net(net);
  const unsigned w = n.width;
  need = trunc(need, w);
  if (cap.net(cycle, net) == need) return true;  // already holds

  if (net == m_.sig.instr) return set_instr_word(vars, cap, cycle, need);
  if (n.role == NetRole::kCtrl) return false;  // controller-owned

  const ModId di = n.driver;
  if (di == kNoMod) return false;
  const Module& mod = m_.dp.module(di);
  auto in_val = [&](unsigned i) { return cap.net(cycle, mod.data_in[i]); };
  auto ctrl_val = [&](unsigned i) { return cap.net(cycle, mod.ctrl_in[i]); };
  auto go = [&](NetId to, unsigned t, std::uint64_t v) {
    return backsolve(vars, cap, to, t, v, depth + 1);
  };
  // Choose which of two inputs to adjust; bias keeps some exploration.
  auto pick2 = [&] { return rng_.chance(3, 4) ? 0u : 1u; };

  switch (mod.kind) {
    case ModuleKind::kConst:
      return trunc(mod.param, w) == need;
    case ModuleKind::kInput:
      return false;  // only the instruction word input is adjustable
    case ModuleKind::kReg: {
      if (cycle == 0) return trunc(mod.param, w) == need;
      const bool has_en = mod.tag & 1, has_clr = mod.tag & 2;
      unsigned slot = 0;
      const bool en =
          has_en ? (cap.net(cycle - 1, mod.ctrl_in[slot++]) & 1) : true;
      const bool clr =
          has_clr ? (cap.net(cycle - 1, mod.ctrl_in[slot]) & 1) : false;
      if (clr) return need == 0;
      if (!en) return go(mod.out, cycle - 1, need);
      return go(mod.data_in[0], cycle - 1, need);
    }
    case ModuleKind::kRfRead: {
      const unsigned reg = static_cast<unsigned>(in_val(0) & 31);
      if (reg == 0) {
        if (need == 0) return true;
        // R0 is hardwired; point the specifier at a real register instead
        // (the next sweep will then set that register's value). A rotating
        // counter keeps independently retargeted reads on *different*
        // registers - two operands sharing one register oscillate forever
        // on constraints like a + b == k (the convergence hazard Sec. V.B
        // warns about).
        const unsigned r = 1 + (next_reg_++ % 31);
        return go(mod.data_in[0], cycle, r);
      }
      const int tw = last_rf_write(m_, cap, reg, cycle);
      if (tw < 0) {
        vars.rf_init[reg] = static_cast<std::uint32_t>(need);
        return true;
      }
      const Module& rfw = m_.dp.module(m_.rf_write_mod);
      if (go(rfw.data_in[1], static_cast<unsigned>(tw), need)) return true;
      // The feeding write is not adjustable: retarget the read elsewhere.
      const unsigned r = 1 + (next_reg_++ % 31);
      return go(mod.data_in[0], cycle, r);
    }
    case ModuleKind::kMemRead: {
      if (!(ctrl_val(0) & 1)) return need == 0;
      const std::uint32_t addr =
          static_cast<std::uint32_t>(in_val(0)) & ~3u;
      bool full = false;
      const int tw = last_mem_write(m_, cap, addr, cycle, &full);
      if (tw < 0) {
        vars.mem_init[addr] = static_cast<std::uint32_t>(need);
        return true;
      }
      if (!full) return false;  // partial store: not invertible here
      const Module& mw = m_.dp.module(m_.mem_write_mod);
      return go(mw.data_in[1], static_cast<unsigned>(tw), need);
    }
    case ModuleKind::kMux: {
      std::uint64_t sel = ctrl_val(0);
      if (sel >= mod.data_in.size()) sel = mod.data_in.size() - 1;
      if (go(mod.data_in[static_cast<unsigned>(sel)], cycle, need))
        return true;
      // The selected input cannot be justified. If the select itself is
      // datapath-computed (byte-lane decodes etc.), retarget it to an input
      // that already carries - or can carry - the required value.
      const NetId sel_net = mod.ctrl_in[0];
      if (m_.dp.net(sel_net).role == NetRole::kCtrl) return false;
      for (unsigned i = 0; i < mod.data_in.size(); ++i) {
        if (i == sel) continue;
        if (in_val(i) == need && go(sel_net, cycle, i)) return true;
      }
      for (unsigned i = 0; i < mod.data_in.size(); ++i) {
        if (i == sel || in_val(i) == need) continue;
        if (go(mod.data_in[i], cycle, need) && go(sel_net, cycle, i))
          return true;
      }
      return false;
    }
    case ModuleKind::kAdd: {
      const unsigned i = pick2();
      if (go(mod.data_in[i], cycle, need - in_val(1 - i))) return true;
      return go(mod.data_in[1 - i], cycle, need - in_val(i));
    }
    case ModuleKind::kSub: {
      const unsigned i = pick2();
      if (i == 0 ? go(mod.data_in[0], cycle, need + in_val(1))
                 : go(mod.data_in[1], cycle, in_val(0) - need))
        return true;
      return i == 0 ? go(mod.data_in[1], cycle, in_val(0) - need)
                    : go(mod.data_in[0], cycle, need + in_val(1));
    }
    case ModuleKind::kXorW: {
      const unsigned i = pick2();
      if (go(mod.data_in[i], cycle, need ^ in_val(1 - i))) return true;
      return go(mod.data_in[1 - i], cycle, need ^ in_val(i));
    }
    case ModuleKind::kXnorW: {
      const unsigned i = pick2();
      if (go(mod.data_in[i], cycle, trunc(~need, w) ^ in_val(1 - i)))
        return true;
      return go(mod.data_in[1 - i], cycle, trunc(~need, w) ^ in_val(i));
    }
    case ModuleKind::kNotW:
      return go(mod.data_in[0], cycle, trunc(~need, w));
    case ModuleKind::kAndW: {
      const unsigned i = pick2();
      const std::uint64_t other = in_val(1 - i);
      if (need & ~other) {  // the other operand masks required bits
        if (go(mod.data_in[1 - i], cycle, other | need)) return true;
        return go(mod.data_in[i], cycle, in_val(i) | need);
      }
      if (go(mod.data_in[i], cycle, need)) return true;
      return go(mod.data_in[1 - i], cycle, need);
    }
    case ModuleKind::kNandW: {
      const std::uint64_t tgt = trunc(~need, w);
      const unsigned i = pick2();
      const std::uint64_t other = in_val(1 - i);
      if (tgt & ~other) return go(mod.data_in[1 - i], cycle, other | tgt);
      return go(mod.data_in[i], cycle, tgt);
    }
    case ModuleKind::kOrW: {
      const unsigned i = pick2();
      const std::uint64_t other = in_val(1 - i);
      if (other & ~need) {  // other operand sets bits that must be 0
        if (go(mod.data_in[1 - i], cycle, other & need)) return true;
        return go(mod.data_in[i], cycle, in_val(i) & need);
      }
      if (go(mod.data_in[i], cycle, need)) return true;
      return go(mod.data_in[1 - i], cycle, need);
    }
    case ModuleKind::kNorW: {
      const std::uint64_t tgt = trunc(~need, w);
      const unsigned i = pick2();
      const std::uint64_t other = in_val(1 - i);
      if (other & ~tgt) return go(mod.data_in[1 - i], cycle, other & tgt);
      return go(mod.data_in[i], cycle, tgt);
    }
    case ModuleKind::kShl: {
      const std::uint64_t amt = in_val(1) & 63;
      if (amt >= w) return need == 0;
      const std::uint64_t a = need >> amt;
      if (trunc(a << amt, w) != need)
        return go(mod.data_in[1], cycle, 0);  // try a lossless amount
      return go(mod.data_in[0], cycle, a);
    }
    case ModuleKind::kShrL: {
      const std::uint64_t amt = in_val(1) & 63;
      if (amt >= w) return need == 0;
      const std::uint64_t a = trunc(need << amt, w);
      if ((a >> amt) != need) return go(mod.data_in[1], cycle, 0);
      return go(mod.data_in[0], cycle, a);
    }
    case ModuleKind::kShrA: {
      const std::uint64_t amt = in_val(1) & 63;
      const std::uint64_t a = trunc(need << amt, w);
      if (trunc(static_cast<std::uint64_t>(as_signed(a, w) >>
                                           static_cast<int>(amt >= w ? w - 1
                                                                     : amt)),
                w) != need)
        return go(mod.data_in[1], cycle, 0);
      return go(mod.data_in[0], cycle, a);
    }
    case ModuleKind::kSlice: {
      const unsigned lo = static_cast<unsigned>(mod.param);
      const std::uint64_t a = set_field(in_val(0), lo, w, need);
      return go(mod.data_in[0], cycle, a);
    }
    case ModuleKind::kConcat: {
      unsigned lo = 0;
      for (unsigned i = 0; i < mod.data_in.size(); ++i) {
        const unsigned wi = m_.dp.net(mod.data_in[i]).width;
        const std::uint64_t part = get_field(need, lo, wi);
        if (part != in_val(i) && !go(mod.data_in[i], cycle, part))
          return false;
        lo += wi;
      }
      return true;
    }
    case ModuleKind::kZext: {
      const unsigned wi = m_.dp.net(mod.data_in[0]).width;
      if (need != trunc(need, wi)) return false;
      return go(mod.data_in[0], cycle, need);
    }
    case ModuleKind::kSext: {
      const unsigned wi = m_.dp.net(mod.data_in[0]).width;
      if (trunc(sext(trunc(need, wi), wi), w) != need) return false;
      return go(mod.data_in[0], cycle, trunc(need, wi));
    }
    case ModuleKind::kEq:
    case ModuleKind::kNe: {
      const bool want_eq = (mod.kind == ModuleKind::kEq) == (need & 1);
      const unsigned i = pick2();
      const unsigned wi = m_.dp.net(mod.data_in[i]).width;
      const std::uint64_t other = in_val(1 - i);
      if (go(mod.data_in[i], cycle, want_eq ? other : trunc(other + 1, wi)))
        return true;
      const std::uint64_t self = in_val(i);
      return go(mod.data_in[1 - i], cycle,
                want_eq ? self : trunc(self + 1, wi));
    }
    case ModuleKind::kLt:
    case ModuleKind::kLtU:
    case ModuleKind::kLe:
    case ModuleKind::kLeU: {
      const unsigned wi = m_.dp.net(mod.data_in[0]).width;
      const bool strict =
          mod.kind == ModuleKind::kLt || mod.kind == ModuleKind::kLtU;
      const bool is_signed =
          mod.kind == ModuleKind::kLt || mod.kind == ModuleKind::kLe;
      const std::uint64_t lo =
          is_signed ? (std::uint64_t{1} << (wi - 1)) : 0;      // domain min
      const std::uint64_t hi = trunc(lo - 1, wi);              // domain max
      const std::uint64_t b = in_val(1);
      // Adjust operand a to sit on the wanted side of b, unless b sits at a
      // domain boundary that makes that side empty - then move b first.
      if (need & 1) {  // want a < b (or a <= b)
        if (strict && b == lo) return go(mod.data_in[1], cycle, hi);
        return go(mod.data_in[0], cycle, strict ? trunc(b - 1, wi) : b);
      }
      // want !(a < b): a >= b (or a > b)
      if (!strict && b == hi) return go(mod.data_in[1], cycle, lo);
      if (go(mod.data_in[0], cycle, strict ? b : trunc(b + 1, wi)))
        return true;
      // Fall back to moving the right operand below/at a.
      const std::uint64_t lhs = in_val(0);
      if (strict) return go(mod.data_in[1], cycle, lhs);
      if (lhs == lo) return go(mod.data_in[0], cycle, hi);
      return go(mod.data_in[1], cycle, trunc(lhs - 1, wi));
    }
    case ModuleKind::kAddOvf:
    case ModuleKind::kSubOvf: {
      const unsigned wi = m_.dp.net(mod.data_in[0]).width;
      const std::uint64_t top = std::uint64_t{1} << (wi - 1);
      if (need & 1) {
        // max +/- 1 overflows in both modes once b == 1.
        if (!go(mod.data_in[0], cycle,
                mod.kind == ModuleKind::kAddOvf ? top - 1 : top))
          return false;
        return go(mod.data_in[1], cycle, 1);
      }
      return go(mod.data_in[1], cycle, 0);  // +/- 0 never overflows
    }
    default:
      return false;  // sinks / kOutput have no output to justify
  }
}

bool DpRelax::perturb_site(RelaxVars& vars, const WindowCapture& cap,
                           NetId site, unsigned cycle) {
  const ModId di = m_.dp.net(site).driver;
  if (di == kNoMod) return false;
  const Module& mod = m_.dp.module(di);
  if (mod.data_in.empty()) return false;
  const unsigned i = static_cast<unsigned>(rng_.below(mod.data_in.size()));
  const unsigned wi = m_.dp.net(mod.data_in[i]).width;
  // Random nonzero nudge: for most module pairs (add/sub, shifts, compare
  // directions) differing operands force differing outputs.
  const std::uint64_t v = trunc(cap.net(cycle, mod.data_in[i]) +
                                    1 + rng_.word(wi >= 4 ? wi - 1 : wi),
                                wi);
  return backsolve(vars, cap, mod.data_in[i], cycle, v, 0);
}

DpRelaxResult DpRelax::solve(RelaxVars& vars,
                             const std::vector<RelaxConstraint>& constraints,
                             const ErrorInjection& inj, Budget* budget) {
  DpRelaxResult res;
  const bool needs_err = [&] {
    for (const auto& c : constraints)
      if (c.kind == RelaxKind::kSiteDiffers) return true;
    return false;
  }();

  for (unsigned iter = 0; iter < cfg_.max_iterations; ++iter) {
    if (budget) {
      const AbortReason why = budget->exhausted();
      if (why != AbortReason::kNone) {
        res.status = TgStatus::kFailure;
        res.abort = why;
        res.note = std::string("budget: ") + std::string(to_string(why));
        return res;
      }
    }
    res.iterations = iter + 1;
    WindowCapture good, err;
    if (needs_err) {
      // Both machines ride one batch simulation: the controller is swept
      // once per cycle for the pair instead of once per machine.
      capture_window_pair(m_, vars.to_test(), T_, inj, &good, &err);
      ++res.pair_captures;
    } else {
      good = capture_window(m_, vars.to_test(), T_);
    }

    // Find all violated constraints; fix one (rotating start so one stubborn
    // constraint cannot starve the others).
    std::vector<const RelaxConstraint*> bad;
    for (const auto& c : constraints)
      if (violated(c, good, needs_err ? &err : nullptr)) bad.push_back(&c);
    if (bad.empty()) {
      res.status = TgStatus::kSuccess;
      return res;
    }
    const RelaxConstraint& c = *bad[iter % bad.size()];
    bool adjusted = false;
    const unsigned w = m_.dp.net(c.net).width;
    const std::uint64_t mask = c.mask & mask_bits(w);
    switch (c.kind) {
      case RelaxKind::kSiteDiffers:
        adjusted = perturb_site(vars, good, c.net, c.cycle);
        break;
      case RelaxKind::kGoodEquals: {
        const std::uint64_t need =
            (good.net(c.cycle, c.net) & ~mask) | (c.value & mask);
        adjusted = backsolve(vars, good, c.net, c.cycle, need, 0);
        break;
      }
      case RelaxKind::kGoodNotEquals: {
        // Nudge the masked bits to any other value.
        const std::uint64_t cur = good.net(c.cycle, c.net);
        const std::uint64_t need =
            (cur & ~mask) | ((c.value + 1 + rng_.word(w > 1 ? w - 1 : 1)) & mask);
        adjusted = backsolve(vars, good, c.net, c.cycle,
                             need != cur ? need : (cur ^ mask), 0);
        break;
      }
      case RelaxKind::kGoodNetsDiffer: {
        const std::uint64_t other = good.net(c.cycle, c.net2);
        const std::uint64_t need =
            trunc(other + 1 + rng_.word(w > 1 ? w - 1 : 1), w);
        adjusted = backsolve(vars, good, c.net, c.cycle, need, 0) ||
                   backsolve(vars, good, c.net2, c.cycle,
                             trunc(good.net(c.cycle, c.net) + 1, w), 0);
        break;
      }
    }
    if (!adjusted) {
      res.note = "backsolve failed: " + m_.dp.net(c.net).name + "@" +
                 std::to_string(c.cycle) + " (" + c.why + ")";
      res.status = TgStatus::kConflict;
      return res;
    }
  }
  res.status = TgStatus::kFailure;
  res.note = "iteration budget exhausted";
  return res;
}

}  // namespace hltg
