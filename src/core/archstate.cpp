#include "core/archstate.h"

#include "sim/batch_sim.h"

namespace hltg {

WindowCapture capture_window(const DlxModel& m, const TestCase& tc,
                             unsigned cycles, const ErrorInjection& inj) {
  WindowCapture cap;
  cap.nets.reserve(cycles);
  cap.gates.reserve(cycles);
  ProcSim sim(m, tc, inj);
  for (unsigned t = 0; t < cycles; ++t) {
    sim.begin_cycle();
    std::vector<std::uint64_t> nv(m.dp.num_nets());
    for (NetId n = 0; n < m.dp.num_nets(); ++n) nv[n] = sim.net_value(n);
    std::vector<std::uint8_t> gv(m.ctrl.num_gates());
    for (GateId g = 0; g < m.ctrl.num_gates(); ++g)
      gv[g] = sim.gate_value(g) ? 1 : 0;
    cap.nets.push_back(std::move(nv));
    cap.gates.push_back(std::move(gv));
    sim.end_cycle();
  }
  return cap;
}

void capture_window_pair(const DlxModel& m, const TestCase& tc,
                         unsigned cycles, const ErrorInjection& inj,
                         WindowCapture* good, WindowCapture* err) {
  const ErrorInjection clean;
  const std::vector<const ErrorInjection*> lanes{&clean, &inj};
  std::vector<LaneCapture> caps = batch_capture(m, tc, cycles, lanes);
  good->nets = std::move(caps[0].nets);
  good->gates = std::move(caps[0].gates);
  err->nets = std::move(caps[1].nets);
  err->gates = std::move(caps[1].gates);
}

int last_rf_write(const DlxModel& m, const WindowCapture& cap, unsigned reg,
                  unsigned t) {
  const Module& rfw = m.dp.module(m.rf_write_mod);
  for (int t2 = static_cast<int>(t); t2 >= 0; --t2) {
    const bool we = cap.net(t2, rfw.ctrl_in[0]) & 1;
    const unsigned waddr = static_cast<unsigned>(cap.net(t2, rfw.data_in[0]) & 31);
    if (we && waddr == reg && reg != 0) return t2;
  }
  return -1;
}

int last_mem_write(const DlxModel& m, const WindowCapture& cap,
                   std::uint32_t aligned_addr, unsigned t, bool* full_word) {
  const Module& mw = m.dp.module(m.mem_write_mod);
  for (int t2 = static_cast<int>(t) - 1; t2 >= 0; --t2) {
    const bool we = cap.net(t2, mw.ctrl_in[0]) & 1;
    const std::uint32_t a =
        static_cast<std::uint32_t>(cap.net(t2, mw.data_in[0])) & ~3u;
    if (we && a == aligned_addr) {
      if (full_word)
        *full_word = (cap.net(t2, mw.data_in[2]) & 0xF) == 0xF;
      return t2;
    }
  }
  return -1;
}

}  // namespace hltg
