// Window capture and architectural-state bookkeeping for DPRELAX.
//
// DPRELAX evaluates consistency by simulating the implementation over the
// window and capturing every net/gate value per cycle; its backsolve walks
// run backwards through those captured values. The helpers here answer the
// register-file / memory questions that walk needs: which write feeds a
// read observed at cycle t?
#pragma once

#include <cstdint>
#include <vector>

#include "dlx/dlx.h"
#include "sim/proc_sim.h"

namespace hltg {

struct WindowCapture {
  /// nets[t][n]: combinationally settled value of net n during cycle t.
  std::vector<std::vector<std::uint64_t>> nets;
  /// gates[t][g]: controller gate value during cycle t.
  std::vector<std::vector<std::uint8_t>> gates;

  std::uint64_t net(unsigned t, NetId n) const { return nets[t][n]; }
  bool gate(unsigned t, GateId g) const { return gates[t][g] != 0; }
  unsigned cycles() const { return static_cast<unsigned>(nets.size()); }
};

/// Simulate `cycles` cycles of the (optionally erroneous) implementation and
/// capture all values.
WindowCapture capture_window(const DlxModel& m, const TestCase& tc,
                             unsigned cycles,
                             const ErrorInjection& inj = {});

/// Capture the good machine and the `inj`-erroneous machine on the same test
/// in one batch simulation (sim/batch_sim): the controller evaluates both
/// lanes per gate visit instead of running two full window simulations.
/// Value-identical to two capture_window calls.
void capture_window_pair(const DlxModel& m, const TestCase& tc,
                         unsigned cycles, const ErrorInjection& inj,
                         WindowCapture* good, WindowCapture* err);

/// Latest cycle t' <= t whose register-file write targets `reg` (write-
/// through makes a same-cycle write visible). -1 if none: the read sees the
/// initial register file.
int last_rf_write(const DlxModel& m, const WindowCapture& cap, unsigned reg,
                  unsigned t);

/// Latest cycle t' < t whose memory write hits the aligned address. Returns
/// the cycle, and sets `full_word` to whether all four byte lanes were
/// written (partial writes cannot be backsolved through). -1 if none.
int last_mem_write(const DlxModel& m, const WindowCapture& cap,
                   std::uint32_t aligned_addr, unsigned t, bool* full_word);

}  // namespace hltg
