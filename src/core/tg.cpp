#include "core/tg.h"

#include <chrono>
#include <memory>

#include "core/emit.h"
#include "gatenet/evalw.h"
#include "isa/asm.h"
#include "sim/cosim.h"
#include "util/log.h"
#include "util/word.h"

namespace hltg {

namespace {
DpTraceConfig trace_cfg(const TgConfig& c) {
  DpTraceConfig t = c.trace;
  t.window = c.window;
  return t;
}

struct DontCareCount {
  std::uint64_t candidates = 0;
  std::uint64_t droppable = 0;
};

/// Post-success CPI don't-care analysis via the bit-parallel 01X evaluator:
/// lane k carries the winning assignment with candidate CPI bit k relaxed
/// to X; one eval_cycle3w sweep per window cycle answers all candidates at
/// once. A candidate is droppable when every CTRL objective stays forced to
/// its required value in that lane. Conservative (X-propagation may hide a
/// don't-care) and purely statistical: the emitted test keeps every bit.
DontCareCount count_cpi_dont_cares(
    const GateNet& ctrl, unsigned window,
    const std::vector<std::tuple<GateId, unsigned, bool>>& cpi,
    const std::vector<std::tuple<GateId, unsigned, bool>>& sts,
    const std::vector<CtrlObjective>& objectives) {
  DontCareCount out;
  const std::size_t k =
      std::min<std::size_t>(cpi.size(), kMaxLanes);  // one lane per candidate
  if (k == 0) return out;
  out.candidates = k;
  const unsigned words = lane_words(static_cast<unsigned>(k));
  const std::size_t ngates = ctrl.num_gates();
  std::vector<std::uint64_t> ones, zeros, scratch;
  load_reset3w(ctrl, ones, zeros, words);
  std::vector<std::uint64_t> ok(words, 0);
  for (std::size_t lane = 0; lane < k; ++lane)
    ok[lane >> 6] |= std::uint64_t{1} << (lane & 63);

  auto assign = [&](GateId g, unsigned cycle, bool v, unsigned t,
                    std::size_t dropped) {
    if (cycle != t) return;
    std::uint64_t* plane = (v ? ones : zeros).data() + std::size_t{g} * words;
    for (unsigned w = 0; w < words; ++w) plane[w] = ~std::uint64_t{0};
    if (dropped < k)
      plane[dropped >> 6] &= ~(std::uint64_t{1} << (dropped & 63));
  };

  for (unsigned t = 0; t < window; ++t) {
    // Unassigned free variables are X in every lane.
    for (GateId g = 0; g < ngates; ++g)
      if (ctrl.gate(g).kind == GateKind::kVar) {
        std::fill_n(ones.data() + std::size_t{g} * words, words, 0);
        std::fill_n(zeros.data() + std::size_t{g} * words, words, 0);
      }
    for (std::size_t i = 0; i < cpi.size(); ++i) {
      const auto& [g, cycle, v] = cpi[i];
      assign(g, cycle, v, t, i);  // lane i: this very bit relaxed to X
    }
    for (const auto& [g, cycle, v] : sts) assign(g, cycle, v, t, k);
    eval_cycle3w(ctrl, ones.data(), zeros.data(), words);
    for (const CtrlObjective& o : objectives) {
      if (o.cycle != t) continue;
      const std::uint64_t* forced =
          (o.value ? ones : zeros).data() + std::size_t{o.gate} * words;
      for (unsigned w = 0; w < words; ++w) ok[w] &= forced[w];
    }
    clock_dffs3w(ctrl, ones.data(), zeros.data(), words, scratch);
  }
  for (std::size_t lane = 0; lane < k; ++lane)
    if ((ok[lane >> 6] >> (lane & 63)) & 1) ++out.droppable;
  return out;
}
}  // namespace

TestGenerator::TestGenerator(const DlxModel& m, TgConfig cfg)
    : m_(m), cfg_(cfg), trace_(m, trace_cfg(cfg_)), solver_ctx_(cfg_.solver) {}

std::vector<RelaxConstraint> TestGenerator::activation_constraints(
    const DesignError& err) const {
  RelaxConstraint act;
  act.net = err.site_net(m_.dp);
  act.why = "activation";
  if (const auto* ssl = std::get_if<BusSslError>(&err.e)) {
    act.kind = RelaxKind::kGoodEquals;
    act.mask = std::uint64_t{1} << ssl->bit;
    act.value = ssl->stuck_value ? 0 : act.mask;  // good bit != stuck value
    return {act};
  }
  if (const auto* bse = std::get_if<BusSourceError>(&err.e)) {
    // The wrong wiring only matters when the two sources carry different
    // values in the good machine...
    RelaxConstraint differ;
    differ.kind = RelaxKind::kGoodNetsDiffer;
    differ.net = m_.dp.module(bse->module).data_in[bse->input];
    differ.net2 = bse->wrong_source;
    differ.why = "activation-sources-differ";
    // ... and the difference must survive the module (a shifted zero or a
    // masked operand swallows it).
    act.kind = RelaxKind::kSiteDiffers;
    return {differ, act};
  }
  act.kind = RelaxKind::kSiteDiffers;
  return {act};
}

std::vector<CtrlObjective> TestGenerator::usage_objectives(
    const DesignError& err, unsigned cycle) const {
  std::vector<CtrlObjective> out;
  const auto* bse = std::get_if<BusSourceError>(&err.e);
  if (!bse) return out;
  const Module& mod = m_.dp.module(bse->module);
  if (mod.kind != ModuleKind::kMux) return out;
  // The rewired data input must be the selected one, or the error is
  // invisible regardless of values.
  const NetId sel = mod.ctrl_in[0];
  if (m_.dp.net(sel).role != NetRole::kCtrl) return out;  // data-dependent
  const CtrlBind* cb = m_.find_ctrl(sel);
  for (unsigned b = 0; b < m_.dp.net(sel).width; ++b)
    out.push_back({cb->bits[b], cycle, ((bse->input >> b) & 1) != 0});
  return out;
}

TgResult TestGenerator::generate(const DesignError& err, Budget* budget) {
  // Error scope: fresh deduction state per error, so reuse spans this
  // error's plans and windows only. Campaign scope keeps the context for
  // the generator's lifetime (see solver_ctx_ comment in tg.h).
  if (cfg_.solver.scope == SolverScope::kError) solver_ctx_.reset();
  // Campaign scope under --jobs > 1: trade nogoods with the other workers
  // through the shared board. Strictly between errors - the search hot
  // path below only ever touches the worker-private context.
  if (cfg_.solver.scope == SolverScope::kCampaign)
    solver_ctx_.sync_shared_nogoods();
  TgResult first = generate_with_window(err, cfg_.window, budget);
  if (first.status == TgStatus::kSuccess || cfg_.retry_window <= cfg_.window)
    return first;
  // A fired budget covers the whole attempt: no window retry on its dime.
  if (first.stats.abort != AbortReason::kNone) return first;
  TgResult second = generate_with_window(err, cfg_.retry_window, budget);
  // Carry the accumulated effort of both attempts.
  second.stats.plans_tried += first.stats.plans_tried;
  second.stats.plan_retries += first.stats.plan_retries;
  second.stats.decisions += first.stats.decisions;
  second.stats.backtracks += first.stats.backtracks;
  second.stats.implications += first.stats.implications;
  second.stats.relax_iterations += first.stats.relax_iterations;
  second.stats.learned += first.stats.learned;
  second.stats.nogood_hits += first.stats.nogood_hits;
  second.stats.nogood_comparisons += first.stats.nogood_comparisons;
  second.stats.cache_hits += first.stats.cache_hits;
  second.stats.cache_lookups += first.stats.cache_lookups;
  second.stats.dptrace_expansions += first.stats.dptrace_expansions;
  second.stats.dptrace_searches += first.stats.dptrace_searches;
  second.stats.dptrace_reused += first.stats.dptrace_reused;
  second.stats.relax_hits += first.stats.relax_hits;
  second.stats.relax_lookups += first.stats.relax_lookups;
  second.stats.relax_cross_site_misses += first.stats.relax_cross_site_misses;
  second.stats.relax_pair_captures += first.stats.relax_pair_captures;
  second.stats.cpi_dont_cares += first.stats.cpi_dont_cares;
  second.stats.dontcare_candidates += first.stats.dontcare_candidates;
  second.stats.probe_batches += first.stats.probe_batches;
  second.stats.probe_lanes += first.stats.probe_lanes;
  second.stats.probe_prunes += first.stats.probe_prunes;
  second.stats.dptrace_ns += first.stats.dptrace_ns;
  second.stats.ctrljust_ns += first.stats.ctrljust_ns;
  second.stats.dprelax_ns += first.stats.dprelax_ns;
  second.stats.probe_ns += first.stats.probe_ns;
  if (second.status != TgStatus::kSuccess && second.note.empty())
    second.note = first.note;
  return second;
}

TgResult TestGenerator::generate_with_window(const DesignError& err,
                                             unsigned window, Budget* budget) {
  TgResult res;
  // Unwind with a structured abort reason; the partial stats stay valid.
  auto budget_fired = [&]() -> bool {
    if (!budget) return false;
    const AbortReason why = budget->exhausted();
    if (why == AbortReason::kNone) return false;
    res.status = TgStatus::kFailure;
    res.stats.abort = why;
    if (!res.note.empty()) res.note += "; ";
    res.note += "budget: " + std::string(to_string(why));
    return true;
  };
  if (budget_fired()) return res;
  const ErrorInjection inj = err.injection();
  const NetId site = err.site_net(m_.dp);
  const bool base_window = window == cfg_.window;
  if (!base_window && (!retry_trace_ || retry_trace_window_ != window)) {
    DpTraceConfig tcfg = cfg_.trace;
    tcfg.window = window;
    retry_trace_ = std::make_unique<DpTrace>(m_, tcfg);
    retry_trace_window_ = window;
  }
  const DpTrace& tracer = base_window ? trace_ : *retry_trace_;
  if (!tracer.observable_without_redirect(site)) {
    // Control-transfer-path site: the only routes to an observation point
    // run through a taken branch; use the divergence templates directly.
    TgResult macro = cfg_.control_flow_macros ? try_control_flow_macro(err)
                                              : TgResult{};
    if (macro.status == TgStatus::kSuccess) {
      macro.note = "control-flow macro";
      return macro;
    }
    res.note = "control-path site: macro templates failed";
    return res;
  }

  // Phase timing: one monotonic stamp per engine call, accumulated into
  // the attempt's stats (surfaced in the campaign CSV and --replay).
  auto tick = [] { return std::chrono::steady_clock::now(); };
  auto lap = [&](std::chrono::steady_clock::time_point t0) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(tick() - t0)
            .count());
  };

  DpTraceStats trace_stats;
  const auto trace_t0 = tick();
  const auto plans =
      tracer.plans(site, activation_constraints(err), budget, &trace_stats);
  res.stats.dptrace_ns += lap(trace_t0);
  res.stats.dptrace_expansions += trace_stats.expansions;
  res.stats.dptrace_searches += trace_stats.searches_run;
  res.stats.dptrace_reused += trace_stats.searches_reused;
  if (budget_fired()) return res;
  if (plans.empty()) {
    res.note = "DPTRACE: no propagation path";
    return res;
  }

  // A plan that produced a test but failed dual-simulation confirmation
  // would produce the same masked difference from any activation cycle;
  // remember its shape and skip repeats.
  std::set<std::string> unconfirmed_shapes;
  auto shape_of = [&](const PathPlan& plan) {
    std::string s = std::to_string(plan.observe_module) + ":";
    for (const PathHop& h : plan.hops) s += std::to_string(h.net) + ",";
    return s;
  };

  // Reset-trajectory pre-check: with no assignments, the window already
  // implies every gate value forced by the reset state; a plan demanding the
  // opposite (typically: an objective before the pipeline can fill) can be
  // skipped without a search.
  ControllerWindow reset_win(m_.ctrl, window);
  auto reset_violates = [&](const PathPlan& plan) {
    for (const CtrlObjective& o : plan.ctrl_objectives) {
      const L3 v = reset_win.value(o.gate, o.cycle);
      if (v != L3::X && (v == L3::T) != o.value) return true;
    }
    return false;
  };

  // One CtrlJust for every plan of this window: the solve() entry clears
  // per-search state, while the implication engine's reset fixpoint and the
  // attached per-error context (nogoods + justification cache) carry over -
  // that reuse is the point of the shared solver layer.
  CtrlJustConfig cjcfg = cfg_.ctrljust;
  cjcfg.use_engine = cfg_.solver.enable;
  CtrlJust cj(m_.ctrl, window, cjcfg);
  if (cfg_.solver.enable) cj.set_context(&solver_ctx_);

  for (const PathPlan& plan : plans) {
    if (budget_fired()) return res;
    if (cfg_.shape_dedup && unconfirmed_shapes.count(shape_of(plan))) continue;
    if (cfg_.reset_precheck && reset_violates(plan)) continue;
    ++res.stats.plans_tried;
    if (res.stats.plans_tried > 1) ++res.stats.plan_retries;

    auto fail_note = [&](const std::string& what) {
      if (!res.note.empty()) res.note += "; ";
      res.note += "plan" + std::to_string(res.stats.plans_tried) + "@" +
                  std::to_string(plan.activate_cycle) + ": " + what;
    };

    std::vector<CtrlObjective> objectives = plan.ctrl_objectives;
    for (const CtrlObjective& o :
         usage_objectives(err, plan.activate_cycle))
      objectives.push_back(o);

    const auto cj_t0 = tick();
    const CtrlJustResult cr = cj.solve(objectives, budget);
    // Attribute probe time to its own bucket; ctrljust_ns keeps measuring
    // the search itself (lap covers both, the probe reports its share).
    res.stats.ctrljust_ns += lap(cj_t0) - cr.stats.probe_ns;
    res.stats.probe_ns += cr.stats.probe_ns;
    res.stats.decisions += cr.stats.decisions;
    res.stats.backtracks += cr.stats.backtracks;
    res.stats.implications += cr.stats.implications;
    res.stats.learned += cr.stats.learned;
    res.stats.nogood_hits += cr.stats.nogood_hits;
    res.stats.nogood_comparisons += cr.stats.nogood_comparisons;
    res.stats.cache_hits += cr.stats.cache_hits;
    res.stats.cache_lookups += cr.stats.cache_lookups;
    res.stats.probe_batches += cr.stats.probe_batches;
    res.stats.probe_lanes += cr.stats.probe_lanes;
    res.stats.probe_prunes += cr.stats.probe_prunes;
    if (cr.status != TgStatus::kSuccess) {
      // Per-search caps (cr.abort) just fail this plan; only the
      // attempt-wide budget aborts the whole error.
      if (budget_fired()) return res;
      fail_note("CTRLJUST failed");
      continue;
    }

    RelaxVars vars;
    const EmitResult er =
        emit_cpi_assignments(m_, cj.window(), cr.cpi_assignments, &vars);
    if (!er.ok) {
      fail_note("emit: " + er.note);
      continue;
    }

    std::vector<RelaxConstraint> cons = plan.relax_constraints;
    for (auto [g, t, v] : cr.sts_assignments) {
      // Locate the datapath STS net bound to this controller variable.
      for (const StsBind& sb : m_.sts_binds) {
        if (sb.gate != g) continue;
        RelaxConstraint rc;
        rc.net = sb.dp_net;
        rc.cycle = t;
        rc.mask = 1;
        rc.value = v ? 1 : 0;
        rc.why = "sts";
        cons.push_back(rc);
        break;
      }
    }

    DpRelaxConfig rcfg = cfg_.relax;
    // The derived seed is a pure function of the plan's identity - never of
    // trial position - so the same plan relaxes identically no matter how
    // many predecessors a warm start's imported deductions skipped
    // (relax_plan_seed doc in tg.h).
    rcfg.seed = relax_plan_seed(cfg_.relax.seed, site, shape_of(plan),
                                plan.activate_cycle, window);
    // DPRELAX memo: a solve is a pure function of its subproblem, so
    // replaying a recorded definitive result is byte-identical to
    // recomputing it. Repeat visits to a plan (shape-duplicated paths,
    // warm-started reruns) are answered without a relaxation sweep.
    const bool memoize = cfg_.solver.enable && cfg_.solver.use_relax_cache;
    RelaxCache::Key rkey;
    DpRelaxResult rr;
    bool replayed = false;
    const auto rx_t0 = tick();
    if (memoize) {
      rkey = RelaxCache::make_key(rcfg, vars, cons, inj);
      ++res.stats.relax_lookups;
      const std::uint64_t xsite0 = solver_ctx_.relax.cross_site_misses();
      if (solver_ctx_.relax.find(rkey, &rr, &vars)) {
        ++res.stats.relax_hits;
        replayed = true;
      }
      res.stats.relax_cross_site_misses +=
          solver_ctx_.relax.cross_site_misses() - xsite0;
    }
    if (!replayed) {
      DpRelax relax(m_, window, rcfg);
      rr = relax.solve(vars, cons, inj, budget);
      if (memoize) solver_ctx_.relax.store(rkey, rr, vars);
    }
    res.stats.dprelax_ns += lap(rx_t0);
    res.stats.relax_iterations += rr.iterations;
    res.stats.relax_pair_captures += rr.pair_captures;
    if (rr.status != TgStatus::kSuccess) {
      if (budget_fired()) return res;
      fail_note("DPRELAX: " + rr.note);
      continue;
    }

    TestCase tc = vars.to_test();
    trim_trailing_nops(&tc.imem);
    if (cfg_.confirm_by_simulation && !detects(m_, tc, inj)) {
      fail_note("not confirmed by dual simulation");
      unconfirmed_shapes.insert(shape_of(plan));
      continue;
    }
    const DontCareCount dc = count_cpi_dont_cares(
        m_.ctrl, window, cr.cpi_assignments, cr.sts_assignments, objectives);
    res.stats.dontcare_candidates += dc.candidates;
    res.stats.cpi_dont_cares += dc.droppable;
    res.status = TgStatus::kSuccess;
    res.test = std::move(tc);
    res.test_length = plan.observe_cycle + 1;
    return res;
  }
  if (budget_fired()) return res;
  TgResult macro = cfg_.control_flow_macros ? try_control_flow_macro(err)
                                            : TgResult{};
  if (macro.status == TgStatus::kSuccess) {
    macro.stats = res.stats;
    macro.note = res.note.empty() ? "control-flow macro"
                                  : res.note + "; control-flow macro";
    return macro;
  }

  res.status = TgStatus::kFailure;
  if (res.note.empty()) res.note = "all plans exhausted";
  return res;
}

TgResult TestGenerator::try_control_flow_macro(const DesignError& err) const {
  TgResult res;
  const ErrorInjection inj = err.injection();
  // Variant A: branch taken in the good machine (beqz r0). Variant B:
  // branch not taken (beqz r1 with r1 != 0). Marker stores bracket both
  // outcomes; any flip of the decision or corruption of the target changes
  // the committed store sequence.
  for (int variant = 0; variant < 2; ++variant) {
    TestCase tc;
    Instr br;
    br.op = Op::kBeqz;
    br.rs1 = variant == 0 ? 0u : 1u;
    br.imm = 2;  // skip the two fall-through markers
    Instr st1{Op::kSw, 0, 0, 2, 0x100};   // fall-through marker
    Instr st2{Op::kSw, 0, 0, 3, 0x104};   // second fall-through marker
    Instr st3{Op::kSw, 0, 0, 4, 0x108};   // target marker
    tc.imem = encode_program({br, st1, st2, st3});
    tc.rf_init[1] = 1;
    tc.rf_init[2] = 0x11111111;
    tc.rf_init[3] = 0x22222222;
    tc.rf_init[4] = 0x33333333;
    if (detects(m_, tc, inj)) {
      res.status = TgStatus::kSuccess;
      res.test = tc;
      res.test_length = static_cast<unsigned>(tc.imem.size()) + 2;
      return res;
    }
  }
  return res;
}

namespace {
ErrorAttempt to_attempt(const TgResult& r, double seconds) {
  ErrorAttempt a;
  a.seconds = seconds;
  a.generated = r.status == TgStatus::kSuccess;
  a.sim_confirmed = a.generated;  // generate() confirms before returning
  a.test = r.test;
  a.test_length = r.test_length;
  a.backtracks = r.stats.backtracks + r.stats.plan_retries;
  a.decisions = r.stats.decisions;
  a.implications = r.stats.implications;
  a.learned = r.stats.learned;
  a.nogood_hits = r.stats.nogood_hits;
  a.cache_hits = r.stats.cache_hits;
  a.dptrace_ns = r.stats.dptrace_ns;
  a.ctrljust_ns = r.stats.ctrljust_ns;
  a.dprelax_ns = r.stats.dprelax_ns;
  a.probe_ns = r.stats.probe_ns;
  a.probe_batches = r.stats.probe_batches;
  a.probe_lanes = r.stats.probe_lanes;
  a.probe_prunes = r.stats.probe_prunes;
  a.note = r.note;
  a.abort = r.stats.abort;
  return a;
}
}  // namespace

TestGenFn TestGenerator::strategy() {
  return [this](const DesignError& err) {
    const auto t0 = std::chrono::steady_clock::now();
    const TgResult r = generate(err);
    return to_attempt(
        r, std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
               .count());
  };
}

BudgetedGenFn TestGenerator::budgeted_strategy() {
  return [this](const DesignError& err, Budget& budget) {
    const auto t0 = std::chrono::steady_clock::now();
    const TgResult r = generate(err, &budget);
    return to_attempt(
        r, std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
               .count());
  };
}

namespace {

struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFu;
      h *= 1099511628211ull;
    }
  }
  void mix(const std::string& s) {
    mix(s.size());
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
  }
};

}  // namespace

std::uint64_t relax_plan_seed(std::uint64_t base_seed, NetId site,
                              const std::string& plan_shape,
                              unsigned activate_cycle, unsigned window) {
  Fnv f;
  f.mix(base_seed);
  f.mix(static_cast<std::uint64_t>(site));
  f.mix(plan_shape);
  f.mix(activate_cycle);
  f.mix(window);
  return f.h;
}

std::uint64_t tg_design_hash(const DlxModel& m) {
  Fnv f;
  f.mix(m.ctrl.num_gates());
  for (GateId g = 0; g < m.ctrl.num_gates(); ++g) {
    const Gate& gate = m.ctrl.gate(g);
    f.mix(gate.name);
    f.mix(static_cast<std::uint64_t>(gate.kind));
    f.mix(static_cast<std::uint64_t>(gate.stage));
    f.mix(static_cast<std::uint64_t>(gate.role));
    f.mix((gate.tertiary ? 2u : 0u) | (gate.reset_value ? 1u : 0u));
    f.mix(gate.fanin.size());
    for (const GateId in : gate.fanin) f.mix(in);
  }
  f.mix(m.dp.num_nets());
  for (NetId n = 0; n < m.dp.num_nets(); ++n) {
    const Net& net = m.dp.net(n);
    f.mix(net.name);
    f.mix(net.width);
    f.mix(static_cast<std::uint64_t>(net.stage));
    f.mix(static_cast<std::uint64_t>(net.role));
    f.mix(static_cast<std::uint64_t>(net.driver));
    f.mix(net.sinks.size());
    for (const auto& [mod, slot] : net.sinks) {
      f.mix(static_cast<std::uint64_t>(mod));
      f.mix(slot);
    }
  }
  f.mix(m.dp.num_modules());
  for (ModId mod = 0; mod < m.dp.num_modules(); ++mod) {
    const Module& mo = m.dp.module(mod);
    f.mix(mo.name);
    f.mix(static_cast<std::uint64_t>(mo.kind));
    f.mix(static_cast<std::uint64_t>(mo.stage));
    f.mix(mo.data_in.size());
    for (const NetId in : mo.data_in) f.mix(static_cast<std::uint64_t>(in));
    f.mix(mo.ctrl_in.size());
    for (const NetId in : mo.ctrl_in) f.mix(static_cast<std::uint64_t>(in));
    f.mix(static_cast<std::uint64_t>(mo.out));
    f.mix(mo.param);
    f.mix(mo.tag);
  }
  return f.h;
}

std::uint64_t tg_config_hash(const TgConfig& cfg) {
  Fnv f;
  f.mix(cfg.window);
  f.mix(cfg.retry_window);
  f.mix(cfg.ctrljust.max_backtracks);
  f.mix(cfg.ctrljust.max_decisions);
  f.mix(cfg.ctrljust.use_engine ? 1u : 0u);
  f.mix(cfg.relax.max_iterations);
  f.mix(cfg.relax.max_depth);
  f.mix(cfg.relax.seed);
  f.mix((cfg.solver.enable ? 1u : 0u) | (cfg.solver.use_nogoods ? 2u : 0u) |
        (cfg.solver.use_cache ? 4u : 0u) |
        (cfg.solver.use_nogood_watches ? 8u : 0u) |
        (cfg.solver.use_relax_cache ? 16u : 0u));
  // Mixed only when probing is on, so default-config hashes - and every
  // journal / deduction store written before probing existed - are
  // unchanged. Lane width and the serial hatch are NOT mixed: outcomes are
  // width/backend-invariant by construction (solver/probe_batch.h).
  if (cfg.ctrljust.use_probes || cfg.ctrljust.probe_order)
    f.mix((cfg.ctrljust.use_probes ? 1u : 0u) |
          (cfg.ctrljust.probe_order ? 2u : 0u));
  return f.h;
}

}  // namespace hltg
