#include "core/unroll.h"

#include <cassert>

namespace hltg {

ControllerWindow::ControllerWindow(const GateNet& gn, unsigned cycles)
    : gn_(gn), T_(cycles) {
  assign_.assign(T_, std::vector<L3>(gn_.num_gates(), L3::X));
  vals_.assign(T_, std::vector<L3>(gn_.num_gates(), L3::X));
  imply();
}

void ControllerWindow::assign(GateId g, unsigned cycle, L3 v) {
  assert(gn_.gate(g).kind == GateKind::kVar);
  assert(cycle < T_);
  assign_[cycle][g] = v;
}

L3 ControllerWindow::assignment(GateId g, unsigned cycle) const {
  return assign_[cycle][g];
}

std::vector<std::tuple<GateId, unsigned, bool>> ControllerWindow::assignments()
    const {
  std::vector<std::tuple<GateId, unsigned, bool>> out;
  for (unsigned t = 0; t < T_; ++t)
    for (GateId g = 0; g < gn_.num_gates(); ++g)
      if (assign_[t][g] != L3::X)
        out.emplace_back(g, t, assign_[t][g] == L3::T);
  return out;
}

void ControllerWindow::imply() {
  ++implies_;
  for (unsigned t = 0; t < T_; ++t) {
    std::vector<L3>& v = vals_[t];
    // DFF outputs: reset at t=0, previous D otherwise.
    for (GateId g = 0; g < gn_.num_gates(); ++g) {
      const Gate& gate = gn_.gate(g);
      if (gate.kind == GateKind::kDff) {
        v[g] = t == 0 ? l3_from_bool(gate.reset_value)
                      : vals_[t - 1][gate.fanin[0]];
      } else if (gate.kind == GateKind::kVar) {
        v[g] = assign_[t][g];
      }
    }
    eval_cycle3(gn_, v);
  }
}

void ControllerWindow::clear() {
  for (auto& a : assign_) std::fill(a.begin(), a.end(), L3::X);
  imply();
}

}  // namespace hltg
