// Shared objective / constraint vocabulary of the three TG engines.
//
// DPTRACE (path selection) emits:
//  - CtrlObjective: a controller CTRL bit that must carry a given value in a
//    given cycle (justified by CTRLJUST);
//  - RelaxConstraint: a datapath value requirement (solved by DPRELAX).
// CTRLJUST's decisions on STS variables flow back to DPRELAX as additional
// RelaxConstraints (Sec. V.C: "if a decision concerns a STS signal, that
// STS signal needs to be justified by the datapath").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gatenet/gatenet.h"
#include "netlist/netlist.h"

namespace hltg {

/// (controller gate, cycle) must evaluate to `value`.
struct CtrlObjective {
  GateId gate = kNoGate;
  unsigned cycle = 0;
  bool value = false;
  bool operator==(const CtrlObjective&) const = default;
};

enum class RelaxKind {
  kGoodEquals,     ///< good-machine net value (under mask) must equal `value`
  kGoodNotEquals,  ///< good-machine net value (under mask) must differ
  kGoodNetsDiffer, ///< two good-machine nets must carry different values
  kSiteDiffers,    ///< good and erroneous value of net must differ (MSE/BOE)
};

struct RelaxConstraint {
  RelaxKind kind = RelaxKind::kGoodEquals;
  NetId net = kNoNet;
  unsigned cycle = 0;
  std::uint64_t mask = ~std::uint64_t{0};
  std::uint64_t value = 0;
  NetId net2 = kNoNet;  ///< kGoodNetsDiffer only
  std::string why;  ///< provenance for debugging ("activation", "side", ...)
};

/// One hop of a selected propagation path (for reporting / tests).
struct PathHop {
  NetId net = kNoNet;
  unsigned cycle = 0;
};

/// Everything DPTRACE hands to the rest of TG for one candidate path.
struct PathPlan {
  std::vector<PathHop> hops;            ///< site ... observation point
  std::vector<CtrlObjective> ctrl_objectives;
  std::vector<RelaxConstraint> relax_constraints;
  ModId observe_module = kNoMod;        ///< kOutput / kMemWrite / kRfWrite
  unsigned observe_cycle = 0;
  unsigned activate_cycle = 0;
};

}  // namespace hltg
