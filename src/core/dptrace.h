// DPTRACE: justification / propagation path selection in the datapath
// (Sec. V.A).
//
// Given an error site (a datapath bus), DPTRACE selects propagation paths
// through the space-time graph of the unrolled datapath - module edges
// within a cycle, pipe-register edges to the next cycle - from the site to
// an observation point (data-memory port, register-file port, or a DPO).
// Along the way it emits:
//   - CTRL objectives (mux selects, register enables/clears, write enables)
//     for CTRLJUST, and
//   - value constraints (AND-class side inputs at non-masking values,
//     data-dependent selects) for DPRELAX,
// exactly the division of labour of Fig. 4. Value selection is delegated to
// DPRELAX ("this divide-and-conquer approach reduces the problem size
// significantly, but may fail to find a solution even if the problem is
// feasible" - failures surface as backtracks in TG).
//
// The module-class rules follow Fig. 5: ADD-class modules propagate freely,
// AND-class modules demand controlled side inputs, MUX-class modules demand
// a select objective. The C/O-state lattice (netlist/costate.h) is used as
// a static pruning pass: propagation is only attempted through ports whose
// optimistic O-state can reach O3.
#pragma once

#include <vector>

#include "core/objectives.h"
#include "dlx/dlx.h"
#include "netlist/scoap.h"
#include "util/budget.h"

namespace hltg {

struct DpTraceConfig {
  unsigned window = 14;        ///< cycles in the space-time graph
  unsigned max_plans = 12;     ///< candidate paths handed to TG
  unsigned plans_per_activation = 3;
  unsigned slice_penalty = 3;  ///< cost bump for lossy hops
  unsigned rfwrite_penalty = 4;
};

class DpTrace {
 public:
  DpTrace(const DlxModel& m, DpTraceConfig cfg = {});

  /// Enumerate candidate propagation plans for an error site, cheapest
  /// first. The `activation` constraints are appended to each plan's relax
  /// constraints with their cycle set to the plan's activation cycle.
  /// `budget`, when given, is polled per activation cycle; a fired budget
  /// truncates the enumeration (already-found plans are returned).
  std::vector<PathPlan> plans(NetId site,
                              const std::vector<RelaxConstraint>& activation,
                              Budget* budget = nullptr) const;

  /// Static optimistic observability: can this net's error effect possibly
  /// reach an observation point (O-state could become O3)? Used by tests
  /// and as a pre-filter.
  bool statically_observable(NetId n) const { return observable_[n]; }

  /// Same, but excluding paths that require a taken control transfer
  /// (redirect = 1). Sites observable *only* through the redirect path are
  /// handled by TG's control-flow macro templates instead of plan search.
  bool observable_without_redirect(NetId n) const {
    return observable_no_redirect_[n];
  }

 private:
  struct Edge {
    NetId to_net = kNoNet;
    unsigned dt = 0;  ///< 0 for combinational, 1 across a pipe register
    std::vector<CtrlObjective> objectives_rel;   ///< cycle-relative (dt = 0)
    std::vector<RelaxConstraint> constraints_rel;
    ModId observe = kNoMod;  ///< != kNoMod: this edge reaches an observation
    bool needs_redirect = false;  ///< edge demands redirect = 1
    unsigned cost = 1;
  };

  void build_edges();
  void add_sts_consumption_edges();
  void compute_observable();
  /// Objectives for a CTRL net carrying `value` (per-bit); data-dependent
  /// selects become relax constraints instead.
  void ctrl_requirement(NetId ctrl_net, std::uint64_t value,
                        std::vector<CtrlObjective>* objs,
                        std::vector<RelaxConstraint>* cons) const;

  const DlxModel& m_;
  DpTraceConfig cfg_;
  ScoapCosts scoap_;
  std::vector<std::vector<Edge>> edges_;  ///< per source net
  std::vector<bool> observable_;
  std::vector<bool> observable_no_redirect_;
  /// Earliest cycle an instruction's effect can appear per stage (pipeline
  /// fill from reset: IF=0 ... WB=4).
  unsigned earliest_cycle(NetId n) const;
};

}  // namespace hltg
