// DPTRACE: justification / propagation path selection in the datapath
// (Sec. V.A).
//
// Given an error site (a datapath bus), DPTRACE selects propagation paths
// through the space-time graph of the unrolled datapath - module edges
// within a cycle, pipe-register edges to the next cycle - from the site to
// an observation point (data-memory port, register-file port, or a DPO).
// Along the way it emits:
//   - CTRL objectives (mux selects, register enables/clears, write enables)
//     for CTRLJUST, and
//   - value constraints (AND-class side inputs at non-masking values,
//     data-dependent selects) for DPRELAX,
// exactly the division of labour of Fig. 4. Value selection is delegated to
// DPRELAX ("this divide-and-conquer approach reduces the problem size
// significantly, but may fail to find a solution even if the problem is
// feasible" - failures surface as backtracks in TG).
//
// The module-class rules follow Fig. 5: ADD-class modules propagate freely,
// AND-class modules demand controlled side inputs, MUX-class modules demand
// a select objective. The C/O-state lattice (netlist/costate.h) is used as
// a static pruning pass: propagation is only attempted through ports whose
// optimistic O-state can reach O3.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/objectives.h"
#include "dlx/dlx.h"
#include "netlist/scoap.h"
#include "util/budget.h"

namespace hltg {

struct DpTraceConfig {
  unsigned window = 14;        ///< cycles in the space-time graph
  unsigned max_plans = 12;     ///< candidate paths handed to TG
  unsigned plans_per_activation = 3;
  unsigned slice_penalty = 3;  ///< cost bump for lossy hops
  unsigned rfwrite_penalty = 4;
  /// Reuse the expanded best-first search across activation cycles. Edge
  /// annotations are cycle-relative, so the search for activation cycle t
  /// is a pure function of its depth limit D = window - t; when the last
  /// expansion never reached the window bound, the recorded node tree is
  /// replayed (shifted by t) for later activation cycles instead of being
  /// re-expanded from scratch. Plan order and contents are identical to
  /// the per-cycle enumerator (tests/test_dptrace.cpp locks this).
  bool reuse = true;
};

/// Search-effort counters for the plan enumerator (the campaign benchmark
/// tracks expansions per configuration; see docs/PERFORMANCE.md).
struct DpTraceStats {
  std::uint64_t expansions = 0;       ///< best-first queue pops
  std::uint64_t searches_run = 0;     ///< activation cycles actually expanded
  std::uint64_t searches_reused = 0;  ///< activation cycles served by reuse
};

class DpTrace {
 public:
  DpTrace(const DlxModel& m, DpTraceConfig cfg = {});

  /// Enumerate candidate propagation plans for an error site, cheapest
  /// first. The `activation` constraints are appended to each plan's relax
  /// constraints with their cycle set to the plan's activation cycle.
  /// `budget`, when given, is polled per activation cycle; a fired budget
  /// truncates the enumeration (already-found plans are returned).
  /// `stats`, when given, accumulates search-effort counters.
  std::vector<PathPlan> plans(NetId site,
                              const std::vector<RelaxConstraint>& activation,
                              Budget* budget = nullptr,
                              DpTraceStats* stats = nullptr) const;

  /// Static optimistic observability: can this net's error effect possibly
  /// reach an observation point (O-state could become O3)? Used by tests
  /// and as a pre-filter.
  bool statically_observable(NetId n) const { return observable_[n]; }

  /// Same, but excluding paths that require a taken control transfer
  /// (redirect = 1). Sites observable *only* through the redirect path are
  /// handled by TG's control-flow macro templates instead of plan search.
  bool observable_without_redirect(NetId n) const {
    return observable_no_redirect_[n];
  }

 private:
  struct Edge {
    NetId to_net = kNoNet;
    unsigned dt = 0;  ///< 0 for combinational, 1 across a pipe register
    std::vector<CtrlObjective> objectives_rel;   ///< cycle-relative (dt = 0)
    std::vector<RelaxConstraint> constraints_rel;
    ModId observe = kNoMod;  ///< != kNoMod: this edge reaches an observation
    bool needs_redirect = false;  ///< edge demands redirect = 1
    unsigned cost = 1;
  };

  void build_edges();
  void add_sts_consumption_edges();
  void compute_observable();
  /// Objectives for a CTRL net carrying `value` (per-bit); data-dependent
  /// selects become relax constraints instead.
  void ctrl_requirement(NetId ctrl_net, std::uint64_t value,
                        std::vector<CtrlObjective>* objs,
                        std::vector<RelaxConstraint>* cons) const;

  /// One recorded best-first expansion in activation-relative offset space.
  /// The search for an activation cycle is a pure function of its depth
  /// limit D = window - t_act, so a recorded tree replays exactly for any
  /// later query it covers: an entry whose depth bound never bit
  /// (max_t2 < depth_run) equals the unbounded search and serves ANY depth
  /// limit > max_t2; otherwise it serves exactly depth_run.
  struct SearchNode {
    NetId net;
    unsigned offset;  ///< cycle - t_act
    unsigned cost;
    int parent;       ///< index into `nodes`
    int via_edge;     ///< edge index in edges_[parent.net]
  };
  struct SearchMemo {
    std::vector<SearchNode> nodes;
    std::vector<std::pair<int, int>> found;  ///< (node, observation edge)
    unsigned depth_run = 0;  ///< depth limit the expansion ran at
    unsigned max_t2 = 0;     ///< deepest offset the expansion attempted
  };
  const SearchMemo* find_memo(NetId site, unsigned depth) const;

  const DlxModel& m_;
  DpTraceConfig cfg_;
  ScoapCosts scoap_;
  std::vector<std::vector<Edge>> edges_;  ///< per source net
  std::vector<bool> observable_;
  std::vector<bool> observable_no_redirect_;
  /// Earliest cycle an instruction's effect can appear per stage (pipeline
  /// fill from reset: IF=0 ... WB=4).
  unsigned earliest_cycle(NetId n) const;
  /// Recorded searches per site, kept for the tracer's lifetime (enabled by
  /// cfg_.reuse). Entries are pure functions of (site, depth limit), so
  /// replaying them is outcome-neutral for any error order or campaign
  /// sharding. mutable: plans() is const; one DpTrace belongs to one
  /// campaign worker (thread-compatible, not thread-safe - the campaign
  /// engines construct one generator per worker).
  mutable std::unordered_map<NetId, std::vector<SearchMemo>> search_memo_;
};

}  // namespace hltg
