// Process supervision for campaign workers (docs/SERVICE.md,
// docs/ROBUSTNESS.md "Poisoned requests").
//
// PR 8's daemon ran every campaign in-process: one assertion failure,
// OOM kill, or bug in a new DUT model took down the daemon and every
// in-flight request. This module isolates campaign execution into forked
// worker processes so the service survives anything a campaign can do:
//
//   run_worker()   fork one worker per admitted flight, stream its result
//                  back over a pipe in the store's CRC-framed record
//                  format (solver/store.h), harvest the exit status, and
//                  enforce a per-request wall-clock deadline with
//                  SIGTERM -> SIGKILL escalation. A crash (signal, nonzero
//                  exit, torn result) is reported as a structured
//                  WorkerExit, never daemon death.
//   CrashBreaker   crash-count circuit breaker: a request key whose
//                  workers die max_crashes times is quarantined as
//                  POISONED - written as a quarantine bundle, served as a
//                  terminal error, never run again (bundles reload on
//                  daemon restart, so poison survives the process).
//   backoff_delay_ms
//                  jittered exponential backoff for restarting crashed
//                  capacity (the service sleeps this long between worker
//                  attempts of the same flight).
//
// The parent/child contract: the child writes a kind-1 summary record
// (flat JSON: ok/cancelled/error/total/attempted/detected), optionally a
// kind-2 CSV record and kind-3 Table-1 record, then exits 0. Anything
// else - death by signal, nonzero exit, missing or CRC-invalid summary -
// is a crash. Records are CRC32-framed even over a pipe so a worker that
// dies mid-write can never smuggle a torn payload into the result cache.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace hltg {

/// Record kinds on the worker->supervisor result pipe.
inline constexpr std::uint32_t kWorkerRecSummary = 1;  ///< flat JSON summary
inline constexpr std::uint32_t kWorkerRecCsv = 2;      ///< campaign_csv bytes
inline constexpr std::uint32_t kWorkerRecTable1 = 3;   ///< Table-1 block

struct SupervisorConfig {
  /// Circuit breaker: total worker deaths (across resubmissions) at which
  /// a request key is quarantined as poisoned.
  unsigned max_crashes = 3;
  /// Per-request wall-clock deadline in seconds (0 = unlimited). On
  /// expiry the worker gets SIGTERM (cooperative cancel) and, after
  /// term_grace_seconds, SIGKILL.
  double deadline_seconds = 0;
  double term_grace_seconds = 2.0;  ///< SIGTERM -> SIGKILL escalation grace
  /// Jittered exponential backoff between worker attempts of a crashed
  /// flight: nominal delay = base * 2^(attempt-1), capped at max, scaled
  /// by a deterministic jitter factor in [0.5, 1.5).
  double backoff_base_ms = 100;
  double backoff_max_ms = 2000;
  std::uint64_t backoff_seed = 0;  ///< jitter seed (0: derived at first use)
};

/// How one worker attempt ended, as the supervisor saw it.
struct WorkerExit {
  bool ran = false;        ///< fork succeeded and the child was reaped
  bool result_ok = false;  ///< clean exit with a complete CRC-valid summary
  bool timed_out = false;  ///< the wall-clock deadline triggered escalation
  int exit_code = -1;      ///< WEXITSTATUS when the child exited
  int term_signal = 0;     ///< WTERMSIG when a signal killed it
  std::string summary_json;  ///< kind-1 record payload (when result_ok)
  std::string csv;           ///< kind-2 record payload
  std::string table1;        ///< kind-3 record payload

  /// Human-readable exit status: "signal 9 (SIGKILL)", "exit 134", ...
  std::string describe() const;
};

/// Child-side job. Runs in the forked worker; receives the write end of
/// the result pipe and returns the process exit code (0 = result
/// delivered). Must be fork-safe: no touching the parent's threads,
/// sockets, or locks.
using WorkerJob = std::function<int(int wfd)>;

/// Write one CRC-framed record (marker | kind | length | crc32 | payload,
/// all u32 little-endian, crc over the payload) to `fd`. Full write with
/// EINTR retry; false on any error.
bool write_worker_record(int fd, std::uint32_t kind,
                         const std::string& payload);

/// Fork a worker, run `job` in the child, stream records from the pipe,
/// enforce the deadline, and reap. `cancel_requested` (nullable) is
/// polled every tick; when it turns true the child gets SIGTERM - its
/// cooperative-cancel path - then SIGKILL after the grace period.
WorkerExit run_worker(const WorkerJob& job, const SupervisorConfig& cfg,
                      const std::function<bool()>& cancel_requested);

/// Jittered exponential backoff delay before worker attempt
/// `attempt` (>= 2; attempt 1 never waits). `salt` decorrelates flights.
double backoff_delay_ms(const SupervisorConfig& cfg, unsigned attempt,
                        std::uint64_t salt);

/// Crash-count circuit breaker over request cache keys. Thread-safe.
///
/// With a quarantine directory configured, poisoning a key writes a
/// bundle `poisoned_<key>.json` (crash count, last exit status, the
/// request's own JSON fields) and the constructor reloads every bundle -
/// poison is durable across daemon restarts until an operator deletes
/// the bundle.
class CrashBreaker {
 public:
  CrashBreaker(unsigned max_crashes, std::string quarantine_dir);

  /// Record one worker death for `key`. Returns the cumulative crash
  /// count; at max_crashes the key is poisoned (bundle written).
  unsigned record_crash(const std::string& key, const std::string& what,
                        const std::string& request_json);

  /// True when `key` is quarantined; *why (nullable) gets the terminal
  /// error message to serve.
  bool poisoned(const std::string& key, std::string* why = nullptr) const;

  std::size_t poisoned_count() const;

 private:
  void poison_locked(const std::string& key, unsigned crashes,
                     const std::string& what, const std::string& request_json);

  mutable std::mutex mu_;
  unsigned max_crashes_;
  std::string dir_;
  std::map<std::string, unsigned> crashes_;
  std::map<std::string, std::string> poisoned_;  ///< key -> why
};

}  // namespace hltg
