#include "service/service.h"

#include "baseline/random_tg.h"
#include "errors/parallel_campaign.h"
#include "errors/report.h"
#include "sim/batch_sim.h"
#include "solver/nogood_board.h"

namespace hltg {

namespace {

/// Recover the attempted/detected counters from a cached CSV payload so a
/// cache-served outcome summarises like the fresh run it replays. One data
/// row per attempted error; the outcome column (third field) starts with
/// "detected" for the detected ones.
void count_csv_rows(const std::string& csv, std::size_t* attempted,
                    std::size_t* detected) {
  std::size_t pos = csv.find('\n');  // skip the header line
  while (pos != std::string::npos && pos + 1 < csv.size()) {
    const std::size_t eol = csv.find('\n', pos + 1);
    const std::string line =
        csv.substr(pos + 1, eol == std::string::npos ? eol : eol - pos - 1);
    pos = eol;
    if (line.empty()) continue;
    ++*attempted;
    // Walk to the third field; the error-description field may be quoted
    // with embedded commas (csv_escape), so track quoting.
    int commas = 0;
    bool quoted = false;
    std::size_t i = 0;
    for (; i < line.size() && commas < 2; ++i) {
      if (line[i] == '"')
        quoted = !quoted;
      else if (line[i] == ',' && !quoted)
        ++commas;
    }
    if (commas == 2 && line.compare(i, 8, "detected") == 0) ++*detected;
  }
}

}  // namespace

CampaignResult run_campaign_plan(const DlxModel& m, const RequestPlan& plan,
                                 const CampaignConfig& ccfg) {
  const TgConfig& tgcfg = plan.tgcfg;
  if (plan.drop) {
    TestGenerator tg(m, tgcfg);
    BatchDetectConfig bcfg;
    bcfg.max_lanes = plan.lanes;
    return run_campaign_with_dropping(m.dp, plan.errors,
                                      tg.budgeted_strategy(),
                                      batch_detector(m, bcfg), ccfg);
  }
  if (plan.jobs > 1) {
    // Workers share the model read-only; its lazy caches are materialised
    // once at service start (CampaignService ctor).
    ParallelCampaignConfig pcfg;
    static_cast<CampaignConfig&>(pcfg) = ccfg;
    pcfg.jobs = plan.jobs;
    TgConfig worker_cfg = tgcfg;
    NogoodBoard board;
    if (worker_cfg.solver.scope == SolverScope::kCampaign)
      worker_cfg.solver.shared_board = &board;
    if (plan.fallback) {
      RandomTgConfig rcfg;
      rcfg.max_programs_per_error = plan.fallback_tries;
      pcfg.fallback = nullptr;  // replaced by per-worker instances
      pcfg.fallback_factory = [&m, rcfg](unsigned) {
        return random_budgeted_strategy(m, rcfg);
      };
    }
    return run_campaign_parallel(
        m.dp, plan.errors,
        [&](unsigned) {
          auto tg = std::make_shared<TestGenerator>(m, worker_cfg);
          BudgetedGenFn s = tg->budgeted_strategy();
          return [tg, s](const DesignError& e, Budget& b) { return s(e, b); };
        },
        pcfg);
  }
  TestGenerator tg(m, tgcfg);
  return run_campaign(m.dp, plan.errors, tg.budgeted_strategy(), ccfg);
}

CampaignService::CampaignService(const DlxModel& m, ServiceConfig cfg)
    : model_(m),
      cfg_(std::move(cfg)),
      cache_(ResultCacheConfig{cfg_.cache_dir, cfg_.cache_memory_entries}) {
  // Parallel flights hand out const refs to the model across threads:
  // materialise its lazy caches before any worker can race on them.
  model_.ctrl.warm_caches();
  model_.dp.topo_order();
  if (cfg_.executors == 0) cfg_.executors = 1;
  for (unsigned i = 0; i < cfg_.executors; ++i)
    executors_.emplace_back([this] { executor_loop(); });
}

CampaignService::~CampaignService() { drain(); }

SubmitResult CampaignService::submit(const RequestSpec& spec, DoneFn done) {
  SubmitResult out;
  RequestPlan plan = plan_request(model_, spec);
  if (!plan.ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.rejected_invalid;
    out.error = plan.error;
    return out;
  }
  if (plan.jobs > cfg_.jobs_cap) plan.jobs = cfg_.jobs_cap;
  out.key = plan.cache_key;

  // Cache first: an identical completed request answers without a queue
  // slot, an id, or an executor - this is the content-addressed fast path.
  std::string payload;
  if (cache_.lookup(plan.cache_key, &payload)) {
    RequestOutcome o;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.submitted;
      o.id = next_id_++;
      out.id = o.id;
    }
    o.key = plan.cache_key;
    o.ok = true;
    o.cached = true;
    o.csv = std::move(payload);
    o.total = plan.errors.size();
    count_csv_rows(o.csv, &o.attempted, &o.detected);
    out.ok = true;
    out.cached = true;
    if (done) done(o);
    return out;
  }

  std::unique_lock<std::mutex> lk(mu_);
  ++stats_.submitted;
  if (draining_) {
    out.error = "service is draining";
    ++stats_.rejected_overload;
    return out;
  }
  const std::uint64_t id = next_id_++;
  out.id = id;

  // Single-flight: identical work already admitted? Ride it.
  const auto fit = inflight_by_key_.find(plan.cache_key);
  if (fit != inflight_by_key_.end()) {
    fit->second->subscribers.emplace_back(id, std::move(done));
    inflight_by_id_[id] = fit->second;
    ++stats_.coalesced;
    out.ok = true;
    out.coalesced = true;
    out.journal_path = fit->second->journal_path;
    return out;
  }

  if (queue_.size() >= cfg_.queue_capacity) {
    out.error = "admission queue full";
    ++stats_.rejected_overload;
    return out;
  }

  auto fl = std::make_shared<Flight>();
  fl->id = id;
  fl->spec = spec;
  fl->plan = std::move(plan);
  if (!cfg_.spool_dir.empty())
    fl->journal_path =
        cfg_.spool_dir + "/req_" + std::to_string(id) + ".jsonl";
  fl->subscribers.emplace_back(id, std::move(done));
  queue_.push_back(fl);
  inflight_by_key_[fl->plan.cache_key] = fl;
  inflight_by_id_[id] = fl;
  out.ok = true;
  out.journal_path = fl->journal_path;
  lk.unlock();
  cv_.notify_one();
  return out;
}

bool CampaignService::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = inflight_by_id_.find(id);
  if (it == inflight_by_id_.end()) return false;
  // Cooperative: the campaign engine checks between errors; the current
  // error finishes (and is journaled) first. Cancels the whole flight,
  // coalesced subscribers included - they asked for the identical work.
  it->second->cancel.request_stop();
  return true;
}

void CampaignService::drain() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : executors_)
    if (t.joinable()) t.join();
}

ServiceStats CampaignService::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServiceStats s = stats_;
  s.queued = queue_.size();
  s.running = running_;
  s.cache = cache_.stats();
  return s;
}

void CampaignService::executor_loop() {
  for (;;) {
    std::shared_ptr<Flight> fl;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // draining and nothing left
      fl = queue_.front();
      queue_.pop_front();
      fl->running = true;
      ++running_;
    }
    run_flight(fl);
    {
      std::lock_guard<std::mutex> lk(mu_);
      --running_;
    }
  }
}

void CampaignService::run_flight(const std::shared_ptr<Flight>& fl) {
  CampaignConfig ccfg;
  ccfg.budget = fl->plan.budget;
  ccfg.budget.cancel = &fl->cancel;
  ccfg.cancel = &fl->cancel;
  ccfg.journal_path = fl->journal_path;
  ccfg.design_hash = fl->plan.design_hash;
  ccfg.solver_config_hash = fl->plan.config_hash;
  if (fl->plan.fallback) {
    RandomTgConfig rcfg;
    rcfg.max_programs_per_error = fl->plan.fallback_tries;
    ccfg.fallback = random_budgeted_strategy(model_, rcfg);
    ccfg.fallback_budget = ccfg.budget;
  }

  RequestOutcome o;
  o.id = fl->id;
  o.key = fl->plan.cache_key;
  try {
    const CampaignResult res = cfg_.runner_override
                                   ? cfg_.runner_override(fl->plan, ccfg)
                                   : run_campaign_plan(model_, fl->plan, ccfg);
    o.total = res.stats.total;
    o.attempted = res.stats.attempted;
    o.detected = res.stats.detected;
    if (res.interrupted) {
      o.cancelled = true;
      o.error = "cancelled after " + std::to_string(res.stats.attempted) +
                " of " + std::to_string(res.stats.total) + " errors";
    } else {
      o.ok = true;
      o.csv = campaign_csv(model_.dp, res);
      o.table1 = res.stats.table1("campaign summary");
      // Only complete, uninterrupted results are content-addressable:
      // a partial sweep under this key would be served as the full
      // answer forever after.
      cache_.insert(fl->plan.cache_key, o.csv);
    }
  } catch (const std::exception& e) {
    o.error = std::string("campaign failed: ") + e.what();
  }

  std::vector<std::pair<std::uint64_t, DoneFn>> subs;
  {
    std::lock_guard<std::mutex> lk(mu_);
    subs.swap(fl->subscribers);
    inflight_by_key_.erase(fl->plan.cache_key);
    for (const auto& [sid, fn] : subs) inflight_by_id_.erase(sid);
    if (o.cancelled)
      ++stats_.cancelled;
    else
      ++stats_.completed;
  }
  // Callbacks run outside the lock: they write sockets / take their own
  // locks and must not be able to deadlock the service.
  for (auto& [sid, fn] : subs) {
    if (!fn) continue;
    o.id = sid;
    fn(o);
  }
}

}  // namespace hltg
