#include "service/service.h"

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "baseline/random_tg.h"
#include "errors/parallel_campaign.h"
#include "errors/report.h"
#include "sim/batch_sim.h"
#include "solver/nogood_board.h"
#include "util/minijson.h"

namespace hltg {

namespace {

/// Worker-process cancel plumbing: the supervisor's SIGTERM is the
/// cooperative cancel signal, translated into the flight's CancelToken
/// (an atomic bool - async-signal-safe to flip from a handler).
CancelToken* g_worker_cancel = nullptr;
extern "C" void worker_on_term(int) {
  if (g_worker_cancel) g_worker_cancel->request_stop();
}

/// Recover the attempted/detected counters from a cached CSV payload so a
/// cache-served outcome summarises like the fresh run it replays. One data
/// row per attempted error; the outcome column (third field) starts with
/// "detected" for the detected ones.
void count_csv_rows(const std::string& csv, std::size_t* attempted,
                    std::size_t* detected) {
  std::size_t pos = csv.find('\n');  // skip the header line
  while (pos != std::string::npos && pos + 1 < csv.size()) {
    const std::size_t eol = csv.find('\n', pos + 1);
    const std::string line =
        csv.substr(pos + 1, eol == std::string::npos ? eol : eol - pos - 1);
    pos = eol;
    if (line.empty()) continue;
    ++*attempted;
    // Walk to the third field; the error-description field may be quoted
    // with embedded commas (csv_escape), so track quoting.
    int commas = 0;
    bool quoted = false;
    std::size_t i = 0;
    for (; i < line.size() && commas < 2; ++i) {
      if (line[i] == '"')
        quoted = !quoted;
      else if (line[i] == ',' && !quoted)
        ++commas;
    }
    if (commas == 2 && line.compare(i, 8, "detected") == 0) ++*detected;
  }
}

}  // namespace

CampaignResult run_campaign_plan(const DlxModel& m, const RequestPlan& plan,
                                 const CampaignConfig& ccfg) {
  const TgConfig& tgcfg = plan.tgcfg;
  if (plan.drop) {
    TestGenerator tg(m, tgcfg);
    BatchDetectConfig bcfg;
    bcfg.max_lanes = plan.lanes;
    return run_campaign_with_dropping(m.dp, plan.errors,
                                      tg.budgeted_strategy(),
                                      batch_detector(m, bcfg), ccfg);
  }
  if (plan.jobs > 1) {
    // Workers share the model read-only; its lazy caches are materialised
    // once at service start (CampaignService ctor).
    ParallelCampaignConfig pcfg;
    static_cast<CampaignConfig&>(pcfg) = ccfg;
    pcfg.jobs = plan.jobs;
    TgConfig worker_cfg = tgcfg;
    NogoodBoard board;
    if (worker_cfg.solver.scope == SolverScope::kCampaign)
      worker_cfg.solver.shared_board = &board;
    if (plan.fallback) {
      RandomTgConfig rcfg;
      rcfg.max_programs_per_error = plan.fallback_tries;
      pcfg.fallback = nullptr;  // replaced by per-worker instances
      pcfg.fallback_factory = [&m, rcfg](unsigned) {
        return random_budgeted_strategy(m, rcfg);
      };
    }
    return run_campaign_parallel(
        m.dp, plan.errors,
        [&](unsigned) {
          auto tg = std::make_shared<TestGenerator>(m, worker_cfg);
          BudgetedGenFn s = tg->budgeted_strategy();
          return [tg, s](const DesignError& e, Budget& b) { return s(e, b); };
        },
        pcfg);
  }
  TestGenerator tg(m, tgcfg);
  return run_campaign(m.dp, plan.errors, tg.budgeted_strategy(), ccfg);
}

CampaignService::CampaignService(const DlxModel& m, ServiceConfig cfg)
    : model_(m),
      cfg_(std::move(cfg)),
      cache_(ResultCacheConfig{cfg_.cache_dir, cfg_.cache_memory_entries,
                               cfg_.cache_max_bytes}),
      breaker_(cfg_.supervisor.max_crashes, cfg_.poison_dir) {
  // Parallel flights hand out const refs to the model across threads:
  // materialise its lazy caches before any worker can race on them.
  model_.ctrl.warm_caches();
  model_.dp.topo_order();
  if (cfg_.executors == 0) cfg_.executors = 1;
  for (unsigned i = 0; i < cfg_.executors; ++i)
    executors_.emplace_back([this] { executor_loop(); });
}

CampaignService::~CampaignService() { drain(); }

SubmitResult CampaignService::submit(const RequestSpec& spec, DoneFn done) {
  SubmitResult out;
  RequestPlan plan = plan_request(model_, spec);
  if (!plan.ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.rejected_invalid;
    out.error = plan.error;
    return out;
  }
  if (plan.jobs > cfg_.jobs_cap) plan.jobs = cfg_.jobs_cap;
  out.key = plan.cache_key;

  // Poisoned keys are terminal before anything else: the circuit breaker
  // has proven this exact computation kills workers, so it never reaches
  // the queue again. The done callback fires synchronously, like a cache
  // hit - but with the quarantine error.
  std::string poison_why;
  if (breaker_.poisoned(plan.cache_key, &poison_why)) {
    RequestOutcome o;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.submitted;
      ++stats_.rejected_poisoned;
      o.id = next_id_++;
      out.id = o.id;
    }
    o.key = plan.cache_key;
    o.poisoned = true;
    o.error = poison_why;
    out.ok = true;
    out.poisoned = true;
    if (done) done(o);
    return out;
  }

  // Cache first: an identical completed request answers without a queue
  // slot, an id, or an executor - this is the content-addressed fast path.
  std::string payload;
  if (cache_.lookup(plan.cache_key, &payload)) {
    RequestOutcome o;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.submitted;
      o.id = next_id_++;
      out.id = o.id;
    }
    o.key = plan.cache_key;
    o.ok = true;
    o.cached = true;
    o.csv = std::move(payload);
    o.total = plan.errors.size();
    count_csv_rows(o.csv, &o.attempted, &o.detected);
    out.ok = true;
    out.cached = true;
    if (done) done(o);
    return out;
  }

  std::unique_lock<std::mutex> lk(mu_);
  ++stats_.submitted;
  if (draining_) {
    out.error = "service is draining";
    out.transient = true;  // a restarted daemon will take this request
    ++stats_.rejected_overload;
    return out;
  }
  const std::uint64_t id = next_id_++;
  out.id = id;

  // Single-flight: identical work already admitted? Ride it.
  const auto fit = inflight_by_key_.find(plan.cache_key);
  if (fit != inflight_by_key_.end()) {
    fit->second->subscribers.emplace_back(id, std::move(done));
    inflight_by_id_[id] = fit->second;
    ++stats_.coalesced;
    out.ok = true;
    out.coalesced = true;
    out.journal_path = fit->second->journal_path;
    return out;
  }

  if (queue_.size() >= cfg_.queue_capacity) {
    out.error = "admission queue full";
    out.transient = true;  // load shedding, not a verdict on the request
    ++stats_.rejected_overload;
    return out;
  }

  auto fl = std::make_shared<Flight>();
  fl->id = id;
  fl->spec = spec;
  fl->plan = std::move(plan);
  if (!cfg_.spool_dir.empty())
    fl->journal_path =
        cfg_.spool_dir + "/req_" + std::to_string(id) + ".jsonl";
  fl->subscribers.emplace_back(id, std::move(done));
  queue_.push_back(fl);
  inflight_by_key_[fl->plan.cache_key] = fl;
  inflight_by_id_[id] = fl;
  out.ok = true;
  out.journal_path = fl->journal_path;
  lk.unlock();
  cv_.notify_one();
  return out;
}

bool CampaignService::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = inflight_by_id_.find(id);
  if (it == inflight_by_id_.end()) return false;
  // Cooperative: the campaign engine checks between errors; the current
  // error finishes (and is journaled) first. Cancels the whole flight,
  // coalesced subscribers included - they asked for the identical work.
  it->second->cancel.request_stop();
  return true;
}

void CampaignService::drain() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : executors_)
    if (t.joinable()) t.join();
  // Every flight has published; nobody will tail a progress journal of a
  // dead daemon. Reclaim them all.
  gc_spool(0);
}

ServiceStats CampaignService::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServiceStats s = stats_;
  s.queued = queue_.size();
  s.running = running_;
  s.poisoned = breaker_.poisoned_count();
  s.cache = cache_.stats();
  return s;
}

void CampaignService::executor_loop() {
  for (;;) {
    std::shared_ptr<Flight> fl;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // draining and nothing left
      fl = queue_.front();
      queue_.pop_front();
      fl->running = true;
      ++running_;
    }
    run_flight(fl);
    {
      std::lock_guard<std::mutex> lk(mu_);
      --running_;
    }
  }
}

CampaignConfig CampaignService::flight_config(const Flight& fl) const {
  CampaignConfig ccfg;
  ccfg.budget = fl.plan.budget;
  // The cancel token is wired by the caller: in-process execution points
  // it at the flight's token; a supervised worker points it at its own
  // (the one its SIGTERM handler flips).
  ccfg.journal_path = fl.journal_path;
  ccfg.design_hash = fl.plan.design_hash;
  ccfg.solver_config_hash = fl.plan.config_hash;
  if (fl.plan.fallback) {
    RandomTgConfig rcfg;
    rcfg.max_programs_per_error = fl.plan.fallback_tries;
    ccfg.fallback = random_budgeted_strategy(model_, rcfg);
    ccfg.fallback_budget = ccfg.budget;
  }
  return ccfg;
}

void CampaignService::run_flight(const std::shared_ptr<Flight>& fl) {
  RequestOutcome o;
  o.id = fl->id;
  o.key = fl->plan.cache_key;
  if (cfg_.supervise)
    execute_supervised(fl, &o);
  else
    execute_inproc(fl, &o);

  std::vector<std::pair<std::uint64_t, DoneFn>> subs;
  {
    std::lock_guard<std::mutex> lk(mu_);
    subs.swap(fl->subscribers);
    inflight_by_key_.erase(fl->plan.cache_key);
    for (const auto& [sid, fn] : subs) inflight_by_id_.erase(sid);
    if (o.cancelled)
      ++stats_.cancelled;
    else
      ++stats_.completed;
    // The flight is done; its progress journal is now only of brief
    // interest to subscribers still tailing. Queue it for GC.
    if (!fl->journal_path.empty()) spool_done_.push_back(fl->journal_path);
  }
  gc_spool(cfg_.spool_keep);
  // Callbacks run outside the lock: they write sockets / take their own
  // locks and must not be able to deadlock the service.
  for (auto& [sid, fn] : subs) {
    if (!fn) continue;
    o.id = sid;
    fn(o);
  }
}

void CampaignService::execute_inproc(const std::shared_ptr<Flight>& fl,
                                     RequestOutcome* o) {
  CampaignConfig ccfg = flight_config(*fl);
  ccfg.budget.cancel = &fl->cancel;
  ccfg.cancel = &fl->cancel;
  try {
    const CampaignResult res = cfg_.runner_override
                                   ? cfg_.runner_override(fl->plan, ccfg)
                                   : run_campaign_plan(model_, fl->plan, ccfg);
    o->total = res.stats.total;
    o->attempted = res.stats.attempted;
    o->detected = res.stats.detected;
    if (res.interrupted) {
      o->cancelled = true;
      o->error = "cancelled after " + std::to_string(res.stats.attempted) +
                 " of " + std::to_string(res.stats.total) + " errors";
    } else {
      o->ok = true;
      o->csv = campaign_csv(model_.dp, res);
      o->table1 = res.stats.table1("campaign summary");
      // Only complete, uninterrupted results are content-addressable:
      // a partial sweep under this key would be served as the full
      // answer forever after.
      cache_.insert(fl->plan.cache_key, o->csv);
    }
  } catch (const std::exception& e) {
    o->error = std::string("campaign failed: ") + e.what();
  }
}

WorkerJob CampaignService::make_worker_job(const std::shared_ptr<Flight>& fl) {
  // Everything the child needs is captured by value or owned by `fl`,
  // which outlives the fork; the child must touch no service locks or
  // threads (they do not exist on its side of the fork).
  return [this, fl](int wfd) -> int {
    static CancelToken worker_cancel;
    g_worker_cancel = &worker_cancel;
    std::signal(SIGTERM, worker_on_term);
    std::signal(SIGINT, worker_on_term);

    CampaignConfig ccfg = flight_config(*fl);
    ccfg.budget.cancel = &worker_cancel;
    ccfg.cancel = &worker_cancel;

    JsonWriter w;
    std::string csv, table1;
    try {
      const CampaignResult res =
          cfg_.runner_override ? cfg_.runner_override(fl->plan, ccfg)
                               : run_campaign_plan(model_, fl->plan, ccfg);
      if (!res.interrupted) {
        csv = campaign_csv(model_.dp, res);
        table1 = res.stats.table1("campaign summary");
      }
      w.boolean("ok", !res.interrupted)
          .boolean("cancelled", res.interrupted)
          .str("error", "")
          .num("total", res.stats.total)
          .num("attempted", res.stats.attempted)
          .num("detected", res.stats.detected);
    } catch (const std::exception& e) {
      w.boolean("ok", false)
          .boolean("cancelled", false)
          .str("error", std::string("campaign failed: ") + e.what())
          .num("total", fl->plan.errors.size())
          .num("attempted", 0)
          .num("detected", 0);
    }
    if (!write_worker_record(wfd, kWorkerRecSummary, w.take())) return 2;
    if (!csv.empty() && !write_worker_record(wfd, kWorkerRecCsv, csv))
      return 2;
    if (!table1.empty() &&
        !write_worker_record(wfd, kWorkerRecTable1, table1))
      return 2;
    return 0;
  };
}

void CampaignService::execute_supervised(const std::shared_ptr<Flight>& fl,
                                         RequestOutcome* o) {
  // Salt the backoff jitter with the request key so concurrently crashed
  // flights desynchronise their restarts.
  std::uint64_t salt = 1469598103934665603ull;  // FNV offset basis
  for (const char c : fl->plan.cache_key) {
    salt ^= static_cast<unsigned char>(c);
    salt *= 1099511628211ull;
  }

  for (unsigned attempt = 1;; ++attempt) {
    const WorkerExit we = run_worker(
        make_worker_job(fl), cfg_.supervisor,
        [&fl] { return fl->cancel.stop_requested(); });

    if (we.result_ok) {
      const MiniJson j(we.summary_json);
      bool ok = false, cancelled = false;
      std::uint64_t total = 0, attempted = 0, detected = 0;
      std::string err;
      j.get_bool("ok", &ok);
      j.get_bool("cancelled", &cancelled);
      j.get_string("error", &err);
      j.get_u64("total", &total);
      j.get_u64("attempted", &attempted);
      j.get_u64("detected", &detected);
      o->total = total;
      o->attempted = attempted;
      o->detected = detected;
      if (cancelled) {
        o->cancelled = true;
        o->error = "cancelled after " + std::to_string(attempted) + " of " +
                   std::to_string(total) + " errors";
      } else if (ok) {
        o->ok = true;
        o->csv = we.csv;
        o->table1 = we.table1;
        // The parent owns cache insertion: the child's payload crossed
        // the pipe CRC-checked, so what lands here is what it computed.
        cache_.insert(fl->plan.cache_key, o->csv);
      } else {
        // The campaign failed cleanly inside the worker (engine threw):
        // a structured, terminal error - not a crash.
        o->error = err.empty() ? "campaign failed" : err;
      }
      return;
    }

    if (we.timed_out) {
      // Terminal, not retried: the deadline measures the request itself;
      // an identical rerun would time out identically.
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.deadline_kills;
      }
      o->error = "deadline exceeded: worker killed after " +
                 std::to_string(cfg_.supervisor.deadline_seconds) +
                 "s (" + we.describe() + ")";
      return;
    }

    if (fl->cancel.stop_requested()) {
      // The SIGTERM that ended this worker was our own cancel; report it
      // as a cancellation, not a crash.
      o->cancelled = true;
      o->error = "cancelled (worker stopped, " + we.describe() + ")";
      return;
    }

    // A genuine crash: signal, nonzero exit, or torn result.
    const unsigned crashes = breaker_.record_crash(
        fl->plan.cache_key, we.describe(), request_fields_json(fl->spec));
    bool draining;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.worker_crashes;
      draining = draining_;
    }
    std::string why;
    if (breaker_.poisoned(fl->plan.cache_key, &why)) {
      o->poisoned = true;
      o->error = why;
      return;
    }
    if (draining) {
      // No retry while draining - report transiently so the client can
      // resubmit to the restarted daemon (idempotent under the key).
      o->transient = true;
      o->error = "worker crashed (" + we.describe() +
                 ") while service was draining; resubmit";
      return;
    }

    // Restart: reclaim the torn journal first (the campaign engine
    // truncates it anyway on a fresh run) and back off with jitter.
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.worker_restarts;
    }
    if (!fl->journal_path.empty()) std::remove(fl->journal_path.c_str());
    const double delay = backoff_delay_ms(cfg_.supervisor, attempt + 1,
                                          salt ^ crashes);
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration<double, std::milli>(delay);
    while (std::chrono::steady_clock::now() < until) {
      if (fl->cancel.stop_requested()) {
        o->cancelled = true;
        o->error = "cancelled while restarting crashed worker";
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

void CampaignService::gc_spool(std::size_t keep) {
  std::vector<std::string> victims;
  {
    std::lock_guard<std::mutex> lk(mu_);
    while (spool_done_.size() > keep) {
      victims.push_back(std::move(spool_done_.front()));
      spool_done_.pop_front();
    }
    stats_.spool_gc += victims.size();
  }
  for (const std::string& path : victims) std::remove(path.c_str());
}

}  // namespace hltg
