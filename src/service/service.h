// Campaign service core (docs/SERVICE.md): the in-process engine behind
// the tg_server daemon, directly drivable (and unit-testable) without a
// socket.
//
// Lifecycle of a submission:
//
//   submit() -> validate (plan_request)      -> rejected: invalid request
//            -> content-addressed cache hit  -> answered synchronously
//            -> identical request in flight  -> coalesced onto that flight
//            -> bounded queue full           -> rejected: overloaded
//            -> enqueued                     -> an executor thread runs the
//                                               campaign, inserts the
//                                               result into the cache, and
//                                               fires every subscriber's
//                                               completion callback
//
// Requests carry a per-flight cooperative CancelToken (cancel());
// progress is observable by tailing the flight's spool journal (the
// campaign engine's own JSONL checkpoint file, flushed per row). drain()
// stops admissions and completes everything already admitted - the
// SIGTERM path of the daemon.
//
// With ServiceConfig::supervise set, each flight runs in a forked worker
// process under service/supervisor.h: worker crashes come back as
// structured errors and are retried with jittered backoff, a per-request
// wall-clock deadline escalates SIGTERM -> SIGKILL, and a key whose
// workers crash max_crashes times is quarantined as POISONED - a terminal
// error served synchronously to every later submission of that key.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "errors/campaign.h"
#include "service/cache.h"
#include "service/request.h"
#include "service/supervisor.h"

namespace hltg {

/// Completion report delivered to every subscriber of a flight.
struct RequestOutcome {
  std::uint64_t id = 0;
  std::string key;      ///< content address (cache key)
  bool ok = false;      ///< campaign ran to completion (or cache hit)
  bool cached = false;  ///< answered from the result cache
  bool cancelled = false;
  /// Terminal: the crash-count circuit breaker quarantined this request
  /// key (docs/ROBUSTNESS.md "Poisoned requests"). Never retried.
  bool poisoned = false;
  /// The failure is retryable: an identical resubmission may succeed
  /// (worker crashed while draining, fork failure, ...). Clients with
  /// retry enabled resubmit; poisoned/invalid outcomes never set this.
  bool transient = false;
  std::string error;   ///< when !ok
  std::string csv;     ///< the result payload: campaign_csv bytes
  std::string table1;  ///< Table-1 block (fresh runs only; empty cached)
  std::size_t total = 0;
  std::size_t attempted = 0;
  std::size_t detected = 0;
};

using DoneFn = std::function<void(const RequestOutcome&)>;

/// Campaign execution hook: validated plan + fully wired config in,
/// engine result out (see ServiceConfig::runner_override).
using CampaignRunner =
    std::function<CampaignResult(const RequestPlan&, const CampaignConfig&)>;

struct ServiceConfig {
  unsigned executors = 2;  ///< concurrent campaigns (each may use `jobs`)
  /// Clamp on a request's own worker count (the engine's determinism
  /// contract makes any clamp result-invariant).
  unsigned jobs_cap = 8;
  std::size_t queue_capacity = 16;  ///< admission bound (excludes running)
  std::string cache_dir;            ///< result-cache persistence ("" = off)
  std::size_t cache_memory_entries = 64;
  /// Disk budget for the result cache in bytes (0 = unbounded): LRU
  /// eviction keeps the cache directory under this bound.
  std::size_t cache_max_bytes = 0;
  /// Directory for per-request progress journals ("" disables progress
  /// streaming; results are unaffected).
  std::string spool_dir;
  /// Completed flights whose spool journal is kept before GC reclaims it
  /// (subscribers tail the journal briefly after completion).
  std::size_t spool_keep = 4;
  /// Run each flight in a forked, supervised worker process: a campaign
  /// crash (or OOM kill, or runaway wall clock) becomes a structured
  /// result instead of daemon death. Off = PR 8's in-process execution
  /// (unit tests; debugging).
  bool supervise = false;
  /// Worker supervision knobs: crash circuit breaker, per-request
  /// deadline, SIGTERM grace, restart backoff.
  SupervisorConfig supervisor;
  /// Quarantine-bundle directory for poisoned requests ("" keeps the
  /// breaker in memory only; poison then dies with the daemon).
  std::string poison_dir;
  /// Test hook: replaces the real campaign runner (build generator, run
  /// engine). Receives the validated plan and the fully wired
  /// CampaignConfig (budget, cancel token, journal path). Under
  /// supervision the override runs inside the forked worker, so it must
  /// be fork-safe (no parent threads/locks).
  CampaignRunner runner_override;
};

struct ServiceStats {
  std::uint64_t submitted = 0;       ///< well-formed submissions received
  std::uint64_t rejected_invalid = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t completed = 0;  ///< flights run to completion
  std::uint64_t cancelled = 0;  ///< flights stopped by cancel()
  std::uint64_t coalesced = 0;  ///< submissions attached to in-flight work
  std::uint64_t worker_crashes = 0;   ///< supervised workers that died
  std::uint64_t worker_restarts = 0;  ///< crashed flights re-forked
  std::uint64_t deadline_kills = 0;   ///< flights stopped by the deadline
  std::uint64_t rejected_poisoned = 0;  ///< submissions of quarantined keys
  std::uint64_t spool_gc = 0;   ///< progress journals reclaimed
  std::size_t poisoned = 0;     ///< snapshot: quarantined request keys
  std::size_t queued = 0;       ///< snapshot: flights waiting
  std::size_t running = 0;      ///< snapshot: flights executing
  ResultCacheStats cache;
};

struct SubmitResult {
  bool ok = false;    ///< admitted, coalesced, or answered from cache
  std::string error;  ///< when !ok
  /// A rejection the client may retry (queue full, draining) as opposed
  /// to a terminal one (invalid request).
  bool transient = false;
  std::uint64_t id = 0;
  std::string key;
  bool cached = false;     ///< done callback already fired, synchronously
  /// The key is quarantined: `done` already fired, synchronously, with a
  /// terminal poisoned outcome.
  bool poisoned = false;
  bool coalesced = false;  ///< attached to an identical in-flight request
  std::string journal_path;  ///< spool journal to tail for progress ("")
};

/// Run a validated request plan through the right campaign engine (serial,
/// parallel-sharded, or dropping), mirroring the error_campaign CLI's
/// wiring - the byte-identity of service results against offline runs
/// hangs on the two calling the engines identically. Exposed for tests.
CampaignResult run_campaign_plan(const DlxModel& m, const RequestPlan& plan,
                                 const CampaignConfig& ccfg);

class CampaignService {
 public:
  /// `m` must outlive the service. Executor threads start immediately.
  CampaignService(const DlxModel& m, ServiceConfig cfg);
  ~CampaignService();
  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  /// Submit a request. On success `done` fires exactly once - already
  /// (synchronously) when SubmitResult::cached, later from an executor
  /// thread otherwise. For rejections (ok=false: invalid request, queue
  /// full, draining) `done` never fires; the error is in the result.
  SubmitResult submit(const RequestSpec& spec, DoneFn done);

  /// Request cooperative cancellation of a flight. Affects every
  /// subscriber coalesced onto it (they asked for identical work). False
  /// when the id is unknown or already completed.
  bool cancel(std::uint64_t id);

  /// Stop admitting, run every already-admitted flight to completion, and
  /// join the executors. Idempotent; the destructor calls it.
  void drain();

  ServiceStats stats() const;

 private:
  struct Flight {
    std::uint64_t id = 0;  ///< primary id (first submitter's)
    RequestSpec spec;
    RequestPlan plan;
    CancelToken cancel;
    std::string journal_path;
    bool running = false;
    std::vector<std::pair<std::uint64_t, DoneFn>> subscribers;
  };

  void executor_loop();
  void run_flight(const std::shared_ptr<Flight>& fl);
  CampaignConfig flight_config(const Flight& fl) const;
  void execute_inproc(const std::shared_ptr<Flight>& fl, RequestOutcome* o);
  void execute_supervised(const std::shared_ptr<Flight>& fl,
                          RequestOutcome* o);
  WorkerJob make_worker_job(const std::shared_ptr<Flight>& fl);
  void gc_spool(std::size_t keep);

  const DlxModel& model_;
  ServiceConfig cfg_;
  ResultCache cache_;
  CrashBreaker breaker_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool draining_ = false;
  std::size_t running_ = 0;  ///< flights currently on an executor
  std::uint64_t next_id_ = 1;
  std::deque<std::shared_ptr<Flight>> queue_;
  std::map<std::string, std::shared_ptr<Flight>> inflight_by_key_;
  std::map<std::uint64_t, std::shared_ptr<Flight>> inflight_by_id_;
  /// Spool journals of completed flights, oldest first; GC'd beyond
  /// cfg_.spool_keep (and entirely at drain).
  std::deque<std::string> spool_done_;
  ServiceStats stats_;
  std::vector<std::thread> executors_;
};

}  // namespace hltg
