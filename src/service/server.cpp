#include "service/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "service/client.h"
#include "util/minijson.h"

namespace hltg {

namespace {

/// Full send with SIGPIPE suppressed: a client that hung up mid-reply
/// kills its connection, never the daemon.
bool send_line(int fd, const std::string& line) {
  std::string out = line;
  out += '\n';
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string error_event(const std::string& why, bool transient = false) {
  JsonWriter w;
  w.str("event", "error").str("error", why);
  // Retry hint for clients (tg_client --retries): transient rejections
  // (queue full, draining) may succeed on an idempotent resubmission;
  // terminal ones (invalid, poisoned) never will.
  if (transient) w.boolean("transient", true);
  return w.take();
}

std::string result_event(const RequestOutcome& o) {
  JsonWriter w;
  w.str("event", "result")
      .num("id", o.id)
      .str("key", o.key)
      .boolean("ok", o.ok)
      .boolean("cached", o.cached)
      .boolean("cancelled", o.cancelled)
      .num("total", o.total)
      .num("attempted", o.attempted)
      .num("detected", o.detected)
      .str("csv", o.csv);
  if (!o.table1.empty()) w.str("table1", o.table1);
  if (!o.error.empty()) w.str("error", o.error);
  if (o.poisoned) w.boolean("poisoned", true);
  if (o.transient) w.boolean("transient", true);
  return w.take();
}

/// Tail helper for progress streaming: emit every complete line appended
/// to `path` since `*offset`, skipping the header line. Returns false
/// only when the client is gone (a send failed) - the caller then drops
/// the subscription; an unreadable journal just means "nothing yet".
bool pump_progress(int fd, const std::string& path, std::size_t* offset,
                   std::size_t* lineno) {
  std::ifstream in(path);
  if (!in) return true;
  // A supervised worker restart reopens the journal truncating it: when
  // the file shrank below our offset, restart the tail from scratch.
  // Re-streamed rows are fine - progress is advisory, results are not.
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size >= 0 && static_cast<std::size_t>(size) < *offset) {
    *offset = 0;
    *lineno = 0;
  }
  in.seekg(static_cast<std::streamoff>(*offset));
  std::string line;
  while (std::getline(in, line)) {
    if (in.eof() && !in.good()) break;  // incomplete trailing line: wait
    *offset += line.size() + 1;
    ++*lineno;
    if (*lineno == 1) continue;  // journal header, not a row
    JsonWriter w;
    if (!send_line(fd,
                   w.str("event", "progress").str("line", line).take()))
      return false;
  }
  return true;
}

}  // namespace

ServiceServer::ServiceServer(CampaignService& service, ServerConfig cfg)
    : service_(service), cfg_(std::move(cfg)) {}

ServiceServer::~ServiceServer() { stop(); }

bool ServiceServer::start(std::string* why) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (cfg_.socket_path.size() >= sizeof addr.sun_path) {
    if (why) *why = "socket path too long: " + cfg_.socket_path;
    return false;
  }
  std::strncpy(addr.sun_path, cfg_.socket_path.c_str(),
               sizeof addr.sun_path - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (why) *why = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // A stale socket file from a crashed daemon would fail the bind; the
  // path is daemon-owned, so replacing it is the right recovery. But
  // FIRST probe it: if a live daemon answers a ping there, unlinking
  // would silently orphan it (clients still connected keep it; new
  // clients reach us; two daemons race one cache dir). Refuse instead.
  {
    ServiceClient probe;
    std::string ignored;
    if (probe.connect(cfg_.socket_path, &ignored) &&
        probe.send_line("{\"op\":\"ping\"}")) {
      std::string reply;
      if (probe.read_line_status(&reply, 1000) == ReadStatus::kOk) {
        if (why)
          *why = "refusing to start: a live daemon already answers on " +
                 cfg_.socket_path;
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
      }
    }
  }
  ::unlink(cfg_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    if (why)
      *why = "bind " + cfg_.socket_path + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    if (why) *why = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void ServiceServer::stop() {
  stopping_.store(true);
  shutdown_requested_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  // Run every admitted flight to completion before closing connections:
  // clients blocked on a result get it, then their connection threads
  // observe stopping_ and wind down.
  service_.drain();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    conns.swap(connections_);
  }
  for (std::thread& t : conns)
    if (t.joinable()) t.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(cfg_.socket_path.c_str());
  }
}

void ServiceServer::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 200);
    if (r <= 0) continue;  // timeout (recheck stopping_) or EINTR
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lk(conn_mu_);
    connections_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void ServiceServer::serve_connection(int fd) {
  // Bounded receive timeout so the thread re-checks stopping_ while the
  // client is idle.
  timeval tv{};
  tv.tv_usec = 200 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

  std::string buf;
  char chunk[4096];
  while (!stopping_.load()) {
    const std::size_t nl = buf.find('\n');
    if (nl == std::string::npos) {
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n == 0) break;  // client hung up
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
          continue;
        break;
      }
      buf.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    const std::string line = buf.substr(0, nl);
    buf.erase(0, nl + 1);
    if (line.empty()) continue;

    MiniJson j(line);
    std::string op;
    if (!j.ok() || !j.get_string("op", &op)) {
      if (!send_line(fd, error_event("malformed op line"))) break;
      continue;
    }

    if (op == "ping") {
      JsonWriter w;
      if (!send_line(fd, w.str("event", "pong").take())) break;
    } else if (op == "stats") {
      const ServiceStats s = service_.stats();
      JsonWriter w;
      w.str("event", "stats")
          .num("submitted", s.submitted)
          .num("rejected_invalid", s.rejected_invalid)
          .num("rejected_overload", s.rejected_overload)
          .num("completed", s.completed)
          .num("cancelled", s.cancelled)
          .num("coalesced", s.coalesced)
          .num("queued", s.queued)
          .num("running", s.running)
          .num("cache_hits", s.cache.hits)
          .num("cache_memory_hits", s.cache.memory_hits)
          .num("cache_disk_hits", s.cache.disk_hits)
          .num("cache_misses", s.cache.misses)
          .num("cache_insertions", s.cache.insertions)
          .num("cache_persist_failures", s.cache.persist_failures)
          .num("cache_quarantined", s.cache.quarantined)
          .num("cache_evictions", s.cache.evictions)
          .num("cache_disk_bytes", s.cache.disk_bytes)
          .num("cache_disk_entries", s.cache.disk_entries)
          .num("worker_crashes", s.worker_crashes)
          .num("worker_restarts", s.worker_restarts)
          .num("deadline_kills", s.deadline_kills)
          .num("rejected_poisoned", s.rejected_poisoned)
          .num("poisoned", s.poisoned)
          .num("spool_gc", s.spool_gc);
      if (!send_line(fd, w.take())) break;
    } else if (op == "cancel") {
      std::uint64_t id = 0;
      const bool ok = j.get_u64("id", &id) && service_.cancel(id);
      JsonWriter w;
      if (!send_line(fd,
                     w.str("event", "cancel").num("id", id).boolean("ok", ok)
                         .take()))
        break;
    } else if (op == "shutdown") {
      // The daemon's main thread owns the actual teardown (a connection
      // thread cannot join itself): raise the flag it polls. Flag before
      // reply, so a client that got the event observes it set.
      shutdown_requested_.store(true);
      JsonWriter w;
      send_line(fd, w.str("event", "shutdown").take());
    } else if (op == "submit") {
      const ParsedRequest parsed = parse_request(j);
      if (!parsed.ok) {
        if (!send_line(fd, error_event(parsed.error))) break;
        continue;
      }
      // Completion handoff: the executor (or submit itself, for cache
      // hits) fills `outcome` and flips `done`.
      auto state = std::make_shared<std::mutex>();
      auto cv = std::make_shared<std::condition_variable>();
      auto done = std::make_shared<bool>(false);
      auto outcome = std::make_shared<RequestOutcome>();
      const SubmitResult sub = service_.submit(
          parsed.spec, [state, cv, done, outcome](const RequestOutcome& o) {
            {
              std::lock_guard<std::mutex> lk(*state);
              *outcome = o;
              *done = true;
            }
            cv->notify_all();
          });
      if (!sub.ok) {
        if (!send_line(fd, error_event(sub.error, sub.transient))) break;
        continue;
      }
      {
        JsonWriter w;
        w.str("event", "ack")
            .num("id", sub.id)
            .str("key", sub.key)
            .boolean("coalesced", sub.coalesced);
        if (!send_line(fd, w.take())) break;
      }
      // Block this connection until the flight completes - results are
      // delivered even while the server is stopping (drain semantics) -
      // streaming journal rows meanwhile when the client subscribed. A
      // send failure while tailing means the client is gone (half-close):
      // drop the subscription but keep waiting for the outcome - the
      // flight belongs to every coalesced subscriber, and the executor
      // must never stall on one dead socket.
      bool tail = parsed.spec.subscribe && !sub.journal_path.empty();
      std::size_t tail_offset = 0, tail_lineno = 0;
      for (;;) {
        std::unique_lock<std::mutex> lk(*state);
        if (cv->wait_for(lk, std::chrono::milliseconds(100),
                         [&] { return *done; }))
          break;
        lk.unlock();
        if (tail &&
            !pump_progress(fd, sub.journal_path, &tail_offset, &tail_lineno))
          tail = false;
      }
      if (tail)
        pump_progress(fd, sub.journal_path, &tail_offset, &tail_lineno);
      if (!send_line(fd, result_event(*outcome))) break;
    } else {
      if (!send_line(fd, error_event("unknown op '" + op + "'"))) break;
    }
  }
  ::close(fd);
}

}  // namespace hltg
