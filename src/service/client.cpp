#include "service/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hltg {

ServiceClient::~ServiceClient() { close(); }

void ServiceClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

bool ServiceClient::connect(const std::string& socket_path, std::string* why) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    if (why) *why = "socket path too long: " + socket_path;
    return false;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (why) *why = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (why) *why = "connect " + socket_path + ": " + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

bool ServiceClient::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string out = line;
  out += '\n';
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool ServiceClient::read_line(std::string* line, int timeout_ms) {
  return read_line_status(line, timeout_ms) == ReadStatus::kOk;
}

ReadStatus ServiceClient::read_line_status(std::string* line, int timeout_ms) {
  if (fd_ < 0) return ReadStatus::kError;
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return ReadStatus::kOk;
    }
    if (timeout_ms > 0) {
      pollfd pfd{fd_, POLLIN, 0};
      const int r = ::poll(&pfd, 1, timeout_ms);
      if (r == 0) return ReadStatus::kTimeout;
      if (r < 0) {
        if (errno == EINTR) continue;
        return ReadStatus::kError;
      }
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) return ReadStatus::kEof;  // peer hung up
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kError;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace hltg
