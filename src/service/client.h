// Thin blocking client for the campaign service socket protocol
// (service/server.h documents the wire format). Used by the tg_client CLI
// and the service tests; deliberately line-level - callers parse events
// with MiniJson.
#pragma once

#include <string>

namespace hltg {

/// Why a read_line call returned without a line. The distinction matters
/// to retry logic: EOF (daemon went away mid-stream) and timeout are
/// transient - an idempotent resubmission may succeed - while a socket
/// error is reported as its own failure class.
enum class ReadStatus {
  kOk,       ///< *line filled
  kEof,      ///< orderly peer hang-up before a full line arrived
  kTimeout,  ///< timeout_ms elapsed with no full line
  kError,    ///< recv/poll failed (errno-level socket error)
};

class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient();
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Connect to the daemon's unix socket. False (with *why) on failure.
  bool connect(const std::string& socket_path, std::string* why);

  /// Send one protocol line (the trailing newline is added).
  bool send_line(const std::string& line);

  /// Block until one full event line arrives (or the peer hangs up /
  /// `timeout_ms` elapses, 0 = no timeout). False on EOF/timeout/error;
  /// read_line_status distinguishes which.
  bool read_line(std::string* line, int timeout_ms = 0);

  /// read_line with the failure mode reported: kOk fills *line; kEof /
  /// kTimeout / kError say why no line arrived. A failed or timed-out
  /// read leaves any partial line buffered for a later retry.
  ReadStatus read_line_status(std::string* line, int timeout_ms = 0);

  bool connected() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
  std::string buf_;
};

}  // namespace hltg
