// Unix-domain socket front end for CampaignService (docs/SERVICE.md has
// the wire protocol). Line-delimited JSON, one object per line:
//
//   client -> server (the "op" field selects):
//     {"op":"submit", ...request fields (service/request.h)...}
//     {"op":"cancel","id":N}
//     {"op":"stats"}
//     {"op":"ping"}
//     {"op":"shutdown"}            drain and stop serving
//
//   server -> client events:
//     {"event":"ack","id":N,"key":"<hex16>","coalesced":b}
//     {"event":"progress","id":N,"line":"<journal row JSON, escaped>"}
//     {"event":"result","id":N,"key":"...","ok":b,"cached":b,
//      "cancelled":b,"total":N,"attempted":N,"detected":N,
//      "csv":"<campaign_csv bytes, escaped>","table1":"...","error":"..."}
//     {"event":"stats",...service + cache counters...}
//     {"event":"error","error":"..."}   (rejections, malformed lines)
//     {"event":"pong"} / {"event":"shutdown"}
//
// One connection handles its ops sequentially; a submit blocks the
// connection until its result (streaming progress rows meanwhile when the
// request set "subscribe":true), so cancels are sent from a second
// connection using the id from the ack. Threading: one acceptor thread,
// one thread per connection, all joined by stop().
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"

namespace hltg {

struct ServerConfig {
  std::string socket_path;
};

class ServiceServer {
 public:
  ServiceServer(CampaignService& service, ServerConfig cfg);
  ~ServiceServer();
  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Bind + listen + start the acceptor. False (with *why) on bind
  /// failure. A stale socket file from a dead daemon is replaced.
  bool start(std::string* why);

  /// Stop accepting, drain the service, join every connection thread, and
  /// unlink the socket. Idempotent; the destructor calls it. NOT
  /// async-signal-safe - signal handlers set a flag and the main thread
  /// calls this (see examples/tg_server.cpp).
  void stop();

  /// Set by a client's {"op":"shutdown"}; the daemon's main loop polls it
  /// (together with its own signal flag) and then calls stop().
  bool shutdown_requested() const { return shutdown_requested_.load(); }

 private:
  void accept_loop();
  void serve_connection(int fd);

  CampaignService& service_;
  ServerConfig cfg_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
  std::atomic<bool> shutdown_requested_{false};
};

}  // namespace hltg
