// Campaign service requests (docs/SERVICE.md).
//
// A request names an error population (model + stages) and a generation
// configuration over the daemon's design. The fields split into two
// classes, and the split is the heart of the result cache:
//
//   semantic      change what the campaign computes: error model, stages,
//                 window/retry window, solver on/off, solver scope,
//                 per-error budget caps, fallback, dropping. They feed the
//                 content-addressed cache key.
//   non-semantic  change only how (or how chattily) it is computed: jobs
//                 (the engine's determinism contract makes results
//                 byte-identical for any worker count), lanes (batch
//                 widths are result-invariant), verbose, subscribe, tag.
//                 They are EXCLUDED from the key, so e.g. a --jobs 8
//                 submission hits the cache entry a --jobs 1 run filled.
//
// The key mixes tg_design_hash (the daemon's design), tg_config_hash (the
// generator configuration), campaign_fingerprint (the exact error
// population) and the campaign-level semantic fields tg_config_hash does
// not cover (scope, budgets, fallback, dropping). Two requests share a key
// iff an offline error_campaign run would produce identical result rows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/tg.h"
#include "errors/inject.h"

namespace hltg {

class MiniJson;

/// Wire-level request fields (defaults match error_campaign's).
struct RequestSpec {
  // -- semantic: part of the cache key ------------------------------------
  std::string model = "ssl";         ///< ssl | mse | boe | bse
  std::string stages = "EX,MEM,WB";  ///< subset of IF,ID,EX,MEM,WB
  unsigned window = 14;
  unsigned retry_window = 20;
  double deadline_ms = 0;  ///< per-error budget (0 = unlimited)
  std::uint64_t max_backtracks = 0;
  std::uint64_t max_decisions = 0;
  bool fallback = false;  ///< biased-random degradation generator
  unsigned fallback_tries = 64;
  bool solver = true;                 ///< deduction engine on/off
  std::string solver_scope = "error";  ///< error | campaign
  bool drop = false;                  ///< batched error dropping

  // -- non-semantic: excluded from the key --------------------------------
  unsigned jobs = 1;   ///< worker threads (results identical for any N)
  unsigned lanes = 0;  ///< batch width cap (0 = auto); result-invariant
  bool subscribe = false;  ///< stream per-error progress rows
  std::string tag;         ///< free-form client label (logging only)
};

struct ParsedRequest {
  bool ok = false;
  std::string error;
  RequestSpec spec;
};

/// Decode a submit line's request fields (all optional; defaults above).
/// Validation here is shape-level only; plan_request does the semantic
/// checks that need the design.
ParsedRequest parse_request(const MiniJson& j);

/// Serialize `spec` as the JSON fields of a submit line (client side).
/// Deterministic field order; defaults are emitted explicitly so a logged
/// request line is self-contained.
std::string request_fields_json(const RequestSpec& spec);

/// A validated request bound to the daemon's design: the concrete error
/// population, generator/campaign configuration, and the content-addressed
/// cache key. `error` non-empty means the request was rejected (unknown
/// model, empty stages, drop+jobs conflict, ...).
struct RequestPlan {
  std::string error;
  std::vector<DesignError> errors;
  TgConfig tgcfg;
  BudgetSpec budget;
  bool fallback = false;
  unsigned fallback_tries = 64;
  bool drop = false;
  unsigned jobs = 1;
  unsigned lanes = 0;
  std::uint64_t design_hash = 0;
  std::uint64_t config_hash = 0;  ///< tg_config_hash(tgcfg)
  std::string cache_key;          ///< 16-hex-digit content address

  bool ok() const { return error.empty(); }
};

/// Bind `spec` to `m`: enumerate the error population, build the
/// generator/campaign configuration, and derive the cache key.
RequestPlan plan_request(const DlxModel& m, const RequestSpec& spec);

}  // namespace hltg
