#include "service/cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "solver/store.h"
#include "util/failpoint.h"

namespace hltg {

namespace {

// Entry file layout (little-endian): magic, payload length, CRC32 of the
// payload, payload bytes. Fixed-size header keeps validation trivial; the
// CRC catches torn or bit-rotted payloads.
constexpr std::uint32_t kMagic = 0x53455248;  // "HRES" on disk (LE)

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

bool valid_key(const std::string& key) {
  // Keys are the hex content addresses plan_request derives; anything else
  // (path separators in particular) never touches the filesystem.
  if (key.empty() || key.size() > 64) return false;
  for (const char c : key)
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  return true;
}

}  // namespace

ResultCache::ResultCache(ResultCacheConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.memory_entries == 0) cfg_.memory_entries = 1;
}

std::string ResultCache::entry_path(const std::string& key) const {
  return cfg_.dir + "/" + key + ".res";
}

bool ResultCache::lookup(const std::string& key, std::string* payload) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    *payload = it->second->second;
    ++stats_.hits;
    ++stats_.memory_hits;
    return true;
  }
  if (!cfg_.dir.empty() && valid_key(key) &&
      load_from_disk_locked(key, payload)) {
    touch_locked(key, *payload);
    ++stats_.hits;
    ++stats_.disk_hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

bool ResultCache::insert(const std::string& key, const std::string& payload,
                         std::string* why) {
  std::lock_guard<std::mutex> lk(mu_);
  touch_locked(key, payload);
  ++stats_.insertions;
  if (cfg_.dir.empty()) return true;
  if (!valid_key(key)) {
    if (why) *why = "refusing to persist non-hex cache key '" + key + "'";
    ++stats_.persist_failures;
    return false;
  }
  std::string perr;
  if (!persist_locked(key, payload, &perr)) {
    ++stats_.persist_failures;
    if (why) *why = perr;
    return false;
  }
  return true;
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void ResultCache::touch_locked(const std::string& key,
                               const std::string& payload) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = payload;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, payload);
  index_[key] = lru_.begin();
  while (lru_.size() > cfg_.memory_entries) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

bool ResultCache::load_from_disk_locked(const std::string& key,
                                        std::string* payload) {
  const std::string path = entry_path(key);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;  // plain miss
  std::string bytes;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  const bool read_ok = !std::ferror(f);
  std::fclose(f);

  auto quarantine = [&] {
    // Never serve (or silently delete) a corrupt entry: set it aside under
    // a stable name for post-mortem and report a miss. The next insert of
    // this key writes a fresh entry.
    std::rename(path.c_str(), (path + ".quarantine").c_str());
    ++stats_.quarantined;
    return false;
  };

  if (!read_ok || bytes.size() < 12) return quarantine();
  const unsigned char* p = reinterpret_cast<const unsigned char*>(bytes.data());
  if (get_u32(p) != kMagic) return quarantine();
  const std::uint32_t len = get_u32(p + 4);
  const std::uint32_t crc = get_u32(p + 8);
  if (bytes.size() != 12 + static_cast<std::size_t>(len)) return quarantine();
  if (ded_crc32(bytes.data() + 12, len) != crc) return quarantine();
  payload->assign(bytes, 12, len);
  return true;
}

bool ResultCache::persist_locked(const std::string& key,
                                 const std::string& payload,
                                 std::string* why) {
  // Atomic publish, same discipline as save_ded_store: a reader (or a
  // daemon restarted after a crash) sees either the complete old entry,
  // the complete new one, or nothing - never a torn file under the final
  // name. The failpoint sites make each step independently killable in
  // the crash-recovery tests.
  const std::string path = entry_path(key);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    if (why) *why = "cannot create '" + tmp + "': " + std::strerror(errno);
    return false;
  }
  auto fail = [&](const std::string& what) {
    const int err = errno;
    if (why) *why = what + ": " + std::strerror(err);
    std::fclose(f);
    std::remove(tmp.c_str());
    return false;
  };
  std::string framed;
  framed.reserve(12 + payload.size());
  put_u32(&framed, kMagic);
  put_u32(&framed, static_cast<std::uint32_t>(payload.size()));
  put_u32(&framed, ded_crc32(payload.data(), payload.size()));
  framed += payload;
  if (failpoint::checked_fwrite(framed.data(), framed.size(), f,
                                "cache.write") != framed.size())
    return fail("short write to '" + tmp + "'");
  if (std::fflush(f) != 0) return fail("flush of '" + tmp + "' failed");
  if (failpoint::checked_fsync(fileno(f), "cache.fsync") != 0)
    return fail("fsync of '" + tmp + "' failed");
  std::fclose(f);

  if (failpoint::checked_rename(tmp.c_str(), path.c_str(), "cache.rename") !=
      0) {
    const int err = errno;
    if (why)
      *why = "rename '" + tmp + "' -> '" + path +
             "' failed: " + std::strerror(err);
    std::remove(tmp.c_str());
    return false;
  }
  const int dfd = ::open(cfg_.dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

}  // namespace hltg
