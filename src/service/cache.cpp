#include "service/cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "solver/store.h"
#include "util/failpoint.h"

namespace hltg {

namespace {

// Entry file layout (little-endian): magic, payload length, CRC32 of the
// payload, payload bytes. Fixed-size header keeps validation trivial; the
// CRC catches torn or bit-rotted payloads.
constexpr std::uint32_t kMagic = 0x53455248;  // "HRES" on disk (LE)
constexpr std::size_t kEntryHeaderBytes = 12;
constexpr const char* kIndexName = "cache.index";

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

bool valid_key(const std::string& key) {
  // Keys are the hex content addresses plan_request derives; anything else
  // (path separators in particular) never touches the filesystem.
  if (key.empty() || key.size() > 64) return false;
  for (const char c : key)
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  return true;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

ResultCache::ResultCache(ResultCacheConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.memory_entries == 0) cfg_.memory_entries = 1;
  if (!cfg_.dir.empty()) {
    std::lock_guard<std::mutex> lk(mu_);
    scan_disk_locked();
    // A lowered budget (or a crash that outran the index) is brought back
    // under the bound immediately, not at the next insert.
    if (cfg_.max_disk_bytes != 0 && disk_total_ > cfg_.max_disk_bytes) {
      evict_overflow_locked("");
      save_index_locked();
    }
  }
}

std::string ResultCache::entry_path(const std::string& key) const {
  return cfg_.dir + "/" + key + ".res";
}

bool ResultCache::lookup(const std::string& key, std::string* payload) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    *payload = it->second->second;
    ++stats_.hits;
    ++stats_.memory_hits;
    return true;
  }
  if (!cfg_.dir.empty() && valid_key(key) &&
      load_from_disk_locked(key, payload)) {
    touch_locked(key, *payload);
    promote_disk_locked(key);
    ++stats_.hits;
    ++stats_.disk_hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

bool ResultCache::insert(const std::string& key, const std::string& payload,
                         std::string* why) {
  std::lock_guard<std::mutex> lk(mu_);
  touch_locked(key, payload);
  ++stats_.insertions;
  if (cfg_.dir.empty()) return true;
  if (!valid_key(key)) {
    if (why) *why = "refusing to persist non-hex cache key '" + key + "'";
    ++stats_.persist_failures;
    return false;
  }
  std::string perr;
  if (!persist_locked(key, payload, &perr)) {
    ++stats_.persist_failures;
    if (why) *why = perr;
    return false;
  }
  note_disk_entry_locked(key, kEntryHeaderBytes + payload.size());
  evict_overflow_locked(key);
  save_index_locked();
  return true;
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  ResultCacheStats s = stats_;
  s.disk_bytes = disk_total_;
  s.disk_entries = disk_index_.size();
  return s;
}

void ResultCache::touch_locked(const std::string& key,
                               const std::string& payload) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = payload;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, payload);
  index_[key] = lru_.begin();
  while (lru_.size() > cfg_.memory_entries) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void ResultCache::scan_disk_locked() {
  // Rebuild the disk tier's accounting from the directory itself; the
  // index sidecar only contributes LRU *order*. Entries the index missed
  // (crash between entry publish and index rewrite) are adopted; index
  // lines whose file is gone (crash mid-eviction) are dropped. Stray .tmp
  // files are debris from torn writes: delete them.
  std::vector<std::pair<std::string, std::size_t>> on_disk;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(cfg_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (ends_with(name, ".tmp")) {
      std::remove(entry.path().c_str());
      continue;
    }
    if (!ends_with(name, ".res")) continue;
    const std::string key = name.substr(0, name.size() - 4);
    if (!valid_key(key)) continue;
    std::error_code sec;
    const std::uintmax_t sz = std::filesystem::file_size(entry.path(), sec);
    if (sec) continue;
    on_disk.emplace_back(key, static_cast<std::size_t>(sz));
  }
  std::sort(on_disk.begin(), on_disk.end());  // deterministic adoption order

  std::vector<std::string> order;
  {
    std::ifstream in(cfg_.dir + "/" + kIndexName);
    std::string line;
    while (std::getline(in, line))
      if (valid_key(line)) order.push_back(line);
  }
  auto size_of = [&](const std::string& key) -> const std::size_t* {
    for (const auto& [k, sz] : on_disk)
      if (k == key) return &sz;
    return nullptr;
  };
  for (const std::string& key : order) {
    if (disk_index_.count(key)) continue;
    if (const std::size_t* sz = size_of(key))
      note_disk_entry_locked(key, *sz);
  }
  for (const auto& [key, sz] : on_disk)
    if (!disk_index_.count(key)) note_disk_entry_locked(key, sz);
}

void ResultCache::note_disk_entry_locked(const std::string& key,
                                         std::size_t bytes) {
  const auto it = disk_index_.find(key);
  if (it != disk_index_.end()) {
    disk_total_ -= it->second.bytes;
    disk_total_ += bytes;
    it->second.bytes = bytes;
    disk_lru_.splice(disk_lru_.end(), disk_lru_, it->second.pos);
    return;
  }
  disk_lru_.push_back(key);
  disk_index_[key] = DiskEntry{std::prev(disk_lru_.end()), bytes};
  disk_total_ += bytes;
}

void ResultCache::forget_disk_entry_locked(const std::string& key) {
  const auto it = disk_index_.find(key);
  if (it == disk_index_.end()) return;
  disk_total_ -= it->second.bytes;
  disk_lru_.erase(it->second.pos);
  disk_index_.erase(it);
}

void ResultCache::promote_disk_locked(const std::string& key) {
  const auto it = disk_index_.find(key);
  if (it != disk_index_.end())
    disk_lru_.splice(disk_lru_.end(), disk_lru_, it->second.pos);
}

void ResultCache::evict_overflow_locked(const std::string& keep) {
  if (cfg_.max_disk_bytes == 0) return;
  while (disk_total_ > cfg_.max_disk_bytes && !disk_lru_.empty()) {
    // Oldest first, sparing the just-inserted entry until it is the only
    // one left (an entry bigger than the whole budget is evicted too: the
    // bound is a bound).
    auto it = disk_lru_.begin();
    if (*it == keep) {
      ++it;
      if (it == disk_lru_.end()) it = disk_lru_.begin();
    }
    const std::string victim = *it;
    if (failpoint::checked_remove(entry_path(victim).c_str(), "cache.evict") !=
            0 &&
        errno != ENOENT)
      break;  // eviction itself failed (EIO, ...): keep serving, stay over
    forget_disk_entry_locked(victim);
    ++stats_.evictions;
  }
}

void ResultCache::save_index_locked() {
  // Advisory LRU-order sidecar, atomically replaced. Failures are
  // swallowed: a missing or stale index only costs approximate eviction
  // order after the next restart, never correctness - scan_disk_locked
  // reconciles against the directory.
  const std::string path = cfg_.dir + "/" + kIndexName;
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return;
  std::string body;
  for (const std::string& key : disk_lru_) {
    body += key;
    body += '\n';
  }
  bool ok = failpoint::checked_fwrite(body.data(), body.size(), f,
                                      "cache.write") == body.size();
  ok = ok && std::fflush(f) == 0;
  ok = ok && failpoint::checked_fsync(fileno(f), "cache.fsync") == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return;
  }
  if (failpoint::checked_rename(tmp.c_str(), path.c_str(), "cache.rename") !=
      0)
    std::remove(tmp.c_str());
}

bool ResultCache::load_from_disk_locked(const std::string& key,
                                        std::string* payload) {
  const std::string path = entry_path(key);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;  // plain miss
  std::string bytes;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  const bool read_ok = !std::ferror(f);
  std::fclose(f);

  auto quarantine = [&] {
    // Never serve (or silently delete) a corrupt entry: set it aside under
    // a stable name for post-mortem and report a miss. The next insert of
    // this key writes a fresh entry. Quarantined files leave the budget's
    // accounting (they are the operator's to reap).
    std::rename(path.c_str(), (path + ".quarantine").c_str());
    forget_disk_entry_locked(key);
    ++stats_.quarantined;
    return false;
  };

  if (!read_ok || bytes.size() < kEntryHeaderBytes) return quarantine();
  const unsigned char* p = reinterpret_cast<const unsigned char*>(bytes.data());
  if (get_u32(p) != kMagic) return quarantine();
  const std::uint32_t len = get_u32(p + 4);
  const std::uint32_t crc = get_u32(p + 8);
  if (bytes.size() != kEntryHeaderBytes + static_cast<std::size_t>(len))
    return quarantine();
  if (ded_crc32(bytes.data() + kEntryHeaderBytes, len) != crc)
    return quarantine();
  payload->assign(bytes, kEntryHeaderBytes, len);
  return true;
}

bool ResultCache::persist_locked(const std::string& key,
                                 const std::string& payload,
                                 std::string* why) {
  // Atomic publish, same discipline as save_ded_store: a reader (or a
  // daemon restarted after a crash) sees either the complete old entry,
  // the complete new one, or nothing - never a torn file under the final
  // name. The failpoint sites make each step independently killable in
  // the crash-recovery tests.
  const std::string path = entry_path(key);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    if (why) *why = "cannot create '" + tmp + "': " + std::strerror(errno);
    return false;
  }
  auto fail = [&](const std::string& what) {
    const int err = errno;
    if (why) *why = what + ": " + std::strerror(err);
    std::fclose(f);
    std::remove(tmp.c_str());
    return false;
  };
  std::string framed;
  framed.reserve(kEntryHeaderBytes + payload.size());
  put_u32(&framed, kMagic);
  put_u32(&framed, static_cast<std::uint32_t>(payload.size()));
  put_u32(&framed, ded_crc32(payload.data(), payload.size()));
  framed += payload;
  if (failpoint::checked_fwrite(framed.data(), framed.size(), f,
                                "cache.write") != framed.size())
    return fail("short write to '" + tmp + "'");
  if (std::fflush(f) != 0) return fail("flush of '" + tmp + "' failed");
  if (failpoint::checked_fsync(fileno(f), "cache.fsync") != 0)
    return fail("fsync of '" + tmp + "' failed");
  std::fclose(f);

  if (failpoint::checked_rename(tmp.c_str(), path.c_str(), "cache.rename") !=
      0) {
    const int err = errno;
    if (why)
      *why = "rename '" + tmp + "' -> '" + path +
             "' failed: " + std::strerror(err);
    std::remove(tmp.c_str());
    return false;
  }
  const int dfd = ::open(cfg_.dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

}  // namespace hltg
