// Content-addressed result cache for the campaign service
// (docs/SERVICE.md): completed campaign payloads keyed on the request's
// content address (service/request.h), so an identical request is answered
// with the identical bytes without running anything.
//
// Two tiers. A bounded in-memory LRU serves the hot set; an optional
// on-disk store (one file per key) persists every insertion across daemon
// restarts with the same atomic discipline as the deduction store
// (src/solver/store.cpp): write <key>.tmp, fsync, rename, fsync the
// directory - through the failpoint sites "cache.write" / "cache.fsync" /
// "cache.rename", so crash-safety is provable under --failpoints.
//
// The disk tier is bounded too (max_disk_bytes, the daemon's
// --cache-max-bytes): every entry's size is accounted, and inserting past
// the budget evicts least-recently-used entries (failpoint site
// "cache.evict") until the store fits. LRU order is persisted in an
// atomic index sidecar (`cache.index`, rewritten tmp+rename on every
// mutation); the sidecar is advisory - a restart reconciles it against
// the directory, adopting entries the index missed and dropping entries
// the index lists but the disk lost, so a crash anywhere in the eviction
// sequence leaves old entries intact or cleanly absent, never corrupt.
//
// Corruption policy is quarantine-or-skip, never a wrong answer: a disk
// entry whose magic, length or CRC32 does not check out is renamed to
// <key>.res.quarantine and reported as a miss; the campaign simply runs
// again and overwrites it.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace hltg {

struct ResultCacheConfig {
  /// On-disk store directory; empty disables persistence (memory only).
  std::string dir;
  /// In-memory LRU capacity in entries (independent of the disk bound).
  std::size_t memory_entries = 64;
  /// Disk-tier budget in bytes (entry files incl. their 12-byte header);
  /// 0 = unbounded. Enforced by LRU eviction on insert and at startup.
  std::size_t max_disk_bytes = 0;
};

struct ResultCacheStats {
  std::uint64_t hits = 0;         ///< lookups answered (memory or disk)
  std::uint64_t memory_hits = 0;  ///< ... of which from the LRU
  std::uint64_t disk_hits = 0;    ///< ... of which faulted in from disk
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t persist_failures = 0;  ///< disk writes that failed
  std::uint64_t quarantined = 0;       ///< corrupt disk entries set aside
  std::uint64_t evictions = 0;         ///< entries removed by the budget
  std::size_t disk_bytes = 0;          ///< snapshot: disk tier footprint
  std::size_t disk_entries = 0;        ///< snapshot: disk tier entry count
};

class ResultCache {
 public:
  explicit ResultCache(ResultCacheConfig cfg);

  /// Look `key` up (memory first, then disk). On a disk hit the entry is
  /// promoted into the LRU (and to disk-MRU; that promotion is volatile -
  /// the index sidecar only persists mutation-time order). Returns true
  /// and fills *payload on a hit.
  bool lookup(const std::string& key, std::string* payload);

  /// Insert (or overwrite) an entry. The memory tier always takes it; with
  /// a disk tier configured the entry is also persisted atomically, the
  /// budget enforced (evicting LRU entries), and a persistence failure
  /// (ENOSPC, injected fault, ...) degrades to memory-only - the
  /// insertion itself still succeeds. Returns false and sets *why only
  /// when persistence was requested and failed.
  bool insert(const std::string& key, const std::string& payload,
              std::string* why = nullptr);

  ResultCacheStats stats() const;

 private:
  void touch_locked(const std::string& key, const std::string& payload);
  bool load_from_disk_locked(const std::string& key, std::string* payload);
  bool persist_locked(const std::string& key, const std::string& payload,
                      std::string* why);
  void scan_disk_locked();
  void note_disk_entry_locked(const std::string& key, std::size_t bytes);
  void forget_disk_entry_locked(const std::string& key);
  void promote_disk_locked(const std::string& key);
  void evict_overflow_locked(const std::string& keep);
  void save_index_locked();
  std::string entry_path(const std::string& key) const;

  ResultCacheConfig cfg_;
  mutable std::mutex mu_;
  /// Memory LRU: most recent at front; map values point into the list.
  std::list<std::pair<std::string, std::string>> lru_;
  std::unordered_map<
      std::string, std::list<std::pair<std::string, std::string>>::iterator>
      index_;
  /// Disk tier accounting: LRU order (least recent at front) and sizes.
  std::list<std::string> disk_lru_;
  struct DiskEntry {
    std::list<std::string>::iterator pos;
    std::size_t bytes = 0;
  };
  std::unordered_map<std::string, DiskEntry> disk_index_;
  std::size_t disk_total_ = 0;
  ResultCacheStats stats_;
};

}  // namespace hltg
