#include "service/request.h"

#include <cstdio>
#include <cstring>

#include "errors/boe.h"
#include "errors/bse.h"
#include "errors/bus_ssl.h"
#include "errors/journal.h"
#include "errors/mse.h"
#include "util/minijson.h"

namespace hltg {

namespace {

std::vector<Stage> parse_stages(const std::string& s) {
  std::vector<Stage> out;
  if (s.find("IF") != std::string::npos) out.push_back(Stage::kIF);
  if (s.find("ID") != std::string::npos) out.push_back(Stage::kID);
  if (s.find("EX") != std::string::npos) out.push_back(Stage::kEX);
  if (s.find("MEM") != std::string::npos) out.push_back(Stage::kMEM);
  if (s.find("WB") != std::string::npos) out.push_back(Stage::kWB);
  return out;
}

struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFu;
      h *= 1099511628211ull;
    }
  }
};

std::string hex16(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

ParsedRequest parse_request(const MiniJson& j) {
  ParsedRequest out;
  if (!j.ok()) {
    out.error = "malformed request line";
    return out;
  }
  RequestSpec& s = out.spec;
  j.get_string("model", &s.model);
  j.get_string("stages", &s.stages);
  std::uint64_t u = 0;
  if (j.get_u64("window", &u)) s.window = static_cast<unsigned>(u);
  if (j.get_u64("retry_window", &u)) s.retry_window = static_cast<unsigned>(u);
  j.get_double("deadline_ms", &s.deadline_ms);
  j.get_u64("max_backtracks", &s.max_backtracks);
  j.get_u64("max_decisions", &s.max_decisions);
  j.get_bool("fallback", &s.fallback);
  if (j.get_u64("fallback_tries", &u)) s.fallback_tries =
      static_cast<unsigned>(u);
  j.get_bool("solver", &s.solver);
  j.get_string("solver_scope", &s.solver_scope);
  j.get_bool("drop", &s.drop);
  if (j.get_u64("jobs", &u)) s.jobs = static_cast<unsigned>(u);
  if (j.get_u64("lanes", &u)) s.lanes = static_cast<unsigned>(u);
  j.get_bool("subscribe", &s.subscribe);
  j.get_string("tag", &s.tag);
  out.ok = true;
  return out;
}

std::string request_fields_json(const RequestSpec& s) {
  JsonWriter w;
  w.str("model", s.model)
      .str("stages", s.stages)
      .num("window", s.window)
      .num("retry_window", s.retry_window);
  char dbuf[64];
  std::snprintf(dbuf, sizeof dbuf, "%.17g", s.deadline_ms);
  w.raw("deadline_ms", dbuf)
      .num("max_backtracks", s.max_backtracks)
      .num("max_decisions", s.max_decisions)
      .boolean("fallback", s.fallback)
      .num("fallback_tries", s.fallback_tries)
      .boolean("solver", s.solver)
      .str("solver_scope", s.solver_scope)
      .boolean("drop", s.drop)
      .num("jobs", s.jobs)
      .num("lanes", s.lanes)
      .boolean("subscribe", s.subscribe);
  if (!s.tag.empty()) w.str("tag", s.tag);
  std::string line = w.take();
  // Strip the braces: callers splice these fields into a larger object.
  return line.substr(1, line.size() - 2);
}

RequestPlan plan_request(const DlxModel& m, const RequestSpec& spec) {
  RequestPlan plan;

  const std::vector<Stage> stages = parse_stages(spec.stages);
  if (stages.empty()) {
    plan.error = "no valid stages in '" + spec.stages + "'";
    return plan;
  }
  if (spec.model == "ssl") {
    BusSslConfig cfg;
    cfg.stages = stages;
    plan.errors = wrap(enumerate_bus_ssl(m.dp, cfg));
  } else if (spec.model == "mse") {
    plan.errors = wrap(enumerate_mse(m.dp, stages));
  } else if (spec.model == "boe") {
    plan.errors = wrap(enumerate_boe(m.dp, stages));
  } else if (spec.model == "bse") {
    BseConfig cfg;
    cfg.stages = stages;
    plan.errors = wrap(enumerate_bse(m.dp, cfg));
  } else {
    plan.error = "unknown error model '" + spec.model + "'";
    return plan;
  }
  if (plan.errors.empty()) {
    plan.error = "error population is empty for model '" + spec.model +
                 "' stages '" + spec.stages + "'";
    return plan;
  }
  if (spec.solver_scope != "error" && spec.solver_scope != "campaign") {
    plan.error = "solver_scope takes 'error' or 'campaign', not '" +
                 spec.solver_scope + "'";
    return plan;
  }
  if (spec.drop && spec.jobs > 1) {
    // Same engine-level exclusion the CLI enforces: each drop pass depends
    // on the tests kept so far, so dropping is inherently sequential.
    plan.error = "drop and jobs > 1 are mutually exclusive";
    return plan;
  }

  plan.tgcfg.window = spec.window;
  plan.tgcfg.trace.window = spec.window;
  plan.tgcfg.retry_window = spec.retry_window;
  plan.tgcfg.solver.enable = spec.solver;
  plan.tgcfg.solver.scope = spec.solver_scope == "campaign"
                                ? SolverScope::kCampaign
                                : SolverScope::kError;
  plan.budget.deadline_seconds = spec.deadline_ms / 1000.0;
  if (spec.max_backtracks) plan.budget.max_backtracks = spec.max_backtracks;
  if (spec.max_decisions) plan.budget.max_decisions = spec.max_decisions;
  plan.fallback = spec.fallback;
  plan.fallback_tries = spec.fallback_tries;
  plan.drop = spec.drop;
  plan.jobs = spec.jobs < 1 ? 1 : spec.jobs;
  plan.lanes = spec.lanes;

  plan.design_hash = tg_design_hash(m);
  plan.config_hash = tg_config_hash(plan.tgcfg);

  // The content address. tg_config_hash covers the generator-level
  // semantics (window, solver toggles, search caps); everything campaign-
  // level that changes result rows is mixed in here - including
  // SolverScope, which tg_config_hash deliberately omits (scope is
  // outcome-neutral but changes the effort counters the CSV reports).
  Fnv f;
  f.mix(plan.design_hash);
  f.mix(plan.config_hash);
  f.mix(campaign_fingerprint(m.dp, plan.errors));
  f.mix(plan.tgcfg.solver.scope == SolverScope::kCampaign ? 1u : 0u);
  f.mix(plan.drop ? 1u : 0u);
  std::uint64_t deadline_bits = 0;
  static_assert(sizeof deadline_bits == sizeof spec.deadline_ms);
  std::memcpy(&deadline_bits, &spec.deadline_ms, sizeof deadline_bits);
  f.mix(deadline_bits);
  f.mix(spec.max_backtracks);
  f.mix(spec.max_decisions);
  f.mix(spec.fallback ? 1u : 0u);
  f.mix(spec.fallback ? spec.fallback_tries : 0u);
  plan.cache_key = hex16(f.h);
  return plan;
}

}  // namespace hltg
