#include "service/supervisor.h"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "solver/store.h"
#include "util/failpoint.h"
#include "util/minijson.h"

namespace hltg {

namespace {

// Pipe record framing: marker | kind | length | crc32 | payload, the same
// self-delimiting shape as the deduction store's records (solver/store.h).
constexpr std::uint32_t kPipeMarker = 0x43455257;  // "WREC" on the wire (LE)
constexpr std::size_t kPipeHeaderBytes = 16;

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

/// Parse every complete, CRC-valid record out of `buf`. A framing or CRC
/// mismatch abandons the rest of the buffer: a pipe delivers bytes in
/// order, so damage means the worker died mid-write and nothing after the
/// tear is trustworthy.
void parse_records(const std::string& buf, WorkerExit* out) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(buf.data());
  std::size_t pos = 0;
  while (buf.size() - pos >= kPipeHeaderBytes) {
    const std::uint32_t marker = get_u32(p + pos);
    const std::uint32_t kind = get_u32(p + pos + 4);
    const std::uint32_t len = get_u32(p + pos + 8);
    const std::uint32_t crc = get_u32(p + pos + 12);
    if (marker != kPipeMarker) return;
    if (buf.size() - pos - kPipeHeaderBytes < len) return;  // torn tail
    const char* payload = buf.data() + pos + kPipeHeaderBytes;
    if (ded_crc32(payload, len) != crc) return;
    if (kind == kWorkerRecSummary)
      out->summary_json.assign(payload, len);
    else if (kind == kWorkerRecCsv)
      out->csv.assign(payload, len);
    else if (kind == kWorkerRecTable1)
      out->table1.assign(payload, len);
    // Unknown kinds are skipped so the wire format can grow.
    pos += kPipeHeaderBytes + len;
  }
}

bool valid_bundle_key(const std::string& key) {
  if (key.empty() || key.size() > 64) return false;
  for (const char c : key)
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  return true;
}

std::string poison_message(unsigned crashes, const std::string& what) {
  return "poisoned: request crashed " + std::to_string(crashes) +
         " campaign workers (last: " + what +
         "); quarantined, will not be retried";
}

}  // namespace

std::string WorkerExit::describe() const {
  if (!ran) return "fork failed";
  if (term_signal != 0) {
    const char* name = strsignal(term_signal);
    return "signal " + std::to_string(term_signal) +
           (name ? std::string(" (") + name + ")" : "");
  }
  return "exit " + std::to_string(exit_code);
}

bool write_worker_record(int fd, std::uint32_t kind,
                         const std::string& payload) {
  std::string framed;
  framed.reserve(kPipeHeaderBytes + payload.size());
  put_u32(&framed, kPipeMarker);
  put_u32(&framed, kind);
  put_u32(&framed, static_cast<std::uint32_t>(payload.size()));
  put_u32(&framed, ded_crc32(payload.data(), payload.size()));
  framed += payload;
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::write(fd, framed.data() + off, framed.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

WorkerExit run_worker(const WorkerJob& job, const SupervisorConfig& cfg,
                      const std::function<bool()>& cancel_requested) {
  WorkerExit out;
  int pfd[2];
  if (::pipe(pfd) != 0) return out;

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pfd[0]);
    ::close(pfd[1]);
    return out;
  }
  if (pid == 0) {
    // === worker process ===
    ::close(pfd[0]);
    // The daemon's handlers (SIGTERM drain flag, ignored SIGPIPE) must
    // not leak into the worker; the job installs its own cooperative
    // SIGTERM -> cancel handler.
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    int code = 1;
    try {
      code = job(pfd[1]);
    } catch (...) {
      code = 1;  // an escaping exception is a crash, counted as such
    }
    ::close(pfd[1]);
    _exit(code);
  }

  // === supervisor side ===
  ::close(pfd[1]);
  using Clock = std::chrono::steady_clock;
  const Clock::time_point started = Clock::now();
  Clock::time_point term_at{};
  bool term_sent = false, kill_sent = false, reaped = false, eof = false;
  int status = 0;
  std::string buf;

  while (!(reaped && eof)) {
    if (!eof) {
      pollfd p{pfd[0], POLLIN, 0};
      if (::poll(&p, 1, 20) > 0) {
        for (;;) {
          char chunk[4096];
          const ssize_t n = ::read(pfd[0], chunk, sizeof chunk);
          if (n > 0) {
            buf.append(chunk, static_cast<std::size_t>(n));
            // Keep reading only while poll says more is ready; a full
            // chunk is the cheap heuristic.
            if (static_cast<std::size_t>(n) == sizeof chunk) continue;
          } else if (n == 0) {
            eof = true;
          }
          // n < 0: EINTR/EAGAIN just retry on the next tick.
          break;
        }
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (!reaped && ::waitpid(pid, &status, WNOHANG) == pid) reaped = true;
    if (reaped) {
      if (!eof) continue;  // drain whatever the pipe still buffers
      break;
    }

    const Clock::time_point now = Clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - started).count();
    const bool over_deadline =
        cfg.deadline_seconds > 0 && elapsed > cfg.deadline_seconds;
    if (over_deadline) out.timed_out = true;
    const bool want_stop =
        over_deadline || (cancel_requested && cancel_requested());
    if (want_stop && !term_sent) {
      ::kill(pid, SIGTERM);  // cooperative: the worker's cancel path
      term_sent = true;
      term_at = now;
    }
    if (term_sent && !kill_sent &&
        std::chrono::duration<double>(now - term_at).count() >
            cfg.term_grace_seconds) {
      ::kill(pid, SIGKILL);  // escalation: the worker ignored SIGTERM
      kill_sent = true;
    }
  }
  ::close(pfd[0]);

  out.ran = true;
  if (WIFEXITED(status))
    out.exit_code = WEXITSTATUS(status);
  else if (WIFSIGNALED(status))
    out.term_signal = WTERMSIG(status);
  parse_records(buf, &out);
  // Only a clean exit with a complete summary is a result; a worker that
  // wrote records and then died is a crash - safe, because reruns are
  // idempotent under the content-addressed cache key.
  out.result_ok = out.exit_code == 0 && !out.summary_json.empty();
  return out;
}

double backoff_delay_ms(const SupervisorConfig& cfg, unsigned attempt,
                        std::uint64_t salt) {
  if (attempt < 2) return 0;
  double nominal = cfg.backoff_base_ms;
  for (unsigned i = 2; i < attempt && nominal < cfg.backoff_max_ms; ++i)
    nominal *= 2;
  if (nominal > cfg.backoff_max_ms) nominal = cfg.backoff_max_ms;
  // Deterministic jitter in [0.5, 1.5): splitmix over seed/salt/attempt,
  // so concurrent crashed flights do not restart in lockstep.
  std::uint64_t x = cfg.backoff_seed ^ (salt * 0x9E3779B97F4A7C15ull) ^
                    (std::uint64_t{attempt} << 32);
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  const double jitter =
      0.5 + static_cast<double>(x % 1000000ull) / 1000000.0;
  return nominal * jitter;
}

CrashBreaker::CrashBreaker(unsigned max_crashes, std::string quarantine_dir)
    : max_crashes_(max_crashes == 0 ? 1 : max_crashes),
      dir_(std::move(quarantine_dir)) {
  if (dir_.empty()) return;
  // Reload quarantine bundles: poison survives daemon restarts until an
  // operator deletes the bundle file.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("poisoned_", 0) != 0 ||
        name.size() <= 14 /* "poisoned_" + ".json" */ ||
        name.compare(name.size() - 5, 5, ".json") != 0)
      continue;
    std::ifstream in(entry.path());
    std::string line;
    if (!std::getline(in, line)) continue;
    const MiniJson j(line);
    std::string key, what;
    std::uint64_t crashes = 0;
    if (!j.ok() || !j.get_string("key", &key) || !valid_bundle_key(key))
      continue;
    j.get_string("last", &what);
    j.get_u64("crashes", &crashes);
    poisoned_[key] =
        poison_message(static_cast<unsigned>(crashes), what) +
        " (reloaded from " + name + ")";
  }
}

unsigned CrashBreaker::record_crash(const std::string& key,
                                    const std::string& what,
                                    const std::string& request_json) {
  std::lock_guard<std::mutex> lk(mu_);
  const unsigned n = ++crashes_[key];
  if (n >= max_crashes_ && poisoned_.find(key) == poisoned_.end())
    poison_locked(key, n, what, request_json);
  return n;
}

bool CrashBreaker::poisoned(const std::string& key, std::string* why) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = poisoned_.find(key);
  if (it == poisoned_.end()) return false;
  if (why) *why = it->second;
  return true;
}

std::size_t CrashBreaker::poisoned_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return poisoned_.size();
}

void CrashBreaker::poison_locked(const std::string& key, unsigned crashes,
                                 const std::string& what,
                                 const std::string& request_json) {
  poisoned_[key] = poison_message(crashes, what);
  if (dir_.empty() || !valid_bundle_key(key)) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // Bundle writes are best-effort (the in-memory quarantine already
  // protects this process); atomic tmp+rename so a restart never loads a
  // torn bundle.
  const std::string path = dir_ + "/poisoned_" + key + ".json";
  const std::string tmp = path + ".tmp";
  {
    JsonWriter w;
    w.str("key", key)
        .num("crashes", crashes)
        .str("last", what)
        .str("request", request_json);
    std::ofstream out(tmp, std::ios::trunc);
    out << w.take() << "\n";
    if (!out.good()) {
      std::remove(tmp.c_str());
      return;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) std::remove(tmp.c_str());
}

}  // namespace hltg
