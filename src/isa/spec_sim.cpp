#include "isa/spec_sim.h"

#include <sstream>

#include "isa/encode.h"
#include "util/word.h"

namespace hltg {

std::string ArchTrace::diff(const ArchTrace& other) const {
  std::ostringstream os;
  if (writes.size() != other.writes.size())
    os << "store count " << writes.size() << " vs " << other.writes.size()
       << "\n";
  const std::size_t n = std::min(writes.size(), other.writes.size());
  for (std::size_t i = 0; i < n; ++i)
    if (!(writes[i] == other.writes[i]))
      os << "store[" << i << "] (" << to_hex(writes[i].addr, 32) << ","
         << to_hex(writes[i].data, 32) << ",m" << writes[i].bemask << ") vs ("
         << to_hex(other.writes[i].addr, 32) << ","
         << to_hex(other.writes[i].data, 32) << ",m" << other.writes[i].bemask
         << ")\n";
  for (unsigned r = 0; r < 32; ++r)
    if (rf_final[r] != other.rf_final[r])
      os << "r" << r << " " << to_hex(rf_final[r], 32) << " vs "
         << to_hex(other.rf_final[r], 32) << "\n";
  return os.str();
}

void SparseMemory::load(const std::map<std::uint32_t, std::uint32_t>& init) {
  for (auto [a, v] : init) mem_[a & ~3u] = v;
}

std::uint32_t SparseMemory::read_word(std::uint32_t addr) const {
  const auto it = mem_.find(addr & ~3u);
  return it == mem_.end() ? 0 : it->second;
}

void SparseMemory::write_word(std::uint32_t addr, std::uint32_t data,
                              unsigned bemask) {
  std::uint32_t cur = read_word(addr);
  for (unsigned b = 0; b < 4; ++b)
    if (bemask & (1u << b))
      cur = static_cast<std::uint32_t>(
          set_field(cur, 8 * b, 8, get_field(data, 8 * b, 8)));
  mem_[addr & ~3u] = cur;
}

SpecSimulator::SpecSimulator(const TestCase& tc) : imem_(tc.imem) {
  rf_ = tc.rf_init;
  rf_[0] = 0;
  dmem_.load(tc.dmem_init);
}

std::uint32_t SpecSimulator::fetch(std::uint32_t pc) const {
  const std::size_t idx = pc / 4;
  if (pc % 4 != 0 || idx >= imem_.size()) return 0;  // out of program: NOP
  return imem_[idx];
}

Instr SpecSimulator::step() {
  const Instr i = decode(fetch(pc_));
  const std::uint32_t next_pc = pc_ + 4;
  std::uint32_t target = next_pc;

  const std::uint32_t a = reg(i.rs1);
  const std::uint32_t b = reg(i.rs2);
  const std::uint32_t imm = static_cast<std::uint32_t>(i.imm);

  auto setrd = [&](std::uint32_t v) { set_reg(i.rd, v); };

  switch (i.op) {
    case Op::kNop:
      break;
    case Op::kAdd:
    case Op::kAddu:
      setrd(a + b);
      break;
    case Op::kSub:
    case Op::kSubu:
      setrd(a - b);
      break;
    case Op::kAnd:
      setrd(a & b);
      break;
    case Op::kOr:
      setrd(a | b);
      break;
    case Op::kXor:
      setrd(a ^ b);
      break;
    case Op::kSll:
      setrd(a << (b & 31));
      break;
    case Op::kSrl:
      setrd(a >> (b & 31));
      break;
    case Op::kSra:
      setrd(static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                       (b & 31)));
      break;
    case Op::kSlt:
      setrd(static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b));
      break;
    case Op::kSltu:
      setrd(a < b);
      break;
    case Op::kSeq:
      setrd(a == b);
      break;
    case Op::kSne:
      setrd(a != b);
      break;
    case Op::kAddi:
    case Op::kAddui:
      setrd(a + imm);
      break;
    case Op::kSubi:
    case Op::kSubui:
      setrd(a - imm);
      break;
    case Op::kAndi:
      setrd(a & imm);
      break;
    case Op::kOri:
      setrd(a | imm);
      break;
    case Op::kXori:
      setrd(a ^ imm);
      break;
    case Op::kSlli:
      setrd(a << (imm & 31));
      break;
    case Op::kSrli:
      setrd(a >> (imm & 31));
      break;
    case Op::kSrai:
      setrd(static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                       (imm & 31)));
      break;
    case Op::kSlti:
      setrd(static_cast<std::int32_t>(a) <
            static_cast<std::int32_t>(imm));
      break;
    case Op::kSltui:
      setrd(a < imm);
      break;
    case Op::kSeqi:
      setrd(a == imm);
      break;
    case Op::kSnei:
      setrd(a != imm);
      break;
    case Op::kLhi:
      setrd(imm << 16);
      break;
    case Op::kLb:
    case Op::kLbu: {
      const std::uint32_t addr = a + imm;
      const std::uint32_t w = dmem_.read_word(addr);
      const std::uint32_t byte =
          static_cast<std::uint32_t>(get_field(w, 8 * (addr & 3), 8));
      setrd(i.op == Op::kLb ? static_cast<std::uint32_t>(sext(byte, 8))
                            : byte);
      break;
    }
    case Op::kLh:
    case Op::kLhu: {
      const std::uint32_t addr = a + imm;
      const std::uint32_t w = dmem_.read_word(addr);
      const std::uint32_t half =
          static_cast<std::uint32_t>(get_field(w, 8 * (addr & 2), 16));
      setrd(i.op == Op::kLh ? static_cast<std::uint32_t>(sext(half, 16))
                            : half);
      break;
    }
    case Op::kLw:
      setrd(dmem_.read_word(a + imm));
      break;
    case Op::kSb:
    case Op::kSh:
    case Op::kSw: {
      const std::uint32_t addr = a + imm;
      const std::uint32_t datum = reg(i.rd);
      std::uint32_t data = 0;
      unsigned mask = 0;
      if (i.op == Op::kSb) {
        mask = 1u << (addr & 3);
        data = static_cast<std::uint32_t>(
            set_field(0, 8 * (addr & 3), 8, get_field(datum, 0, 8)));
      } else if (i.op == Op::kSh) {
        mask = 3u << (addr & 2);
        data = static_cast<std::uint32_t>(
            set_field(0, 8 * (addr & 2), 16, get_field(datum, 0, 16)));
      } else {
        mask = 0xF;
        data = datum;
      }
      dmem_.write_word(addr, data, mask);
      writes_.push_back({addr & ~3u, data, mask});
      break;
    }
    case Op::kBeqz:
      if (a == 0) target = next_pc + (imm << 2);
      break;
    case Op::kBnez:
      if (a != 0) target = next_pc + (imm << 2);
      break;
    case Op::kJ:
      target = next_pc + (imm << 2);
      break;
    case Op::kJal:
      set_reg(31, next_pc);
      target = next_pc + (imm << 2);
      break;
    case Op::kJr:
      target = a;
      break;
    case Op::kJalr:
      set_reg(31, next_pc);
      target = a;
      break;
    default:
      break;
  }
  pc_ = target;
  ++retired_;
  return i;
}

ArchTrace SpecSimulator::run(unsigned max_instructions) {
  for (unsigned k = 0; k < max_instructions; ++k) step();
  ArchTrace t;
  t.writes = writes_;
  for (unsigned r = 0; r < 32; ++r) t.rf_final[r] = reg(r);
  return t;
}

ArchTrace spec_run(const TestCase& tc, unsigned n) {
  SpecSimulator sim(tc);
  return sim.run(n);
}

}  // namespace hltg
