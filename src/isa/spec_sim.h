// Architectural (ISA-level) specification simulator.
//
// This is the "specification" side of the verification methodology: a
// sequential, non-pipelined executor of the 44-instruction DLX ISA. A design
// error is *detected* by a test when the architecturally observable trace of
// the (erroneous) pipelined implementation differs from this simulator's
// trace on the same test (Sec. I: "A discrepancy in the simulation outcome
// indicates an error").
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace hltg {

/// A verification test: program image plus initial architectural state.
/// The paper's generator produces "instruction and data sequences"; the data
/// part is the initial register-file and data-memory contents.
struct TestCase {
  std::vector<std::uint32_t> imem;  ///< program at PC=0,4,8,...; beyond: NOP
  std::array<std::uint32_t, 32> rf_init{};  ///< R0 entry ignored
  std::map<std::uint32_t, std::uint32_t> dmem_init;  ///< word-aligned addr -> value
};

/// One committed store on the data-memory interface (a datapath DPO).
struct MemWrite {
  std::uint32_t addr = 0;   ///< word-aligned
  std::uint32_t data = 0;   ///< full word written (after byte merge)
  unsigned bemask = 0xF;    ///< which byte lanes the instruction wrote
  bool operator==(const MemWrite&) const = default;
};

/// Architecturally observable outcome used for spec-vs-implementation
/// comparison: the ordered committed store sequence plus final register
/// file. (Loads are pure; squashed instructions never appear.)
struct ArchTrace {
  std::vector<MemWrite> writes;
  std::array<std::uint32_t, 32> rf_final{};
  bool operator==(const ArchTrace&) const = default;
  std::string diff(const ArchTrace& other) const;  ///< "" when equal
};

/// Sparse little-endian byte-addressable memory stored as aligned words.
class SparseMemory {
 public:
  void load(const std::map<std::uint32_t, std::uint32_t>& init);
  std::uint32_t read_word(std::uint32_t addr) const;  ///< addr auto-aligned
  void write_word(std::uint32_t addr, std::uint32_t data, unsigned bemask);
  const std::map<std::uint32_t, std::uint32_t>& words() const { return mem_; }

 private:
  std::map<std::uint32_t, std::uint32_t> mem_;
};

class SpecSimulator {
 public:
  explicit SpecSimulator(const TestCase& tc);

  /// Execute one instruction; returns it (for tracing).
  Instr step();
  /// Run `max_instructions` steps and return the observable trace.
  ArchTrace run(unsigned max_instructions);

  std::uint32_t pc() const { return pc_; }
  std::uint32_t reg(unsigned r) const { return r == 0 ? 0 : rf_[r]; }
  void set_reg(unsigned r, std::uint32_t v) {
    if (r != 0) rf_[r] = v;
  }
  const SparseMemory& dmem() const { return dmem_; }
  const std::vector<MemWrite>& writes() const { return writes_; }
  std::uint64_t instructions_retired() const { return retired_; }

 private:
  std::uint32_t fetch(std::uint32_t pc) const;

  std::vector<std::uint32_t> imem_;
  std::array<std::uint32_t, 32> rf_{};
  SparseMemory dmem_;
  std::uint32_t pc_ = 0;
  std::vector<MemWrite> writes_;
  std::uint64_t retired_ = 0;
};

/// Convenience: run the spec simulator for `n` instructions.
ArchTrace spec_run(const TestCase& tc, unsigned n);

}  // namespace hltg
