#include "isa/disasm.h"

#include <sstream>

#include "isa/encode.h"
#include "util/word.h"

namespace hltg {

std::string disassemble(std::uint32_t word) {
  const Instr i = decode(word);
  std::string s = to_string(i);
  if (!is_defined(word)) s += " ; undefined encoding " + to_hex(word, 32);
  return s;
}

std::string disassemble_program(const std::vector<std::uint32_t>& words) {
  std::ostringstream os;
  for (std::size_t k = 0; k < words.size(); ++k)
    os << to_hex(static_cast<std::uint32_t>(4 * k), 16) << ":  "
       << disassemble(words[k]) << "\n";
  return os.str();
}

}  // namespace hltg
