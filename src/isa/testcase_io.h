// TestCase serialization: save generated verification tests to a simple
// line-oriented text format and load them back for replay.
//
//   # comment
//   instr <hex-word>          ; program words in address order
//   reg   <n> <hex>           ; initial register-file entries
//   mem   <hex-addr> <hex>    ; initial data-memory words
//
// The disassembly is included as trailing comments for readability; the
// loader ignores them.
#pragma once

#include <string>

#include "isa/spec_sim.h"

namespace hltg {

std::string serialize_test(const TestCase& tc);

struct TestLoadResult {
  TestCase test;
  std::string error;  ///< empty on success
  bool ok() const { return error.empty(); }
};

TestLoadResult parse_test(const std::string& text);

/// Convenience file wrappers (return false / error string on I/O failure).
bool save_test(const TestCase& tc, const std::string& path);
TestLoadResult load_test(const std::string& path);

}  // namespace hltg
