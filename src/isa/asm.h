// Tiny DLX text assembler.
//
// Accepts one instruction per line in the same syntax `to_string(Instr)`
// produces, plus comments (`;` or `#` to end of line), blank lines, and
// labels. Control-transfer offsets may be numeric (instruction words) or
// symbolic:
//
//   loop: addi r1, r1, -1
//         add  r3, r3, r1
//         bnez r1, loop
//         j    done
//         sw   12(r2), r4
//   done: nop
//
// Used by the examples and tests; the test generator emits Instr structs
// directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace hltg {

struct AsmResult {
  std::vector<Instr> program;
  std::vector<std::string> errors;  ///< "line N: message"
  bool ok() const { return errors.empty(); }
};

AsmResult assemble(const std::string& source);

/// Encoded words for a program.
std::vector<std::uint32_t> encode_program(const std::vector<Instr>& prog);

}  // namespace hltg
