#include "isa/asm.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <tuple>
#include <sstream>

#include "isa/encode.h"

namespace hltg {

namespace {

struct Cursor {
  const std::string& s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == ','))
      ++i;
  }
  bool done() {
    skip_ws();
    return i >= s.size();
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  std::string word() {
    skip_ws();
    std::size_t b = i;
    while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) ||
                            s[i] == '_'))
      ++i;
    return s.substr(b, i - b);
  }
  bool number(std::int64_t* out) {
    skip_ws();
    std::size_t b = i;
    bool any_digit = false;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    if (i + 1 < s.size() && s[i] == '0' && (s[i + 1] == 'x' || s[i + 1] == 'X')) {
      i += 2;
      while (i < s.size() && std::isxdigit(static_cast<unsigned char>(s[i]))) {
        ++i;
        any_digit = true;
      }
      if (!any_digit) return false;  // bare "0x"
    } else {
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
        ++i;
        any_digit = true;
      }
    }
    if (!any_digit) return false;
    errno = 0;
    *out = std::strtoll(s.c_str() + b, nullptr, 0);
    if (errno == ERANGE) return false;  // out-of-range literal, not UB/abort
    return true;
  }
  std::string identifier() {
    skip_ws();
    std::size_t b = i;
    if (i < s.size() && (std::isalpha(static_cast<unsigned char>(s[i])) ||
                         s[i] == '_' || s[i] == '.')) {
      ++i;
      while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) ||
                              s[i] == '_' || s[i] == '.'))
        ++i;
    }
    return s.substr(b, i - b);
  }
  bool reg(unsigned* out) {
    skip_ws();
    if (i >= s.size() || (s[i] != 'r' && s[i] != 'R')) return false;
    ++i;
    std::int64_t n;
    if (!number(&n) || n < 0 || n > 31) return false;
    *out = static_cast<unsigned>(n);
    return true;
  }
};

}  // namespace

AsmResult assemble(const std::string& source) {
  AsmResult res;
  std::istringstream in(source);
  std::string line;
  int lineno = 0;
  std::map<std::string, unsigned> labels;          // label -> word index
  std::vector<std::tuple<std::size_t, std::string, int>> fixups;
  // (program index, label, source line) for symbolic control offsets
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments.
    for (std::size_t p = 0; p < line.size(); ++p)
      if (line[p] == ';' || line[p] == '#') {
        line.resize(p);
        break;
      }
    Cursor c{line};
    if (c.done()) continue;
    auto err = [&](const std::string& m) {
      res.errors.push_back("line " + std::to_string(lineno) + ": " + m);
    };
    std::string mn = c.word();
    // Label definition: identifier followed by ':'.
    if (c.eat(':')) {
      if (labels.count(mn)) {
        err("duplicate label '" + mn + "'");
        continue;
      }
      labels[mn] = static_cast<unsigned>(res.program.size());
      if (c.done()) continue;
      mn = c.word();
    }
    const Op op = op_from_mnemonic(mn);
    if (op == Op::kNumOps) {
      err("unknown mnemonic '" + mn + "'");
      continue;
    }
    Instr ins;
    ins.op = op;
    std::int64_t n = 0;
    bool good = true;
    std::string pending_label;  // committed with the instruction
    switch (op) {
      case Op::kNop:
        break;
      case Op::kJ:
      case Op::kJal:
        if (c.number(&n)) {
          ins.imm = static_cast<std::int32_t>(n);
        } else {
          pending_label = c.identifier();
          good = !pending_label.empty();
        }
        break;
      case Op::kJr:
      case Op::kJalr:
        good = c.reg(&ins.rs1);
        break;
      case Op::kBeqz:
      case Op::kBnez:
        good = c.reg(&ins.rs1);
        if (good) {
          if (c.number(&n)) {
            ins.imm = static_cast<std::int32_t>(n);
          } else {
            pending_label = c.identifier();
            good = !pending_label.empty();
          }
        }
        break;
      case Op::kLhi:
        good = c.reg(&ins.rd) && c.number(&n);
        ins.imm = static_cast<std::int32_t>(n);
        break;
      default:
        if (is_alu_r(op)) {
          good = c.reg(&ins.rd) && c.reg(&ins.rs1) && c.reg(&ins.rs2);
        } else if (is_load(op)) {
          good = c.reg(&ins.rd) && c.number(&n) && c.eat('(') &&
                 c.reg(&ins.rs1) && c.eat(')');
          ins.imm = static_cast<std::int32_t>(n);
        } else if (is_store(op)) {
          good = c.number(&n) && c.eat('(') && c.reg(&ins.rs1) && c.eat(')') &&
                 c.reg(&ins.rd);
          ins.imm = static_cast<std::int32_t>(n);
        } else {  // I-type ALU
          good = c.reg(&ins.rd) && c.reg(&ins.rs1) && c.number(&n);
          ins.imm = static_cast<std::int32_t>(n);
        }
        break;
    }
    if (!good || !c.done()) {
      err("malformed operands for '" + mn + "'");
      continue;
    }
    // Range-check immediates against their encoding fields: a silently
    // truncated operand would assemble to a different program than the
    // source says, so out-of-range is a recoverable per-line error.
    auto imm_fits = [](std::int64_t v, Op o) {
      switch (format_of(o)) {
        case Format::kJ: return v >= -(1 << 25) && v < (1 << 25);
        case Format::kI:
          return zero_extends_imm(o) ? v >= -32768 && v <= 65535
                                     : v >= -32768 && v <= 32767;
        case Format::kR: return true;
      }
      return true;
    };
    if (!imm_fits(n, ins.op)) {
      err("immediate " + std::to_string(n) + " out of range for '" + mn + "'");
      continue;
    }
    if (!pending_label.empty())
      fixups.emplace_back(res.program.size(), pending_label, lineno);
    res.program.push_back(ins);
  }
  // Second pass: resolve symbolic control offsets (in instruction words,
  // relative to the instruction after the branch).
  for (auto& [idx, lbl, ln] : fixups) {
    const auto it = labels.find(lbl);
    if (it == labels.end()) {
      res.errors.push_back("line " + std::to_string(ln) +
                           ": undefined label '" + lbl + "'");
      continue;
    }
    const std::int32_t off = static_cast<std::int32_t>(it->second) -
                             static_cast<std::int32_t>(idx) - 1;
    const bool is_j = format_of(res.program[idx].op) == Format::kJ;
    const std::int32_t lim = is_j ? (1 << 25) : (1 << 15);
    if (off < -lim || off >= lim) {
      res.errors.push_back("line " + std::to_string(ln) + ": label '" + lbl +
                           "' is out of branch range (" +
                           std::to_string(off) + " words)");
      continue;
    }
    res.program[idx].imm = off;
  }
  return res;
}

std::vector<std::uint32_t> encode_program(const std::vector<Instr>& prog) {
  std::vector<std::uint32_t> out;
  out.reserve(prog.size());
  for (const Instr& i : prog) out.push_back(encode(i));
  return out;
}

}  // namespace hltg
