// Disassembler: binary words back to text (round-trips with isa/asm.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hltg {

std::string disassemble(std::uint32_t word);
std::string disassemble_program(const std::vector<std::uint32_t>& words);

}  // namespace hltg
